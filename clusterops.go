package sharon

import (
	"fmt"
	"runtime"

	"github.com/sharon-project/sharon/internal/exec"
)

// Cluster rebalancing operations: the public surface the sharond
// cluster tier moves group state between workers with. All per-group
// runtime state is independent, so a subset of groups can be sliced out
// of one system's snapshot and grafted into another system that is
// quiesced at the same watermark — the state-transfer primitive behind
// consistent-hash range hand-offs (worker joins, graceful leaves, and
// dead-worker recovery from checkpoint + WAL tail).
//
// Only uniform non-dynamic workloads (System) support the graft
// operations: partitioned workloads interleave per-segment windows and
// dynamic systems carry migration state a group slice cannot represent.
// Quiesce is supported by every system kind.

// SliceGroups cuts the groups selected by keep out of a snapshot into a
// new engine-kind snapshot (the "group slice"). The slice preserves the
// source's stream position; parallel snapshots are flattened across
// their shards, so a slice taken under one worker count can be absorbed
// by a system running another.
func SliceGroups(snap *StateSnapshot, keep func(GroupKey) bool) (*StateSnapshot, error) {
	es, err := exec.SliceGroups(snap, keep)
	if err != nil {
		return nil, err
	}
	return &StateSnapshot{Kind: exec.KindEngine, Engine: es}, nil
}

// AbsorbGroups grafts a group slice (from SliceGroups) into the running
// system. A system that has processed events must be quiesced at
// exactly the slice's stream position (same watermark, no events in
// flight); a fresh system adopts the slice's position. Group keys must
// be disjoint from the system's own.
func (s *System) AbsorbGroups(slice *StateSnapshot) error {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	if slice.Kind != exec.KindEngine || slice.Engine == nil {
		return fmt.Errorf("sharon: AbsorbGroups wants an engine-kind group slice, got %q", slice.Kind)
	}
	switch ex := s.executor.(type) {
	case *exec.Engine:
		return ex.AbsorbSlice(slice.Engine)
	case *exec.Parallel:
		return ex.AbsorbSlice(slice.Engine)
	}
	return fmt.Errorf("sharon: %s executor cannot absorb group slices", s.executor.Name())
}

// RemoveGroups deletes every group whose key satisfies drop from the
// running system and reports how many were removed. The caller must
// stop routing those keys' events to this system first: a removed key's
// next event would rebuild the group from empty state.
func (s *System) RemoveGroups(drop func(GroupKey) bool) (int, error) {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	switch ex := s.executor.(type) {
	case *exec.Engine:
		return ex.RemoveGroups(drop), nil
	case *exec.Parallel:
		return ex.RemoveGroups(drop)
	}
	return 0, fmt.Errorf("sharon: %s executor cannot remove groups", s.executor.Name())
}

// Quiesce blocks until every result for windows ending at or before the
// current watermark has been delivered through OnResult. Sequential
// executors emit synchronously, so only the parallel path has anything
// to wait for.
func (s *System) Quiesce() error {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	return quiesceExecutor(s.executor)
}

// Quiesce is System.Quiesce for a partitioned workload.
func (s *PartitionedSystem) Quiesce() error {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	return quiesceExecutor(s.executor)
}

// Quiesce is System.Quiesce for a dynamic workload.
func (s *DynamicSystem) Quiesce() error {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	return quiesceExecutor(s.executor)
}

func quiesceExecutor(ex exec.Executor) error {
	if p, ok := ex.(*exec.Parallel); ok {
		return p.Quiesce()
	}
	return nil
}

// GroupCount reports the number of live per-group runtimes.
func (s *System) GroupCount() int64 { return groupCountOf(s.executor) }

// GroupCount reports the live per-group runtimes summed over segments.
func (s *PartitionedSystem) GroupCount() int64 { return groupCountOf(s.executor) }

// GroupCount reports the current engine's live per-group runtimes.
func (s *DynamicSystem) GroupCount() int64 { return groupCountOf(s.executor) }

func groupCountOf(ex exec.Executor) int64 {
	if gc, ok := ex.(interface{ GroupCount() int64 }); ok {
		return gc.GroupCount()
	}
	return 0
}
