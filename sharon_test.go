package sharon_test

import (
	"math/rand"
	"testing"

	sharon "github.com/sharon-project/sharon"
	"github.com/sharon-project/sharon/internal/agg"
	"github.com/sharon-project/sharon/internal/gen"
)

// buildTraffic returns the paper workload and a stream through the
// public API surface only.
func buildTraffic(t testing.TB, events int) (*sharon.Registry, sharon.Workload, sharon.Stream) {
	t.Helper()
	reg := sharon.NewRegistry()
	texts := []string{
		"RETURN COUNT(*) PATTERN SEQ(OakSt, MainSt, StateSt) WHERE [vehicle] WITHIN 4s SLIDE 1s",
		"RETURN COUNT(*) PATTERN SEQ(OakSt, MainSt, WestSt) WHERE [vehicle] WITHIN 4s SLIDE 1s",
		"RETURN COUNT(*) PATTERN SEQ(ParkAve, OakSt, MainSt) WHERE [vehicle] WITHIN 4s SLIDE 1s",
		"RETURN COUNT(*) PATTERN SEQ(ParkAve, OakSt, MainSt, WestSt) WHERE [vehicle] WITHIN 4s SLIDE 1s",
		"RETURN COUNT(*) PATTERN SEQ(MainSt, StateSt) WHERE [vehicle] WITHIN 4s SLIDE 1s",
		"RETURN COUNT(*) PATTERN SEQ(ElmSt, ParkAve) WHERE [vehicle] WITHIN 4s SLIDE 1s",
		"RETURN COUNT(*) PATTERN SEQ(ElmSt, ParkAve) WHERE [vehicle] WITHIN 4s SLIDE 1s",
	}
	var w sharon.Workload
	for _, text := range texts {
		w = append(w, sharon.MustParseQuery(text, reg))
	}
	w.Renumber()
	streets := []string{"OakSt", "MainSt", "ParkAve", "WestSt", "StateSt", "ElmSt"}
	rng := rand.New(rand.NewSource(11))
	stream := make(sharon.Stream, events)
	for i := range stream {
		stream[i] = sharon.Event{
			Time: int64(i+1) * 5,
			Type: reg.Lookup(streets[rng.Intn(len(streets))]),
			Key:  sharon.GroupKey(rng.Intn(4)),
			Val:  float64(rng.Intn(100)),
		}
	}
	return reg, w, stream
}

// TestSystemStrategiesAgree is the public-API equivalence check: Sharon,
// greedy, non-shared, two-step, and SPASS systems all produce identical
// results on the paper's traffic workload.
func TestSystemStrategiesAgree(t *testing.T) {
	_, w, stream := buildTraffic(t, 3000)
	rates := sharon.MeasureRates(stream, w)

	reference, err := sharon.NewSystem(w, sharon.Options{Strategy: sharon.StrategyNonShared})
	if err != nil {
		t.Fatal(err)
	}
	defer reference.Close()
	if err := reference.ProcessAll(stream); err != nil {
		t.Fatal(err)
	}
	want := reference.Results()
	if len(want) == 0 {
		t.Fatal("reference produced no results")
	}

	for _, strat := range []sharon.Strategy{sharon.StrategySharon, sharon.StrategyGreedy, sharon.StrategyTwoStep, sharon.StrategySPASS, sharon.StrategySASE} {
		sys, err := sharon.NewSystem(w, sharon.Options{Strategy: strat, Rates: rates})
		if err != nil {
			t.Fatalf("strategy %v: %v", strat, err)
		}
		defer sys.Close()
		if err := sys.ProcessAll(stream); err != nil {
			t.Fatalf("strategy %v: %v", strat, err)
		}
		got := sys.Results()
		if len(got) != len(want) {
			t.Fatalf("strategy %v: %d results, want %d", strat, len(got), len(want))
		}
		for i := range want {
			a, b := want[i], got[i]
			if a.Query != b.Query || a.Win != b.Win || a.Group != b.Group || !agg.ApproxEqual(a.State, b.State) {
				t.Fatalf("strategy %v: result %d = %+v, want %+v", strat, i, b, a)
			}
		}
	}
}

// TestSystemSharesTraffic checks that the optimizer actually shares on the
// traffic workload and that the Sharon system reports a plan.
func TestSystemSharesTraffic(t *testing.T) {
	reg, w, stream := buildTraffic(t, 4000)
	rates := sharon.MeasureRates(stream, w)
	sys, err := sharon.NewSystem(w, sharon.Options{Rates: rates})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if len(sys.Plan()) == 0 {
		t.Error("no sharing plan chosen on the traffic workload")
	}
	if sys.PlanScore() <= 0 {
		t.Errorf("plan score = %v, want > 0", sys.PlanScore())
	}
	if s := sys.FormatPlan(reg); s == "{}" {
		t.Error("FormatPlan returned empty plan")
	}
	if err := sys.ProcessAll(stream); err != nil {
		t.Fatal(err)
	}
	if sys.ResultCount() == 0 {
		t.Error("no results emitted")
	}
	if sys.PeakMemoryStates() <= 0 {
		t.Error("memory accounting returned nothing")
	}
}

func TestSystemExplicitPlan(t *testing.T) {
	reg := sharon.NewRegistry()
	w := sharon.Workload{
		sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B, C) WITHIN 10s SLIDE 5s", reg),
		sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B, D) WITHIN 10s SLIDE 5s", reg),
	}
	w.Renumber()
	cands := sharon.FindCandidates(w)
	if len(cands) != 1 {
		t.Fatalf("candidates = %v, want just (A,B)", cands)
	}
	sys, err := sharon.NewSystem(w, sharon.Options{Plan: sharon.Plan{cands[0]}})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	var stream sharon.Stream
	for i, name := range []string{"A", "B", "C", "D", "A", "B", "C"} {
		stream = append(stream, sharon.Event{Time: int64(i+1) * 1000, Type: reg.Lookup(name)})
	}
	if err := sys.ProcessAll(stream); err != nil {
		t.Fatal(err)
	}
	if sys.ResultCount() == 0 {
		t.Error("no results under explicit plan")
	}
}

func TestSystemCallbacks(t *testing.T) {
	reg := sharon.NewRegistry()
	w := sharon.Workload{
		sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10s SLIDE 5s", reg),
	}
	w.Renumber()
	var calls int
	sys, err := sharon.NewSystem(w, sharon.Options{OnResult: func(r sharon.Result) { calls++ }})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	stream := sharon.Stream{
		{Time: 1000, Type: reg.Lookup("A")},
		{Time: 2000, Type: reg.Lookup("B")},
	}
	if err := sys.ProcessAll(stream); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("OnResult never called")
	}
	if got := sys.Results(); got != nil {
		t.Errorf("Results should be nil when OnResult is set, got %d", len(got))
	}
}

func TestSystemRejectsBadWorkloads(t *testing.T) {
	reg := sharon.NewRegistry()
	q1 := sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10s SLIDE 5s", reg)
	q2 := sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(B, C) WITHIN 20s SLIDE 5s", reg)
	w := sharon.Workload{q1, q2}
	w.Renumber()
	if _, err := sharon.NewSystem(w, sharon.Options{}); err == nil {
		t.Error("mismatched windows accepted")
	}
	if _, err := sharon.NewSystem(nil, sharon.Options{}); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestOptimizePublic(t *testing.T) {
	tr := gen.Traffic()
	rates := sharon.Rates{}
	for tp := range tr.Workload.Types() {
		rates[tp] = 10
	}
	plan, score, err := sharon.Optimize(tr.Workload, rates)
	if err != nil {
		t.Fatal(err)
	}
	if score <= 0 || len(plan) == 0 {
		t.Errorf("Optimize: score=%v plan=%v", score, plan)
	}
	if err := plan.Validate(tr.Workload); err != nil {
		t.Errorf("invalid plan: %v", err)
	}
}

func TestDynamicSystemPublic(t *testing.T) {
	reg := sharon.NewRegistry()
	w := sharon.Workload{
		sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B, C) WITHIN 4s SLIDE 1s", reg),
		sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B, D) WITHIN 4s SLIDE 1s", reg),
		sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(D, B, C) WITHIN 4s SLIDE 1s", reg),
	}
	w.Renumber()
	rng := rand.New(rand.NewSource(5))
	letters := []string{"A", "B", "C", "D"}
	var stream sharon.Stream
	for i := 0; i < 2000; i++ {
		name := letters[rng.Intn(3)] // A/B/C hot first
		if i > 1000 {
			name = letters[1+rng.Intn(3)] // then B/C/D
		}
		stream = append(stream, sharon.Event{Time: int64(i+1) * 20, Type: reg.Lookup(name)})
	}
	var migrations int
	sys, err := sharon.NewDynamicSystem(w, sharon.MeasureRates(stream[:300], w), sharon.DynamicOptions{
		DriftThreshold: 0.3,
		OnMigrate:      func(at int64, old, new sharon.Plan) { migrations++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.ProcessAll(stream); err != nil {
		t.Fatal(err)
	}
	if sys.Migrations() != migrations {
		t.Errorf("Migrations()=%d, callbacks=%d", sys.Migrations(), migrations)
	}
	if len(sys.Results()) == 0 {
		t.Error("dynamic system emitted nothing")
	}
	// The dynamic results must equal the static non-shared results.
	ref, err := sharon.NewSystem(w, sharon.Options{Strategy: sharon.StrategyNonShared})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if err := ref.ProcessAll(stream); err != nil {
		t.Fatal(err)
	}
	want, got := ref.Results(), sys.Results()
	if len(want) != len(got) {
		t.Fatalf("dynamic results = %d, static = %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Query != got[i].Query || want[i].Win != got[i].Win || !agg.ApproxEqual(want[i].State, got[i].State) {
			t.Fatalf("result %d: dynamic %+v != static %+v", i, got[i], want[i])
		}
	}
}

func TestValueHelper(t *testing.T) {
	reg := sharon.NewRegistry()
	q := sharon.MustParseQuery("RETURN SUM(B.val) PATTERN SEQ(A, B) WITHIN 10s SLIDE 5s", reg)
	w := sharon.Workload{q}
	w.Renumber()
	sys, err := sharon.NewSystem(w, sharon.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	stream := sharon.Stream{
		{Time: 1000, Type: reg.Lookup("A"), Val: 1},
		{Time: 2000, Type: reg.Lookup("B"), Val: 7},
	}
	if err := sys.ProcessAll(stream); err != nil {
		t.Fatal(err)
	}
	rs := sys.Results()
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	if got := sharon.Value(rs[0], q); got != 7 {
		t.Errorf("SUM = %v, want 7", got)
	}
}

// TestPartitionedSystemPublic exercises §7.2 through the public API:
// queries with different windows and predicates run in uniform segments.
func TestPartitionedSystemPublic(t *testing.T) {
	reg := sharon.NewRegistry()
	w := sharon.Workload{
		sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 4s SLIDE 2s", reg),
		sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B, C) WITHIN 4s SLIDE 2s", reg),
		sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(B, C) WITHIN 8s SLIDE 4s", reg),
		sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B) WHERE A.val > 50 WITHIN 4s SLIDE 2s", reg),
	}
	w.Renumber()
	sys, err := sharon.NewPartitionedSystem(w, sharon.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Segments() != 3 {
		t.Fatalf("segments = %d, want 3", sys.Segments())
	}
	rng := rand.New(rand.NewSource(2))
	letters := []string{"A", "B", "C"}
	var stream sharon.Stream
	for i := 0; i < 500; i++ {
		stream = append(stream, sharon.Event{
			Time: int64(i+1) * 50,
			Type: reg.Lookup(letters[rng.Intn(3)]),
			Val:  float64(rng.Intn(100)),
		})
	}
	if err := sys.ProcessAll(stream); err != nil {
		t.Fatal(err)
	}
	results := sys.Results()
	if len(results) == 0 {
		t.Fatal("no results")
	}
	// Each query produced something; q4's predicate strictly reduces its
	// counts relative to q1 on the same windows.
	perQuery := map[int]float64{}
	for _, r := range results {
		perQuery[r.Query] += r.State.Count
	}
	for id := 0; id < 4; id++ {
		if perQuery[id] == 0 {
			t.Errorf("query %d matched nothing", id)
		}
	}
	if perQuery[3] >= perQuery[0] {
		t.Errorf("predicate did not reduce counts: q4=%v q1=%v", perQuery[3], perQuery[0])
	}
	if sys.PeakMemoryStates() <= 0 {
		t.Error("no memory accounted")
	}
	// Rejects two-step strategies.
	if _, err := sharon.NewPartitionedSystem(w, sharon.Options{Strategy: sharon.StrategyTwoStep}); err == nil {
		t.Error("two-step partitioned accepted")
	}
}
