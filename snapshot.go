package sharon

import (
	"fmt"
	"runtime"

	"github.com/sharon-project/sharon/internal/exec"
)

// StateSnapshot is the serializable runtime state of a system: open
// window aggregates, live START records, stage combination snapshots,
// and — for dynamic systems — the installed plan and rate counters. It
// is produced by the systems' Snapshot methods and loaded by Restore;
// internal/persist encodes it into the checkpoint file format.
//
// Snapshot must be called from the goroutine that feeds the system (the
// parallel executors quiesce their workers under an internal barrier).
// When Snapshot returns, every result for windows ending at or before
// the system's watermark has been delivered through OnResult, and the
// snapshot covers exactly the windows after it — so a checkpoint plus a
// replay of the events that followed it reproduces the uninterrupted
// emission stream with no lost and no duplicated windows.
//
// Restore must be called on a freshly constructed system of the same
// shape — same workload, same plan inputs, and (for parallel systems)
// the same Parallelism — before the first event. Mismatches are
// detected and returned as errors rather than corrupting state.
type StateSnapshot = exec.SystemSnapshot

// Snapshot captures the system's runtime state for checkpointing.
func (s *System) Snapshot() (*StateSnapshot, error) {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	return snapshotExecutor(s.executor)
}

// Restore loads a snapshot produced by an equivalent system's Snapshot.
func (s *System) Restore(snap *StateSnapshot) error {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	return restoreExecutor(s.executor, snap)
}

// Snapshot captures the partitioned system's runtime state.
func (s *PartitionedSystem) Snapshot() (*StateSnapshot, error) {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	return snapshotExecutor(s.executor)
}

// Restore loads a snapshot produced by an equivalent partitioned system.
func (s *PartitionedSystem) Restore(snap *StateSnapshot) error {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	return restoreExecutor(s.executor, snap)
}

// Snapshot captures the dynamic system's runtime state, including the
// installed plan, the rate-drift counters, and a mid-migration draining
// engine, so a restored run migrates exactly where the original would.
func (s *DynamicSystem) Snapshot() (*StateSnapshot, error) {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	return snapshotExecutor(s.executor)
}

// Restore loads a snapshot produced by an equivalent dynamic system.
func (s *DynamicSystem) Restore(snap *StateSnapshot) error {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	return restoreExecutor(s.executor, snap)
}

// snapshotExecutor dispatches Snapshot across the executor kinds that
// support durability (the online engines; the comparison baselines are
// measurement-only and do not checkpoint).
func snapshotExecutor(ex exec.Executor) (*StateSnapshot, error) {
	switch e := ex.(type) {
	case *exec.Engine:
		return e.Snapshot(), nil
	case *exec.Partitioned:
		return e.Snapshot(), nil
	case *exec.Dynamic:
		return e.Snapshot(), nil
	case *exec.Parallel:
		return e.Snapshot()
	}
	return nil, fmt.Errorf("sharon: executor %T does not support snapshots", ex)
}

func restoreExecutor(ex exec.Executor, snap *StateSnapshot) error {
	if snap == nil {
		return fmt.Errorf("sharon: nil snapshot")
	}
	switch e := ex.(type) {
	case *exec.Engine:
		return e.Restore(snap)
	case *exec.Partitioned:
		return e.Restore(snap)
	case *exec.Dynamic:
		return e.Restore(snap)
	case *exec.Parallel:
		return e.Restore(snap)
	}
	return fmt.Errorf("sharon: executor %T does not support restore", ex)
}
