// Package sharon is a from-scratch Go implementation of SHARON — Shared
// Online Event Sequence Aggregation (Poppe et al., ICDE 2018): a complex
// event processing engine that evaluates workloads of event sequence
// aggregation queries online (without constructing sequences) while
// sharing intermediate aggregates among queries according to an optimal
// sharing plan.
//
// The typical flow mirrors the paper's framework (Fig. 5):
//
//	reg := sharon.NewRegistry()
//	q1 := sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(OakSt, MainSt) WHERE [vehicle] WITHIN 10m SLIDE 1m", reg)
//	q2 := sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(ParkAve, OakSt, MainSt) WHERE [vehicle] WITHIN 10m SLIDE 1m", reg)
//	sys, err := sharon.NewSystem(sharon.Workload{q1, q2}, sharon.Options{Rates: rates})
//	for _, e := range stream {
//	    sys.Process(e)
//	}
//	sys.Flush()
//	for _, r := range sys.Results() { ... }
//
// NewSystem runs the static optimizer — sharable pattern detection
// (modified CCSpan), the benefit model, the Sharon graph, GWMIN-bound
// reduction, and the optimal plan finder — and instantiates the shared
// online executor for the chosen plan. Baseline executors (A-Seq,
// Flink-style two-step, SPASS) are exposed for comparison via Strategy.
package sharon

import (
	"fmt"
	"runtime"
	"time"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/exec"
	"github.com/sharon-project/sharon/internal/metrics"
	"github.com/sharon-project/sharon/internal/query"
)

// Re-exported data-model types. Events carry a timestamp in ticks
// (TicksPerSecond per second), an interned type, a grouping key, and one
// numeric attribute.
type (
	// Event is a time-stamped message on the input stream.
	Event = event.Event
	// Type is an interned event type.
	Type = event.Type
	// GroupKey is the grouping-attribute value of an event.
	GroupKey = event.GroupKey
	// Registry interns event type names.
	Registry = event.Registry
	// Stream is a finite, strictly time-ordered event sequence.
	Stream = event.Stream
	// Pattern is an event sequence pattern (E1 ... El).
	Pattern = query.Pattern
	// Query is an event sequence aggregation query.
	Query = query.Query
	// Workload is a set of queries evaluated together.
	Workload = query.Workload
	// Window is a sliding window (WITHIN/SLIDE).
	Window = query.Window
	// Result is one aggregate: (query, window, group) -> state.
	Result = exec.Result
	// Plan is a sharing plan: the set of sharing candidates in effect.
	Plan = core.Plan
	// Candidate is one sharing candidate (p, Qp).
	Candidate = core.Candidate
	// Rates maps event types to rates for the optimizer's benefit model.
	Rates = core.Rates
	// ParallelStats summarizes a parallel run: throughput counters and
	// the per-shard occupancy profile.
	ParallelStats = metrics.ParallelStats
)

// TicksPerSecond is the timestamp resolution of the event model.
const TicksPerSecond = event.TicksPerSecond

// NoType is the invalid zero Type (e.g. a failed Registry.Lookup).
const NoType = event.NoType

// NewRegistry returns an empty event type registry.
func NewRegistry() *Registry { return event.NewRegistry() }

// ParseQuery parses a query in the SASE-style surface language, e.g.
//
//	RETURN COUNT(*) PATTERN SEQ(OakSt, MainSt) WHERE [vehicle] WITHIN 10m SLIDE 1m
func ParseQuery(text string, reg *Registry) (*Query, error) {
	return query.Parse(text, reg)
}

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(text string, reg *Registry) *Query {
	return query.MustParse(text, reg)
}

// Strategy selects an execution strategy for NewSystem.
type Strategy int

const (
	// StrategySharon (default) runs the Sharon optimizer and the shared
	// online executor.
	StrategySharon Strategy = iota
	// StrategyGreedy runs the greedy (GWMIN) optimizer with the shared
	// online executor.
	StrategyGreedy
	// StrategyNonShared evaluates every query independently online
	// (the A-Seq baseline).
	StrategyNonShared
	// StrategyTwoStep constructs all sequences before aggregating them
	// (the Flink-style baseline). For comparison only.
	StrategyTwoStep
	// StrategySPASS shares sequence construction but not aggregation.
	// For comparison only.
	StrategySPASS
	// StrategySASE constructs sequences incrementally with an NFA per
	// query (SASE/Cayuga style). For comparison only.
	StrategySASE
)

// Options configures NewSystem.
type Options struct {
	// Strategy selects optimizer + executor (default StrategySharon).
	Strategy Strategy
	// Rates supplies per-type event rates for the benefit model. When
	// nil, sharing decisions assume uniform rates across the workload's
	// types. Use MeasureRates on a stream sample for realistic plans.
	Rates Rates
	// Plan, when non-nil, bypasses the optimizer and executes this plan.
	Plan Plan
	// OnResult receives every aggregate as it is emitted, in the
	// deterministic (window end, query ID, group) order, as each window
	// closes — the push-based alternative to polling Results after
	// Flush. A system with an OnResult sink does not retain results:
	// Results returns nil (see System.Results for the exact contract).
	// Sequentially the callback runs inside Process/AdvanceWatermark/
	// Flush; with Parallelism > 1 it runs on the merge goroutine.
	OnResult func(Result)
	// EmitEmpty also emits zero results for windows without matches.
	EmitEmpty bool
	// OptimizerBudget bounds the plan search; on expiry the best plan
	// found so far (at least GWMIN's) is used. Default 10s.
	OptimizerBudget time.Duration
	// Parallelism selects the number of shard workers for the online
	// executors (StrategySharon, StrategyGreedy, StrategyNonShared).
	// Events are hash-partitioned by group key across worker goroutines,
	// each running an independent copy of the engine, and window results
	// are merged back in deterministic (window end, query ID, group)
	// order — identical to a sequential run. 0 = auto: GOMAXPROCS
	// workers for grouped workloads without an OnResult callback, the
	// sequential path otherwise (ungrouped workloads have a single group
	// and cannot shard by key, and auto never changes where an existing
	// OnResult callback runs); 1 = always sequential. For
	// PartitionedSystem, auto shards by segment regardless of grouping.
	// The comparison baselines (TwoStep, SPASS, SASE) always run
	// sequentially. With Parallelism > 1, OnResult is invoked from a
	// merge goroutine rather than from inside Process — the callback
	// must not share unsynchronized state with the feeding loop.
	Parallelism int
}

// resolveParallelism maps Options.Parallelism to a worker count. An
// ungrouped workload aggregates all events under one group and cannot
// shard by key, so it always runs the plain sequential path, even under
// an explicit Parallelism. Auto (0) additionally requires no OnResult
// callback: auto must not silently move an existing callback onto
// another goroutine.
func resolveParallelism(p int, grouped, callback bool) int {
	switch {
	case !grouped:
		return 1
	case p > 1:
		return p
	case p == 0 && !callback:
		return runtime.GOMAXPROCS(0)
	default:
		return 1
	}
}

// stopParallel tears down a parallel executor without emitting partial
// windows; sequential executors hold no goroutines and need no teardown.
func stopParallel(ex exec.Executor) {
	if p, ok := ex.(*exec.Parallel); ok {
		p.Stop()
	}
}

// reclaimOnDrop arranges for an abandoned parallel run to be torn down
// when its owning system is garbage collected, so dropping a system
// without Flush/Close (always safe sequentially) cannot leak worker
// goroutines. It is a backstop: Flush or Close remains the correct way
// to end a run. The GC may see the owner as unreachable while its last
// method call is still executing, so every public method that touches
// the executor pins the owner with runtime.KeepAlive — without it the
// cleanup's Stop races the in-flight Flush's own teardown.
func reclaimOnDrop[T any](owner *T, ex exec.Executor) {
	if p, ok := ex.(*exec.Parallel); ok {
		runtime.AddCleanup(owner, func(p *exec.Parallel) { p.Stop() }, p)
	}
}

// parallelStats snapshots a parallel executor's counters; the zero
// value for sequential executors.
func parallelStats(ex exec.Executor) ParallelStats {
	if p, ok := ex.(*exec.Parallel); ok {
		return p.Stats()
	}
	return ParallelStats{}
}

// collectedResults reads back an executor's collected results.
func collectedResults(ex exec.Executor, collect bool) []Result {
	type collector interface{ Results() []Result }
	if c, ok := ex.(collector); ok && collect {
		return c.Results()
	}
	return nil
}

// System is a compiled workload: an optimizer-chosen sharing plan and a
// running executor.
type System struct {
	workload Workload
	plan     Plan
	score    float64
	executor exec.Executor
	collect  bool
}

// MeasureRates computes per-type rates from a stream sample, normalized
// per group when the workload groups by key (the executor partitions the
// stream, so the cost model must see per-group rates).
func MeasureRates(sample Stream, w Workload) Rates {
	rates := Rates(sample.Rates())
	if len(w) == 0 || !w[0].GroupBy {
		return rates
	}
	keys := make(map[GroupKey]bool)
	for _, e := range sample {
		keys[e.Key] = true
	}
	if n := float64(len(keys)); n > 1 {
		for t := range rates {
			rates[t] /= n
		}
	}
	return rates
}

// NewSystem optimizes the workload and builds its executor.
func NewSystem(w Workload, opts Options) (*System, error) {
	if len(w) == 0 {
		return nil, fmt.Errorf("sharon: empty workload")
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("sharon: %w", err)
	}
	rates := opts.Rates
	if rates == nil {
		rates = Rates{}
		for t := range w.Types() {
			rates[t] = 1
		}
	}
	budget := opts.OptimizerBudget
	if budget == 0 {
		budget = 10 * time.Second
	}

	sys := &System{workload: w, collect: opts.OnResult == nil}
	execOpts := exec.Options{
		OnResult:  opts.OnResult,
		Collect:   sys.collect,
		EmitEmpty: opts.EmitEmpty,
	}

	plan := opts.Plan
	if plan == nil {
		var strat core.Strategy
		switch opts.Strategy {
		case StrategySharon:
			strat = core.StrategySharon
		case StrategyGreedy:
			strat = core.StrategyGreedy
		default:
			strat = core.StrategyNone
		}
		res, err := core.Optimize(w, rates, core.OptimizerOptions{
			Strategy: strat,
			Expand:   strat == core.StrategySharon,
			Budget:   budget,
		})
		if err != nil {
			return nil, fmt.Errorf("sharon: optimize: %w", err)
		}
		plan = res.Plan
		sys.score = res.Score
	}
	sys.plan = plan

	workers := resolveParallelism(opts.Parallelism, w[0].GroupBy, opts.OnResult != nil)
	var err error
	switch opts.Strategy {
	case StrategyTwoStep:
		sys.executor, err = exec.NewTwoStep(w, execOpts)
	case StrategySASE:
		sys.executor, err = exec.NewSASE(w, execOpts)
	case StrategySPASS:
		sys.executor, err = exec.NewSPASS(w, plan, execOpts)
	case StrategyNonShared:
		if workers > 1 {
			sys.executor, err = exec.NewParallelEngine(w, nil, workers, execOpts)
		} else {
			sys.executor, err = exec.NewEngine(w, nil, execOpts)
		}
	default:
		if workers > 1 {
			sys.executor, err = exec.NewParallelEngine(w, plan, workers, execOpts)
		} else {
			sys.executor, err = exec.NewEngine(w, plan, execOpts)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("sharon: %w", err)
	}
	reclaimOnDrop(sys, sys.executor)
	return sys, nil
}

// Plan returns the sharing plan in effect.
func (s *System) Plan() Plan { return s.plan }

// PlanScore returns the optimizer's estimated benefit of the plan
// (Definition 8); zero when a plan was supplied directly.
func (s *System) PlanScore() float64 { return s.score }

// FormatPlan renders the plan with type names from reg.
func (s *System) FormatPlan(reg *Registry) string {
	return s.plan.Format(reg, s.workload)
}

// Process feeds the next event. Events must arrive in strictly increasing
// timestamp order.
func (s *System) Process(e Event) error {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	return s.executor.Process(e)
}

// FeedBatch feeds a batch of strictly time-ordered events. On the
// parallel path this hoists the per-call liveness checks out of the
// event loop; the event batching itself happens inside the executor on
// both entry points, so Process-in-a-loop delivers the same batches.
func (s *System) FeedBatch(events []Event) error {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	return feedBatch(s.executor, events)
}

// feedBatch routes a batch through an executor's own FeedBatch when it
// has one, falling back to per-event Process.
func feedBatch(ex exec.Executor, events []Event) error {
	type batcher interface{ FeedBatch([]Event) error }
	if b, ok := ex.(batcher); ok {
		return b.FeedBatch(events)
	}
	for _, e := range events {
		if err := ex.Process(e); err != nil {
			return err
		}
	}
	return nil
}

// ProcessAll replays a whole stream and flushes. On a feed error the
// run is stopped without emitting partial windows.
func (s *System) ProcessAll(stream Stream) error {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	if err := s.FeedBatch(stream); err != nil {
		stopParallel(s.executor)
		return err
	}
	return s.Flush()
}

// Flush closes every window containing events seen so far. Call at end of
// stream.
func (s *System) Flush() error {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	return s.executor.Flush()
}

// AdvanceWatermark declares that no event at or before time t will
// arrive anymore: every window ending at or before t closes and its
// results are emitted (to the OnResult sink, or into the collected set)
// without consuming an event and without ending the run. It is the
// emission driver for unbounded streams — sources that pause or that
// carry explicit watermark punctuation use it to bound result latency;
// Flush remains the terminal close of a finite stream. Subsequent events
// at or before t are rejected as out-of-order. Calls before the first
// event or behind the current watermark are no-ops. Supported by the
// online executors (sequential and parallel); the comparison baselines
// (TwoStep, SPASS, SASE) ignore it.
func (s *System) AdvanceWatermark(t int64) {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	advanceWatermark(s.executor, t)
}

// advanceWatermark forwards a watermark to executors that support one.
func advanceWatermark(ex exec.Executor, t int64) {
	type watermarked interface{ AdvanceWatermark(t int64) }
	if w, ok := ex.(watermarked); ok {
		w.AdvanceWatermark(t)
	}
}

// Close releases the executor without emitting the windows still open.
// A parallel run (Parallelism != 1) must end with Flush — which
// delivers all windows — or Close: dropping an unflushed parallel
// System leaks its worker goroutines. On the sequential path Close is a
// no-op. Idempotent, and safe after Flush.
func (s *System) Close() {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	stopParallel(s.executor)
}

// Results returns the collected results, sorted by query, window, group.
// Collection and the OnResult sink are mutually exclusive: when
// Options.OnResult is set the system does not retain results and Results
// always returns nil — the sink is the single consumer, and there is no
// partially delivered snapshot to race with the callback. On the
// parallel path results are available only after Flush (nil before); the
// sequential path also exposes the results collected so far mid-run.
func (s *System) Results() []Result { return collectedResults(s.executor, s.collect) }

// ResultCount reports the number of aggregates emitted so far.
func (s *System) ResultCount() int64 { return s.executor.ResultCount() }

// PeakMemoryStates reports the executor's peak number of live aggregate
// states (the paper's memory metric unit). On the parallel path the
// shards' peaks are summed at Flush time (0 before).
func (s *System) PeakMemoryStates() int64 { return s.executor.PeakLiveStates() }

// Value extracts a result's final numeric answer for its query.
func Value(r Result, q *Query) float64 { return r.Value(q) }

// FindCandidates exposes the modified CCSpan sharable-pattern detection
// (Appendix A): every contiguous sub-pattern of length > 1 appearing in
// more than one query.
func FindCandidates(w Workload) []Candidate { return core.FindCandidates(w) }

// Optimize runs the Sharon optimizer alone and returns the chosen plan and
// its score; useful for inspecting sharing decisions without executing.
func Optimize(w Workload, rates Rates) (Plan, float64, error) {
	res, err := core.Optimize(w, rates, core.OptimizerOptions{
		Strategy: core.StrategySharon,
		Expand:   true,
		Budget:   10 * time.Second,
	})
	if err != nil {
		return nil, 0, err
	}
	return res.Plan, res.Score, nil
}

// Explain renders the executor's per-query decomposition (shared vs
// private segments) when the system runs the online engine (sequential
// or parallel); other strategies return an empty string.
func (s *System) Explain(reg *Registry) string {
	switch en := s.executor.(type) {
	case *exec.Engine:
		return en.Explain(reg)
	case *exec.Parallel:
		return en.Explain(reg)
	}
	return ""
}

// ParallelStats reports the parallel executor's throughput and
// shard-occupancy counters; the zero value when the system runs
// sequentially. Elapsed/throughput fields are populated by Flush.
func (s *System) ParallelStats() ParallelStats { return parallelStats(s.executor) }
