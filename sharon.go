// Package sharon is a from-scratch Go implementation of SHARON — Shared
// Online Event Sequence Aggregation (Poppe et al., ICDE 2018): a complex
// event processing engine that evaluates workloads of event sequence
// aggregation queries online (without constructing sequences) while
// sharing intermediate aggregates among queries according to an optimal
// sharing plan.
//
// The typical flow mirrors the paper's framework (Fig. 5):
//
//	reg := sharon.NewRegistry()
//	q1 := sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(OakSt, MainSt) WHERE [vehicle] WITHIN 10m SLIDE 1m", reg)
//	q2 := sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(ParkAve, OakSt, MainSt) WHERE [vehicle] WITHIN 10m SLIDE 1m", reg)
//	sys, err := sharon.NewSystem(sharon.Workload{q1, q2}, sharon.Options{Rates: rates})
//	for _, e := range stream {
//	    sys.Process(e)
//	}
//	sys.Flush()
//	for _, r := range sys.Results() { ... }
//
// NewSystem runs the static optimizer — sharable pattern detection
// (modified CCSpan), the benefit model, the Sharon graph, GWMIN-bound
// reduction, and the optimal plan finder — and instantiates the shared
// online executor for the chosen plan. Baseline executors (A-Seq,
// Flink-style two-step, SPASS) are exposed for comparison via Strategy.
package sharon

import (
	"fmt"
	"time"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/exec"
	"github.com/sharon-project/sharon/internal/query"
)

// Re-exported data-model types. Events carry a timestamp in ticks
// (TicksPerSecond per second), an interned type, a grouping key, and one
// numeric attribute.
type (
	// Event is a time-stamped message on the input stream.
	Event = event.Event
	// Type is an interned event type.
	Type = event.Type
	// GroupKey is the grouping-attribute value of an event.
	GroupKey = event.GroupKey
	// Registry interns event type names.
	Registry = event.Registry
	// Stream is a finite, strictly time-ordered event sequence.
	Stream = event.Stream
	// Pattern is an event sequence pattern (E1 ... El).
	Pattern = query.Pattern
	// Query is an event sequence aggregation query.
	Query = query.Query
	// Workload is a set of queries evaluated together.
	Workload = query.Workload
	// Window is a sliding window (WITHIN/SLIDE).
	Window = query.Window
	// Result is one aggregate: (query, window, group) -> state.
	Result = exec.Result
	// Plan is a sharing plan: the set of sharing candidates in effect.
	Plan = core.Plan
	// Candidate is one sharing candidate (p, Qp).
	Candidate = core.Candidate
	// Rates maps event types to rates for the optimizer's benefit model.
	Rates = core.Rates
)

// TicksPerSecond is the timestamp resolution of the event model.
const TicksPerSecond = event.TicksPerSecond

// NewRegistry returns an empty event type registry.
func NewRegistry() *Registry { return event.NewRegistry() }

// ParseQuery parses a query in the SASE-style surface language, e.g.
//
//	RETURN COUNT(*) PATTERN SEQ(OakSt, MainSt) WHERE [vehicle] WITHIN 10m SLIDE 1m
func ParseQuery(text string, reg *Registry) (*Query, error) {
	return query.Parse(text, reg)
}

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(text string, reg *Registry) *Query {
	return query.MustParse(text, reg)
}

// Strategy selects an execution strategy for NewSystem.
type Strategy int

const (
	// StrategySharon (default) runs the Sharon optimizer and the shared
	// online executor.
	StrategySharon Strategy = iota
	// StrategyGreedy runs the greedy (GWMIN) optimizer with the shared
	// online executor.
	StrategyGreedy
	// StrategyNonShared evaluates every query independently online
	// (the A-Seq baseline).
	StrategyNonShared
	// StrategyTwoStep constructs all sequences before aggregating them
	// (the Flink-style baseline). For comparison only.
	StrategyTwoStep
	// StrategySPASS shares sequence construction but not aggregation.
	// For comparison only.
	StrategySPASS
	// StrategySASE constructs sequences incrementally with an NFA per
	// query (SASE/Cayuga style). For comparison only.
	StrategySASE
)

// Options configures NewSystem.
type Options struct {
	// Strategy selects optimizer + executor (default StrategySharon).
	Strategy Strategy
	// Rates supplies per-type event rates for the benefit model. When
	// nil, sharing decisions assume uniform rates across the workload's
	// types. Use MeasureRates on a stream sample for realistic plans.
	Rates Rates
	// Plan, when non-nil, bypasses the optimizer and executes this plan.
	Plan Plan
	// OnResult receives every aggregate as it is emitted. If nil,
	// results are collected and available from Results.
	OnResult func(Result)
	// EmitEmpty also emits zero results for windows without matches.
	EmitEmpty bool
	// OptimizerBudget bounds the plan search; on expiry the best plan
	// found so far (at least GWMIN's) is used. Default 10s.
	OptimizerBudget time.Duration
}

// System is a compiled workload: an optimizer-chosen sharing plan and a
// running executor.
type System struct {
	workload Workload
	plan     Plan
	score    float64
	executor exec.Executor
	collect  bool
}

// MeasureRates computes per-type rates from a stream sample, normalized
// per group when the workload groups by key (the executor partitions the
// stream, so the cost model must see per-group rates).
func MeasureRates(sample Stream, w Workload) Rates {
	rates := Rates(sample.Rates())
	if len(w) == 0 || !w[0].GroupBy {
		return rates
	}
	keys := make(map[GroupKey]bool)
	for _, e := range sample {
		keys[e.Key] = true
	}
	if n := float64(len(keys)); n > 1 {
		for t := range rates {
			rates[t] /= n
		}
	}
	return rates
}

// NewSystem optimizes the workload and builds its executor.
func NewSystem(w Workload, opts Options) (*System, error) {
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("sharon: %w", err)
	}
	rates := opts.Rates
	if rates == nil {
		rates = Rates{}
		for t := range w.Types() {
			rates[t] = 1
		}
	}
	budget := opts.OptimizerBudget
	if budget == 0 {
		budget = 10 * time.Second
	}

	sys := &System{workload: w, collect: opts.OnResult == nil}
	execOpts := exec.Options{
		OnResult:  opts.OnResult,
		Collect:   sys.collect,
		EmitEmpty: opts.EmitEmpty,
	}

	plan := opts.Plan
	if plan == nil {
		var strat core.Strategy
		switch opts.Strategy {
		case StrategySharon:
			strat = core.StrategySharon
		case StrategyGreedy:
			strat = core.StrategyGreedy
		default:
			strat = core.StrategyNone
		}
		res, err := core.Optimize(w, rates, core.OptimizerOptions{
			Strategy: strat,
			Expand:   strat == core.StrategySharon,
			Budget:   budget,
		})
		if err != nil {
			return nil, fmt.Errorf("sharon: optimize: %w", err)
		}
		plan = res.Plan
		sys.score = res.Score
	}
	sys.plan = plan

	var err error
	switch opts.Strategy {
	case StrategyTwoStep:
		sys.executor, err = exec.NewTwoStep(w, execOpts)
	case StrategySASE:
		sys.executor, err = exec.NewSASE(w, execOpts)
	case StrategySPASS:
		sys.executor, err = exec.NewSPASS(w, plan, execOpts)
	case StrategyNonShared:
		sys.executor, err = exec.NewEngine(w, nil, execOpts)
	default:
		sys.executor, err = exec.NewEngine(w, plan, execOpts)
	}
	if err != nil {
		return nil, fmt.Errorf("sharon: %w", err)
	}
	return sys, nil
}

// Plan returns the sharing plan in effect.
func (s *System) Plan() Plan { return s.plan }

// PlanScore returns the optimizer's estimated benefit of the plan
// (Definition 8); zero when a plan was supplied directly.
func (s *System) PlanScore() float64 { return s.score }

// FormatPlan renders the plan with type names from reg.
func (s *System) FormatPlan(reg *Registry) string {
	return s.plan.Format(reg, s.workload)
}

// Process feeds the next event. Events must arrive in strictly increasing
// timestamp order.
func (s *System) Process(e Event) error { return s.executor.Process(e) }

// ProcessAll replays a whole stream and flushes.
func (s *System) ProcessAll(stream Stream) error {
	for _, e := range stream {
		if err := s.executor.Process(e); err != nil {
			return err
		}
	}
	return s.Flush()
}

// Flush closes every window containing events seen so far. Call at end of
// stream.
func (s *System) Flush() error { return s.executor.Flush() }

// Results returns the collected results (only when Options.OnResult was
// nil), sorted by query, window, group.
func (s *System) Results() []Result {
	type collector interface{ Results() []Result }
	if c, ok := s.executor.(collector); ok && s.collect {
		return c.Results()
	}
	return nil
}

// ResultCount reports the number of aggregates emitted so far.
func (s *System) ResultCount() int64 { return s.executor.ResultCount() }

// PeakMemoryStates reports the executor's peak number of live aggregate
// states (the paper's memory metric unit).
func (s *System) PeakMemoryStates() int64 { return s.executor.PeakLiveStates() }

// Value extracts a result's final numeric answer for its query.
func Value(r Result, q *Query) float64 { return r.Value(q) }

// FindCandidates exposes the modified CCSpan sharable-pattern detection
// (Appendix A): every contiguous sub-pattern of length > 1 appearing in
// more than one query.
func FindCandidates(w Workload) []Candidate { return core.FindCandidates(w) }

// Optimize runs the Sharon optimizer alone and returns the chosen plan and
// its score; useful for inspecting sharing decisions without executing.
func Optimize(w Workload, rates Rates) (Plan, float64, error) {
	res, err := core.Optimize(w, rates, core.OptimizerOptions{
		Strategy: core.StrategySharon,
		Expand:   true,
		Budget:   10 * time.Second,
	})
	if err != nil {
		return nil, 0, err
	}
	return res.Plan, res.Score, nil
}

// Explain renders the executor's per-query decomposition (shared vs
// private segments) when the system runs the online engine; other
// strategies return an empty string.
func (s *System) Explain(reg *Registry) string {
	if en, ok := s.executor.(*exec.Engine); ok {
		return en.Explain(reg)
	}
	return ""
}
