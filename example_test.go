package sharon_test

import (
	"fmt"

	sharon "github.com/sharon-project/sharon"
)

// ExampleNewSystem reproduces the paper's Fig. 7: the count of
// SEQ(A,B,C,D) is computed from shared aggregates of (C,D).
func ExampleNewSystem() {
	reg := sharon.NewRegistry()
	workload := sharon.Workload{
		sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B, C, D) WITHIN 10s SLIDE 10s", reg),
		sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(C, D) WITHIN 10s SLIDE 10s", reg),
	}
	workload.Renumber()

	rates := sharon.Rates{
		reg.Intern("A"): 10, reg.Intern("B"): 10,
		reg.Intern("C"): 50, reg.Intern("D"): 50,
	}
	sys, err := sharon.NewSystem(workload, sharon.Options{Rates: rates})
	if err != nil {
		panic(err)
	}
	defer sys.Close()
	fmt.Println("plan:", sys.FormatPlan(reg))

	// a1 b2 c3 d4 a5 b6 c7 d8 within one window.
	var stream sharon.Stream
	for i, name := range []string{"A", "B", "C", "D", "A", "B", "C", "D"} {
		stream = append(stream, sharon.Event{Time: int64(i+1) * 1000, Type: reg.Lookup(name)})
	}
	if err := sys.ProcessAll(stream); err != nil {
		panic(err)
	}
	for _, r := range sys.Results() {
		q := workload[r.Query]
		fmt.Printf("%s: %.0f\n", q.Label(), sharon.Value(r, q))
	}
	// Output:
	// plan: {((C, D), {q1, q2})}
	// q1: 5
	// q2: 3
}

// ExampleParseQuery shows the SASE-style surface language.
func ExampleParseQuery() {
	reg := sharon.NewRegistry()
	q, err := sharon.ParseQuery(
		"RETURN SUM(MainSt.val) PATTERN SEQ(OakSt, MainSt) WHERE [vehicle] AND OakSt.val > 30 WITHIN 10m SLIDE 1m", reg)
	if err != nil {
		panic(err)
	}
	fmt.Println(q.Format(reg))
	// Output:
	// RETURN SUM(MainSt.val) PATTERN SEQ(OakSt, MainSt) WHERE [key] AND OakSt.val > 30 WITHIN 10m SLIDE 1m
}

// ExampleFindCandidates lists the sharable patterns of a small workload
// (the modified CCSpan detection of Appendix A).
func ExampleFindCandidates() {
	reg := sharon.NewRegistry()
	w := sharon.Workload{
		sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(ParkAve, OakSt, MainSt) WITHIN 10m SLIDE 1m", reg),
		sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(OakSt, MainSt, WestSt) WITHIN 10m SLIDE 1m", reg),
	}
	w.Renumber()
	for _, c := range sharon.FindCandidates(w) {
		fmt.Println(c.Pattern.Format(reg))
	}
	// Output:
	// (OakSt, MainSt)
}
