// Benchmarks regenerating each table and figure of the paper's evaluation
// (§8) at benchmark-friendly scale. One testing.B per experiment; the
// full-size sweeps (with the paper's parameter ranges) are produced by
// cmd/sharon-bench, and EXPERIMENTS.md records paper-vs-measured.
package sharon_test

import (
	"testing"
	"time"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/exec"
	"github.com/sharon-project/sharon/internal/gen"
	"github.com/sharon-project/sharon/internal/query"
)

// benchSetup bundles a workload, a stream, and an optimized plan.
type benchSetup struct {
	w      query.Workload
	stream event.Stream
	plan   core.Plan
	rates  core.Rates
}

func perGroupRates(stream event.Stream, w query.Workload) core.Rates {
	rates := core.Rates(stream.Rates())
	if len(w) > 0 && w[0].GroupBy {
		keys := make(map[event.GroupKey]bool)
		for _, e := range stream {
			keys[e.Key] = true
		}
		if n := float64(len(keys)); n > 1 {
			for t := range rates {
				rates[t] /= n
			}
		}
	}
	return rates
}

func setupChunks(b *testing.B, nq, plen, events int, winLen int64) *benchSetup {
	b.Helper()
	wcfg := gen.WorkloadConfig{
		NumQueries: nq, PatternLen: plen,
		SharedChunks: 3, ChunkLen: 2 * plen / 5, ChunksPerQuery: 2, FillerPool: 20,
		UniquePatterns: nq / 2,
		Window:         winLen, Slide: winLen / 2,
		GroupBy: true, Seed: 1,
	}
	w, types := gen.GenWorkload(event.NewRegistry(), wcfg)
	stream := gen.StreamForWorkload(types, gen.NumHotTypes(wcfg), events, 20, 1000, 3, 1)
	rates := perGroupRates(stream, w)
	res, err := core.Optimize(w, rates, core.OptimizerOptions{
		Strategy:     core.StrategySharon,
		Expand:       true,
		ExpandConfig: core.ExpandConfig{MaxOptionsPerCandidate: 4, MaxTotalVertices: 512},
		Budget:       2 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	return &benchSetup{w: w, stream: stream, plan: res.Plan, rates: rates}
}

func runExecutor(b *testing.B, mk func() (exec.Executor, error), stream event.Stream) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex, err := mk()
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range stream {
			if err := ex.Process(e); err != nil {
				b.Fatal(err)
			}
		}
		if err := ex.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(stream)) * 16)
}

// BenchmarkTable1Candidates regenerates Table 1: sharable-pattern
// detection (modified CCSpan) plus Sharon graph construction and the plan
// finder on the paper's traffic workload.
func BenchmarkTable1Candidates(b *testing.B) {
	tr := gen.Traffic()
	rates := core.Rates{}
	for t := range tr.Workload.Types() {
		rates[t] = 10
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cands := core.FindCandidates(tr.Workload)
		if len(cands) != 7 {
			b.Fatalf("candidates = %d, want 7", len(cands))
		}
		model := core.NewCostModel(tr.Workload, rates)
		g := core.BuildGraph(model, cands)
		red := core.Reduce(g)
		core.FindOptimalPlan(red.Reduced, red.ConflictFree, time.Time{})
	}
}

// BenchmarkFig13TwoStepVsOnline regenerates Figure 13 at one sweep point:
// the four executors on the same window contents. The two-step baselines'
// times explode with events/window; the online ones stay near-linear.
func BenchmarkFig13TwoStepVsOnline(b *testing.B) {
	const n = 600 // events per window: small enough for two-step baselines
	winLen := int64(n)
	wcfg := gen.WorkloadConfig{
		NumQueries: 6, PatternLen: 3,
		SharedChunks: 2, ChunkLen: 2, ChunksPerQuery: 1, FillerPool: 6,
		Window: winLen, Slide: winLen,
		Seed: 1,
	}
	w, types := gen.GenWorkload(event.NewRegistry(), wcfg)
	stream := gen.StreamForWorkload(types, 4, 3*n, 1, 1000, 2, 1)
	rates := perGroupRates(stream, w)
	res, err := core.Optimize(w, rates, core.OptimizerOptions{Strategy: core.StrategySharon, Expand: true, Budget: time.Second})
	if err != nil {
		b.Fatal(err)
	}
	plan := res.Plan

	b.Run("Flink", func(b *testing.B) {
		runExecutor(b, func() (exec.Executor, error) { return exec.NewTwoStep(w, exec.Options{}) }, stream)
	})
	b.Run("SPASS", func(b *testing.B) {
		runExecutor(b, func() (exec.Executor, error) { return exec.NewSPASS(w, plan, exec.Options{}) }, stream)
	})
	b.Run("A-Seq", func(b *testing.B) {
		runExecutor(b, func() (exec.Executor, error) { return exec.NewEngine(w, nil, exec.Options{}) }, stream)
	})
	b.Run("Sharon", func(b *testing.B) {
		runExecutor(b, func() (exec.Executor, error) { return exec.NewEngine(w, plan, exec.Options{}) }, stream)
	})
}

// BenchmarkFig14EventsPerWindow regenerates Figure 14(a,e): the online
// approaches while the events per window grow.
func BenchmarkFig14EventsPerWindow(b *testing.B) {
	for _, n := range []int{5000, 20000} {
		s := setupChunks(b, 20, 10, 2*n, int64(n))
		b.Run("A-Seq/"+itoa(n), func(b *testing.B) {
			runExecutor(b, func() (exec.Executor, error) { return exec.NewEngine(s.w, nil, exec.Options{}) }, s.stream)
		})
		b.Run("Sharon/"+itoa(n), func(b *testing.B) {
			runExecutor(b, func() (exec.Executor, error) { return exec.NewEngine(s.w, s.plan, exec.Options{}) }, s.stream)
		})
	}
}

// BenchmarkFig14QueryCount regenerates Figure 14(b,f,d): the online
// approaches while the workload grows.
func BenchmarkFig14QueryCount(b *testing.B) {
	for _, nq := range []int{20, 60} {
		s := setupChunks(b, nq, 10, 12000, 6000)
		b.Run("A-Seq/"+itoa(nq), func(b *testing.B) {
			runExecutor(b, func() (exec.Executor, error) { return exec.NewEngine(s.w, nil, exec.Options{}) }, s.stream)
		})
		b.Run("Sharon/"+itoa(nq), func(b *testing.B) {
			runExecutor(b, func() (exec.Executor, error) { return exec.NewEngine(s.w, s.plan, exec.Options{}) }, s.stream)
		})
	}
}

// BenchmarkFig14PatternLength regenerates Figure 14(c,g,h): the online
// approaches while the pattern length grows.
func BenchmarkFig14PatternLength(b *testing.B) {
	for _, plen := range []int{10, 20} {
		s := setupChunks(b, 12, plen, 12000, 6000)
		b.Run("A-Seq/"+itoa(plen), func(b *testing.B) {
			runExecutor(b, func() (exec.Executor, error) { return exec.NewEngine(s.w, nil, exec.Options{}) }, s.stream)
		})
		b.Run("Sharon/"+itoa(plen), func(b *testing.B) {
			runExecutor(b, func() (exec.Executor, error) { return exec.NewEngine(s.w, s.plan, exec.Options{}) }, s.stream)
		})
	}
}

// BenchmarkFig15Optimizers regenerates Figure 15: the optimizer strategies
// on the conflict-rich corridor workload.
func BenchmarkFig15Optimizers(b *testing.B) {
	wcfg := gen.WorkloadConfig{
		Mode:       gen.ModeCorridor,
		NumQueries: 30, PatternLen: 8, CorridorLen: 10, SliceLen: 4,
		Window: 60000, Slide: 6000,
		GroupBy: true, Seed: 1,
	}
	w, types := gen.GenWorkload(event.NewRegistry(), wcfg)
	sample := gen.StreamForWorkload(types, gen.NumHotTypes(wcfg), 20000, 20, 3000, 3, 1)
	rates := perGroupRates(sample, w)
	expandCfg := core.ExpandConfig{MaxOptionsPerCandidate: 8, MaxTotalVertices: 512}

	b.Run("GO", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Optimize(w, rates, core.OptimizerOptions{Strategy: core.StrategyGreedy}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SO", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Optimize(w, rates, core.OptimizerOptions{
				Strategy: core.StrategySharon, Expand: true, ExpandConfig: expandCfg,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig16PlanQuality regenerates Figure 16: the executor guided by
// the greedy versus the optimal plan on the replicated traffic workload.
func BenchmarkFig16PlanQuality(b *testing.B) {
	const copies = 6 // 42 queries
	w, types, weights := gen.TrafficReplicas(event.NewRegistry(), copies)
	winLen := int64(4000)
	for i := range w {
		w[i].Window = query.Window{Length: winLen, Slide: winLen / 2}
	}
	stream := gen.Generate(gen.StreamConfig{
		Types: types, TypeWeights: weights,
		NumKeys: 20, Events: 8000,
		StartRate: 1000, EndRate: 1000, Seed: 1,
	})
	rates := core.Rates{}
	for i, t := range types {
		rates[t] = weights[i] * 1.5
	}
	greedy, err := core.Optimize(w, rates, core.OptimizerOptions{Strategy: core.StrategyGreedy})
	if err != nil {
		b.Fatal(err)
	}
	optimal, err := core.Optimize(w, rates, core.OptimizerOptions{Strategy: core.StrategySharon, Expand: true, Budget: 5 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	if optimal.Score < greedy.Score {
		b.Fatalf("optimal score %v below greedy %v", optimal.Score, greedy.Score)
	}
	b.Run("GreedyPlan", func(b *testing.B) {
		runExecutor(b, func() (exec.Executor, error) { return exec.NewEngine(w, greedy.Plan, exec.Options{}) }, stream)
	})
	b.Run("OptimalPlan", func(b *testing.B) {
		runExecutor(b, func() (exec.Executor, error) { return exec.NewEngine(w, optimal.Plan, exec.Options{}) }, stream)
	})
}

// BenchmarkParallelThroughput sweeps the sharded parallel executor's
// worker count on a multi-query grouped workload (the group-hash
// sharding axis). workers=1 is the sequential engine baseline; on a
// multi-core machine the 4-worker run should sustain at least twice the
// single-thread throughput (on a single-core machine the sweep only
// measures dispatch overhead). Events are fed through FeedBatch, which
// hoists per-call checks; the executor batches events into shard
// messages internally on either entry point.
func BenchmarkParallelThroughput(b *testing.B) {
	s := setupChunks(b, 20, 10, 40000, 8000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var ex exec.Executor
				var err error
				if workers == 1 {
					ex, err = exec.NewEngine(s.w, s.plan, exec.Options{})
				} else {
					ex, err = exec.NewParallelEngine(s.w, s.plan, workers, exec.Options{})
				}
				if err != nil {
					b.Fatal(err)
				}
				type batcher interface{ FeedBatch([]event.Event) error }
				if f, ok := ex.(batcher); ok {
					if err := f.FeedBatch(s.stream); err != nil {
						b.Fatal(err)
					}
				} else {
					for _, e := range s.stream {
						if err := ex.Process(e); err != nil {
							b.Fatal(err)
						}
					}
				}
				if err := ex.Flush(); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(s.stream)) * 16)
		})
	}
}

// BenchmarkAggregatorProcess measures the core online aggregation hot path
// in isolation (not a paper figure; ablation reference).
func BenchmarkAggregatorProcess(b *testing.B) {
	s := setupChunks(b, 1, 6, 20000, 5000)
	b.Run("single-query", func(b *testing.B) {
		runExecutor(b, func() (exec.Executor, error) { return exec.NewEngine(s.w, nil, exec.Options{}) }, s.stream)
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
