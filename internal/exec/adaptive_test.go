package exec

import (
	"testing"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/gen"
	"github.com/sharon-project/sharon/internal/query"
)

// adaptiveFixture builds a sharable workload plus a bursty stream whose
// envelope forces the adaptive executor through several share→split→share
// rounds. Windows are kept short (2s length, 0.5s slide) so a plan
// hand-off drains well inside one valley, and valleys are long (6s of an
// 8s period) so split decisions deferred by an in-flight hand-off get
// retried and land before the next burst.
func adaptiveFixture(t testing.TB, events, keys int, grouped bool, shape gen.BurstShape) (query.Workload, event.Stream) {
	t.Helper()
	wcfg := gen.WorkloadConfig{
		NumQueries: 4, PatternLen: 6,
		SharedChunks: 3, ChunkLen: 2, ChunksPerQuery: 2, FillerPool: 8,
		Window: 2000, Slide: 500,
		GroupBy: grouped, Seed: 7,
	}
	w, types := gen.GenWorkload(event.NewRegistry(), wcfg)
	stream := gen.BurstyStreamForWorkload(types, gen.NumHotTypes(wcfg), 3, gen.BurstyConfig{
		NumKeys: keys, Events: events,
		BaseRate: 100, BurstRate: 1000,
		Period: 8, Duty: 0.25,
		Shape: shape, Seed: 11,
	})
	return w, stream
}

// TestAdaptiveMatchesStaticAcrossTransitions is the equivalence oracle
// for the burst-adaptive executor: across multiple confirmed
// share→split→share plan hand-offs its output must be identical — same
// results, same order — to a static non-shared engine run over the same
// stream (which in turn matches a static shared engine; the migration
// protocol makes output plan-invariant).
func TestAdaptiveMatchesStaticAcrossTransitions(t *testing.T) {
	for _, shape := range []gen.BurstShape{gen.ShapeSquare, gen.ShapePoisson} {
		t.Run(shape.String(), func(t *testing.T) {
			w, stream := adaptiveFixture(t, 12000, 8, true, shape)

			ref, err := NewEngine(w, nil, Options{Collect: true})
			must(t, err)
			runAll(t, ref, stream)
			want := ref.Results()
			if len(want) == 0 {
				t.Fatal("static engine produced no results")
			}

			var decisions []BurstState
			d, err := NewDynamic(w, nil, DynamicConfig{
				Options:    Options{Collect: true},
				CheckEvery: 500,
				Adaptive:   true,
				OnDecision: func(at int64, state BurstState, plan core.Plan) {
					decisions = append(decisions, state)
					if state == Burst && len(plan) == 0 {
						t.Errorf("share decision at t=%d installed an empty plan", at)
					}
					if state == Valley && len(plan) != 0 {
						t.Errorf("split decision at t=%d installed a shared plan", at)
					}
				},
			})
			must(t, err)
			runAll(t, d, stream)

			if diff := diffResults(want, d.Results()); diff != "" {
				t.Fatalf("adaptive output diverges from static: %s", diff)
			}
			if d.ShareTransitions < 2 || d.SplitTransitions < 2 {
				t.Fatalf("share=%d split=%d transitions, want >= 2 each (decisions: %v)",
					d.ShareTransitions, d.SplitTransitions, decisions)
			}
			if d.Migrations != d.ShareTransitions+d.SplitTransitions {
				t.Fatalf("Migrations = %d, want share+split = %d",
					d.Migrations, d.ShareTransitions+d.SplitTransitions)
			}
			// Decisions must alternate: the executor reconciles against a
			// debounced state, so two same-direction installs in a row
			// would mean a redundant hand-off.
			for i := 1; i < len(decisions); i++ {
				if decisions[i] == decisions[i-1] {
					t.Fatalf("consecutive %v decisions at %d (decisions: %v)", decisions[i], i, decisions)
				}
			}
		})
	}
}

// TestParallelAdaptiveMatchesSequential runs the adaptive executor inside
// the key-hash parallel wrapper (per-shard detectors, per-shard
// decisions) and requires the merged output to match the static
// sequential engine exactly. Run under -race in CI, this also exercises
// the OnDecision serialization in NewParallelDynamic.
func TestParallelAdaptiveMatchesSequential(t *testing.T) {
	w, stream := adaptiveFixture(t, 12000, 8, true, gen.ShapeSquare)

	ref, err := NewEngine(w, nil, Options{Collect: true})
	must(t, err)
	runAll(t, ref, stream)
	want := ref.Results()
	if len(want) == 0 {
		t.Fatal("static engine produced no results")
	}

	p, dyns, err := NewParallelDynamic(w, nil, 4, DynamicConfig{
		Options:    Options{Collect: true},
		CheckEvery: 500,
		Adaptive:   true,
	})
	must(t, err)
	must(t, p.FeedBatch(stream))
	must(t, p.Flush())

	if diff := diffResults(want, p.Results()); diff != "" {
		t.Fatalf("parallel adaptive diverges from static: %s", diff)
	}
	var share, split int
	for _, d := range dyns {
		share += d.ShareTransitions
		split += d.SplitTransitions
	}
	if share < 1 || split < 1 {
		t.Fatalf("share=%d split=%d transitions across shards, want >= 1 each", share, split)
	}
}

// TestAdaptiveSteadyStreamStaysSplit feeds a constant-rate stream: the
// detector must never confirm a burst, so the executor runs the split
// plan throughout with zero migrations — adaptive mode is free on steady
// streams.
func TestAdaptiveSteadyStreamStaysSplit(t *testing.T) {
	wcfg := gen.WorkloadConfig{
		NumQueries: 4, PatternLen: 6,
		SharedChunks: 3, ChunkLen: 2, ChunksPerQuery: 2, FillerPool: 8,
		Window: 2000, Slide: 500,
		GroupBy: true, Seed: 7,
	}
	w, types := gen.GenWorkload(event.NewRegistry(), wcfg)
	stream := gen.StreamForWorkload(types, gen.NumHotTypes(wcfg), 8000, 8, 400, 3, 11)

	d, err := NewDynamic(w, nil, DynamicConfig{
		Options: Options{Collect: true}, CheckEvery: 500, Adaptive: true,
	})
	must(t, err)
	runAll(t, d, stream)
	if d.Migrations != 0 || d.ShareTransitions != 0 || d.SplitTransitions != 0 {
		t.Fatalf("steady stream migrated: migrations=%d share=%d split=%d",
			d.Migrations, d.ShareTransitions, d.SplitTransitions)
	}
	if d.BurstState() != Valley {
		t.Fatalf("steady stream ended in %v, want valley", d.BurstState())
	}
	if len(d.Plan()) != 0 {
		t.Fatalf("steady adaptive run installed a shared plan: %v", d.Plan())
	}
}
