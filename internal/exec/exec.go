// Package exec implements Sharon's runtime executors (paper §3 and §8.2):
//
//   - Engine: the online executor. With an empty sharing plan it is the
//     A-Seq baseline (non-shared method, §3.2); with a plan from the
//     optimizer it is the Sharon executor (shared method, §3.3).
//   - TwoStep: the Flink-style non-shared two-step baseline that constructs
//     every event sequence before aggregating it.
//   - SPASS: the shared two-step baseline that shares event sequence
//     construction but not aggregation.
//   - EnumerateWindow: a brute-force oracle used by the test suite.
//
// All executors consume one strictly time-ordered stream and emit one
// aggregate per (query, window, group).
package exec

import (
	"cmp"
	"fmt"
	"sort"

	"github.com/sharon-project/sharon/internal/agg"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// Result is one aggregation result: the aggregate of all sequences matched
// by query Query in window Win for group Group.
type Result struct {
	Query int
	Win   int64
	Group event.GroupKey
	State agg.State
}

// Value extracts the query's final answer from the result state.
func (r Result) Value(q *query.Query) float64 {
	return r.State.Value(valueKind(q.Agg.Kind))
}

func valueKind(k query.AggKind) agg.AggValueKind {
	switch k {
	case query.CountStar:
		return agg.ValueCountStar
	case query.CountE:
		return agg.ValueCountE
	case query.Sum:
		return agg.ValueSum
	case query.Min:
		return agg.ValueMin
	case query.Max:
		return agg.ValueMax
	case query.Avg:
		return agg.ValueAvg
	}
	return agg.ValueCountStar
}

// Executor is the common contract of all four evaluation strategies.
type Executor interface {
	// Name identifies the strategy ("Sharon", "A-Seq", "TwoStep", "SPASS").
	Name() string
	// Process feeds the next event; events must be strictly time-ordered.
	Process(e event.Event) error
	// Flush closes all remaining windows at end of stream.
	Flush() error
	// PeakLiveStates reports the maximum number of aggregate/sequence
	// states held at any sampled instant (the paper's peak-memory unit).
	PeakLiveStates() int64
	// ResultCount reports how many (query, window, group) results were
	// emitted so far.
	ResultCount() int64
}

// Options configures result delivery for an executor.
type Options struct {
	// OnResult receives every result as it is emitted. If nil and Collect
	// is true, results are retained and available via Results().
	OnResult func(Result)
	// Collect retains emitted results in memory.
	Collect bool
	// EmitEmpty also emits zero-valued results for windows in which a
	// query matched nothing.
	EmitEmpty bool
	// DisableStateReduction turns off the SHARP-style shared-state
	// reduction (dead-suffix pruning of START records and merging of
	// equivalent aggregators/stages across queries). Reduction is
	// output-invariant, so this knob exists for the reduction oracle
	// tests and for A/B measurements, not for correctness.
	DisableStateReduction bool
}

// resultSink implements shared result bookkeeping for executors.
type resultSink struct {
	opts    Options
	results []Result
	count   int64
}

// emit delivers one result to the configured sink.
//
//sharon:hotpath
//sharon:deterministic
func (rs *resultSink) emit(r Result) {
	rs.count++
	if rs.opts.OnResult != nil {
		rs.opts.OnResult(r) //sharon:allow hotpathalloc (subscriber callback: the benchmark sink is a no-op; server sinks own their costs)
	}
	if rs.opts.Collect {
		rs.results = append(rs.results, r) //sharon:allow hotpathalloc (Collect mode is off on the benchmarked path; tests that set it accept the appends)
	}
}

// lessResult is the canonical (query, window, group) result order used
// by every executor's Results() and by the parallel merge stage — a
// single definition keeps the parallel-equals-sequential byte-for-byte
// guarantee intact.
//
//sharon:hotpath
//sharon:deterministic
func lessResult(a, b Result) bool {
	return cmpResult(a, b) < 0
}

// cmpResult is lessResult as a three-way comparison for slices.SortFunc
// (the sequential executors' within-window emission sort).
//
//sharon:hotpath
//sharon:deterministic
func cmpResult(a, b Result) int {
	switch {
	case a.Query != b.Query:
		return cmp.Compare(a.Query, b.Query)
	case a.Win != b.Win:
		return cmp.Compare(a.Win, b.Win)
	default:
		return cmp.Compare(a.Group, b.Group)
	}
}

// Results returns collected results (Options.Collect must be set), sorted
// by query, window, group for deterministic comparison.
func (rs *resultSink) Results() []Result {
	out := make([]Result, len(rs.results))
	copy(out, rs.results)
	sort.Slice(out, func(i, j int) bool { return lessResult(out[i], out[j]) })
	return out
}

func (rs *resultSink) ResultCount() int64 { return rs.count }

// validateUniform checks the paper's core assumptions (§2.1): every query
// in the workload has the same window, the same grouping mode, and the
// same predicates. The §7.2 extension (partitioning by segment) is out of
// scope for the executors, which evaluate one uniform segment.
func validateUniform(w query.Workload) error {
	if len(w) == 0 {
		return fmt.Errorf("exec: empty workload")
	}
	if err := w.Validate(); err != nil {
		return fmt.Errorf("exec: %w", err)
	}
	first := w[0]
	for _, q := range w[1:] {
		if q.Window != first.Window {
			return fmt.Errorf("exec: query %s window %+v differs from %s window %+v (per-window sharing requires uniform windows, paper §2.1 assumption 2)",
				q.Label(), q.Window, first.Label(), first.Window)
		}
		if q.GroupBy != first.GroupBy {
			return fmt.Errorf("exec: query %s grouping differs from %s", q.Label(), first.Label())
		}
		if !samePredicates(q.Where, first.Where) {
			return fmt.Errorf("exec: query %s predicates differ from %s", q.Label(), first.Label())
		}
	}
	return nil
}

func samePredicates(a, b []query.Predicate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// accepts applies the workload's (uniform) predicates.
//
//sharon:hotpath
func accepts(preds []query.Predicate, e event.Event) bool {
	for _, p := range preds {
		if !p.Eval(e) {
			return false
		}
	}
	return true
}
