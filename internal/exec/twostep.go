package exec

import (
	"fmt"

	"github.com/sharon-project/sharon/internal/agg"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// DefaultSequenceCap bounds sequence construction per (window, group) for
// the two-step baselines.
const DefaultSequenceCap = 4 << 20

// TwoStep is the Flink-style non-shared two-step baseline (paper §1,
// §8.2): it buffers each window's events, constructs *every* matching
// event sequence per query, and only then aggregates. No computation is
// shared between queries. Because the number of sequences is polynomial
// (in practice explosive) in the events per window, it carries a
// construction cap; exceeding it surfaces ErrCapExceeded, mirroring the
// paper's "Flink does not terminate beyond 6k events per window".
type TwoStep struct {
	w     query.Workload
	win   query.Window
	group bool
	preds []query.Predicate
	resultSink

	buffers map[event.GroupKey][]event.Event
	started bool
	last    int64
	next    int64
	maxWin  int64

	// Cap is the per-(window,query,group) sequence budget.
	Cap int64
	// Constructed counts all sequences built (the two-step cost driver).
	Constructed int64
	peakLive    int64
}

// NewTwoStep builds the Flink-style baseline executor.
func NewTwoStep(w query.Workload, opts Options) (*TwoStep, error) {
	if err := validateUniform(w); err != nil {
		return nil, err
	}
	return &TwoStep{
		w: w, win: w[0].Window, group: w[0].GroupBy, preds: w[0].Where,
		resultSink: resultSink{opts: opts},
		buffers:    make(map[event.GroupKey][]event.Event),
		Cap:        DefaultSequenceCap,
		next:       -1, maxWin: -1,
	}, nil
}

// Name identifies the strategy.
func (t *TwoStep) Name() string { return "TwoStep" }

// Process buffers the event and closes any finished windows first.
func (t *TwoStep) Process(e event.Event) error {
	if t.started && e.Time <= t.last {
		return fmt.Errorf("exec: out-of-order event at t=%d", e.Time)
	}
	if !t.started {
		t.started = true
		t.next = t.win.FirstContaining(e.Time)
	}
	t.last = e.Time
	if err := t.closeUpTo(e.Time); err != nil {
		return err
	}
	if lastWin := t.win.LastContaining(e.Time); lastWin > t.maxWin {
		t.maxWin = lastWin
	}
	if !accepts(t.preds, e) {
		return nil
	}
	key := event.GroupKey(0)
	if t.group {
		key = e.Key
	}
	t.buffers[key] = append(t.buffers[key], e)
	return nil
}

func (t *TwoStep) closeUpTo(tm int64) error {
	for t.win.End(t.next) <= tm {
		win := t.next
		if win <= t.maxWin {
			if err := t.evaluateWindow(win); err != nil {
				return err
			}
		}
		t.next++
		t.expire()
	}
	return nil
}

// evaluateWindow is step 1 (construct all sequences) + step 2 (aggregate),
// per query, with nothing shared. The construction budget is per
// (window, group) across all queries: it caps the total work one window
// may cost, the quantity that makes two-step approaches "not terminate"
// in the paper's Fig. 13.
func (t *TwoStep) evaluateWindow(win int64) error {
	lo, hi := t.win.Start(win), t.win.End(win)
	for key, events := range t.buffers {
		idx := indexEvents(events, lo, hi)
		var buffered int64
		for _, evs := range idx.byType {
			buffered += int64(len(evs))
		}
		budget := t.Cap
		for _, q := range t.w {
			target := event.NoType
			if q.Agg.Kind != query.CountStar {
				target = q.Agg.Target
			}
			matches, err := EnumerateMatches(idx, q.Pattern, target, &budget)
			if err != nil {
				return fmt.Errorf("query %s window %d: %w", q.Label(), win, err)
			}
			t.Constructed += int64(len(matches))
			// Two-step memory: buffered events plus the materialized
			// sequences of this query.
			if live := buffered + int64(len(matches)); live > t.peakLive {
				t.peakLive = live
			}
			total := agg.Zero()
			for _, m := range matches {
				total.AddInPlace(m.State)
			}
			if total.Count > 0 || t.opts.EmitEmpty {
				t.emit(Result{Query: q.ID, Win: win, Group: key, State: total})
			}
		}
	}
	return nil
}

// expire drops buffered events no open window can contain.
func (t *TwoStep) expire() {
	minStart := t.win.Start(t.next)
	for key, events := range t.buffers {
		i := 0
		for i < len(events) && events[i].Time < minStart {
			i++
		}
		if i > 0 {
			t.buffers[key] = append(events[:0:0], events[i:]...)
		}
	}
}

// Flush evaluates all remaining windows.
func (t *TwoStep) Flush() error {
	if !t.started {
		return nil
	}
	return t.closeUpTo(t.win.End(t.maxWin))
}

// PeakLiveStates reports buffered events + materialized sequences at peak.
func (t *TwoStep) PeakLiveStates() int64 { return t.peakLive }
