package exec

import (
	"testing"
	"time"

	"github.com/sharon-project/sharon/internal/agg"
	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/gen"
	"github.com/sharon-project/sharon/internal/query"
)

// TestOptimizerPlansExecuteCorrectly is the end-to-end integration
// property: for generated workloads (both sharing topologies, grouped
// streams), the plan chosen by the real Sharon optimizer executes to
// exactly the same results as the non-shared engine.
func TestOptimizerPlansExecuteCorrectly(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test runs generated workloads")
	}
	cases := []struct {
		name string
		cfg  gen.WorkloadConfig
	}{
		{"chunks", gen.WorkloadConfig{
			NumQueries: 12, PatternLen: 6,
			SharedChunks: 3, ChunkLen: 3, ChunksPerQuery: 1, FillerPool: 10,
			UniquePatterns: 6,
			Window:         4000, Slide: 1000, GroupBy: true, Seed: 21,
		}},
		{"corridor", gen.WorkloadConfig{
			Mode:       gen.ModeCorridor,
			NumQueries: 10, PatternLen: 5, CorridorLen: 7, SliceLen: 3,
			Window: 4000, Slide: 2000, GroupBy: true, Seed: 22,
		}},
		{"duplicates", gen.WorkloadConfig{
			NumQueries: 10, PatternLen: 5,
			SharedChunks: 2, ChunkLen: 2, ChunksPerQuery: 1, FillerPool: 8,
			DuplicateFraction: 0.6,
			Window:            4000, Slide: 1000, GroupBy: false, Seed: 23,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, types := gen.GenWorkload(event.NewRegistry(), tc.cfg)
			stream := gen.StreamForWorkload(types, gen.NumHotTypes(tc.cfg), 6000, 4, 1000, 3, tc.cfg.Seed)
			rates := core.Rates(stream.Rates())
			if tc.cfg.GroupBy {
				for k := range rates {
					rates[k] /= 4
				}
			}
			res, err := core.Optimize(w, rates, core.OptimizerOptions{
				Strategy:     core.StrategySharon,
				Expand:       true,
				ExpandConfig: core.ExpandConfig{MaxOptionsPerCandidate: 8, MaxTotalVertices: 256},
				Budget:       5 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Plan.Validate(w); err != nil {
				t.Fatalf("optimizer produced invalid plan: %v", err)
			}

			ref, err := NewEngine(w, nil, Options{Collect: true})
			if err != nil {
				t.Fatal(err)
			}
			runAll(t, ref, stream)

			shared, err := NewEngine(w, res.Plan, Options{Collect: true})
			if err != nil {
				t.Fatal(err)
			}
			runAll(t, shared, stream)

			want, got := ref.Results(), shared.Results()
			if len(want) == 0 {
				t.Fatal("workload matched nothing; test is vacuous")
			}
			if msg := diffResults(want, got); msg != "" {
				t.Fatalf("shared execution differs under optimizer plan (%d candidates): %s",
					len(res.Plan), msg)
			}
			t.Logf("plan: %d candidates, score %.4g, %d results", len(res.Plan), res.Score, len(got))
		})
	}
}

// TestDynamicUnderOptimizedPlans stresses §7.4 on a generated workload
// with a mid-stream rate flip, comparing against non-shared execution.
func TestDynamicUnderOptimizedPlans(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := gen.WorkloadConfig{
		Mode:       gen.ModeCorridor,
		NumQueries: 8, PatternLen: 4, CorridorLen: 6, SliceLen: 3,
		Window: 3000, Slide: 1000, GroupBy: false, Seed: 31,
	}
	w, types := gen.GenWorkload(event.NewRegistry(), cfg)
	// First half: corridor types hot; second half: fillers hot.
	half1 := gen.StreamForWorkload(types, gen.NumHotTypes(cfg), 3000, 1, 1000, 5, 31)
	half2raw := gen.StreamForWorkload(types, gen.NumHotTypes(cfg), 3000, 1, 1000, 0.2, 32)
	offset := half1[len(half1)-1].Time + 1
	var stream event.Stream
	stream = append(stream, half1...)
	for _, e := range half2raw {
		e.Time += offset
		stream = append(stream, e)
	}
	if err := stream.Validate(); err != nil {
		t.Fatal(err)
	}

	d, err := NewDynamic(w, core.Rates(half1.Rates()), DynamicConfig{
		Options:        Options{Collect: true},
		CheckEvery:     1500,
		DriftThreshold: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, d, stream)

	ref, err := NewEngine(w, nil, Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, ref, stream)

	want, got := ref.Results(), d.Results()
	if len(want) != len(got) {
		t.Fatalf("result counts: dynamic %d vs static %d (migrations=%d)", len(got), len(want), d.Migrations)
	}
	for i := range want {
		if want[i].Query != got[i].Query || want[i].Win != got[i].Win ||
			want[i].Group != got[i].Group || !agg.ApproxEqual(want[i].State, got[i].State) {
			t.Fatalf("result %d differs (migrations=%d):\nstatic  %+v\ndynamic %+v",
				i, d.Migrations, want[i], got[i])
		}
	}
	t.Logf("migrations: %d over %d events", d.Migrations, len(stream))
}

// TestPartitionedUnderMixedWindows combines §7.2 partitioning with real
// optimizer plans per segment.
func TestPartitionedUnderMixedWindows(t *testing.T) {
	reg := event.NewRegistry()
	mk := func(text string) *query.Query { return query.MustParse(text, reg) }
	w := query.Workload{
		mk("RETURN COUNT(*) PATTERN SEQ(A, B, C) WITHIN 3s SLIDE 1s"),
		mk("RETURN COUNT(*) PATTERN SEQ(A, B, D) WITHIN 3s SLIDE 1s"),
		mk("RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 6s SLIDE 2s"),
		mk("RETURN SUM(B.val) PATTERN SEQ(A, B) WITHIN 6s SLIDE 2s"),
	}
	w.Renumber()
	var stream event.Stream
	letters := []string{"A", "B", "C", "D"}
	for i := 0; i < 800; i++ {
		stream = append(stream, event.Event{
			Time: int64(i+1) * 25,
			Type: reg.Lookup(letters[i%4]),
			Val:  float64(i % 7),
		})
	}
	rates := core.Rates(stream.Rates())
	p, err := NewPartitioned(w, rates, Options{Collect: true}, core.OptimizerOptions{
		Strategy: core.StrategySharon, Expand: true, Budget: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, p, stream)
	got := p.Results()

	var want []Result
	for _, seg := range PartitionWorkload(w) {
		oracle, err := Oracle(stream, seg)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, oracle...)
	}
	sortOK := func(rs []Result) {
		for i := 1; i < len(rs); i++ {
			for j := i; j > 0 && lessResult(rs[j], rs[j-1]); j-- {
				rs[j], rs[j-1] = rs[j-1], rs[j]
			}
		}
	}
	sortOK(want)
	sortOK(got)
	if msg := diffResults(want, got); msg != "" {
		t.Fatal(msg)
	}
}
