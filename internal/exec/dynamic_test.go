package exec

import (
	"math/rand"
	"testing"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// dynStream builds a stream whose type mix shifts abruptly halfway
// through, forcing a rate-drift migration.
func dynStream(f *fixture, n int) event.Stream {
	rng := rand.New(rand.NewSource(77))
	hotA := []byte("AABC")
	hotD := []byte("DDBC")
	out := make(event.Stream, n)
	t := int64(0)
	for i := 0; i < n; i++ {
		t += 1 + int64(rng.Intn(2))
		mix := hotA
		if i > n/2 {
			mix = hotD
		}
		out[i] = event.Event{
			Time: t,
			Type: f.ids[mix[rng.Intn(len(mix))]],
			Key:  event.GroupKey(rng.Intn(2)),
			Val:  float64(rng.Intn(10)),
		}
	}
	return out
}

// TestDynamicMatchesOracle is the §7.4 correctness property: results under
// runtime re-optimization and plan migration equal the brute-force oracle.
func TestDynamicMatchesOracle(t *testing.T) {
	f := newFixture()
	w := query.Workload{
		f.query(0, "ABC", 40, 10),
		f.query(1, "AB", 40, 10),
		f.query(2, "DBC", 40, 10),
		f.query(3, "DB", 40, 10),
	}
	stream := dynStream(f, 400)
	rates := core.Rates(stream[:100].Rates())

	var migrations int
	d, err := NewDynamic(w, rates, DynamicConfig{
		Options:        Options{Collect: true},
		CheckEvery:     60,
		DriftThreshold: 0.3,
		OnMigrate:      func(at int64, old, new core.Plan) { migrations++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, d, stream)

	oracle, err := Oracle(stream, w)
	if err != nil {
		t.Fatal(err)
	}
	if msg := diffResults(oracle, d.Results()); msg != "" {
		t.Fatalf("dynamic vs oracle (migrations=%d): %s", d.Migrations, msg)
	}
	if d.Migrations != migrations {
		t.Errorf("migration counter %d != callback count %d", d.Migrations, migrations)
	}
	t.Logf("migrations performed: %d", d.Migrations)
}

// TestDynamicMigrationOccurs asserts the drift detector actually fires on
// a shifting stream (otherwise the oracle test would pass vacuously).
func TestDynamicMigrationOccurs(t *testing.T) {
	f := newFixture()
	w := query.Workload{
		f.query(0, "ABC", 40, 10),
		f.query(1, "AB", 40, 10),
		f.query(2, "DBC", 40, 10),
		f.query(3, "DB", 40, 10),
	}
	stream := dynStream(f, 600)
	// Deliberately wrong initial rates: only A hot.
	rates := core.Rates{f.ids['A']: 100, f.ids['B']: 10, f.ids['C']: 10, f.ids['D']: 0.01}
	d, err := NewDynamic(w, rates, DynamicConfig{
		Options: Options{Collect: true}, CheckEvery: 50, DriftThreshold: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, d, stream)
	if d.Migrations == 0 {
		t.Error("no migration on a drifting stream")
	}
}

func TestDynamicNoDriftNoMigration(t *testing.T) {
	f := newFixture()
	w := query.Workload{f.query(0, "AB", 40, 10), f.query(1, "AB", 40, 10)}
	// Steady uniform stream.
	var stream event.Stream
	for i := int64(0); i < 300; i++ {
		c := byte('A' + i%2)
		stream = append(stream, event.Event{Time: 1 + i*2, Type: f.ids[c]})
	}
	rates := core.Rates(stream.Rates())
	d, err := NewDynamic(w, rates, DynamicConfig{Options: Options{Collect: true}, CheckEvery: 40})
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, d, stream)
	if d.Migrations != 0 {
		t.Errorf("%d migrations on a steady stream", d.Migrations)
	}
	oracle, err := Oracle(stream, w)
	if err != nil {
		t.Fatal(err)
	}
	if msg := diffResults(oracle, d.Results()); msg != "" {
		t.Fatal(msg)
	}
}

func TestDriftedHelper(t *testing.T) {
	a, b := event.Type(1), event.Type(2)
	if drifted(core.Rates{a: 10}, core.Rates{a: 12}, 0.5) {
		t.Error("20% change flagged at 50% threshold")
	}
	if !drifted(core.Rates{a: 10}, core.Rates{a: 16}, 0.5) {
		t.Error("60% change not flagged")
	}
	if !drifted(core.Rates{a: 10}, core.Rates{a: 10, b: 5}, 0.5) {
		t.Error("new type not flagged")
	}
	if !drifted(core.Rates{a: 10, b: 5}, core.Rates{a: 10}, 0.5) {
		t.Error("vanished type not flagged")
	}
}
