package exec

import (
	"fmt"
	"slices"

	"github.com/sharon-project/sharon/internal/agg"
	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
)

// Executor state snapshots (the durability subsystem's view of the
// engines): every online executor can serialize its logical runtime
// state — open window aggregates, live START records, stage combination
// snapshots — into plain exported structs, and a freshly constructed
// executor of the same shape can load them back and resume with
// byte-identical emission. The structs deliberately capture logical
// state, not memory layout: rings, slabs, and freelists are rebuilt by
// Restore, so the checkpoint format survives hot-path layout refactors
// (and restoring re-interns the PR 2 slab/pool structures without any
// change to the 0-alloc processing path — snapshots only read state).
//
// internal/persist owns the binary encoding of these structs; this file
// owns extraction and re-materialization.

// Snapshot kinds, recorded in SystemSnapshot.Kind. Restore validates the
// kind against the executor it is loaded into.
const (
	KindEngine      = "engine"
	KindParallel    = "parallel"
	KindPartitioned = "partitioned"
	KindDynamic     = "dynamic"
	KindSegments    = "segments"
)

// SystemSnapshot is the sum of all executor snapshot shapes: exactly one
// field matching Kind is set. It is the unit the server checkpoints and
// internal/persist encodes.
type SystemSnapshot struct {
	Kind        string
	Engine      *EngineSnapshot
	Partitioned *PartitionedSnapshot
	Dynamic     *DynamicSnapshot
	Parallel    *ParallelSnapshot
}

// EngineSnapshot is the serializable state of one sequential Engine.
type EngineSnapshot struct {
	Started     bool
	LastTime    int64
	NextClose   int64
	MaxWin      int64
	PeakLive    int64
	ResultCount int64
	// Groups are the engine's per-group runtimes, sorted by group key for
	// a deterministic encoding.
	Groups []GroupSnapshot
}

// GroupSnapshot is one group's runtime state: its aggregators (in the
// engine's deterministic node order: shared nodes first, then each
// chain's private nodes) and the chains' per-stage combination snapshots.
type GroupSnapshot struct {
	Key    event.GroupKey
	Nodes  []agg.Snapshot
	Stages []StageSnapshot
}

// StageSnapshot is the per-window upstream-snapshot state of one chain
// stage (stages after the first; stage 0 reads its aggregator directly).
type StageSnapshot struct {
	Chain   int
	Stage   int
	Windows []StageWindowSnapshot
}

// StageWindowSnapshot is one open window's snapshot entries, in arrival
// order (the order currentValue folds them in).
type StageWindowSnapshot struct {
	Win     int64
	Entries []SnapEntrySnapshot
}

// SnapEntrySnapshot is one (START record, upstream aggregate) pair; the
// record is referenced by its per-aggregator ID and rewired on restore.
type SnapEntrySnapshot struct {
	RecID int64
	Up    agg.State
}

// PartitionedSnapshot is the state of a sequential Partitioned executor
// (and of one parallel worker's segment shard): the segment engines'
// snapshots in segment order.
type PartitionedSnapshot struct {
	Started     bool
	Last        int64
	ResultCount int64
	Segments    []*EngineSnapshot
}

// DynamicSnapshot is the state of a §7.4 dynamic executor: the installed
// plan, the current engine (and the draining one mid-migration), and the
// rate-measurement counters that drive re-optimization — so a restored
// run migrates at exactly the points the uninterrupted run would.
type DynamicSnapshot struct {
	Started     bool
	Last        int64
	ResultCount int64
	Migrations  int
	Plan        core.Plan
	Rates       core.Rates
	Counts      map[event.Type]float64
	CountFrom   int64
	NextCheck   int64
	Boundary    int64
	CurrentFrom int64
	Current     *EngineSnapshot
	// DrainPlan/DrainFrom/Draining describe the old engine mid-migration;
	// Draining is nil when no hand-off is in flight.
	DrainPlan core.Plan
	DrainFrom int64
	Draining  *EngineSnapshot
	// Adaptive runtime state: the share/split transition counters, the
	// cumulative prune count of retired engines, and the burst
	// detector's baseline and debounced state. The detector's debounce
	// streak is deliberately not captured — restoring resets it, which
	// can defer the next transition by up to Confirm-1 intervals but
	// cannot change any emitted result (hand-offs are output-invariant).
	ShareTransitions int
	SplitTransitions int
	PrunedRetired    int64
	BurstBaseline    float64
	BurstState       int
}

// ParallelSnapshot is the state of a parallel executor: one shard
// snapshot per worker, captured under the quiesced snapshot barrier.
// Restore requires the same worker count (shard state is partitioned by
// the group-key hash, which is a function of the worker count).
type ParallelSnapshot struct {
	Started     bool
	Last        int64
	ResultCount int64
	Shards      []*SystemSnapshot
}

// --- Engine ---

// Snapshot captures the engine's logical state. The engine must be
// quiesced (no Process in flight); the caller owns the goroutine.
func (en *Engine) Snapshot() *SystemSnapshot {
	es := &EngineSnapshot{
		Started:     en.started,
		LastTime:    en.lastTime,
		NextClose:   en.nextClose,
		MaxWin:      en.maxWin,
		PeakLive:    en.peakLive,
		ResultCount: en.count,
	}
	keys := make([]event.GroupKey, 0, len(en.groups))
	for k := range en.groups {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		es.Groups = append(es.Groups, en.snapshotGroup(en.groups[k]))
	}
	return &SystemSnapshot{Kind: KindEngine, Engine: es}
}

func (en *Engine) snapshotGroup(g *engineGroup) GroupSnapshot {
	gs := GroupSnapshot{Key: g.key, Nodes: make([]agg.Snapshot, len(g.nodes))}
	for i, node := range g.nodes {
		gs.Nodes[i] = node.agg.Snapshot()
	}
	for ci, ch := range g.chains {
		for si, st := range ch.stages {
			if si == 0 {
				continue
			}
			// Merged stages are aliased by several chains; serialize each
			// distinct stage exactly once, under the coordinates of the
			// chain that created it (restore resolves the same alias, so
			// the entries land in the shared ring exactly once).
			if st.ownerChain != ci {
				continue
			}
			ss := StageSnapshot{Chain: ci, Stage: si}
			// Only windows within the ring's coverage can hold entries
			// (appends are preceded by ensureRing); windows of the live
			// span beyond a lagging ring are empty by that invariant, and
			// reading their aliased slots would duplicate other windows'
			// entries.
			hi := en.maxWin
			if cap := en.nextClose + int64(len(st.snapRing)) - 1; cap < hi {
				hi = cap
			}
			for k := en.nextClose; k <= hi; k++ {
				entries := st.snapRing[k&st.snapMask]
				if len(entries) == 0 {
					continue
				}
				ws := StageWindowSnapshot{Win: k, Entries: make([]SnapEntrySnapshot, len(entries))}
				for i, e := range entries {
					ws.Entries[i] = SnapEntrySnapshot{RecID: e.rec.ID, Up: e.up}
				}
				ss.Windows = append(ss.Windows, ws)
			}
			gs.Stages = append(gs.Stages, ss)
		}
	}
	return gs
}

// Restore loads an engine snapshot into a freshly constructed engine
// compiled from the same workload and plan. It must be called before the
// first event.
func (en *Engine) Restore(s *SystemSnapshot) error {
	if s.Kind != KindEngine || s.Engine == nil {
		return fmt.Errorf("exec: engine restore from %q snapshot", s.Kind)
	}
	es := s.Engine
	if en.started {
		return fmt.Errorf("exec: Restore on a started engine")
	}
	en.started = es.Started
	en.lastTime = es.LastTime
	en.nextClose = es.NextClose
	en.maxWin = es.MaxWin
	en.peakLive = es.PeakLive
	en.count = es.ResultCount
	for i := range es.Groups {
		if err := en.restoreGroup(&es.Groups[i]); err != nil {
			return err
		}
	}
	return nil
}

func (en *Engine) restoreGroup(gs *GroupSnapshot) error {
	if _, ok := en.groups[gs.Key]; ok {
		return fmt.Errorf("exec: duplicate group %d in snapshot", gs.Key)
	}
	g := en.buildGroup(gs.Key)
	en.groups[gs.Key] = g
	if len(gs.Nodes) != len(g.nodes) {
		return fmt.Errorf("exec: snapshot group %d has %d aggregators, engine builds %d (workload or plan changed)", gs.Key, len(gs.Nodes), len(g.nodes))
	}
	recsOf := make(map[*aggNode]map[int64]*agg.StartRec, len(g.nodes))
	for i, node := range g.nodes {
		byID, err := node.agg.Restore(gs.Nodes[i])
		if err != nil {
			return fmt.Errorf("exec: group %d aggregator %d: %w", gs.Key, i, err)
		}
		//sharon:allow slablifecycle (transient restore index used to rewire chain stages below; dead after this function)
		recsOf[node] = byID
	}
	for _, ss := range gs.Stages {
		if ss.Chain < 0 || ss.Chain >= len(g.chains) {
			return fmt.Errorf("exec: snapshot chain %d out of range", ss.Chain)
		}
		ch := g.chains[ss.Chain]
		if ss.Stage < 1 || ss.Stage >= len(ch.stages) {
			return fmt.Errorf("exec: snapshot stage %d out of range for chain %d", ss.Stage, ss.Chain)
		}
		st := ch.stages[ss.Stage]
		st.ensureRing()
		byID := recsOf[st.node]
		for _, ws := range ss.Windows {
			if ws.Win < en.nextClose || ws.Win > en.maxWin {
				return fmt.Errorf("exec: snapshot stage window %d outside live range [%d, %d]", ws.Win, en.nextClose, en.maxWin)
			}
			slot := ws.Win & st.snapMask
			for _, e := range ws.Entries {
				rec, ok := byID[e.RecID]
				if !ok {
					return fmt.Errorf("exec: snapshot stage entry references unknown START record %d", e.RecID)
				}
				st.snapRing[slot] = append(st.snapRing[slot], snapEntry{rec: rec, up: e.Up})
			}
		}
	}
	return nil
}

// --- Partitioned ---

// Snapshot captures the partitioned executor's state: every segment
// engine in segment order.
func (p *Partitioned) Snapshot() *SystemSnapshot {
	ps := &PartitionedSnapshot{Started: p.started, Last: p.last, ResultCount: p.count}
	for _, seg := range p.segments {
		ps.Segments = append(ps.Segments, seg.engine.Snapshot().Engine)
	}
	return &SystemSnapshot{Kind: KindPartitioned, Partitioned: ps}
}

// Restore loads a partitioned snapshot into a freshly constructed
// executor built from the same segment specs.
func (p *Partitioned) Restore(s *SystemSnapshot) error {
	if s.Kind != KindPartitioned || s.Partitioned == nil {
		return fmt.Errorf("exec: partitioned restore from %q snapshot", s.Kind)
	}
	ps := s.Partitioned
	if p.started {
		return fmt.Errorf("exec: Restore on a started partitioned executor")
	}
	if len(ps.Segments) != len(p.segments) {
		return fmt.Errorf("exec: snapshot has %d segments, executor has %d", len(ps.Segments), len(p.segments))
	}
	for i, seg := range p.segments {
		if err := seg.engine.Restore(&SystemSnapshot{Kind: KindEngine, Engine: ps.Segments[i]}); err != nil {
			return fmt.Errorf("exec: segment %d: %w", i, err)
		}
	}
	p.started, p.last, p.count = ps.Started, ps.Last, ps.ResultCount
	return nil
}

// --- Dynamic ---

// Snapshot captures the dynamic executor's state, including the
// rate-drift counters and — mid-migration — the draining engine.
func (d *Dynamic) Snapshot() *SystemSnapshot {
	ds := &DynamicSnapshot{
		Started:     d.started,
		Last:        d.last,
		ResultCount: d.count,
		Migrations:  d.Migrations,
		Plan:        d.plan.Clone(),
		Rates:       cloneRates(d.rates),
		Counts:      cloneCounts(d.counts),
		CountFrom:   d.countFrom,
		NextCheck:   d.nextCheck,
		Boundary:    d.boundary,
		CurrentFrom: d.currentFrom,
		Current:     d.current.Snapshot().Engine,
	}
	if d.draining != nil {
		ds.DrainPlan = d.drainPlan.Clone()
		ds.DrainFrom = d.drainFrom
		ds.Draining = d.draining.Snapshot().Engine
	}
	ds.ShareTransitions = d.ShareTransitions
	ds.SplitTransitions = d.SplitTransitions
	ds.PrunedRetired = d.prunedRetired
	if d.detector != nil {
		ds.BurstBaseline = d.detector.Baseline()
		ds.BurstState = int(d.detector.State())
	}
	return &SystemSnapshot{Kind: KindDynamic, Dynamic: ds}
}

// Restore loads a dynamic snapshot into a freshly constructed executor
// over the same workload. The constructor's initial engine is replaced by
// engines rebuilt for the snapshot's installed (and draining) plans.
func (d *Dynamic) Restore(s *SystemSnapshot) error {
	if s.Kind != KindDynamic || s.Dynamic == nil {
		return fmt.Errorf("exec: dynamic restore from %q snapshot", s.Kind)
	}
	ds := s.Dynamic
	if d.started {
		return fmt.Errorf("exec: Restore on a started dynamic executor")
	}
	cur, err := d.newEngine(ds.Plan, ds.CurrentFrom, -1)
	if err != nil {
		return err
	}
	if err := cur.Restore(&SystemSnapshot{Kind: KindEngine, Engine: ds.Current}); err != nil {
		return fmt.Errorf("exec: dynamic current engine: %w", err)
	}
	d.current = cur
	d.plan = ds.Plan
	d.draining = nil
	if ds.Draining != nil {
		old, err := d.newEngine(ds.DrainPlan, ds.DrainFrom, ds.Boundary-1)
		if err != nil {
			return err
		}
		if err := old.Restore(&SystemSnapshot{Kind: KindEngine, Engine: ds.Draining}); err != nil {
			return fmt.Errorf("exec: dynamic draining engine: %w", err)
		}
		d.draining = old
		d.drainPlan = ds.DrainPlan
		d.drainFrom = ds.DrainFrom
	}
	d.started = ds.Started
	d.last = ds.Last
	d.count = ds.ResultCount
	d.Migrations = ds.Migrations
	d.rates = cloneRates(ds.Rates)
	d.counts = cloneCounts(ds.Counts)
	if d.counts == nil {
		d.counts = make(map[event.Type]float64)
	}
	d.countFrom = ds.CountFrom
	d.nextCheck = ds.NextCheck
	d.boundary = ds.Boundary
	d.currentFrom = ds.CurrentFrom
	d.ShareTransitions = ds.ShareTransitions
	d.SplitTransitions = ds.SplitTransitions
	d.prunedRetired = ds.PrunedRetired
	if d.detector != nil {
		d.detector.restore(ds.BurstBaseline, BurstState(ds.BurstState))
	}
	return nil
}

func cloneRates(r core.Rates) core.Rates {
	if r == nil {
		return nil
	}
	out := make(core.Rates, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

func cloneCounts(c map[event.Type]float64) map[event.Type]float64 {
	if c == nil {
		return nil
	}
	out := make(map[event.Type]float64, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// --- Parallel ---

// shardPersist is the snapshot contract of a ShardTarget; all three
// concrete targets (Engine, Dynamic, segmentShard) implement it.
type shardPersist interface {
	Snapshot() *SystemSnapshot
	Restore(*SystemSnapshot) error
}

// Snapshot captures the parallel executor's state under a quiesced
// barrier: the feeder dispatches every pending batch stamped with the
// current watermark plus a snapshot request, each worker snapshots its
// shard after fully processing the round, and the merge stage confirms
// it has delivered every window the round made ready. When Snapshot
// returns, every result for windows ending at or before the watermark
// has been emitted through OnResult, and the shard snapshots jointly
// cover exactly the windows after it — the consistency the checkpoint's
// resumption cursor relies on.
func (p *Parallel) Snapshot() (*SystemSnapshot, error) {
	if p.closed {
		return nil, fmt.Errorf("exec: Snapshot after Flush on parallel executor")
	}
	if err := p.loadErr(); err != nil {
		return nil, err
	}
	snapCh := make(chan shardSnap, len(p.workers))
	for i, w := range p.workers {
		batch := p.pending[i]
		if p.broadcast {
			batch = p.pending[0]
		}
		msg := shardMsg{events: batch, pooled: !p.broadcast, snap: snapCh}
		if p.started {
			msg.wm, msg.hasWM = p.last, true
		}
		w.in <- msg
	}
	for i := range p.pending {
		p.pending[i] = nil
	}
	p.pendingN = 0
	p.rounds.Add(1)

	shards := make([]*SystemSnapshot, len(p.workers))
	var firstErr error
	for range p.workers {
		sn := <-snapCh
		if sn.err != nil {
			if firstErr == nil {
				firstErr = sn.err
			}
			continue
		}
		shards[sn.shard] = sn.s
	}
	<-p.snapBarrier // merge has delivered everything the round made ready
	if firstErr != nil {
		return nil, firstErr
	}
	return &SystemSnapshot{Kind: KindParallel, Parallel: &ParallelSnapshot{
		Started:     p.started,
		Last:        p.last,
		ResultCount: p.count.Load(),
		Shards:      shards,
	}}, nil
}

// Restore loads a parallel snapshot into a freshly constructed executor
// with the same worker count, before any event was fed. The workers have
// not been sent any message yet, so the feeder may touch shard state
// directly (same argument as reading a shard's initial plan).
func (p *Parallel) Restore(s *SystemSnapshot) error {
	if s.Kind != KindParallel || s.Parallel == nil {
		return fmt.Errorf("exec: parallel restore from %q snapshot", s.Kind)
	}
	ps := s.Parallel
	if p.started || p.closed {
		return fmt.Errorf("exec: Restore on a started parallel executor")
	}
	if len(ps.Shards) != len(p.workers) {
		return fmt.Errorf("exec: snapshot has %d shards, executor has %d workers (restore requires the same parallelism)", len(ps.Shards), len(p.workers))
	}
	for i, w := range p.workers {
		sp, ok := w.target.(shardPersist)
		if !ok {
			return fmt.Errorf("exec: shard %d target %T does not support restore", i, w.target)
		}
		if ps.Shards[i] == nil {
			return fmt.Errorf("exec: snapshot shard %d missing", i)
		}
		if err := sp.Restore(ps.Shards[i]); err != nil {
			return fmt.Errorf("exec: shard %d: %w", i, err)
		}
	}
	p.started = ps.Started
	p.last = ps.Last
	p.count.Store(ps.ResultCount)
	return nil
}

// --- segment shard (parallel partitioned worker) ---

// Snapshot serializes the shard's segment engines in assignment order.
func (s *segmentShard) Snapshot() *SystemSnapshot {
	ps := &PartitionedSnapshot{}
	for _, en := range s.engines {
		ps.Segments = append(ps.Segments, en.Snapshot().Engine)
	}
	return &SystemSnapshot{Kind: KindSegments, Partitioned: ps}
}

// Restore loads a segment-shard snapshot produced by the same segment
// assignment (same specs, same worker count).
func (s *segmentShard) Restore(snap *SystemSnapshot) error {
	if snap.Kind != KindSegments || snap.Partitioned == nil {
		return fmt.Errorf("exec: segment shard restore from %q snapshot", snap.Kind)
	}
	ps := snap.Partitioned
	if len(ps.Segments) != len(s.engines) {
		return fmt.Errorf("exec: snapshot has %d segment engines, shard has %d", len(ps.Segments), len(s.engines))
	}
	for i, en := range s.engines {
		if err := en.Restore(&SystemSnapshot{Kind: KindEngine, Engine: ps.Segments[i]}); err != nil {
			return fmt.Errorf("exec: segment engine %d: %w", i, err)
		}
	}
	return nil
}
