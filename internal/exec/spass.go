package exec

import (
	"fmt"

	"github.com/sharon-project/sharon/internal/agg"
	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// SPASS is the shared two-step baseline (paper §8.2, [25]): event sequence
// *construction* is shared — the matches of each shared pattern are
// constructed once per window for all queries containing it — but
// aggregation is not: every query still enumerates all combinations of its
// segment matches before folding them. It therefore beats the Flink-style
// baseline (construction amortized across queries) yet remains polynomial
// in the events per window, failing on high-rate streams exactly as the
// paper reports (41 min/window, DNF beyond ~7k events).
type SPASS struct {
	w     query.Workload
	win   query.Window
	group bool
	preds []query.Predicate
	resultSink

	proto   *engineProto // reuses the engine's segment decomposition
	buffers map[event.GroupKey][]event.Event
	started bool
	last    int64
	next    int64
	maxWin  int64

	// Cap is the per-(window,group) sequence construction budget.
	Cap int64
	// Constructed counts sequences built across all windows.
	Constructed int64
	peakLive    int64
}

// NewSPASS builds the shared two-step baseline. plan chooses which
// patterns' construction is shared (typically the same plan the Sharon
// executor uses, which is generous to SPASS).
func NewSPASS(w query.Workload, plan core.Plan, opts Options) (*SPASS, error) {
	if err := validateUniform(w); err != nil {
		return nil, err
	}
	if err := plan.Validate(w); err != nil {
		return nil, err
	}
	proto, err := compile(w, plan)
	if err != nil {
		return nil, err
	}
	return &SPASS{
		w: w, win: w[0].Window, group: w[0].GroupBy, preds: w[0].Where,
		resultSink: resultSink{opts: opts},
		proto:      proto,
		buffers:    make(map[event.GroupKey][]event.Event),
		Cap:        DefaultSequenceCap,
		next:       -1, maxWin: -1,
	}, nil
}

// Name identifies the strategy.
func (s *SPASS) Name() string { return "SPASS" }

// Process buffers the event, closing finished windows first.
func (s *SPASS) Process(e event.Event) error {
	if s.started && e.Time <= s.last {
		return fmt.Errorf("exec: out-of-order event at t=%d", e.Time)
	}
	if !s.started {
		s.started = true
		s.next = s.win.FirstContaining(e.Time)
	}
	s.last = e.Time
	if err := s.closeUpTo(e.Time); err != nil {
		return err
	}
	if lastWin := s.win.LastContaining(e.Time); lastWin > s.maxWin {
		s.maxWin = lastWin
	}
	if !accepts(s.preds, e) {
		return nil
	}
	key := event.GroupKey(0)
	if s.group {
		key = e.Key
	}
	s.buffers[key] = append(s.buffers[key], e)
	return nil
}

func (s *SPASS) closeUpTo(tm int64) error {
	for s.win.End(s.next) <= tm {
		win := s.next
		if win <= s.maxWin {
			if err := s.evaluateWindow(win); err != nil {
				return err
			}
		}
		s.next++
		s.expire()
	}
	return nil
}

// evaluateWindow constructs each distinct segment pattern's matches once
// per group (the shared step), then per query joins its segments' match
// lists into full sequences (the unshared step) and aggregates them.
func (s *SPASS) evaluateWindow(win int64) error {
	lo, hi := s.win.Start(win), s.win.End(win)
	for key, events := range s.buffers {
		idx := indexEvents(events, lo, hi)
		var buffered int64
		for _, evs := range idx.byType {
			buffered += int64(len(evs))
		}
		budget := s.Cap

		// Shared step: construct matches for every distinct segment
		// pattern exactly once.
		matchCache := make(map[string][]Match)
		var cached int64
		constructFor := func(p query.Pattern, target event.Type) ([]Match, error) {
			k := fmt.Sprintf("%s#%d", p.Key(), target)
			if m, ok := matchCache[k]; ok {
				return m, nil
			}
			m, err := EnumerateMatches(idx, p, target, &budget)
			if err != nil {
				return nil, err
			}
			matchCache[k] = m
			cached += int64(len(m))
			s.Constructed += int64(len(m))
			return m, nil
		}

		for _, ch := range s.proto.chains {
			q := ch.q
			target := event.NoType
			if q.Agg.Kind != query.CountStar {
				target = q.Agg.Target
			}
			lists := make([][]Match, len(ch.segs))
			var err error
			for i, seg := range ch.segs {
				lists[i], err = constructFor(seg.pattern, target)
				if err != nil {
					return fmt.Errorf("query %s window %d: %w", q.Label(), win, err)
				}
			}
			// Unshared step: join segment matches into full sequences.
			total := agg.Zero()
			var joined int64
			var join func(segIdx int, minTime int64, st agg.State) error
			join = func(segIdx int, minTime int64, st agg.State) error {
				if segIdx == len(lists) {
					joined++
					total.AddInPlace(st)
					return nil
				}
				list := lists[segIdx]
				// Matches are Start-sorted: binary search skips the
				// combinations a time-ordered join can never produce.
				for i := firstAfter(list, minTime); i < len(list); i++ {
					budget--
					if budget < 0 {
						return ErrCapExceeded
					}
					m := list[i]
					if err := join(segIdx+1, m.End, agg.Concat(st, m.State)); err != nil {
						return err
					}
				}
				return nil
			}
			if err := join(0, -1, agg.UnitEmpty()); err != nil {
				return fmt.Errorf("query %s window %d: %w", q.Label(), win, err)
			}
			if live := buffered + cached + joined; live > s.peakLive {
				s.peakLive = live
			}
			if total.Count > 0 || s.opts.EmitEmpty {
				s.emit(Result{Query: q.ID, Win: win, Group: key, State: total})
			}
		}
	}
	return nil
}

func (s *SPASS) expire() {
	minStart := s.win.Start(s.next)
	for key, events := range s.buffers {
		i := 0
		for i < len(events) && events[i].Time < minStart {
			i++
		}
		if i > 0 {
			s.buffers[key] = append(events[:0:0], events[i:]...)
		}
	}
}

// Flush evaluates all remaining windows.
func (s *SPASS) Flush() error {
	if !s.started {
		return nil
	}
	return s.closeUpTo(s.win.End(s.maxWin))
}

// PeakLiveStates reports buffered events + shared match lists + joined
// sequences at peak.
func (s *SPASS) PeakLiveStates() int64 { return s.peakLive }
