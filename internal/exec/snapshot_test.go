package exec

import (
	"sync"
	"testing"
	"time"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// emissionLog collects an executor's OnResult stream in emission order.
// The mutex makes it safe for the parallel executors' merge goroutine;
// reads happen only after Flush/Stop returned.
type emissionLog struct {
	mu  sync.Mutex
	out []Result
}

func (l *emissionLog) sink(r Result) {
	l.mu.Lock()
	l.out = append(l.out, r)
	l.mu.Unlock()
}

func (l *emissionLog) results() []Result {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Result(nil), l.out...)
}

// assertSameEmission requires two OnResult streams to be identical in
// content and order — the restart-equivalence contract.
func assertSameEmission(t *testing.T, want, got []Result, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: emission %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestEngineSnapshotRestoreEquivalence cuts a sequential run at several
// points: snapshot, restore into a fresh engine, feed the tail, and
// require the concatenated emission to be byte-identical to an
// uninterrupted run — including the shared method's combination state
// (START records and stage snapshots survive the round trip).
func TestEngineSnapshotRestoreEquivalence(t *testing.T) {
	w, stream, plan := parallelFixture(t, 6, 6000, 13, true)
	for _, plans := range []struct {
		name string
		p    core.Plan
	}{{"shared", plan}, {"non-shared", nil}} {
		t.Run(plans.name, func(t *testing.T) {
			ref := &emissionLog{}
			en, err := NewEngine(w, plans.p, Options{OnResult: ref.sink})
			must(t, err)
			runAll(t, en, stream)

			for _, cut := range []int{1, len(stream) / 3, len(stream) / 2, len(stream) - 1} {
				log := &emissionLog{}
				first, err := NewEngine(w, plans.p, Options{OnResult: log.sink})
				must(t, err)
				for _, e := range stream[:cut] {
					must(t, first.Process(e))
				}
				snap := first.Snapshot()

				second, err := NewEngine(w, plans.p, Options{OnResult: log.sink})
				must(t, err)
				must(t, second.Restore(snap))
				for _, e := range stream[cut:] {
					must(t, second.Process(e))
				}
				must(t, second.Flush())
				assertSameEmission(t, ref.results(), log.results(), plans.name)
				if want, got := en.ResultCount(), second.ResultCount(); want != got {
					t.Fatalf("restored ResultCount = %d, want %d", got, want)
				}
			}
		})
	}
}

// TestEngineSnapshotRoundTripStable requires snapshot(restore(snapshot))
// to reproduce the snapshot exactly: restoring loses no logical state.
func TestEngineSnapshotRoundTripStable(t *testing.T) {
	w, stream, plan := parallelFixture(t, 6, 5000, 13, true)
	en, err := NewEngine(w, plan, Options{})
	must(t, err)
	for _, e := range stream[:len(stream)/2] {
		must(t, en.Process(e))
	}
	snap := en.Snapshot()
	en2, err := NewEngine(w, plan, Options{})
	must(t, err)
	must(t, en2.Restore(snap))
	again := en2.Snapshot()
	assertEqualSnapshots(t, snap, again)
}

func assertEqualSnapshots(t *testing.T, a, b *SystemSnapshot) {
	t.Helper()
	ea, eb := a.Engine, b.Engine
	if ea.Started != eb.Started || ea.LastTime != eb.LastTime || ea.NextClose != eb.NextClose ||
		ea.MaxWin != eb.MaxWin || ea.ResultCount != eb.ResultCount {
		t.Fatalf("engine header differs: %+v vs %+v", ea, eb)
	}
	if len(ea.Groups) != len(eb.Groups) {
		t.Fatalf("group count %d vs %d", len(ea.Groups), len(eb.Groups))
	}
	for i := range ea.Groups {
		ga, gb := &ea.Groups[i], &eb.Groups[i]
		if ga.Key != gb.Key || len(ga.Nodes) != len(gb.Nodes) || len(ga.Stages) != len(gb.Stages) {
			t.Fatalf("group %d shape differs", i)
		}
		for j := range ga.Nodes {
			na, nb := ga.Nodes[j], gb.Nodes[j]
			if na.Started != nb.Started || na.NextClose != nb.NextClose || na.MaxWin != nb.MaxWin ||
				na.NextID != nb.NextID || len(na.Windows) != len(nb.Windows) || len(na.Starts) != len(nb.Starts) {
				t.Fatalf("group %d node %d header differs: %+v vs %+v", i, j, na, nb)
			}
			for k := range na.Windows {
				if na.Windows[k] != nb.Windows[k] {
					t.Fatalf("group %d node %d window %d differs", i, j, k)
				}
			}
			for k := range na.Starts {
				sa, sb := na.Starts[k], nb.Starts[k]
				if sa.Time != sb.Time || sa.ID != sb.ID || len(sa.Prefix) != len(sb.Prefix) {
					t.Fatalf("group %d node %d start %d differs", i, j, k)
				}
				for l := range sa.Prefix {
					if sa.Prefix[l] != sb.Prefix[l] {
						t.Fatalf("group %d node %d start %d prefix %d differs", i, j, k, l)
					}
				}
			}
		}
		for j := range ga.Stages {
			sa, sb := ga.Stages[j], gb.Stages[j]
			if sa.Chain != sb.Chain || sa.Stage != sb.Stage || len(sa.Windows) != len(sb.Windows) {
				t.Fatalf("group %d stage %d shape differs", i, j)
			}
			for k := range sa.Windows {
				wa, wb := sa.Windows[k], sb.Windows[k]
				if wa.Win != wb.Win || len(wa.Entries) != len(wb.Entries) {
					t.Fatalf("group %d stage %d window %d shape differs", i, j, k)
				}
				for l := range wa.Entries {
					if wa.Entries[l] != wb.Entries[l] {
						t.Fatalf("group %d stage %d window %d entry %d differs", i, j, k, l)
					}
				}
			}
		}
	}
}

// TestParallelSnapshotRestoreEquivalence is the same contract for the
// group-hash sharded executor: snapshot under the quiesced barrier,
// restore into a fresh executor with the same worker count, and the
// merged emission across the cut equals an uninterrupted parallel run.
func TestParallelSnapshotRestoreEquivalence(t *testing.T) {
	w, stream, plan := parallelFixture(t, 6, 6000, 13, true)
	const workers = 4

	ref := &emissionLog{}
	pref, err := NewParallelEngine(w, plan, workers, Options{OnResult: ref.sink})
	must(t, err)
	must(t, pref.FeedBatch(stream))
	must(t, pref.Flush())

	for _, cut := range []int{1, len(stream) / 2, len(stream) - 1} {
		log := &emissionLog{}
		first, err := NewParallelEngine(w, plan, workers, Options{OnResult: log.sink})
		must(t, err)
		must(t, first.FeedBatch(stream[:cut]))
		snap, err := first.Snapshot()
		must(t, err)
		first.Stop() // abandon like a crash: undelivered windows beyond the snapshot die with it

		second, err := NewParallelEngine(w, plan, workers, Options{OnResult: log.sink})
		must(t, err)
		must(t, second.Restore(snap))
		must(t, second.FeedBatch(stream[cut:]))
		must(t, second.Flush())
		assertSameEmission(t, ref.results(), log.results(), "parallel cut")
	}
}

// TestParallelSnapshotWorkerCountMismatch pins the restore precondition:
// shard state is partitioned by the worker-count-dependent hash, so a
// snapshot only restores into the same parallelism.
func TestParallelSnapshotWorkerCountMismatch(t *testing.T) {
	w, stream, plan := parallelFixture(t, 4, 2000, 13, true)
	p4, err := NewParallelEngine(w, plan, 4, Options{})
	must(t, err)
	must(t, p4.FeedBatch(stream[:1000]))
	snap, err := p4.Snapshot()
	must(t, err)
	p4.Stop()

	p2, err := NewParallelEngine(w, plan, 2, Options{})
	must(t, err)
	defer p2.Stop()
	if err := p2.Restore(snap); err == nil {
		t.Fatal("restore into a different worker count succeeded, want error")
	}
}

// TestPartitionedSnapshotRestoreEquivalence covers the mixed-window
// executor, sequentially and segment-sharded.
func TestPartitionedSnapshotRestoreEquivalence(t *testing.T) {
	w, stream := mixedWorkload(t)
	rates := core.Rates(stream.Rates())
	optOpts := core.OptimizerOptions{Strategy: core.StrategySharon, Expand: true, Budget: time.Second}
	specs, err := PlanSegments(w, rates, optOpts)
	must(t, err)
	cut := len(stream) / 2

	t.Run("sequential", func(t *testing.T) {
		ref := &emissionLog{}
		pr, err := NewPartitionedFromSpecs(specs, Options{OnResult: ref.sink})
		must(t, err)
		runAll(t, pr, stream)

		log := &emissionLog{}
		first, err := NewPartitionedFromSpecs(specs, Options{OnResult: log.sink})
		must(t, err)
		for _, e := range stream[:cut] {
			must(t, first.Process(e))
		}
		snap := first.Snapshot()
		second, err := NewPartitionedFromSpecs(specs, Options{OnResult: log.sink})
		must(t, err)
		must(t, second.Restore(snap))
		for _, e := range stream[cut:] {
			must(t, second.Process(e))
		}
		must(t, second.Flush())
		assertSameEmission(t, ref.results(), log.results(), "partitioned sequential")
	})

	t.Run("parallel", func(t *testing.T) {
		const workers = 2
		ref := &emissionLog{}
		pr, err := NewParallelPartitioned(specs, workers, Options{OnResult: ref.sink})
		must(t, err)
		must(t, pr.FeedBatch(stream))
		must(t, pr.Flush())

		log := &emissionLog{}
		first, err := NewParallelPartitioned(specs, workers, Options{OnResult: log.sink})
		must(t, err)
		must(t, first.FeedBatch(stream[:cut]))
		snap, err := first.Snapshot()
		must(t, err)
		first.Stop()
		second, err := NewParallelPartitioned(specs, workers, Options{OnResult: log.sink})
		must(t, err)
		must(t, second.Restore(snap))
		must(t, second.FeedBatch(stream[cut:]))
		must(t, second.Flush())
		assertSameEmission(t, ref.results(), log.results(), "partitioned parallel")
	})
}

// dynFixture builds a dynamic executor whose rates drift hard enough to
// migrate mid-stream (tight check interval, tiny threshold).
func dynFixture(t *testing.T) (query.Workload, event.Stream, core.Rates, DynamicConfig) {
	t.Helper()
	w, stream, _ := parallelFixture(t, 5, 6000, 13, true)
	rates := core.Rates{}
	for tp := range query.Workload(w).Types() {
		rates[tp] = 1
	}
	cfg := DynamicConfig{
		CheckEvery:      500,
		DriftThreshold:  0.05,
		OptimizerBudget: time.Second,
	}
	return w, stream, rates, cfg
}

// TestDynamicSnapshotRestoreEquivalence cuts a dynamic run — including a
// cut taken mid-migration, with a draining engine live — and requires
// the restored run to emit identically and migrate at the same points.
func TestDynamicSnapshotRestoreEquivalence(t *testing.T) {
	w, stream, rates, cfg := dynFixture(t)

	refLog := &emissionLog{}
	refCfg := cfg
	refCfg.Options = Options{OnResult: refLog.sink}
	ref, err := NewDynamic(w, rates, refCfg)
	must(t, err)
	runAll(t, ref, stream)
	if ref.Migrations == 0 {
		t.Fatal("fixture never migrated; the test needs plan churn")
	}

	// Find a cut where a draining engine is live, plus fixed cuts.
	probeCfg := cfg
	probe, err := NewDynamic(w, rates, probeCfg)
	must(t, err)
	midMigration := -1
	for i, e := range stream {
		must(t, probe.Process(e))
		if probe.draining != nil && midMigration < 0 {
			midMigration = i + 1
		}
	}
	cuts := []int{len(stream) / 3, len(stream) / 2}
	if midMigration > 0 {
		cuts = append(cuts, midMigration)
	}

	for _, cut := range cuts {
		log := &emissionLog{}
		firstCfg := cfg
		firstCfg.Options = Options{OnResult: log.sink}
		first, err := NewDynamic(w, rates, firstCfg)
		must(t, err)
		for _, e := range stream[:cut] {
			must(t, first.Process(e))
		}
		snap := first.Snapshot()

		second, err := NewDynamic(w, rates, firstCfg)
		must(t, err)
		must(t, second.Restore(snap))
		for _, e := range stream[cut:] {
			must(t, second.Process(e))
		}
		must(t, second.Flush())
		assertSameEmission(t, refLog.results(), log.results(), "dynamic cut")
		if want, got := ref.Migrations, snap.Dynamic.Migrations+countMigrationsAfter(second, snap); want != got {
			t.Fatalf("migrations across cut = %d, want %d", got, want)
		}
	}
}

func countMigrationsAfter(d *Dynamic, snap *SystemSnapshot) int {
	return d.Migrations - snap.Dynamic.Migrations
}

// TestHotPathAllocsWithCheckpoint asserts the PR 2 zero-allocation budget
// survives durability: taking periodic engine snapshots between measured
// sections must leave the steady-state Process path allocation-free —
// checkpointing reads state off the hot path, it never changes it.
func TestHotPathAllocsWithCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement needs the full warm-up")
	}
	r := newHotPathRig(t)
	r.feed(t, hotPathWarmup)
	const chunk = 2000
	got := testing.AllocsPerRun(10, func() {
		r.feed(t, chunk)
	}) / chunk
	// Interleave snapshots with further measurement: the snapshot itself
	// allocates (it serializes state), but the subsequent processing must
	// stay on the zero-allocation path.
	for i := 0; i < 3; i++ {
		_ = r.en.Snapshot()
		after := testing.AllocsPerRun(5, func() { r.feed(t, chunk) }) / chunk
		if after > got {
			got = after
		}
	}
	t.Logf("steady-state allocs/event with checkpointing = %.4f", got)
	if got > maxHotPathAllocsPerEvent {
		t.Fatalf("allocs/event with checkpointing = %.4f, budget %.2f", got, maxHotPathAllocsPerEvent)
	}
}
