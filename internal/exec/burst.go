package exec

// Burst detection for the adaptive share-vs-split runtime (ROADMAP item
// 1, after "To Share, or not to Share Online Event Trend Aggregation
// Over Bursty Event Streams"): the Dynamic executor already measures
// per-type arrival counts per check interval; the detector turns that
// signal into a debounced burst/valley state the share-vs-split decision
// keys off.
//
// Design: the detector keeps an EWMA baseline of the valley arrival rate
// and classifies each observed interval rate against two thresholds —
// enter = EnterFactor×baseline, exit = ExitFactor×baseline, with
// EnterFactor > ExitFactor so the band between them is hysteresis: rates
// inside the band never change the state. A state change additionally
// requires Confirm consecutive intervals on the far side of the
// respective threshold, so a single outlier interval (or a rate
// oscillating across one threshold) cannot flap the decision. The
// baseline adapts only while the detector is in the valley state:
// folding burst-phase rates into the baseline would raise the exit
// threshold mid-burst and bounce the state back early.

// BurstState is the detector's debounced classification of the stream.
type BurstState int

const (
	// Valley is the steady/low-rate state: per-query (split) execution
	// wins because live prefix state is small.
	Valley BurstState = iota
	// Burst is the high-rate state: shared execution wins because the
	// shared segments' extend work is paid once instead of per query.
	Burst
)

// String renders the state for logs and /metrics.
func (s BurstState) String() string {
	if s == Burst {
		return "burst"
	}
	return "valley"
}

// BurstConfig tunes the detector. Zero values select the defaults.
type BurstConfig struct {
	// Alpha is the EWMA smoothing factor for the valley baseline rate
	// (default 0.3; 1 tracks the last interval only).
	Alpha float64
	// EnterFactor: rate ≥ EnterFactor×baseline is a burst observation
	// (default 2.0).
	EnterFactor float64
	// ExitFactor: rate ≤ ExitFactor×baseline is a valley observation
	// (default 1.25). Must be below EnterFactor; the gap is the
	// hysteresis band.
	ExitFactor float64
	// Confirm is the number of consecutive qualifying intervals required
	// before the state switches (default 2).
	Confirm int
}

func (c *BurstConfig) fill() {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.EnterFactor <= 1 {
		c.EnterFactor = 2.0
	}
	if c.ExitFactor <= 0 {
		c.ExitFactor = 1.25
	}
	if c.ExitFactor >= c.EnterFactor {
		c.ExitFactor = c.EnterFactor * 0.625
	}
	if c.Confirm <= 0 {
		c.Confirm = 2
	}
}

// BurstDetector classifies interval arrival rates into a debounced
// burst/valley state. It is a plain state machine — single-threaded,
// allocation-free — driven by one Observe call per check interval.
type BurstDetector struct {
	cfg      BurstConfig
	baseline float64
	state    BurstState
	streak   int // consecutive observations favoring the opposite state
	primed   bool
}

// NewBurstDetector builds a detector in the Valley state with no
// baseline; the first observation primes the baseline.
func NewBurstDetector(cfg BurstConfig) *BurstDetector {
	cfg.fill()
	return &BurstDetector{cfg: cfg}
}

// State returns the current debounced state.
func (b *BurstDetector) State() BurstState { return b.state }

// Baseline returns the current valley-rate baseline (events/sec).
func (b *BurstDetector) Baseline() float64 { return b.baseline }

// Observe feeds one interval's arrival rate (events/sec) and reports the
// resulting state plus whether this observation switched it.
//
//sharon:hotpath
func (b *BurstDetector) Observe(rate float64) (BurstState, bool) {
	if !b.primed {
		b.primed = true
		b.baseline = rate
		return b.state, false
	}
	switch b.state {
	case Valley:
		if rate >= b.cfg.EnterFactor*b.baseline && b.baseline > 0 {
			b.streak++
			if b.streak >= b.cfg.Confirm {
				b.state = Burst
				b.streak = 0
				return b.state, true
			}
			// Candidate burst intervals do not feed the baseline: they
			// would raise the enter threshold and mask a slow-onset burst.
			return b.state, false
		}
		b.streak = 0
		b.baseline += b.cfg.Alpha * (rate - b.baseline)
	case Burst:
		if rate <= b.cfg.ExitFactor*b.baseline || b.baseline <= 0 {
			b.streak++
			if b.streak >= b.cfg.Confirm {
				b.state = Valley
				b.streak = 0
				b.baseline += b.cfg.Alpha * (rate - b.baseline)
				return b.state, true
			}
		} else {
			b.streak = 0
		}
	}
	return b.state, false
}

// restore rehydrates detector state from a checkpoint (see
// DynamicSnapshot): the debounce streak restarts, which can delay the
// next transition by at most Confirm-1 intervals but cannot change any
// emitted result (plan hand-offs are output-invariant by the migration
// protocol).
func (b *BurstDetector) restore(baseline float64, state BurstState) {
	b.baseline = baseline
	b.state = state
	b.streak = 0
	b.primed = baseline > 0
}
