package exec

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"

	"github.com/sharon-project/sharon/internal/agg"
	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// Engine is the online event sequence aggregation executor. With an empty
// sharing plan every query runs the non-shared method (the A-Seq baseline,
// paper §3.2); with a sharing plan, queries are decomposed into chains of
// segments — shared patterns computed once for all sharing queries, plus
// private prefix/suffix segments — whose per-window aggregates are
// combined online exactly as in the paper's Fig. 7.
//
// Each query's pattern is split into an ordered chain seg_1 .. seg_m. For
// every stage i the engine maintains C_i(k): the aggregate of all
// concatenations of matches of seg_1 .. seg_i lying fully inside window k
// with the required temporal order between segments. C_1 is the first
// segment aggregator's own per-window total. When a START event c of
// seg_{i+1} arrives, C_i(k) is snapshotted for every window k containing
// c (count combination step 2a); when seg_{i+1} completes from c with
// aggregate delta, C_{i+1}(k) += snapshot ⊗ delta (step 2b). The final
// result of window k is C_m(k), emitted when the watermark passes the
// window's end.
//
// Parallel execution: all per-group runtime state lives in engineGroup
// and groups never interact, so the engine shards cleanly by group key —
// the Parallel executor runs one Engine per worker goroutine, routes
// events by group-key hash, and drives window emission on idle shards
// with AdvanceWatermark. A single Engine instance is still strictly
// single-threaded; sharding happens by giving each worker its own
// instance (see NewParallelEngine).
type Engine struct {
	name  string
	w     query.Workload
	plan  core.Plan
	win   query.Window
	preds []query.Predicate
	group bool

	proto  *engineProto
	groups map[event.GroupKey]*engineGroup

	resultSink
	started   bool
	lastTime  int64
	nextClose int64
	maxWin    int64
	// bound caps which windows this engine materializes (MaxInt64 when
	// unbounded): snapshot captures are clamped to it, START records whose
	// first containing window lies past it are declined, and windows past
	// it close without computing or emitting results. The dynamic executor
	// bounds a draining engine at the migration boundary, so a hand-off
	// drain skips the work its OnResult filter would discard anyway.
	bound int64
	// emitBuf stages one window's results so they can be sorted into the
	// canonical (query, window, group) order before reaching the sink;
	// reused across windows to keep the hot path allocation-free.
	emitBuf []Result

	peakLive int64
	queries  map[int]*query.Query

	// mergedNodes/mergedStages count the SHARP-style structural merges
	// performed across all built groups: private aggregators deduplicated
	// across queries with an identical (pattern, target) segment, and
	// chain stages collapsed onto one snapshot ring because their node
	// and full upstream chain coincide.
	mergedNodes  int64
	mergedStages int64
}

// engineProto is the group-independent compiled form of workload + plan.
type engineProto struct {
	chains        []*chainProto
	sharedPattern []query.Pattern
	sharedTarget  []event.Type
}

type chainProto struct {
	q    *query.Query
	segs []segProto
}

type segProto struct {
	pattern   query.Pattern
	sharedIdx int // index into sharedPattern, or -1 for a private segment
}

// NewEngine compiles workload and plan into an executor. An empty plan
// yields the A-Seq (non-shared) executor.
func NewEngine(w query.Workload, plan core.Plan, opts Options) (*Engine, error) {
	if err := validateUniform(w); err != nil {
		return nil, err
	}
	if err := plan.Validate(w); err != nil {
		return nil, err
	}
	proto, err := compile(w, plan)
	if err != nil {
		return nil, err
	}
	name := "A-Seq"
	if len(plan) > 0 {
		name = "Sharon"
	}
	en := &Engine{
		name:       name,
		w:          w,
		plan:       plan,
		win:        w[0].Window,
		preds:      w[0].Where,
		group:      w[0].GroupBy,
		proto:      proto,
		groups:     make(map[event.GroupKey]*engineGroup),
		resultSink: resultSink{opts: opts},
		nextClose:  -1,
		maxWin:     -1,
		bound:      math.MaxInt64,
		queries:    make(map[int]*query.Query, len(w)),
	}
	for _, q := range w {
		en.queries[q.ID] = q
	}
	return en, nil
}

// compile decomposes each query's pattern around its plan candidates into
// a chain of shared and private segments (Definition 4, generalized to a
// query sharing several non-overlapping patterns, e.g. q4 sharing both p2
// and p4 in the paper's optimal plan).
func compile(w query.Workload, plan core.Plan) (*engineProto, error) {
	proto := &engineProto{}
	sharedIdx := make(map[string]int)
	targetOf := make(map[string]event.Type)

	intern := func(p query.Pattern, target event.Type, label string) (int, error) {
		k := p.Key()
		idx, ok := sharedIdx[k]
		if !ok {
			idx = len(proto.sharedPattern)
			sharedIdx[k] = idx
			proto.sharedPattern = append(proto.sharedPattern, p.Clone())
			proto.sharedTarget = append(proto.sharedTarget, target)
			targetOf[k] = target
			return idx, nil
		}
		if target != event.NoType && targetOf[k] != event.NoType && targetOf[k] != target {
			return 0, fmt.Errorf("exec: shared pattern %v has incompatible aggregation targets across queries (%s)", p, label)
		}
		if target != event.NoType && targetOf[k] == event.NoType {
			targetOf[k] = target
			proto.sharedTarget[idx] = target
		}
		return idx, nil
	}

	for _, q := range w {
		cands := plan.QueriesSharing(q.ID)
		type span struct {
			lo, hi int
			p      query.Pattern
		}
		spans := make([]span, 0, len(cands))
		for _, c := range cands {
			at := q.Pattern.IndexOf(c.Pattern)
			if at < 0 {
				return nil, fmt.Errorf("exec: plan pattern %v not in query %s", c.Pattern, q.Label())
			}
			spans = append(spans, span{at, at + c.Pattern.Length(), c.Pattern})
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })

		ch := &chainProto{q: q}
		pos := 0
		for _, sp := range spans {
			if sp.lo < pos {
				return nil, fmt.Errorf("exec: overlapping shared segments for query %s", q.Label())
			}
			if sp.lo > pos {
				ch.segs = append(ch.segs, segProto{pattern: q.Pattern.Sub(pos, sp.lo), sharedIdx: -1})
			}
			// The target the shared aggregator must track for this query:
			// only relevant if the query's aggregation target lies inside
			// the shared segment.
			target := event.NoType
			if q.Agg.Kind != query.CountStar && sp.p.Contains(query.Pattern{q.Agg.Target}) {
				target = q.Agg.Target
			}
			idx, err := intern(sp.p, target, q.Label())
			if err != nil {
				return nil, err
			}
			ch.segs = append(ch.segs, segProto{pattern: sp.p, sharedIdx: idx})
			pos = sp.hi
		}
		if pos < q.Pattern.Length() {
			ch.segs = append(ch.segs, segProto{pattern: q.Pattern.Sub(pos, q.Pattern.Length()), sharedIdx: -1})
		}
		// Segments within one query must be type-disjoint for the
		// snapshot ordering to be exact; with duplicate types (§7.3) the
		// query must run non-shared.
		if len(ch.segs) > 1 && q.Pattern.HasDuplicateTypes() {
			return nil, fmt.Errorf("exec: query %s has duplicate event types and cannot be decomposed for sharing (run it non-shared)", q.Label())
		}
		proto.chains = append(proto.chains, ch)
	}
	return proto, nil
}

// --- runtime (per-group) structures ---

type engineGroup struct {
	key    event.GroupKey
	nodes  []*aggNode // all aggregators of the group (shared first)
	shared []*aggNode // indexed like proto.sharedPattern
	chains []*chainRT
	// stages lists every distinct stage runtime exactly once. Chains may
	// share stage objects (merged equivalent stages), so per-window
	// release and live-state accounting iterate this set, not the
	// chains' views.
	stages []*stageRT
	// byType indexes the nodes whose pattern contains each event type, so
	// Process touches only relevant aggregators. It is a dense table
	// indexed by the interned event.Type (sized to the workload's largest
	// pattern type; other types dispatch to nothing by bounds check).
	byType [][]*aggNode
}

// aggNode is one aggregator plus the chain stages listening to it. Shared
// nodes have one listener per sharing query's chain (fewer when
// equivalent stages are merged).
type aggNode struct {
	agg       *agg.Aggregator
	listeners []*stageRT
	// headOnly is true when no listener reads this node's per-window
	// totals (every listener is a later-stage combiner that consumes the
	// node only through START-record snapshots). For such a node a START
	// record that no listener snapshotted is dead on arrival — in the
	// NFA view (see sase.go), no open window holds a reachable accepting
	// path through it — and is pruned back to the freelist at birth.
	headOnly bool
	// startLive is per-START scratch: set by the OnStart fan-out when at
	// least one listener captured a snapshot referencing the record,
	// read immediately after by the RetainStart check. The engine is
	// single-threaded, so one slot suffices.
	startLive bool
}

type chainRT struct {
	proto  *chainProto
	stages []*stageRT
}

// snapEntry pairs a START record of a stage's segment with the upstream
// aggregate C_i(k) captured when that START event arrived (Fig. 7: "when
// c3 arrives, count(A,B) = 1").
type snapEntry struct {
	rec *agg.StartRec
	up  agg.State
}

// stageRT is one chain stage: a reference to its aggregator node plus, for
// stages after the first, the combination state of Fig. 7. Combination is
// lazy: a snapshot of the upstream aggregate is stored per (START event,
// window) on arrival, and the product with the START's complete aggregate
// is taken only when a downstream stage (or the window close) reads the
// stage's value. The combination cost is therefore proportional to the
// product of segment START rates — exactly Eq. 5 of the cost model.
type stageRT struct {
	// prev is the upstream stage whose aggregate this stage snapshots on
	// its segment's START events; nil for stage 0. Merged stages share
	// one upstream by construction (the merge key encodes it).
	prev *stageRT
	idx  int
	node *aggNode
	// ownerChain is the index of the chain that created this stage; when
	// equivalent stages are merged, later chains alias the object and
	// the snapshot encoder serializes it only under its owner's
	// coordinates.
	ownerChain int
	// eng is the owning engine; its [nextClose, maxWin] live range
	// drives the snapshot ring's lazy growth.
	eng  *Engine
	win  query.Window
	plen int // this stage's segment pattern length
	// mask is set when this stage's aggregator is shared and tracks a
	// different target type than this query needs from the segment; the
	// segment then contributes only its sequence counts (agg.ProjectCount).
	mask bool
	// snapRing[k&snapMask] holds this stage's per-START upstream
	// snapshots for open window k (only for idx >= 1; stage 0 reads the
	// aggregator's own per-window totals). Open windows are the
	// contiguous range [nextClose, maxWin], so a power-of-two ring
	// replaces the map; a closing window's slice is reset in place
	// (length 0, capacity kept) so the slot's backing array is recycled
	// when the ring wraps around to window k+len(snapRing).
	snapRing [][]snapEntry
	snapMask int64
}

// buildGroup constructs one group's runtime. Unless
// Options.DisableStateReduction is set it applies the two SHARP-style
// structural merges:
//
//   - M1 (node merge): private segments with the same (pattern, target)
//     across different queries' chains compute byte-identical aggregator
//     state, so they share one aggNode — one extend loop and one record
//     pool instead of one per query.
//   - M2 (stage merge): chain stages over the same node whose entire
//     upstream stage chain coincides capture identical snapshot streams,
//     so they share one stageRT (one snapshot ring, appended once per
//     START instead of once per query).
//
// Both merges are value-preserving by induction over the stage depth: a
// stage's value is a pure function of its node's stream state and its
// upstream stage's value, and the merge key equates exactly those
// inputs. The chains keep their own stage *views* (ch.stages) so
// per-query emission is unchanged.
func (en *Engine) buildGroup(key event.GroupKey) *engineGroup {
	g := &engineGroup{key: key}
	reduce := !en.opts.DisableStateReduction
	g.shared = make([]*aggNode, len(en.proto.sharedPattern))
	nodeIdx := make(map[*aggNode]int)
	for i, p := range en.proto.sharedPattern {
		g.shared[i] = newAggNode(en, p, en.proto.sharedTarget[i], reduce)
		nodeIdx[g.shared[i]] = len(g.nodes)
		g.nodes = append(g.nodes, g.shared[i])
	}
	privNodes := make(map[string]*aggNode)
	classes := make(map[string]*stageRT)
	for ci, cp := range en.proto.chains {
		ch := &chainRT{proto: cp}
		var prev *stageRT
		prevKey := ""
		for i, seg := range cp.segs {
			var node *aggNode
			if seg.sharedIdx >= 0 {
				node = g.shared[seg.sharedIdx]
			} else {
				target := event.NoType
				if cp.q.Agg.Kind != query.CountStar {
					target = cp.q.Agg.Target
				}
				nk := fmt.Sprintf("%s\x00%d", seg.pattern.Key(), target)
				if existing, ok := privNodes[nk]; ok && reduce {
					node = existing // M1: identical private aggregator state
					en.mergedNodes++
				} else {
					node = newAggNode(en, seg.pattern, target, reduce)
					privNodes[nk] = node
					nodeIdx[node] = len(g.nodes)
					g.nodes = append(g.nodes, node)
				}
			}
			mask := false
			if seg.sharedIdx >= 0 {
				eff := event.NoType
				if cp.q.Agg.Kind != query.CountStar && seg.pattern.Contains(query.Pattern{cp.q.Agg.Target}) {
					eff = cp.q.Agg.Target
				}
				mask = en.proto.sharedTarget[seg.sharedIdx] != eff
			}
			// The class key equates (node identity, count projection,
			// full upstream chain) — the complete set of inputs a stage's
			// value depends on.
			ck := fmt.Sprintf("%d\x00%t\x00%s", nodeIdx[node], mask, prevKey)
			if st, ok := classes[ck]; ok && reduce {
				en.mergedStages++ // M2: alias the equivalent stage
				ch.stages = append(ch.stages, st)
				prev, prevKey = st, ck
				continue
			}
			st := &stageRT{prev: prev, idx: i, node: node, ownerChain: ci, eng: en, win: en.win, plen: seg.pattern.Length(), mask: mask}
			if i >= 1 {
				n := initialSnapRing(en.win)
				st.snapRing = make([][]snapEntry, n)
				st.snapMask = n - 1
			}
			node.listeners = append(node.listeners, st)
			ch.stages = append(ch.stages, st)
			g.stages = append(g.stages, st)
			classes[ck] = st
			prev, prevKey = st, ck
		}
		g.chains = append(g.chains, ch)
	}
	// A node is headOnly when no listener reads its per-window totals
	// (no stage-0 listener, and no downstream stage snapshots it as an
	// upstream — which is the same condition, since stage i snapshots
	// stage i-1 and only stage 0 reads totals).
	for _, node := range g.nodes {
		node.headOnly = true
		for _, st := range node.listeners {
			if st.idx == 0 {
				node.headOnly = false
				break
			}
		}
	}
	maxType := event.Type(0)
	for _, node := range g.nodes {
		for _, t := range node.agg.Pattern() {
			if t > maxType {
				maxType = t
			}
		}
	}
	g.byType = make([][]*aggNode, maxType+1)
	for _, node := range g.nodes {
		seen := make(map[event.Type]bool)
		for _, t := range node.agg.Pattern() {
			if !seen[t] {
				seen[t] = true
				g.byType[t] = append(g.byType[t], node)
			}
		}
	}
	return g
}

// initialSnapRing returns the snapshot ring's starting capacity: the
// full MaxConcurrent bound when small, else a small seed that ensureRing
// grows geometrically with the observed live span (cf. agg's window ring
// — a high-overlap window must not pre-pay its worst case per stage per
// group at construction).
func initialSnapRing(w query.Window) int64 {
	n := query.NextPow2(w.MaxConcurrent() + 2)
	if n > 16 {
		n = 16
	}
	return n
}

// ensureRing grows the snapshot ring to cover the engine's live window
// range. Copying exactly the old coverage [nextClose, nextClose+len-1] is
// a bijection onto old slots, so no two live windows can inherit the same
// recycled slice (appends are always preceded by ensureRing in onStart,
// hence windows beyond the old coverage hold no entries).
//
//sharon:hotpath
func (st *stageRT) ensureRing() {
	span := st.eng.maxWin - st.eng.nextClose + 1
	oldLen := int64(len(st.snapRing))
	if span <= oldLen {
		return
	}
	n := query.NextPow2(span)
	ring := make([][]snapEntry, n) //sharon:allow hotpathalloc (geometric snapshot-ring growth: O(log overlap) allocations, none at steady state)
	for k := st.eng.nextClose; k < st.eng.nextClose+oldLen; k++ {
		ring[k&(n-1)] = st.snapRing[k&st.snapMask]
	}
	st.snapRing, st.snapMask = ring, n-1
}

func newAggNode(en *Engine, p query.Pattern, target event.Type, reduce bool) *aggNode {
	node := &aggNode{}
	w := en.win
	cfg := agg.Config{
		Pattern: p,
		Window:  w,
		Target:  target,
		OnStart: func(rec *agg.StartRec, e event.Event) {
			live := false
			for _, st := range node.listeners {
				if st.onStart(rec, e) {
					live = true
				}
			}
			node.startLive = live
		},
		// Retention combines two independent prunes:
		//
		//   - Bound prune: on a bounded (draining) engine, a record whose
		//     first containing window lies past the bound can only feed
		//     windows the engine never emits, and — with snapshot captures
		//     clamped to the bound — no listener holds a reference to it,
		//     so it is safe to recycle regardless of the node's shape.
		//   - Dead-suffix prune (state reduction only): on a headOnly node
		//     a record nobody snapshotted can never reach an accepting
		//     state of any chain — its prefix values are only ever read
		//     through snapshot entries, and none exist. Records any
		//     listener snapshotted are always retained: the snapshot
		//     entries hold the pointer until their window closes (StartRec
		//     lifecycle contract).
		RetainStart: func(rec *agg.StartRec, e event.Event) bool {
			if w.FirstContaining(e.Time) > en.bound {
				return false
			}
			return !reduce || node.startLive || !node.headOnly
		},
	}
	node.agg = agg.NewAggregator(cfg)
	return node
}

// onStart snapshots the upstream per-window aggregate when a START event
// of this stage's segment arrives (Fig. 7: "when c3 arrives,
// count(A,B) = 1"). Sequence semantics make this sound: every upstream
// match counted so far ended strictly before this START event. It
// reports whether any snapshot entry was captured — i.e. whether this
// stage now holds a reference to rec — which feeds the node's
// dead-suffix retention check.
//
//sharon:hotpath
func (st *stageRT) onStart(rec *agg.StartRec, e event.Event) bool {
	if st.idx == 0 {
		return false
	}
	st.ensureRing()
	captured := false
	first, last := st.win.Indices(e.Time)
	if last > st.eng.bound {
		last = st.eng.bound // bounded drain: windows past the bound are never read
	}
	for k := first; k <= last; k++ {
		up := st.prev.currentValue(k)
		if up.Count == 0 {
			continue
		}
		slot := k & st.snapMask
		st.snapRing[slot] = append(st.snapRing[slot], snapEntry{rec: rec, up: up}) //sharon:allow hotpathalloc (amortized: closed windows reset slots to length 0 keeping capacity, so the backing array is recycled)
		captured = true
	}
	return captured
}

// currentValue returns C_{idx+1}(k) as of the current watermark: for
// stage 0 the aggregator's own per-window total; for later stages the sum
// over START snapshots of snapshot ⊗ complete-aggregate — the paper's
// count-combination step, evaluated lazily.
//
//sharon:hotpath
//sharon:deterministic
func (st *stageRT) currentValue(k int64) agg.State {
	if st.idx == 0 {
		s := st.node.agg.CurrentTotal(k)
		if st.mask {
			s = agg.ProjectCount(s)
		}
		return s
	}
	total := agg.Zero()
	for _, en := range st.snapRing[k&st.snapMask] {
		d := en.rec.Prefix(st.plen)
		if d.Count == 0 {
			continue
		}
		if st.mask {
			d = agg.ProjectCount(d)
		}
		total.AddInPlace(agg.Concat(en.up, d))
	}
	return total
}

// windowState returns the chain's final aggregate for window k (C_m(k)).
//
//sharon:hotpath
//sharon:deterministic
func (ch *chainRT) windowState(k int64) agg.State {
	return ch.stages[len(ch.stages)-1].currentValue(k)
}

// release drops all stage state for a closed window: each stage's ring
// slot is reset to length zero with its capacity kept, so the next window
// landing on the slot appends into the recycled backing array. Releasing
// here — before the aggregators observe a later watermark — also orders
// the drop of every *StartRec reference ahead of the record's return to
// its aggregator's pool (see agg.StartRec). It iterates the group's
// distinct stage set: chains may alias merged stages, and every chain's
// read of the window must complete before its (possibly shared) slot is
// reset — emitWindow guarantees that ordering.
//
//sharon:hotpath
//sharon:deterministic
func (g *engineGroup) release(k int64) {
	for _, st := range g.stages {
		if st.idx == 0 {
			continue
		}
		slot := k & st.snapMask
		entries := st.snapRing[slot]
		for i := range entries {
			entries[i] = snapEntry{} // drop rec pointers for GC hygiene
		}
		st.snapRing[slot] = entries[:0]
	}
}

// --- Executor interface ---

// Name reports "Sharon" or "A-Seq".
func (en *Engine) Name() string { return en.name }

// Plan returns the sharing plan driving this engine.
func (en *Engine) Plan() core.Plan { return en.plan }

// Process feeds the next event (strictly time-ordered).
//
//sharon:hotpath
func (en *Engine) Process(e event.Event) error {
	if en.started && e.Time <= en.lastTime {
		return fmt.Errorf("exec: out-of-order event at t=%d (last t=%d)", e.Time, en.lastTime) //sharon:allow hotpathalloc (cold error path: the caller stops the stream on the first out-of-order event)
	}
	if !en.started {
		en.started = true
		en.nextClose = en.win.FirstContaining(e.Time)
	}
	en.lastTime = e.Time
	en.closeUpTo(e.Time)
	if last := en.win.LastContaining(e.Time); last > en.maxWin {
		en.maxWin = last
	}
	if !accepts(en.preds, e) {
		return nil
	}
	key := event.GroupKey(0)
	if en.group {
		key = e.Key
	}
	g, ok := en.groups[key]
	if !ok {
		g = en.buildGroup(key) //sharon:allow hotpathalloc (cold path: runs once per new group key, not per event)
		en.groups[key] = g     //sharon:allow hotpathalloc (cold path: one map insert per new group key)
	}
	if int(e.Type) < len(g.byType) {
		for _, node := range g.byType[e.Type] {
			if err := node.agg.Process(e); err != nil {
				return err
			}
		}
	}
	return nil
}

// closeUpTo emits results for every window ending at or before t.
//
//sharon:hotpath
func (en *Engine) closeUpTo(t int64) {
	for en.win.End(en.nextClose) <= t {
		// Every closed window overlaps the stream span: nextClose starts
		// at the first event's first window and Flush stops at maxWin.
		en.sampleMemory()
		en.emitWindow(en.nextClose)
		en.nextClose++
	}
}

// emitWindow delivers window win's results in the canonical (query,
// window, group) order. Group state lives in a map, so the raw iteration
// order is not deterministic; staging the window in emitBuf and sorting
// makes the OnResult sink order identical across runs — and identical to
// the parallel executor's merge order — so sinks (the server's push
// subscriptions, the harness) can rely on it without re-sorting.
//
//sharon:hotpath
//sharon:deterministic
func (en *Engine) emitWindow(win int64) {
	if win > en.bound {
		// A bounded engine never emits past its bound; skip the
		// combination reads but still release ring state so slots recycle.
		//sharon:allow deterministicemit (release-only: nothing is emitted for a window past the bound, so iteration order is unobservable)
		for _, g := range en.groups {
			g.release(win)
		}
		return
	}
	en.emitBuf = en.emitBuf[:0]
	//sharon:allow deterministicemit (the map range only stages into emitBuf; the sort below fixes the (query, window, group) emit order)
	for _, g := range en.groups {
		// Read every chain's window state before releasing any stage:
		// merged stages are aliased by several chains, so an interleaved
		// read/release would clear a ring slot a later chain still needs.
		for _, ch := range g.chains {
			state := ch.windowState(win)
			if state.Count > 0 || en.opts.EmitEmpty {
				en.emitBuf = append(en.emitBuf, Result{Query: ch.proto.q.ID, Win: win, Group: g.key, State: state}) //sharon:allow hotpathalloc (amortized: emitBuf is reset to length 0 and reused every window)
			}
		}
		g.release(win)
	}
	slices.SortFunc(en.emitBuf, cmpResult)
	for _, r := range en.emitBuf {
		en.emit(r)
	}
}

// AdvanceWatermark closes every window ending at or before t without
// consuming an event, and extends the flushable range exactly as an
// event at time t would. The parallel executor calls it so that a shard
// whose groups go quiet still emits its windows in step with the global
// stream watermark. Calls at or before the engine's current watermark
// are no-ops; an engine that has seen no events has no groups and
// nothing to emit, so it ignores the watermark entirely.
//
//sharon:hotpath
func (en *Engine) AdvanceWatermark(t int64) {
	if !en.started || t <= en.lastTime {
		return
	}
	en.lastTime = t
	en.closeUpTo(t)
	if last := en.win.LastContaining(t); last > en.maxWin {
		en.maxWin = last
	}
}

// BoundEmitWindows caps the engine at window maxWin: snapshot captures
// clamp to it, START records that can only feed later windows are
// declined back to the freelist, and windows past it close without
// computing or emitting results. The dynamic executor bounds a draining
// engine at the last window it owns (the migration boundary minus one),
// collapsing the drain's double-processing cost to the fraction of work
// that feeds windows it will actually emit. Output for windows at or
// below the bound is unaffected.
func (en *Engine) BoundEmitWindows(maxWin int64) { en.bound = maxWin }

// Flush closes all windows containing events seen so far.
//
//sharon:hotpath
func (en *Engine) Flush() error {
	if !en.started {
		return nil
	}
	en.closeUpTo(en.win.End(en.maxWin))
	return nil
}

// sampleMemory records the current live-state count into the peak.
//
//sharon:hotpath
func (en *Engine) sampleMemory() {
	n := en.LiveStates()
	if n > en.peakLive {
		en.peakLive = n
	}
}

// LiveStates counts all aggregate states currently held: aggregator
// prefix/total states plus the chains' combination and snapshot entries.
//
//sharon:hotpath
func (en *Engine) LiveStates() int64 {
	var n int64
	for _, g := range en.groups {
		for _, node := range g.nodes {
			n += node.agg.LiveStates()
		}
		for _, st := range g.stages {
			if st.idx == 0 {
				continue
			}
			for _, entries := range st.snapRing {
				n += int64(len(entries))
			}
		}
	}
	return n
}

// PeakLiveStates reports the peak sampled live-state count.
func (en *Engine) PeakLiveStates() int64 {
	en.sampleMemory()
	return en.peakLive
}

// PrunedStarts reports how many START records the dead-suffix check
// recycled at birth across all groups (SHARP-style state reduction).
func (en *Engine) PrunedStarts() int64 {
	var n int64
	for _, g := range en.groups {
		for _, node := range g.nodes {
			n += node.agg.PrunedStarts()
		}
	}
	return n
}

// MergedNodes reports how many private aggregators were deduplicated
// across queries (merge M1), and MergedStages how many chain stages were
// collapsed onto an equivalent stage's snapshot ring (merge M2), summed
// over all built groups.
func (en *Engine) MergedNodes() int64  { return en.mergedNodes }
func (en *Engine) MergedStages() int64 { return en.mergedStages }

// Explain renders the engine's per-query decomposition: which segments of
// each query's pattern are computed by shared aggregators and which
// privately. Useful for inspecting what a sharing plan means at runtime.
func (en *Engine) Explain(reg *event.Registry) string {
	var b strings.Builder
	for _, cp := range en.proto.chains {
		fmt.Fprintf(&b, "%-6s", cp.q.Label())
		for i, seg := range cp.segs {
			if i > 0 {
				b.WriteString(" . ")
			}
			if seg.sharedIdx >= 0 {
				fmt.Fprintf(&b, "shared%s", seg.pattern.Format(reg))
			} else {
				fmt.Fprintf(&b, "private%s", seg.pattern.Format(reg))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
