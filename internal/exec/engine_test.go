package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/sharon-project/sharon/internal/agg"
	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

type fixture struct {
	reg *event.Registry
	ids map[byte]event.Type
}

func newFixture() *fixture {
	f := &fixture{reg: event.NewRegistry(), ids: make(map[byte]event.Type)}
	for _, c := range []byte("ABCDEFGH") {
		f.ids[c] = f.reg.Intern(string(c))
	}
	return f
}

func (f *fixture) pat(s string) query.Pattern {
	p := make(query.Pattern, len(s))
	for i := range s {
		p[i] = f.ids[s[i]]
	}
	return p
}

func (f *fixture) stream(s string, startTime int64) event.Stream {
	out := make(event.Stream, len(s))
	for i := range s {
		out[i] = event.Event{Time: startTime + int64(i), Type: f.ids[s[i]], Val: float64(i + 1)}
	}
	return out
}

func (f *fixture) query(id int, pat string, win, slide int64) *query.Query {
	return &query.Query{
		ID:      id,
		Pattern: f.pat(pat),
		Agg:     query.AggSpec{Kind: query.CountStar},
		Window:  query.Window{Length: win, Slide: slide},
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func runAll(t *testing.T, ex Executor, stream event.Stream) {
	t.Helper()
	for _, e := range stream {
		if err := ex.Process(e); err != nil {
			t.Fatalf("%s: %v", ex.Name(), err)
		}
	}
	if err := ex.Flush(); err != nil {
		t.Fatalf("%s flush: %v", ex.Name(), err)
	}
}

// TestFigure7SharedCombination reproduces Example 3 / Fig. 7: the count of
// (A,B,C,D) computed from the shared counts of (C,D) with prefix (A,B).
func TestFigure7SharedCombination(t *testing.T) {
	f := newFixture()
	w := query.Workload{
		f.query(0, "ABCD", 100, 100),
		f.query(1, "CD", 100, 100), // second query so (C,D) is sharable
	}
	plan := core.Plan{core.NewCandidate(f.pat("CD"), []int{0, 1})}
	en, err := NewEngine(w, plan, Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	// a1 b2 c3 d4 a5 b6 c7 d8: matches of (A,B,C,D) are
	// a1b2c3d4, a1b2c3d8, a1b2c7d8, a1b6c7d8, a5b6c7d8 = 5.
	runAll(t, en, f.stream("ABCDABCD", 1))
	results := en.Results()
	var got0, got1 float64
	for _, r := range results {
		if r.Win != 0 {
			continue
		}
		if r.Query == 0 {
			got0 = r.State.Count
		} else {
			got1 = r.State.Count
		}
	}
	if got0 != 5 {
		t.Errorf("count(A,B,C,D) = %v, want 5", got0)
	}
	if got1 != 4 { // (c3,d4),(c3,d8),(c7,d8) and... c3d4, c3d8, c7d8 = 3? plus none
		// matches of (C,D): c3d4, c3d8, c7d8 = 3.
		t.Logf("count(C,D) = %v", got1)
	}
	if got1 != 3 {
		t.Errorf("count(C,D) = %v, want 3", got1)
	}
}

// TestPaperExample3Exact follows the paper's narration: contributions per
// p-start (c3: prefix-count x its completions; c7: same), summed.
func TestPaperExample3Exact(t *testing.T) {
	f := newFixture()
	w := query.Workload{
		f.query(0, "ABCD", 1000, 1000),
		f.query(1, "CD", 1000, 1000),
	}
	plan := core.Plan{core.NewCandidate(f.pat("CD"), []int{0, 1})}
	en, err := NewEngine(w, plan, Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	// Build a stream where count(A,B)=1 when c3 arrives, count(c3,D)=2,
	// count(A,B)=5 when c7 arrives, count(c7,D)=1 => total 1*2 + 5*1 = 7.
	// Events: a1 b2 c3 d4 a5 b6 b7(x) ... craft: a1 b2 c3 d4 a5 b6 c7 d8
	// gives prefix count at c7 = |{a1,a5}x{b2,b6} increasing| = a1b2,a1b6,a5b6 = 3.
	// Add one more b before c7 to reach 5: a1 b2 c3 d4 a5 b6 b7 c8 d9:
	// prefix pairs before c8: a1b2, a1b6, a1b7, a5b6, a5b7 = 5.
	// count(c3,D) = d4, d9 = 2; count(c8,D) = d9 = 1. Total = 1*2+5*1 = 7.
	runAll(t, en, f.stream("ABCDABBCD", 1))
	for _, r := range en.Results() {
		if r.Query == 0 && r.Win == 0 {
			if r.State.Count != 7 {
				t.Errorf("count(A,B,C,D) = %v, want 7 (Example 3)", r.State.Count)
			}
			return
		}
	}
	t.Fatal("no result for query 0 window 0")
}

// TestSharedEqualsNonSharedSmall checks shared and non-shared execution
// agree on a deterministic small case with prefix and suffix segments.
func TestSharedEqualsNonSharedSmall(t *testing.T) {
	f := newFixture()
	build := func(plan core.Plan) []Result {
		w := query.Workload{
			f.query(0, "ABC", 20, 5),
			f.query(1, "BCD", 20, 5),
		}
		en, err := NewEngine(w, plan, Options{Collect: true})
		if err != nil {
			t.Fatal(err)
		}
		runAll(t, en, f.stream("ABCDABCDABCDABCD", 1))
		return en.Results()
	}
	nonShared := build(nil)
	shared := build(core.Plan{core.NewCandidate(f.pat("BC"), []int{0, 1})})
	assertSameResults(t, nonShared, shared)
}

func assertSameResults(t *testing.T, want, got []Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("result counts differ: %d vs %d\nwant=%v\ngot=%v", len(want), len(got), want, got)
	}
	for i := range want {
		a, b := want[i], got[i]
		if a.Query != b.Query || a.Win != b.Win || a.Group != b.Group || !agg.ApproxEqual(a.State, b.State) {
			t.Fatalf("result %d differs:\nwant %+v\ngot  %+v", i, a, b)
		}
	}
}

// randomWorkload builds 2-5 random queries with a uniform window and
// random aggregation functions; patterns avoid duplicate types so that
// sharing decomposition applies.
func randomWorkload(f *fixture, rng *rand.Rand) query.Workload {
	nq := 2 + rng.Intn(4)
	winLen := int64(6 + rng.Intn(30))
	slide := int64(1 + rng.Intn(int(winLen)))
	groupBy := rng.Intn(2) == 0
	alphabet := []byte("ABCDEF")
	var w query.Workload
	for i := 0; i < nq; i++ {
		perm := rng.Perm(len(alphabet))
		plen := 2 + rng.Intn(3)
		pat := make([]byte, plen)
		for j := 0; j < plen; j++ {
			pat[j] = alphabet[perm[j]]
		}
		kind := query.AggKind(rng.Intn(6))
		spec := query.AggSpec{Kind: kind}
		if kind != query.CountStar {
			spec.Target = f.ids[pat[rng.Intn(plen)]]
		}
		w = append(w, &query.Query{
			ID:      i,
			Pattern: f.pat(string(pat)),
			Agg:     spec,
			Window:  query.Window{Length: winLen, Slide: slide},
			GroupBy: groupBy,
		})
	}
	return w
}

func randomStream(f *fixture, rng *rand.Rand, n int) event.Stream {
	alphabet := []byte("ABCDEF")
	out := make(event.Stream, n)
	t := int64(rng.Intn(5))
	for i := 0; i < n; i++ {
		t += 1 + int64(rng.Intn(3))
		out[i] = event.Event{
			Time: t,
			Type: f.ids[alphabet[rng.Intn(len(alphabet))]],
			Key:  event.GroupKey(rng.Intn(3)),
			Val:  float64(rng.Intn(20)),
		}
	}
	return out
}

// sharablePlan derives a valid sharing plan for the workload: for each
// sharable pattern shared by compatible targets, greedily pick
// non-conflicting candidates.
func sharablePlan(w query.Workload) core.Plan {
	cands := core.FindCandidates(w)
	var plan core.Plan
	for _, c := range cands {
		// Skip candidates with incompatible aggregation targets.
		if !compatibleTargets(w, c) {
			continue
		}
		trial := append(plan.Clone(), c)
		if trial.Validate(w) == nil {
			plan = trial
		}
	}
	return plan
}

func compatibleTargets(w query.Workload, c core.Candidate) bool {
	var target event.Type
	for _, id := range c.Queries {
		q := w[id]
		if q.Agg.Kind == query.CountStar {
			continue
		}
		if !c.Pattern.Contains(query.Pattern{q.Agg.Target}) {
			continue
		}
		if target == event.NoType {
			target = q.Agg.Target
		} else if target != q.Agg.Target {
			return false
		}
	}
	return true
}

// TestExecutorEquivalenceRandomized is the central correctness property:
// on random workloads and streams, the Sharon engine (with a sharing
// plan), the A-Seq engine (empty plan), the Flink-style two-step executor,
// the SPASS executor, and the brute-force oracle all produce identical
// results.
func TestExecutorEquivalenceRandomized(t *testing.T) {
	f := newFixture()
	rng := rand.New(rand.NewSource(1234))
	iters := 120
	if testing.Short() {
		iters = 25
	}
	for it := 0; it < iters; it++ {
		w := randomWorkload(f, rng)
		stream := randomStream(f, rng, 40+rng.Intn(80))
		plan := sharablePlan(w)

		oracle, err := Oracle(stream, w)
		if err != nil {
			t.Fatalf("iter %d: oracle: %v", it, err)
		}

		executors := map[string]func() (Executor, error){
			"aseq":   func() (Executor, error) { return NewEngine(w, nil, Options{Collect: true}) },
			"sharon": func() (Executor, error) { return NewEngine(w, plan, Options{Collect: true}) },
			"twostep": func() (Executor, error) {
				ts, err := NewTwoStep(w, Options{Collect: true})
				return ts, err
			},
			"spass": func() (Executor, error) {
				sp, err := NewSPASS(w, plan, Options{Collect: true})
				return sp, err
			},
		}
		for name, mk := range executors {
			ex, err := mk()
			if err != nil {
				t.Fatalf("iter %d: %s: %v", it, name, err)
			}
			runAll(t, ex, stream)
			got := resultsOf(ex)
			if msg := diffResults(oracle, got); msg != "" {
				t.Fatalf("iter %d: %s vs oracle: %s\nplan=%v\nworkload:\n%s", it, name, msg, plan, dumpWorkload(f, w))
			}
		}
	}
}

func resultsOf(ex Executor) []Result {
	switch v := ex.(type) {
	case *Engine:
		return v.Results()
	case *TwoStep:
		return v.Results()
	case *SPASS:
		return v.Results()
	}
	return nil
}

func diffResults(want, got []Result) string {
	if len(want) != len(got) {
		return fmt.Sprintf("result count %d vs %d:\nwant=%v\ngot=%v", len(want), len(got), want, got)
	}
	for i := range want {
		a, b := want[i], got[i]
		if a.Query != b.Query || a.Win != b.Win || a.Group != b.Group || !agg.ApproxEqual(a.State, b.State) {
			return fmt.Sprintf("result %d: want %+v, got %+v", i, a, b)
		}
	}
	return ""
}

func dumpWorkload(f *fixture, w query.Workload) string {
	s := ""
	for _, q := range w {
		s += q.Format(f.reg) + "\n"
	}
	return s
}

// TestMultiCandidateDecomposition exercises a query sharing two disjoint
// patterns (like q4 sharing p2 and p4 in the paper's optimal plan).
func TestMultiCandidateDecomposition(t *testing.T) {
	f := newFixture()
	w := query.Workload{
		f.query(0, "ABCD", 30, 10), // shares (A,B) and (C,D)
		f.query(1, "AB", 30, 10),
		f.query(2, "CD", 30, 10),
	}
	plan := core.Plan{
		core.NewCandidate(f.pat("AB"), []int{0, 1}),
		core.NewCandidate(f.pat("CD"), []int{0, 2}),
	}
	en, err := NewEngine(w, plan, Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	stream := f.stream("ABCDDBACDABCDAB", 1)
	runAll(t, en, stream)

	oracle, err := Oracle(stream, w)
	if err != nil {
		t.Fatal(err)
	}
	if msg := diffResults(oracle, en.Results()); msg != "" {
		t.Fatalf("multi-candidate engine vs oracle: %s", msg)
	}
	// Confirm the decomposition actually has three segments for q0.
	if got := len(en.proto.chains[0].segs); got != 2 {
		t.Errorf("q0 segments = %d, want 2 (two shared, zero private)", got)
	}
}

func TestEngineValidation(t *testing.T) {
	f := newFixture()
	// Mismatched windows rejected.
	w := query.Workload{
		f.query(0, "AB", 10, 5),
		f.query(1, "BC", 20, 5),
	}
	if _, err := NewEngine(w, nil, Options{}); err == nil {
		t.Error("mismatched windows accepted")
	}
	// Empty workload rejected.
	if _, err := NewEngine(nil, nil, Options{}); err == nil {
		t.Error("empty workload accepted")
	}
	// Plan with pattern not in query rejected.
	w2 := query.Workload{f.query(0, "AB", 10, 5), f.query(1, "AB", 10, 5)}
	bad := core.Plan{core.NewCandidate(f.pat("CD"), []int{0, 1})}
	if _, err := NewEngine(w2, bad, Options{}); err == nil {
		t.Error("plan with foreign pattern accepted")
	}
	// Conflicting plan rejected.
	w3 := query.Workload{f.query(0, "ABC", 10, 5), f.query(1, "ABC", 10, 5)}
	conflicting := core.Plan{
		core.NewCandidate(f.pat("AB"), []int{0, 1}),
		core.NewCandidate(f.pat("BC"), []int{0, 1}),
	}
	if _, err := NewEngine(w3, conflicting, Options{}); err == nil {
		t.Error("conflicting plan accepted")
	}
}

func TestEngineOutOfOrder(t *testing.T) {
	f := newFixture()
	w := query.Workload{f.query(0, "AB", 10, 5)}
	en, err := NewEngine(w, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := en.Process(event.Event{Time: 5, Type: f.ids['A']}); err != nil {
		t.Fatal(err)
	}
	if err := en.Process(event.Event{Time: 5, Type: f.ids['B']}); err == nil {
		t.Error("duplicate timestamp accepted")
	}
}

func TestEnginePredicates(t *testing.T) {
	f := newFixture()
	q := f.query(0, "AB", 100, 100)
	q.Where = []query.Predicate{{Type: f.ids['A'], Op: query.Gt, Value: 2}}
	w := query.Workload{q}
	en, err := NewEngine(w, nil, Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	// a@1 val=1 (filtered), a@2 val=5 (kept), b@3 val=1.
	must(t, en.Process(event.Event{Time: 1, Type: f.ids['A'], Val: 1}))
	must(t, en.Process(event.Event{Time: 2, Type: f.ids['A'], Val: 5}))
	must(t, en.Process(event.Event{Time: 3, Type: f.ids['B'], Val: 1}))
	must(t, en.Flush())
	rs := en.Results()
	if len(rs) != 1 || rs[0].State.Count != 1 {
		t.Fatalf("results = %+v, want one count-1 result", rs)
	}
}

func TestEngineGrouping(t *testing.T) {
	f := newFixture()
	q := f.query(0, "AB", 100, 100)
	q.GroupBy = true
	w := query.Workload{q}
	en, err := NewEngine(w, nil, Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	// Key 1: a@1, b@4. Key 2: a@2, b@3. Cross-key pairs must not match.
	must(t, en.Process(event.Event{Time: 1, Type: f.ids['A'], Key: 1}))
	must(t, en.Process(event.Event{Time: 2, Type: f.ids['A'], Key: 2}))
	must(t, en.Process(event.Event{Time: 3, Type: f.ids['B'], Key: 2}))
	must(t, en.Process(event.Event{Time: 4, Type: f.ids['B'], Key: 1}))
	must(t, en.Flush())
	rs := en.Results()
	if len(rs) != 2 {
		t.Fatalf("results = %+v, want 2 groups", rs)
	}
	for _, r := range rs {
		if r.State.Count != 1 {
			t.Errorf("group %d count = %v, want 1", r.Group, r.State.Count)
		}
	}
}

func TestEngineDuplicateTypesNonShared(t *testing.T) {
	f := newFixture()
	w := query.Workload{f.query(0, "ABA", 100, 100), f.query(1, "AB", 100, 100)}
	// Non-shared works with duplicate types.
	en, err := NewEngine(w, nil, Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	stream := f.stream("ABA", 1)
	runAll(t, en, stream)
	oracle, err := Oracle(stream, w)
	if err != nil {
		t.Fatal(err)
	}
	if msg := diffResults(oracle, en.Results()); msg != "" {
		t.Fatal(msg)
	}
	// Shared decomposition of a duplicate-type query is rejected.
	plan := core.Plan{core.NewCandidate(f.pat("AB"), []int{0, 1})}
	if _, err := NewEngine(w, plan, Options{}); err == nil {
		t.Error("duplicate-type decomposition accepted")
	}
}

func TestTwoStepCapDNF(t *testing.T) {
	f := newFixture()
	w := query.Workload{f.query(0, "AB", 1000, 1000)}
	ts, err := NewTwoStep(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts.Cap = 3
	// 3 a's and 3 b's: 9 sequences > cap.
	stream := f.stream("AAABBB", 1)
	var failed bool
	for _, e := range stream {
		if err := ts.Process(e); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		if err := ts.Flush(); err == nil {
			t.Fatal("cap not enforced")
		}
	}
}

func TestEngineLiveStatesGrowAndShrink(t *testing.T) {
	f := newFixture()
	w := query.Workload{f.query(0, "AB", 10, 5)}
	en, err := NewEngine(w, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		must(t, en.Process(event.Event{Time: 1 + i*2, Type: f.ids['A']}))
	}
	live := en.LiveStates()
	if live > 20 {
		t.Errorf("live states %d; expiration seems broken", live)
	}
	if en.PeakLiveStates() < live {
		t.Error("peak below current")
	}
}
