package exec

import (
	"testing"
	"time"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/gen"
	"github.com/sharon-project/sharon/internal/query"
)

// parallelFixture builds a grouped multi-query workload, a stream, and
// an optimized sharing plan from the paper workload generator.
func parallelFixture(t testing.TB, nq, events, keys int, grouped bool) (query.Workload, event.Stream, core.Plan) {
	t.Helper()
	wcfg := gen.WorkloadConfig{
		NumQueries: nq, PatternLen: 6,
		SharedChunks: 3, ChunkLen: 2, ChunksPerQuery: 2, FillerPool: 8,
		Window: 4000, Slide: 1000,
		GroupBy: grouped, Seed: 7,
	}
	w, types := gen.GenWorkload(event.NewRegistry(), wcfg)
	stream := gen.StreamForWorkload(types, gen.NumHotTypes(wcfg), events, keys, 500, 3, 7)
	rates := core.Rates(stream.Rates())
	if grouped {
		for tp := range rates {
			rates[tp] /= float64(keys)
		}
	}
	res, err := core.Optimize(w, rates, core.OptimizerOptions{
		Strategy: core.StrategySharon,
		Expand:   true,
		Budget:   2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, stream, res.Plan
}

func runSeqEngine(t testing.TB, w query.Workload, plan core.Plan, stream event.Stream, emitEmpty bool) []Result {
	t.Helper()
	en, err := NewEngine(w, plan, Options{Collect: true, EmitEmpty: emitEmpty})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range stream {
		if err := en.Process(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := en.Flush(); err != nil {
		t.Fatal(err)
	}
	return en.Results()
}

func runParEngine(t testing.TB, w query.Workload, plan core.Plan, stream event.Stream, workers int, emitEmpty bool) []Result {
	t.Helper()
	p, err := NewParallelEngine(w, plan, workers, Options{Collect: true, EmitEmpty: emitEmpty})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.FeedBatch(stream); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	return p.Results()
}

// assertIdenticalResults requires byte-identical result sets: same
// windows, same groups, same aggregate values.
func assertIdenticalResults(t *testing.T, want, got []Result, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: result %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestParallelEngineMatchesSequential is the core equivalence check: the
// group-hash sharded engine produces byte-identical results to the
// sequential engine, shared plan or not, for various worker counts.
func TestParallelEngineMatchesSequential(t *testing.T) {
	w, stream, plan := parallelFixture(t, 8, 6000, 16, true)
	for _, tc := range []struct {
		name string
		plan core.Plan
	}{
		{"shared-plan", plan},
		{"non-shared", nil},
	} {
		want := runSeqEngine(t, w, tc.plan, stream, false)
		if len(want) == 0 {
			t.Fatalf("%s: sequential run produced no results", tc.name)
		}
		for _, workers := range []int{2, 3, 4, 8} {
			got := runParEngine(t, w, tc.plan, stream, workers, false)
			assertIdenticalResults(t, want, got, tc.name+"/workers="+itoa(workers))
		}
	}
}

// TestParallelEngineEmitEmpty checks the EmitEmpty window-accounting
// parity: watermark-driven shard engines must close exactly the windows
// the sequential engine closes for every group.
func TestParallelEngineEmitEmpty(t *testing.T) {
	w, stream, plan := parallelFixture(t, 4, 3000, 8, true)
	want := runSeqEngine(t, w, plan, stream, true)
	got := runParEngine(t, w, plan, stream, 4, true)
	assertIdenticalResults(t, want, got, "emit-empty")
}

// TestParallelEngineUngrouped pins the degenerate case: an ungrouped
// workload aggregates all events under one group regardless of their
// keys, so it cannot shard by key hash — the constructor clamps to one
// worker and results stay identical even when the stream carries many
// distinct keys.
func TestParallelEngineUngrouped(t *testing.T) {
	w, stream, plan := parallelFixture(t, 4, 2000, 8, false)
	want := runSeqEngine(t, w, plan, stream, false)
	p, err := NewParallelEngine(w, plan, 4, Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Workers(); got != 1 {
		t.Fatalf("ungrouped workload got %d workers, want 1 (cannot shard by key)", got)
	}
	if err := p.FeedBatch(stream); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	assertIdenticalResults(t, want, p.Results(), "ungrouped")
}

// TestParallelEmissionOrderDeterministic runs the parallel engine twice
// with a streaming OnResult and requires the emission sequences to be
// identical, and ordered by (window end, query, window, group).
func TestParallelEmissionOrderDeterministic(t *testing.T) {
	w, stream, plan := parallelFixture(t, 6, 4000, 12, true)
	win := w[0].Window
	run := func() []Result {
		var seq []Result
		p, err := NewParallelEngine(w, plan, 4, Options{OnResult: func(r Result) { seq = append(seq, r) }})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range stream {
			if err := p.Process(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
		return seq
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no results emitted")
	}
	assertIdenticalResults(t, a, b, "repeat-run")
	for i := 1; i < len(a); i++ {
		pe, ce := win.End(a[i-1].Win), win.End(a[i].Win)
		if pe > ce {
			t.Fatalf("emission %d: window end %d after %d", i, ce, pe)
		}
		if pe == ce {
			if a[i-1].Query > a[i].Query ||
				(a[i-1].Query == a[i].Query && a[i-1].Group >= a[i].Group) {
				t.Fatalf("emission %d out of (query, group) order: %+v then %+v", i, a[i-1], a[i])
			}
		}
	}
}

// mixedWorkload builds a three-segment workload (two windows, one
// predicate variant) for the partitioned executors.
func mixedWorkload(t *testing.T) (query.Workload, event.Stream) {
	t.Helper()
	reg := event.NewRegistry()
	mk := func(text string) *query.Query { return query.MustParse(text, reg) }
	w := query.Workload{
		mk("RETURN COUNT(*) PATTERN SEQ(A, B) WHERE [key] WITHIN 4s SLIDE 2s"),
		mk("RETURN COUNT(*) PATTERN SEQ(A, B, C) WHERE [key] WITHIN 4s SLIDE 2s"),
		mk("RETURN SUM(C.val) PATTERN SEQ(B, C) WHERE [key] WITHIN 8s SLIDE 4s"),
		mk("RETURN COUNT(*) PATTERN SEQ(A, C) WHERE A.val > 40 WITHIN 6s SLIDE 3s"),
	}
	w.Renumber()
	types := []event.Type{reg.Lookup("A"), reg.Lookup("B"), reg.Lookup("C")}
	stream := gen.StreamForWorkload(types, 3, 3000, 6, 400, 1, 3)
	return w, stream
}

// TestParallelPartitionedMatchesSequential checks segment sharding: the
// broadcast-routed parallel partitioned executor equals the sequential
// one on a mixed-window/predicate workload.
func TestParallelPartitionedMatchesSequential(t *testing.T) {
	w, stream := mixedWorkload(t)
	rates := core.Rates(stream.Rates())
	optOpts := core.OptimizerOptions{Strategy: core.StrategySharon, Expand: true, Budget: time.Second}

	seq, err := NewPartitioned(w, rates, Options{Collect: true}, optOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range stream {
		if err := seq.Process(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := seq.Flush(); err != nil {
		t.Fatal(err)
	}
	want := seq.Results()
	if len(want) == 0 {
		t.Fatal("sequential partitioned produced no results")
	}

	specs, err := PlanSegments(w, rates, optOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		p, err := NewParallelPartitioned(specs, workers, Options{Collect: true})
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Workers(); got > len(specs) {
			t.Fatalf("workers = %d, want <= %d segments", got, len(specs))
		}
		if err := p.FeedBatch(stream); err != nil {
			t.Fatal(err)
		}
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
		assertIdenticalResults(t, want, p.Results(), "partitioned/workers="+itoa(workers))
	}
}

// TestParallelDynamicMatchesSequential checks the sharded §7.4 dynamic
// executor: per-shard rate monitoring and independent migrations must
// not change window results.
func TestParallelDynamicMatchesSequential(t *testing.T) {
	w, stream, _ := parallelFixture(t, 4, 4000, 8, true)
	rates := core.Rates(stream[:500].Rates())
	cfg := DynamicConfig{Options: Options{Collect: true}, DriftThreshold: 0.3}

	seq, err := NewDynamic(w, rates, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range stream {
		if err := seq.Process(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := seq.Flush(); err != nil {
		t.Fatal(err)
	}
	want := seq.Results()
	if len(want) == 0 {
		t.Fatal("sequential dynamic produced no results")
	}

	p, dyns, err := NewParallelDynamic(w, rates, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.FeedBatch(stream); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	assertIdenticalResults(t, want, p.Results(), "dynamic/workers=4")
	if len(dyns) != 4 {
		t.Fatalf("shards = %d, want 4", len(dyns))
	}
}

// TestParallelRejectsOutOfOrder mirrors the sequential contract: the
// feeder rejects a non-increasing timestamp synchronously.
func TestParallelRejectsOutOfOrder(t *testing.T) {
	w, stream, plan := parallelFixture(t, 2, 100, 4, true)
	p, err := NewParallelEngine(w, plan, 2, Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Process(stream[1]); err != nil {
		t.Fatal(err)
	}
	if err := p.Process(stream[0]); err == nil {
		t.Error("out-of-order event accepted")
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := p.Process(stream[2]); err == nil {
		t.Error("Process after Flush accepted")
	}
	if err := p.Flush(); err != nil {
		t.Errorf("repeated Flush: %v", err)
	}
}

// TestParallelStopDiscardsPending checks the abandoned-run teardown: a
// Stop mid-stream must not emit the still-open windows as if they were
// complete aggregates.
func TestParallelStopDiscardsPending(t *testing.T) {
	w, stream, plan := parallelFixture(t, 4, 2000, 8, true)
	var emitted int
	p, err := NewParallelEngine(w, plan, 4, Options{OnResult: func(Result) { emitted++ }})
	if err != nil {
		t.Fatal(err)
	}
	// Feed only events inside the first window (length 4000, slide 1000:
	// nothing closes before t=4000), then abandon the run.
	for _, e := range stream {
		if e.Time >= 3000 {
			break
		}
		if err := p.Process(e); err != nil {
			t.Fatal(err)
		}
	}
	p.Stop()
	if emitted != 0 {
		t.Errorf("Stop emitted %d truncated window results, want 0", emitted)
	}
	if !p.Flushed() {
		t.Error("Flushed() = false after Stop")
	}
	if err := p.Process(stream[len(stream)-1]); err == nil {
		t.Error("Process accepted after Stop")
	}
	if err := p.Flush(); err != nil {
		t.Errorf("Flush after Stop: %v", err)
	}
	if emitted != 0 {
		t.Errorf("Flush after Stop emitted %d results, want 0", emitted)
	}
}

// TestParallelStats checks the throughput / shard-occupancy counters.
func TestParallelStats(t *testing.T) {
	w, stream, plan := parallelFixture(t, 4, 4000, 16, true)
	p, err := NewParallelEngine(w, plan, 4, Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.FeedBatch(stream); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Workers != 4 {
		t.Errorf("Workers = %d, want 4", st.Workers)
	}
	if st.EventsFed != int64(len(stream)) {
		t.Errorf("EventsFed = %d, want %d", st.EventsFed, len(stream))
	}
	if st.TotalShardEvents() != int64(len(stream)) {
		t.Errorf("TotalShardEvents = %d, want %d (hash routing)", st.TotalShardEvents(), len(stream))
	}
	if st.ResultsMerged != p.ResultCount() {
		t.Errorf("ResultsMerged = %d, ResultCount = %d", st.ResultsMerged, p.ResultCount())
	}
	var occ float64
	for _, f := range st.Occupancy() {
		occ += f
	}
	if occ < 0.999 || occ > 1.001 {
		t.Errorf("occupancy sums to %v, want 1", occ)
	}
	if st.Imbalance() < 1 {
		t.Errorf("imbalance = %v, want >= 1", st.Imbalance())
	}
	if st.Rounds <= 0 {
		t.Errorf("rounds = %d, want > 0", st.Rounds)
	}
	if st.Elapsed <= 0 || st.Throughput() <= 0 {
		t.Errorf("elapsed=%v throughput=%v, want > 0 after Flush", st.Elapsed, st.Throughput())
	}
	if s := st.String(); s == "" {
		t.Error("empty stats string")
	}
}

// TestParallelExplain checks that the sharded engine still reports its
// per-query decomposition.
func TestParallelExplain(t *testing.T) {
	reg := event.NewRegistry()
	w := query.Workload{
		query.MustParse("RETURN COUNT(*) PATTERN SEQ(A, B, C) WHERE [key] WITHIN 10s SLIDE 5s", reg),
		query.MustParse("RETURN COUNT(*) PATTERN SEQ(A, B, D) WHERE [key] WITHIN 10s SLIDE 5s", reg),
	}
	w.Renumber()
	plan := core.Plan{core.FindCandidates(w)[0]}
	p, err := NewParallelEngine(w, plan, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := p.Explain(reg); s == "" {
		t.Error("parallel Explain returned nothing")
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
