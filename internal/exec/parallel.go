package exec

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/metrics"
	"github.com/sharon-project/sharon/internal/query"
)

// DefaultBatchSize is the per-shard event batch size of the parallel
// executor: the feeder hands events to workers in batches of roughly
// this size to amortize channel crossings, and advances the shared
// watermark once per dispatch round.
const DefaultBatchSize = 256

// ShardTarget is the contract a per-shard executor must satisfy to run
// under Parallel. A target is driven from exactly one worker goroutine:
// Process feeds it the shard's (strictly time-ordered) sub-stream,
// AdvanceWatermark closes windows in step with the global stream when
// the shard itself received no events, Flush closes the tail at end of
// stream. Engine, Dynamic, and segmentShard implement it.
type ShardTarget interface {
	Process(e event.Event) error
	AdvanceWatermark(t int64)
	Flush() error
	PeakLiveStates() int64
}

// ParallelConfig configures NewParallel.
type ParallelConfig struct {
	// Workers is the number of shard workers (goroutines). <1 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// BatchSize is the per-shard event batch size (default
	// DefaultBatchSize).
	BatchSize int
	// Opts configures merged-result delivery. OnResult is invoked from
	// the merge goroutine while the stream is being fed.
	Opts Options
	// Broadcast routes every event to every shard (segment sharding);
	// when false, events are routed to one shard by group-key hash.
	Broadcast bool
	// WinEnd maps an emitted result to its window-end tick, the primary
	// merge ordering key.
	WinEnd func(Result) int64
	// NewShard builds shard i's executor. The executor must deliver its
	// results through sink (and nowhere else).
	NewShard func(shard int, sink func(Result)) (ShardTarget, error)
	// Name is the Executor.Name of the parallel run.
	Name string
}

// Parallel is the sharded parallel executor: it fans a strictly
// time-ordered event stream out to worker goroutines in batches, tracks
// a per-shard watermark, and merges the shards' window results back into
// one deterministic output stream ordered by (window end, query ID,
// window, group).
//
// Sharding axes (paper §7.2 and the VLDB'21 follow-up on parallel
// sharing): group-hash routing splits a grouped workload's independent
// per-group state across workers within one shared plan, while broadcast
// routing splits a partitioned workload's independent uniform segments
// across workers. Each worker owns a full sequential executor, so every
// per-(query, window, group) aggregate is computed by exactly one worker
// from events in original stream order — results are bit-identical to a
// sequential run.
//
// Watermarks: a shard only closes windows when it observes time passing.
// The feeder therefore dispatches in rounds — every round sends each
// worker its pending batch (possibly empty) stamped with the global
// watermark, and workers call AdvanceWatermark after draining the batch.
// The merge stage emits window k once every shard's acknowledged
// watermark has passed k's end, at which point no shard can still
// produce results for it.
//
// Lifecycle: Process/FeedBatch from one goroutine, then Flush exactly
// once; Flush drains the workers, stops them, and delivers every
// remaining window. A flushed Parallel rejects further events.
type Parallel struct {
	name      string
	opts      Options
	winEnd    func(Result) int64
	broadcast bool
	batchSize int
	// batchLimit is the number of buffered feeder events that triggers a
	// dispatch round (batchSize per worker under hash routing, batchSize
	// under broadcast routing where every shard sees every event).
	batchLimit int

	workers []*shardWorker
	pending [][]event.Event
	// batchPool and resultPool recycle the feeder's event batches and the
	// workers' result buffers (as *[]T to keep sync.Pool allocation-free):
	// a batch returns to the pool once its worker drained it, a result
	// buffer once the merge stage bucketed it, so steady-state dispatch
	// allocates nothing. Broadcast batches are shared by all workers and
	// are not pooled (no single owner to return them).
	batchPool  sync.Pool
	resultPool sync.Pool
	// first is shard 0's target, kept for introspection (Explain).
	first ShardTarget

	started  bool
	last     int64
	pendingN int
	closed   bool
	// stopOnce makes teardown race-safe: the GC-backstop cleanup of an
	// abandoned run (sharon.reclaimOnDrop) may call Stop from the
	// cleanup goroutine while a last in-flight Flush tears down too.
	stopOnce sync.Once

	out       chan shardOut
	mergeDone chan struct{}
	// snapBarrier is signalled by the merge stage once it has delivered
	// every window a snapshot round made ready (see Snapshot).
	snapBarrier chan struct{}

	// Merge-side state. results is written by the merge goroutine and
	// read only after mergeDone closes; count and errv are atomic for
	// concurrent ResultCount / error checks from the feeder.
	results []Result
	count   atomic.Int64
	errv    atomic.Value // error
	peak    int64

	fed       atomic.Int64
	rounds    atomic.Int64
	dropped   atomic.Bool
	startedAt time.Time
	elapsed   time.Duration
}

// shardMsg is one feeder→worker message: a batch of the shard's events
// followed by the global watermark at dispatch time.
type shardMsg struct {
	events []event.Event
	wm     int64
	hasWM  bool
	flush  bool
	// pooled marks a batch owned by exactly one worker (hash routing);
	// the worker returns it to the batch pool after draining it.
	pooled bool
	// snap, when non-nil, requests a shard snapshot after the message is
	// fully processed (the quiesced checkpoint barrier; see Snapshot).
	snap chan<- shardSnap
	// ctl, when non-nil, runs on the worker goroutine after the message's
	// events and watermark are processed (cluster group grafts/removals);
	// its error is reported on ack and poisons the shard. ack, when
	// non-nil, marks a barrier round (see ctlRound): the worker replies
	// once the message — ctl included — is fully processed, and the merge
	// stage releases the barrier only after delivering every window the
	// round made ready.
	ctl func(ShardTarget) error
	ack chan<- error
}

// shardSnap is one worker's reply to a snapshot request.
type shardSnap struct {
	shard int
	s     *SystemSnapshot
	err   error
}

// shardOut is one worker→merger message: the results the shard produced
// while consuming the corresponding shardMsg, plus the watermark it has
// now fully processed.
type shardOut struct {
	shard   int
	results []Result
	wm      int64
	hasWM   bool
	flush   bool
	snap    bool
	err     error
}

type shardWorker struct {
	id     int
	in     chan shardMsg
	target ShardTarget
	// pool is the owning executor, for the shared batch/result pools.
	pool *Parallel
	// buf accumulates results between messages; the target's sink
	// appends to it from the worker goroutine, drawing recycled backing
	// arrays from the result pool.
	buf   []Result
	err   error
	stats metrics.ShardCounters
}

func (w *shardWorker) run(out chan<- shardOut) {
	for msg := range w.in {
		if w.err == nil {
			for _, e := range msg.events {
				if err := w.target.Process(e); err != nil {
					w.err = err
					break
				}
			}
			if w.err == nil && msg.hasWM {
				w.target.AdvanceWatermark(msg.wm)
			}
			if w.err == nil && msg.flush {
				w.err = w.target.Flush()
			}
		}
		var ctlErr error
		if msg.ctl != nil {
			if w.err != nil {
				ctlErr = w.err
			} else if ctlErr = msg.ctl(w.target); ctlErr != nil {
				// A half-applied graft leaves the shard inconsistent;
				// poison the run rather than keep emitting from it.
				w.err = ctlErr
			}
		}
		if msg.pooled && msg.events != nil {
			w.pool.putBatch(msg.events)
		}
		res := w.buf
		w.buf = nil
		w.stats.Events.Add(int64(len(msg.events)))
		w.stats.Batches.Add(1)
		w.stats.Results.Add(int64(len(res)))
		if gc, ok := w.target.(groupCounter); ok {
			w.stats.Groups.Store(gc.GroupCount())
		}
		// An errored shard must not acknowledge the watermark: its
		// contributions to the frontier's windows are missing, and
		// acking would let the merge emit them truncated.
		out <- shardOut{shard: w.id, results: res, wm: msg.wm, hasWM: msg.hasWM && w.err == nil, flush: msg.flush, snap: msg.snap != nil || msg.ack != nil, err: w.err}
		if msg.snap != nil {
			sn := shardSnap{shard: w.id}
			switch sp, ok := w.target.(shardPersist); {
			case w.err != nil:
				sn.err = w.err
			case ok:
				sn.s = sp.Snapshot()
			default:
				sn.err = fmt.Errorf("exec: shard %d target %T does not support snapshots", w.id, w.target)
			}
			msg.snap <- sn
		}
		if msg.ack != nil {
			if ctlErr == nil {
				ctlErr = w.err
			}
			msg.ack <- ctlErr
		}
	}
}

// NewParallel builds and starts a parallel executor: cfg.Workers worker
// goroutines plus one merge goroutine.
func NewParallel(cfg ParallelConfig) (*Parallel, error) {
	if cfg.NewShard == nil || cfg.WinEnd == nil {
		return nil, fmt.Errorf("exec: ParallelConfig needs NewShard and WinEnd")
	}
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.Name == "" {
		cfg.Name = "parallel"
	}
	p := &Parallel{
		name:        cfg.Name,
		opts:        cfg.Opts,
		winEnd:      cfg.WinEnd,
		broadcast:   cfg.Broadcast,
		batchSize:   cfg.BatchSize,
		pending:     make([][]event.Event, cfg.Workers),
		out:         make(chan shardOut, cfg.Workers*4),
		mergeDone:   make(chan struct{}),
		snapBarrier: make(chan struct{}, 1),
		startedAt:   time.Now(), // re-stamped on the first event
	}
	p.batchLimit = cfg.BatchSize
	if !cfg.Broadcast {
		p.batchLimit = cfg.BatchSize * cfg.Workers
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &shardWorker{id: i, in: make(chan shardMsg, 4), pool: p}
		target, err := cfg.NewShard(i, func(r Result) {
			if w.buf == nil {
				w.buf = p.getResBuf()
			}
			w.buf = append(w.buf, r)
		})
		if err != nil {
			return nil, err
		}
		w.target = target
		p.workers = append(p.workers, w)
	}
	p.first = p.workers[0].target
	for _, w := range p.workers {
		go w.run(p.out)
	}
	go p.mergeLoop()
	return p, nil
}

// getBatch returns a recycled (or fresh) event batch with zero length.
func (p *Parallel) getBatch() []event.Event {
	if b, ok := p.batchPool.Get().(*[]event.Event); ok {
		return (*b)[:0]
	}
	return make([]event.Event, 0, p.batchSize)
}

// putBatch returns a drained batch's backing array to the pool. Called
// from worker goroutines; sync.Pool is safe for concurrent use.
func (p *Parallel) putBatch(b []event.Event) {
	b = b[:0]
	p.batchPool.Put(&b)
}

// getResBuf returns a recycled (or fresh) result buffer with zero length.
func (p *Parallel) getResBuf() []Result {
	if b, ok := p.resultPool.Get().(*[]Result); ok {
		return (*b)[:0]
	}
	return nil
}

// putResBuf recycles a result buffer after the merge stage bucketed it.
func (p *Parallel) putResBuf(b []Result) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	p.resultPool.Put(&b)
}

// shardOf maps a group key to a worker by Fibonacci-hashing the key.
func shardOf(k event.GroupKey, n int) int {
	h := uint64(k) * 0x9E3779B97F4A7C15
	h ^= h >> 32
	return int(h % uint64(n))
}

// Name identifies the strategy.
func (p *Parallel) Name() string { return p.name }

// Workers reports the shard worker count.
func (p *Parallel) Workers() int { return len(p.workers) }

// Process feeds the next event (strictly time-ordered). The event is
// buffered and dispatched to its shard in batches; processing errors
// from workers surface on a later Process or on Flush.
func (p *Parallel) Process(e event.Event) error {
	if err := p.checkFeedable(); err != nil {
		return err
	}
	return p.feedOne(e)
}

// FeedBatch feeds a batch of strictly time-ordered events, hoisting the
// per-call liveness checks out of the event loop.
func (p *Parallel) FeedBatch(events []event.Event) error {
	if err := p.checkFeedable(); err != nil {
		return err
	}
	for _, e := range events {
		if err := p.feedOne(e); err != nil {
			return err
		}
	}
	return nil
}

// AdvanceWatermark declares that no event at or before time t will
// arrive anymore: the pending batches are dispatched immediately stamped
// with the new watermark, every shard closes its windows up to t, and
// the merge stage delivers them — without waiting for the batch limit or
// a terminal Flush. Network sources use it to bound emission latency
// across rate swings: in a valley it drives out windows whose groups
// went quiet, and when a burst subsides it is also what completes an
// adaptive shard's in-flight share/split hand-off (the draining engine
// is retired once the watermark passes its last window; see
// Dynamic.AdvanceWatermark). Events at or before t are subsequently
// rejected as out-of-order. Calls before the first event or at or below
// the current watermark are no-ops, as is a call after Flush.
func (p *Parallel) AdvanceWatermark(t int64) {
	if p.closed || !p.started || t <= p.last {
		return
	}
	p.last = t
	p.dispatch(false)
}

func (p *Parallel) checkFeedable() error {
	if p.closed {
		return fmt.Errorf("exec: Process after Flush on parallel executor")
	}
	return p.loadErr()
}

func (p *Parallel) feedOne(e event.Event) error {
	if p.started && e.Time <= p.last {
		return fmt.Errorf("exec: out-of-order event at t=%d (last t=%d)", e.Time, p.last)
	}
	if !p.started {
		p.started = true
		p.startedAt = time.Now()
	}
	p.last = e.Time
	if p.broadcast {
		// All shards receive the same batch; buffer it once and share
		// the slice (workers only read it).
		p.pending[0] = append(p.pending[0], e)
	} else {
		s := shardOf(e.Key, len(p.workers))
		if p.pending[s] == nil {
			p.pending[s] = p.getBatch()
		}
		p.pending[s] = append(p.pending[s], e)
	}
	p.pendingN++
	p.fed.Add(1)
	if p.pendingN >= p.batchLimit {
		p.dispatch(false)
	}
	return nil
}

// dispatch sends every shard its pending batch — empty batches included,
// so all shards observe the current watermark — and starts a new round.
// Under broadcast routing all shards share one read-only batch slice.
func (p *Parallel) dispatch(flush bool) {
	for i, w := range p.workers {
		batch := p.pending[i]
		if p.broadcast {
			batch = p.pending[0]
		}
		msg := shardMsg{events: batch, flush: flush, pooled: !p.broadcast}
		if p.started {
			msg.wm, msg.hasWM = p.last, true
		}
		w.in <- msg
	}
	for i := range p.pending {
		p.pending[i] = nil
	}
	p.pendingN = 0
	p.rounds.Add(1)
}

// Flush dispatches the remaining events, closes the tail windows on
// every shard, drains the merge stage, and stops all goroutines. It
// reports the first error any worker hit. Flush is idempotent.
func (p *Parallel) Flush() error {
	p.shutdown()
	return p.loadErr()
}

// Stop tears the executor down like Flush but discards every window not
// yet delivered, so a run abandoned mid-stream (e.g. ProcessAll hitting
// a feed error) does not emit truncated aggregates through OnResult.
func (p *Parallel) Stop() {
	if !p.closed {
		p.dropped.Store(true)
		p.shutdown()
	}
}

func (p *Parallel) shutdown() {
	p.stopOnce.Do(p.doShutdown)
}

func (p *Parallel) doShutdown() {
	p.dispatch(true)
	for _, w := range p.workers {
		close(w.in)
	}
	p.closed = true
	<-p.mergeDone
	var peak int64
	for _, w := range p.workers {
		peak += w.target.PeakLiveStates()
	}
	p.peak = peak
	p.elapsed = time.Since(p.startedAt)
}

// Flushed reports whether the executor has been torn down (by Flush or
// Stop). Callers use it to gate post-run introspection of shard state.
func (p *Parallel) Flushed() bool { return p.closed }

func (p *Parallel) loadErr() error {
	if v := p.errv.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// mergeLoop is the merge stage: it buckets incoming results by window
// end, tracks each shard's acknowledged watermark, and emits a window's
// results — sorted by (query, window, group) — once every shard's
// watermark passed its end. Windows therefore stream out in
// deterministic (window end, query ID, window, group) order regardless
// of worker scheduling.
//
//sharon:deterministic
func (p *Parallel) mergeLoop() {
	const noWM = math.MinInt64
	wms := make([]int64, len(p.workers))
	for i := range wms {
		wms[i] = noWM
	}
	buckets := make(map[int64][]Result)
	flushed := 0
	snapAcks := 0
	for o := range p.out {
		if o.err != nil {
			if p.errv.Load() == nil {
				p.errv.Store(o.err)
			}
			// A failed run delivers nothing further: every window at
			// or past the stall is missing the errored shard's data.
			p.dropped.Store(true)
		}
		for _, r := range o.results {
			end := p.winEnd(r)
			buckets[end] = append(buckets[end], r)
		}
		p.putResBuf(o.results)
		if o.hasWM && o.wm > wms[o.shard] {
			wms[o.shard] = o.wm
		}
		if o.flush {
			flushed++
			if flushed == len(p.workers) {
				p.emitReady(buckets, math.MaxInt64)
				close(p.mergeDone)
				return
			}
			continue
		}
		frontier := int64(math.MaxInt64)
		for _, wm := range wms {
			if wm < frontier {
				frontier = wm
			}
		}
		if frontier > noWM {
			p.emitReady(buckets, frontier)
		}
		// Release the snapshot barrier only after this round's ready
		// windows were delivered: when Snapshot returns, everything at or
		// below the snapshot watermark has reached OnResult.
		if o.snap {
			snapAcks++
			if snapAcks == len(p.workers) {
				snapAcks = 0
				p.snapBarrier <- struct{}{}
			}
		}
	}
}

// emitReady delivers every buffered window whose end is at or below
// limit, in ascending end order, each window's results sorted by
// (query, window, group). After Stop, buffered windows are discarded
// instead of delivered.
//
//sharon:deterministic
func (p *Parallel) emitReady(buckets map[int64][]Result, limit int64) {
	if p.dropped.Load() {
		clear(buckets)
		return
	}
	var ready []int64
	//sharon:allow deterministicemit (the map range only collects window ends; the sort below fixes the ascending-end delivery order)
	for end := range buckets {
		if end <= limit {
			ready = append(ready, end)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	for _, end := range ready {
		rs := buckets[end]
		delete(buckets, end)
		sort.Slice(rs, func(i, j int) bool { return lessResult(rs[i], rs[j]) })
		for _, r := range rs {
			p.count.Add(1)
			if p.opts.OnResult != nil {
				p.opts.OnResult(r)
			}
			if p.opts.Collect {
				p.results = append(p.results, r)
			}
		}
	}
}

// ctlRound runs one quiesced barrier round: every shard receives its
// pending batch stamped with the current watermark plus an optional
// per-shard control op, and the round returns only after every shard
// acknowledged and the merge stage delivered every window the round
// made ready. mk may be nil (pure barrier) or return nil for shards
// with no op. It reports the first shard error.
func (p *Parallel) ctlRound(mk func(shard int) func(ShardTarget) error) error {
	ack := make(chan error, len(p.workers))
	for i, w := range p.workers {
		batch := p.pending[i]
		if p.broadcast {
			batch = p.pending[0]
		}
		msg := shardMsg{events: batch, pooled: !p.broadcast, ack: ack}
		if mk != nil {
			msg.ctl = mk(i)
		}
		if p.started {
			msg.wm, msg.hasWM = p.last, true
		}
		w.in <- msg
	}
	for i := range p.pending {
		p.pending[i] = nil
	}
	p.pendingN = 0
	p.rounds.Add(1)
	var firstErr error
	for range p.workers {
		if err := <-ack; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	<-p.snapBarrier // merge delivered everything the round made ready
	return firstErr
}

// Quiesce dispatches the pending batches and blocks until every result
// for windows ending at or before the current watermark has been
// delivered through OnResult. The server's cluster punctuation uses it
// to order "all results <= W emitted" markers after the results they
// cover; on the sequential path emission is synchronous and the
// equivalent method is a no-op.
func (p *Parallel) Quiesce() error {
	if p.closed {
		return fmt.Errorf("exec: Quiesce after Flush on parallel executor")
	}
	if err := p.loadErr(); err != nil {
		return err
	}
	if err := p.ctlRound(nil); err != nil {
		return err
	}
	return p.loadErr()
}

// AbsorbSlice grafts a group slice into the executor: the groups are
// re-sharded by this executor's worker count and each shard absorbs its
// subset under a quiesced barrier. See Engine.AbsorbSlice for the
// alignment contract.
func (p *Parallel) AbsorbSlice(sl *EngineSnapshot) error {
	if p.closed {
		return fmt.Errorf("exec: AbsorbSlice after Flush on parallel executor")
	}
	if err := p.loadErr(); err != nil {
		return err
	}
	if !sl.Started && len(sl.Groups) == 0 {
		return nil
	}
	parts := make([]*EngineSnapshot, len(p.workers))
	for i := range parts {
		parts[i] = &EngineSnapshot{Started: sl.Started, LastTime: sl.LastTime, NextClose: sl.NextClose, MaxWin: sl.MaxWin}
	}
	for i := range sl.Groups {
		s := shardOf(sl.Groups[i].Key, len(p.workers))
		parts[s].Groups = append(parts[s].Groups, sl.Groups[i])
	}
	err := p.ctlRound(func(shard int) func(ShardTarget) error {
		part := parts[shard]
		if len(part.Groups) == 0 {
			return nil
		}
		return func(t ShardTarget) error {
			ab, ok := t.(groupAbsorber)
			if !ok {
				return fmt.Errorf("exec: shard %d target %T cannot absorb group slices", shard, t)
			}
			return ab.AbsorbSlice(part)
		}
	})
	if err != nil {
		return err
	}
	// The feeder-side stream position must cover the slice so a later
	// dispatch round does not hand the shards an older watermark.
	if !p.started {
		p.started = true
		p.last = sl.LastTime
	} else if sl.LastTime > p.last {
		p.last = sl.LastTime
	}
	return nil
}

// RemoveGroups deletes every group satisfying drop from the shards
// under a quiesced barrier and reports how many were removed.
func (p *Parallel) RemoveGroups(drop func(event.GroupKey) bool) (int, error) {
	if p.closed {
		return 0, fmt.Errorf("exec: RemoveGroups after Flush on parallel executor")
	}
	if err := p.loadErr(); err != nil {
		return 0, err
	}
	var removed atomic.Int64
	err := p.ctlRound(func(shard int) func(ShardTarget) error {
		return func(t ShardTarget) error {
			rm, ok := t.(groupRemover)
			if !ok {
				return fmt.Errorf("exec: shard %d target %T cannot remove groups", shard, t)
			}
			removed.Add(int64(rm.RemoveGroups(drop)))
			return nil
		}
	})
	return int(removed.Load()), err
}

// GroupCount sums the shards' live-group gauges (refreshed by each
// worker after every message; exact after a quiesced round).
func (p *Parallel) GroupCount() int64 {
	var n int64
	for _, w := range p.workers {
		n += w.stats.Groups.Load()
	}
	return n
}

// Results returns the merged results (Options.Collect must be set),
// sorted by query, window, group like the sequential executors. It is
// valid only after Flush.
func (p *Parallel) Results() []Result {
	if !p.opts.Collect || !p.closed {
		return nil
	}
	out := make([]Result, len(p.results))
	copy(out, p.results)
	sort.Slice(out, func(i, j int) bool { return lessResult(out[i], out[j]) })
	return out
}

// ResultCount reports the number of merged results emitted so far.
func (p *Parallel) ResultCount() int64 { return p.count.Load() }

// PeakLiveStates sums the shards' peaks; available after Flush.
func (p *Parallel) PeakLiveStates() int64 { return p.peak }

// Explain renders the per-query decomposition when the shards run the
// online Engine (all shards share the same compiled form).
func (p *Parallel) Explain(reg *event.Registry) string {
	if en, ok := p.first.(*Engine); ok {
		return en.Explain(reg)
	}
	return ""
}

// Stats snapshots the run's throughput and shard-occupancy counters.
func (p *Parallel) Stats() metrics.ParallelStats {
	st := metrics.ParallelStats{
		Workers:       len(p.workers),
		BatchSize:     p.batchSize,
		EventsFed:     p.fed.Load(),
		Rounds:        p.rounds.Load(),
		ResultsMerged: p.count.Load(),
		Elapsed:       p.elapsed,
	}
	for _, w := range p.workers {
		st.Shards = append(st.Shards, w.stats.Snapshot(w.id))
	}
	return st
}

// --- concrete sharded executors ---

// NewParallelEngine builds a group-hash sharded online engine: workers
// copies of the (workload, plan) engine, each owning the groups that
// hash to it. An ungrouped workload aggregates all events under a
// single group regardless of their keys, so it cannot shard by key:
// workers is clamped to 1 (the constructor still works, it just cannot
// scale — use the sequential Engine instead).
func NewParallelEngine(w query.Workload, plan core.Plan, workers int, opts Options) (*Parallel, error) {
	if err := validateUniform(w); err != nil {
		return nil, err
	}
	if err := plan.Validate(w); err != nil {
		return nil, err
	}
	if !w[0].GroupBy {
		workers = 1
	}
	win := w[0].Window
	name := "A-Seq-parallel"
	if len(plan) > 0 {
		name = "Sharon-parallel"
	}
	return NewParallel(ParallelConfig{
		Workers: workers,
		Opts:    opts,
		Name:    name,
		WinEnd:  func(r Result) int64 { return win.End(r.Win) },
		NewShard: func(_ int, sink func(Result)) (ShardTarget, error) {
			return NewEngine(w, plan, Options{EmitEmpty: opts.EmitEmpty, OnResult: sink})
		},
	})
}

// segmentShard is one worker's slice of a partitioned workload: the
// segment engines assigned to it, all fed the full broadcast stream.
type segmentShard struct {
	engines []*Engine
}

func (s *segmentShard) Process(e event.Event) error {
	for _, en := range s.engines {
		if err := en.Process(e); err != nil {
			return err
		}
	}
	return nil
}

func (s *segmentShard) AdvanceWatermark(t int64) {
	for _, en := range s.engines {
		en.AdvanceWatermark(t)
	}
}

func (s *segmentShard) Flush() error {
	for _, en := range s.engines {
		if err := en.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func (s *segmentShard) PeakLiveStates() int64 {
	var n int64
	for _, en := range s.engines {
		n += en.PeakLiveStates()
	}
	return n
}

// NewParallelPartitioned builds a segment-sharded partitioned executor
// from pre-planned segments (PlanSegments): the workload's uniform
// segments (paper §7.2) are distributed round-robin across at most
// workers worker goroutines and fed the full stream by broadcast.
func NewParallelPartitioned(specs []SegmentSpec, workers int, opts Options) (*Parallel, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("exec: no segments")
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	qwin := make(map[int]query.Window)
	for _, spec := range specs {
		for _, q := range spec.Workload {
			qwin[q.ID] = q.Window
		}
	}
	return NewParallel(ParallelConfig{
		Workers:   workers,
		Opts:      opts,
		Broadcast: true,
		Name:      "Sharon-partitioned-parallel",
		WinEnd:    func(r Result) int64 { return qwin[r.Query].End(r.Win) },
		NewShard: func(shard int, sink func(Result)) (ShardTarget, error) {
			sh := &segmentShard{}
			for j := shard; j < len(specs); j += workers {
				en, err := NewEngine(specs[j].Workload, specs[j].Plan, Options{
					EmitEmpty: opts.EmitEmpty,
					OnResult:  sink,
				})
				if err != nil {
					return nil, err
				}
				sh.engines = append(sh.engines, en)
			}
			return sh, nil
		},
	})
}

// NewParallelDynamic builds a group-hash sharded dynamic executor: each
// shard runs its own §7.4 Dynamic instance over its groups, measuring
// its own rates and migrating independently (results are plan-invariant,
// so per-shard migration points do not affect output). With
// DynamicConfig.Adaptive set, each shard carries its own burst detector
// over its groups' arrival rates, so share-vs-split decisions are made
// per group subset — a burst confined to one shard's groups switches
// only that shard to the shared plan. Initial rates are scaled to the
// per-shard share so drift thresholds line up with what a shard actually
// observes. It returns the shard Dynamics for introspection (plan,
// migration and transition counts); read them only after Flush.
func NewParallelDynamic(w query.Workload, rates core.Rates, workers int, cfg DynamicConfig) (*Parallel, []*Dynamic, error) {
	if err := validateUniform(w); err != nil {
		return nil, nil, err
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	// An ungrouped workload aggregates across all keys and cannot shard
	// by key hash (see NewParallelEngine).
	if !w[0].GroupBy {
		workers = 1
	}
	win := w[0].Window
	shardRates := make(core.Rates, len(rates))
	for t, v := range rates {
		shardRates[t] = v / float64(workers)
	}
	var migrateMu sync.Mutex
	dyns := make([]*Dynamic, workers)
	p, err := NewParallel(ParallelConfig{
		Workers: workers,
		Opts:    cfg.Options,
		Name:    "Sharon-dynamic-parallel",
		WinEnd:  func(r Result) int64 { return win.End(r.Win) },
		NewShard: func(shard int, sink func(Result)) (ShardTarget, error) {
			c := cfg
			c.Options = Options{EmitEmpty: cfg.EmitEmpty, OnResult: sink}
			if cfg.OnMigrate != nil {
				c.OnMigrate = func(at int64, old, new core.Plan) {
					migrateMu.Lock()
					defer migrateMu.Unlock()
					cfg.OnMigrate(at, old, new)
				}
			}
			if cfg.OnDecision != nil {
				// Shards decide concurrently; serialize the callback the
				// same way OnMigrate is.
				c.OnDecision = func(at int64, state BurstState, plan core.Plan) {
					migrateMu.Lock()
					defer migrateMu.Unlock()
					cfg.OnDecision(at, state, plan)
				}
			}
			d, err := NewDynamic(w, shardRates, c)
			if err != nil {
				return nil, err
			}
			dyns[shard] = d
			return d, nil
		},
	})
	if err != nil {
		return nil, nil, err
	}
	return p, dyns, nil
}
