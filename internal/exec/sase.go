package exec

import (
	"fmt"

	"github.com/sharon-project/sharon/internal/agg"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// SASE is an NFA-based non-shared baseline in the style of SASE/Cayuga
// (paper §1, §9 [4, 29]): each query is an automaton whose partial runs
// are extended incrementally as events arrive, under skip-till-any-match
// semantics (every combination of events forms its own run — the
// semantics of Definition 1). Unlike TwoStep, which enumerates sequences
// when a window closes, SASE materializes every *partial* run as the
// stream flows; like all sequence-constructing approaches, its run count
// grows polynomially with the events per window, so it carries a live-run
// cap and reports DNF beyond it.
//
// The automaton view is also the frame of reference for the shared
// engine's SHARP-style dead-suffix prune (see aggNode.headOnly in
// engine.go): a chain stage's segment aggregator is the collapsed form
// of this NFA restricted to the segment, and a START record none of the
// downstream combiners snapshotted corresponds to a run no open window
// can carry to an accepting state — the engine recycles such records at
// birth instead of extending them.
type SASE struct {
	w     query.Workload
	win   query.Window
	group bool
	preds []query.Predicate
	resultSink

	groups  map[event.GroupKey]*saseGroup
	started bool
	last    int64
	next    int64
	maxWin  int64

	// Cap bounds the live partial runs per (group, query).
	Cap int64
	// Spawned counts every run ever created (the construction effort).
	Spawned  int64
	liveRuns int64
	peakLive int64
}

type saseGroup struct {
	perQuery []*saseMachine
}

// saseMachine is one query's automaton state for one group.
type saseMachine struct {
	q    *query.Query
	runs []saseRun // live partial runs, in start-time order
	// winTotals accumulates completed runs per window.
	winTotals map[int64]agg.State
}

// saseRun is a partial match: its start time, the next pattern position to
// match, and the aggregate of the consumed events.
type saseRun struct {
	start int64
	pos   int
	state agg.State
}

// NewSASE builds the NFA-style baseline executor.
func NewSASE(w query.Workload, opts Options) (*SASE, error) {
	if err := validateUniform(w); err != nil {
		return nil, err
	}
	return &SASE{
		w: w, win: w[0].Window, group: w[0].GroupBy, preds: w[0].Where,
		resultSink: resultSink{opts: opts},
		groups:     make(map[event.GroupKey]*saseGroup),
		Cap:        DefaultSequenceCap,
		next:       -1, maxWin: -1,
	}, nil
}

// Name identifies the strategy.
func (s *SASE) Name() string { return "SASE" }

// Process extends every live run of every query with the event.
func (s *SASE) Process(e event.Event) error {
	if s.started && e.Time <= s.last {
		return fmt.Errorf("exec: out-of-order event at t=%d", e.Time)
	}
	if !s.started {
		s.started = true
		s.next = s.win.FirstContaining(e.Time)
	}
	s.last = e.Time
	s.closeUpTo(e.Time)
	if lastWin := s.win.LastContaining(e.Time); lastWin > s.maxWin {
		s.maxWin = lastWin
	}
	if !accepts(s.preds, e) {
		return nil
	}
	key := event.GroupKey(0)
	if s.group {
		key = e.Key
	}
	g, ok := s.groups[key]
	if !ok {
		g = &saseGroup{}
		for _, q := range s.w {
			g.perQuery = append(g.perQuery, &saseMachine{q: q, winTotals: make(map[int64]agg.State)})
		}
		s.groups[key] = g
	}
	for _, m := range g.perQuery {
		if err := s.step(m, e); err != nil {
			return err
		}
	}
	return nil
}

// step implements skip-till-any-match run branching for one machine.
func (s *SASE) step(m *saseMachine, e event.Event) error {
	pat := m.q.Pattern
	target := event.NoType
	if m.q.Agg.Kind != query.CountStar {
		target = m.q.Agg.Target
	}
	minStart := s.win.Start(s.next)

	// Extend existing runs. Branching keeps the original run (the event
	// may be skipped), so a match appends a new advanced run.
	live := m.runs[:0]
	var spawned []saseRun
	for _, r := range m.runs {
		if r.start < minStart {
			s.liveRuns-- // expired: no open window can contain this run
			continue
		}
		live = append(live, r)
		if pat[r.pos] != e.Type {
			continue
		}
		nr := saseRun{start: r.start, pos: r.pos + 1, state: agg.Extend(r.state, e, e.Type == target)}
		s.Spawned++
		if nr.pos == len(pat) {
			s.complete(m, nr, e.Time)
			continue
		}
		spawned = append(spawned, nr)
		s.liveRuns++
	}
	m.runs = append(live, spawned...)

	// A matching first position starts a fresh run.
	if pat[0] == e.Type {
		s.Spawned++
		nr := saseRun{start: e.Time, pos: 1, state: agg.UnitEvent(e, e.Type == target)}
		if len(pat) == 1 {
			s.complete(m, nr, e.Time)
		} else {
			m.runs = append(m.runs, nr)
			s.liveRuns++
		}
	}

	if s.liveRuns > s.peakLive {
		s.peakLive = s.liveRuns
	}
	if int64(len(m.runs)) > s.Cap {
		return fmt.Errorf("query %s: %w", m.q.Label(), ErrCapExceeded)
	}
	return nil
}

// complete credits a finished run to every window containing it.
func (s *SASE) complete(m *saseMachine, r saseRun, end int64) {
	first, last, ok := s.win.PairIndices(r.start, end)
	if !ok {
		return
	}
	if first < s.next {
		first = s.next
	}
	for k := first; k <= last; k++ {
		cur, ok := m.winTotals[k]
		if !ok {
			cur = agg.Zero()
		}
		cur.AddInPlace(r.state)
		m.winTotals[k] = cur
	}
}

func (s *SASE) closeUpTo(t int64) {
	for s.win.End(s.next) <= t {
		win := s.next
		for key, g := range s.groups {
			for _, m := range g.perQuery {
				total, ok := m.winTotals[win]
				if ok {
					delete(m.winTotals, win)
				} else {
					total = agg.Zero()
				}
				if total.Count > 0 || s.opts.EmitEmpty {
					s.emit(Result{Query: m.q.ID, Win: win, Group: key, State: total})
				}
			}
		}
		s.next++
	}
}

// Flush closes all remaining windows.
func (s *SASE) Flush() error {
	if !s.started {
		return nil
	}
	s.closeUpTo(s.win.End(s.maxWin))
	return nil
}

// PeakLiveStates reports the peak number of live partial runs — the
// memory cost of incremental sequence construction.
func (s *SASE) PeakLiveStates() int64 { return s.peakLive }
