package exec

import (
	"testing"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// hotPathRig is a steady-state engine feed: one engine built up front, a
// deterministic cyclic stream, and a monotone clock, so measurements see
// only the per-event processing path (no construction, no group warm-up).
type hotPathRig struct {
	en    *Engine
	types [4]event.Type
	clock int64
	i     int64
}

// newHotPathRig builds a three-query workload (one shared segment, one
// fully private query) over a 13-group stream. The group count is coprime
// to the 4-type cycle so every group sees every type: each event extends
// live START records, every fourth event per group starts new records,
// and windows accumulate completions — the full per-event path.
func newHotPathRig(tb testing.TB) *hotPathRig {
	tb.Helper()
	f := newFixture()
	const winLen, slide = 1024, 256
	w := query.Workload{
		f.query(0, "ABCD", winLen, slide),
		f.query(1, "CD", winLen, slide),
		f.query(2, "AB", winLen, slide),
	}
	for _, q := range w {
		q.GroupBy = true
	}
	plan := core.Plan{core.NewCandidate(f.pat("CD"), []int{0, 1})}
	en, err := NewEngine(w, plan, Options{})
	if err != nil {
		tb.Fatal(err)
	}
	r := &hotPathRig{en: en, clock: 1}
	for i, c := range []byte("ABCD") {
		r.types[i] = f.ids[c]
	}
	return r
}

// feed pushes n further events through the engine.
func (r *hotPathRig) feed(tb testing.TB, n int) {
	tb.Helper()
	for k := 0; k < n; k++ {
		e := event.Event{
			Time: r.clock,
			Type: r.types[r.i%4],
			Key:  event.GroupKey(r.i % 13),
			Val:  float64(r.i%7) + 1,
		}
		r.clock++
		r.i++
		if err := r.en.Process(e); err != nil {
			tb.Fatal(err)
		}
	}
}

// hotPathWarmup is enough events for every group's aggregators, rings,
// and pools to reach steady state (several full windows per group).
const hotPathWarmup = 40000

// BenchmarkHotPathProcess measures the per-event cost of the shared online
// engine in steady state: ns/event and allocs/event with construction and
// warm-up excluded. This is the number the window-ring + pooling design is
// accountable to (see README "Performance" and BENCH_hotpath.json).
func BenchmarkHotPathProcess(b *testing.B) {
	r := newHotPathRig(b)
	r.feed(b, hotPathWarmup)
	b.ReportAllocs()
	b.ResetTimer()
	r.feed(b, b.N)
}

// hotPathAllocsPerEvent measures steady-state allocations per event via
// testing.AllocsPerRun over chunks of 2000 events.
func hotPathAllocsPerEvent(tb testing.TB) float64 {
	r := newHotPathRig(tb)
	r.feed(tb, hotPathWarmup)
	const chunk = 2000
	return testing.AllocsPerRun(10, func() { r.feed(tb, chunk) }) / chunk
}

// maxHotPathAllocsPerEvent is the regression budget for the zero-allocation
// hot path: the window-ring + pooled engine sustains ~0 allocs/event in
// steady state (slice-growth amortization and map resizes round to well
// under 0.01/event); the pre-ring engine sat at 1.80 allocs/event on this
// rig, so any reintroduced per-event allocation trips this immediately.
const maxHotPathAllocsPerEvent = 0.05

// TestHotPathAllocs makes per-event allocation regressions fail `go test`,
// not just benchmarks.
func TestHotPathAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement needs the full warm-up")
	}
	got := hotPathAllocsPerEvent(t)
	t.Logf("steady-state allocs/event = %.4f", got)
	if got > maxHotPathAllocsPerEvent {
		t.Fatalf("steady-state allocs/event = %.4f, budget %.2f", got, maxHotPathAllocsPerEvent)
	}
}

// BenchmarkHotPathAllocs is the same assertion in benchmark form so
// `-bench=HotPath` smoke runs (CI) check it too, and reports the measured
// value as a benchmark metric.
func BenchmarkHotPathAllocs(b *testing.B) {
	got := hotPathAllocsPerEvent(b)
	b.ReportMetric(got, "allocs/event")
	b.ReportMetric(0, "ns/op")
	if got > maxHotPathAllocsPerEvent {
		b.Fatalf("steady-state allocs/event = %.4f, budget %.2f", got, maxHotPathAllocsPerEvent)
	}
}
