package exec

import (
	"fmt"
	"time"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// DynamicConfig configures the §7.4 dynamic-workload executor.
type DynamicConfig struct {
	Options
	// CheckEvery is the interval, in ticks, between rate-drift checks
	// (default: one window slide).
	CheckEvery int64
	// DriftThreshold is the relative per-type rate change that triggers
	// re-optimization (default 0.5, i.e. ±50%).
	DriftThreshold float64
	// OptimizerBudget bounds each re-optimization (default 2s).
	OptimizerBudget time.Duration
	// OnMigrate, if set, is called when a new plan is installed.
	OnMigrate func(at int64, old, new core.Plan)

	// Adaptive switches the executor from drift-triggered re-optimization
	// to per-burst share-vs-split decisions: a burst detector classifies
	// the total arrival rate each check interval, confirmed bursts
	// install the shared plan (optimized for the measured burst rates),
	// and confirmed valleys split back to the non-shared per-query plan.
	// Plan hand-offs reuse the window-boundary migration protocol, so
	// output stays byte-identical to a static engine either way.
	Adaptive bool
	// Burst tunes the detector (zero values select defaults).
	Burst BurstConfig
	// OnDecision, if set, is called after each confirmed share/split
	// transition installs its plan (share: len(plan) > 0).
	OnDecision func(at int64, state BurstState, plan core.Plan)
}

// Dynamic is the dynamic-workload executor (paper §7.4): it evaluates a
// workload under a sharing plan, monitors per-type event rates at runtime,
// re-runs the Sharon optimizer when rates drift, and migrates to the new
// plan without losing or corrupting window results.
//
// Migration protocol: when a new plan is chosen at time t, the first
// window owned by the new engine is B = the first window starting at or
// after t. Both engines consume the stream during the hand-off; the old
// engine emits only windows before B and is discarded once they have all
// closed, the new engine emits only windows from B on. Every window is
// thus computed by exactly one engine over its full extent, so results
// are identical to a static execution of the respective plans.
type Dynamic struct {
	w   query.Workload
	win query.Window
	cfg DynamicConfig
	resultSink

	current  *Engine
	draining *Engine
	// boundary is the first window index owned by current (windows below
	// it belong to draining, when present); currentFrom is current's own
	// lower bound, needed if it later becomes the draining engine.
	boundary    int64
	currentFrom int64
	plan        core.Plan
	rates       core.Rates // rates the current plan was chosen for
	// drainPlan/drainFrom describe the draining engine for checkpoints:
	// the plan it was built for and the lower bound of its window range.
	drainPlan core.Plan
	drainFrom int64

	counts    map[event.Type]float64
	countFrom int64
	nextCheck int64
	started   bool
	last      int64
	// Migrations counts installed plan changes.
	Migrations int

	// Adaptive (share-vs-split) state: the burst detector, the cached
	// shared plan with the rates it was optimized for (recomputed only
	// when rates drift past DriftThreshold, so repeated bursts reuse it),
	// and the confirmed-transition counters.
	detector    *BurstDetector
	sharedPlan  core.Plan
	sharedRates core.Rates
	sharedValid bool
	// ShareTransitions/SplitTransitions count confirmed burst→shared and
	// valley→split plan installs.
	ShareTransitions int
	SplitTransitions int
	// prunedRetired accumulates PrunedStarts of drained engines at the
	// moment they are discarded, so the executor-wide count is cumulative
	// across migrations.
	prunedRetired int64
}

// NewDynamic builds a dynamic executor with an initial plan optimized for
// the supplied rates.
func NewDynamic(w query.Workload, rates core.Rates, cfg DynamicConfig) (*Dynamic, error) {
	if err := validateUniform(w); err != nil {
		return nil, err
	}
	if cfg.DriftThreshold <= 0 {
		cfg.DriftThreshold = 0.5
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = w[0].Window.Slide
	}
	if cfg.OptimizerBudget <= 0 {
		cfg.OptimizerBudget = 2 * time.Second
	}
	d := &Dynamic{
		w: w, win: w[0].Window, cfg: cfg,
		resultSink: resultSink{opts: cfg.Options},
		counts:     make(map[event.Type]float64),
		rates:      rates,
	}
	var err error
	if cfg.Adaptive {
		// Adaptive mode starts split (the detector starts in Valley and
		// needs observed intervals before it can confirm a burst).
		d.detector = NewBurstDetector(cfg.Burst)
		d.plan = nil
	} else {
		d.plan, err = d.optimize(rates)
		if err != nil {
			return nil, err
		}
	}
	d.current, err = d.newEngine(d.plan, 0, -1)
	if err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Dynamic) optimize(rates core.Rates) (core.Plan, error) {
	res, err := core.Optimize(d.w, rates, core.OptimizerOptions{
		Strategy:     core.StrategySharon,
		Expand:       true,
		ExpandConfig: core.ExpandConfig{MaxOptionsPerCandidate: 8, MaxTotalVertices: 512},
		Budget:       d.cfg.OptimizerBudget,
	})
	if err != nil {
		return nil, err
	}
	return res.Plan, nil
}

// newEngine builds a sub-engine emitting only windows in [from, to]
// (to < 0 means unbounded above). An upper-bounded engine is a draining
// one, so the bound is also pushed into the engine itself
// (BoundEmitWindows) to skip the state and emission work past it.
func (d *Dynamic) newEngine(plan core.Plan, from, to int64) (*Engine, error) {
	en, err := NewEngine(d.w, plan, Options{
		EmitEmpty: d.cfg.EmitEmpty,
		OnResult: func(r Result) {
			if r.Win < from || (to >= 0 && r.Win > to) {
				return
			}
			d.emit(r)
		},
	})
	if err != nil {
		return nil, err
	}
	if to >= 0 {
		en.BoundEmitWindows(to)
	}
	return en, nil
}

// Name identifies the strategy.
func (d *Dynamic) Name() string { return "Sharon-dynamic" }

// Plan returns the currently installed sharing plan.
func (d *Dynamic) Plan() core.Plan { return d.plan }

// Process feeds the next event, checking for rate drift on the configured
// interval.
func (d *Dynamic) Process(e event.Event) error {
	if d.started && e.Time <= d.last {
		return fmt.Errorf("exec: out-of-order event at t=%d", e.Time)
	}
	if !d.started {
		d.started = true
		d.countFrom = e.Time
		d.nextCheck = e.Time + d.cfg.CheckEvery
	}
	d.last = e.Time

	if e.Time >= d.nextCheck {
		if err := d.maybeMigrate(e.Time); err != nil {
			return err
		}
		d.nextCheck = e.Time + d.cfg.CheckEvery
	}
	d.counts[e.Type]++

	// The draining engine runs first: it owns the windows below the
	// migration boundary, so feeding it ahead of current keeps the sink's
	// window order monotone across a plan hand-off. Its windows have all
	// closed once the watermark passes the last one's end.
	if d.draining != nil {
		if err := d.draining.Process(e); err != nil {
			return err
		}
		if e.Time >= d.win.End(d.boundary-1) {
			if err := d.draining.Flush(); err != nil {
				return err
			}
			d.retireDraining()
		}
	}
	return d.current.Process(e)
}

// maybeMigrate measures recent rates and installs a new plan when the
// situation calls for one: in adaptive mode on confirmed burst/valley
// transitions, otherwise when rates drifted beyond the threshold.
func (d *Dynamic) maybeMigrate(now int64) error {
	span := float64(now-d.countFrom) / event.TicksPerSecond
	if span <= 0 {
		return nil
	}
	var total float64
	measured := make(core.Rates, len(d.counts))
	for t, c := range d.counts {
		measured[t] = c / span
		total += c
	}
	clear(d.counts)
	d.countFrom = now
	if d.cfg.Adaptive {
		return d.adapt(now, measured, total/span)
	}
	if d.draining != nil || !drifted(d.rates, measured, d.cfg.DriftThreshold) {
		return nil
	}
	newPlan, err := d.optimize(measured)
	if err != nil {
		return err
	}
	d.rates = measured
	if samePlan(d.plan, newPlan) {
		return nil
	}
	return d.installPlan(now, newPlan)
}

// adapt runs one share-vs-split decision round: feed the interval's
// total arrival rate to the burst detector, then reconcile the installed
// plan with the debounced state — the shared plan during bursts, the
// split (per-query) plan in valleys. Reconciling against the state
// rather than acting on transition edges means a decision deferred by an
// in-flight hand-off is retried at the next check instead of lost.
func (d *Dynamic) adapt(now int64, measured core.Rates, totalRate float64) error {
	state, _ := d.detector.Observe(totalRate)
	if d.draining != nil {
		return nil // mid-hand-off; reconcile at the next check
	}
	var want core.Plan
	if state == Burst {
		// Once a shared plan is installed it is pinned for the burst's
		// duration: intervals straddling the burst edge measure blended
		// rates, and re-optimizing on that noise would churn hand-offs
		// (or even drop sharing mid-burst) for marginal plan gains.
		if len(d.plan) > 0 {
			return nil
		}
		p, err := d.sharedPlanFor(measured)
		if err != nil {
			return err
		}
		want = p
	}
	if samePlan(d.plan, want) {
		return nil
	}
	if err := d.installPlan(now, want); err != nil {
		return err
	}
	if len(want) > 0 {
		d.ShareTransitions++
	} else {
		d.SplitTransitions++
	}
	if d.cfg.OnDecision != nil {
		d.cfg.OnDecision(now, state, want)
	}
	return nil
}

// sharedPlanFor returns the plan bursts share under, re-optimizing only
// when the measured rates drifted past DriftThreshold from the rates the
// cached plan was built for — repeated bursts then reuse the cache
// instead of paying the optimizer per transition.
func (d *Dynamic) sharedPlanFor(measured core.Rates) (core.Plan, error) {
	if d.sharedValid && !drifted(d.sharedRates, measured, d.cfg.DriftThreshold) {
		return d.sharedPlan, nil
	}
	p, err := d.optimize(measured)
	if err != nil {
		return nil, err
	}
	d.sharedPlan, d.sharedRates, d.sharedValid = p, measured, true
	return p, nil
}

// installPlan hands the stream off to a fresh engine compiled for
// newPlan: the new engine owns windows starting at or after now, the old
// one drains its remaining windows below the boundary (see the migration
// protocol in the type doc).
func (d *Dynamic) installPlan(now int64, newPlan core.Plan) error {
	boundary := d.win.LastContaining(now) + 1
	next, err := d.newEngine(newPlan, boundary, -1)
	if err != nil {
		return err
	}
	old := d.current
	// Narrow the old engine to its remaining windows [its own lower
	// bound, boundary-1]: swap the OnResult filter for correctness, and
	// bound the engine itself so the drain skips state and emission work
	// for windows it no longer owns. No record or snapshot already held
	// can be beyond the bound — every event seen so far lies in windows
	// at or before LastContaining(now) = boundary-1 — so the bound takes
	// effect purely going forward.
	old.opts.OnResult = boundedForward(d, d.currentFrom, boundary-1)
	old.BoundEmitWindows(boundary - 1)
	d.draining = old
	d.drainPlan = d.plan
	d.drainFrom = d.currentFrom
	d.current = next
	d.boundary = boundary
	d.currentFrom = boundary
	d.Migrations++
	if d.cfg.OnMigrate != nil {
		d.cfg.OnMigrate(now, d.plan, newPlan)
	}
	d.plan = newPlan
	return nil
}

// BurstState reports the detector's current debounced state (Valley when
// the executor is not adaptive).
func (d *Dynamic) BurstState() BurstState {
	if d.detector == nil {
		return Valley
	}
	return d.detector.State()
}

// PrunedStarts reports the dead-suffix prune count summed over the live
// engines plus all retired ones (see Engine.PrunedStarts).
func (d *Dynamic) PrunedStarts() int64 {
	n := d.prunedRetired + d.current.PrunedStarts()
	if d.draining != nil {
		n += d.draining.PrunedStarts()
	}
	return n
}

func boundedForward(d *Dynamic, from, to int64) func(Result) {
	return func(r Result) {
		if r.Win < from || r.Win > to {
			return
		}
		d.emit(r)
	}
}

// drifted reports whether any type's rate changed by more than threshold
// relative to the old rates (new types count as drift).
func drifted(old, new core.Rates, threshold float64) bool {
	for t, n := range new {
		o := old[t]
		if o == 0 {
			if n > 0 {
				return true
			}
			continue
		}
		if diff := (n - o) / o; diff > threshold || diff < -threshold {
			return true
		}
	}
	for t, o := range old {
		if o > 0 && new[t] == 0 {
			return true
		}
	}
	return false
}

// samePlan compares plans as candidate sets.
func samePlan(a, b core.Plan) bool {
	if len(a) != len(b) {
		return false
	}
	keys := make(map[string]bool, len(a))
	for _, c := range a {
		keys[c.Key()] = true
	}
	for _, c := range b {
		if !keys[c.Key()] {
			return false
		}
	}
	return true
}

// AdvanceWatermark closes windows ending at or before t on the active
// engines without consuming an event (used by the parallel executor).
// Rate accounting is untouched: drift is measured over observed events
// only.
func (d *Dynamic) AdvanceWatermark(t int64) {
	if !d.started || t <= d.last {
		return
	}
	d.last = t
	// Draining engine first, as in Process: its windows precede current's.
	if d.draining != nil {
		d.draining.AdvanceWatermark(t)
		if t >= d.win.End(d.boundary-1) {
			// Engine.Flush never fails once events are in order.
			_ = d.draining.Flush()
			d.retireDraining()
		}
	}
	d.current.AdvanceWatermark(t)
}

// retireDraining discards the drained engine, folding its cumulative
// counters into the executor's.
func (d *Dynamic) retireDraining() {
	d.prunedRetired += d.draining.PrunedStarts()
	d.draining = nil
}

// Flush closes all remaining windows on both engines.
func (d *Dynamic) Flush() error {
	if d.draining != nil {
		if err := d.draining.Flush(); err != nil {
			return err
		}
		d.retireDraining()
	}
	return d.current.Flush()
}

// PeakLiveStates reports the combined peak of the sub-engines.
func (d *Dynamic) PeakLiveStates() int64 {
	n := d.current.PeakLiveStates()
	if d.draining != nil {
		n += d.draining.PeakLiveStates()
	}
	return n
}
