package exec

import "testing"

// transitions feeds rates and returns the sequence of confirmed states.
func transitions(t *testing.T, d *BurstDetector, rates []float64) []BurstState {
	t.Helper()
	var out []BurstState
	for _, r := range rates {
		if s, changed := d.Observe(r); changed {
			out = append(out, s)
		}
	}
	return out
}

func TestBurstDetectorEntersAndExits(t *testing.T) {
	d := NewBurstDetector(BurstConfig{Alpha: 0.3, EnterFactor: 2, ExitFactor: 1.25, Confirm: 2})
	rates := []float64{
		100, 100, 100, // prime + settle baseline at 100
		400, 400, // two confirmed burst intervals → Burst
		400, 400, // stays Burst, no repeated transition
		90, 90, // two confirmed valley intervals → Valley
		100, 100,
	}
	got := transitions(t, d, rates)
	want := []BurstState{Burst, Valley}
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestBurstDetectorNoFlapOnStraddle is the satellite hysteresis test: a
// rate oscillating across the enter threshold (but never sustaining
// Confirm consecutive intervals beyond it) must not flap the state, and
// a rate sitting inside the hysteresis band must not either.
func TestBurstDetectorNoFlapOnStraddle(t *testing.T) {
	d := NewBurstDetector(BurstConfig{Alpha: 0.1, EnterFactor: 2, ExitFactor: 1.25, Confirm: 2})
	d.Observe(100) // prime
	// Oscillate across the 2×baseline enter threshold: 210 qualifies,
	// 150 does not (and, inside the band, barely moves the baseline).
	for i := 0; i < 50; i++ {
		r := 210.0
		if i%2 == 1 {
			r = 150.0
		}
		if s, changed := d.Observe(r); changed {
			t.Fatalf("iteration %d: state flapped to %v on straddling rates", i, s)
		}
	}
	if d.State() != Valley {
		t.Fatalf("state = %v, want Valley", d.State())
	}

	// Enter a genuine burst, then straddle the exit threshold: the state
	// must hold Burst.
	if got := transitions(t, d, []float64{500, 500}); len(got) != 1 || got[0] != Burst {
		t.Fatalf("expected confirmed Burst, got %v", got)
	}
	base := d.Baseline()
	for i := 0; i < 50; i++ {
		r := 1.20 * base // below exit factor → valley observation
		if i%2 == 1 {
			r = 1.60 * base // inside the band → resets the streak
		}
		if s, changed := d.Observe(r); changed {
			t.Fatalf("iteration %d: state flapped to %v on exit straddle", i, s)
		}
	}
	if d.State() != Burst {
		t.Fatalf("state = %v, want Burst after straddling exit threshold", d.State())
	}
}

// TestBurstDetectorBaselineFrozenDuringBurst: burst-phase rates must not
// inflate the valley baseline (otherwise a long burst redefines "normal"
// and the exit threshold drifts up, bouncing the state early).
func TestBurstDetectorBaselineFrozenDuringBurst(t *testing.T) {
	d := NewBurstDetector(BurstConfig{Confirm: 1})
	d.Observe(100)
	d.Observe(100)
	base := d.Baseline()
	if s, _ := d.Observe(1000); s != Burst {
		t.Fatal("expected Burst with Confirm=1")
	}
	for i := 0; i < 20; i++ {
		d.Observe(1000)
	}
	if d.Baseline() != base {
		t.Fatalf("baseline moved during burst: %v → %v", base, d.Baseline())
	}
	if s, _ := d.Observe(100); s != Valley {
		t.Fatal("expected Valley after burst ends")
	}
}

func TestBurstConfigDefaults(t *testing.T) {
	var c BurstConfig
	c.fill()
	if c.Alpha != 0.3 || c.EnterFactor != 2.0 || c.ExitFactor != 1.25 || c.Confirm != 2 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	// A config with ExitFactor ≥ EnterFactor must be repaired to keep a
	// hysteresis band.
	c = BurstConfig{EnterFactor: 2, ExitFactor: 3}
	c.fill()
	if c.ExitFactor >= c.EnterFactor {
		t.Fatalf("no hysteresis band: %+v", c)
	}
}
