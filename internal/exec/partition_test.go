package exec

import (
	"math/rand"
	"testing"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

func TestPartitionWorkload(t *testing.T) {
	f := newFixture()
	qa := f.query(0, "AB", 10, 5)
	qb := f.query(1, "BC", 10, 5)
	qc := f.query(2, "AB", 20, 5) // different window
	qd := f.query(3, "CD", 10, 5)
	qd.GroupBy = true // different grouping
	qe := f.query(4, "AB", 10, 5)
	qe.Where = []query.Predicate{{Type: f.ids['A'], Op: query.Gt, Value: 1}} // predicates

	segs := PartitionWorkload(query.Workload{qa, qb, qc, qd, qe})
	if len(segs) != 4 {
		t.Fatalf("segments = %d, want 4", len(segs))
	}
	if len(segs[0]) != 2 || segs[0][0] != qa || segs[0][1] != qb {
		t.Errorf("segment 0 = %v", segs[0])
	}
	for _, seg := range segs {
		if err := validateUniform(seg); err != nil {
			t.Errorf("segment not uniform: %v", err)
		}
	}
}

func TestPartitionSignatureOrderInsensitive(t *testing.T) {
	f := newFixture()
	q1 := f.query(0, "AB", 10, 5)
	q1.Where = []query.Predicate{
		{Type: f.ids['A'], Op: query.Gt, Value: 1},
		{Type: f.ids['B'], Op: query.Lt, Value: 9},
	}
	q2 := f.query(1, "BC", 10, 5)
	q2.Where = []query.Predicate{
		{Type: f.ids['B'], Op: query.Lt, Value: 9},
		{Type: f.ids['A'], Op: query.Gt, Value: 1},
	}
	segs := PartitionWorkload(query.Workload{q1, q2})
	if len(segs) != 1 {
		t.Fatalf("order-permuted predicates split into %d segments", len(segs))
	}
}

// TestPartitionedMatchesPerSegmentOracle runs a mixed-window workload and
// validates every segment against the brute-force oracle.
func TestPartitionedMatchesPerSegmentOracle(t *testing.T) {
	f := newFixture()
	w := query.Workload{
		f.query(0, "AB", 12, 4),
		f.query(1, "ABC", 12, 4),
		f.query(2, "BC", 24, 6), // different window
		f.query(3, "BCD", 24, 6),
	}
	g := f.query(4, "AB", 12, 4)
	g.GroupBy = true // different grouping
	w = append(w, g)

	rng := rand.New(rand.NewSource(9))
	var stream event.Stream
	tm := int64(0)
	for i := 0; i < 300; i++ {
		tm += 1 + int64(rng.Intn(2))
		stream = append(stream, event.Event{
			Time: tm,
			Type: f.ids[[]byte("ABCD")[rng.Intn(4)]],
			Key:  event.GroupKey(rng.Intn(2)),
			Val:  float64(rng.Intn(5)),
		})
	}

	rates := core.Rates(stream.Rates())
	p, err := NewPartitioned(w, rates, Options{Collect: true}, core.OptimizerOptions{
		Strategy: core.StrategySharon, Expand: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Segments() != 3 {
		t.Fatalf("segments = %d, want 3", p.Segments())
	}
	runAll(t, p, stream)
	got := p.Results()

	var want []Result
	for _, seg := range PartitionWorkload(w) {
		oracle, err := Oracle(stream, seg)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, oracle...)
	}
	// Re-sort both the same way.
	sortResults := func(rs []Result) {
		for i := 1; i < len(rs); i++ {
			for j := i; j > 0 && lessResult(rs[j], rs[j-1]); j-- {
				rs[j], rs[j-1] = rs[j-1], rs[j]
			}
		}
	}
	sortResults(want)
	sortResults(got)
	if msg := diffResults(want, got); msg != "" {
		t.Fatal(msg)
	}
}

func TestPartitionedSharesWithinSegment(t *testing.T) {
	f := newFixture()
	w := query.Workload{
		f.query(0, "ABC", 20, 5),
		f.query(1, "ABD", 20, 5),
		f.query(2, "AB", 40, 10), // separate segment
		f.query(3, "AB", 40, 10),
	}
	rates := core.Rates{f.ids['A']: 50, f.ids['B']: 50, f.ids['C']: 5, f.ids['D']: 5}
	p, err := NewPartitioned(w, rates, Options{}, core.OptimizerOptions{Strategy: core.StrategySharon, Expand: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Segments() != 2 {
		t.Fatalf("segments = %d", p.Segments())
	}
	sharedSomewhere := false
	for i := 0; i < p.Segments(); i++ {
		_, plan := p.SegmentPlan(i)
		if len(plan) > 0 {
			sharedSomewhere = true
		}
	}
	if !sharedSomewhere {
		t.Error("no segment shares anything despite hot (A,B)")
	}
}

func TestPartitionedRejectsEmptyAndInvalid(t *testing.T) {
	if _, err := NewPartitioned(nil, nil, Options{}, core.OptimizerOptions{}); err == nil {
		t.Error("empty workload accepted")
	}
	f := newFixture()
	q := f.query(0, "AB", 10, 5)
	q.Pattern = nil
	if _, err := NewPartitioned(query.Workload{q}, nil, Options{}, core.OptimizerOptions{}); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestPartitionedOutOfOrder(t *testing.T) {
	f := newFixture()
	w := query.Workload{f.query(0, "AB", 10, 5)}
	p, err := NewPartitioned(w, nil, Options{}, core.OptimizerOptions{Strategy: core.StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	must(t, p.Process(event.Event{Time: 5, Type: f.ids['A']}))
	if err := p.Process(event.Event{Time: 5, Type: f.ids['B']}); err == nil {
		t.Error("duplicate timestamp accepted")
	}
}
