package exec

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// groupedStream generates a keyed stream over ABCD with deterministic
// pseudo-random keys, one tick apart.
func groupedStream(f *fixture, n, groups int, seed int64) event.Stream {
	rng := rand.New(rand.NewSource(seed))
	types := []byte("ABCD")
	out := make(event.Stream, n)
	for i := 0; i < n; i++ {
		out[i] = event.Event{
			Time: int64(i + 1),
			Type: f.ids[types[rng.Intn(len(types))]],
			Key:  event.GroupKey(rng.Intn(groups)),
			Val:  float64(i%7 + 1),
		}
	}
	return out
}

func groupedQuery(f *fixture, id int, pat string, win, slide int64) *query.Query {
	q := f.query(id, pat, win, slide)
	q.GroupBy = true
	return q
}

func sortedResults(rs []Result) []Result {
	out := append([]Result(nil), rs...)
	sort.Slice(out, func(i, j int) bool { return lessResult(out[i], out[j]) })
	return out
}

// TestSliceAbsorbEquivalence is the state-transfer core of the cluster
// tier at engine level: a stream split across two engines by key, one
// engine's groups sliced out at a watermark and absorbed by the other,
// which then serves the whole key space — the union of results must be
// exactly a single engine's results, with and without a sharing plan.
func TestSliceAbsorbEquivalence(t *testing.T) {
	f := newFixture()
	w := query.Workload{groupedQuery(f, 0, "ABCD", 40, 10), groupedQuery(f, 1, "CD", 40, 10)}
	plans := map[string]core.Plan{
		"aseq":   nil,
		"shared": {core.NewCandidate(f.pat("CD"), []int{0, 1})},
	}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			stream := groupedStream(f, 2000, 8, 7)
			cut := 1000
			cutWM := stream[cut-1].Time
			keep := func(k event.GroupKey) bool { return k%2 == 0 }

			ref, err := NewEngine(w, plan, Options{Collect: true})
			must(t, err)
			for _, e := range stream {
				must(t, ref.Process(e))
			}
			must(t, ref.Flush())

			// Owner A holds the even keys, owner B the odd ones.
			a, err := NewEngine(w, plan, Options{Collect: true})
			must(t, err)
			b, err := NewEngine(w, plan, Options{Collect: true})
			must(t, err)
			for _, e := range stream[:cut] {
				if keep(e.Key) {
					must(t, a.Process(e))
				} else {
					must(t, b.Process(e))
				}
			}
			// The hand-off barrier: both engines quiesced at the same
			// watermark, then B's groups move to A.
			a.AdvanceWatermark(cutWM)
			b.AdvanceWatermark(cutWM)
			slice, err := SliceGroups(b.Snapshot(), func(event.GroupKey) bool { return true })
			must(t, err)
			if len(slice.Groups) == 0 {
				t.Fatal("empty slice")
			}
			must(t, a.AbsorbSlice(slice))

			// A serves the whole key space from here.
			for _, e := range stream[cut:] {
				must(t, a.Process(e))
			}
			must(t, a.Flush())

			union := sortedResults(append(b.Results(), a.Results()...))
			want := ref.Results()
			if len(union) != len(want) {
				t.Fatalf("union has %d results, single engine %d", len(union), len(want))
			}
			for i := range want {
				if union[i] != want[i] {
					t.Fatalf("result %d differs:\n  union:  %+v\n  single: %+v", i, union[i], want[i])
				}
			}
		})
	}
}

// TestSliceGroupsParallelFlatten slices across a parallel snapshot's
// shards and absorbs into a sequential engine: the snapshot's shards
// flatten into one aligned slice regardless of the source worker count.
func TestSliceGroupsParallelFlatten(t *testing.T) {
	f := newFixture()
	w := query.Workload{groupedQuery(f, 0, "AB", 40, 10)}
	stream := groupedStream(f, 1500, 12, 11)
	cut := 700
	cutWM := stream[cut-1].Time

	var mu sync.Mutex
	var early []Result
	p, err := NewParallelEngine(w, nil, 3, Options{OnResult: func(r Result) {
		mu.Lock()
		early = append(early, r)
		mu.Unlock()
	}})
	must(t, err)
	must(t, p.FeedBatch(stream[:cut]))
	p.AdvanceWatermark(cutWM)
	must(t, p.Quiesce()) // every window at or before cutWM delivered
	snap, err := p.Snapshot()
	must(t, err)
	slice, err := SliceGroups(snap, func(event.GroupKey) bool { return true })
	must(t, err)
	p.Stop() // the open windows past cutWM move with the slice

	seq, err := NewEngine(w, nil, Options{Collect: true})
	must(t, err)
	must(t, seq.AbsorbSlice(slice))
	for _, e := range stream[cut:] {
		must(t, seq.Process(e))
	}
	must(t, seq.Flush())

	ref, err := NewEngine(w, nil, Options{Collect: true})
	must(t, err)
	for _, e := range stream {
		must(t, ref.Process(e))
	}
	must(t, ref.Flush())

	mu.Lock()
	union := sortedResults(append(early, seq.Results()...))
	mu.Unlock()
	want := ref.Results()
	if len(union) != len(want) {
		t.Fatalf("union has %d results, single engine %d", len(union), len(want))
	}
	for i, r := range want {
		if union[i] != r {
			t.Fatalf("result %d differs: %+v vs %+v", i, union[i], r)
		}
	}
}

// TestRemoveGroups checks removal: the dropped groups stop contributing
// and the live-group gauge shrinks.
func TestRemoveGroups(t *testing.T) {
	f := newFixture()
	w := query.Workload{groupedQuery(f, 0, "AB", 40, 10)}
	en, err := NewEngine(w, nil, Options{Collect: true})
	must(t, err)
	stream := groupedStream(f, 400, 6, 3)
	for _, e := range stream {
		must(t, en.Process(e))
	}
	before := en.GroupCount()
	removed := en.RemoveGroups(func(k event.GroupKey) bool { return k < 3 })
	if removed == 0 || en.GroupCount() != before-int64(removed) {
		t.Fatalf("removed %d of %d groups, %d left", removed, before, en.GroupCount())
	}
	must(t, en.Flush())
	// Windows closed before removal (ends <= 400, i.e. win <= 36)
	// legitimately include the removed groups; the flush tail (win 37+)
	// must not.
	for _, r := range en.Results() {
		if r.Win >= 37 && r.Group < 3 {
			t.Fatalf("removed group %d still emitted window %d", r.Group, r.Win)
		}
	}
}

// TestAbsorbMisaligned refuses a graft at a different stream position.
func TestAbsorbMisaligned(t *testing.T) {
	f := newFixture()
	w := query.Workload{groupedQuery(f, 0, "AB", 40, 10)}
	a, err := NewEngine(w, nil, Options{})
	must(t, err)
	b, err := NewEngine(w, nil, Options{})
	must(t, err)
	stream := groupedStream(f, 200, 4, 5)
	for _, e := range stream[:100] {
		must(t, a.Process(e))
	}
	for _, e := range stream[:150] {
		must(t, b.Process(e))
	}
	slice, err := SliceGroups(b.Snapshot(), func(event.GroupKey) bool { return true })
	must(t, err)
	if err := a.AbsorbSlice(slice); err == nil {
		t.Fatal("misaligned absorb accepted")
	}
}

// TestAbsorbDuplicateGroup refuses two owners for the same key.
func TestAbsorbDuplicateGroup(t *testing.T) {
	f := newFixture()
	w := query.Workload{groupedQuery(f, 0, "AB", 40, 10)}
	a, err := NewEngine(w, nil, Options{})
	must(t, err)
	b, err := NewEngine(w, nil, Options{})
	must(t, err)
	stream := groupedStream(f, 100, 4, 9)
	for _, e := range stream {
		must(t, a.Process(e))
		must(t, b.Process(e))
	}
	slice, err := SliceGroups(b.Snapshot(), func(event.GroupKey) bool { return true })
	must(t, err)
	if err := a.AbsorbSlice(slice); err == nil {
		t.Fatal("duplicate-group absorb accepted")
	}
}

// TestSliceGroupsUnsupportedKinds rejects non-sliceable snapshots.
func TestSliceGroupsUnsupportedKinds(t *testing.T) {
	for _, kind := range []string{KindDynamic, KindPartitioned} {
		s := &SystemSnapshot{Kind: kind}
		if _, err := SliceGroups(s, func(event.GroupKey) bool { return true }); err == nil {
			t.Fatalf("SliceGroups accepted %q snapshot", kind)
		}
	}
}
