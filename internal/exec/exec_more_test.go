package exec

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// TestResultValueKinds routes every aggregation function through the
// engine and checks the extracted answers.
func TestResultValueKinds(t *testing.T) {
	f := newFixture()
	mk := func(kind query.AggKind, target byte) *query.Query {
		q := f.query(0, "AB", 100, 100)
		q.Agg = query.AggSpec{Kind: kind}
		if kind != query.CountStar {
			q.Agg.Target = f.ids[target]
		}
		return q
	}
	// Stream: a@1(val 2), b@2(val 10), b@3(val 4).
	stream := event.Stream{
		{Time: 1, Type: f.ids['A'], Val: 2},
		{Time: 2, Type: f.ids['B'], Val: 10},
		{Time: 3, Type: f.ids['B'], Val: 4},
	}
	tests := []struct {
		kind   query.AggKind
		target byte
		want   float64
	}{
		{query.CountStar, 'B', 2},
		{query.CountE, 'B', 2},
		{query.Sum, 'B', 14},
		{query.Min, 'B', 4},
		{query.Max, 'B', 10},
		{query.Avg, 'B', 7},
		{query.Sum, 'A', 4}, // a participates in two sequences
		{query.CountE, 'A', 2},
	}
	for _, tt := range tests {
		q := mk(tt.kind, tt.target)
		en, err := NewEngine(query.Workload{q}, nil, Options{Collect: true})
		if err != nil {
			t.Fatal(err)
		}
		runAll(t, en, stream)
		rs := en.Results()
		if len(rs) != 1 {
			t.Fatalf("%v(%c): results = %v", tt.kind, tt.target, rs)
		}
		if got := rs[0].Value(q); got != tt.want {
			t.Errorf("%v(%c) = %v, want %v", tt.kind, tt.target, got, tt.want)
		}
	}
}

func TestResultValueNaNOnEmpty(t *testing.T) {
	f := newFixture()
	q := f.query(0, "AB", 100, 100)
	q.Agg = query.AggSpec{Kind: query.Min, Target: f.ids['B']}
	en, err := NewEngine(query.Workload{q}, nil, Options{Collect: true, EmitEmpty: true})
	if err != nil {
		t.Fatal(err)
	}
	// Only an A: no complete match; EmitEmpty emits a zero state.
	runAll(t, en, event.Stream{{Time: 1, Type: f.ids['A']}})
	rs := en.Results()
	if len(rs) == 0 {
		t.Fatal("EmitEmpty emitted nothing")
	}
	if got := rs[0].Value(q); !math.IsNaN(got) {
		t.Errorf("MIN of empty window = %v, want NaN", got)
	}
}

// TestSharedMaskingPerKind verifies target masking for every aggregation
// kind when the shared segment tracks another query's target.
func TestSharedMaskingPerKind(t *testing.T) {
	f := newFixture()
	for _, kind := range []query.AggKind{query.CountStar, query.CountE, query.Sum, query.Min, query.Max, query.Avg} {
		// q0 aggregates over D (outside shared (A,B)); q1 over B (inside).
		q0 := f.query(0, "ABD", 50, 50)
		q0.Agg = query.AggSpec{Kind: kind}
		if kind != query.CountStar {
			q0.Agg.Target = f.ids['D']
		}
		q1 := f.query(1, "ABC", 50, 50)
		q1.Agg = query.AggSpec{Kind: query.Sum, Target: f.ids['B']}
		w := query.Workload{q0, q1}
		plan := core.Plan{core.NewCandidate(f.pat("AB"), []int{0, 1})}
		en, err := NewEngine(w, plan, Options{Collect: true})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		stream := event.Stream{
			{Time: 1, Type: f.ids['A'], Val: 1},
			{Time: 2, Type: f.ids['B'], Val: 5},
			{Time: 3, Type: f.ids['C'], Val: 7},
			{Time: 4, Type: f.ids['D'], Val: 9},
		}
		runAll(t, en, stream)
		oracle, err := Oracle(stream, w)
		if err != nil {
			t.Fatal(err)
		}
		if msg := diffResults(oracle, en.Results()); msg != "" {
			t.Errorf("kind %v: %s", kind, msg)
		}
	}
}

func TestEngineEmitEmpty(t *testing.T) {
	f := newFixture()
	w := query.Workload{f.query(0, "AB", 4, 2)}
	en, err := NewEngine(w, nil, Options{Collect: true, EmitEmpty: true})
	if err != nil {
		t.Fatal(err)
	}
	// Events only at the start; later windows are empty but emitted.
	runAll(t, en, event.Stream{
		{Time: 1, Type: f.ids['A']},
		{Time: 2, Type: f.ids['B']},
		{Time: 11, Type: f.ids['A']},
	})
	rs := en.Results()
	var empty int
	for _, r := range rs {
		if r.State.Count == 0 {
			empty++
		}
	}
	if empty == 0 {
		t.Errorf("no empty windows emitted: %v", rs)
	}
}

func TestResultsSorted(t *testing.T) {
	f := newFixture()
	q0 := f.query(0, "AB", 10, 5)
	q0.GroupBy = true
	q1 := f.query(1, "BA", 10, 5)
	q1.GroupBy = true
	w := query.Workload{q0, q1}
	en, err := NewEngine(w, nil, Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, en, event.Stream{
		{Time: 1, Type: f.ids['A'], Key: 2},
		{Time: 2, Type: f.ids['B'], Key: 2},
		{Time: 3, Type: f.ids['B'], Key: 1},
		{Time: 4, Type: f.ids['A'], Key: 1},
	})
	rs := en.Results()
	for i := 1; i < len(rs); i++ {
		if lessResult(rs[i], rs[i-1]) {
			t.Fatalf("results not sorted at %d: %v", i, rs)
		}
	}
}

func TestTwoStepStats(t *testing.T) {
	f := newFixture()
	w := query.Workload{f.query(0, "AB", 100, 100)}
	ts, err := NewTwoStep(w, Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, ts, f.stream("AABB", 1))
	if ts.Constructed != 4 {
		t.Errorf("constructed = %d, want 4 sequences", ts.Constructed)
	}
	if ts.PeakLiveStates() < 4 {
		t.Errorf("peak = %d", ts.PeakLiveStates())
	}
	if ts.ResultCount() != 1 {
		t.Errorf("results = %d", ts.ResultCount())
	}
}

func TestSPASSSharesConstruction(t *testing.T) {
	f := newFixture()
	// Two queries with the same full pattern: SPASS constructs its
	// matches once.
	w := query.Workload{f.query(0, "AB", 100, 100), f.query(1, "AB", 100, 100)}
	plan := core.Plan{core.NewCandidate(f.pat("AB"), []int{0, 1})}
	sp, err := NewSPASS(w, plan, Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, sp, f.stream("AABB", 1))
	if sp.Constructed != 4 {
		t.Errorf("constructed = %d, want 4 (shared across both queries)", sp.Constructed)
	}
	rs := sp.Results()
	if len(rs) != 2 || rs[0].State.Count != 4 || rs[1].State.Count != 4 {
		t.Errorf("results = %v", rs)
	}
}

func TestSPASSWithoutPlanFallsBackToFullPatterns(t *testing.T) {
	f := newFixture()
	w := query.Workload{f.query(0, "ABC", 100, 100), f.query(1, "BC", 100, 100)}
	sp, err := NewSPASS(w, nil, Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	stream := f.stream("ABCABC", 1)
	runAll(t, sp, stream)
	oracle, err := Oracle(stream, w)
	if err != nil {
		t.Fatal(err)
	}
	if msg := diffResults(oracle, sp.Results()); msg != "" {
		t.Fatal(msg)
	}
}

func TestFirstAfter(t *testing.T) {
	list := []Match{{Start: 1}, {Start: 3}, {Start: 3}, {Start: 7}}
	tests := []struct {
		min  int64
		want int
	}{{0, 0}, {1, 1}, {2, 1}, {3, 3}, {7, 4}, {9, 4}}
	for _, tt := range tests {
		if got := firstAfter(list, tt.min); got != tt.want {
			t.Errorf("firstAfter(%d) = %d, want %d", tt.min, got, tt.want)
		}
	}
}

func TestIndexEventsWindowBounds(t *testing.T) {
	f := newFixture()
	evs := []event.Event{
		{Time: 1, Type: f.ids['A']},
		{Time: 5, Type: f.ids['A']},
		{Time: 9, Type: f.ids['A']},
	}
	idx := indexEvents(evs, 2, 9) // half-open [2,9)
	got := idx.after(f.ids['A'], -1)
	if len(got) != 1 || got[0].Time != 5 {
		t.Errorf("window filter wrong: %v", got)
	}
}

// TestEngineWindowBoundaryExactness: a match whose span equals exactly the
// window length minus one tick is counted; one spanning the full length is
// not (half-open windows).
func TestEngineWindowBoundaryExactness(t *testing.T) {
	f := newFixture()
	w := query.Workload{f.query(0, "AB", 10, 10)}
	en, err := NewEngine(w, nil, Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	// a@0, b@9 fit window [0,10); a@10, b@19 fit [10,20); a@5, b@12 span
	// two windows and fit neither fully... b@12-a@5 crosses the boundary.
	runAll(t, en, event.Stream{
		{Time: 0, Type: f.ids['A']},
		{Time: 5, Type: f.ids['A']},
		{Time: 9, Type: f.ids['B']},
		{Time: 12, Type: f.ids['B']},
	})
	rs := en.Results()
	if len(rs) != 1 || rs[0].Win != 0 {
		t.Fatalf("results = %v", rs)
	}
	// Window 0 contains (a0,b9) and (a5,b9); the (a5,b12) pair crosses.
	if rs[0].State.Count != 2 {
		t.Errorf("window 0 count = %v, want 2", rs[0].State.Count)
	}
}

func TestValidateUniformMessages(t *testing.T) {
	f := newFixture()
	q1 := f.query(0, "AB", 10, 5)
	q2 := f.query(1, "BC", 10, 5)
	q2.Where = []query.Predicate{{Type: f.ids['B'], Op: query.Gt, Value: 1}}
	if err := validateUniform(query.Workload{q1, q2}); err == nil {
		t.Error("different predicates accepted")
	}
	q3 := f.query(1, "BC", 10, 5)
	q3.GroupBy = true
	if err := validateUniform(query.Workload{q1, q3}); err == nil {
		t.Error("different grouping accepted")
	}
	if err := validateUniform(nil); err == nil {
		t.Error("empty workload accepted")
	}
}

// TestIncompatibleSharedTargets: two queries sharing a pattern that
// contains both their (different) targets must be rejected at compile.
func TestIncompatibleSharedTargets(t *testing.T) {
	f := newFixture()
	q0 := f.query(0, "ABC", 50, 50)
	q0.Agg = query.AggSpec{Kind: query.Sum, Target: f.ids['A']}
	q1 := f.query(1, "ABD", 50, 50)
	q1.Agg = query.AggSpec{Kind: query.Sum, Target: f.ids['B']}
	w := query.Workload{q0, q1}
	plan := core.Plan{core.NewCandidate(f.pat("AB"), []int{0, 1})}
	if _, err := NewEngine(w, plan, Options{}); err == nil {
		t.Error("incompatible shared targets accepted")
	}
}

func TestOracleEmptyAndErrors(t *testing.T) {
	f := newFixture()
	w := query.Workload{f.query(0, "AB", 10, 5)}
	rs, err := Oracle(nil, w)
	if err != nil || rs != nil {
		t.Errorf("Oracle(empty) = %v, %v", rs, err)
	}
	q2 := f.query(1, "AB", 20, 5)
	if _, err := Oracle(f.stream("AB", 1), query.Workload{w[0], q2}); err == nil {
		t.Error("non-uniform workload accepted by oracle")
	}
}

// TestAggregateStateAcrossSlides: per-start monotone accumulation serves
// multiple overlapping windows correctly (regression guard for the
// windowing invariant documented in agg.Aggregator).
func TestAggregateStateAcrossSlides(t *testing.T) {
	f := newFixture()
	w := query.Workload{f.query(0, "AB", 10, 2)}
	en, err := NewEngine(w, nil, Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	stream := event.Stream{
		{Time: 4, Type: f.ids['A']},
		{Time: 6, Type: f.ids['B']},
		{Time: 13, Type: f.ids['B']},
	}
	runAll(t, en, stream)
	oracle, err := Oracle(stream, w)
	if err != nil {
		t.Fatal(err)
	}
	if msg := diffResults(oracle, en.Results()); msg != "" {
		t.Fatal(msg)
	}
}

// TestSASEMatchesOracle validates the NFA baseline against the oracle on
// random workloads and streams.
func TestSASEMatchesOracle(t *testing.T) {
	f := newFixture()
	rng := newRngForSASE()
	for it := 0; it < 60; it++ {
		w := randomWorkload(f, rng)
		stream := randomStream(f, rng, 40+rng.Intn(60))
		oracle, err := Oracle(stream, w)
		if err != nil {
			t.Fatal(err)
		}
		sa, err := NewSASE(w, Options{Collect: true})
		if err != nil {
			t.Fatal(err)
		}
		runAll(t, sa, stream)
		if msg := diffResults(oracle, sa.Results()); msg != "" {
			t.Fatalf("iter %d: SASE vs oracle: %s\n%s", it, msg, dumpWorkload(f, w))
		}
	}
}

func newRngForSASE() *rand.Rand { return rand.New(rand.NewSource(4242)) }

func TestSASECapDNF(t *testing.T) {
	f := newFixture()
	w := query.Workload{f.query(0, "AB", 1000, 1000)}
	sa, err := NewSASE(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sa.Cap = 3
	var failed bool
	for i := int64(0); i < 10; i++ {
		if err := sa.Process(event.Event{Time: i + 1, Type: f.ids['A']}); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("run cap not enforced")
	}
}

func TestSASESpawnCount(t *testing.T) {
	f := newFixture()
	w := query.Workload{f.query(0, "AB", 100, 100)}
	sa, err := NewSASE(w, Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, sa, f.stream("AABB", 1))
	// Runs spawned: a1, a2 (partial) + (a1,b3),(a2,b3),(a1,b4),(a2,b4).
	if sa.Spawned != 6 {
		t.Errorf("spawned = %d, want 6", sa.Spawned)
	}
	if sa.PeakLiveStates() != 2 {
		t.Errorf("peak live runs = %d, want 2", sa.PeakLiveStates())
	}
}

func TestEngineExplain(t *testing.T) {
	f := newFixture()
	w := query.Workload{f.query(0, "ABC", 20, 10), f.query(1, "BC", 20, 10)}
	plan := core.Plan{core.NewCandidate(f.pat("BC"), []int{0, 1})}
	en, err := NewEngine(w, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := en.Explain(f.reg)
	for _, want := range []string{"private(A)", "shared(B, C)", "q0", "q1"} {
		if !containsStr(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
