package exec

import (
	"fmt"
	"slices"

	"github.com/sharon-project/sharon/internal/event"
)

// Group slicing is the state-transfer primitive of the cluster tier:
// all per-group runtime state is independent (the same property the
// parallel executor shards by), so a subset of an engine's groups can
// be cut out of one snapshot and grafted into another engine that is at
// the same stream position. The cluster router uses it to move hash
// ranges between workers — a slice is extracted (or cut from a dead
// worker's checkpoint), shipped, caught up past the slice watermark by
// replaying the delta, and absorbed into the new owner.
//
// A slice is carried as a plain EngineSnapshot whose Groups are the
// moved subset; LastTime/NextClose/MaxWin pin the stream position the
// slice is consistent at. Engines aligned at the same watermark agree
// on all three (closeUpTo leaves nextClose at the first window ending
// after the watermark and maxWin at the last window containing it,
// regardless of where each engine's stream started), which is what
// makes absorb a pure group-graft.

// SliceGroups flattens the groups selected by keep out of a snapshot
// into one slice. Engine snapshots slice directly; parallel snapshots
// over engine shards flatten across shards (the shards agree on the
// stream position — they advance in lock-step dispatch rounds). Other
// snapshot kinds (partitioned, dynamic) do not support group slicing.
func SliceGroups(s *SystemSnapshot, keep func(event.GroupKey) bool) (*EngineSnapshot, error) {
	switch s.Kind {
	case KindEngine:
		return sliceEngine(s.Engine, keep), nil
	case KindParallel:
		ps := s.Parallel
		out := &EngineSnapshot{}
		for i, shard := range ps.Shards {
			if shard == nil {
				return nil, fmt.Errorf("exec: slice: parallel snapshot shard %d missing", i)
			}
			if shard.Kind != KindEngine {
				return nil, fmt.Errorf("exec: slice: parallel shard %d is a %q snapshot (group slicing needs engine shards)", i, shard.Kind)
			}
			es := shard.Engine
			if !es.Started {
				continue
			}
			if !out.Started {
				out.Started = true
				out.LastTime, out.NextClose, out.MaxWin = es.LastTime, es.NextClose, es.MaxWin
			} else if out.LastTime != es.LastTime || out.NextClose != es.NextClose || out.MaxWin != es.MaxWin {
				return nil, fmt.Errorf("exec: slice: parallel shards disagree on stream position (shard %d at t=%d close=%d max=%d, others at t=%d close=%d max=%d); snapshot was not taken under the quiesced barrier",
					i, es.LastTime, es.NextClose, es.MaxWin, out.LastTime, out.NextClose, out.MaxWin)
			}
			for j := range es.Groups {
				if keep(es.Groups[j].Key) {
					out.Groups = append(out.Groups, es.Groups[j])
				}
			}
		}
		slices.SortFunc(out.Groups, func(a, b GroupSnapshot) int {
			switch {
			case a.Key < b.Key:
				return -1
			case a.Key > b.Key:
				return 1
			}
			return 0
		})
		return out, nil
	default:
		return nil, fmt.Errorf("exec: group slicing is not supported for %q snapshots (cluster rebalancing requires a uniform non-dynamic workload)", s.Kind)
	}
}

func sliceEngine(es *EngineSnapshot, keep func(event.GroupKey) bool) *EngineSnapshot {
	out := &EngineSnapshot{
		Started:   es.Started,
		LastTime:  es.LastTime,
		NextClose: es.NextClose,
		MaxWin:    es.MaxWin,
	}
	for i := range es.Groups {
		if keep(es.Groups[i].Key) {
			out.Groups = append(out.Groups, es.Groups[i])
		}
	}
	return out
}

// AbsorbSlice grafts a slice's groups into the engine. A started engine
// must be at exactly the slice's stream position; an engine that has
// not seen an event yet adopts the slice's position wholesale. Group
// keys must be disjoint from the engine's (ring ownership is disjoint
// by construction; a collision means two owners held the same range and
// is refused rather than merged).
func (en *Engine) AbsorbSlice(sl *EngineSnapshot) error {
	if !sl.Started && len(sl.Groups) == 0 {
		return nil
	}
	if !en.started {
		return en.Restore(&SystemSnapshot{Kind: KindEngine, Engine: &EngineSnapshot{
			Started:   true,
			LastTime:  sl.LastTime,
			NextClose: sl.NextClose,
			MaxWin:    sl.MaxWin,
			Groups:    sl.Groups,
		}})
	}
	if en.lastTime != sl.LastTime || en.nextClose != sl.NextClose || en.maxWin != sl.MaxWin {
		return fmt.Errorf("exec: absorb misaligned: engine at (t=%d, close=%d, max=%d), slice at (t=%d, close=%d, max=%d) — absorb requires both sides quiesced at the same watermark",
			en.lastTime, en.nextClose, en.maxWin, sl.LastTime, sl.NextClose, sl.MaxWin)
	}
	for i := range sl.Groups {
		if err := en.restoreGroup(&sl.Groups[i]); err != nil {
			return err
		}
	}
	return nil
}

// RemoveGroups deletes every group whose key satisfies drop and reports
// how many were removed. Group state is per-group (aggregators, slabs,
// and freelists are owned by the group's own aggregator instances), so
// removal is a plain map delete; subsequent events for a removed key
// would rebuild it from scratch — the caller (the cluster extract path)
// re-routes those events away before removing.
func (en *Engine) RemoveGroups(drop func(event.GroupKey) bool) int {
	n := 0
	for k := range en.groups {
		if drop(k) {
			delete(en.groups, k)
			n++
		}
	}
	return n
}

// GroupCount reports the number of live per-group runtimes.
func (en *Engine) GroupCount() int64 { return int64(len(en.groups)) }

// GroupCount sums the dynamic executor's live groups (the draining
// engine mid-migration holds the same groups at older windows, so only
// the current engine is counted).
func (d *Dynamic) GroupCount() int64 { return d.current.GroupCount() }

// GroupCount sums the partitioned executor's segment engines. Segments
// evaluate disjoint query sets over the same stream, so the same group
// key counts once per segment that materialized it.
func (p *Partitioned) GroupCount() int64 {
	var n int64
	for _, seg := range p.segments {
		n += seg.engine.GroupCount()
	}
	return n
}

// GroupCount sums the shard's segment engines.
func (s *segmentShard) GroupCount() int64 {
	var n int64
	for _, en := range s.engines {
		n += en.GroupCount()
	}
	return n
}

// groupCounter is the optional group-occupancy contract of a
// ShardTarget; all concrete targets implement it.
type groupCounter interface{ GroupCount() int64 }

// groupAbsorber/groupRemover are the optional cluster-rebalance
// contracts of a ShardTarget. Only Engine implements them: dynamic and
// segment shards cannot host group grafts (see SliceGroups).
type groupAbsorber interface {
	AbsorbSlice(*EngineSnapshot) error
}
type groupRemover interface {
	RemoveGroups(func(event.GroupKey) bool) int
}
