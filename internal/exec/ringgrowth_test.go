package exec

import (
	"math/rand"
	"testing"

	"github.com/sharon-project/sharon/internal/agg"
	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// TestRingGrowthHighOverlapWindow pins the lazy window-ring growth: a
// high-overlap window (Length/Slide = 100, far beyond the rings' initial
// 16 slots) forces both the aggregator's total ring and the chain stages'
// snapshot rings through several geometric growth steps mid-stream, and
// the shared engine must keep producing exactly the non-shared engine's
// results throughout (both orders of growth-then-append and
// append-then-grow occur as the live span widens event by event).
func TestRingGrowthHighOverlapWindow(t *testing.T) {
	f := newFixture()
	win := int64(6400)
	slide := int64(64) // MaxConcurrent = 101 ≫ initial ring capacity
	w := query.Workload{
		f.query(0, "ABCD", win, slide),
		f.query(1, "CD", win, slide),
	}
	plan := core.Plan{core.NewCandidate(f.pat("CD"), []int{0, 1})}

	rng := rand.New(rand.NewSource(17))
	letters := []byte("ABCD")
	var stream event.Stream
	tm := int64(1)
	for i := 0; i < 4000; i++ {
		tm += 1 + int64(rng.Intn(7))
		stream = append(stream, f.stream(string(letters[rng.Intn(4)]), tm)[0:1]...)
	}

	shared, err := NewEngine(w, plan, Options{Collect: true, EmitEmpty: true})
	must(t, err)
	nonShared, err := NewEngine(w, nil, Options{Collect: true, EmitEmpty: true})
	must(t, err)
	runAll(t, shared, stream)
	runAll(t, nonShared, stream)

	got, want := shared.Results(), nonShared.Results()
	if len(got) != len(want) || len(got) == 0 {
		t.Fatalf("result counts differ: shared %d, non-shared %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Query != want[i].Query || got[i].Win != want[i].Win || got[i].Group != want[i].Group {
			t.Fatalf("result %d keys differ: %+v vs %+v", i, got[i], want[i])
		}
		if !agg.ApproxEqual(got[i].State, want[i].State) {
			t.Fatalf("result %d state differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}
