package exec

import (
	"math/rand"
	"testing"
	"time"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/gen"
	"github.com/sharon-project/sharon/internal/query"
)

// runEngine builds an engine with the given options, runs the stream, and
// returns (engine, results).
func runEngine(t *testing.T, w query.Workload, plan core.Plan, stream event.Stream, opts Options) (*Engine, []Result) {
	t.Helper()
	opts.Collect = true
	en, err := NewEngine(w, plan, opts)
	must(t, err)
	runAll(t, en, stream)
	return en, en.Results()
}

// TestStateReductionOracleRandomized is the oracle for the SHARP-style
// state reduction: over randomized workloads, plans, and streams, the
// reduced engine (dead-suffix prune + node/stage merging, the default)
// must produce exactly the results of an engine with
// DisableStateReduction — reduction only removes state that can never
// reach an emitted window total. The prune must also actually fire
// somewhere across the sweep, so the equivalence is not vacuous.
func TestStateReductionOracleRandomized(t *testing.T) {
	var prunedTotal, mergedTotal int64
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		wcfg := gen.WorkloadConfig{
			NumQueries: 3 + rng.Intn(4), PatternLen: 4 + rng.Intn(3),
			SharedChunks: 2 + rng.Intn(2), ChunkLen: 2, ChunksPerQuery: 1 + rng.Intn(2),
			FillerPool: 6,
			Window:     int64(1000 * (2 + rng.Intn(3))), Slide: 1000,
			GroupBy: rng.Intn(2) == 0, Seed: seed,
		}
		w, types := gen.GenWorkload(event.NewRegistry(), wcfg)
		keys := 1 + rng.Intn(8)
		stream := gen.StreamForWorkload(types, gen.NumHotTypes(wcfg), 4000, keys, 300+float64(rng.Intn(500)), 3, seed)
		res, err := core.Optimize(w, core.Rates(stream.Rates()), core.OptimizerOptions{
			Strategy: core.StrategySharon, Expand: true, Budget: 2 * time.Second,
		})
		must(t, err)

		for _, plan := range []core.Plan{res.Plan, nil} {
			reduced, got := runEngine(t, w, plan, stream, Options{})
			_, want := runEngine(t, w, plan, stream, Options{DisableStateReduction: true})
			if diff := diffResults(want, got); diff != "" {
				t.Fatalf("seed %d (plan size %d): reduced engine diverges: %s", seed, len(plan), diff)
			}
			prunedTotal += reduced.PrunedStarts()
			mergedTotal += reduced.MergedNodes() + reduced.MergedStages()
		}
	}
	// Dense gen streams keep every prefix count above zero, so the merge
	// half dominates here; prune firing is asserted on rare-prefix
	// streams in TestDeadSuffixPruneRandomized.
	if mergedTotal == 0 {
		t.Fatal("node/stage merging never fired across the randomized sweep")
	}
	t.Logf("pruned %d starts, merged %d nodes+stages across sweep", prunedTotal, mergedTotal)
}

// TestDeadSuffixPruneRandomized is the oracle for the prune half on the
// streams it is built for: the shared (C,D) suffix is hot while the
// private (A,B)/(F,B) prefixes are rare, so many C starts arrive with
// zero prefix matches in every open window and die at birth. Equivalence
// against the unreduced engine must hold while the prune fires heavily.
func TestDeadSuffixPruneRandomized(t *testing.T) {
	f := newFixture()
	w := query.Workload{
		f.query(0, "ABCD", 64, 16),
		f.query(1, "FBCD", 64, 16),
	}
	plan := core.Plan{core.NewCandidate(f.pat("CD"), []int{0, 1})}
	types := []event.Type{f.ids['A'], f.ids['F'], f.ids['B'], f.ids['C'], f.ids['D']}
	weights := []float64{0.03, 0.03, 0.2, 1, 1}

	var prunedTotal int64
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cum := make([]float64, len(weights))
		sum := 0.0
		for i, wt := range weights {
			sum += wt
			cum[i] = sum
		}
		stream := make(event.Stream, 3000)
		for i := range stream {
			x := rng.Float64() * sum
			ti := 0
			for cum[ti] < x {
				ti++
			}
			stream[i] = event.Event{Time: int64(i + 1), Type: types[ti], Val: 1}
		}

		reduced, got := runEngine(t, w, plan, stream, Options{})
		_, want := runEngine(t, w, plan, stream, Options{DisableStateReduction: true})
		if diff := diffResults(want, got); diff != "" {
			t.Fatalf("seed %d: pruned engine diverges: %s", seed, diff)
		}
		prunedTotal += reduced.PrunedStarts()
	}
	if prunedTotal == 0 {
		t.Fatal("dead-suffix prune never fired on rare-prefix streams")
	}
	t.Logf("pruned %d starts across seeds", prunedTotal)
}

// TestStateReductionMergesDuplicateChains checks the merge half of the
// reduction on a workload where it provably applies: two queries with the
// same pattern, window, and aggregate sharing a (C,D) candidate must
// collapse to one private (A,B) node and one set of stages, and a third
// distinct query must not be merged into them. Results must match the
// unreduced engine on both queries.
func TestStateReductionMergesDuplicateChains(t *testing.T) {
	f := newFixture()
	// Query 2 computes (C,D) privately: were it in the candidate, its
	// stage-0 listener would read the shared node's totals and disable
	// the head-only prune.
	w := query.Workload{
		f.query(0, "ABCD", 100, 50),
		f.query(1, "ABCD", 100, 50), // exact duplicate: chains merge end-to-end
		f.query(2, "CD", 100, 50),
	}
	plan := core.Plan{core.NewCandidate(f.pat("CD"), []int{0, 1})}
	// Leading C/D events arrive with no (A,B) pair in any open window:
	// their START records on the head-only (C,D) node are dead at birth.
	stream := f.stream("CDCDABCDABCDCD", 1)

	reduced, got := runEngine(t, w, plan, stream, Options{})
	_, want := runEngine(t, w, plan, stream, Options{DisableStateReduction: true})
	if diff := diffResults(want, got); diff != "" {
		t.Fatalf("reduced engine diverges on duplicate chains: %s", diff)
	}
	if reduced.MergedNodes() == 0 {
		t.Error("duplicate (A,B) prefix nodes were not merged")
	}
	if reduced.MergedStages() == 0 {
		t.Error("duplicate chain stages were not merged")
	}
	if reduced.PrunedStarts() == 0 {
		t.Error("leading C starts were not pruned on the head-only shared node")
	}
	// Duplicate queries must report identical per-window counts.
	byQuery := map[int]map[int64]float64{0: {}, 1: {}}
	for _, r := range got {
		if m, ok := byQuery[r.Query]; ok {
			m[r.Win] = r.State.Count
		}
	}
	for win, c0 := range byQuery[0] {
		if c1 := byQuery[1][win]; c0 != c1 {
			t.Errorf("window %d: query 0 count %v != query 1 count %v", win, c0, c1)
		}
	}
}

// TestStateReductionSnapshotRoundTrip cuts a run over merged chains at
// several points and requires snapshot→restore→tail to reproduce the
// uninterrupted emission exactly: merged stages are serialized once under
// their owner chain and re-aliased on restore.
func TestStateReductionSnapshotRoundTrip(t *testing.T) {
	f := newFixture()
	w := query.Workload{
		f.query(0, "ABCD", 40, 10),
		f.query(1, "ABCD", 40, 10),
		f.query(2, "CD", 40, 10),
	}
	plan := core.Plan{core.NewCandidate(f.pat("CD"), []int{0, 1})}
	stream := f.stream("CDABCDABCDCDABCDABCDCDABCD", 1)

	ref := &emissionLog{}
	en, err := NewEngine(w, plan, Options{OnResult: ref.sink})
	must(t, err)
	runAll(t, en, stream)
	// Group runtimes build lazily on first event, so the merge counters
	// are only meaningful after the run.
	if en.MergedStages() == 0 {
		t.Fatal("fixture does not exercise merged stages")
	}

	for _, cut := range []int{1, len(stream) / 2, len(stream) - 1} {
		log := &emissionLog{}
		first, err := NewEngine(w, plan, Options{OnResult: log.sink})
		must(t, err)
		for _, e := range stream[:cut] {
			must(t, first.Process(e))
		}
		snap := first.Snapshot()

		second, err := NewEngine(w, plan, Options{OnResult: log.sink})
		must(t, err)
		must(t, second.Restore(snap))
		for _, e := range stream[cut:] {
			must(t, second.Process(e))
		}
		must(t, second.Flush())
		assertSameEmission(t, ref.results(), log.results(), "merged-chain restore")
	}
}
