package exec

import (
	"errors"
	"sort"

	"github.com/sharon-project/sharon/internal/agg"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// ErrCapExceeded reports that a two-step executor constructed more
// sequences than its configured cap. The paper observes that two-step
// approaches "do not terminate" beyond a few thousand events per window
// (Fig. 13); the cap turns that into a detectable condition.
var ErrCapExceeded = errors.New("exec: sequence construction cap exceeded (two-step approach does not terminate)")

// Match is one constructed event sequence, reduced to what aggregation
// needs: its endpoints and its aggregate state.
type Match struct {
	Start, End int64
	State      agg.State
}

// typeIndex indexes a window's events by type for sequence construction.
type typeIndex struct {
	byType map[event.Type][]event.Event // each slice time-ordered
}

func indexEvents(events []event.Event, lo, hi int64) typeIndex {
	idx := typeIndex{byType: make(map[event.Type][]event.Event)}
	for _, e := range events {
		if e.Time < lo || e.Time >= hi {
			continue
		}
		idx.byType[e.Type] = append(idx.byType[e.Type], e)
	}
	return idx
}

// after returns the events of type t with time strictly greater than min.
func (ti typeIndex) after(t event.Type, min int64) []event.Event {
	s := ti.byType[t]
	i := sort.Search(len(s), func(i int) bool { return s[i].Time > min })
	return s[i:]
}

// EnumerateMatches constructs every match of p among the indexed events,
// in time order, computing each match's aggregate state for the given
// target type. Every DFS node visited (event considered during
// construction) counts against *budget; when the budget drops below zero,
// ErrCapExceeded is returned. This is the "event sequence construction"
// step whose polynomial blow-up the online approaches avoid (paper §1,
// Fig. 3). The returned matches are sorted by Start time.
func EnumerateMatches(idx typeIndex, p query.Pattern, target event.Type, budget *int64) ([]Match, error) {
	var out []Match
	var dfs func(pos int, minTime int64, startTime int64, st agg.State) error
	dfs = func(pos int, minTime int64, startTime int64, st agg.State) error {
		for _, e := range idx.after(p[pos], minTime) {
			*budget--
			if *budget < 0 {
				return ErrCapExceeded
			}
			next := agg.Extend(st, e, e.Type == target)
			s := startTime
			if pos == 0 {
				s = e.Time
			}
			if pos == len(p)-1 {
				out = append(out, Match{Start: s, End: e.Time, State: next})
				continue
			}
			if err := dfs(pos+1, e.Time, s, next); err != nil {
				return err
			}
		}
		return nil
	}
	if err := dfs(0, -1, 0, agg.UnitEmpty()); err != nil {
		return nil, err
	}
	return out, nil
}

// firstAfter returns the index of the first match in the Start-sorted list
// with Start > min.
func firstAfter(list []Match, min int64) int {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid].Start > min {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// EnumerateWindowState computes a query's aggregate for the events inside
// [lo, hi) by brute force: construct all sequences, then fold. It is the
// oracle the property tests compare every executor against.
func EnumerateWindowState(events []event.Event, q *query.Query, lo, hi int64) (agg.State, error) {
	var filtered []event.Event
	for _, e := range events {
		if q.Accepts(e) {
			filtered = append(filtered, e)
		}
	}
	idx := indexEvents(filtered, lo, hi)
	budget := int64(1) << 40
	target := event.NoType
	if q.Agg.Kind != query.CountStar {
		target = q.Agg.Target
	}
	matches, err := EnumerateMatches(idx, q.Pattern, target, &budget)
	if err != nil {
		return agg.Zero(), err
	}
	total := agg.Zero()
	for _, m := range matches {
		total.AddInPlace(m.State)
	}
	return total, nil
}

// Oracle computes every (query, window, group) result for a finite stream
// by brute force. Only windows overlapping the stream's time span are
// produced, and only non-empty results are returned, matching the
// executors' default emission.
func Oracle(stream event.Stream, w query.Workload) ([]Result, error) {
	if len(stream) == 0 {
		return nil, nil
	}
	if err := validateUniform(w); err != nil {
		return nil, err
	}
	win := w[0].Window
	groups := make(map[event.GroupKey][]event.Event)
	if w[0].GroupBy {
		for _, e := range stream {
			groups[e.Key] = append(groups[e.Key], e)
		}
	} else {
		all := make([]event.Event, len(stream))
		copy(all, stream)
		groups[0] = all
	}
	firstWin := win.FirstContaining(stream[0].Time)
	lastWin := win.LastContaining(stream[len(stream)-1].Time)
	var out []Result
	for _, q := range w {
		for k := firstWin; k <= lastWin; k++ {
			for key, evs := range groups {
				st, err := EnumerateWindowState(evs, q, win.Start(k), win.End(k))
				if err != nil {
					return nil, err
				}
				if st.Count > 0 {
					out = append(out, Result{Query: q.ID, Win: k, Group: key, State: st})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Query != out[j].Query {
			return out[i].Query < out[j].Query
		}
		if out[i].Win != out[j].Win {
			return out[i].Win < out[j].Win
		}
		return out[i].Group < out[j].Group
	})
	return out, nil
}
