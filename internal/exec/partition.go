package exec

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"strings"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// Partitioned evaluates a workload whose queries differ in windows,
// grouping, or predicates (paper §7.2): queries are partitioned into
// segments of identical (window, grouping, predicates) signatures, each
// segment is optimized and executed by its own shared online engine, and
// sharing happens within each segment. This follows the paper's
// observation that window/predicate refinement partitions the stream into
// disjoint segments to which Sharon applies orthogonally.
//
// Parallel execution: segments are mutually independent (nothing is
// shared across them), so they form the second natural sharding axis —
// NewParallelPartitioned distributes the segment engines across worker
// goroutines and broadcasts the stream, each worker evaluating only its
// own segments.
type Partitioned struct {
	resultSink
	segments []*partSegment
	// qwin maps query ID to its window for the merge ordering key.
	qwin map[int]query.Window
	// emitBuf stages the results every segment engine produced for one
	// Process/AdvanceWatermark/Flush step so they can be sorted into the
	// global (window end, query, window, group) order before reaching
	// the sink — the same order the parallel segment-sharded executor's
	// merge stage delivers, so sequential and parallel partitioned runs
	// push byte-identical sequences.
	emitBuf []Result
	started bool
	last    int64
}

type partSegment struct {
	w      query.Workload
	plan   core.Plan
	engine *Engine
}

// signature canonicalizes the uniformity-relevant clauses of a query.
func signature(q *query.Query) string {
	var b strings.Builder
	fmt.Fprintf(&b, "w=%d/%d g=%v", q.Window.Length, q.Window.Slide, q.GroupBy)
	preds := append([]query.Predicate(nil), q.Where...)
	sort.Slice(preds, func(i, j int) bool {
		if preds[i].Type != preds[j].Type {
			return preds[i].Type < preds[j].Type
		}
		if preds[i].Op != preds[j].Op {
			return preds[i].Op < preds[j].Op
		}
		return preds[i].Value < preds[j].Value
	})
	for _, p := range preds {
		fmt.Fprintf(&b, " %d%v%g", p.Type, p.Op, p.Value)
	}
	return b.String()
}

// PartitionWorkload splits a workload into maximal uniform segments,
// preserving query order within each segment. Segments are ordered by
// first appearance.
func PartitionWorkload(w query.Workload) []query.Workload {
	index := make(map[string]int)
	var out []query.Workload
	for _, q := range w {
		sig := signature(q)
		i, ok := index[sig]
		if !ok {
			i = len(out)
			index[sig] = i
			out = append(out, nil)
		}
		out[i] = append(out[i], q)
	}
	return out
}

// SegmentSpec is one uniform segment of a partitioned workload together
// with the sharing plan its optimizer run chose.
type SegmentSpec struct {
	Workload query.Workload
	Plan     core.Plan
}

// PlanSegments partitions the workload into uniform segments and runs
// the optimizer once per segment. Both the sequential Partitioned
// executor and the parallel segment-sharded executor build from these
// specs.
func PlanSegments(w query.Workload, rates core.Rates, optOpts core.OptimizerOptions) ([]SegmentSpec, error) {
	if len(w) == 0 {
		return nil, fmt.Errorf("exec: empty workload")
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	var specs []SegmentSpec
	for _, seg := range PartitionWorkload(w) {
		res, err := core.Optimize(seg, rates, optOpts)
		if err != nil {
			return nil, fmt.Errorf("exec: partition optimize: %w", err)
		}
		specs = append(specs, SegmentSpec{Workload: seg, Plan: res.Plan})
	}
	return specs, nil
}

// NewPartitioned builds a partitioned executor: one optimizer run and one
// shared engine per uniform segment. optOpts configures the per-segment
// optimizer (StrategyNone yields a partitioned A-Seq).
func NewPartitioned(w query.Workload, rates core.Rates, opts Options, optOpts core.OptimizerOptions) (*Partitioned, error) {
	specs, err := PlanSegments(w, rates, optOpts)
	if err != nil {
		return nil, err
	}
	return NewPartitionedFromSpecs(specs, opts)
}

// NewPartitionedFromSpecs builds the sequential partitioned executor
// from pre-planned segments.
func NewPartitionedFromSpecs(specs []SegmentSpec, opts Options) (*Partitioned, error) {
	p := &Partitioned{resultSink: resultSink{opts: opts}, qwin: make(map[int]query.Window)}
	for _, spec := range specs {
		engine, err := NewEngine(spec.Workload, spec.Plan, Options{
			EmitEmpty: opts.EmitEmpty,
			OnResult:  p.stage,
		})
		if err != nil {
			return nil, fmt.Errorf("exec: partition engine: %w", err)
		}
		p.segments = append(p.segments, &partSegment{w: spec.Workload, plan: spec.Plan, engine: engine})
		for _, q := range spec.Workload {
			p.qwin[q.ID] = q.Window
		}
	}
	return p, nil
}

// stage buffers one segment engine's emission for the current step.
func (p *Partitioned) stage(r Result) { p.emitBuf = append(p.emitBuf, r) }

// emitStaged sorts the step's staged results into the global (window
// end, query, window, group) order and delivers them. Window closes are
// monotone in time within each segment, and every segment observed the
// same watermark in this step, so sorting within the step yields the
// same global order the parallel merge produces across steps.
func (p *Partitioned) emitStaged() {
	if len(p.emitBuf) == 0 {
		return
	}
	slices.SortFunc(p.emitBuf, func(a, b Result) int {
		if c := cmp.Compare(p.qwin[a.Query].End(a.Win), p.qwin[b.Query].End(b.Win)); c != 0 {
			return c
		}
		return cmpResult(a, b)
	})
	for _, r := range p.emitBuf {
		p.emit(r)
	}
	p.emitBuf = p.emitBuf[:0]
}

// Name identifies the strategy.
func (p *Partitioned) Name() string { return "Sharon-partitioned" }

// Segments reports the number of uniform segments.
func (p *Partitioned) Segments() int { return len(p.segments) }

// SegmentPlan returns segment i's workload and sharing plan.
func (p *Partitioned) SegmentPlan(i int) (query.Workload, core.Plan) {
	return p.segments[i].w, p.segments[i].plan
}

// Process fans the event out to every segment engine; each engine applies
// its own segment's predicates.
func (p *Partitioned) Process(e event.Event) error {
	if p.started && e.Time <= p.last {
		return fmt.Errorf("exec: out-of-order event at t=%d", e.Time)
	}
	p.started = true
	p.last = e.Time
	for _, s := range p.segments {
		if err := s.engine.Process(e); err != nil {
			return err
		}
	}
	p.emitStaged()
	return nil
}

// AdvanceWatermark closes every window ending at or before t in every
// segment without consuming an event (see Engine.AdvanceWatermark).
func (p *Partitioned) AdvanceWatermark(t int64) {
	if !p.started || t <= p.last {
		return
	}
	p.last = t
	for _, s := range p.segments {
		s.engine.AdvanceWatermark(t)
	}
	p.emitStaged()
}

// Flush closes all windows in every segment.
func (p *Partitioned) Flush() error {
	for _, s := range p.segments {
		if err := s.engine.Flush(); err != nil {
			return err
		}
	}
	p.emitStaged()
	return nil
}

// PeakLiveStates sums the segment engines' peaks.
func (p *Partitioned) PeakLiveStates() int64 {
	var n int64
	for _, s := range p.segments {
		n += s.engine.PeakLiveStates()
	}
	return n
}
