package server

import (
	"errors"
	"io"
	"net/http"
	"time"

	sharon "github.com/sharon-project/sharon"
	"github.com/sharon-project/sharon/internal/persist"
)

// streamIdleTimeout bounds how long a streaming ingest connection may
// sit between frames before the per-frame read deadline cuts it,
// matching the http.Server idle timeout for keep-alive connections.
const streamIdleTimeout = 2 * time.Minute

// handleIngestStream serves POST /ingest/stream: one long-lived
// full-duplex request carrying many binary batch frames, each answered
// by an ack frame, so per-request HTTP overhead amortizes across the
// whole connection. The client writes the 5-byte wire header, a
// type-table frame (interned once — the per-connection dense table
// replaces the per-line map lookups of NDJSON), then batch frames;
// the server answers every batch frame with one ack:
//
//	ok       accepted into the pump queue (carries accepted/dropped counts)
//	busy     queue stayed full past the ack deadline — re-send the frame
//	draining server shutting down (terminal)
//	bad      malformed frame (terminal; nothing partial was applied)
//	oversize frame exceeds MaxBatchBytes (terminal)
//
// Type-table frames are not acked. A clean client close at a frame
// boundary ends the stream; a torn frame never reaches the engine —
// the CRC frame layer rejects it before decoding starts.
func (s *Server) handleIngestStream(w http.ResponseWriter, r *http.Request) {
	if !IsBatchContentType(r.Header.Get("Content-Type")) {
		writeErr(w, http.StatusUnsupportedMediaType, "stream ingest requires Content-Type %s", BatchContentType)
		return
	}
	if err := readWireHeader(r.Body); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil {
		writeErr(w, http.StatusInternalServerError, "full-duplex streaming unsupported: %v", err)
		return
	}
	conn := s.connID.Add(1)
	log := s.log.With("conn", conn, "remote", r.RemoteAddr)
	log.Debug("stream ingest open")
	defer log.Debug("stream ingest closed")
	w.Header().Set("Content-Type", BatchContentType)
	w.WriteHeader(http.StatusOK)
	if err := rc.Flush(); err != nil {
		return
	}

	var (
		table   []sharon.Type // local id -> interned type, built per connection
		connBuf []byte        // frame read buffer, reused across frames
		ackBuf  []byte        // ack write buffer, reused across acks
	)
	// writeAck reports whether the ack reached the connection; a false
	// return ends the stream (the client is gone).
	writeAck := func(a WireAck) bool {
		ackBuf = AppendWireAck(ackBuf[:0], a)
		// Deadline errors are deliberately ignored: not every
		// ResponseWriter supports deadlines (httptest recorders), and a
		// failed extension surfaces as a write error next.
		_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if _, err := w.Write(ackBuf); err != nil {
			return false
		}
		return rc.Flush() == nil
	}
	for {
		_ = rc.SetReadDeadline(time.Now().Add(streamIdleTimeout))
		body, buf, err := persist.ReadFrame(r.Body, s.cfg.MaxBatchBytes, connBuf)
		connBuf = buf
		if err != nil {
			switch {
			case err == io.EOF:
				// Clean end of stream at a frame boundary.
			case errors.Is(err, persist.ErrFrameTooLarge):
				s.rej413.Add(1)
				writeAck(WireAck{Status: WireAckOversize})
			default:
				// Torn or corrupted frame: nothing partial was decoded,
				// nothing reached the engine. The bad ack is best-effort —
				// on a died connection the write just fails.
				writeAck(WireAck{Status: WireAckBad})
			}
			return
		}
		if len(body) == 0 {
			writeAck(WireAck{Status: WireAckBad})
			return
		}
		switch body[0] {
		case wireFrameTypes:
			lookup := s.types.Load().(map[string]sharon.Type)
			if table, err = decodeWireTypeTable(body[1:], lookup, table); err != nil {
				writeAck(WireAck{Status: WireAckBad})
				return
			}
		case wireFrameBatch:
			if table == nil {
				writeAck(WireAck{Status: WireAckBad})
				return
			}
			if !s.streamBatch(body[1:], table, writeAck) {
				return
			}
		default:
			writeAck(WireAck{Status: WireAckBad})
			return
		}
	}
}

// streamBatch decodes and enqueues one streaming batch frame body and
// writes its ack; it reports whether the stream should continue.
func (s *Server) streamBatch(body []byte, table []sharon.Type, writeAck func(WireAck) bool) bool {
	decodeStart := time.Now()
	b := GetBatch()
	if _, err := decodeWireBatchBody(body, table, b, -1); err != nil {
		PutBatch(b)
		writeAck(WireAck{Status: WireAckBad})
		return false
	}
	s.stages.decodeStream.Record(time.Since(decodeStart).Nanoseconds())
	accepted, unknown := int64(len(b.Events)), b.Unknown
	s.droppedUnknown.Add(unknown)
	if accepted == 0 && b.Watermark < 0 {
		PutBatch(b)
		return writeAck(WireAck{Status: WireAckOK, Unknown: unknown})
	}
	msg := pumpMsg{batch: *b, recycle: b}
	deadline := time.Now().Add(s.cfg.streamAckAfter)
	for {
		// Re-stamp per attempt so queue-stage time starts at the admit
		// that actually succeeded, not at the first full-queue refusal.
		msg.admitNano = time.Now().UnixNano()
		ok, draining := s.tryEnqueue(msg)
		switch {
		case ok:
			return writeAck(WireAck{Status: WireAckOK, Accepted: accepted, Unknown: unknown})
		case draining:
			PutBatch(b)
			writeAck(WireAck{Status: WireAckDraining})
			return false
		case time.Now().After(deadline):
			// The stream's 429-equivalent: drop the batch, tell the
			// client, keep the connection — it may re-send the frame.
			s.rej429.Add(1)
			PutBatch(b)
			return writeAck(WireAck{Status: WireAckBusy})
		}
		time.Sleep(2 * time.Millisecond)
	}
}
