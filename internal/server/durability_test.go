package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/sharon-project/sharon/internal/persist"
)

// durableServer starts a server over a data directory behind an
// httptest listener.
func durableServer(t *testing.T, dir string, par int, extra func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Queries:         testQueries,
		Parallelism:     par,
		DataDir:         dir,
		CheckpointEvery: 40 * time.Millisecond, // force several mid-run checkpoints
		Fsync:           persist.FsyncAlways,
		WriteTimeout:    5 * time.Second,
		Logf:            t.Logf,
	}
	if extra != nil {
		extra(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	return s, ts
}

// waitIngested polls until the server has applied n events.
func waitIngested(t *testing.T, ts *httptest.Server, n int64) {
	t.Helper()
	waitFor(t, fmt.Sprintf("%d events ingested", n), func() bool {
		_, body := doReq(t, "GET", ts.URL+"/metrics", "")
		var st struct {
			EventsIngested int64 `json:"events_ingested"`
		}
		return json.Unmarshal([]byte(body), &st) == nil && st.EventsIngested >= n
	})
}

// waitQuiesce waits until the subscriber's frame count stops changing.
func waitQuiesce(t *testing.T, c *sseClient) {
	t.Helper()
	last, since := -1, time.Now()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if n := c.count(); n != last {
			last, since = n, time.Now()
		} else if time.Since(since) > 300*time.Millisecond {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("stream never quiesced")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func postBatches(t *testing.T, url string, raw []rawEvent, batch int) {
	t.Helper()
	for i := 0; i < len(raw); i += batch {
		j := min(i+batch, len(raw))
		if code, body := postJSON(t, url+"/ingest", ndjson(t, raw[i:j])); code != 202 {
			t.Fatalf("ingest: %d %s", code, body)
		}
	}
}

func lastSeqOf(t *testing.T, frames []string) int64 {
	t.Helper()
	if len(frames) == 0 {
		return -1
	}
	var wr struct {
		Seq int64 `json:"seq"`
	}
	if err := json.Unmarshal([]byte(frames[len(frames)-1]), &wr); err != nil {
		t.Fatal(err)
	}
	return wr.Seq
}

// TestServerRestartEquivalence is the crash-recovery contract end to
// end: run a durable server, stop feeding mid-stream, abandon it
// without drain (its on-disk state is exactly what kill -9 leaves — the
// WAL write precedes every apply), start a fresh server on the same
// directory, resume the subscription with ?after=<last received seq>,
// feed the rest. The concatenated SSE payload stream must be
// byte-identical to an uninterrupted in-process run: no lost windows,
// no duplicated windows, sequence numbers contiguous across the crash.
func TestServerRestartEquivalence(t *testing.T) {
	for _, par := range []int{1, 2} {
		t.Run(fmt.Sprintf("parallelism-%d", par), func(t *testing.T) {
			raw := randomRaw(4000, 42+int64(par))
			cut := len(raw) / 2
			finalWM := raw[len(raw)-1].Time + 4000
			want := inProcessReference(t, testQueries, raw, finalWM, par)
			if len(want) == 0 {
				t.Fatal("reference produced no results")
			}

			dir := t.TempDir()
			s1, ts1 := durableServer(t, dir, par, nil)
			sub1 := subscribeSSE(t, ts1.URL, "")
			postBatches(t, ts1.URL, raw[:cut], 333)
			waitIngested(t, ts1, int64(cut))
			waitQuiesce(t, sub1)
			got1 := sub1.snapshot()
			lastSeq := lastSeqOf(t, got1)
			// Crash: no drain, no flush, no final checkpoint. The pump
			// goroutine dies with the test; disk state is the contract.
			sub1.cancel()
			ts1.Close()
			_ = s1

			s2, ts2 := durableServer(t, dir, par, nil)
			defer ts2.Close()
			waitFor(t, "recovery", func() bool {
				code, _ := doReq(t, "GET", ts2.URL+"/healthz", "")
				return code == 200
			})
			sub2 := subscribeSSE(t, ts2.URL, fmt.Sprintf("?after=%d", lastSeq))
			postBatches(t, ts2.URL, raw[cut:], 333)
			if code, body := postJSON(t, ts2.URL+"/watermark", fmt.Sprintf(`{"watermark":%d}`, finalWM)); code != 202 {
				t.Fatalf("watermark: %d %s", code, body)
			}
			waitFor(t, "all results", func() bool { return len(got1)+sub2.count() >= len(want) })
			waitQuiesce(t, sub2)
			got := append(append([]string(nil), got1...), sub2.snapshot()...)

			if len(got) != len(want) {
				t.Fatalf("resumed stream has %d frames, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("frame %d:\n got %s\nwant %s", i, got[i], want[i])
				}
			}
			// The metrics must reflect replayed state, not a fresh boot.
			_, body := doReq(t, "GET", ts2.URL+"/metrics", "")
			var st struct {
				EventsIngested int64 `json:"events_ingested"`
				Durability     *struct {
					ReplayedBatches int64 `json:"replayed_batches"`
					WalNextSeq      int64 `json:"wal_next_seq"`
				} `json:"durability"`
			}
			if err := json.Unmarshal([]byte(body), &st); err != nil {
				t.Fatal(err)
			}
			if st.EventsIngested != int64(len(raw)) {
				t.Fatalf("events_ingested = %d across restart, want %d", st.EventsIngested, len(raw))
			}
			if st.Durability == nil || st.Durability.ReplayedBatches == 0 {
				t.Fatalf("no replayed batches reported: %s", body)
			}
			if err := s2.Drain(t.Context()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestServerDrainWritesFinalCheckpoint pins the SIGTERM semantics with
// durability on: drain checkpoints instead of flushing, so open windows
// survive to the next incarnation and are emitted exactly once, with
// their full contents.
func TestServerDrainWritesFinalCheckpoint(t *testing.T) {
	raw := randomRaw(3000, 7)
	cut := len(raw) / 2
	finalWM := raw[len(raw)-1].Time + 4000
	want := inProcessReference(t, testQueries, raw, finalWM, 1)

	dir := t.TempDir()
	s1, ts1 := durableServer(t, dir, 1, nil)
	sub1 := subscribeSSE(t, ts1.URL, "")
	postBatches(t, ts1.URL, raw[:cut], 500)
	waitIngested(t, ts1, int64(cut))
	waitQuiesce(t, sub1)
	got1 := sub1.snapshot()
	lastSeq := lastSeqOf(t, got1)
	if err := s1.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "eof", func() bool { return sub1.sawEvent("eof") })
	// Open windows were NOT flushed into the stream...
	if got := sub1.count(); got >= len(want) {
		t.Fatalf("drain flushed everything (%d frames); open windows should have been checkpointed instead", got)
	}
	// ...because they went into a final checkpoint.
	ckpts, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
	if len(ckpts) == 0 {
		t.Fatal("no checkpoint written at drain")
	}
	ts1.Close()

	s2, ts2 := durableServer(t, dir, 1, nil)
	defer ts2.Close()
	waitFor(t, "recovery", func() bool {
		code, _ := doReq(t, "GET", ts2.URL+"/healthz", "")
		return code == 200
	})
	sub2 := subscribeSSE(t, ts2.URL, fmt.Sprintf("?after=%d", lastSeq))
	postBatches(t, ts2.URL, raw[cut:], 500)
	if code, _ := postJSON(t, ts2.URL+"/watermark", fmt.Sprintf(`{"watermark":%d}`, finalWM)); code != 202 {
		t.Fatal("watermark rejected")
	}
	waitFor(t, "all results", func() bool { return len(got1)+sub2.count() >= len(want) })
	waitQuiesce(t, sub2)
	got := append(got1, sub2.snapshot()...)
	if len(got) != len(want) {
		t.Fatalf("stream across graceful restart has %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame %d differs across graceful restart", i)
		}
	}
	if err := s2.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
}

// TestServerRestartWithLiveRegistration covers workload evolution in
// the WAL: a query registered mid-stream must survive a crash (ctl
// records replay with their recorded IDs and plan).
func TestServerRestartWithLiveRegistration(t *testing.T) {
	raw := randomRaw(2000, 99)
	cut := len(raw) / 2

	dir := t.TempDir()
	s1, ts1 := durableServer(t, dir, 1, nil)
	postBatches(t, ts1.URL, raw[:cut], 250)
	waitIngested(t, ts1, int64(cut))
	code, body := doReq(t, "POST", ts1.URL+"/queries",
		`{"query":"RETURN COUNT(*) PATTERN SEQ(B, C) WHERE [k] WITHIN 4s SLIDE 1s"}`)
	if code != 200 {
		t.Fatalf("live registration: %d %s", code, body)
	}
	// More traffic after the change, then crash without drain.
	postBatches(t, ts1.URL, raw[cut:], 250)
	waitIngested(t, ts1, int64(len(raw)))
	ts1.Close()
	_ = s1

	s2, ts2 := durableServer(t, dir, 1, nil)
	defer ts2.Close()
	waitFor(t, "recovery", func() bool {
		code, _ := doReq(t, "GET", ts2.URL+"/healthz", "")
		return code == 200
	})
	_, qbody := doReq(t, "GET", ts2.URL+"/queries", "")
	if !strings.Contains(qbody, "SEQ(B, C)") {
		t.Fatalf("live-registered query lost across restart: %s", qbody)
	}
	var ql struct {
		Queries []struct {
			ID int `json:"id"`
		} `json:"queries"`
	}
	if err := json.Unmarshal([]byte(qbody), &ql); err != nil {
		t.Fatal(err)
	}
	if len(ql.Queries) != len(testQueries)+1 {
		t.Fatalf("%d queries after restart, want %d", len(ql.Queries), len(testQueries)+1)
	}
	if err := s2.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
}

// TestHealthzRecovering pins the load-balancer contract: /healthz is
// 503 "recovering" until the WAL tail has been replayed.
func TestHealthzRecovering(t *testing.T) {
	dir := t.TempDir()
	raw := randomRaw(1500, 3)
	s1, ts1 := durableServer(t, dir, 1, nil)
	postBatches(t, ts1.URL, raw, 100)
	waitIngested(t, ts1, int64(len(raw)))
	ts1.Close()
	_ = s1

	gate := make(chan struct{})
	s2, ts2 := durableServer(t, dir, 1, func(c *Config) { c.recoveryGate = gate })
	defer ts2.Close()
	code, body := doReq(t, "GET", ts2.URL+"/healthz", "")
	if code != 503 || !strings.Contains(body, "recovering") {
		t.Fatalf("healthz during recovery: %d %s", code, body)
	}
	close(gate)
	waitFor(t, "recovery to finish", func() bool {
		code, _ := doReq(t, "GET", ts2.URL+"/healthz", "")
		return code == 200
	})
	if err := s2.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
}

// TestSubscribeResumeAfter covers the ring-backed resume on a live
// server (no restart): a reconnecting subscriber picks up exactly after
// its last received seq; an aged-out cursor is refused with 410.
func TestSubscribeResumeAfter(t *testing.T) {
	raw := randomRaw(3000, 12)
	cut := len(raw) / 2
	finalWM := raw[len(raw)-1].Time + 4000
	want := inProcessReference(t, testQueries, raw, finalWM, 1)

	s, err := New(Config{Queries: testQueries, WriteTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sub1 := subscribeSSE(t, ts.URL, "")
	postBatches(t, ts.URL, raw[:cut], 200)
	waitIngested(t, ts, int64(cut))
	waitQuiesce(t, sub1)
	got1 := sub1.snapshot()
	lastSeq := lastSeqOf(t, got1)
	sub1.cancel() // subscriber drops; server keeps serving

	postBatches(t, ts.URL, raw[cut:], 200)
	if code, _ := postJSON(t, ts.URL+"/watermark", fmt.Sprintf(`{"watermark":%d}`, finalWM)); code != 202 {
		t.Fatal("watermark rejected")
	}
	sub2 := subscribeSSE(t, ts.URL, fmt.Sprintf("?after=%d", lastSeq))
	waitFor(t, "resumed results", func() bool { return len(got1)+sub2.count() >= len(want) })
	waitQuiesce(t, sub2)
	got := append(got1, sub2.snapshot()...)
	if len(got) != len(want) {
		t.Fatalf("resumed stream has %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame %d differs on ring resume", i)
		}
	}
	if err := s.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
}

// TestSubscribeResumeGap pins the refusal when the requested cursor has
// aged out of the replay ring.
func TestSubscribeResumeGap(t *testing.T) {
	raw := randomRaw(2500, 5)
	s, err := New(Config{Queries: testQueries, ReplayBuffer: 8, WriteTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	postBatches(t, ts.URL, raw, 500)
	waitIngested(t, ts, int64(len(raw)))
	waitFor(t, "emissions past the tiny ring", func() bool {
		_, body := doReq(t, "GET", ts.URL+"/metrics", "")
		var st struct {
			ResultsEmitted int64 `json:"results_emitted"`
		}
		return json.Unmarshal([]byte(body), &st) == nil && st.ResultsEmitted > 16
	})
	code, body := doReq(t, "GET", ts.URL+"/subscribe?after=0", "")
	if code != 410 {
		t.Fatalf("aged-out resume: %d %s", code, body)
	}
	// A cursor beyond everything ever emitted (a client resuming against
	// a server whose sequence restarted) must be refused too — serving
	// it would silently skip every result up to the phantom cursor.
	if code, _ := doReq(t, "GET", ts.URL+"/subscribe?after=999999999", ""); code != 410 {
		t.Fatalf("phantom cursor accepted: %d", code)
	}
	// Filtered resume shares the same gap discipline: an aged-out cursor
	// is refused with 410 whether or not the stream is narrowed.
	if code, _ := doReq(t, "GET", ts.URL+"/subscribe?after=0&query=1", ""); code != 410 {
		t.Fatalf("aged-out filtered resume: got %d, want 410", code)
	}
	if err := s.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
}

// TestRestartParallelismMismatch pins the boot-time validation: a
// checkpoint only restores into the parallelism it was taken under.
func TestRestartParallelismMismatch(t *testing.T) {
	dir := t.TempDir()
	raw := randomRaw(1200, 8)
	s1, ts1 := durableServer(t, dir, 2, nil)
	postBatches(t, ts1.URL, raw, 300)
	waitIngested(t, ts1, int64(len(raw)))
	if err := s1.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	_, err := New(Config{Queries: testQueries, Parallelism: 4, DataDir: dir, Logf: t.Logf})
	if err == nil || !strings.Contains(err.Error(), "parallelism") {
		t.Fatalf("mismatched parallelism accepted: %v", err)
	}
}

// TestWALOnlyRecovery covers a crash before the first checkpoint: the
// whole log replays into a fresh engine.
func TestWALOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	raw := randomRaw(800, 21)
	finalWM := raw[len(raw)-1].Time + 4000
	want := inProcessReference(t, testQueries, raw, finalWM, 1)

	s1, ts1 := durableServer(t, dir, 1, func(c *Config) { c.CheckpointEvery = time.Hour })
	postBatches(t, ts1.URL, raw, 200)
	waitIngested(t, ts1, int64(len(raw)))
	ts1.Close()
	_ = s1
	if ckpts, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt")); len(ckpts) != 0 {
		t.Fatalf("unexpected checkpoint: %v", ckpts)
	}
	if segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log")); len(segs) == 0 {
		t.Fatal("no wal segments on disk")
	}

	s2, ts2 := durableServer(t, dir, 1, nil)
	defer ts2.Close()
	waitFor(t, "recovery", func() bool {
		code, _ := doReq(t, "GET", ts2.URL+"/healthz", "")
		return code == 200
	})
	sub := subscribeSSE(t, ts2.URL, "?after=-1")
	if code, _ := postJSON(t, ts2.URL+"/watermark", fmt.Sprintf(`{"watermark":%d}`, finalWM)); code != 202 {
		t.Fatal("watermark rejected")
	}
	waitFor(t, "all results", func() bool { return sub.count() >= len(want) })
	waitQuiesce(t, sub)
	got := sub.snapshot()
	if len(got) != len(want) {
		t.Fatalf("wal-only recovery emitted %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame %d differs after wal-only recovery", i)
		}
	}
	if err := s2.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointTruncatesWAL checks the log does not grow without
// bound: after a checkpoint, fully covered segments are removed.
func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	raw := randomRaw(6000, 31)
	s, ts := durableServer(t, dir, 1, func(c *Config) {
		c.WALSegmentBytes = 4 << 10
		c.CheckpointEvery = 20 * time.Millisecond
	})
	defer ts.Close()
	postBatches(t, ts.URL, raw, 100)
	waitIngested(t, ts, int64(len(raw)))
	waitFor(t, "a checkpoint", func() bool {
		ckpts, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
		return len(ckpts) > 0
	})
	if err := s.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	var total int64
	for _, p := range segs {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		total += st.Size()
	}
	// ~60 batches of ~100 events at ~10B/event spread over 4KiB
	// segments would be ~15 segments; truncation must have removed the
	// covered ones.
	if len(segs) > 4 {
		t.Fatalf("%d wal segments (%d bytes) survived checkpoint truncation", len(segs), total)
	}
}
