package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for the unified streaming surface: the filter oracle (a
// filtered subscription is byte-for-byte the client-side filter of the
// unfiltered stream), cursor resume across transports, the WebSocket
// handshake/keepalive protocol, the versioning and deprecation
// headers, and a 10k-subscriber broadcast stress against the hub.

// sseFrame is one received SSE frame: the event name ("" for plain
// result frames), the id line if present, and the data payload.
type sseFrame struct {
	event string
	id    int64
	data  string
}

// rawSSEClient collects full frames (event/id/data) so tests can
// compare streams byte-for-byte including sequence ids.
type rawSSEClient struct {
	mu     sync.Mutex
	frames []sseFrame
	header http.Header
	done   chan struct{}
	cancel context.CancelFunc
}

func subscribeRawSSE(t *testing.T, baseURL, params string, hdr map[string]string) *rawSSEClient {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	c := &rawSSEClient{done: make(chan struct{}), cancel: cancel}
	req, err := http.NewRequestWithContext(ctx, "GET", baseURL+"/subscribe"+params, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("subscribe%s: status %d: %s", params, resp.StatusCode, body)
	}
	c.header = resp.Header
	ready := make(chan struct{})
	go func() {
		defer close(c.done)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		cur := sseFrame{id: -1}
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == ": subscribed":
				close(ready)
			case strings.HasPrefix(line, ": "): // heartbeat
			case strings.HasPrefix(line, "event: "):
				cur.event = line[len("event: "):]
			case strings.HasPrefix(line, "id: "):
				cur.id, _ = strconv.ParseInt(line[len("id: "):], 10, 64)
			case strings.HasPrefix(line, "data: "):
				cur.data = line[len("data: "):]
			case line == "":
				if cur.data != "" {
					c.mu.Lock()
					c.frames = append(c.frames, cur)
					c.mu.Unlock()
				}
				cur = sseFrame{id: -1}
			}
		}
	}()
	select {
	case <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("subscription never became ready")
	}
	return c
}

func (c *rawSSEClient) snapshot() []sseFrame {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]sseFrame(nil), c.frames...)
}

func (c *rawSSEClient) results() []sseFrame {
	var out []sseFrame
	for _, f := range c.snapshot() {
		if f.event == "" {
			out = append(out, f)
		}
	}
	return out
}

// driveWorkload ingests a randomized stream and closes it with the
// final watermark, returning the expected unfiltered result count from
// an unfiltered reference subscription.
func driveWorkload(t *testing.T, tsURL string, raw []rawEvent) {
	t.Helper()
	finalWM := (raw[len(raw)-1].Time/1000)*1000 + 4000
	status, body := postJSON(t, tsURL+"/ingest", ndjson(t, raw))
	if status != http.StatusAccepted {
		t.Fatalf("ingest: status %d: %s", status, body)
	}
	status, body = postJSON(t, tsURL+"/watermark", fmt.Sprintf(`{"watermark":%d}`, finalWM))
	if status != http.StatusAccepted {
		t.Fatalf("watermark: status %d: %s", status, body)
	}
}

// TestStreamFilterOracle is the filter-correctness oracle: for each
// filter form, the filtered subscription's stream must equal the
// client-side filter of the unfiltered stream — same payload bytes,
// same sequence ids, same order. Filters hide frames; they never
// renumber, reorder, or rewrite what remains.
func TestStreamFilterOracle(t *testing.T) {
	raw := randomRaw(3000, 11)
	_, ts := newTestServer(t, Config{Queries: testQueries})
	all := subscribeRawSSE(t, ts.URL, "", nil)
	byQuery := subscribeRawSSE(t, ts.URL, "?query=1", nil)
	byGroup := subscribeRawSSE(t, ts.URL, "?group=3", nil)
	byBoth := subscribeRawSSE(t, ts.URL, "?query=0&query=2&group=3&group=5", nil)
	driveWorkload(t, ts.URL, raw)

	parse := func(t *testing.T, f sseFrame) WireResult {
		t.Helper()
		var r WireResult
		if err := json.Unmarshal([]byte(f.data), &r); err != nil {
			t.Fatalf("bad result frame %q: %v", f.data, err)
		}
		return r
	}
	waitFor(t, "unfiltered results", func() bool { return len(all.results()) > 0 })
	// Quiesce: the unfiltered stream stops growing once the watermark's
	// windows are all pushed.
	var total int
	waitFor(t, "stream quiescent", func() bool {
		n := len(all.results())
		if n != total {
			total = n
			return false
		}
		time.Sleep(50 * time.Millisecond)
		return len(all.results()) == total
	})

	oracle := func(t *testing.T, got *rawSSEClient, keep func(WireResult) bool, what string) {
		t.Helper()
		var want []sseFrame
		for _, f := range all.results() {
			if keep(parse(t, f)) {
				want = append(want, f)
			}
		}
		if len(want) == 0 {
			t.Fatalf("%s: oracle selected no frames — workload does not exercise the filter", what)
		}
		waitFor(t, what+" catch-up", func() bool { return len(got.results()) >= len(want) })
		gotFrames := got.results()
		if len(gotFrames) != len(want) {
			t.Fatalf("%s: got %d frames, oracle wants %d", what, len(gotFrames), len(want))
		}
		for i := range want {
			if gotFrames[i] != want[i] {
				t.Fatalf("%s: frame %d differs:\n got  id=%d %s\n want id=%d %s",
					what, i, gotFrames[i].id, gotFrames[i].data, want[i].id, want[i].data)
			}
		}
	}
	oracle(t, byQuery, func(r WireResult) bool { return r.Query == 1 }, "query=1")
	oracle(t, byGroup, func(r WireResult) bool { return r.Group == 3 }, "group=3")
	oracle(t, byBoth, func(r WireResult) bool {
		return (r.Query == 0 || r.Query == 2) && (r.Group == 3 || r.Group == 5)
	}, "query=0,2 group=3,5")
}

// wsTestConn is a minimal masked-client WebSocket for tests (the
// production client lives in internal/loadgen, which imports this
// package and therefore can't be used here).
type wsTestConn struct {
	conn net.Conn
	br   *bufio.Reader
	resp *http.Response
}

func dialWSTest(t *testing.T, baseURL, params string, hdr map[string]string) (*wsTestConn, *http.Response) {
	t.Helper()
	u := strings.TrimPrefix(baseURL, "http://")
	conn, err := net.Dial("tcp", u)
	if err != nil {
		t.Fatal(err)
	}
	var req strings.Builder
	req.WriteString("GET /subscribe/ws" + params + " HTTP/1.1\r\n" +
		"Host: " + u + "\r\n" +
		"Connection: Upgrade\r\nUpgrade: websocket\r\n" +
		"Sec-WebSocket-Version: 13\r\nSec-WebSocket-Key: dGVzdGtleTEyMzQ1Njc4OTA=\r\n")
	for k, v := range hdr {
		req.WriteString(k + ": " + v + "\r\n")
	}
	req.WriteString("\r\n")
	if _, err := conn.Write([]byte(req.String())); err != nil {
		conn.Close()
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		conn.Close()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		defer conn.Close()
		return nil, resp
	}
	c := &wsTestConn{conn: conn, br: br, resp: resp}
	t.Cleanup(func() { conn.Close() })
	return c, resp
}

// write sends one masked client frame.
func (c *wsTestConn) write(opcode byte, payload []byte) error {
	n := len(payload)
	var hdr []byte
	switch {
	case n < 126:
		hdr = []byte{0x80 | opcode, 0x80 | byte(n)}
	default:
		hdr = []byte{0x80 | opcode, 0x80 | 126, byte(n >> 8), byte(n)}
	}
	mask := [4]byte{0x12, 0x34, 0x56, 0x78}
	buf := append(hdr, mask[:]...)
	for i, b := range payload {
		buf = append(buf, b^mask[i%4])
	}
	_, err := c.conn.Write(buf)
	return err
}

// read returns the next server frame (unmasked).
func (c *wsTestConn) read(t *testing.T) (opcode byte, payload []byte) {
	t.Helper()
	_ = c.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var hdr [2]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		t.Fatalf("ws read: %v", err)
	}
	if hdr[1]&0x80 != 0 {
		t.Fatal("server frame is masked")
	}
	n := int64(hdr[1] & 0x7F)
	switch n {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			t.Fatal(err)
		}
		n = int64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			t.Fatal(err)
		}
		n = int64(binary.BigEndian.Uint64(ext[:]))
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		t.Fatal(err)
	}
	return hdr[0] & 0x0F, payload
}

// nextText returns the next text message, answering pings in between.
func (c *wsTestConn) nextText(t *testing.T) string {
	t.Helper()
	for {
		op, payload := c.read(t)
		switch op {
		case 0x1:
			return string(payload)
		case 0x9:
			if err := c.write(0xA, payload); err != nil {
				t.Fatal(err)
			}
		case 0x8:
			t.Fatalf("unexpected close frame: %x", payload)
		}
	}
}

// TestResumeAcrossTransport pins that the cursor is a property of the
// stream, not the transport: a client that consumed part of the stream
// over SSE can resume from the same seq over WebSocket (and the other
// way round via after=) and receives exactly the remaining frames.
func TestResumeAcrossTransport(t *testing.T) {
	raw := randomRaw(2500, 13)
	_, ts := newTestServer(t, Config{Queries: testQueries})
	all := subscribeRawSSE(t, ts.URL, "", nil)
	driveWorkload(t, ts.URL, raw)
	waitFor(t, "a batch of results", func() bool { return len(all.results()) >= 20 })
	var total int
	waitFor(t, "stream quiescent", func() bool {
		n := len(all.results())
		if n != total {
			total = n
			return false
		}
		time.Sleep(50 * time.Millisecond)
		return len(all.results()) == total
	})
	frames := all.results()
	all.cancel()
	mid := frames[len(frames)/2]

	// Resume over WS with Last-Event-ID where the SSE stream left off.
	conn, resp := dialWSTest(t, ts.URL, "", map[string]string{"Last-Event-ID": strconv.FormatInt(mid.id, 10)})
	if conn == nil {
		t.Fatalf("ws resume refused: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Sharon-Api-Version"); got != apiVersion {
		t.Fatalf("ws 101 Sharon-Api-Version = %q, want %q", got, apiVersion)
	}
	if first := conn.nextText(t); first != `{"event":"subscribed"}` {
		t.Fatalf("ws preamble = %q", first)
	}
	rest := frames[len(frames)/2+1:]
	for i, want := range rest {
		got := conn.nextText(t)
		if got != want.data {
			t.Fatalf("ws resume frame %d:\n got  %s\n want %s", i, got, want.data)
		}
		var r struct {
			Seq int64 `json:"seq"`
		}
		if err := json.Unmarshal([]byte(got), &r); err != nil || r.Seq != want.id {
			t.Fatalf("ws resume frame %d seq = %d, want %d", i, r.Seq, want.id)
		}
	}

	// And back: an after= cursor taken from the WS stream resumes over SSE.
	sse := subscribeRawSSE(t, ts.URL, "?after="+strconv.FormatInt(mid.id, 10), nil)
	waitFor(t, "sse resume catch-up", func() bool { return len(sse.results()) >= len(rest) })
	for i, got := range sse.results()[:len(rest)] {
		if got != rest[i] {
			t.Fatalf("sse resume frame %d: got id=%d %s, want id=%d %s",
				i, got.id, got.data, rest[i].id, rest[i].data)
		}
	}
}

// TestWSProtocol pins the hand-rolled RFC 6455 surface: the computed
// Sec-WebSocket-Accept token, ping→pong, client close echo, and the
// plain-HTTP refusals before any upgrade.
func TestWSProtocol(t *testing.T) {
	_, ts := newTestServer(t, Config{Queries: testQueries})
	conn, resp := dialWSTest(t, ts.URL, "", nil)
	if conn == nil {
		t.Fatalf("upgrade refused: %d", resp.StatusCode)
	}
	// RFC 6455 §4.2.2: accept = base64(SHA1(key + magic)).
	if got, want := resp.Header.Get("Sec-Websocket-Accept"), wsAccept("dGVzdGtleTEyMzQ1Njc4OTA="); got != want {
		t.Fatalf("Sec-WebSocket-Accept = %q, want %q", got, want)
	}
	if got := conn.nextText(t); got != `{"event":"subscribed"}` {
		t.Fatalf("preamble = %q", got)
	}
	// Ping → pong with the same payload.
	if err := conn.write(0x9, []byte("marco")); err != nil {
		t.Fatal(err)
	}
	for {
		op, payload := conn.read(t)
		if op == 0xA {
			if string(payload) != "marco" {
				t.Fatalf("pong payload = %q", payload)
			}
			break
		}
	}
	// Client close → echoed close.
	if err := conn.write(0x8, []byte{0x03, 0xE8}); err != nil {
		t.Fatal(err)
	}
	for {
		op, _ := conn.read(t)
		if op == 0x8 {
			break
		}
	}

	// A non-upgrade GET on the WS path is refused as plain HTTP.
	code, body := doReq(t, "GET", ts.URL+"/subscribe/ws", "")
	if code != http.StatusBadRequest {
		t.Fatalf("non-upgrade request: %d %s", code, body)
	}
}

// TestSubscribeHeaders pins the versioning contract: every subscribe
// response carries Sharon-Api-Version, legacy parameter forms answer
// with a Deprecation header, the current forms do not, and an aged-out
// cursor's 410 names the oldest retained seq in Sharon-Oldest-Seq.
func TestSubscribeHeaders(t *testing.T) {
	raw := randomRaw(2500, 17)
	_, ts := newTestServer(t, Config{Queries: testQueries})

	modern := subscribeRawSSE(t, ts.URL, "?query=1&type=result&type=wm", nil)
	if got := modern.header.Get("Sharon-Api-Version"); got != apiVersion {
		t.Fatalf("Sharon-Api-Version = %q, want %q", got, apiVersion)
	}
	if modern.header.Get("Deprecation") != "" {
		t.Fatal("current-surface subscribe marked deprecated")
	}
	legacyQ := subscribeRawSSE(t, ts.URL, "?query=q1", nil)
	if legacyQ.header.Get("Deprecation") != "true" || legacyQ.header.Get("Sharon-Api-Note") == "" {
		t.Fatalf("legacy q-prefix subscribe missing deprecation headers: %v", legacyQ.header)
	}
	legacyP := subscribeRawSSE(t, ts.URL, "?punctuate=1", nil)
	if legacyP.header.Get("Deprecation") != "true" {
		t.Fatal("legacy punctuate= subscribe missing Deprecation header")
	}

	// Parameter errors.
	if code, _ := doReq(t, "GET", ts.URL+"/subscribe?type=bogus", ""); code != http.StatusBadRequest {
		t.Fatalf("bad type: %d, want 400", code)
	}
	if code, _ := doReq(t, "GET", ts.URL+"/subscribe?query=99", ""); code != http.StatusNotFound {
		t.Fatalf("unknown query: %d, want 404", code)
	}

	// Age out seq 0 on a server with a tiny retained log (no live
	// subscribers — a retain of 8 overruns any open stream during the
	// burst), then assert the 410 carries the recovery cursor.
	_, ts2 := newTestServer(t, Config{Queries: testQueries, ReplayBuffer: 8})
	driveWorkload(t, ts2.URL, raw)
	waitFor(t, "ring overflow", func() bool {
		_, body := doReq(t, "GET", ts2.URL+"/metrics", "")
		var st struct {
			ResultsEmitted int64 `json:"results_emitted"`
		}
		return json.Unmarshal([]byte(body), &st) == nil && st.ResultsEmitted > 16
	})
	req, _ := http.NewRequest("GET", ts2.URL+"/subscribe?after=0", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("aged-out resume: %d, want 410", resp.StatusCode)
	}
	oldest, err := strconv.ParseInt(resp.Header.Get("Sharon-Oldest-Seq"), 10, 64)
	if err != nil || oldest <= 0 {
		t.Fatalf("410 Sharon-Oldest-Seq = %q, want the oldest retained seq", resp.Header.Get("Sharon-Oldest-Seq"))
	}
	// The named cursor must actually work.
	ok := subscribeRawSSE(t, ts2.URL, "?after="+strconv.FormatInt(oldest-1, 10), nil)
	waitFor(t, "recovery-cursor backfill", func() bool { return len(ok.results()) > 0 })
	if first := ok.results()[0].id; first != oldest {
		t.Fatalf("recovery cursor resumed at %d, want %d", first, oldest)
	}
}

// seqConn is a SubConn that checks per-subscriber delivery contiguity
// inline: every burst's frames must carry strictly increasing seq ids
// starting at 0 with no gaps. Terminals and heartbeats are counted.
type seqConn struct {
	next atomic.Int64
	bad  atomic.Int64
	eof  atomic.Bool
}

func (c *seqConn) WriteBurst(bufs [][]byte) error {
	for _, b := range bufs {
		s := string(b)
		if !strings.HasPrefix(s, "id: ") {
			continue // ctl frame
		}
		id, err := strconv.ParseInt(s[4:strings.IndexByte(s, '\n')], 10, 64)
		if err != nil || id != c.next.Load() {
			c.bad.Add(1)
			continue
		}
		c.next.Add(1)
	}
	return nil
}

func (c *seqConn) WriteHeartbeat() error { return nil }
func (c *seqConn) WriteTerminal(reason string) {
	if reason == "" {
		c.eof.Store(true)
	}
}

// TestBroadcastStress10k is the race-clean fan-out stress: 10k live
// subscribers on one hub, every one of them asserting zero seq gaps
// and zero duplicates inline, while the encode-once invariant holds.
// Run with -race this covers the writer pool, cursor walks, and
// shared-frame handoff under real contention.
func TestBroadcastStress10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-subscriber stress skipped in -short")
	}
	const subs, results = 10_000, 64
	h := NewHub(HubOptions{Retain: results + 16})
	conns := make([]*seqConn, subs)
	for i := range conns {
		conns[i] = &seqConn{}
		sub, err := h.Subscribe(SubOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !sub.Start(conns[i]) {
			t.Fatalf("subscriber %d refused", i)
		}
	}
	payload := []byte(`{"query":0,"win":1000,"group":1,"seq":0,"end":1000,"agg":"COUNT","value":1}`)
	for i := 0; i < results; i++ {
		h.Publish(0, 1, int64(i), payload, 0)
	}
	want := int64(subs) * int64(results)
	waitFor(t, "all deliveries", func() bool { return h.Delivered() >= want })
	if got := h.Encoded(); got != results {
		t.Fatalf("encode-once violated: %d encodes for %d results × %d subscribers", got, results, subs)
	}
	h.Shutdown()
	waitFor(t, "drain", func() bool { return h.Count() == 0 })
	for i, c := range conns {
		if c.bad.Load() != 0 {
			t.Fatalf("subscriber %d saw %d out-of-sequence frames", i, c.bad.Load())
		}
		if c.next.Load() != results {
			t.Fatalf("subscriber %d received %d/%d results", i, c.next.Load(), results)
		}
		if !c.eof.Load() {
			t.Fatalf("subscriber %d ended without a clean eof terminal", i)
		}
	}
	if h.SlowDrops() != 0 || h.FilteredDrops() != 0 {
		t.Fatalf("stress dropped subscribers: slow=%d filtered=%d", h.SlowDrops(), h.FilteredDrops())
	}
}
