package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// liveBatch renders a strictly ordered A,B,C cycle starting at t0;
// keys cycle over 5 groups (coprime to the type cycle, so every group
// sees every type and the sequences actually match).
func liveBatch(t0, n int64) string {
	var b strings.Builder
	names := []string{"A", "B", "C"}
	for i := int64(0); i < n; i++ {
		tm := t0 + i
		fmt.Fprintf(&b, `{"type":%q,"time":%d,"key":%d,"val":1}`+"\n", names[i%3], tm, i%5)
	}
	return b.String()
}

// TestLiveQueryRegistration drives the workload-evolution scenario
// over the wire: register a query mid-stream, observe the optimizer
// re-run (plan diff + migration count in the response), watch the new
// query's results start exactly at the boundary window, then
// deregister the old query and watch its results stop.
func TestLiveQueryRegistration(t *testing.T) {
	// 2s windows sliding 1s; A,B interned from the initial workload.
	_, ts := newTestServer(t, Config{Queries: []string{
		"RETURN COUNT(*) PATTERN SEQ(A, B) WHERE [k] WITHIN 2s SLIDE 1s",
	}})
	sub := subscribeSSE(t, ts.URL, "")

	// Feed through the first windows; C events are unknown (dropped)
	// until a query that mentions C registers.
	status, body := postJSON(t, ts.URL+"/ingest", liveBatch(1, 3000))
	if status != http.StatusAccepted {
		t.Fatalf("ingest: %d %s", status, body)
	}
	waitFor(t, "initial results", func() bool { return sub.count() > 0 })

	// A query that breaks uniformity is refused outright (asserted here,
	// with no workload change draining, so the rejection can only come
	// from the uniformity guard itself).
	status, body = doReq(t, "POST", ts.URL+"/queries",
		`{"query":"RETURN COUNT(*) PATTERN SEQ(A, C) WHERE [k] WITHIN 9s SLIDE 3s"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("non-uniform window: status %d, want 400: %s", status, body)
	}

	// Register SEQ(B, C): shares nothing with SEQ(A, B) but re-runs the
	// optimizer on the two-query workload.
	status, body = doReq(t, "POST", ts.URL+"/queries",
		`{"query":"RETURN COUNT(*) PATTERN SEQ(B, C) WHERE [k] WITHIN 2s SLIDE 1s"}`)
	if status != http.StatusOK {
		t.Fatalf("register: %d %s", status, body)
	}
	var reg struct {
		Migrations     int64           `json:"migrations"`
		BoundaryWindow int64           `json:"boundary_window"`
		PlanDiff       json.RawMessage `json:"plan_diff"`
		Queries        []struct {
			ID int `json:"id"`
		} `json:"queries"`
	}
	if err := json.Unmarshal([]byte(body), &reg); err != nil {
		t.Fatalf("register response: %v in %s", err, body)
	}
	if reg.Migrations != 1 || len(reg.Queries) != 2 || reg.BoundaryWindow <= 0 {
		t.Fatalf("register response = %s", body)
	}
	if len(reg.PlanDiff) == 0 {
		t.Fatalf("no plan diff in %s", body)
	}

	// Feed past the boundary so both the drained old windows and the
	// new query's first windows close.
	status, body = postJSON(t, ts.URL+"/ingest", liveBatch(3001, 4000))
	if status != http.StatusAccepted {
		t.Fatalf("ingest: %d %s", status, body)
	}
	waitFor(t, "post-boundary results for the new query", func() bool {
		for _, d := range sub.snapshot() {
			var r WireResult
			if json.Unmarshal([]byte(d), &r) == nil && r.Query == 1 {
				return true
			}
		}
		return false
	})

	// A watermark straddling the migration boundary must still deliver
	// the old system's pre-boundary windows before the new system's.
	status, body = postJSON(t, ts.URL+"/watermark", `{"watermark":12000}`)
	if status != http.StatusAccepted {
		t.Fatalf("watermark: %d %s", status, body)
	}
	// Window 6 ([6000,8000), the last with enough events to match) only
	// closes via this watermark — the last event is t=7000.
	waitFor(t, "watermark-closed windows", func() bool {
		for _, d := range sub.snapshot() {
			var r WireResult
			if json.Unmarshal([]byte(d), &r) == nil && r.End >= 8000 {
				return true
			}
		}
		return false
	})

	// Every query-1 window is at or past the boundary; the push order
	// stays monotone in window end across the hand-off (uniform window,
	// so End is monotone in Win); query-0 emits each (window, group)
	// exactly once.
	seen := map[[2]int64]int{}
	lastEnd := int64(-1)
	for _, d := range sub.snapshot() {
		var r WireResult
		if err := json.Unmarshal([]byte(d), &r); err != nil {
			t.Fatal(err)
		}
		if r.End < lastEnd {
			t.Fatalf("push order regressed: window end %d after %d", r.End, lastEnd)
		}
		lastEnd = r.End
		if r.Query == 1 && r.Win < reg.BoundaryWindow {
			t.Fatalf("new query emitted pre-boundary window %d (boundary %d)", r.Win, reg.BoundaryWindow)
		}
		if r.Query == 0 {
			seen[[2]int64{r.Win, r.Group}]++
		}
	}
	for wg, n := range seen {
		if n > 1 {
			t.Fatalf("query 0 window %d group %d emitted %d times across the hand-off", wg[0], wg[1], n)
		}
	}

	// Deregister query 0; wait out its drain, then check its results
	// stop while query 1 continues.
	waitFor(t, "old system drained", func() bool {
		status, body := doReq(t, "DELETE", ts.URL+"/queries/0", "")
		if status == http.StatusConflict {
			// Previous change still draining — feed a little further.
			postJSON(t, ts.URL+"/ingest", liveBatch(nextLiveT(), 500))
			return false
		}
		if status != http.StatusOK {
			t.Fatalf("deregister: %d %s", status, body)
		}
		return true
	})
	status, body = doReq(t, "DELETE", ts.URL+"/queries/99", "")
	if status != http.StatusConflict && status != http.StatusNotFound {
		t.Fatalf("deleting unknown query: %d %s", status, body)
	}
}

// nextLiveT hands out monotonically increasing start ticks for filler
// batches in TestLiveQueryRegistration.
var liveT = int64(7001)

func nextLiveT() int64 {
	t := liveT
	liveT += 500
	return t
}
