package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	sharon "github.com/sharon-project/sharon"
)

// testQueries is a uniform three-query workload with one sharable
// segment (C,D), exercising the shared plan over the wire.
var testQueries = []string{
	"RETURN COUNT(*) PATTERN SEQ(A, B, C, D) WHERE [k] WITHIN 4s SLIDE 1s",
	"RETURN COUNT(*) PATTERN SEQ(C, D) WHERE [k] WITHIN 4s SLIDE 1s",
	"RETURN COUNT(*) PATTERN SEQ(A, B) WHERE [k] WITHIN 4s SLIDE 1s",
}

// rawEvent is one generated event before rendering (to NDJSON for the
// server, to sharon.Event for the in-process reference).
type rawEvent struct {
	Name string
	Time int64
	Key  int64
	Val  float64
}

func randomRaw(n int, seed int64) []rawEvent {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"A", "B", "C", "D"}
	out := make([]rawEvent, n)
	t := int64(0)
	for i := range out {
		t += 1 + rng.Int63n(3)
		out[i] = rawEvent{
			Name: names[rng.Intn(len(names))],
			Time: t,
			Key:  rng.Int63n(7),
			Val:  float64(rng.Intn(9) + 1),
		}
	}
	return out
}

func ndjson(t *testing.T, events []rawEvent) string {
	t.Helper()
	var b strings.Builder
	enc := json.NewEncoder(&b)
	for _, e := range events {
		if err := enc.Encode(IngestLine{Type: e.Name, Time: e.Time, Key: e.Key, Val: e.Val}); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

// inProcessReference replays the identical input through the public
// API with the same canonical encoder: parse the same query texts, feed
// the same events, advance the same final watermark — the byte
// sequence a correct server must push.
func inProcessReference(t *testing.T, queries []string, raw []rawEvent, finalWM int64, par int) []string {
	t.Helper()
	reg := sharon.NewRegistry()
	w := make(sharon.Workload, len(queries))
	qs := make(map[int]*sharon.Query, len(queries))
	for i, text := range queries {
		q, err := sharon.ParseQuery(text, reg)
		if err != nil {
			t.Fatal(err)
		}
		q.ID = i
		w[i] = q
		qs[i] = q
	}
	events := make([]sharon.Event, len(raw))
	for i, e := range raw {
		tp := reg.Lookup(e.Name)
		if tp == sharon.NoType {
			t.Fatalf("type %q not in workload alphabet", e.Name)
		}
		events[i] = sharon.Event{Time: e.Time, Type: tp, Key: sharon.GroupKey(e.Key), Val: e.Val}
	}
	var mu sync.Mutex
	var out []string
	var seq int64
	sys, err := sharon.NewSystem(w, sharon.Options{
		Parallelism: par,
		OnResult: func(r sharon.Result) {
			mu.Lock()
			out = append(out, string(EncodeResult(qs, seq, r)))
			seq++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.FeedBatch(events); err != nil {
		t.Fatal(err)
	}
	sys.AdvanceWatermark(finalWM)
	// Flush adds nothing (the watermark covered every window holding
	// events) but synchronizes the parallel merge before reading out.
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	return append([]string(nil), out...)
}

// sseClient subscribes to ts and collects data frames until closed.
type sseClient struct {
	mu     sync.Mutex
	data   []string
	events []string // named frames: eof, error
	ready  chan struct{}
	done   chan struct{}
	cancel context.CancelFunc
}

func subscribeSSE(t *testing.T, baseURL, params string) *sseClient {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel) // a failing test must not leave the stream holding its server open
	c := &sseClient{ready: make(chan struct{}), done: make(chan struct{}), cancel: cancel}
	req, err := http.NewRequestWithContext(ctx, "GET", baseURL+"/subscribe"+params, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("subscribe: status %d: %s", resp.StatusCode, body)
	}
	go func() {
		defer close(c.done)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == ": subscribed":
				close(c.ready)
			case strings.HasPrefix(line, "data: "):
				c.mu.Lock()
				c.data = append(c.data, strings.TrimPrefix(line, "data: "))
				c.mu.Unlock()
			case strings.HasPrefix(line, "event: "):
				c.mu.Lock()
				c.events = append(c.events, strings.TrimPrefix(line, "event: "))
				c.mu.Unlock()
			}
		}
	}()
	select {
	case <-c.ready:
	case <-time.After(5 * time.Second):
		t.Fatal("subscription never became ready")
	}
	return c
}

func (c *sseClient) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.data)
}

func (c *sseClient) snapshot() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.data...)
}

func (c *sseClient) sawEvent(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.events {
		if e == name {
			return true
		}
	}
	return false
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func postJSON(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func doReq(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
		ts.Close()
	})
	return s, ts
}

// TestLoopbackEquivalence is the end-to-end acceptance test: an
// identical randomized stream fed to (a) the in-process engine and (b)
// sharond over loopback with a subscribed client yields byte-identical
// result sequences — with the engine sequential and parallel — and the
// server pushes results as windows close, before any terminal
// flush/watermark.
func TestLoopbackEquivalence(t *testing.T) {
	raw := randomRaw(6000, 42)
	last := raw[len(raw)-1].Time
	// Final watermark: the end of the last window containing an event
	// (WITHIN 4s SLIDE 1s at 1000 ticks/s).
	finalWM := (last/1000)*1000 + 4000
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			want := inProcessReference(t, testQueries, raw, finalWM, par)
			if len(want) == 0 {
				t.Fatal("reference produced no results")
			}
			_, ts := newTestServer(t, Config{Queries: testQueries, Parallelism: par})
			sub := subscribeSSE(t, ts.URL, "")

			// First half in uneven batches, crossing window closes.
			half := len(raw) / 2
			for i := 0; i < half; {
				j := min(i+137, half)
				status, body := postJSON(t, ts.URL+"/ingest", ndjson(t, raw[i:j]))
				if status != http.StatusAccepted {
					t.Fatalf("ingest: status %d: %s", status, body)
				}
				i = j
			}
			if par == 1 {
				// Sequential path: event-time progress alone must have
				// pushed the already-closed windows — no flush, no
				// watermark. (The parallel path may still be batching.)
				waitFor(t, "mid-stream push", func() bool { return sub.count() > 0 })
			}
			// Second half, then watermark punctuation closes the tail.
			status, body := postJSON(t, ts.URL+"/ingest", ndjson(t, raw[half:]))
			if status != http.StatusAccepted {
				t.Fatalf("ingest: status %d: %s", status, body)
			}
			status, body = postJSON(t, ts.URL+"/watermark", fmt.Sprintf(`{"watermark":%d}`, finalWM))
			if status != http.StatusAccepted {
				t.Fatalf("watermark: status %d: %s", status, body)
			}

			waitFor(t, "all results", func() bool { return sub.count() >= len(want) })
			got := sub.snapshot()
			if len(got) != len(want) {
				t.Fatalf("server pushed %d results, reference %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("result %d:\n server   %s\n inproc   %s", i, got[i], want[i])
				}
			}
			sub.cancel()
		})
	}
}

// TestQueryFilterSubscription checks ?query= delivers exactly that
// query's results.
func TestQueryFilterSubscription(t *testing.T) {
	raw := randomRaw(2000, 7)
	finalWM := (raw[len(raw)-1].Time/1000)*1000 + 4000
	_, ts := newTestServer(t, Config{Queries: testQueries})
	all := subscribeSSE(t, ts.URL, "")
	only1 := subscribeSSE(t, ts.URL, "?query=1")
	postJSON(t, ts.URL+"/ingest", ndjson(t, raw))
	postJSON(t, ts.URL+"/watermark", fmt.Sprintf(`{"watermark":%d}`, finalWM))
	waitFor(t, "results", func() bool { return all.count() > 0 })

	// Count query-1 results in the full stream, then wait for the
	// filtered subscriber to catch up.
	time.Sleep(50 * time.Millisecond)
	var want1 int
	for _, d := range all.snapshot() {
		var r WireResult
		if err := json.Unmarshal([]byte(d), &r); err != nil {
			t.Fatal(err)
		}
		if r.Query == 1 {
			want1++
		}
	}
	if want1 == 0 {
		t.Fatal("no query-1 results in stream")
	}
	waitFor(t, "filtered results", func() bool { return only1.count() >= want1 })
	for _, d := range only1.snapshot() {
		var r WireResult
		if err := json.Unmarshal([]byte(d), &r); err != nil {
			t.Fatal(err)
		}
		if r.Query != 1 {
			t.Fatalf("filtered subscription got query %d", r.Query)
		}
	}
	all.cancel()
	only1.cancel()
}

// TestOversizedBatchRejected pins the request-size limit: a body over
// MaxBatchBytes is refused with 413 before the engine sees anything.
func TestOversizedBatchRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Queries: testQueries, MaxBatchBytes: 1024})
	var b bytes.Buffer
	for i := int64(1); b.Len() <= 4096; i++ {
		fmt.Fprintf(&b, `{"type":"A","time":%d,"key":1,"val":1}`+"\n", i)
	}
	status, body := postJSON(t, ts.URL+"/ingest", b.String())
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d (%s), want 413", status, body)
	}
	status, body = doReq(t, "GET", ts.URL+"/metrics", "")
	if status != http.StatusOK || !strings.Contains(body, `"rejected_oversize": 1`) {
		t.Fatalf("metrics after oversize: %d %s", status, body)
	}
}

// TestBackpressure429 pins the bounded-queue policy: with the pump
// stalled and the queue full, ingestion is refused with 429 and
// Retry-After rather than buffered without bound.
func TestBackpressure429(t *testing.T) {
	gate := make(chan struct{})
	_, ts := newTestServer(t, Config{Queries: testQueries, IngestQueue: 2, pumpGate: gate})
	defer close(gate)

	line := func(i int) string { return fmt.Sprintf(`{"type":"A","time":%d,"key":1,"val":1}`+"\n", i) }
	// One batch may be held by the stalled pump; two fill the queue.
	for i := 1; i <= 3; i++ {
		status, body := postJSON(t, ts.URL+"/ingest", line(i))
		if status != http.StatusAccepted {
			t.Fatalf("warm-up batch %d: status %d: %s", i, status, body)
		}
	}
	req, err := http.NewRequest("POST", ts.URL+"/ingest", strings.NewReader(line(4)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestLateEventsDropped pins the cross-batch ordering policy: events
// at or behind the watermark are dropped and counted, not an error.
func TestLateEventsDropped(t *testing.T) {
	_, ts := newTestServer(t, Config{Queries: testQueries})
	postJSON(t, ts.URL+"/ingest", `{"type":"A","time":100,"key":1,"val":1}`)
	postJSON(t, ts.URL+"/ingest", `{"type":"B","time":50,"key":1,"val":1}`)
	waitFor(t, "late drop", func() bool {
		_, body := doReq(t, "GET", ts.URL+"/metrics", "")
		return strings.Contains(body, `"events_dropped_late": 1`)
	})
}

// TestDrainFlushesAndEOF: draining closes every open window into live
// subscriptions and terminates them with an eof frame; ingestion is
// refused afterwards.
func TestDrainFlushesAndEOF(t *testing.T) {
	s, ts := newTestServer(t, Config{Queries: testQueries})
	sub := subscribeSSE(t, ts.URL, "")
	// Events within the first window: nothing closed, nothing pushed.
	postJSON(t, ts.URL+"/ingest",
		`{"type":"A","time":100,"key":1,"val":1}`+"\n"+
			`{"type":"B","time":200,"key":1,"val":1}`+"\n")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "eof", func() bool { return sub.sawEvent("eof") })
	if sub.count() == 0 {
		t.Fatal("drain did not flush the open windows to the subscriber")
	}
	status, _ := postJSON(t, ts.URL+"/ingest", `{"type":"A","time":300,"key":1,"val":1}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("ingest while drained: status %d, want 503", status)
	}
	status, _ = doReq(t, "GET", ts.URL+"/healthz", "")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("healthz while drained: status %d, want 503", status)
	}
}

// TestParseBatchContract unit-tests the NDJSON framing: in-batch
// ordering, watermark floors, unknown-type drops, malformed lines.
func TestParseBatchContract(t *testing.T) {
	lookup := map[string]sharon.Type{"A": 1, "B": 2}
	parse := func(s string) (Batch, error) { return ParseBatch(strings.NewReader(s), lookup) }

	b, err := parse(`{"type":"A","time":1}` + "\n" + `{"type":"X","time":2}` + "\n" + `{"watermark":10}` + "\n" + `{"type":"B","time":11}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Events) != 2 || b.Unknown != 1 || b.Watermark != 10 {
		t.Fatalf("batch = %+v", b)
	}
	if _, err := parse(`{"type":"A","time":5}` + "\n" + `{"type":"B","time":5}`); err == nil {
		t.Fatal("equal timestamps accepted")
	}
	if _, err := parse(`{"watermark":10}` + "\n" + `{"type":"A","time":9}`); err == nil {
		t.Fatal("event behind in-batch watermark accepted")
	}
	if _, err := parse(`{"type":"A"`); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, err := parse(`{"time":3}`); err == nil {
		t.Fatal("missing type accepted")
	}
}

// memConn is an in-memory SubConn for hub unit tests: it records every
// burst buffer and the terminal reason, and can park WriteBurst on a
// gate to simulate a consumer that stopped reading.
type memConn struct {
	mu       sync.Mutex
	frames   []string
	terminal chan string
	gate     chan struct{} // non-nil: first WriteBurst parks until closed
}

func newMemConn(gate chan struct{}) *memConn {
	return &memConn{terminal: make(chan string, 1), gate: gate}
}

func (c *memConn) WriteBurst(bufs [][]byte) error {
	c.mu.Lock()
	g := c.gate
	c.gate = nil
	c.mu.Unlock()
	if g != nil {
		<-g
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, b := range bufs {
		c.frames = append(c.frames, string(b))
	}
	return nil
}

func (c *memConn) WriteHeartbeat() error { return nil }

func (c *memConn) WriteTerminal(reason string) {
	select {
	case c.terminal <- reason:
	default:
	}
}

func (c *memConn) got() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.frames...)
}

// TestHubSlowConsumer unit-tests the slow-consumer policy: a subscriber
// whose cursor is overrun by log retention is terminated with an
// explicit `dropped` frame naming the reason, and only that subscriber.
func TestHubSlowConsumer(t *testing.T) {
	h := NewHub(HubOptions{Writers: 2, Retain: 2})
	gate := make(chan struct{})
	slowConn, fastConn := newMemConn(gate), newMemConn(nil)

	slow, err := h.Subscribe(SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	slow.Start(slowConn)
	fast, err := h.Subscribe(SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fast.Start(fastConn)

	// Overrun the slow subscriber: with Retain 2, ten results trim far
	// past any cursor parked behind the gate. Pacing each publish against
	// the fast subscriber's delivery keeps ITS cursor at the tail, so
	// only the gated subscriber can be overrun.
	for i := 0; i < 10; i++ {
		h.Publish(0, 0, int64(i), []byte(`{"seq":`+strconv.Itoa(i)+`}`), 0)
		n := i + 1
		waitFor(t, "fast delivery", func() bool { return len(fastConn.got()) == n })
	}
	close(gate)

	waitFor(t, "slow consumer dropped", func() bool { return h.SlowDrops() == 1 })
	select {
	case reason := <-slowConn.terminal:
		if reason != ReasonSlowConsumer {
			t.Fatalf("terminal reason = %q, want %q", reason, ReasonSlowConsumer)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no terminal frame on the dropped subscriber")
	}
	<-slow.Done()
	if got := slow.Reason(); got != ReasonSlowConsumer {
		t.Fatalf("slow.Reason() = %q, want %q", got, ReasonSlowConsumer)
	}
	if h.Count() != 1 {
		t.Fatalf("live subscribers = %d, want 1", h.Count())
	}

	// The fast subscriber is untouched: clean drain to eof on shutdown.
	waitFor(t, "fast subscriber drained", func() bool { return len(fastConn.got()) == 10 })
	h.Shutdown()
	select {
	case reason := <-fastConn.terminal:
		if reason != "" {
			t.Fatalf("fast terminal reason = %q, want clean eof", reason)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no eof on the fast subscriber after shutdown")
	}
	for i, fr := range fastConn.got() {
		want := "id: " + strconv.Itoa(i) + "\ndata: {\"seq\":" + strconv.Itoa(i) + "}\n\n"
		if fr != want {
			t.Fatalf("fast frame %d = %q, want %q", i, fr, want)
		}
	}
	if h.Encoded() != 10 {
		t.Fatalf("encoded = %d, want 10 (one per publish, not per subscriber)", h.Encoded())
	}
}

// TestHubFilteredResumeDrop pins the distinct drop reason for filtered
// subscribers: a narrowed stream is not seq-contiguous, so the client
// cannot detect the loss itself and the terminal frame must say so.
func TestHubFilteredResumeDrop(t *testing.T) {
	h := NewHub(HubOptions{Writers: 1, Retain: 2})
	gate := make(chan struct{})
	conn := newMemConn(gate)
	sub, err := h.Subscribe(SubOptions{Filter: SubFilter{Queries: []int{0}}})
	if err != nil {
		t.Fatal(err)
	}
	sub.Start(conn)
	for i := 0; i < 10; i++ {
		h.Publish(0, 0, int64(i), []byte(`{"seq":`+strconv.Itoa(i)+`}`), 0)
	}
	close(gate)
	waitFor(t, "filtered subscriber dropped", func() bool { return h.FilteredDrops() == 1 })
	<-sub.Done()
	if got := sub.Reason(); got != ReasonFilteredResume {
		t.Fatalf("Reason() = %q, want %q", got, ReasonFilteredResume)
	}
	h.Shutdown()
}
