package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	sharon "github.com/sharon-project/sharon"
	"github.com/sharon-project/sharon/internal/persist"
)

// wireEvents renders raw test events as sharon.Events with local type
// ids matching a type table built from names (id = index+1).
func wireEvents(t *testing.T, names []string, raw []rawEvent) []sharon.Event {
	t.Helper()
	id := make(map[string]sharon.Type, len(names))
	for i, n := range names {
		id[n] = sharon.Type(i + 1)
	}
	out := make([]sharon.Event, len(raw))
	for i, e := range raw {
		tp, ok := id[e.Name]
		if !ok {
			t.Fatalf("type %q not in table", e.Name)
		}
		out[i] = sharon.Event{Time: e.Time, Type: tp, Key: sharon.GroupKey(e.Key), Val: e.Val}
	}
	return out
}

// binBody builds a complete one-shot binary ingest body.
func binBody(names []string, events []sharon.Event, wm int64) []byte {
	b := AppendWireTypeTable(AppendWireHeader(nil), names)
	return AppendWireBatch(b, events, wm)
}

// postBin posts a binary body to /ingest.
func postBin(t *testing.T, url string, body []byte) (int, string) {
	t.Helper()
	resp, err := http.Post(url+"/ingest", BatchContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// streamClient is a minimal streaming-ingest client: one long-lived
// full-duplex POST, frames out, acks in.
type streamClient struct {
	t      *testing.T
	pw     *io.PipeWriter
	body   io.ReadCloser
	buf    []byte
	ackBuf []byte
}

func dialStream(t *testing.T, baseURL string, names []string) *streamClient {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", baseURL+"/ingest/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", BatchContentType)
	respc := make(chan *http.Response, 1)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errc <- err
			return
		}
		respc <- resp
	}()
	// The header write races Do on purpose: the server reads the wire
	// header from the body before it responds 200.
	if _, err := pw.Write(AppendWireTypeTable(AppendWireHeader(nil), names)); err != nil {
		t.Fatal(err)
	}
	select {
	case resp := <-respc:
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("stream: status %d: %s", resp.StatusCode, b)
		}
		c := &streamClient{t: t, pw: pw, body: resp.Body}
		t.Cleanup(c.close)
		return c
	case err := <-errc:
		t.Fatalf("stream: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("stream: no response headers")
	}
	panic("unreachable")
}

// send writes one batch frame and returns its ack.
func (c *streamClient) send(events []sharon.Event, wm int64) WireAck {
	c.t.Helper()
	c.buf = AppendWireBatch(c.buf[:0], events, wm)
	if _, err := c.pw.Write(c.buf); err != nil {
		c.t.Fatalf("stream write: %v", err)
	}
	return c.readAck()
}

// sendRaw writes arbitrary bytes down the stream.
func (c *streamClient) sendRaw(b []byte) {
	c.t.Helper()
	if _, err := c.pw.Write(b); err != nil {
		c.t.Fatalf("stream write: %v", err)
	}
}

func (c *streamClient) readAck() WireAck {
	c.t.Helper()
	body, buf, err := persist.ReadFrame(c.body, 1<<20, c.ackBuf)
	c.ackBuf = buf
	if err != nil {
		c.t.Fatalf("stream ack: %v", err)
	}
	ack, err := DecodeWireAck(body)
	if err != nil {
		c.t.Fatalf("stream ack: %v", err)
	}
	return ack
}

// tryReadAck reads one ack, reporting stream end instead of failing.
func (c *streamClient) tryReadAck() (WireAck, error) {
	body, buf, err := persist.ReadFrame(c.body, 1<<20, c.ackBuf)
	c.ackBuf = buf
	if err != nil {
		return WireAck{}, err
	}
	return DecodeWireAck(body)
}

func (c *streamClient) close() {
	c.pw.Close()
	c.body.Close()
}

// TestBinaryIngestEquivalence is the binary-codec half of the loopback
// acceptance test: the same randomized stream ingested as binary
// one-shot posts and as one streaming connection yields byte-identical
// SSE output to the in-process reference (and hence to the NDJSON
// path, which TestLoopbackEquivalence pins to the same reference) —
// sequential and parallel.
func TestBinaryIngestEquivalence(t *testing.T) {
	raw := randomRaw(6000, 42)
	names := []string{"A", "B", "C", "D"}
	events := wireEvents(t, names, raw)
	finalWM := (raw[len(raw)-1].Time/1000)*1000 + 4000
	for _, par := range []int{1, 4} {
		for _, mode := range []string{"oneshot", "stream"} {
			t.Run(fmt.Sprintf("%s/parallelism=%d", mode, par), func(t *testing.T) {
				want := inProcessReference(t, testQueries, raw, finalWM, par)
				if len(want) == 0 {
					t.Fatal("reference produced no results")
				}
				_, ts := newTestServer(t, Config{Queries: testQueries, Parallelism: par})
				sub := subscribeSSE(t, ts.URL, "")

				accepted := 0
				if mode == "oneshot" {
					for i := 0; i < len(events); {
						j := min(i+137, len(events))
						status, body := postBin(t, ts.URL, binBody(names, events[i:j], -1))
						if status != http.StatusAccepted {
							t.Fatalf("ingest: status %d: %s", status, body)
						}
						if !strings.Contains(body, fmt.Sprintf(`"accepted": %d`, j-i)) {
							t.Fatalf("ingest response missing accepted count %d: %s", j-i, body)
						}
						i = j
						accepted = j
					}
				} else {
					c := dialStream(t, ts.URL, names)
					for i := 0; i < len(events); {
						j := min(i+137, len(events))
						ack := c.send(events[i:j], -1)
						if ack.Status != WireAckOK || ack.Accepted != int64(j-i) {
							t.Fatalf("ack %+v, want ok/%d", ack, j-i)
						}
						i = j
						accepted = j
					}
				}
				if accepted != len(events) {
					t.Fatalf("accepted %d of %d events", accepted, len(events))
				}
				status, body := postJSON(t, ts.URL+"/watermark", fmt.Sprintf(`{"watermark":%d}`, finalWM))
				if status != http.StatusAccepted {
					t.Fatalf("watermark: status %d: %s", status, body)
				}
				waitFor(t, "all results", func() bool { return sub.count() >= len(want) })
				got := sub.snapshot()
				if len(got) != len(want) {
					t.Fatalf("server pushed %d results, reference %d", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("result %d:\n server   %s\n inproc   %s", i, got[i], want[i])
					}
				}
				sub.cancel()
			})
		}
	}
}

// xorshiftEvents builds a strictly time-ordered pseudo-random event
// slice whose local type ids cover [1, nTypes].
func xorshiftEvents(seed uint64, n, nTypes int) []sharon.Event {
	x := seed*2654435761 + 1
	next := func() uint64 { x ^= x << 13; x ^= x >> 7; x ^= x << 17; return x }
	out := make([]sharon.Event, n)
	tm := int64(0)
	for i := range out {
		tm += 1 + int64(next()%97)
		out[i] = sharon.Event{
			Time: tm,
			Type: sharon.Type(next()%uint64(nTypes) + 1),
			Key:  sharon.GroupKey(next() % 13),
			Val:  float64(next()%1000) / 8,
		}
	}
	return out
}

// TestBinaryWireRoundTrip pins the codec itself: decode(encode(x))
// returns x, re-encoding the decoded batch is bit-exact, unknown table
// names drop their events with the count reported, and the frame
// watermark threads into both Batch.Watermark and the ordering floor.
func TestBinaryWireRoundTrip(t *testing.T) {
	names := []string{"A", "B", "C", "D"}
	lookup := make(map[string]sharon.Type, len(names))
	for i, n := range names {
		lookup[n] = sharon.Type(i + 1)
	}

	t.Run("bit-exact", func(t *testing.T) {
		events := xorshiftEvents(7, 300, len(names))
		wm := events[len(events)-1].Time + 5
		body := binBody(names, events, wm)
		b := GetBatch()
		defer PutBatch(b)
		if err := DecodeWireBatch(body, lookup, b); err != nil {
			t.Fatal(err)
		}
		if len(b.Events) != len(events) || b.Unknown != 0 || b.Watermark != wm {
			t.Fatalf("decoded %d events, unknown %d, wm %d; want %d, 0, %d",
				len(b.Events), b.Unknown, b.Watermark, len(events), wm)
		}
		for i := range events {
			if b.Events[i] != events[i] {
				t.Fatalf("event %d: %+v != %+v", i, b.Events[i], events[i])
			}
		}
		// The type table was built in registry order, so the decoded
		// sharon.Type values are the local ids: re-encoding the decoded
		// batch must reproduce the input bit for bit.
		re := binBody(names, b.Events, b.Watermark)
		if !bytes.Equal(re, body) {
			t.Fatalf("re-encode differs: %d vs %d bytes", len(re), len(body))
		}
	})

	t.Run("unknown-types-dropped", func(t *testing.T) {
		withGhost := append(append([]string{}, names...), "ghost")
		events := xorshiftEvents(11, 200, len(withGhost))
		ghosts := 0
		for _, e := range events {
			if int(e.Type) == len(withGhost) {
				ghosts++
			}
		}
		if ghosts == 0 {
			t.Fatal("test stream has no ghost-typed events")
		}
		b := GetBatch()
		defer PutBatch(b)
		if err := DecodeWireBatch(binBody(withGhost, events, -1), lookup, b); err != nil {
			t.Fatal(err)
		}
		if len(b.Events) != len(events)-ghosts || b.Unknown != int64(ghosts) {
			t.Fatalf("decoded %d events, unknown %d; want %d, %d",
				len(b.Events), b.Unknown, len(events)-ghosts, ghosts)
		}
	})

	t.Run("multi-frame-ordering", func(t *testing.T) {
		events := xorshiftEvents(3, 100, len(names))
		body := AppendWireTypeTable(AppendWireHeader(nil), names)
		body = AppendWireBatch(body, events[:50], -1)
		body = AppendWireBatch(body, events[50:], -1)
		b := GetBatch()
		defer PutBatch(b)
		if err := DecodeWireBatch(body, lookup, b); err != nil {
			t.Fatal(err)
		}
		if len(b.Events) != len(events) {
			t.Fatalf("decoded %d of %d events", len(b.Events), len(events))
		}
		// A second frame that dips at or below the first frame's last
		// event violates the cross-frame order, like a time-regressing
		// NDJSON line.
		bad := AppendWireTypeTable(AppendWireHeader(nil), names)
		bad = AppendWireBatch(bad, events[:50], -1)
		bad = AppendWireBatch(bad, events[49:], -1)
		if err := DecodeWireBatch(bad, lookup, GetBatch()); err == nil {
			t.Fatal("cross-frame order violation decoded cleanly")
		}
	})
}

// TestBinaryIngestRejections pins the failure surface of the one-shot
// binary path: every malformed body is refused with 400 before the
// engine sees anything, and an oversize body gets the same 413 (and
// metric) as an oversize NDJSON batch.
func TestBinaryIngestRejections(t *testing.T) {
	names := []string{"A", "B", "C", "D"}
	events := xorshiftEvents(5, 20, len(names))
	good := binBody(names, events, -1)

	corrupt := append([]byte{}, good...)
	corrupt[len(corrupt)-3] ^= 0x40

	outOfOrder := []sharon.Event{events[0], events[1]}
	outOfOrder[1].Time = events[0].Time
	badID := []sharon.Event{{Time: 1, Type: 99, Key: 1, Val: 1}}

	cases := []struct {
		name string
		body []byte
	}{
		{"bad-magic", append([]byte("NOPE"), good[4:]...)},
		{"bad-version", append(append([]byte(wireMagic), 99), good[WireHeaderLen:]...)},
		{"truncated-frame", good[:len(good)-3]},
		{"corrupt-crc", corrupt},
		{"batch-before-table", AppendWireBatch(AppendWireHeader(nil), events, -1)},
		{"out-of-order", binBody(names, outOfOrder, -1)},
		{"type-id-outside-table", binBody(names, badID, -1)},
		{"duplicate-time", binBody(names, []sharon.Event{
			{Time: 5, Type: 1, Key: 1, Val: 1}, {Time: 5, Type: 2, Key: 1, Val: 1},
		}, -1)},
	}
	_, ts := newTestServer(t, Config{Queries: testQueries})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := postBin(t, ts.URL, tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d (%s), want 400", status, body)
			}
		})
	}

	t.Run("oversize-413", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Queries: testQueries, MaxBatchBytes: 1024})
		big := binBody(names, xorshiftEvents(9, 2000, len(names)), -1)
		status, body := postBin(t, ts.URL, big)
		if status != http.StatusRequestEntityTooLarge {
			t.Fatalf("status = %d (%s), want 413", status, body)
		}
		status, body = doReq(t, "GET", ts.URL+"/metrics", "")
		if status != http.StatusOK || !strings.Contains(body, `"rejected_oversize": 1`) {
			t.Fatalf("metrics after oversize: %d %s", status, body)
		}
	})
}

// TestStreamOversizeAck pins the streaming 413-equivalent: a frame over
// MaxBatchBytes draws a terminal oversize ack (counted in the oversize
// metric) and ends the stream without the engine seeing the frame.
func TestStreamOversizeAck(t *testing.T) {
	names := []string{"A", "B", "C", "D"}
	_, ts := newTestServer(t, Config{Queries: testQueries, MaxBatchBytes: 1024})
	c := dialStream(t, ts.URL, names)
	c.sendRaw(AppendWireBatch(nil, xorshiftEvents(13, 2000, len(names)), -1))
	ack, err := c.tryReadAck()
	if err != nil {
		t.Fatalf("oversize ack: %v", err)
	}
	if ack.Status != WireAckOversize {
		t.Fatalf("ack status = %d, want oversize (%d)", ack.Status, WireAckOversize)
	}
	if _, err := c.tryReadAck(); err == nil {
		t.Fatal("stream still open after terminal oversize ack")
	}
	status, body := doReq(t, "GET", ts.URL+"/metrics", "")
	if status != http.StatusOK || !strings.Contains(body, `"rejected_oversize": 1`) {
		t.Fatalf("metrics after oversize: %d %s", status, body)
	}
}

// TestStreamBadFrameAck pins the malformed-frame policy on a stream: a
// bad frame draws a terminal bad ack instead of a silent drop.
func TestStreamBadFrameAck(t *testing.T) {
	names := []string{"A", "B", "C", "D"}
	_, ts := newTestServer(t, Config{Queries: testQueries})
	c := dialStream(t, ts.URL, names)
	c.sendRaw(AppendWireBatch(nil, []sharon.Event{{Time: 1, Type: 99, Key: 1, Val: 1}}, -1))
	ack, err := c.tryReadAck()
	if err != nil {
		t.Fatalf("bad-frame ack: %v", err)
	}
	if ack.Status != WireAckBad {
		t.Fatalf("ack status = %d, want bad (%d)", ack.Status, WireAckBad)
	}
}

// TestStreamBusyAck pins streaming backpressure: with the pump stalled
// and the queue full, a batch frame draws a busy ack after the ack
// deadline — the stream's 429 — and the same frame succeeds once the
// pump drains. Busy is the one non-terminal failure ack.
func TestStreamBusyAck(t *testing.T) {
	names := []string{"A", "B", "C", "D"}
	gate := make(chan struct{})
	released := false
	defer func() {
		if !released {
			close(gate)
		}
	}()
	_, ts := newTestServer(t, Config{
		Queries: testQueries, IngestQueue: 1, pumpGate: gate,
		streamAckAfter: 50 * time.Millisecond,
	})
	c := dialStream(t, ts.URL, names)
	events := xorshiftEvents(17, 8, len(names))

	// The pump holds the first consumed batch at the gate; the second
	// fills the one-deep queue; the third must come back busy.
	var ack WireAck
	for i := 0; i < 3; i++ {
		ack = c.send(events[i:i+1], -1)
		if i < 2 && ack.Status != WireAckOK {
			t.Fatalf("batch %d: ack status %d, want ok", i, ack.Status)
		}
	}
	if ack.Status != WireAckBusy {
		t.Fatalf("ack status = %d, want busy (%d)", ack.Status, WireAckBusy)
	}
	status, body := doReq(t, "GET", ts.URL+"/metrics", "")
	if status != http.StatusOK || !strings.Contains(body, `"rejected_backpressure": 1`) {
		t.Fatalf("metrics after busy: %d %s", status, body)
	}

	close(gate)
	released = true
	if ack = c.send(events[2:3], -1); ack.Status != WireAckOK {
		t.Fatalf("re-sent batch after drain: ack status %d, want ok", ack.Status)
	}
}
