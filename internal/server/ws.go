package server

import (
	"bufio"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Hand-rolled RFC 6455 WebSocket transport for /subscribe/ws — the
// module is intentionally dependency-free, so the handshake and frame
// codec live here. Only the server side of the protocol the broadcast
// tier needs is implemented: unmasked server→client text frames (which
// is what makes frame bytes shareable across every subscriber — see
// broadcast.go), ping keep-alives, pong/close handling on the client
// side of the conn, no extensions, no subprotocols.

const wsMagic = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// wsAccept computes the Sec-WebSocket-Accept token for a client key.
func wsAccept(key string) string {
	sum := sha1.Sum([]byte(key + wsMagic))
	return base64.StdEncoding.EncodeToString(sum[:])
}

// wsTextFrame renders one unmasked FIN text frame around payload.
func wsTextFrame(payload []byte) []byte {
	return wsFrame(0x1, payload)
}

// wsFrame renders one unmasked FIN frame with the given opcode.
func wsFrame(opcode byte, payload []byte) []byte {
	n := len(payload)
	var hdr []byte
	switch {
	case n < 126:
		hdr = []byte{0x80 | opcode, byte(n)}
	case n < 1<<16:
		hdr = []byte{0x80 | opcode, 126, byte(n >> 8), byte(n)}
	default:
		hdr = make([]byte, 10)
		hdr[0], hdr[1] = 0x80|opcode, 127
		binary.BigEndian.PutUint64(hdr[2:], uint64(n))
	}
	out := make([]byte, 0, len(hdr)+n)
	out = append(out, hdr...)
	return append(out, payload...)
}

// wsCloseFrame renders a close frame with the given status code.
func wsCloseFrame(code uint16) []byte {
	return wsFrame(0x8, []byte{byte(code >> 8), byte(code)})
}

// upgradeWS validates the handshake, hijacks the connection, and writes
// the 101 response (including any headers staged on w before the call —
// the API-version and deprecation headers ride along). The caller owns
// the returned conn.
func upgradeWS(w http.ResponseWriter, r *http.Request) (net.Conn, *bufio.Reader, error) {
	if !headerHasToken(r.Header, "Connection", "upgrade") ||
		!strings.EqualFold(r.Header.Get("Upgrade"), "websocket") {
		writeErr(w, http.StatusBadRequest, "websocket upgrade required")
		return nil, nil, fmt.Errorf("not an upgrade request")
	}
	if r.Header.Get("Sec-WebSocket-Version") != "13" {
		w.Header().Set("Sec-WebSocket-Version", "13")
		writeErr(w, http.StatusUpgradeRequired, "unsupported websocket version")
		return nil, nil, fmt.Errorf("bad ws version")
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		writeErr(w, http.StatusBadRequest, "missing Sec-WebSocket-Key")
		return nil, nil, fmt.Errorf("missing ws key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "websocket unsupported")
		return nil, nil, fmt.Errorf("no hijacker")
	}
	conn, brw, err := hj.Hijack()
	if err != nil {
		return nil, nil, err
	}
	var resp strings.Builder
	resp.WriteString("HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\nConnection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + wsAccept(key) + "\r\n")
	for k, vs := range w.Header() {
		for _, v := range vs {
			resp.WriteString(k + ": " + v + "\r\n")
		}
	}
	resp.WriteString("\r\n")
	if _, err := brw.WriteString(resp.String()); err != nil {
		conn.Close()
		return nil, nil, err
	}
	if err := brw.Flush(); err != nil {
		conn.Close()
		return nil, nil, err
	}
	return conn, brw.Reader, nil
}

func headerHasToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// wsSubConn adapts a hijacked WebSocket connection to the broadcast
// pool's SubConn. The internal mutex serializes the pool's bursts
// against pong replies from the read loop (the only two writers).
type wsSubConn struct {
	conn    net.Conn
	mu      sync.Mutex
	timeout time.Duration
}

var wsPing = wsFrame(0x9, []byte("hb"))

func (c *wsSubConn) WriteBurst(bufs [][]byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.timeout > 0 {
		//sharon:allow lockio (c.mu exists to serialize socket writes; deadline set first bounds the hold)
		_ = c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	}
	b := net.Buffers(bufs)
	//sharon:allow lockio (c.mu exists to serialize socket writes; the write deadline above bounds the hold)
	_, err := b.WriteTo(c.conn)
	return err
}

func (c *wsSubConn) WriteHeartbeat() error {
	return c.WriteBurst([][]byte{wsPing})
}

func (c *wsSubConn) WriteTerminal(reason string) {
	var msg []byte
	if reason == "" {
		msg = wsTextFrame([]byte(`{"event":"eof"}`))
	} else {
		msg = wsTextFrame([]byte(`{"event":"dropped","reason":"` + reason + `"}`))
	}
	_ = c.WriteBurst([][]byte{msg, wsCloseFrame(1000)})
}

func (c *wsSubConn) writePong(payload []byte) error {
	return c.WriteBurst([][]byte{wsFrame(0xA, payload)})
}

// wsReadLoop consumes client frames: pings get pongs, a close frame is
// echoed, data frames are discarded (the subscription stream is one
// way). Returns on close or any read error — the caller unsubscribes.
func wsReadLoop(br *bufio.Reader, c *wsSubConn) {
	for {
		opcode, payload, err := wsReadFrame(br)
		if err != nil {
			return
		}
		switch opcode {
		case 0x8: // close: echo and finish
			c.mu.Lock()
			//sharon:allow lockio (c.mu exists to serialize socket writes; 1s deadline bounds the hold)
			_ = c.conn.SetWriteDeadline(time.Now().Add(time.Second))
			//sharon:allow lockio (c.mu exists to serialize socket writes; the write deadline above bounds the hold)
			_, _ = c.conn.Write(wsCloseFrame(1000))
			c.mu.Unlock()
			return
		case 0x9:
			if c.writePong(payload) != nil {
				return
			}
		}
	}
}

// wsReadFrame reads one client frame. Client frames must be masked per
// RFC 6455 §5.1; control payloads are capped at 125 bytes by §5.5 and
// data payloads (which this server discards) at a defensive 1 MiB.
func wsReadFrame(br *bufio.Reader) (opcode byte, payload []byte, err error) {
	var hdr [2]byte
	if _, err = io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err
	}
	opcode = hdr[0] & 0x0F
	masked := hdr[1]&0x80 != 0
	n := int64(hdr[1] & 0x7F)
	switch n {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(br, ext[:]); err != nil {
			return 0, nil, err
		}
		n = int64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(br, ext[:]); err != nil {
			return 0, nil, err
		}
		n = int64(binary.BigEndian.Uint64(ext[:]))
	}
	if !masked {
		return 0, nil, fmt.Errorf("unmasked client frame")
	}
	if n > 1<<20 {
		return 0, nil, fmt.Errorf("oversized client frame (%d bytes)", n)
	}
	var mask [4]byte
	if _, err = io.ReadFull(br, mask[:]); err != nil {
		return 0, nil, err
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(br, payload); err != nil {
		return 0, nil, err
	}
	for i := range payload {
		payload[i] ^= mask[i%4]
	}
	return opcode, payload, nil
}
