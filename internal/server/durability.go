package server

import (
	"fmt"
	"time"

	sharon "github.com/sharon-project/sharon"
	"github.com/sharon-project/sharon/internal/metrics"
	"github.com/sharon-project/sharon/internal/persist"
)

// Durability: with Config.DataDir set, the server runs a write-ahead
// log plus periodic engine checkpoints, and a restart resumes exactly
// where the crashed process stopped.
//
// The invariants, in pump order:
//
//  1. Every applied pump step is logged before it touches the engine: a
//     RecBatch record holds the late-filtered events and the effective
//     watermark, a RecCtl record holds a live workload change with the
//     IDs and plan the original application chose. The write syscall
//     completes before the engine sees the step, so kill -9 can lose
//     queued-but-unapplied work (the client re-sends past the server's
//     published watermark) but never applied work.
//  2. A checkpoint is a consistent cut at the current watermark: the
//     engine snapshot (taken quiesced — the parallel executor barriers
//     its workers and merge stage), the emission sequence cursor, and
//     the replay ring. Everything at or below the watermark has been
//     emitted; everything above it is in the snapshot.
//  3. Restart = load newest valid checkpoint, replay the WAL tail
//     (records with seq > the checkpoint's cursor) through the same
//     apply path, then serve. Replay regenerates the exact emission
//     stream — same results, same sequence numbers — so the replay ring
//     is contiguous across the crash and a subscriber resuming with
//     ?after=<last seq> sees no gap and no duplicate.
//  4. Checkpoints never run while a live workload change is draining
//     its old system (two engines own disjoint window ranges then); the
//     WAL covers the migration, and the next interval checkpoints the
//     settled state.

// initDurability opens the WAL and, when a checkpoint exists, rebuilds
// the registry, workload, and engine state from it. Called from New
// before the pump starts; the pump replays the WAL tail as its first
// act, with /healthz reporting "recovering" until it finishes.
func (s *Server) initDurability() error {
	walOpts := persist.WALOptions{
		SegmentBytes: s.cfg.WALSegmentBytes,
		Fsync:        s.cfg.Fsync,
		FsyncEvery:   s.cfg.FsyncEvery,
		Logf:         s.cfg.Logf,
	}
	ck, err := persist.LoadLatestCheckpoint(s.cfg.DataDir, s.cfg.Logf)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	wal, err := persist.OpenWAL(s.cfg.DataDir, walOpts)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	// A failing boot discards the *Server; close the segment handle
	// instead of leaking it to GC finalization.
	fail := func(err error) error {
		wal.Close()
		return err
	}
	s.wal = wal
	s.appliedSeq = -1
	s.recovering.Store(true)
	if ck == nil {
		return nil // fresh directory, or WAL-only tail: pump replays from scratch
	}
	// A power failure can persist a checkpoint whose newest covered WAL
	// records never hit the disk (the torn tail truncated below the
	// cursor). Everything the surviving log holds is then covered by
	// the checkpoint, but appends must not reuse sequence numbers at or
	// below the cursor — the next recovery would skip them. Restart the
	// log just past the cursor.
	if ck.WALSeq >= wal.NextSeq() {
		s.cfg.Logf("wal ends at seq %d below checkpoint cursor %d; resetting log past the cursor", wal.NextSeq()-1, ck.WALSeq)
		if err := wal.Reset(ck.WALSeq + 1); err != nil {
			return fail(fmt.Errorf("server: wal reset: %w", err))
		}
	}

	if ck.Parallelism != s.cfg.Parallelism {
		return fail(fmt.Errorf("server: checkpoint was taken with -parallelism %d, running with %d (shard state is partitioned by worker count; restart with the recorded value)", ck.Parallelism, s.cfg.Parallelism))
	}
	if ck.Dynamic != s.cfg.Dynamic {
		return fail(fmt.Errorf("server: checkpoint was taken with -dynamic=%v, running with %v", ck.Dynamic, s.cfg.Dynamic))
	}
	// The checkpoint's workload wins over -query flags: it includes live
	// registrations the flags cannot know about.
	for _, name := range ck.RegistryNames {
		s.reg.Intern(name)
	}
	entries := make([]queryEntry, len(ck.Queries))
	for i, q := range ck.Queries {
		pq, err := sharon.ParseQuery(q.Text, s.reg)
		if err != nil {
			return fail(fmt.Errorf("server: checkpoint query %d: %w", q.ID, err))
		}
		pq.ID = q.ID
		entries[i] = queryEntry{ID: q.ID, Text: q.Text, Q: pq}
	}
	s.nextID = ck.NextQueryID

	cur, err := s.buildSystem(entries, s.configuredRates(workloadOf(entries)), ck.Plan, 0)
	if err != nil {
		return fail(fmt.Errorf("server: rebuild from checkpoint: %w", err))
	}
	if ck.State != nil {
		if err := cur.eng.Restore(ck.State); err != nil {
			cur.eng.Close()
			return fail(fmt.Errorf("server: restore engine state: %w", err))
		}
	}
	s.cur = cur
	s.wmState = ck.Watermark
	s.wm.Store(ck.Watermark)
	s.seq.Store(ck.NextEmitSeq)
	s.emitted.Store(ck.Emitted)
	s.ingested.Store(ck.EventsIngested)
	s.batches.Store(ck.Batches)
	s.typeCounts = ck.TypeCounts
	if s.typeCounts == nil {
		s.typeCounts = make(map[sharon.Type]float64)
	}
	s.countFrom = ck.CountFrom
	s.ring.Load(ck.Ring, ck.NextEmitSeq)
	// Reseed the broadcast log too, so ?after=N resume (and filtered
	// resume) is served across a restart from the same retained tail.
	s.hub.Seed(ck.Ring, ck.NextEmitSeq)
	s.appliedSeq = ck.WALSeq
	s.lastCkptAt.Store(ck.CreatedUnixNano)
	s.cfg.Logf("recovered checkpoint at wal seq %d, watermark %d, %d queries, emit seq %d",
		ck.WALSeq, ck.Watermark, len(entries), ck.NextEmitSeq)
	return nil
}

// recoverWAL replays the log tail on the pump goroutine. Replayed
// batches run through the same apply path as live ones, so the engine,
// the counters, and the emission stream (sequence numbers included) end
// up exactly where the crashed process had them.
func (s *Server) recoverWAL() error {
	start := time.Now()
	err := s.wal.Replay(s.appliedSeq, func(rec persist.Record) error {
		switch rec.Type {
		case persist.RecBatch:
			b, err := persist.DecodeBatchRecord(rec.Payload)
			if err != nil {
				return err
			}
			s.applyBatch(b.Events, b.Watermark)
			s.replayedBatches.Add(1)
			s.replayedEvents.Add(int64(len(b.Events)))
		case persist.RecCtl:
			c, err := persist.DecodeCtlRecord(rec.Payload)
			if err != nil {
				return err
			}
			if err := s.replayCtl(c); err != nil {
				return err
			}
		case persist.RecAdopt:
			a, err := persist.DecodeAdoptRecord(rec.Payload)
			if err != nil {
				return err
			}
			if err := s.replayAdopt(a); err != nil {
				return err
			}
		case persist.RecExtract:
			x, err := persist.DecodeExtractRecord(rec.Payload)
			if err != nil {
				return err
			}
			if err := s.replayExtract(x); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown wal record type %d at seq %d", rec.Type, rec.Seq)
		}
		s.appliedSeq = rec.Seq
		return nil
	})
	if err != nil {
		return fmt.Errorf("server: wal replay: %w", err)
	}
	if n := s.replayedBatches.Load(); n > 0 {
		s.cfg.Logf("replayed %d wal batches (%d events) in %s; watermark %d",
			n, s.replayedEvents.Load(), time.Since(start).Round(time.Millisecond), s.wmState)
	}
	return nil
}

// maybeCheckpoint writes a periodic checkpoint from the pump loop. The
// timer starts at boot (recovery resets it), so a freshly started
// server runs a full interval before its first cut.
func (s *Server) maybeCheckpoint() {
	if s.wal == nil || time.Since(s.lastCkptTimer) < s.cfg.CheckpointEvery {
		return
	}
	s.checkpoint(false)
}

// checkpoint writes one checkpoint and truncates the WAL behind it.
// Pump goroutine only. Skipped while a live workload change is still
// draining its old system (the WAL covers that span; see the package
// invariants above).
func (s *Server) checkpoint(final bool) {
	if s.wal == nil || s.old != nil {
		return
	}
	// The checkpoint's WAL cursor is only meaningful if every record at
	// or below it is on stable storage: sync before cutting, or a power
	// failure could persist a checkpoint pointing past the log's end.
	if err := s.wal.Sync(); err != nil {
		s.cfg.Logf("checkpoint: wal sync: %v", err)
		return
	}
	snap, err := s.cur.eng.Snapshot()
	if err != nil {
		s.cfg.Logf("checkpoint: snapshot: %v", err)
		return
	}
	entries := make([]persist.QueryEntry, len(s.cur.entries))
	for i, e := range s.cur.entries {
		entries[i] = persist.QueryEntry{ID: e.ID, Text: e.Text}
	}
	counts := make(map[sharon.Type]float64, len(s.typeCounts))
	for k, v := range s.typeCounts {
		counts[k] = v
	}
	ck := &persist.Checkpoint{
		CreatedUnixNano: time.Now().UnixNano(),
		WALSeq:          s.appliedSeq,
		Watermark:       s.wmState,
		NextEmitSeq:     s.seq.Load(),
		Emitted:         s.emitted.Load(),
		EventsIngested:  s.ingested.Load(),
		Batches:         s.batches.Load(),
		NextQueryID:     s.nextID,
		Parallelism:     s.cfg.Parallelism,
		Dynamic:         s.cfg.Dynamic,
		RegistryNames:   s.reg.Ordered(),
		Queries:         entries,
		Plan:            s.cur.plan,
		TypeCounts:      counts,
		CountFrom:       s.countFrom,
		Ring:            s.ring.Snapshot(),
		State:           snap,
	}
	path, size, err := persist.WriteCheckpoint(s.cfg.DataDir, ck)
	if err != nil {
		s.cfg.Logf("checkpoint: %v", err)
		return
	}
	s.lastCkptTimer = time.Now()
	s.lastCkptAt.Store(ck.CreatedUnixNano)
	s.lastCkptBytes.Store(size)
	s.checkpoints.Add(1)
	if err := s.wal.TruncateThrough(ck.WALSeq); err != nil {
		s.cfg.Logf("checkpoint: wal truncate: %v", err)
	}
	s.publishDurabilityStats()
	kind := "periodic"
	if final {
		kind = "final"
	}
	s.cfg.Logf("%s checkpoint at wal seq %d (watermark %d) -> %s", kind, ck.WALSeq, ck.Watermark, path)
}

// publishDurabilityStats refreshes the handler-visible WAL counters.
// Pump goroutine (the WAL is pump-owned).
func (s *Server) publishDurabilityStats() {
	if s.wal == nil {
		return
	}
	st := s.wal.Stats()
	s.walStats.Store(&st)
}

// durabilityStats assembles the /metrics durability section; handler
// goroutines (reads only atomics).
func (s *Server) durabilityStats() *metrics.DurabilityStatsJSON {
	if s.cfg.DataDir == "" {
		return nil
	}
	d := &metrics.DurabilityStatsJSON{
		FsyncPolicy:          s.cfg.Fsync.String(),
		Checkpoints:          s.checkpoints.Load(),
		LastCheckpointAgeSec: -1,
		LastCheckpointBytes:  s.lastCkptBytes.Load(),
		ReplayedBatches:      s.replayedBatches.Load(),
		ReplayedEvents:       s.replayedEvents.Load(),
		Recovering:           s.recovering.Load(),
	}
	if at := s.lastCkptAt.Load(); at > 0 {
		d.LastCheckpointAgeSec = time.Since(time.Unix(0, at)).Seconds()
	}
	if st := s.walStats.Load(); st != nil {
		d.WalBytes = st.Bytes
		d.WalSegments = st.Segments
		d.WalNextSeq = st.NextSeq
		d.WalAppended = st.Appended
		d.WalSyncs = st.Syncs
	}
	return d
}
