package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	sharon "github.com/sharon-project/sharon"
	"github.com/sharon-project/sharon/internal/metrics"
	"github.com/sharon-project/sharon/internal/obs"
	"github.com/sharon-project/sharon/internal/persist"
)

// DefaultQueries is the demo workload (one shared (C,D) segment over
// the A..D alphabet, 4s windows sliding 1s): what sharond serves when
// no queries are configured, what sharon-load's default event cycle
// matches, and what the sharon-bench "server" experiment measures —
// one definition so the committed BENCH_server.json trajectory keeps
// measuring the served shape.
var DefaultQueries = []string{
	"RETURN COUNT(*) PATTERN SEQ(A, B, C, D) WHERE [k] WITHIN 4s SLIDE 1s",
	"RETURN COUNT(*) PATTERN SEQ(C, D) WHERE [k] WITHIN 4s SLIDE 1s",
	"RETURN COUNT(*) PATTERN SEQ(A, B) WHERE [k] WITHIN 4s SLIDE 1s",
}

// Config configures a sharond server.
type Config struct {
	// Queries are the initial workload's query texts (SASE-style surface
	// language). At least one is required.
	Queries []string
	// Rates supplies per-type rates (by type name) for the optimizer's
	// benefit model; nil assumes uniform rates.
	Rates map[string]float64
	// EmitEmpty also pushes zero results for windows without matches.
	EmitEmpty bool
	// Parallelism selects the engine's shard worker count (see
	// sharon.Options.Parallelism; 1 = sequential, the default here —
	// deterministic push order across live workload changes).
	Parallelism int
	// Dynamic backs uniform workloads with a DynamicSystem, which also
	// re-optimizes the plan when measured event rates drift mid-stream.
	Dynamic bool
	// Adaptive switches the dynamic system to per-burst share-vs-split
	// decisions (sharon.DynamicOptions.Adaptive); implies Dynamic. The
	// detector state and transition counters surface on /metrics.
	Adaptive bool

	// MaxBatchBytes bounds an ingest request body (default 8 MiB);
	// larger requests are rejected with 413 before buffering.
	MaxBatchBytes int64
	// IngestQueue bounds the number of parsed batches queued ahead of
	// the engine (default 256). A full queue rejects ingestion with 429
	// — the explicit backpressure signal.
	IngestQueue int
	// SubscriberBuffer is deprecated: subscriptions no longer buffer
	// per-subscriber. Delivery is cursor-based over the shared broadcast
	// log, bounded by ReplayBuffer (a subscriber overrun by the log's
	// retention is disconnected with an explicit `dropped` frame). The
	// field is accepted and ignored so existing flag/config wiring keeps
	// working.
	SubscriberBuffer int
	// ReplayBuffer bounds the retained recent-emission window in results
	// (default 16384): the broadcast log that /subscribe?after=N resume
	// and slow-subscriber tolerance are served from, and the checkpoint
	// replay ring.
	ReplayBuffer int
	// FanoutWriters sizes the broadcast writer pool fanning frames out
	// to subscribers (default 4 goroutines).
	FanoutWriters int

	// DataDir enables durability: an append-only WAL of applied ingest
	// steps plus periodic engine checkpoints live under this directory,
	// and a restart recovers the serving state from them. Empty =
	// in-memory only (the pre-durability behavior).
	DataDir string
	// CheckpointEvery is the periodic checkpoint interval (default 10s).
	CheckpointEvery time.Duration
	// Fsync is the WAL sync policy (default persist.FsyncInterval);
	// FsyncEvery is the FsyncInterval period (default 1s).
	Fsync      persist.FsyncPolicy
	FsyncEvery time.Duration
	// WALSegmentBytes sets the WAL segment rotation size (default 16 MiB).
	WALSegmentBytes int64
	// HeartbeatEvery is the SSE keep-alive comment interval (default 15s).
	HeartbeatEvery time.Duration
	// WriteTimeout is the per-write deadline on subscription streams and
	// the write timeout of ListenAndServe's response writes (default 10s).
	WriteTimeout time.Duration
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
	// Logger receives structured operational logs. Nil bridges onto
	// Logf (so existing -v / test sinks keep every line); set it to a
	// real slog handler for leveled text/JSON output (sharond
	// -log-format).
	Logger *slog.Logger
	// TraceSpans bounds the always-on span ring served by
	// GET /debug/traces (default 1024 spans).
	TraceSpans int

	// streamAckAfter bounds how long a streaming-ingest batch waits for
	// queue space before the server acks busy (the stream's
	// 429-equivalent; default 1s). Unexported: tests shrink it to force
	// backpressure acks deterministically.
	streamAckAfter time.Duration

	// pumpGate, when non-nil, stalls the pump before each consumed
	// message until the channel yields (tests force queue buildup).
	pumpGate chan struct{}
	// recoveryGate, when non-nil, stalls the pump before WAL replay
	// until the channel yields (tests observe the recovering state).
	recoveryGate chan struct{}
}

func (c *Config) fill() {
	if c.Adaptive {
		c.Dynamic = true // adaptive mode runs on the dynamic system
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 8 << 20
	}
	if c.IngestQueue <= 0 {
		c.IngestQueue = 256
	}
	if c.ReplayBuffer <= 0 {
		c.ReplayBuffer = 16384
	}
	if c.FanoutWriters <= 0 {
		c.FanoutWriters = 4
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 10 * time.Second
	}
	if c.FsyncEvery <= 0 {
		c.FsyncEvery = time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 15 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.Parallelism == 0 {
		c.Parallelism = 1
	}
	if c.streamAckAfter <= 0 {
		c.streamAckAfter = time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Logger == nil {
		c.Logger = obs.NewLogfLogger(c.Logf)
	}
	if c.TraceSpans <= 0 {
		c.TraceSpans = 1024
	}
}

// pumpMsg is one unit of pump work: a parsed ingest batch or a
// control-plane request (live workload change). recycle, when non-nil,
// is the pooled batch backing batch.Events; the pump returns it to the
// pool after the step (safe because FeedBatch and the WAL encoder both
// copy events — nothing downstream retains the slice).
type pumpMsg struct {
	batch   Batch
	ctl     *ctlReq
	recycle *Batch
	// admitNano stamps when the message entered the ingest queue
	// (obs stage timing); 0 skips the queue/emit stage records.
	admitNano int64
}

// workloadView is the immutable snapshot handlers read lock-free.
type workloadView struct {
	entries []queryEntry
	queries map[int]*sharon.Query
	plan    string
	score   float64
	uniform bool
}

// Server is a running sharond instance: one pump goroutine owning the
// engine, a bounded ingest queue in front of it, and a hub fanning the
// engine's OnResult sink out to the subscriptions.
type Server struct {
	cfg    Config
	reg    *sharon.Registry
	hub    *Hub
	mux    *http.ServeMux
	start  time.Time
	log    *slog.Logger
	tracer *obs.Tracer

	// stages aggregates per-stage pipeline latency (see obs.go).
	stages serverStages
	// batchStamp is the admit time of the step the pump is currently
	// applying; the sink reads it to attribute emitted results to their
	// triggering batch (the ingest-to-emit "emit" stage).
	batchStamp atomic.Int64
	// connID numbers streaming-ingest connections for log correlation.
	connID atomic.Int64
	// lastWinTraced dedups window-close trace spans (one per window,
	// not one per (query, group) result).
	lastWinTraced atomic.Int64

	// Lock-free snapshots for the HTTP handlers.
	types atomic.Value // map[string]sharon.Type
	view  atomic.Value // *workloadView

	ingest   chan pumpMsg
	gate     sync.RWMutex // guards draining against in-flight enqueues
	draining bool
	drainReq chan struct{}
	pumpDone chan struct{}

	// Engine state, owned by the pump goroutine after New returns.
	cur         *builtSystem
	old         *builtSystem // draining side of a live workload change
	oldBoundary int64
	nextID      int
	wmState     int64 // stream watermark (max event time / punctuation)
	typeCounts  map[sharon.Type]float64
	countFrom   int64
	lastStatsAt time.Time

	// Durability (nil wal = disabled). The WAL, appliedSeq, and the
	// checkpoint timer are owned by the pump after recovery; the ring is
	// internally synchronized.
	wal           *persist.WAL
	ring          *ReplayRing
	appliedSeq    int64
	lastCkptTimer time.Time

	// Counters, written by the pump/sink, read by the handlers.
	seq             atomic.Int64
	emitted         atomic.Int64
	ingested        atomic.Int64
	droppedLate     atomic.Int64
	droppedUnknown  atomic.Int64
	batches         atomic.Int64
	rej429          atomic.Int64
	rej413          atomic.Int64
	migrations      atomic.Int64
	burstState      atomic.Int32 // exec.BurstState of the last decision
	shareTrans      atomic.Int64
	splitTrans      atomic.Int64
	prunedStarts    atomic.Int64
	wm              atomic.Int64
	maxAdvance      atomic.Int64
	peakStates      atomic.Int64
	groupsLive      atomic.Int64
	parStats        atomic.Pointer[metrics.ParallelStatsJSON]
	runErr          atomic.Value // string
	recovering      atomic.Bool
	replayedBatches atomic.Int64
	replayedEvents  atomic.Int64
	checkpoints     atomic.Int64
	lastCkptAt      atomic.Int64
	lastCkptBytes   atomic.Int64
	walStats        atomic.Pointer[persist.WALStats]
}

// New builds the workload, starts the engine and the pump, and returns
// a server ready to have Handler served. Stop it with Drain.
//
// With Config.DataDir set, New loads the newest checkpoint (its
// workload — including live-registered queries — overrides
// Config.Queries) and the pump replays the WAL tail before consuming
// new work; /healthz reports "recovering" (503) until replay completes.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	s := &Server{
		cfg:           cfg,
		reg:           sharon.NewRegistry(),
		ring:          NewReplayRing(cfg.ReplayBuffer),
		start:         time.Now(),
		ingest:        make(chan pumpMsg, cfg.IngestQueue),
		drainReq:      make(chan struct{}),
		pumpDone:      make(chan struct{}),
		wmState:       -1,
		typeCounts:    make(map[sharon.Type]float64),
		countFrom:     -1,
		appliedSeq:    -1,
		lastCkptTimer: time.Now(),
	}
	s.log = cfg.Logger
	s.tracer = obs.NewTracer(cfg.TraceSpans)
	s.hub = NewHub(HubOptions{
		Writers:        cfg.FanoutWriters,
		Retain:         cfg.ReplayBuffer,
		HeartbeatEvery: cfg.HeartbeatEvery,
		WriteTimeout:   cfg.WriteTimeout,
		FanoutNs:       &s.stages.fanout,
	})
	s.wm.Store(-1)
	s.lastWinTraced.Store(-1)

	if cfg.DataDir != "" {
		if err := s.initDurability(); err != nil {
			return nil, err
		}
	}
	if s.cur == nil { // no checkpoint: compile the configured workload
		// A boot failure past this point discards the server; the WAL
		// handle initDurability may have opened must not leak with it.
		fail := func(err error) (*Server, error) {
			if s.wal != nil {
				s.wal.Close()
			}
			return nil, err
		}
		if len(cfg.Queries) == 0 {
			return fail(fmt.Errorf("server: no queries configured"))
		}
		entries := make([]queryEntry, len(cfg.Queries))
		for i, text := range cfg.Queries {
			q, err := sharon.ParseQuery(text, s.reg)
			if err != nil {
				return fail(fmt.Errorf("server: query %d: %w", i, err))
			}
			q.ID = i
			entries[i] = queryEntry{ID: i, Text: text, Q: q}
		}
		s.nextID = len(entries)

		cur, err := s.buildSystem(entries, s.configuredRates(workloadOf(entries)), nil, 0)
		if err != nil {
			return fail(fmt.Errorf("server: %w", err))
		}
		s.cur = cur
	}
	s.publishView()
	s.publishDurabilityStats()
	s.routes()
	go s.pump()
	return s, nil
}

// publishMaxAdvance bounds how far one watermark message may advance
// the stream watermark past the newest event: 16 of the workload's
// largest (window length + slide). Closing windows costs one iteration
// per slide, so an unbounded client-supplied watermark (a stray epoch
// timestamp, a hostile huge value) would livelock the pump closing
// quintillions of empty windows and poison the stream by making every
// future event late; the cap keeps each message's work bounded while
// still letting a tail-closing watermark (last event + window length)
// or a quiet-stream client advancing in steps pass freely. Called from
// New and applyCtl (pump); read by handlers.
func (s *Server) publishMaxAdvance() {
	var m int64
	for _, e := range s.cur.entries {
		if v := e.Q.Window.Length + e.Q.Window.Slide; v > m {
			m = v
		}
	}
	s.maxAdvance.Store(16 * m)
}

// configuredRates maps Config.Rates onto the workload's types; nil
// Config.Rates yields uniform rates.
func (s *Server) configuredRates(w sharon.Workload) sharon.Rates {
	rates := sharon.Rates{}
	for t := range w.Types() {
		rates[t] = 1
	}
	for name, v := range s.cfg.Rates {
		if t := s.reg.Lookup(name); t != sharon.NoType {
			rates[t] = v
		}
	}
	return rates
}

// publishView refreshes the handler-visible workload/type snapshots.
// Called from New and from the pump (applyCtl); handlers only read.
func (s *Server) publishView() {
	s.publishMaxAdvance()
	v := &workloadView{
		entries: append([]queryEntry(nil), s.cur.entries...),
		queries: make(map[int]*sharon.Query, len(s.cur.entries)),
		uniform: s.cur.uniform,
		score:   s.cur.score,
	}
	for _, e := range s.cur.entries {
		v.queries[e.ID] = e.Q
	}
	if s.cur.plan != nil {
		v.plan = s.cur.plan.Format(s.reg, workloadOf(s.cur.entries))
	}
	s.view.Store(v)

	lookup := make(map[string]sharon.Type)
	for _, name := range s.reg.Names() {
		lookup[name] = s.reg.Lookup(name)
	}
	s.types.Store(lookup)
}

func (s *Server) loadView() *workloadView { return s.view.Load().(*workloadView) }

// --- pump ---

// pump is the single goroutine that owns the engine: it consumes
// parsed batches and control requests from the bounded queue, feeds the
// system(s), advances the watermark, and — on drain — flushes every
// open window into the hub before shutting the subscriptions down.
//
//sharon:pump
func (s *Server) pump() {
	defer close(s.pumpDone)
	if s.wal != nil {
		if s.cfg.recoveryGate != nil {
			<-s.cfg.recoveryGate
		}
		if err := s.recoverWAL(); err != nil {
			s.fail(err)
		}
		s.recovering.Store(false)
		s.publishDurabilityStats()
	}
	// On the FsyncInterval policy, a quiet stream's WAL tail must still
	// reach stable storage within FsyncEvery: Append-driven syncing
	// stops the moment traffic does, so the pump ticks an idle sync.
	var idleSync <-chan time.Time
	if s.wal != nil && s.cfg.Fsync == persist.FsyncInterval {
		t := time.NewTicker(s.cfg.FsyncEvery)
		defer t.Stop()
		idleSync = t.C
	}
	for {
		select {
		case msg := <-s.ingest:
			if s.cfg.pumpGate != nil {
				<-s.cfg.pumpGate
			}
			s.step(msg)
			PutBatch(msg.recycle)
		case <-idleSync:
			if err := s.wal.SyncIfDirty(); err != nil {
				s.fail(err)
			}
		case <-s.drainReq:
			for {
				select {
				case msg := <-s.ingest:
					s.step(msg)
					PutBatch(msg.recycle)
				default:
					s.finish()
					return
				}
			}
		}
	}
}

// step executes one pump message: log-then-apply for batches, with
// control frames dispatched to their own logged apply paths.
//
//sharon:pump
func (s *Server) step(msg pumpMsg) {
	stepStart := time.Now()
	if msg.admitNano > 0 {
		s.stages.queue.Record(stepStart.UnixNano() - msg.admitNano)
		s.batchStamp.Store(msg.admitNano)
	} else {
		s.batchStamp.Store(stepStart.UnixNano())
	}
	if msg.ctl != nil {
		switch {
		case msg.ctl.adopt != nil:
			s.applyAdopt(msg.ctl)
		case msg.ctl.extract != nil:
			s.applyExtract(msg.ctl)
		default:
			s.applyCtl(msg.ctl)
		}
		return
	}
	b := msg.batch
	// Drop late events: the watermark is a promise already made to the
	// engine; a slow client replaying the past cannot corrupt the run.
	// After a restart the watermark comes back from the checkpoint+WAL,
	// so a client re-sending past the published watermark deduplicates
	// here — the delivery-retry half of exactly-once ingestion.
	events := b.Events
	for len(events) > 0 && events[0].Time <= s.wmState {
		events = events[1:]
		s.droppedLate.Add(1)
	}
	// Resolve the effective watermark against the post-batch stream
	// position so the logged record captures exactly what is applied.
	base := s.wmState
	if len(events) > 0 {
		base = events[len(events)-1].Time
	}
	wm := int64(-1)
	if v := s.clampWatermarkFrom(base, b.Watermark); v > base {
		wm = v
	}
	if len(events) == 0 && wm < 0 {
		return // fully late / no-op step: nothing to log or apply
	}
	// Log before apply: a crash after this point replays the step.
	if s.wal != nil {
		seq, err := s.wal.Append(persist.RecBatch, persist.EncodeBatchRecord(persist.BatchRecord{Events: events, Watermark: wm}))
		if err != nil {
			s.fail(err)
			return
		}
		s.appliedSeq = seq
	}
	applyStart := time.Now()
	s.applyBatch(events, wm)
	if len(events) > 0 {
		// Recorded under the same condition applyBatch counts a batch, so
		// the apply stage's count equals the batches counter for live
		// traffic — the invariant the CI smoke jobs assert.
		s.stages.apply.Record(time.Since(applyStart).Nanoseconds())
		s.tracer.Record(obs.Span{
			Kind:      "batch",
			Start:     s.batchStamp.Load(),
			DurNs:     time.Now().UnixNano() - s.batchStamp.Load(),
			Batch:     s.batches.Load(),
			Events:    int64(len(events)),
			Watermark: s.wmState,
		})
	}
	s.maybeCheckpoint()
	s.punctuate()
}

// punctuate publishes a watermark punctuation control frame after an
// applied step: "every result for windows ending at or before W has
// been delivered". The cluster router's merge frontier is built on
// these markers. Costs nothing without punctuating subscribers; with a
// parallel engine the pump quiesces the merge stage first so the
// marker cannot overtake the results it covers.
func (s *Server) punctuate() {
	if s.hub.PunctCount() == 0 {
		return
	}
	if s.old != nil {
		if err := s.old.eng.Quiesce(); err != nil {
			s.fail(err)
			return
		}
	}
	if err := s.cur.eng.Quiesce(); err != nil {
		s.fail(err)
		return
	}
	s.hub.PublishCtl("wm", fmt.Appendf(nil, `{"watermark":%d}`, s.wmState))
}

// applyBatch feeds one late-filtered batch and effective watermark into
// the engines: the single apply path shared by live ingestion and WAL
// replay, so a replayed step is indistinguishable from the original.
//
//sharon:applies
func (s *Server) applyBatch(events []sharon.Event, wm int64) {
	// Replay defense: the records are logged post-filter, but a step is
	// only correct against the watermark it was logged under.
	for len(events) > 0 && events[0].Time <= s.wmState {
		events = events[1:]
	}
	if len(events) > 0 {
		if s.countFrom < 0 {
			s.countFrom = events[0].Time
		}
		for _, e := range events {
			s.typeCounts[e.Type]++
		}
		if err := s.feed(events); err != nil {
			s.fail(err)
			return
		}
		s.ingested.Add(int64(len(events)))
		s.batches.Add(1)
		s.wmState = events[len(events)-1].Time
	}
	if wm > s.wmState {
		s.wmState = wm
		// Draining system first, as in feed/finish: its windows precede
		// the boundary, so a watermark straddling a migration must emit
		// them before the current system's.
		if s.old != nil {
			s.old.eng.AdvanceWatermark(wm)
		}
		s.cur.eng.AdvanceWatermark(wm)
	}
	s.completeHandoff()
	s.publishEngineStats(false)
}

// feed routes one late-filtered, time-ordered batch into the current
// system and — during a live workload change — the draining one.
func (s *Server) feed(events []sharon.Event) error {
	if s.old != nil {
		if err := s.old.eng.FeedBatch(events); err != nil {
			return err
		}
	}
	return s.cur.eng.FeedBatch(events)
}

// clampWatermarkFrom bounds a requested watermark to the given stream
// position plus the per-message advancement cap (see
// publishMaxAdvance). The clamp is sound — a watermark is a lower-bound
// promise, so honoring less of it never corrupts results — and a
// legitimate client advancing a quiet stream simply sends the next
// watermark message.
func (s *Server) clampWatermarkFrom(base, wm int64) int64 {
	if wm < 0 {
		return wm
	}
	if base < 0 {
		base = 0
	}
	if limit := base + s.maxAdvance.Load(); wm > limit {
		s.log.Warn("watermark clamped", "requested", wm, "clamped_to", limit, "max_advance", s.maxAdvance.Load())
		return limit
	}
	return wm
}

// completeHandoff retires the draining system once the watermark passed
// its last owned window ([.., boundary-1]); Flush emits those windows
// through its capped sink, never the boundary or later.
func (s *Server) completeHandoff() {
	if s.old == nil || s.wmState < s.old.win.End(s.oldBoundary-1) {
		return
	}
	if err := s.old.eng.Flush(); err != nil {
		s.fail(err)
	}
	s.old.eng.Close()
	s.old = nil
}

// publishEngineStats refreshes the /metrics gauges that require
// touching pump-owned engine state. PeakMemoryStates scans every live
// aggregate state on the sequential path, so the refresh is rate-
// limited to twice a second rather than paid per batch; the watermark
// gauge is a cheap atomic and always current.
func (s *Server) publishEngineStats(force bool) {
	s.wm.Store(s.wmState)
	if !force && time.Since(s.lastStatsAt) < 500*time.Millisecond {
		return
	}
	s.lastStatsAt = time.Now()
	s.peakStates.Store(s.cur.eng.PeakMemoryStates())
	s.groupsLive.Store(s.cur.eng.GroupCount())
	s.parStats.Store(metrics.WireParallelStats(s.cur.eng.ParallelStats()))
	if s.cur.dyn != nil {
		// Safe here: publishEngineStats runs on the pump goroutine, which
		// owns the sequential executor (the parallel path reports 0 until
		// drained, like PeakMemoryStates).
		s.prunedStarts.Store(s.cur.dyn.PrunedStarts())
	}
}

// fail records an engine error. The late filter makes ordering errors
// unreachable, so any error here is a server bug surfaced on /healthz.
func (s *Server) fail(err error) {
	s.log.Error("engine error", "err", err)
	s.runErr.CompareAndSwap(nil, err.Error())
}

// finish is the drain tail. Without durability it flushes every open
// window into the subscriptions (the stream ends here, emit what we
// have). With durability the open windows are the next incarnation's
// state: finish writes a final checkpoint instead of flushing, so a
// SIGTERM'd node hands its exact position to its successor and no
// window is ever emitted twice — once partial at drain, once complete
// after restart — across the pair.
func (s *Server) finish() {
	if s.wal != nil {
		s.publishEngineStats(true)
		s.checkpoint(true) // no-op while a workload change drains; the WAL covers it
		if err := s.wal.Close(); err != nil {
			s.log.Error("wal close", "err", err)
		}
		s.publishDurabilityStats()
		if s.old != nil {
			s.old.eng.Close()
			s.old = nil
		}
		s.cur.eng.Close()
		s.hub.Shutdown()
		s.log.Info("drained (durable)", "events", s.ingested.Load(), "results", s.emitted.Load(), "wal_seq", s.appliedSeq)
		return
	}
	if s.old != nil {
		if err := s.old.eng.Flush(); err != nil {
			s.fail(err)
		}
		s.old.eng.Close()
		s.old = nil
	}
	if err := s.cur.eng.Flush(); err != nil {
		s.fail(err)
	}
	s.cur.eng.Close()
	s.publishEngineStats(true)
	s.hub.Shutdown()
	s.log.Info("drained", "events", s.ingested.Load(), "results", s.emitted.Load())
}

// measuredRates converts the pump's observed per-type counts into
// rates for re-optimization; nil when the stream is too young.
func (s *Server) measuredRates() sharon.Rates {
	if s.countFrom < 0 || s.wmState <= s.countFrom {
		return nil
	}
	span := float64(s.wmState-s.countFrom) / sharon.TicksPerSecond
	rates := make(sharon.Rates, len(s.typeCounts))
	for t, c := range s.typeCounts {
		rates[t] = c / span
	}
	return rates
}

// Drain stops ingestion, flushes every open window into the
// subscriptions, and ends them with an eof frame. It returns when the
// pump finished or ctx expired. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.gate.Lock()
	already := s.draining
	s.draining = true
	s.gate.Unlock()
	if !already {
		close(s.drainReq)
	}
	select {
	case <-s.pumpDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// --- HTTP ---

// Handler returns the server's HTTP handler (for tests and embedding;
// ListenAndServe wraps it with an http.Server).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves the handler on addr with bounded request
// reading, shutting the listener down after ctx is cancelled and the
// engine drained. Subscription streams are long-lived, so the server's
// global WriteTimeout stays 0 and every write sets its own deadline
// (Config.WriteTimeout) through http.ResponseController instead.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	hs := &http.Server{
		Addr:              addr,
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.log.Info("draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		s.log.Error("drain", "err", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	return hs.Shutdown(shutCtx)
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	s.mux.HandleFunc("POST /ingest", s.handleIngest)
	s.mux.HandleFunc("POST /ingest/stream", s.handleIngestStream)
	s.mux.HandleFunc("POST /watermark", s.handleWatermark)
	s.mux.HandleFunc("GET /subscribe", s.handleSubscribe)
	s.mux.HandleFunc("GET /subscribe/ws", s.handleSubscribeWS)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /queries", s.handleQueriesGet)
	s.mux.HandleFunc("POST /queries", s.handleQueriesPost)
	s.mux.HandleFunc("DELETE /queries/{id}", s.handleQueriesDelete)
	s.mux.HandleFunc("POST /cluster/extract", s.handleClusterExtract)
	s.mux.HandleFunc("POST /cluster/adopt", s.handleClusterAdopt)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `sharond — shared online event sequence aggregation server

POST   /ingest        NDJSON events {"type":"A","time":1200,"key":7,"val":1.5}
                      and watermarks {"watermark":5000}; 429 = backpressure;
                      Content-Type application/x-sharon-batch selects the
                      binary batch codec (see README "Wire formats")
POST   /ingest/stream long-lived binary ingest: one request, many CRC-framed
                      batches, per-batch acks (busy = backpressure)
POST   /watermark     {"watermark":5000} — close windows ending at or before it
GET    /subscribe     SSE result stream; repeatable query=/group=/type= filters,
                      after=N or Last-Event-ID resume; data: frames carry
                      {"seq","query","win","start","end","group","count","value"}
GET    /subscribe/ws  the same stream over WebSocket (same filters and resume)
GET    /queries       registered queries + sharing plan
POST   /queries       {"query":"RETURN ..."} — live registration (plan diff in response)
DELETE /queries/{id}  live deregistration
GET    /metrics       counters + per-stage latency histograms; JSON by default,
                      Prometheus text via ?format=prometheus or Accept: text/plain
GET    /debug/traces  recent pipeline spans (batch apply, window emit) as JSON
GET    /healthz       ok | draining
POST   /cluster/extract  cluster rebalance: cut a hash range out (router-driven)
POST   /cluster/adopt    cluster rebalance: graft a hash range in (router-driven)
`)
}

// enqueue pushes a pump message under the drain gate; it reports
// whether the message was accepted and writes the refusal otherwise.
// The gate is held only for the drain check and the non-blocking send;
// the HTTP refusal (network I/O) is written after the release so a
// slow client can never stall Drain's write-side acquire.
func (s *Server) enqueue(w http.ResponseWriter, msg pumpMsg) bool {
	accepted, draining := s.tryEnqueue(msg)
	switch {
	case accepted:
		return true
	case draining:
		writeErr(w, http.StatusServiceUnavailable, "draining")
	default:
		s.rej429.Add(1)
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "ingest queue full (%d batches); retry", cap(s.ingest))
	}
	return false
}

// tryEnqueue is the transport-neutral core of enqueue: a non-blocking
// send under the drain gate, shared by the HTTP refusal path above and
// the streaming-ingest ack loop (which retries instead of refusing).
func (s *Server) tryEnqueue(msg pumpMsg) (accepted, draining bool) {
	s.gate.RLock()
	draining = s.draining
	if !draining {
		select {
		case s.ingest <- msg:
			accepted = true
		default:
		}
	}
	s.gate.RUnlock()
	return accepted, draining
}

// IsBatchContentType reports whether ct selects the binary batch
// codec (media type match, parameters ignored).
func IsBatchContentType(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == BatchContentType
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBytes)
	lookup := s.types.Load().(map[string]sharon.Type)
	batch := GetBatch()
	decodeStart := time.Now()
	var err error
	var decodeStage *obs.Histogram
	if IsBatchContentType(r.Header.Get("Content-Type")) {
		// Binary one-shot: the body is a header + CRC frames. Reading it
		// whole before decoding keeps the 413 boundary identical to the
		// NDJSON path (MaxBytesReader fires before any decode).
		decodeStage = &s.stages.decodeBinary
		var data []byte
		if data, err = io.ReadAll(body); err == nil {
			err = DecodeWireBatch(data, lookup, batch)
		}
	} else {
		decodeStage = &s.stages.decodeNDJSON
		err = batch.ReadNDJSON(body, lookup)
	}
	if err != nil {
		PutBatch(batch)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.rej413.Add(1)
			writeErr(w, http.StatusRequestEntityTooLarge, "batch exceeds %d bytes", s.cfg.MaxBatchBytes)
			return
		}
		writeErr(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	decodeStage.Record(time.Since(decodeStart).Nanoseconds())
	// Counters are read before enqueue: once the pump has the message it
	// may recycle the batch concurrently with this handler's response.
	accepted, unknown := len(batch.Events), batch.Unknown
	s.droppedUnknown.Add(unknown)
	if accepted == 0 && batch.Watermark < 0 {
		PutBatch(batch)
		writeJSON(w, http.StatusOK, map[string]any{"accepted": 0, "dropped_unknown_type": unknown})
		return
	}
	if !s.enqueue(w, pumpMsg{batch: *batch, recycle: batch, admitNano: time.Now().UnixNano()}) {
		PutBatch(batch)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"accepted":             accepted,
		"dropped_unknown_type": unknown,
		"queue_depth":          len(s.ingest),
	})
}

func (s *Server) handleWatermark(w http.ResponseWriter, r *http.Request) {
	var line IngestLine
	body := http.MaxBytesReader(w, r.Body, 4096)
	if err := json.NewDecoder(body).Decode(&line); err != nil || line.Watermark == nil {
		writeErr(w, http.StatusBadRequest, `want {"watermark":<ticks>}`)
		return
	}
	if !s.enqueue(w, pumpMsg{batch: Batch{Watermark: *line.Watermark}, admitNano: time.Now().UnixNano()}) {
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"watermark": *line.Watermark})
}

func (s *Server) streamOptions() StreamOptions {
	return StreamOptions{
		Hub: s.hub,
		QueryKnown: func(id int) bool {
			_, ok := s.loadView().queries[id]
			return ok
		},
		Watermark: s.wm.Load,
	}
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	ServeStream(w, r, s.streamOptions())
}

func (s *Server) handleSubscribeWS(w http.ResponseWriter, r *http.Request) {
	ServeStreamWS(w, r, s.streamOptions())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.gate.RLock()
	draining := s.draining
	s.gate.RUnlock()
	v := s.loadView()
	st := metrics.ServerStats{
		UptimeSec:                time.Since(s.start).Seconds(),
		Queries:                  len(v.entries),
		Parallelism:              s.cfg.Parallelism,
		EventsIngested:           s.ingested.Load(),
		EventsDroppedLate:        s.droppedLate.Load(),
		EventsDroppedUnknownType: s.droppedUnknown.Load(),
		Batches:                  s.batches.Load(),
		RejectedBackpressure:     s.rej429.Load(),
		RejectedOversize:         s.rej413.Load(),
		IngestQueueDepth:         len(s.ingest),
		IngestQueueCap:           cap(s.ingest),
		Watermark:                s.wm.Load(),
		ResultsEmitted:           s.emitted.Load(),
		ResultsDelivered:         s.hub.DeliveredResults(),
		Subscribers:              s.hub.Count(),
		SlowConsumerDisconnects:  s.hub.SlowDrops(),
		FanoutFramesEncoded:      s.hub.Encoded(),
		FanoutFramesDelivered:    s.hub.Delivered(),
		FanoutDroppedSlow:        s.hub.SlowDrops(),
		FanoutDroppedFiltered:    s.hub.FilteredDrops(),
		Migrations:               s.migrations.Load(),
		ShareTransitions:         s.shareTrans.Load(),
		SplitTransitions:         s.splitTrans.Load(),
		PrunedStarts:             s.prunedStarts.Load(),
		PeakLiveStates:           s.peakStates.Load(),
		GroupsLive:               s.groupsLive.Load(),
		Draining:                 draining,
		Stages:                   s.stages.summaries(),
		Parallel:                 s.parStats.Load(),
		Durability:               s.durabilityStats(),
	}
	if s.cfg.Adaptive {
		st.BurstState = sharon.BurstState(s.burstState.Load()).String()
	}
	if obs.MetricsFormat(r) == "prometheus" {
		s.writeProm(w, st)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if errv := s.runErr.Load(); errv != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"status": "error", "error": errv.(string)})
		return
	}
	// A replaying node is not ready for traffic: load balancers must not
	// route to it until the WAL tail has been re-applied.
	if s.recovering.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":           "recovering",
			"replayed_batches": s.replayedBatches.Load(),
		})
		return
	}
	s.gate.RLock()
	draining := s.draining
	s.gate.RUnlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
