package server

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sharon-project/sharon/internal/obs"
)

// Hub is the broadcast egress core shared by sharond and the cluster
// router: Publish encodes each result ONCE into a shared immutable
// frame (SSE and WebSocket renderings both) on a bounded broadcast log,
// and a small pool of writer goroutines fans the log out to N
// subscribers by walking per-subscriber cursors (see broadcast.go).
// Publish/PublishCtl are called from the engine's sink (pump goroutine,
// or the parallel executor's merge goroutine) and never block;
// Subscribe/Unsubscribe come from HTTP handler goroutines.
type Hub struct {
	mu       sync.Mutex
	frames   []bframe
	head     int   // index of the oldest retained frame in frames
	firstIdx int64 // log index of frames[head]
	results  int   // retained result frames (the retention unit)
	nextSeq  int64 // seq after the newest appended result
	retain   int
	closed   bool
	subsN    int
	punctN   int
	writers  []*bwriter
	nextW    int

	hbEvery      time.Duration
	writeTimeout time.Duration
	fanoutNs     *obs.Histogram

	encoded          atomic.Int64
	delivered        atomic.Int64
	deliveredResults atomic.Int64
	slowDrops        atomic.Int64
	filteredDrops    atomic.Int64
}

// HubOptions size the broadcast tier.
type HubOptions struct {
	// Writers is the fan-out writer pool size (0 = 4).
	Writers int
	// Retain bounds the log by retained result frames (0 = 16384);
	// doubles as the resumable-cursor horizon.
	Retain int
	// HeartbeatEvery is the keep-alive interval on idle subscriptions
	// (0 disables heartbeats).
	HeartbeatEvery time.Duration
	// WriteTimeout is the per-burst write deadline handed to transport
	// connections.
	WriteTimeout time.Duration
	// FanoutNs, when non-nil, records publish-to-socket-write latency
	// (nanoseconds) for each live frame — the pipeline's fan-out stage.
	FanoutNs *obs.Histogram
}

// NewHub starts a hub and its writer pool.
func NewHub(o HubOptions) *Hub {
	if o.Writers <= 0 {
		o.Writers = 4
	}
	if o.Retain <= 0 {
		o.Retain = 16384
	}
	h := &Hub{
		retain:       o.Retain,
		hbEvery:      o.HeartbeatEvery,
		writeTimeout: o.WriteTimeout,
		fanoutNs:     o.FanoutNs,
	}
	hbTick := o.HeartbeatEvery / 2
	if hbTick <= 0 {
		hbTick = time.Second
	}
	for i := 0; i < o.Writers; i++ {
		w := &bwriter{h: h, wake: make(chan struct{}, 1)}
		h.writers = append(h.writers, w)
		go w.run(hbTick)
	}
	return h
}

// Publish appends one encoded result to the broadcast log as a shared
// frame and wakes the writer pool. The append is bookkeeping plus
// non-blocking wakes — Publish never parks while its caller holds a
// lock, and all socket I/O happens on the pool. at is the publisher's
// emit stamp (Unix nanoseconds, 0 = unstamped) carried on the frame for
// fan-out timing — a passed-in value, so this function stays clock-free
// and deterministic.
//
//sharon:locksafe
//sharon:deterministic
func (h *Hub) Publish(query int, group int64, seq int64, payload []byte, at int64) {
	fr := renderResult(query, group, seq, payload, at)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.appendLocked(fr)
	h.mu.Unlock()
	h.encoded.Add(1)
	h.wakeAll()
}

// PublishCtl appends one control frame (SSE event `name` — "wm"
// watermark punctuation, "adopted" rebalance markers) to the log. Only
// subscriptions whose kind mask includes ctl frames receive it; like
// results it is rendered once and shared. Never blocks.
//
//sharon:locksafe
//sharon:deterministic
func (h *Hub) PublishCtl(name string, payload []byte) {
	fr := renderCtl(name, payload)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.appendLocked(fr)
	h.mu.Unlock()
	h.encoded.Add(1)
	h.wakeAll()
}

func (h *Hub) wakeAll() {
	for _, w := range h.writers {
		w.kick()
	}
}

// Subscribe attaches a subscription and maps its resume cursor onto the
// log under one lock (attach order is log order, so no snapshot/dedup
// dance is needed). The subscription is inert until Start hands it the
// transport connection — letting handlers order status/headers before
// the pool's first write. Returns *GapError when the resume cursor has
// aged out (handler: 410 + Sharon-Oldest-Seq) and errHubClosed after
// shutdown.
func (h *Hub) Subscribe(o SubOptions) (*Sub, error) {
	o.Filter.normalize()
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, errHubClosed
	}
	tail := h.firstIdx + int64(len(h.frames)-h.head)
	start := tail
	if o.Resume {
		oldest := h.oldestSeqLocked()
		if o.After >= 0 && ((o.After+1 < oldest && h.nextSeq > o.After+1) || o.After >= h.nextSeq) {
			h.mu.Unlock()
			return nil, &GapError{After: o.After, Oldest: oldest}
		}
		start = tail
		for i := h.head; i < len(h.frames); i++ {
			if h.frames[i].kind == KindResult && h.frames[i].seq > o.After {
				start = h.firstIdx + int64(i-h.head)
				break
			}
		}
	}
	s := &Sub{
		h:        h,
		filter:   o.Filter,
		ws:       o.WS,
		cursor:   start,
		liveFrom: tail,
		done:     make(chan struct{}),
	}
	if o.SendInitWM && o.Filter.Kinds&KindWM != 0 {
		fr := renderCtl("wm", []byte(`{"watermark":`+strconv.FormatInt(o.InitWM, 10)+`}`))
		s.intro = &fr
	}
	w := h.writers[h.nextW]
	h.nextW = (h.nextW + 1) % len(h.writers)
	s.writer = w
	s.widx = len(w.subs)
	w.subs = append(w.subs, s)
	h.subsN++
	if o.Filter.wantsCtl() {
		h.punctN++
	}
	h.mu.Unlock()
	return s, nil
}

// Unsubscribe removes s (the subscriber's handler left) and barriers
// against any in-flight pool write, so the caller may release its
// transport immediately after. Idempotent with pool-side drops.
func (h *Hub) Unsubscribe(s *Sub) {
	h.mu.Lock()
	h.detachLocked(s, "")
	h.mu.Unlock()
	s.wmu.Lock() //nolint:staticcheck // empty section: write barrier only
	s.wmu.Unlock()
}

// Count reports the number of live subscriptions.
func (h *Hub) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.subsN
}

// PunctCount reports the number of ctl-subscribed (punctuating)
// subscriptions — the pump's cheap gate for skipping punctuation work
// entirely when nobody listens.
func (h *Hub) PunctCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.punctN
}

// Encoded reports the shared frames rendered (one per published result
// or ctl event — never multiplied by subscriber count).
func (h *Hub) Encoded() int64 { return h.encoded.Load() }

// Delivered reports the total frames written into subscriber streams
// (one per frame per matching subscriber).
func (h *Hub) Delivered() int64 { return h.delivered.Load() }

// DeliveredResults reports delivered frames that were results.
func (h *Hub) DeliveredResults() int64 { return h.deliveredResults.Load() }

// SlowDrops reports subscribers dropped for falling behind the log.
func (h *Hub) SlowDrops() int64 { return h.slowDrops.Load() }

// FilteredDrops reports filtered subscribers dropped on overrun (their
// terminal frame says filtered-resume; see broadcast.go).
func (h *Hub) FilteredDrops() int64 { return h.filteredDrops.Load() }

// OldestSeq reports the oldest retained result seq (the
// Sharon-Oldest-Seq resume hint).
func (h *Hub) OldestSeq() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.oldestSeqLocked()
}

// Shutdown ends the stream after the final results were published
// (drain): the writer pool finishes delivering every retained frame to
// every subscriber, terminates each with a clean eof, and exits. New
// subscriptions are refused.
func (h *Hub) Shutdown() {
	h.mu.Lock()
	h.closed = true
	h.mu.Unlock()
	h.wakeAll()
}
