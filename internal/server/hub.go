package server

import (
	"sync"
	"sync/atomic"
)

// resultFrame is one encoded result on its way to subscribers: the
// global emission sequence number plus the wire payload. Carrying the
// seq beside the payload lets a resuming subscription (?after=N)
// deduplicate the overlap between its replay-ring read and its live
// channel without re-parsing JSON.
type resultFrame struct {
	seq     int64
	payload []byte
}

// subscriber is one live result subscription. Encoded results are
// delivered through a bounded channel; the hub never blocks on a
// subscriber — a full buffer means the consumer is slower than the
// result stream, and the subscription is dropped (slow-consumer
// disconnect policy) rather than letting one connection backpressure
// the engine or the other subscribers.
type subscriber struct {
	ch    chan resultFrame
	query int // filter: only results of this query ID; -1 = all
	slow  bool
}

// hub fans encoded results out to the live subscribers. publish is
// called from the engine's sink (pump goroutine, or the parallel
// executor's merge goroutine); subscribe/unsubscribe from HTTP handler
// goroutines.
type hub struct {
	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool // after drain: results delivered, no new subscribers

	delivered atomic.Int64
	slowDrops atomic.Int64
}

func newHub() *hub {
	return &hub{subs: make(map[*subscriber]struct{})}
}

// subscribe registers a subscription with a delivery buffer of buf
// results; it returns nil when the hub has already shut down.
func (h *hub) subscribe(query int, buf int) *subscriber {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	s := &subscriber{ch: make(chan resultFrame, buf), query: query}
	h.subs[s] = struct{}{}
	return s
}

// unsubscribe removes s (the subscriber's handler left). Idempotent
// with a slow-consumer drop racing it.
func (h *hub) unsubscribe(s *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[s]; ok {
		delete(h.subs, s)
		close(s.ch)
	}
}

// publish delivers one encoded result to every matching subscriber.
// A subscriber whose buffer is full is marked slow and dropped: its
// channel closes, and its handler terminates the connection.
func (h *hub) publish(query int, seq int64, payload []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for s := range h.subs {
		if s.query >= 0 && s.query != query {
			continue
		}
		select {
		case s.ch <- resultFrame{seq: seq, payload: payload}:
			h.delivered.Add(1)
		default:
			s.slow = true
			delete(h.subs, s)
			close(s.ch)
			h.slowDrops.Add(1)
		}
	}
}

// count reports the number of live subscriptions.
func (h *hub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// shutdown closes every subscription after the final results were
// published (drain): handlers see the channel close with slow == false
// and send the end-of-stream frame.
func (h *hub) shutdown() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	for s := range h.subs {
		delete(h.subs, s)
		close(s.ch)
	}
}
