package server

import (
	"sync"
	"sync/atomic"
)

// resultFrame is one frame on its way to subscribers: either an encoded
// result (ctl == "", with its global emission sequence number) or a
// control frame (ctl names the SSE event type — "wm" watermark
// punctuation, "adopted" rebalance markers — delivered only to
// punctuating subscribers). Carrying the seq beside the payload lets a
// resuming subscription (?after=N) deduplicate the overlap between its
// replay-ring read and its live channel without re-parsing JSON.
type resultFrame struct {
	seq     int64
	payload []byte
	ctl     string
	// at is the publisher's emit stamp in Unix nanoseconds (0 for
	// control and replayed frames); the stream writer records the
	// fan-out-write stage latency against it.
	at int64
}

// subscriber is one live result subscription. Encoded results are
// delivered through a bounded channel; the hub never blocks on a
// subscriber — a full buffer means the consumer is slower than the
// result stream, and the subscription is dropped (slow-consumer
// disconnect policy) rather than letting one connection backpressure
// the engine or the other subscribers.
type subscriber struct {
	ch    chan resultFrame
	query int // filter: only results of this query ID; -1 = all
	punct bool
	slow  bool
}

// Hub fans encoded results out to the live subscribers. Publish is
// called from the engine's sink (pump goroutine, or the parallel
// executor's merge goroutine); Subscribe/Unsubscribe from HTTP handler
// goroutines. It is shared by sharond and the cluster router (whose
// merged output stream obeys the same subscription contract).
type Hub struct {
	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	puncts int  // subscribers with punct set
	closed bool // after drain: results delivered, no new subscribers

	delivered atomic.Int64
	slowDrops atomic.Int64
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{subs: make(map[*subscriber]struct{})}
}

// subscribe registers a subscription with a delivery buffer of buf
// results; it returns nil when the hub has already shut down. punct
// additionally delivers control frames (watermark punctuation).
func (h *Hub) subscribe(query int, buf int, punct bool) *subscriber {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	s := &subscriber{ch: make(chan resultFrame, buf), query: query, punct: punct}
	h.subs[s] = struct{}{}
	if punct {
		h.puncts++
	}
	return s
}

// unsubscribe removes s (the subscriber's handler left). Idempotent
// with a slow-consumer drop racing it.
func (h *Hub) unsubscribe(s *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.drop(s)
}

// drop removes s under h.mu.
func (h *Hub) drop(s *subscriber) {
	if _, ok := h.subs[s]; ok {
		delete(h.subs, s)
		if s.punct {
			h.puncts--
		}
		close(s.ch)
	}
}

// Publish delivers one encoded result to every matching subscriber.
// A subscriber whose buffer is full is marked slow and dropped: its
// channel closes, and its handler terminates the connection. Delivery
// is a non-blocking send, so Publish never parks while its caller
// holds a lock. at is the publisher's emit stamp (Unix nanoseconds,
// 0 = unstamped) carried to the stream writers for fan-out timing —
// a passed-in value, so this function stays clock-free and
// deterministic.
//
//sharon:locksafe
//sharon:deterministic
func (h *Hub) Publish(query int, seq int64, payload []byte, at int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	//sharon:allow deterministicemit (per-subscriber frame streams are independent; each subscriber sees frames in publish-call order regardless of set iteration)
	for s := range h.subs {
		if s.query >= 0 && s.query != query {
			continue
		}
		h.deliver(s, resultFrame{seq: seq, payload: payload, at: at})
	}
}

// PublishCtl delivers one control frame (SSE event `name`) to every
// punctuating subscriber. Control frames obey the same slow-consumer
// policy as results: a punctuating consumer that cannot keep up loses
// frames it cannot reason without, so it is disconnected instead.
// Like Publish, delivery never blocks.
//
//sharon:locksafe
//sharon:deterministic
func (h *Hub) PublishCtl(name string, payload []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	//sharon:allow deterministicemit (per-subscriber frame streams are independent; each subscriber sees frames in publish-call order regardless of set iteration)
	for s := range h.subs {
		if !s.punct {
			continue
		}
		h.deliver(s, resultFrame{seq: -1, payload: payload, ctl: name})
	}
}

// deliver pushes one frame under h.mu, dropping s when its buffer is
// full.
func (h *Hub) deliver(s *subscriber, f resultFrame) {
	select {
	case s.ch <- f:
		h.delivered.Add(1)
	default:
		s.slow = true
		h.drop(s)
		h.slowDrops.Add(1)
	}
}

// Count reports the number of live subscriptions.
func (h *Hub) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// PunctCount reports the number of punctuating subscriptions — the
// pump's cheap gate for skipping punctuation work entirely when nobody
// listens.
func (h *Hub) PunctCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.puncts
}

// Delivered reports the total frames delivered into subscriber buffers.
func (h *Hub) Delivered() int64 { return h.delivered.Load() }

// SlowDrops reports the subscribers dropped by the slow-consumer policy.
func (h *Hub) SlowDrops() int64 { return h.slowDrops.Load() }

// Shutdown closes every subscription after the final results were
// published (drain): handlers see the channel close with slow == false
// and send the end-of-stream frame.
func (h *Hub) Shutdown() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	for s := range h.subs {
		delete(h.subs, s)
		close(s.ch)
	}
	h.puncts = 0
}
