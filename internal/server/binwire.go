package server

// This file implements the binary ingest wire format — the
// allocation-free alternative to the NDJSON framing in wire.go,
// negotiated by Content-Type on POST /ingest and carried natively by
// the streaming ingest connection (POST /ingest/stream) and the
// cluster forward path. The format reuses the persist package's codec
// discipline: varint integers, fixed 8-byte floats, and the WAL's
// CRC32-Castagnoli frame layer, so a torn or corrupted frame is
// detected before any event reaches the pump.
//
// A binary ingest body is a 5-byte header (magic "SHRB" + version)
// followed by CRC frames. Each frame body starts with a type byte:
//
//	types (1): uvarint count, then count length-prefixed type names.
//	           Name i gets local id i+1 (0 is invalid); names the
//	           server has not interned map to the unknown type and
//	           their events are dropped and counted. The table must
//	           precede the first batch frame and may be re-sent.
//	batch (2): varint watermark (-1 none), uvarint event count, then
//	           per event: uvarint time delta from the previous event
//	           in the frame (the first is the absolute time), uvarint
//	           local type id, varint group key, fixed 8-byte value.
//	           Events must be strictly time-ordered across the whole
//	           connection; a frame's watermark takes effect after its
//	           events.
//	ack   (3): status byte, uvarint accepted count, uvarint dropped
//	           unknown-type count. Sent by the server, one per batch
//	           frame, on the streaming connection only.
//
// Version changes that re-arrange existing fields bump WireVersion
// (the server rejects versions it does not speak); additive evolution
// uses new frame type bytes, which old servers reject per-frame.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	sharon "github.com/sharon-project/sharon"
	"github.com/sharon-project/sharon/internal/persist"
)

// BatchContentType is the Content-Type that selects the binary batch
// codec on POST /ingest (and is required on POST /ingest/stream).
const BatchContentType = "application/x-sharon-batch"

// WireVersion is the binary wire format version this build speaks.
const WireVersion = 1

// wireMagic prefixes every binary ingest body or stream.
const wireMagic = "SHRB"

// WireHeaderLen is the size of the stream header (magic + version).
const WireHeaderLen = len(wireMagic) + 1

// Frame type bytes (first byte of every frame body).
const (
	wireFrameTypes = 1
	wireFrameBatch = 2
	wireFrameAck   = 3
)

// Streaming ack status codes.
const (
	// WireAckOK: the batch was accepted into the pump queue.
	WireAckOK byte = 0
	// WireAckBusy: the ingest queue stayed full past the ack deadline
	// (the stream's 429-equivalent). Not terminal — re-send the frame.
	WireAckBusy byte = 1
	// WireAckDraining: the server is shutting down. Terminal.
	WireAckDraining byte = 2
	// WireAckBad: the frame was malformed. Terminal.
	WireAckBad byte = 3
	// WireAckOversize: the frame exceeded MaxBatchBytes (the stream's
	// 413-equivalent). Terminal.
	WireAckOversize byte = 4
)

// WireAck is one per-batch acknowledgement on a streaming ingest
// connection.
type WireAck struct {
	Status   byte
	Accepted int64
	Unknown  int64
}

// AppendWireHeader appends the stream header (magic + version).
func AppendWireHeader(dst []byte) []byte {
	dst = append(dst, wireMagic...)
	return append(dst, WireVersion)
}

// CheckWireHeader validates a stream header written by
// AppendWireHeader.
func CheckWireHeader(hdr []byte) error {
	if len(hdr) < WireHeaderLen || string(hdr[:len(wireMagic)]) != wireMagic {
		return fmt.Errorf("not a sharon binary batch (bad magic)")
	}
	if hdr[len(wireMagic)] != WireVersion {
		return fmt.Errorf("binary batch version %d not supported (this build speaks %d)", hdr[len(wireMagic)], WireVersion)
	}
	return nil
}

// AppendWireTypeTable appends a type-table frame interning names in
// order: names[i] gets local id i+1. A client whose types come from
// one sharon.Registry can pass the registry's names in order, making
// each event's local id numerically equal to its sharon.Type.
func AppendWireTypeTable(dst []byte, names []string) []byte {
	dst, start := persist.BeginFrame(dst)
	dst = append(dst, wireFrameTypes)
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	for _, n := range names {
		dst = binary.AppendUvarint(dst, uint64(len(n)))
		dst = append(dst, n...)
	}
	return persist.EndFrame(dst, start)
}

// AppendWireBatch appends one batch frame. Events must be strictly
// time-ordered and their local type ids (here: the sharon.Type values,
// matching an AppendWireTypeTable built from the same registry) must
// be live in the receiver's current table. watermark -1 means none.
func AppendWireBatch(dst []byte, events []sharon.Event, watermark int64) []byte {
	dst, start := persist.BeginFrame(dst)
	dst = append(dst, wireFrameBatch)
	dst = binary.AppendVarint(dst, watermark)
	dst = binary.AppendUvarint(dst, uint64(len(events)))
	dst = appendWireEvents(dst, events)
	return persist.EndFrame(dst, start)
}

// appendWireEvents encodes the per-event payload: the batch-frame hot
// loop of the cluster forward path and the binary load generator.
//
//sharon:hotpath
func appendWireEvents(dst []byte, events []sharon.Event) []byte {
	prev := int64(0)
	for i := range events {
		e := &events[i]
		dst = binary.AppendUvarint(dst, uint64(e.Time-prev))
		prev = e.Time
		dst = binary.AppendUvarint(dst, uint64(e.Type))
		dst = binary.AppendVarint(dst, int64(e.Key))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Val))
	}
	return dst
}

// AppendWireAck appends one ack frame.
func AppendWireAck(dst []byte, a WireAck) []byte {
	dst, start := persist.BeginFrame(dst)
	dst = append(dst, wireFrameAck, a.Status)
	dst = binary.AppendUvarint(dst, uint64(a.Accepted))
	dst = binary.AppendUvarint(dst, uint64(a.Unknown))
	return persist.EndFrame(dst, start)
}

// DecodeWireAck parses an ack frame body (as returned by the frame
// layer, CRC already verified).
func DecodeWireAck(body []byte) (WireAck, error) {
	if len(body) < 2 || body[0] != wireFrameAck {
		return WireAck{}, fmt.Errorf("not an ack frame")
	}
	d := persist.NewDecoder(body[2:])
	acc := d.Uvarint()
	unk := d.Uvarint()
	if err := d.Err(); err != nil {
		return WireAck{}, fmt.Errorf("ack frame: %w", err)
	}
	if d.Remaining() != 0 {
		return WireAck{}, fmt.Errorf("ack frame: %d trailing bytes", d.Remaining())
	}
	return WireAck{Status: body[1], Accepted: int64(acc), Unknown: int64(unk)}, nil
}

// DecodeWireBatch parses a complete one-shot binary ingest body
// (header, type table, one or more batch frames) into b, appending
// events and merging watermarks. Time ordering threads across frames
// exactly as across the lines of one NDJSON batch. On error b's
// contents are undefined; the caller discards or recycles it — no
// partial decode ever reaches the engine.
func DecodeWireBatch(data []byte, lookup map[string]sharon.Type, b *Batch) error {
	if err := CheckWireHeader(data); err != nil {
		return err
	}
	rest := data[WireHeaderLen:]
	var table []sharon.Type
	floor := int64(-1)
	for frame := 1; ; frame++ {
		body, n, err := persist.NextFrame(rest, int64(len(rest)))
		if err != nil {
			return fmt.Errorf("frame %d: %w", frame, err)
		}
		if n == 0 {
			return nil
		}
		rest = rest[n:]
		if len(body) == 0 {
			return fmt.Errorf("frame %d: empty frame body", frame)
		}
		switch body[0] {
		case wireFrameTypes:
			if table, err = decodeWireTypeTable(body[1:], lookup, table); err != nil {
				return fmt.Errorf("frame %d: %w", frame, err)
			}
		case wireFrameBatch:
			if table == nil {
				return fmt.Errorf("frame %d: batch frame before type table", frame)
			}
			if floor, err = decodeWireBatchBody(body[1:], table, b, floor); err != nil {
				return fmt.Errorf("frame %d: %w", frame, err)
			}
		default:
			return fmt.Errorf("frame %d: unknown frame type %d", frame, body[0])
		}
	}
}

// decodeWireTypeTable parses a type-table frame body (after the type
// byte) into a dense local-id -> sharon.Type table, reusing table's
// capacity. Index 0 is the invalid id; unknown names intern as
// sharon.NoType so their events are dropped and counted.
func decodeWireTypeTable(body []byte, lookup map[string]sharon.Type, table []sharon.Type) ([]sharon.Type, error) {
	d := persist.NewDecoder(body)
	n := d.Len() // count <= remaining bytes: a corrupt count cannot drive a huge table
	table = append(table[:0], sharon.NoType)
	for i := 0; i < n; i++ {
		name := d.String()
		if d.Err() != nil {
			break
		}
		table = append(table, lookup[name])
	}
	if err := d.Err(); err != nil {
		return table, fmt.Errorf("type table: %w", err)
	}
	if d.Remaining() != 0 {
		return table, fmt.Errorf("type table: %d trailing bytes", d.Remaining())
	}
	return table, nil
}

// decodeWireBatchBody parses a batch frame body (after the type byte)
// into b, enforcing strict time order above floor, and returns the new
// floor for the next frame.
func decodeWireBatchBody(body []byte, table []sharon.Type, b *Batch, floor int64) (int64, error) {
	d := persist.NewDecoder(body)
	wm := d.Varint()
	if d.Err() == nil && wm < -1 {
		return floor, fmt.Errorf("batch frame: watermark %d", wm)
	}
	n := d.Len() // count <= remaining bytes: bounds the decode loop
	floor, err := decodeWireEvents(d, n, table, b, floor)
	if err != nil {
		return floor, fmt.Errorf("batch frame: %w", err)
	}
	if d.Remaining() != 0 {
		return floor, fmt.Errorf("batch frame: %d trailing bytes", d.Remaining())
	}
	if wm > b.Watermark {
		b.Watermark = wm
	}
	if wm > floor {
		floor = wm
	}
	return floor, nil
}

// Sentinel decode errors, predeclared so the hot decode loop reports
// failures without allocating.
var (
	errWireTimeOverflow = fmt.Errorf("event time overflows int64")
	errWireOutOfOrder   = fmt.Errorf("events not strictly time-ordered")
	errWireBadTypeID    = fmt.Errorf("local type id outside the type table")
)

// decodeWireEvents decodes n events from d into b: the per-event hot
// loop of the binary ingest edge. Events of unknown types (table entry
// sharon.NoType) are dropped and counted, matching the NDJSON path.
//
//sharon:hotpath
func decodeWireEvents(d *persist.Decoder, n int, table []sharon.Type, b *Batch, floor int64) (int64, error) {
	prev := int64(0)
	for i := 0; i < n; i++ {
		delta := d.Uvarint()
		id := d.Uvarint()
		key := d.Varint()
		val := d.Float()
		if d.Err() != nil {
			return floor, d.Err()
		}
		if delta > uint64(math.MaxInt64-prev) {
			return floor, errWireTimeOverflow
		}
		t := prev + int64(delta)
		prev = t
		if t <= floor {
			return floor, errWireOutOfOrder
		}
		floor = t
		if id == 0 || id >= uint64(len(table)) {
			return floor, errWireBadTypeID
		}
		if table[id] == sharon.NoType {
			b.Unknown++
			continue
		}
		//sharon:allow hotpathalloc (amortized: pooled Batch buffers retain event capacity across requests)
		b.Events = append(b.Events, sharon.Event{Time: t, Type: table[id], Key: sharon.GroupKey(key), Val: val})
	}
	// Frame-size telemetry at the decode edge: one atomic histogram
	// record per frame, amortized to nothing per event — and the proof
	// that obs recording is legal on the hot-path call graph.
	wireBatchEvents.Record(int64(n))
	return floor, nil
}

// batchPool recycles parsed batches between the ingest handlers and
// the pump: the handler gets a batch, the pump returns it after
// applying (FeedBatch and the WAL both copy events, so nothing retains
// the slice). Both codecs — NDJSON and binary — draw from this pool.
var batchPool = sync.Pool{New: func() any { return &Batch{Watermark: -1} }}

// maxPooledBatchEvents caps the event capacity a recycled batch may
// carry back into the pool, so one pathological batch does not pin a
// huge backing array forever.
const maxPooledBatchEvents = 1 << 16

// GetBatch returns an empty batch (Watermark -1) from the pool.
func GetBatch() *Batch {
	b := batchPool.Get().(*Batch)
	b.Events = b.Events[:0]
	b.Watermark = -1
	b.Unknown = 0
	return b
}

// PutBatch recycles b. The caller must not touch b afterwards.
func PutBatch(b *Batch) {
	if b == nil || cap(b.Events) > maxPooledBatchEvents {
		return
	}
	batchPool.Put(b)
}

// readWireHeader reads and validates the stream header from r.
func readWireHeader(r io.Reader) error {
	var hdr [WireHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("stream header: %w", err)
	}
	return CheckWireHeader(hdr[:])
}
