package server

import (
	"bytes"
	"testing"

	sharon "github.com/sharon-project/sharon"
)

// FuzzBinaryBatch fuzzes the binary ingest codec end to end:
//
//   - round trip: a body encoded from a parameterized pseudo-random
//     stream decodes to the same events and re-encodes bit-exact;
//   - corruption: flipping any byte, truncating anywhere, or growing
//     the body past the size limit never panics, and whatever still
//     decodes is a strictly time-ordered stream of known types — a
//     partial or torn frame surfaces as an error (so the ingest
//     handlers discard the batch; no partial frame reaches the engine),
//     never as silently wrong events.
func FuzzBinaryBatch(f *testing.F) {
	f.Add(uint64(1), uint16(40), uint32(0), uint16(0))
	f.Add(uint64(7), uint16(300), uint32(11), uint16(3))
	f.Add(uint64(42), uint16(0), uint32(999), uint16(1))
	f.Add(uint64(9), uint16(512), uint32(1<<20), uint16(7))
	names := []string{"A", "B", "C", "D"}
	lookup := make(map[string]sharon.Type, len(names))
	for i, n := range names {
		lookup[n] = sharon.Type(i + 1)
	}
	f.Fuzz(func(t *testing.T, seed uint64, count uint16, flip uint32, cut uint16) {
		events := xorshiftEvents(seed, int(count)%1024, len(names))
		wm := int64(-1)
		if len(events) > 0 && seed%3 == 0 {
			wm = events[len(events)-1].Time + int64(seed%100)
		}
		body := binBody(names, events, wm)

		// Round trip: decode, compare, re-encode bit-exact.
		b := GetBatch()
		if err := DecodeWireBatch(body, lookup, b); err != nil {
			t.Fatalf("valid body failed to decode: %v", err)
		}
		if len(b.Events) != len(events) || b.Unknown != 0 || b.Watermark != wm {
			t.Fatalf("decoded %d events, unknown %d, wm %d; want %d, 0, %d",
				len(b.Events), b.Unknown, b.Watermark, len(events), wm)
		}
		for i := range events {
			if b.Events[i] != events[i] {
				t.Fatalf("event %d: %+v != %+v", i, b.Events[i], events[i])
			}
		}
		if re := binBody(names, b.Events, b.Watermark); !bytes.Equal(re, body) {
			t.Fatalf("re-encode differs: %d vs %d bytes", len(re), len(body))
		}
		PutBatch(b)

		// sane decodes into a fresh batch and accepts whatever DecodeWireBatch
		// does to a mangled body as long as the failure mode is an error,
		// not a panic or an out-of-order/unknown-typed event stream.
		sane := func(data []byte) {
			b := GetBatch()
			defer PutBatch(b)
			if err := DecodeWireBatch(data, lookup, b); err != nil {
				return
			}
			floor := int64(-1)
			for _, e := range b.Events {
				if e.Time <= floor {
					t.Fatalf("mangled body decoded out of order: %d after %d", e.Time, floor)
				}
				floor = e.Time
				if e.Type < 1 || int(e.Type) > len(names) {
					t.Fatalf("mangled body decoded unknown type %d", e.Type)
				}
			}
		}
		sane(body[:int(flip)%(len(body)+1)]) // truncation
		flipped := append([]byte{}, body...)
		flipped[int(flip)%len(flipped)] ^= 1 << (flip % 8) // bit flip
		sane(flipped)
		if cut > 0 { // garbage tail
			sane(append(append([]byte{}, body...), flipped[:int(cut)%len(flipped)]...))
		}
	})
}
