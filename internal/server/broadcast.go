package server

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sharon-project/sharon/internal/persist"
)

// The broadcast core: results are encoded ONCE into shared immutable
// frames appended to a bounded, log-index-addressed broadcast log, and
// N subscribers are served by a small pool of writer goroutines walking
// per-subscriber cursors over that log. The per-subscriber cost of a
// frame is a header comparison plus (when it matches) one vectored
// write of pre-rendered bytes — never a second encode. Frames carry
// both an SSE rendering and a WebSocket rendering (server frames are
// unmasked, so they too are shareable), and a cheap header
// {seq, query, group, kind} that per-subscriber filters are evaluated
// against: a filtered-out frame costs an index skip, not a decode.
//
// Cursor discipline reuses the replay ring's seq contract: the log is
// seq-indexed through its result frames, `?after=N` resume maps N onto
// a log index under one lock (no snapshot/dedup dance — attach order is
// log order), and a cursor that has aged out of the log is refused with
// a gap (410 + Sharon-Oldest-Seq) at subscribe time or terminated with
// an explicit `dropped` frame when a live subscriber is overrun.

// Frame kind bits. A subscription's SubFilter.Kinds mask selects which
// it receives; the zero mask means results only.
const (
	// KindResult marks an encoded result row.
	KindResult uint8 = 1 << iota
	// KindWM marks watermark punctuation ctl frames (`event: wm`).
	KindWM
	// KindAdopted marks rebalance marker ctl frames (`event: adopted`).
	KindAdopted
	// kindCtlOther marks ctl frames with any other event name.
	kindCtlOther

	kindAllCtl = KindWM | KindAdopted | kindCtlOther
)

// Terminal-frame reasons: the explicit close semantics subscribers stop
// inferring from connection state. The empty reason is a clean eof
// (drain: every published frame was delivered).
const (
	// ReasonSlowConsumer: the subscriber fell behind the retained log
	// and frames it had not yet received were trimmed. An unfiltered
	// client may attempt ?after=<last seq> (and may get 410).
	ReasonSlowConsumer = "slow-consumer"
	// ReasonFilteredResume: a filtered subscriber was overrun. Because
	// a filtered stream is not seq-contiguous, the client cannot detect
	// missed matching frames by its own contiguity check — it must
	// resubscribe from scratch, so the server names the drop distinctly.
	ReasonFilteredResume = "filtered-resume"
)

func ctlKind(name string) uint8 {
	switch name {
	case "wm":
		return KindWM
	case "adopted":
		return KindAdopted
	}
	return kindCtlOther
}

// SubFilter is a subscription's header-evaluated filter: nil slices
// pass everything of that dimension, Kinds is a frame-kind mask
// (0 = results only). Query and group filters apply to result frames;
// ctl frames pass on their kind bit alone.
type SubFilter struct {
	Queries []int
	Groups  []int64
	Kinds   uint8
}

func (f *SubFilter) normalize() {
	if f.Kinds == 0 {
		f.Kinds = KindResult
	}
}

// narrowed reports whether the filter can hide result frames — the
// property that turns an overrun into ReasonFilteredResume.
func (f *SubFilter) narrowed() bool {
	return len(f.Queries) > 0 || len(f.Groups) > 0 || f.Kinds&KindResult == 0
}

func (f *SubFilter) wantsCtl() bool { return f.Kinds&kindAllCtl != 0 }

func (f *SubFilter) matches(fr *bframe) bool {
	if fr.kind&f.Kinds == 0 {
		return false
	}
	if fr.kind != KindResult {
		return true
	}
	if f.Queries != nil {
		ok := false
		for _, q := range f.Queries {
			if q == int(fr.query) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if f.Groups != nil {
		ok := false
		for _, g := range f.Groups {
			if g == fr.group {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// bframe is one shared immutable broadcast frame: the filterable header
// plus the payload rendered once per transport. The byte slices are
// never mutated after append, so every subscriber's writer may hand
// them to the kernel concurrently.
type bframe struct {
	seq   int64 // result emission seq; -1 for ctl frames
	query int32 // result query ID; -1 for ctl frames
	group int64
	kind  uint8
	at    int64 // publisher emit stamp (Unix ns; 0 = unstamped)
	sse   []byte
	ws    []byte
}

// renderResult builds the shared frame for one encoded result. The SSE
// rendering carries the emission seq as the SSE `id:` (feeding
// Last-Event-ID resume); the WS rendering is one unmasked text frame
// whose payload is the result JSON (seq is a field of it).
func renderResult(query int, group int64, seq int64, payload []byte, at int64) bframe {
	sse := make([]byte, 0, len(payload)+32)
	sse = append(sse, "id: "...)
	sse = strconv.AppendInt(sse, seq, 10)
	sse = append(sse, "\ndata: "...)
	sse = append(sse, payload...)
	sse = append(sse, "\n\n"...)
	return bframe{
		seq:   seq,
		query: int32(query),
		group: group,
		kind:  KindResult,
		at:    at,
		sse:   sse,
		ws:    wsTextFrame(payload),
	}
}

// renderCtl builds the shared frame for one control event. The WS
// rendering wraps the payload object with an "event" discriminator
// ({"watermark":5} becomes {"event":"wm","watermark":5}) since WS
// messages have no out-of-band event name the way SSE frames do.
func renderCtl(name string, payload []byte) bframe {
	sse := make([]byte, 0, len(name)+len(payload)+20)
	sse = append(sse, "event: "...)
	sse = append(sse, name...)
	sse = append(sse, "\ndata: "...)
	sse = append(sse, payload...)
	sse = append(sse, "\n\n"...)
	return bframe{
		seq:   -1,
		query: -1,
		kind:  ctlKind(name),
		sse:   sse,
		ws:    wsTextFrame(wsCtlPayload(name, payload)),
	}
}

// wsCtlPayload splices the event name into a ctl payload object.
func wsCtlPayload(name string, payload []byte) []byte {
	out := make([]byte, 0, len(name)+len(payload)+12)
	out = append(out, `{"event":"`...)
	out = append(out, name...)
	out = append(out, '"')
	if len(payload) > 2 && payload[0] == '{' {
		out = append(out, ',')
		out = append(out, payload[1:]...)
	} else {
		out = append(out, '}')
	}
	return out
}

// SubConn is one subscriber's transport endpoint. The hub's writer pool
// is the only caller once the subscription has started; implementations
// serialize their own writes only against out-of-band control traffic
// (WS pongs), never against the pool (the pool already serializes per
// subscriber).
type SubConn interface {
	// WriteBurst writes a run of pre-rendered frames and flushes once.
	WriteBurst(bufs [][]byte) error
	// WriteHeartbeat writes one keep-alive (SSE comment / WS ping).
	WriteHeartbeat() error
	// WriteTerminal writes the end-of-stream frame: reason "" is a
	// clean eof, anything else an explicit `dropped` with that reason.
	// Errors are moot — the subscription is over either way.
	WriteTerminal(reason string)
}

// SubOptions parameterize one subscription attach.
type SubOptions struct {
	Filter SubFilter
	// Resume requests backfill of retained frames with seq > After
	// (After = -1 replays everything retained). Without Resume the
	// cursor starts at the live tail.
	Resume bool
	After  int64
	// WS selects the WebSocket rendering of shared frames.
	WS bool
	// SendInitWM, for ctl-subscribed streams, injects an initial
	// watermark frame (value InitWM) after the backfill, so an idle
	// stream still tells the subscriber its frontier.
	SendInitWM bool
	InitWM     int64
}

// GapError reports a resume cursor that cannot be served exactly:
// emissions after the cursor have aged out of the broadcast log (or the
// cursor refers to emissions that never happened). Handlers map it to
// 410 + Sharon-Oldest-Seq.
type GapError struct {
	After  int64
	Oldest int64
}

func (e *GapError) Error() string {
	return fmt.Sprintf("results after seq %d no longer retained (log starts at %d)", e.After, e.Oldest)
}

// ErrHubClosed reports an attach against a drained hub.
var errHubClosed = fmt.Errorf("hub draining")

// Sub is one live subscription handle. The owning handler waits on
// Done() and calls Unsubscribe when its client goes away; everything
// else is driven by the hub's writer pool.
type Sub struct {
	h      *Hub
	filter SubFilter
	conn   SubConn
	ws     bool

	// Guarded by h.mu.
	started  bool
	closed   bool
	reason   string
	cursor   int64 // next log index to consider
	liveFrom int64 // log tail at attach: frames >= this are live
	intro    *bframe
	widx     int
	writer   *bwriter

	dead      atomic.Bool // set under h.mu at detach; checked under wmu before writes
	lastWrite int64       // Unix ns of the last successful write; writer-owned
	done      chan struct{}
	// wmu serializes pool writes against handler teardown: the handler
	// acquires it once after detach, guaranteeing no write is in flight
	// when it returns its ResponseWriter (or closes its net.Conn).
	wmu sync.Mutex
}

// Done is closed when the subscription ends (drain, drop, write error,
// or Unsubscribe).
func (s *Sub) Done() <-chan struct{} { return s.done }

// Reason reports why the subscription ended ("" = clean eof or client
// close). Valid after Done.
func (s *Sub) Reason() string {
	s.h.mu.Lock()
	defer s.h.mu.Unlock()
	return s.reason
}

// Start arms the subscription with its transport connection: the writer
// pool begins delivering. It reports false when the hub shut down (or
// the subscriber was dropped) before the transport was ready — the
// handler then terminates the stream itself.
func (s *Sub) Start(conn SubConn) bool {
	h := s.h
	h.mu.Lock()
	if s.closed {
		h.mu.Unlock()
		return false
	}
	s.conn = conn
	s.started = true
	w := s.writer
	h.mu.Unlock()
	w.kick()
	return true
}

// bwriter is one writer-pool goroutine: it owns a share of the
// subscribers and walks their cursors over the log on every wake. All
// socket I/O happens here, outside h.mu.
type bwriter struct {
	h    *Hub
	wake chan struct{}
	subs []*Sub // guarded by h.mu

	// Reused scratch (writer-goroutine-owned).
	scratch []*Sub
	bufs    [][]byte
	lags    []int64
}

func (w *bwriter) kick() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// run is the writer loop: wake on appends (coalesced), tick for
// heartbeats. Exits once the hub closed and its last subscriber ended.
func (w *bwriter) run(hbTick time.Duration) {
	tick := time.NewTicker(hbTick)
	defer tick.Stop()
	for {
		select {
		case <-w.wake:
		case <-tick.C:
		}
		if w.service() {
			return
		}
	}
}

// service drains every owned subscriber to the current tail.
func (w *bwriter) service() (done bool) {
	h := w.h
	h.mu.Lock()
	w.scratch = append(w.scratch[:0], w.subs...)
	closing := h.closed
	h.mu.Unlock()
	now := time.Now().UnixNano()
	for _, s := range w.scratch {
		w.drain(s, closing, now)
	}
	if closing {
		h.mu.Lock()
		n := len(w.subs)
		h.mu.Unlock()
		return n == 0
	}
	return false
}

// burstFrames bounds frames gathered per h.mu hold, keeping lock holds
// short under deep backlogs.
const burstFrames = 256

// drain walks one subscriber's cursor to the tail, writing matching
// pre-rendered frames in bursts. closing means the hub has shut down:
// a fully drained subscriber is terminated with a clean eof.
func (w *bwriter) drain(s *Sub, closing bool, now int64) {
	h := w.h
	for {
		h.mu.Lock()
		if s.closed || !s.started {
			h.mu.Unlock()
			return
		}
		// Overrun: the log trimmed past this cursor — frames it never
		// received are gone. Explicit terminal, distinct reason for
		// filtered subscribers (they cannot verify the loss themselves).
		if s.cursor < h.firstIdx {
			reason := ReasonSlowConsumer
			if s.filter.narrowed() {
				reason = ReasonFilteredResume
			}
			h.mu.Unlock()
			w.terminate(s, reason)
			return
		}
		tail := h.firstIdx + int64(len(h.frames)-h.head)
		w.bufs, w.lags = w.bufs[:0], w.lags[:0]
		nres := 0
		if s.intro != nil && s.cursor >= s.liveFrom {
			w.bufs = append(w.bufs, s.introView())
			s.intro = nil
		}
		limit := tail
		if s.intro != nil && s.liveFrom < limit {
			limit = s.liveFrom // finish the backfill before the intro frame
		}
		for s.cursor < limit && len(w.bufs) < burstFrames {
			fr := &h.frames[h.head+int(s.cursor-h.firstIdx)]
			idx := s.cursor
			s.cursor++
			if !s.filter.matches(fr) {
				continue
			}
			buf := fr.sse
			if s.ws {
				buf = fr.ws
			}
			w.bufs = append(w.bufs, buf)
			if fr.kind == KindResult {
				nres++
			}
			if fr.at > 0 && idx >= s.liveFrom {
				w.lags = append(w.lags, fr.at)
			}
		}
		if s.intro != nil && s.cursor >= s.liveFrom {
			w.bufs = append(w.bufs, s.introView())
			s.intro = nil
		}
		drained := s.cursor >= tail
		h.mu.Unlock()

		if len(w.bufs) > 0 {
			s.wmu.Lock()
			var err error
			if s.dead.Load() {
				s.wmu.Unlock()
				return
			}
			//sharon:allow lockio (s.wmu exists to serialize transport writes against teardown; the conn sets its own write deadline)
			err = s.conn.WriteBurst(w.bufs)
			s.wmu.Unlock()
			if err != nil {
				h.mu.Lock()
				h.detachLocked(s, "")
				h.mu.Unlock()
				return
			}
			s.lastWrite = now
			h.delivered.Add(int64(len(w.bufs)))
			h.deliveredResults.Add(int64(nres))
			if h.fanoutNs != nil {
				for _, at := range w.lags {
					if d := now - at; d > 0 {
						h.fanoutNs.Record(d)
					}
				}
			}
		}
		if !drained {
			continue
		}
		if closing {
			w.terminate(s, "")
			return
		}
		if h.hbEvery > 0 && now-s.lastWrite >= int64(h.hbEvery) {
			s.wmu.Lock()
			var err error
			if !s.dead.Load() {
				//sharon:allow lockio (s.wmu exists to serialize transport writes against teardown; the conn sets its own write deadline)
				err = s.conn.WriteHeartbeat()
			}
			s.wmu.Unlock()
			if err != nil {
				h.mu.Lock()
				h.detachLocked(s, "")
				h.mu.Unlock()
				return
			}
			s.lastWrite = now
		}
		return
	}
}

// introView renders the pending intro frame for the sub's transport.
func (s *Sub) introView() []byte {
	if s.ws {
		return s.intro.ws
	}
	return s.intro.sse
}

// terminate writes the terminal frame (before detaching, so the owning
// handler's teardown barrier cannot outrun the write) and ends the
// subscription.
func (w *bwriter) terminate(s *Sub, reason string) {
	s.wmu.Lock()
	if !s.dead.Load() {
		//sharon:allow lockio (s.wmu exists to serialize transport writes against teardown; the conn sets its own write deadline)
		s.conn.WriteTerminal(reason)
	}
	s.wmu.Unlock()
	h := w.h
	h.mu.Lock()
	if h.detachLocked(s, reason) {
		switch reason {
		case ReasonSlowConsumer:
			h.slowDrops.Add(1)
		case ReasonFilteredResume:
			h.filteredDrops.Add(1)
		}
	}
	h.mu.Unlock()
}

// detachLocked removes s from the hub (h.mu held). Idempotent; closes
// Done exactly once.
func (h *Hub) detachLocked(s *Sub, reason string) bool {
	if s.closed {
		return false
	}
	s.closed = true
	s.dead.Store(true)
	s.reason = reason
	w := s.writer
	last := len(w.subs) - 1
	moved := w.subs[last]
	w.subs[s.widx] = moved
	moved.widx = s.widx
	w.subs[last] = nil
	w.subs = w.subs[:last]
	h.subsN--
	if s.filter.wantsCtl() {
		h.punctN--
	}
	close(s.done)
	return true
}

// appendLocked adds one frame and trims (h.mu held). Trimming mirrors
// the replay ring: advance a head index, compact only when half the
// backing array is dead, so append stays amortized O(1) on the emission
// path.
func (h *Hub) appendLocked(fr bframe) {
	h.frames = append(h.frames, fr)
	if fr.kind == KindResult {
		h.results++
		h.nextSeq = fr.seq + 1
	}
	live := len(h.frames) - h.head
	for h.results > h.retain || live > 2*h.retain+64 {
		if h.frames[h.head].kind == KindResult {
			h.results--
		}
		h.frames[h.head] = bframe{} // release the renderings
		h.head++
		h.firstIdx++
		live--
	}
	if h.head > 64 && h.head*2 >= len(h.frames) {
		n := copy(h.frames, h.frames[h.head:])
		clear(h.frames[n:])
		h.frames = h.frames[:n]
		h.head = 0
	}
}

// oldestSeqLocked is the seq of the oldest retained result frame, or
// nextSeq when none is retained (h.mu held). The leading scan is
// bounded by the run of ctl frames at the head (at most one per pump
// step between retained results).
func (h *Hub) oldestSeqLocked() int64 {
	for i := h.head; i < len(h.frames); i++ {
		if h.frames[i].kind == KindResult {
			return h.frames[i].seq
		}
	}
	return h.nextSeq
}

// Seed preloads the broadcast log from recovered replay-ring entries
// (recovery path, before any subscriber exists). The one-time JSON
// header parse here is what lets filtered subscriptions resume exactly
// across a restart.
func (h *Hub) Seed(entries []persist.RingEntry, nextSeq int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, e := range entries {
		var hdr struct {
			Query int   `json:"query"`
			Group int64 `json:"group"`
		}
		if err := json.Unmarshal(e.Payload, &hdr); err != nil {
			continue // unparseable retained row: serve live only past it
		}
		h.appendLocked(renderResult(hdr.Query, hdr.Group, e.Seq, e.Payload, 0))
	}
	if nextSeq > h.nextSeq {
		h.nextSeq = nextSeq
	}
}
