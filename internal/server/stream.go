package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/sharon-project/sharon/internal/obs"
	"github.com/sharon-project/sharon/internal/persist"
)

// ReplayRing retains the last N emissions (seq-contiguous by
// construction) so a resuming subscription can be backfilled. The sink
// appends from the pump or merge goroutine; subscription handlers and
// the checkpointer read snapshots. Trimming advances a head index and
// compacts the backing array only when half of it is dead, so append
// stays amortized O(1) on the emission path (which PR 2 engineered to
// zero per-event work) instead of copying the whole ring once full.
// Both sharond and the cluster router retain their output streams in
// one.
type ReplayRing struct {
	mu   sync.Mutex
	buf  []persist.RingEntry
	head int // index of the oldest retained entry in buf
	max  int
	next int64 // seq after the last appended entry
}

// NewReplayRing returns a ring retaining at most max entries.
func NewReplayRing(max int) *ReplayRing {
	return &ReplayRing{max: max}
}

// Append retains one emission; seq must be the ring's next (the sink's
// global sequence is contiguous). Pure in-memory bookkeeping under the
// ring's own mutex; safe to call with caller locks held.
//
//sharon:locksafe
//sharon:deterministic
func (r *ReplayRing) Append(seq int64, payload []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = append(r.buf, persist.RingEntry{Seq: seq, Payload: payload})
	r.next = seq + 1
	for len(r.buf)-r.head > r.max {
		r.buf[r.head] = persist.RingEntry{} // release the payload
		r.head++
	}
	if r.head > 64 && r.head*2 >= len(r.buf) {
		n := copy(r.buf, r.buf[r.head:])
		clear(r.buf[n:])
		r.buf = r.buf[:n]
		r.head = 0
	}
}

// Load seeds the ring from a checkpoint, trimmed to this instance's
// bound (a restart may lower -replay-buffer below what the checkpoint
// retained).
func (r *ReplayRing) Load(entries []persist.RingEntry, nextSeq int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if over := len(entries) - r.max; over > 0 {
		entries = entries[over:]
	}
	r.buf = append([]persist.RingEntry(nil), entries...)
	r.head = 0
	r.next = nextSeq
}

// Snapshot copies the retained entries (checkpointing).
func (r *ReplayRing) Snapshot() []persist.RingEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]persist.RingEntry(nil), r.buf[r.head:]...)
}

// Since returns the retained entries with Seq > after, plus the first
// sequence number actually available. gap is true when a concrete
// cursor cannot be served exactly: emissions in (after, first) have
// aged out of the ring, or after refers to emissions that never
// happened (a client resuming against a server whose sequence
// restarted — serving it would silently skip everything up to the
// phantom cursor). after = -1 is the documented "everything retained"
// request and never gaps; the client's own contiguity check flags a
// trimmed head.
func (r *ReplayRing) Since(after int64) (entries []persist.RingEntry, gap bool, first int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	live := r.buf[r.head:]
	first = r.next - int64(len(live))
	if after >= 0 && ((after+1 < first && r.next > after+1) || after >= r.next) {
		gap = true
	}
	for _, e := range live {
		if e.Seq > after {
			entries = append(entries, e)
		}
	}
	return entries, gap, first
}

// StreamOptions parameterize one SSE result stream: the hub that feeds
// it, the optional replay ring behind ?after resume, and the limits of
// the serving instance. sharond's /subscribe and the cluster router's
// merged /subscribe are the same handler over different hubs.
type StreamOptions struct {
	Hub *Hub
	// Ring, when non-nil, serves ?after=N resume from the retained
	// emission tail.
	Ring *ReplayRing
	// QueryKnown validates a ?query=ID filter; nil rejects filtering.
	QueryKnown func(id int) bool
	// Watermark supplies the current stream watermark for the initial
	// punctuation frame of a ?punctuate=1 subscription.
	Watermark func() int64
	// SubscriberBuffer bounds the delivery buffer (results).
	SubscriberBuffer int
	// HeartbeatEvery is the keep-alive comment interval.
	HeartbeatEvery time.Duration
	// WriteTimeout is the per-write deadline.
	WriteTimeout time.Duration
	// FanoutNs, when non-nil, records publish-to-socket-write latency
	// (nanoseconds) for each live result frame — the pipeline's
	// fan-out stage.
	FanoutNs *obs.Histogram
}

// ServeStream handles one SSE subscription request end to end:
// parameter parsing (?query, ?after, ?punctuate), ring backfill, live
// delivery with heartbeats, and the eof / slow-consumer terminal
// frames. With ?punctuate=1 the stream additionally carries control
// frames — `event: wm` watermark punctuation after every applied step
// ("every result for windows ending at or before W has been sent") and
// `event: adopted` rebalance markers — which the cluster router's merge
// frontier is built on.
func ServeStream(w http.ResponseWriter, r *http.Request, o StreamOptions) {
	if _, ok := w.(http.Flusher); !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	queryID := -1
	if qs := r.URL.Query().Get("query"); qs != "" {
		id, err := strconv.Atoi(strings.TrimPrefix(qs, "q"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad query id %q", qs)
			return
		}
		if o.QueryKnown == nil || !o.QueryKnown(id) {
			writeErr(w, http.StatusNotFound, "no query %d", id)
			return
		}
		queryID = id
	}
	punct := false
	if ps := r.URL.Query().Get("punctuate"); ps != "" && ps != "0" && ps != "false" {
		punct = true
	}
	// after=N resumes a dropped subscription: results with seq > N are
	// replayed from the retained ring before the live stream continues,
	// so a subscriber that survives a server restart (or its own
	// reconnect) sees a gap-free, duplicate-free sequence. after=-1
	// replays everything still retained; no after parameter = live only.
	after, resume := int64(-1), false
	if as := r.URL.Query().Get("after"); as != "" {
		v, err := strconv.ParseInt(as, 10, 64)
		if err != nil || v < -1 {
			writeErr(w, http.StatusBadRequest, "bad after %q", as)
			return
		}
		if queryID >= 0 {
			writeErr(w, http.StatusBadRequest, "after= resume requires an unfiltered subscription (the replay ring is not per-query)")
			return
		}
		if o.Ring == nil {
			writeErr(w, http.StatusBadRequest, "this stream retains no replay ring; subscribe without after=")
			return
		}
		after, resume = v, true
	}
	// For a punctuating subscriber, capture the stream position BEFORE
	// subscribing: every result it covers was published before the
	// subscription existed (and is in the replay ring for resumes). A
	// live read after subscribing could time-travel past results still
	// queued in the subscriber channel and let a router lane advance its
	// frontier over undelivered rows.
	initWM, haveInitWM := int64(0), false
	if punct && o.Watermark != nil {
		initWM, haveInitWM = o.Watermark(), true
	}
	sub := o.Hub.subscribe(queryID, o.SubscriberBuffer, punct)
	if sub == nil {
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return
	}
	defer o.Hub.unsubscribe(sub)
	// Snapshot the ring after subscribing: every emission is in the
	// snapshot, in the live channel, or both — the seq skip below
	// removes the overlap.
	var backlog []persist.RingEntry
	if resume {
		entries, gap, first := o.Ring.Since(after)
		if gap {
			writeErr(w, http.StatusGone, "results after seq %d no longer retained (replay ring starts at %d); raise -replay-buffer or resubscribe from scratch", after, first)
			return
		}
		backlog = entries
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	// Frames are staged into the ResponseWriter's buffer and flushed
	// once per delivery burst, not per frame: a flush is a chunked-write
	// syscall, and under load the hub hands the handler runs of queued
	// results at a time. One deadline + one flush per burst keeps the
	// subscription's syscall count proportional to bursts, not results.
	dirty := false
	push := func(frame string) bool {
		if !dirty {
			_ = rc.SetWriteDeadline(time.Now().Add(o.WriteTimeout))
			dirty = true
		}
		_, err := fmt.Fprint(w, frame)
		return err == nil
	}
	flush := func() bool {
		if !dirty {
			return true
		}
		dirty = false
		return rc.Flush() == nil
	}
	write := func(frame string) bool {
		return push(frame) && flush()
	}
	if !write(": subscribed\n\n") {
		return
	}
	lastSeq := after
	for _, e := range backlog {
		if !push("data: " + string(e.Payload) + "\n\n") {
			return
		}
		lastSeq = e.Seq
	}
	if !flush() {
		return
	}
	// A punctuating subscriber needs the stream position up front, or an
	// idle stream leaves its frontier unknown. After the backlog, not
	// before: a resuming router lane must bucket the replayed results
	// before it may advance its frontier past their window ends.
	if haveInitWM {
		if !write(fmt.Sprintf("event: wm\ndata: {\"watermark\":%d}\n\n", initWM)) {
			return
		}
	}
	heartbeat := time.NewTicker(o.HeartbeatEvery)
	defer heartbeat.Stop()
	for {
		select {
		case frame, open := <-sub.ch:
			// Drain the whole queued burst before flushing once. The
			// drain re-selects on the channel with a default, so an
			// empty channel ends the burst and control returns to the
			// outer select (heartbeats, cancellation).
			for {
				if !open {
					if sub.slow {
						write("event: error\ndata: {\"error\":\"slow consumer\"}\n\n")
					} else {
						write("event: eof\ndata: {}\n\n")
					}
					return
				}
				switch {
				case frame.ctl != "":
					if !push("event: " + frame.ctl + "\ndata: " + string(frame.payload) + "\n\n") {
						return
					}
				case frame.seq <= lastSeq:
					// already replayed from the ring
				default:
					if !push("data: " + string(frame.payload) + "\n\n") {
						return
					}
					if o.FanoutNs != nil && frame.at > 0 {
						o.FanoutNs.Record(time.Now().UnixNano() - frame.at)
					}
				}
				select {
				case frame, open = <-sub.ch:
					continue
				default:
				}
				break
			}
			if !flush() {
				return
			}
		case <-heartbeat.C:
			if !write(": hb\n\n") {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
