package server

import (
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/sharon-project/sharon/internal/persist"
)

// ReplayRing retains the last N emissions (seq-contiguous by
// construction) so recovery can reseed the broadcast log across a
// restart. The sink appends from the pump or merge goroutine; the
// checkpointer reads snapshots. Trimming advances a head index and
// compacts the backing array only when half of it is dead, so append
// stays amortized O(1) on the emission path (which PR 2 engineered to
// zero per-event work) instead of copying the whole ring once full.
// Both sharond and the cluster router retain their output streams in
// one. Live ?after=N resume is served by the broadcast log (hub.go),
// which carries the same seq discipline plus the pre-rendered frames.
type ReplayRing struct {
	mu   sync.Mutex
	buf  []persist.RingEntry
	head int // index of the oldest retained entry in buf
	max  int
	next int64 // seq after the last appended entry
}

// NewReplayRing returns a ring retaining at most max entries.
func NewReplayRing(max int) *ReplayRing {
	return &ReplayRing{max: max}
}

// Append retains one emission; seq must be the ring's next (the sink's
// global sequence is contiguous). Pure in-memory bookkeeping under the
// ring's own mutex; safe to call with caller locks held.
//
//sharon:locksafe
//sharon:deterministic
func (r *ReplayRing) Append(seq int64, payload []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = append(r.buf, persist.RingEntry{Seq: seq, Payload: payload})
	r.next = seq + 1
	for len(r.buf)-r.head > r.max {
		r.buf[r.head] = persist.RingEntry{} // release the payload
		r.head++
	}
	if r.head > 64 && r.head*2 >= len(r.buf) {
		n := copy(r.buf, r.buf[r.head:])
		clear(r.buf[n:])
		r.buf = r.buf[:n]
		r.head = 0
	}
}

// Load seeds the ring from a checkpoint, trimmed to this instance's
// bound (a restart may lower -replay-buffer below what the checkpoint
// retained).
func (r *ReplayRing) Load(entries []persist.RingEntry, nextSeq int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if over := len(entries) - r.max; over > 0 {
		entries = entries[over:]
	}
	r.buf = append([]persist.RingEntry(nil), entries...)
	r.head = 0
	r.next = nextSeq
}

// Snapshot copies the retained entries (checkpointing).
func (r *ReplayRing) Snapshot() []persist.RingEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]persist.RingEntry(nil), r.buf[r.head:]...)
}

// Since returns the retained entries with Seq > after, plus the first
// sequence number actually available. gap is true when a concrete
// cursor cannot be served exactly: emissions in (after, first) have
// aged out of the ring, or after refers to emissions that never
// happened (a client resuming against a server whose sequence
// restarted — serving it would silently skip everything up to the
// phantom cursor). after = -1 is the documented "everything retained"
// request and never gaps; the client's own contiguity check flags a
// trimmed head.
func (r *ReplayRing) Since(after int64) (entries []persist.RingEntry, gap bool, first int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	live := r.buf[r.head:]
	first = r.next - int64(len(live))
	if after >= 0 && ((after+1 < first && r.next > after+1) || after >= r.next) {
		gap = true
	}
	for _, e := range live {
		if e.Seq > after {
			entries = append(entries, e)
		}
	}
	return entries, gap, first
}

// apiVersion is the streaming-contract version stamped on every
// /subscribe response (both transports). Bump on incompatible frame or
// parameter changes.
const apiVersion = "1"

// StreamOptions parameterize one subscription endpoint: the broadcast
// hub that feeds it and the serving instance's query registry. sharond's
// /subscribe and the cluster router's merged /subscribe are the same
// handlers over different hubs; delivery limits (buffering, heartbeats,
// write deadlines) live on the hub itself.
type StreamOptions struct {
	Hub *Hub
	// QueryKnown validates a query=ID filter; nil rejects filtering.
	QueryKnown func(id int) bool
	// Watermark supplies the current stream watermark for the initial
	// punctuation frame of a watermark-subscribed stream.
	Watermark func() int64
}

// subRequest is one parsed subscription: the filter, the resume cursor,
// and whether any legacy parameter form was used (stamps a deprecation
// header on the response).
type subRequest struct {
	filter SubFilter
	resume bool
	after  int64
	legacy bool
}

// parseSubscribe parses the unified subscription surface shared by
// GET /subscribe (SSE) and GET /subscribe/ws (WebSocket):
//
//   - query=ID (repeatable) filters to those query IDs;
//   - group=K (repeatable) filters to those group keys;
//   - type=result|wm|adopted (repeatable) selects frame kinds
//     (default: results only);
//   - after=N and the Last-Event-ID header resume from seq N
//     (header wins; -1 replays everything retained);
//   - punctuate=1 (legacy) = type=result&type=wm&type=adopted;
//   - query=qID (legacy q-prefix) is accepted.
//
// Errors are written to w; ok is false then. Legacy forms keep working
// but mark the response with a Deprecation header pointing at the
// current surface.
func parseSubscribe(w http.ResponseWriter, r *http.Request, o StreamOptions) (sr subRequest, ok bool) {
	q := r.URL.Query()
	sr.after = -1
	for _, raw := range q["query"] {
		s := raw
		if strings.HasPrefix(s, "q") {
			s = strings.TrimPrefix(s, "q")
			sr.legacy = true
		}
		id, err := strconv.Atoi(s)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad query id %q", raw)
			return sr, false
		}
		if o.QueryKnown == nil || !o.QueryKnown(id) {
			writeErr(w, http.StatusNotFound, "no query %d", id)
			return sr, false
		}
		sr.filter.Queries = append(sr.filter.Queries, id)
	}
	for _, raw := range q["group"] {
		g, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad group key %q", raw)
			return sr, false
		}
		sr.filter.Groups = append(sr.filter.Groups, g)
	}
	for _, raw := range q["type"] {
		switch raw {
		case "result":
			sr.filter.Kinds |= KindResult
		case "wm":
			sr.filter.Kinds |= KindWM
		case "adopted":
			sr.filter.Kinds |= KindAdopted
		default:
			writeErr(w, http.StatusBadRequest, "bad type %q (want result, wm, or adopted)", raw)
			return sr, false
		}
	}
	if ps := q.Get("punctuate"); ps != "" && ps != "0" && ps != "false" {
		sr.filter.Kinds |= KindResult | KindWM | KindAdopted
		sr.legacy = true
	}
	// Resume: the Last-Event-ID header (what an SSE client reconnects
	// with automatically) wins over the explicit after= form.
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		v, err := strconv.ParseInt(lei, 10, 64)
		if err != nil || v < -1 {
			writeErr(w, http.StatusBadRequest, "bad Last-Event-ID %q", lei)
			return sr, false
		}
		sr.after, sr.resume = v, true
	} else if as := q.Get("after"); as != "" {
		v, err := strconv.ParseInt(as, 10, 64)
		if err != nil || v < -1 {
			writeErr(w, http.StatusBadRequest, "bad after %q", as)
			return sr, false
		}
		sr.after, sr.resume = v, true
	}
	h := w.Header()
	h.Set("Sharon-Api-Version", apiVersion)
	if sr.legacy {
		h.Set("Deprecation", "true")
		h.Set("Sharon-Api-Note", "legacy subscribe params (q-prefixed query=, punctuate=) accepted; current surface is repeatable query=/group=/type= with after=/Last-Event-ID resume — see README Streaming API")
	}
	return sr, true
}

// subscribe attaches to the hub for one parsed request, mapping the
// errors onto the transport-shared status semantics: 410 +
// Sharon-Oldest-Seq for an aged-out cursor, 503 while draining.
func subscribe(w http.ResponseWriter, o StreamOptions, sr subRequest, ws bool) (*Sub, bool) {
	// Capture the stream position BEFORE subscribing: every result the
	// initial watermark covers was published before the subscription
	// existed, so it is in the backfill. A live read after subscribing
	// could time-travel past results between the attach and the read and
	// let a router lane advance its frontier over undelivered rows.
	initWM, haveInitWM := int64(0), false
	if sr.filter.Kinds&KindWM != 0 && o.Watermark != nil {
		initWM, haveInitWM = o.Watermark(), true
	}
	sub, err := o.Hub.Subscribe(SubOptions{
		Filter:     sr.filter,
		Resume:     sr.resume,
		After:      sr.after,
		WS:         ws,
		SendInitWM: haveInitWM,
		InitWM:     initWM,
	})
	if err != nil {
		if gap, ok := err.(*GapError); ok {
			w.Header().Set("Sharon-Oldest-Seq", strconv.FormatInt(gap.Oldest, 10))
			writeErr(w, http.StatusGone, "%s; resubscribe from scratch or after=%d", gap.Error(), gap.Oldest-1)
			return nil, false
		}
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return nil, false
	}
	return sub, true
}

// sseConn adapts an http.ResponseWriter to the broadcast pool's
// SubConn. Frames are staged into the ResponseWriter's buffer and
// flushed once per delivery burst, not per frame: a flush is a
// chunked-write syscall, and the pool hands runs of queued frames at a
// time, so the subscription's syscall count stays proportional to
// bursts, not frames.
type sseConn struct {
	w       http.ResponseWriter
	rc      *http.ResponseController
	timeout time.Duration
}

func (c *sseConn) WriteBurst(bufs [][]byte) error {
	if c.timeout > 0 {
		_ = c.rc.SetWriteDeadline(time.Now().Add(c.timeout))
	}
	for _, b := range bufs {
		if _, err := c.w.Write(b); err != nil {
			return err
		}
	}
	return c.rc.Flush()
}

func (c *sseConn) WriteHeartbeat() error {
	return c.WriteBurst([][]byte{[]byte(": hb\n\n")})
}

func (c *sseConn) WriteTerminal(reason string) {
	var frame []byte
	if reason == "" {
		frame = []byte("event: eof\ndata: {}\n\n")
	} else {
		frame = []byte("event: dropped\ndata: {\"reason\":\"" + reason + "\"}\n\n")
	}
	_ = c.WriteBurst([][]byte{frame})
}

// ServeStream handles one SSE subscription end to end: the unified
// parameter surface (parseSubscribe), gap refusal before any 200, then
// live delivery off the broadcast log — backfill, initial watermark,
// shared pre-rendered frames, heartbeats, and an explicit terminal
// frame (`eof`, or `dropped` with a reason) on every server-initiated
// close. With ctl kinds subscribed the stream additionally carries
// `event: wm` watermark punctuation after every applied step ("every
// result for windows ending at or before W has been sent") and
// `event: adopted` rebalance markers — which the cluster router's merge
// frontier is built on.
func ServeStream(w http.ResponseWriter, r *http.Request, o StreamOptions) {
	if _, ok := w.(http.Flusher); !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	sr, ok := parseSubscribe(w, r, o)
	if !ok {
		return
	}
	sub, ok := subscribe(w, o, sr, false)
	if !ok {
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	conn := &sseConn{w: w, rc: http.NewResponseController(w), timeout: o.Hub.writeTimeout}
	if conn.WriteBurst([][]byte{[]byte(": subscribed\n\n")}) != nil {
		o.Hub.Unsubscribe(sub)
		return
	}
	if !sub.Start(conn) { // hub drained between attach and start
		conn.WriteTerminal("")
		return
	}
	select {
	case <-sub.Done():
		// Pool-terminated (drain eof, drop, or write error): the
		// terminal frame, if any, was written before Done closed.
	case <-r.Context().Done():
		o.Hub.Unsubscribe(sub)
	}
}

// ServeStreamWS handles one WebSocket subscription: the same parameter
// surface, filters, resume forms, and status semantics as ServeStream,
// with frames delivered as text messages (results are the bare result
// JSON; ctl and terminal frames carry an "event" discriminator field)
// and heartbeats as pings. Refusals (400/404/410/503) happen before the
// upgrade, as plain HTTP responses.
func ServeStreamWS(w http.ResponseWriter, r *http.Request, o StreamOptions) {
	sr, ok := parseSubscribe(w, r, o)
	if !ok {
		return
	}
	sub, ok := subscribe(w, o, sr, true)
	if !ok {
		return
	}
	conn, br, err := upgradeWS(w, r)
	if err != nil {
		o.Hub.Unsubscribe(sub)
		return
	}
	defer conn.Close()
	wsc := &wsSubConn{conn: conn, timeout: o.Hub.writeTimeout}
	if wsc.WriteBurst([][]byte{wsTextFrame([]byte(`{"event":"subscribed"}`))}) != nil {
		o.Hub.Unsubscribe(sub)
		return
	}
	if !sub.Start(wsc) {
		wsc.WriteTerminal("")
		return
	}
	closed := make(chan struct{})
	go func() {
		wsReadLoop(br, wsc)
		close(closed)
	}()
	select {
	case <-sub.Done():
	case <-closed: // client closed or the connection broke
		o.Hub.Unsubscribe(sub)
	case <-r.Context().Done():
		o.Hub.Unsubscribe(sub)
	}
}
