package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	sharon "github.com/sharon-project/sharon"
	"github.com/sharon-project/sharon/internal/chash"
	"github.com/sharon-project/sharon/internal/persist"
)

// Cluster hand-off endpoints: the worker-side half of the router's
// checkpoint-handoff rebalancing protocol.
//
//	POST /cluster/extract   cut a consistent-hash range out of the
//	                        running engine: quiesced snapshot, slice the
//	                        moved groups, log the removal, remove them,
//	                        return the slice (binary ExtractResponse).
//	POST /cluster/adopt     graft a range in: log the AdoptRecord, catch
//	                        the slice up past its watermark by replaying
//	                        the delta in a temporary engine (regenerating
//	                        the emissions the previous owner never
//	                        delivered), absorb the groups, and push an
//	                        `adopted` marker to punctuating subscribers.
//
// Both run on the pump goroutine like every other state change, are
// WAL-logged before they touch the engine (a killed worker re-applies
// them on recovery), and require a uniform, grouped, non-dynamic
// workload with no live migration draining.

// ExtractRequest is the /cluster/extract body: the (old, new) ring
// memberships and the (source, target) pair whose moved keys should be
// cut. Both sides re-derive the same predicate from the same membership
// lists (see chash.Moved), so the request stays O(1) regardless of how
// many groups move.
type ExtractRequest struct {
	Op     int64    `json:"op"`
	VNodes int      `json:"vnodes"`
	Old    []string `json:"old"`
	New    []string `json:"new"`
	Source string   `json:"source"`
	Target string   `json:"target"`
}

// clusterApplicable reports whether a cluster hand-off can run now, and
// the group-capable engine when it can.
func (s *Server) clusterApplicable() (groupHost, *ctlError) {
	if s.old != nil {
		return nil, ctlErrf(http.StatusConflict, "live workload change still draining; retry after its boundary closes")
	}
	if !s.cur.uniform || s.cfg.Dynamic {
		return nil, ctlErrf(http.StatusConflict, "cluster rebalancing requires a uniform non-dynamic workload")
	}
	gh, ok := s.cur.eng.(groupHost)
	if !ok {
		return nil, ctlErrf(http.StatusConflict, "engine kind %T cannot host group hand-offs", s.cur.eng)
	}
	if !s.cur.entries[0].Q.GroupBy {
		return nil, ctlErrf(http.StatusConflict, "cluster rebalancing requires a grouped workload (ungrouped state cannot be hash-partitioned)")
	}
	return gh, nil
}

// applyExtract cuts the requested range on the pump goroutine.
//
//sharon:pump
func (s *Server) applyExtract(req *ctlReq) {
	x := req.extract
	fail := func(ce *ctlError) { req.reply <- ctlReply{status: ce.status, body: map[string]string{"error": ce.msg}} }
	gh, ce := s.clusterApplicable()
	if ce != nil {
		fail(ce)
		return
	}
	oldRing, err := chash.New(x.Old, x.VNodes)
	if err != nil {
		fail(ctlErrf(http.StatusBadRequest, "old ring: %v", err))
		return
	}
	newRing, err := chash.New(x.New, x.VNodes)
	if err != nil {
		fail(ctlErrf(http.StatusBadRequest, "new ring: %v", err))
		return
	}
	moved := chash.Moved(oldRing, newRing, x.Source, x.Target)

	// Quiesced snapshot first (Snapshot barriers the parallel executor),
	// then slice. Nothing is mutated until the WAL record is durable.
	snap, err := s.cur.eng.Snapshot()
	if err != nil {
		fail(ctlErrf(http.StatusInternalServerError, "snapshot: %v", err))
		return
	}
	slice, err := persist.SliceSnapshotGroups(snap, moved)
	if err != nil {
		fail(ctlErrf(http.StatusConflict, "%v", err))
		return
	}
	keys := make([]sharon.GroupKey, len(slice.Engine.Groups))
	for i := range slice.Engine.Groups {
		keys[i] = slice.Engine.Groups[i].Key
	}
	if s.wal != nil {
		rec := persist.ExtractRecord{Op: x.Op, Keys: keys}
		seq, werr := s.wal.Append(persist.RecExtract, persist.EncodeExtractRecord(rec))
		if werr != nil {
			s.fail(werr)
			fail(ctlErrf(http.StatusInternalServerError, "wal: %v", werr))
			return
		}
		s.appliedSeq = seq
	}
	if _, err := gh.RemoveGroups(moved); err != nil {
		s.fail(err)
		fail(ctlErrf(http.StatusInternalServerError, "remove: %v", err))
		return
	}
	body, err := persist.EncodeExtractResponse(persist.ExtractResponse{
		Watermark: s.wmState,
		Groups:    int64(len(keys)),
		Slice:     slice,
	})
	if err != nil {
		fail(ctlErrf(http.StatusInternalServerError, "encode: %v", err))
		return
	}
	s.cfg.Logf("cluster extract op %d: %d groups handed off to %s at watermark %d", x.Op, len(keys), x.Target, s.wmState)
	req.reply <- ctlReply{status: http.StatusOK, raw: body}
}

// replayExtract re-applies a logged extraction during WAL recovery.
func (s *Server) replayExtract(rec persist.ExtractRecord) error {
	gh, ce := s.clusterApplicable()
	if ce != nil {
		return fmt.Errorf("replay extract: %s", ce.msg)
	}
	drop := make(map[sharon.GroupKey]bool, len(rec.Keys))
	for _, k := range rec.Keys {
		drop[k] = true
	}
	_, err := gh.RemoveGroups(func(k sharon.GroupKey) bool { return drop[k] })
	return err
}

// applyAdopt grafts a shipped range on the pump goroutine.
//
//sharon:pump
func (s *Server) applyAdopt(req *ctlReq) {
	a := req.adopt
	fail := func(ce *ctlError) { req.reply <- ctlReply{status: ce.status, body: map[string]string{"error": ce.msg}} }
	if _, ce := s.clusterApplicable(); ce != nil {
		fail(ce)
		return
	}
	if !a.Plan.Equal(s.cur.plan) {
		fail(ctlErrf(http.StatusConflict, "adopt slice was built under a different sharing plan than this worker runs (same queries and rates on every worker required)"))
		return
	}
	if a.TargetWM < s.wmState {
		fail(ctlErrf(http.StatusConflict, "adopt target watermark %d behind this worker's %d (router must barrier before handing off)", a.TargetWM, s.wmState))
		return
	}
	// Log before apply: a crash mid-graft re-applies the whole hand-off,
	// regenerating the same groups and the same emissions.
	if s.wal != nil {
		payload, err := persist.EncodeAdoptRecord(*a)
		if err != nil {
			fail(ctlErrf(http.StatusInternalServerError, "encode: %v", err))
			return
		}
		seq, werr := s.wal.Append(persist.RecAdopt, payload)
		if werr != nil {
			s.fail(werr)
			fail(ctlErrf(http.StatusInternalServerError, "wal: %v", werr))
			return
		}
		s.appliedSeq = seq
	}
	groups, regen, err := s.adoptApply(a)
	if err != nil {
		s.fail(err)
		fail(ctlErrf(http.StatusInternalServerError, "adopt: %v", err))
		return
	}
	s.publishEngineStats(true)
	req.reply <- ctlReply{status: http.StatusOK, body: map[string]any{
		"op":          a.Op,
		"adopted":     groups,
		"regenerated": regen,
		"watermark":   s.wmState,
	}}
	s.adoptDone(a)
}

// adoptApply is the shared graft path of the live handler and WAL
// replay: rebuild the moved range in a temporary sequential engine —
// restore the slice, replay the delta past the slice watermark, emitting
// (through the server's normal sink sequence) only the windows the
// previous owner never delivered — then absorb the caught-up groups
// into the serving engine and align the stream watermark.
//
//sharon:applies
func (s *Server) adoptApply(a *persist.AdoptRecord) (groups int, regen int64, err error) {
	// Quiesce first: with a parallel engine the merge goroutine may
	// still be assigning sequence numbers to results of earlier steps
	// (live: the pre-adopt punctuation already quiesced; WAL replay has
	// no punctuation), and the regenerated emissions below must take
	// strictly later seqs than everything at or below the watermark.
	if err := s.cur.eng.Quiesce(); err != nil {
		return 0, 0, fmt.Errorf("quiesce: %w", err)
	}
	w := workloadOf(s.cur.entries)
	qs := s.cur.sink.qs
	emitFrom := a.EmitFrom
	sink := func(r sharon.Result) {
		q := qs[r.Query]
		if q == nil || q.Window.End(r.Win) <= emitFrom {
			return
		}
		seq := s.seq.Add(1) - 1
		s.emitted.Add(1)
		payload := EncodeResult(qs, seq, r)
		s.ring.Append(seq, payload)
		s.hub.Publish(r.Query, int64(r.Group), seq, payload, time.Now().UnixNano())
		regen++
	}
	tmp, err := sharon.NewSystem(w, sharon.Options{
		Plan:        a.Plan,
		OnResult:    sink,
		EmitEmpty:   s.cfg.EmitEmpty,
		Parallelism: 1,
	})
	if err != nil {
		return 0, 0, fmt.Errorf("temp engine: %w", err)
	}
	defer tmp.Close()
	last := int64(-1)
	if a.Slice != nil && a.Slice.Engine != nil && a.Slice.Engine.Started {
		if err := tmp.Restore(a.Slice); err != nil {
			return 0, 0, fmt.Errorf("restore slice: %w", err)
		}
		last = a.Slice.Engine.LastTime
	}
	// The delta may overlap the slice (checkpoint-covered WAL records,
	// double-shipped in-flight batches): the time filter is the same
	// late-event defense the ingest path runs.
	for _, b := range a.Delta {
		events := b.Events
		for len(events) > 0 && events[0].Time <= last {
			events = events[1:]
		}
		if len(events) > 0 {
			if err := tmp.FeedBatch(events); err != nil {
				return 0, 0, fmt.Errorf("delta replay: %w", err)
			}
			last = events[len(events)-1].Time
		}
		if b.Watermark > last {
			tmp.AdvanceWatermark(b.Watermark)
			last = b.Watermark
		}
	}
	if a.TargetWM > last {
		tmp.AdvanceWatermark(a.TargetWM)
		last = a.TargetWM
	}
	if last > a.TargetWM {
		return 0, 0, fmt.Errorf("delta runs to %d, past the target watermark %d (router shipped steps beyond the barrier)", last, a.TargetWM)
	}
	snap, err := tmp.Snapshot()
	if err != nil {
		return 0, 0, fmt.Errorf("snapshot caught-up slice: %w", err)
	}
	caught, err := sharon.SliceGroups(snap, func(sharon.GroupKey) bool { return true })
	if err != nil {
		return 0, 0, err
	}
	gh, ce := s.clusterApplicable()
	if ce != nil {
		return 0, 0, fmt.Errorf("%s", ce.msg)
	}
	if err := gh.AbsorbGroups(caught); err != nil {
		return 0, 0, fmt.Errorf("absorb: %w", err)
	}
	if a.TargetWM > s.wmState {
		s.wmState = a.TargetWM
		s.wm.Store(a.TargetWM)
	}
	s.cfg.Logf("cluster adopt op %d: %d groups grafted at watermark %d (%d results regenerated past %d)",
		a.Op, len(caught.Engine.Groups), a.TargetWM, regen, emitFrom)
	return len(caught.Engine.Groups), regen, nil
}

// replayAdopt re-applies a logged hand-off during WAL recovery. The
// regenerated emissions repeat with the same sequence numbers, keeping
// the replay ring contiguous across a crash mid-rebalance.
func (s *Server) replayAdopt(rec persist.AdoptRecord) error {
	if _, ce := s.clusterApplicable(); ce != nil {
		return fmt.Errorf("replay adopt: %s", ce.msg)
	}
	_, _, err := s.adoptApply(&rec)
	return err
}

// adoptDone publishes the `adopted` SSE marker after the reply is
// queued; punctuating subscribers (the router) use it as the "all
// regenerated results delivered" barrier. Ordered after the regenerated
// results because both flow through the hub from the pump goroutine.
func (s *Server) adoptDone(a *persist.AdoptRecord) {
	s.hub.PublishCtl("adopted", fmt.Appendf(nil, `{"op":%d,"watermark":%d}`, a.Op, s.wmState))
}

func (s *Server) handleClusterExtract(w http.ResponseWriter, r *http.Request) {
	var x ExtractRequest
	lim := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(lim).Decode(&x); err != nil {
		writeErr(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	if x.Source == "" || x.Target == "" || len(x.Old) == 0 || len(x.New) == 0 {
		writeErr(w, http.StatusBadRequest, "want {op, vnodes, old:[...], new:[...], source, target}")
		return
	}
	s.sendCtl(w, &ctlReq{extract: &x})
}

func (s *Server) handleClusterAdopt(w http.ResponseWriter, r *http.Request) {
	// Adopt bodies carry a checkpoint slice; allow well past the ingest
	// batch limit but still bounded.
	lim := http.MaxBytesReader(w, r.Body, 1<<30)
	body, err := io.ReadAll(lim)
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, "read: %v", err)
		return
	}
	rec, err := persist.DecodeAdoptRecord(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	s.sendCtl(w, &ctlReq{adopt: &rec})
}
