package server

import (
	"net/http"
	"strconv"

	"github.com/sharon-project/sharon/internal/metrics"
	"github.com/sharon-project/sharon/internal/obs"
)

// serverStages aggregates per-stage pipeline latency so /metrics can
// answer "where does ingest-to-emit latency go" server-side. Stage
// boundaries (all recorded in nanoseconds):
//
//	decode_*  request read + parse, per wire path (ndjson | binary
//	          one-shot | stream frame)
//	queue     ingest-queue admit → pump dequeue
//	apply     engine feed + watermark advance for one batch
//	emit      ingest-queue admit → result published (ingest-to-emit)
//	fanout    result published → subscriber socket write
type serverStages struct {
	decodeNDJSON obs.Histogram
	decodeBinary obs.Histogram
	decodeStream obs.Histogram
	queue        obs.Histogram
	apply        obs.Histogram
	emit         obs.Histogram
	fanout       obs.Histogram
}

// wireBatchEvents is the per-frame batch-size distribution at the
// binary decode edge. It is recorded inside decodeWireEvents — on the
// hot-path call graph, which is the point: obs recording provably
// passes the hotpathalloc gate. Process-global because the decoder is
// shared API surface (the router calls DecodeWireBatch too); one
// sharond process hosts one server, and the router exposes its own.
var wireBatchEvents obs.Histogram

// summaries digests the stage histograms for the JSON /metrics form
// (milliseconds; the batch-size series stays in events).
func (st *serverStages) summaries() map[string]obs.Summary {
	return map[string]obs.Summary{
		"decode_ndjson":     st.decodeNDJSON.Snapshot().Summary(1e-6),
		"decode_binary":     st.decodeBinary.Snapshot().Summary(1e-6),
		"decode_stream":     st.decodeStream.Snapshot().Summary(1e-6),
		"queue":             st.queue.Snapshot().Summary(1e-6),
		"apply":             st.apply.Snapshot().Summary(1e-6),
		"emit":              st.emit.Snapshot().Summary(1e-6),
		"fanout":            st.fanout.Snapshot().Summary(1e-6),
		"wire_batch_events": wireBatchEvents.Snapshot().Summary(1),
	}
}

// promStages lists the latency stages in stable exposition order.
func (st *serverStages) promStages() []struct {
	name string
	h    *obs.Histogram
} {
	return []struct {
		name string
		h    *obs.Histogram
	}{
		{"decode_ndjson", &st.decodeNDJSON},
		{"decode_binary", &st.decodeBinary},
		{"decode_stream", &st.decodeStream},
		{"queue", &st.queue},
		{"apply", &st.apply},
		{"emit", &st.emit},
		{"fanout", &st.fanout},
	}
}

// writeProm renders the full ServerStats snapshot in the Prometheus
// text exposition format v0.0.4 (the JSON form's counters plus the
// stage histograms with their buckets).
func (s *Server) writeProm(w http.ResponseWriter, st metrics.ServerStats) {
	pw := &obs.PromWriter{}
	pw.Gauge("sharon_uptime_seconds", "Seconds since the server started.", nil, st.UptimeSec)
	pw.Gauge("sharon_queries", "Registered queries.", nil, float64(st.Queries))
	pw.Gauge("sharon_parallelism", "Configured shard worker count.", nil, float64(st.Parallelism))
	pw.Counter("sharon_events_ingested_total", "Events accepted into the engine.", nil, float64(st.EventsIngested))
	pw.Counter("sharon_events_dropped_total", "Events discarded before apply, by reason.", []string{"reason", "late"}, float64(st.EventsDroppedLate))
	pw.Counter("sharon_events_dropped_total", "Events discarded before apply, by reason.", []string{"reason", "unknown_type"}, float64(st.EventsDroppedUnknownType))
	pw.Counter("sharon_batches_total", "Accepted ingest batches.", nil, float64(st.Batches))
	pw.Counter("sharon_rejected_total", "Refused ingest requests, by reason.", []string{"reason", "backpressure"}, float64(st.RejectedBackpressure))
	pw.Counter("sharon_rejected_total", "Refused ingest requests, by reason.", []string{"reason", "oversize"}, float64(st.RejectedOversize))
	pw.Gauge("sharon_ingest_queue_depth", "Parsed batches queued ahead of the pump.", nil, float64(st.IngestQueueDepth))
	pw.Gauge("sharon_ingest_queue_cap", "Ingest queue capacity.", nil, float64(st.IngestQueueCap))
	pw.Gauge("sharon_watermark", "Stream watermark in ticks (-1 before the first).", nil, float64(st.Watermark))
	pw.Counter("sharon_results_emitted_total", "Results pushed to the server sink.", nil, float64(st.ResultsEmitted))
	pw.Counter("sharon_results_delivered_total", "Result frames fanned out to subscribers.", nil, float64(st.ResultsDelivered))
	pw.Gauge("sharon_subscribers", "Live result subscriptions.", nil, float64(st.Subscribers))
	pw.Counter("sharon_slow_consumer_disconnects_total", "Subscribers dropped on broadcast-log overrun.", nil, float64(st.SlowConsumerDisconnects))
	pw.Gauge("sharon_fanout_subscribers", "Live subscriptions on the broadcast fan-out tier.", nil, float64(st.Subscribers))
	pw.Counter("sharon_fanout_frames_encoded_total", "Shared frames rendered (once per published result or ctl event).", nil, float64(st.FanoutFramesEncoded))
	pw.Counter("sharon_fanout_frames_delivered_total", "Frames written into subscriber streams.", nil, float64(st.FanoutFramesDelivered))
	pw.Counter("sharon_fanout_dropped_total", "Subscribers ended with an explicit dropped frame, by reason.", []string{"reason", "slow-consumer"}, float64(st.FanoutDroppedSlow))
	pw.Counter("sharon_fanout_dropped_total", "Subscribers ended with an explicit dropped frame, by reason.", []string{"reason", "filtered-resume"}, float64(st.FanoutDroppedFiltered))
	pw.Counter("sharon_migrations_total", "Live workload changes that installed a new plan.", nil, float64(st.Migrations))
	if st.BurstState != "" {
		pw.Gauge("sharon_burst_state", "Adaptive detector state (0 = valley/split, 1 = burst/shared).", nil, boolGauge(st.BurstState == "burst"))
	}
	pw.Counter("sharon_share_transitions_total", "Confirmed burst transitions that installed the shared plan.", nil, float64(st.ShareTransitions))
	pw.Counter("sharon_split_transitions_total", "Confirmed valley transitions that split back to per-query plans.", nil, float64(st.SplitTransitions))
	pw.Counter("sharon_pruned_starts_total", "START records recycled at birth by the state reduction.", nil, float64(st.PrunedStarts))
	pw.Gauge("sharon_peak_live_states", "Peak live aggregate-state count.", nil, float64(st.PeakLiveStates))
	pw.Gauge("sharon_groups_live", "Live per-group runtimes owned by the engine.", nil, float64(st.GroupsLive))
	pw.Gauge("sharon_draining", "1 while the server is shutting down.", nil, boolGauge(st.Draining))

	const stageHelp = "Per-stage pipeline latency (see README Observability for stage boundaries)."
	for _, sg := range s.stages.promStages() {
		pw.Histogram("sharon_stage_latency_seconds", stageHelp, []string{"stage", sg.name}, sg.h.Snapshot(), 1e-9)
	}
	pw.Histogram("sharon_wire_batch_events", "Events per binary wire frame at the decode edge.", nil, wireBatchEvents.Snapshot(), 1)

	if p := st.Parallel; p != nil {
		pw.Gauge("sharon_parallel_workers", "Parallel executor worker count.", nil, float64(p.Workers))
		pw.Counter("sharon_parallel_events_fed_total", "Events fed to shard workers.", nil, float64(p.EventsFed))
		pw.Counter("sharon_parallel_rounds_total", "Parallel feed/merge rounds.", nil, float64(p.Rounds))
		pw.Counter("sharon_parallel_results_merged_total", "Results merged from shard workers.", nil, float64(p.ResultsMerged))
		pw.Gauge("sharon_parallel_imbalance", "Shard occupancy imbalance ratio.", nil, p.Imbalance)
	}
	if d := st.Durability; d != nil {
		pw.Gauge("sharon_wal_bytes", "Live WAL size in bytes.", nil, float64(d.WalBytes))
		pw.Gauge("sharon_wal_segments", "Live WAL segment count.", nil, float64(d.WalSegments))
		pw.Counter("sharon_wal_appended_total", "WAL records appended since boot.", nil, float64(d.WalAppended))
		pw.Counter("sharon_wal_syncs_total", "WAL fsyncs since boot.", nil, float64(d.WalSyncs))
		pw.Counter("sharon_checkpoints_total", "Checkpoints written since boot.", nil, float64(d.Checkpoints))
		pw.Gauge("sharon_last_checkpoint_age_seconds", "Age of the newest checkpoint (-1 before the first).", nil, d.LastCheckpointAgeSec)
		pw.Gauge("sharon_recovering", "1 while WAL replay is running.", nil, boolGauge(d.Recovering))
	}

	w.Header().Set("Content-Type", obs.PromContentType)
	_, _ = w.Write(pw.Bytes())
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// handleTraces dumps the most recent pipeline spans (?n= bounds the
// count, default all retained) as JSON.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	writeJSON(w, http.StatusOK, map[string]any{"spans": s.tracer.Spans(n)})
}
