// Package server implements sharond: the network-facing streaming
// aggregation server. It exposes a Sharon system over HTTP — batched
// NDJSON event ingestion with bounded-queue backpressure, push-based
// per-query result subscriptions (SSE) fed by the engines' OnResult
// sink as windows close, watermark punctuation for unbounded streams,
// live query registration backed by optimizer re-runs, /metrics and
// /healthz, and a graceful drain that flushes every open window into
// the subscriptions before the listener stops.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	sharon "github.com/sharon-project/sharon"
)

// IngestLine is one NDJSON line of the ingest framing: either an event
//
//	{"type":"A","time":1200,"key":7,"val":1.5}
//
// with time in ticks (sharon.TicksPerSecond per second, strictly
// increasing across the connection's batches), or a watermark
// punctuation line
//
//	{"watermark":5000}
//
// promising that no event at or before that tick will follow, which
// closes (and pushes) every window ending at or before it.
type IngestLine struct {
	Type      string  `json:"type,omitempty"`
	Time      int64   `json:"time,omitempty"`
	Key       int64   `json:"key,omitempty"`
	Val       float64 `json:"val,omitempty"`
	Watermark *int64  `json:"watermark,omitempty"`
}

// WireResult is the canonical wire form of one pushed aggregate. Seq
// numbers the server's global emission sequence; start/end are the
// window's tick bounds; value is the query's final answer (null when
// the aggregate of an empty window has no finite value, e.g. MIN).
type WireResult struct {
	Seq   int64    `json:"seq"`
	Query int      `json:"query"`
	Win   int64    `json:"win"`
	Start int64    `json:"start"`
	End   int64    `json:"end"`
	Group int64    `json:"group"`
	Count float64  `json:"count"`
	Value *float64 `json:"value"`
}

// EncodeResult renders one result in the canonical wire form. It is a
// pure function of (queries, seq, result), so an in-process run
// encoding its own OnResult stream produces byte-identical lines to a
// sharond subscription over the same input — the equivalence the
// integration tests assert.
func EncodeResult(queries map[int]*sharon.Query, seq int64, r sharon.Result) []byte {
	q := queries[r.Query]
	wr := WireResult{
		Seq:   seq,
		Query: r.Query,
		Win:   r.Win,
		Start: q.Window.Start(r.Win),
		End:   q.Window.End(r.Win),
		Group: int64(r.Group),
		Count: r.State.Count,
	}
	if v := sharon.Value(r, q); !math.IsInf(v, 0) && !math.IsNaN(v) {
		wr.Value = &v
	}
	b, err := json.Marshal(wr)
	if err != nil {
		// WireResult contains only finite scalars; Marshal cannot fail.
		panic(fmt.Sprintf("server: encode result: %v", err))
	}
	return b
}

// Batch is one parsed ingest request: the events to feed (known types
// only, in order) plus the highest explicit watermark line seen (-1 if
// none) and the count of dropped unknown-type events.
type Batch struct {
	Events    []sharon.Event
	Watermark int64
	Unknown   int64
}

// ParseBatch reads NDJSON ingest lines into a fresh batch. The ingest
// handlers use pooled batches via (*Batch).ReadNDJSON instead; this
// wrapper remains for callers that want value semantics.
func ParseBatch(r io.Reader, lookup map[string]sharon.Type) (Batch, error) {
	b := Batch{Watermark: -1}
	if err := b.ReadNDJSON(r, lookup); err != nil {
		return Batch{}, err
	}
	return b, nil
}

// ReadNDJSON appends NDJSON ingest lines to b (normally a recycled
// GetBatch, so the Events backing array amortizes across requests).
// lookup maps type names to the workload's interned types; events of
// unknown types are dropped and counted (they cannot contribute to any
// registered query). Lines must be time-ordered within the batch —
// ordering across batches is the pump's concern, which drops late
// events instead of failing the stream. A malformed or out-of-order
// line fails the whole batch (b's contents are then undefined; discard
// or recycle it); the engine never sees a partial parse.
func (b *Batch) ReadNDJSON(r io.Reader, lookup map[string]sharon.Type) error {
	dec := json.NewDecoder(r)
	floor := int64(-1)
	for n := 1; ; n++ {
		var line IngestLine
		if err := dec.Decode(&line); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("line %d: %w", n, err)
		}
		if line.Watermark != nil {
			if *line.Watermark > b.Watermark {
				b.Watermark = *line.Watermark
			}
			if *line.Watermark > floor {
				floor = *line.Watermark
			}
			continue
		}
		if line.Type == "" {
			return fmt.Errorf("line %d: missing event type", n)
		}
		if line.Time < 0 {
			return fmt.Errorf("line %d: negative timestamp %d", n, line.Time)
		}
		if line.Time <= floor {
			return fmt.Errorf("line %d: timestamp %d not after %d (events must be strictly time-ordered within a batch)", n, line.Time, floor)
		}
		floor = line.Time
		t, ok := lookup[line.Type]
		if !ok {
			b.Unknown++
			continue
		}
		b.Events = append(b.Events, sharon.Event{
			Time: line.Time,
			Type: t,
			Key:  sharon.GroupKey(line.Key),
			Val:  line.Val,
		})
	}
}
