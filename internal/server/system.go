package server

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	sharon "github.com/sharon-project/sharon"
	"github.com/sharon-project/sharon/internal/obs"
)

// engine is the slice of the public system API the server drives. All
// three system kinds (System, PartitionedSystem, DynamicSystem)
// implement it; the server, the harness, and in-process callers are
// thereby consumers of the same OnResult sink contract.
type engine interface {
	FeedBatch([]sharon.Event) error
	AdvanceWatermark(t int64)
	Flush() error
	Close()
	ResultCount() int64
	PeakMemoryStates() int64
	GroupCount() int64
	ParallelStats() sharon.ParallelStats
	Snapshot() (*sharon.StateSnapshot, error)
	Restore(*sharon.StateSnapshot) error
	Quiesce() error
}

// groupHost is the optional cluster-rebalance capability of an engine:
// only uniform non-dynamic systems (sharon.System) implement it. The
// /cluster/adopt and /cluster/extract handlers type-assert it and
// refuse other workload shapes.
type groupHost interface {
	AbsorbGroups(*sharon.StateSnapshot) error
	RemoveGroups(func(sharon.GroupKey) bool) (int, error)
}

// queryEntry is one registered query: its global ID (stable across live
// workload changes), its source text, and its compiled form.
type queryEntry struct {
	ID   int
	Text string
	Q    *sharon.Query
}

// workloadOf assembles the entries' compiled queries.
func workloadOf(entries []queryEntry) sharon.Workload {
	w := make(sharon.Workload, len(entries))
	for i, e := range entries {
		w[i] = e.Q
	}
	return w
}

// uniform reports whether the workload satisfies the single-segment
// assumptions (same window, grouping, and predicates), i.e. whether it
// runs on System rather than PartitionedSystem.
func uniform(w sharon.Workload) bool {
	first := w[0]
	for _, q := range w[1:] {
		if q.Window != first.Window || q.GroupBy != first.GroupBy {
			return false
		}
		if len(q.Where) != len(first.Where) {
			return false
		}
		for i := range q.Where {
			if q.Where[i] != first.Where[i] {
				return false
			}
		}
	}
	return true
}

// sink forwards one system's emitted results to the hub, bounded to the
// window range [lo, hi) the system owns in the live-migration protocol
// (a fresh system owns [0, inf); a draining one is capped at the
// boundary). hi is atomic because the parallel merge goroutine reads it
// while the pump installs a new bound at a workload change.
type sink struct {
	srv *Server
	qs  map[int]*sharon.Query
	lo  int64
	hi  atomic.Int64
}

func newSink(srv *Server, entries []queryEntry, lo int64) *sink {
	qs := make(map[int]*sharon.Query, len(entries))
	for _, e := range entries {
		qs[e.ID] = e.Q
	}
	sk := &sink{srv: srv, qs: qs, lo: lo}
	sk.hi.Store(math.MaxInt64)
	return sk
}

// onResult is the OnResult callback: encode once, retain in the replay
// ring (the resumable-subscription backfill, persisted with each
// checkpoint), publish to every matching subscriber. Ring before hub: a
// subscriber resuming concurrently sees the emission in its ring read,
// its live channel, or both — never neither — and deduplicates by seq.
func (sk *sink) onResult(r sharon.Result) {
	if r.Win < sk.lo || r.Win >= sk.hi.Load() {
		return
	}
	seq := sk.srv.seq.Add(1) - 1
	sk.srv.emitted.Add(1)
	payload := EncodeResult(sk.qs, seq, r)
	// Ingest-to-emit: attribute the result to the admit stamp of the
	// step the pump is applying (the batch whose events or watermark
	// closed this window). Reached only through the dynamic OnResult
	// seam, so the wall clock here never taints a deterministic path.
	now := time.Now().UnixNano()
	if stamp := sk.srv.batchStamp.Load(); stamp > 0 {
		sk.srv.stages.emit.Record(now - stamp)
		if q, ok := sk.qs[r.Query]; ok && sk.srv.lastWinTraced.Swap(r.Win) != r.Win {
			sk.srv.tracer.Record(obs.Span{
				Kind:      "window",
				Start:     stamp,
				DurNs:     now - stamp,
				Seq:       seq,
				Watermark: q.Window.End(r.Win),
			})
		}
	}
	sk.srv.ring.Append(seq, payload)
	sk.srv.hub.Publish(r.Query, int64(r.Group), seq, payload, now)
}

// builtSystem pairs a running system with its sink and metadata.
type builtSystem struct {
	eng     engine
	sink    *sink
	entries []queryEntry
	win     sharon.Window // uniform window (zero when partitioned)
	uniform bool
	dyn     *sharon.DynamicSystem // non-nil in dynamic mode
	plan    sharon.Plan           // initial plan (uniform systems)
	score   float64
}

// buildSystem compiles the entries into a running system with a fresh
// sink emitting windows >= lo. plan, when non-nil, bypasses the
// optimizer (the live-registration path optimizes first to compute the
// plan diff, then hands the chosen plan over).
func (s *Server) buildSystem(entries []queryEntry, rates sharon.Rates, plan sharon.Plan, lo int64) (*builtSystem, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("server: empty workload")
	}
	w := workloadOf(entries)
	sk := newSink(s, entries, lo)
	bs := &builtSystem{sink: sk, entries: entries, uniform: uniform(w)}
	opts := sharon.Options{
		Rates:       rates,
		Plan:        plan,
		OnResult:    sk.onResult,
		EmitEmpty:   s.cfg.EmitEmpty,
		Parallelism: s.cfg.Parallelism,
	}
	switch {
	case !bs.uniform:
		sys, err := sharon.NewPartitionedSystem(w, opts)
		if err != nil {
			return nil, err
		}
		bs.eng = sys
	case s.cfg.Dynamic:
		dopts := sharon.DynamicOptions{
			OnResult:    sk.onResult,
			EmitEmpty:   s.cfg.EmitEmpty,
			Parallelism: s.cfg.Parallelism,
			OnMigrate:   func(int64, sharon.Plan, sharon.Plan) { s.migrations.Add(1) },
		}
		if s.cfg.Adaptive {
			dopts.Adaptive = true
			// Transition counters and the detector-state gauge are fed
			// from the decision callback (serialized across shards), not
			// polled: shard state is worker-owned while the run is live.
			dopts.OnDecision = func(_ int64, state sharon.BurstState, _ sharon.Plan) {
				s.burstState.Store(int32(state))
				if state == sharon.Burst {
					s.shareTrans.Add(1)
				} else {
					s.splitTrans.Add(1)
				}
			}
		}
		dyn, err := sharon.NewDynamicSystem(w, rates, dopts)
		if err != nil {
			return nil, err
		}
		bs.eng, bs.dyn = dyn, dyn
		bs.win = w[0].Window
		bs.plan = dyn.Plan()
	default:
		sys, err := sharon.NewSystem(w, opts)
		if err != nil {
			return nil, err
		}
		bs.eng = sys
		bs.win = w[0].Window
		bs.plan = sys.Plan()
		bs.score = sys.PlanScore()
	}
	return bs, nil
}
