package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	sharon "github.com/sharon-project/sharon"
	"github.com/sharon-project/sharon/internal/persist"
)

// Live query registration (the paper's workload-evolution scenario,
// over the wire): POST /queries and DELETE /queries/{id} re-run the
// Sharon optimizer on the updated workload and migrate to the new plan
// at a window boundary, exactly like exec.Dynamic's §7.4 protocol but
// driven by workload changes instead of rate drift — the old system
// keeps consuming the stream until every window it owns (those starting
// before the boundary) has closed, the new system owns the windows from
// the boundary on, and each sink is window-capped so every window is
// emitted exactly once. The response reports the plan diff and the
// migration count.

// ctlReq is a control-plane request executed on the pump goroutine,
// which owns the engine and the registry: a live workload change
// (add/remove) or a cluster hand-off (adopt/extract, see cluster.go).
type ctlReq struct {
	add     []string
	remove  []int
	adopt   *persist.AdoptRecord
	extract *ExtractRequest
	reply   chan ctlReply
}

// ctlReply is the handler-visible outcome: a JSON body, or a raw
// binary body (cluster extract slices) when raw is non-nil.
type ctlReply struct {
	status int
	body   any
	raw    []byte
}

// planDiff describes how the sharing plan changed at a migration.
type planDiff struct {
	Added   []string `json:"added"`
	Removed []string `json:"removed"`
}

// diffPlans compares plans as candidate sets; removed candidates are
// rendered against the old workload (they may reference removed
// queries), added ones against the new.
func (s *Server) diffPlans(oldPlan sharon.Plan, oldW sharon.Workload, newPlan sharon.Plan, newW sharon.Workload) planDiff {
	d := planDiff{Added: []string{}, Removed: []string{}}
	oldKeys := make(map[string]bool, len(oldPlan))
	for _, c := range oldPlan {
		oldKeys[c.Key()] = true
	}
	newKeys := make(map[string]bool, len(newPlan))
	for _, c := range newPlan {
		newKeys[c.Key()] = true
		if !oldKeys[c.Key()] {
			d.Added = append(d.Added, c.Format(s.reg, newW))
		}
	}
	for _, c := range oldPlan {
		if !newKeys[c.Key()] {
			d.Removed = append(d.Removed, c.Format(s.reg, oldW))
		}
	}
	return d
}

// ctlError carries a user-addressable control-plane failure.
type ctlError struct {
	status int
	msg    string
}

func (e *ctlError) Error() string { return e.msg }

func ctlErrf(status int, format string, args ...any) *ctlError {
	return &ctlError{status: status, msg: fmt.Sprintf(format, args...)}
}

// editEntries assembles the post-change query list: removals by ID,
// additions parsed and uniformity-checked against the running workload.
// assigned supplies the IDs for added queries (WAL replay re-applies a
// recorded change); nil allocates fresh IDs from s.nextID. Pump
// goroutine (owns the registry and nextID).
func (s *Server) editEntries(add []string, remove []int, assigned []int) ([]queryEntry, []int, *ctlError) {
	entries := append([]queryEntry(nil), s.cur.entries...)
	for _, id := range remove {
		at := -1
		for i, e := range entries {
			if e.ID == id {
				at = i
				break
			}
		}
		if at < 0 {
			return nil, nil, ctlErrf(http.StatusNotFound, "no query %d", id)
		}
		entries = append(entries[:at], entries[at+1:]...)
	}
	if assigned != nil && len(assigned) != len(add) {
		return nil, nil, ctlErrf(http.StatusBadRequest, "recorded change has %d ids for %d queries", len(assigned), len(add))
	}
	ids := make([]int, 0, len(add))
	for i, text := range add {
		q, err := sharon.ParseQuery(text, s.reg)
		if err != nil {
			return nil, nil, ctlErrf(http.StatusBadRequest, "parse: %v", err)
		}
		// The hand-off boundary is a window index of the current uniform
		// window; a query with a different window (or grouping or
		// predicates) would reinterpret that index and emit windows that
		// miss their pre-registration events. Enforce uniformity against
		// the running system, not just within the new workload.
		if !uniform(sharon.Workload{s.cur.entries[0].Q, q}) {
			return nil, nil, ctlErrf(http.StatusBadRequest,
				"query %q does not match the running workload's window/grouping/predicates (live registration requires a uniform workload)", text)
		}
		if assigned != nil {
			q.ID = assigned[i]
			if q.ID >= s.nextID {
				s.nextID = q.ID + 1
			}
		} else {
			q.ID = s.nextID
			s.nextID++
		}
		ids = append(ids, q.ID)
		entries = append(entries, queryEntry{ID: q.ID, Text: text, Q: q})
	}
	if len(entries) == 0 {
		return nil, nil, ctlErrf(http.StatusBadRequest, "workload cannot become empty")
	}
	return entries, ids, nil
}

// ctlRates resolves the rates a workload change optimizes under.
func (s *Server) ctlRates(newW sharon.Workload) sharon.Rates {
	rates := s.measuredRates()
	if rates == nil {
		return s.configuredRates(newW)
	}
	// Types the stream has not shown yet still need a rate entry.
	for t := range newW.Types() {
		if _, ok := rates[t]; !ok {
			rates[t] = 1
		}
	}
	return rates
}

// buildNextWorkload runs the fallible half of a workload change: the
// hand-off boundary and the new system, built but not yet installed.
// Pump goroutine.
func (s *Server) buildNextWorkload(entries []queryEntry, rates sharon.Rates, plan sharon.Plan) (int64, *builtSystem, *ctlError) {
	// The new system owns windows from the first one starting after the
	// watermark; before any event everything starts fresh at window 0.
	boundary := int64(0)
	if s.wmState >= 0 {
		boundary = s.cur.win.LastContaining(s.wmState) + 1
	}
	next, err := s.buildSystem(entries, rates, plan, boundary)
	if err != nil {
		return 0, nil, ctlErrf(http.StatusBadRequest, "%v", err)
	}
	return boundary, next, nil
}

// installWorkload swaps the built system in, retiring (or draining) the
// old one. Infallible by construction: everything that can fail runs in
// buildNextWorkload, BEFORE the change is logged to the WAL — a logged
// change must always be installable, or replaying it would wedge
// recovery on a failure the live path shrugged off. Pump goroutine.
//
//sharon:applies
func (s *Server) installWorkload(entries []queryEntry, boundary int64, next *builtSystem) {
	if boundary == 0 {
		// Nothing was ever fed: replace outright, nothing to drain.
		s.cur.eng.Close()
	} else {
		s.cur.sink.hi.Store(boundary)
		s.old = s.cur
		s.oldBoundary = boundary
	}
	s.cur = next
	s.migrations.Add(1)
	s.publishView()
	s.cfg.Logf("workload change: %d queries, boundary window %d, plan %s",
		len(entries), boundary, s.loadView().plan)
}

// ctlApplicable reports whether a workload change can run right now.
func (s *Server) ctlApplicable() *ctlError {
	if s.old != nil {
		return ctlErrf(http.StatusConflict, "previous workload change still draining; retry after its boundary closes")
	}
	if !s.cur.uniform {
		return ctlErrf(http.StatusConflict, "live registration requires a uniform workload (same window, grouping, predicates)")
	}
	return nil
}

// applyCtl executes a live workload change on the pump goroutine.
//
//sharon:pump
func (s *Server) applyCtl(req *ctlReq) {
	reply := func(status int, body any) {
		req.reply <- ctlReply{status: status, body: body}
	}
	fail := func(ce *ctlError) { reply(ce.status, map[string]string{"error": ce.msg}) }
	if ce := s.ctlApplicable(); ce != nil {
		fail(ce)
		return
	}
	entries, assigned, ce := s.editEntries(req.add, req.remove, nil)
	if ce != nil {
		fail(ce)
		return
	}
	newW := workloadOf(entries)
	rates := s.ctlRates(newW)
	plan, _, err := sharon.Optimize(newW, rates)
	if err != nil {
		fail(ctlErrf(http.StatusBadRequest, "optimize: %v", err))
		return
	}
	oldPlan, oldW := s.cur.plan, workloadOf(s.cur.entries)
	boundary, next, ce := s.buildNextWorkload(entries, rates, plan)
	if ce != nil {
		fail(ce)
		return
	}
	// Log the change — with the assigned IDs and the chosen plan, the
	// two things replay cannot rederive — after the fallible build and
	// before the infallible install, so a logged record always replays.
	if s.wal != nil {
		rec := persist.CtlRecord{Add: req.add, Remove: req.remove, AssignedIDs: assigned, Plan: plan}
		seq, werr := s.wal.Append(persist.RecCtl, persist.EncodeCtlRecord(rec))
		if werr != nil {
			next.eng.Close()
			s.fail(werr)
			fail(ctlErrf(http.StatusInternalServerError, "wal: %v", werr))
			return
		}
		s.appliedSeq = seq
	}
	s.installWorkload(entries, boundary, next)
	reply(http.StatusOK, map[string]any{
		"queries":              s.queryList(),
		"plan":                 s.loadView().plan,
		"plan_diff":            s.diffPlans(oldPlan, oldW, next.plan, newW),
		"migrations":           s.migrations.Load(),
		"boundary_window":      boundary,
		"boundary_start_tick":  s.cur.win.Start(boundary),
		"draining_old_windows": s.old != nil,
	})
}

// replayCtl re-applies a recorded workload change during WAL recovery:
// the same install path as applyCtl, but with the recorded IDs and plan
// instead of fresh allocation and a fresh optimizer run.
func (s *Server) replayCtl(rec persist.CtlRecord) error {
	if ce := s.ctlApplicable(); ce != nil {
		return fmt.Errorf("replay ctl: %s", ce.msg)
	}
	entries, _, ce := s.editEntries(rec.Add, rec.Remove, rec.AssignedIDs)
	if ce != nil {
		return fmt.Errorf("replay ctl: %s", ce.msg)
	}
	rates := s.ctlRates(workloadOf(entries))
	boundary, next, ce := s.buildNextWorkload(entries, rates, rec.Plan)
	if ce != nil {
		return fmt.Errorf("replay ctl: %s", ce.msg)
	}
	s.installWorkload(entries, boundary, next)
	return nil
}

// sendCtl submits a control request through the same bounded queue as
// the data plane (the pump serializes both) and awaits the reply.
func (s *Server) sendCtl(w http.ResponseWriter, req *ctlReq) {
	req.reply = make(chan ctlReply, 1)
	if !s.enqueue(w, pumpMsg{ctl: req}) {
		return
	}
	select {
	case rep := <-req.reply:
		if rep.raw != nil {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.WriteHeader(rep.status)
			_, _ = w.Write(rep.raw)
			return
		}
		writeJSON(w, rep.status, rep.body)
	case <-time.After(30 * time.Second):
		writeErr(w, http.StatusGatewayTimeout, "control request timed out")
	}
}

// queryList renders the registered queries for responses; pump or
// handler goroutine (reads the immutable view snapshot).
func (s *Server) queryList() []map[string]any {
	v := s.loadView()
	out := make([]map[string]any, len(v.entries))
	for i, e := range v.entries {
		out[i] = map[string]any{"id": e.ID, "label": e.Q.Label(), "query": e.Text}
	}
	return out
}

func (s *Server) handleQueriesGet(w http.ResponseWriter, r *http.Request) {
	v := s.loadView()
	writeJSON(w, http.StatusOK, map[string]any{
		"queries":    s.queryList(),
		"plan":       v.plan,
		"plan_score": v.score,
		"uniform":    v.uniform,
		"migrations": s.migrations.Load(),
	})
}

func (s *Server) handleQueriesPost(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Query string `json:"query"`
	}
	lim := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(lim).Decode(&body); err != nil || strings.TrimSpace(body.Query) == "" {
		writeErr(w, http.StatusBadRequest, `want {"query":"RETURN ... PATTERN SEQ(...) ..."}`)
		return
	}
	s.sendCtl(w, &ctlReq{add: []string{body.Query}})
}

func (s *Server) handleQueriesDelete(w http.ResponseWriter, r *http.Request) {
	raw := strings.TrimPrefix(r.PathValue("id"), "q")
	id, err := strconv.Atoi(raw)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad query id %q", r.PathValue("id"))
		return
	}
	s.sendCtl(w, &ctlReq{remove: []int{id}})
}
