// Package walbeforeapply is the golden fixture for the walbeforeapply
// analyzer: pump steps that log before applying (silent), apply before
// logging (flagged), and log on only one path (flagged), using both
// the recognized mutating-method names and the //sharon:logs /
// //sharon:applies helper markers.
package walbeforeapply

import "github.com/sharon-project/sharon/internal/persist"

// engine stands in for the executor: FeedBatch is one of the mutating
// methods walbeforeapply recognizes on module types.
type engine struct{ n int }

func (e *engine) FeedBatch(xs []int) { e.n += len(xs) }

type srv struct {
	wal *persist.WAL
	eng *engine
}

// goodStep logs before applying, in the canonical nil-guard shape.
//
//sharon:pump
func (s *srv) goodStep(xs []int) {
	if s.wal != nil {
		if _, err := s.wal.Append(1, nil); err != nil {
			return
		}
	}
	s.eng.FeedBatch(xs)
}

// badStep applies before logging.
//
//sharon:pump
func (s *srv) badStep(xs []int) {
	s.eng.FeedBatch(xs) // want `engine mutation .*FeedBatch is not dominated by a WAL append`
	if s.wal != nil {
		_, _ = s.wal.Append(1, nil)
	}
}

// halfStep logs on one branch only; the fall-through path reaches the
// apply unlogged.
//
//sharon:pump
func (s *srv) halfStep(xs []int, urgent bool) {
	if urgent {
		if s.wal != nil {
			_, _ = s.wal.Append(1, nil)
		}
	}
	s.eng.FeedBatch(xs) // want `engine mutation .*FeedBatch is not dominated by a WAL append`
}

// logDelta is an annotated logging helper: calling it counts as the
// WAL append.
//
//sharon:logs
func (s *srv) logDelta() {}

// install is an annotated apply helper: calling it counts as the
// engine mutation.
//
//sharon:applies
func (s *srv) install(xs []int) { s.eng.FeedBatch(xs) }

// helperStep is clean through the annotated helpers.
//
//sharon:pump
func (s *srv) helperStep(xs []int) {
	s.logDelta()
	s.install(xs)
}

// helperBad applies through the annotated helper before any logging.
//
//sharon:pump
func (s *srv) helperBad(xs []int) {
	s.install(xs) // want `engine mutation .*install is not dominated by a WAL append`
	s.logDelta()
}
