// Package slablifecycle is the golden fixture for the slablifecycle
// analyzer: every retention shape it flags on *agg.StartRec pool
// pointers, plus the local uses and whitelisted recycle points that
// must stay silent.
package slablifecycle

import "github.com/sharon-project/sharon/internal/agg"

// holder is a struct a slab pointer must not be parked in.
type holder struct {
	rec *agg.StartRec
}

// global is a package-level variable a slab pointer must not reach.
var global *agg.StartRec

// retain exercises every flagged retention shape.
func retain(h *holder, rec *agg.StartRec, sink chan *agg.StartRec, recs []*agg.StartRec) {
	h.rec = rec              // want `slab pointer stored into field rec`
	global = rec             // want `slab pointer stored into package-level variable global`
	sink <- rec              // want `slab pointer sent on a channel`
	recs = append(recs, rec) // want `slab pointer retained by append`
	recs[0] = rec            // want `slab pointer stored into a container element`
}

// inspect reads a record within the event callback: local aliases and
// field reads never escape the window lifecycle, so nothing is flagged.
func inspect(rec *agg.StartRec) int64 {
	local := rec
	_ = local
	return rec.ID
}

// allowRetain is a whitelisted recycle point with its justification.
func allowRetain(pool []*agg.StartRec, rec *agg.StartRec) []*agg.StartRec {
	//sharon:allow slablifecycle (golden fixture: bounded recycle pool, drained by window expiry)
	return append(pool, rec)
}
