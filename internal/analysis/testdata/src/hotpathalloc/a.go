// Package hotpathalloc is the golden fixture for the hotpathalloc
// analyzer: one positive case per allocation source it flags, plus
// negative cases — clean hot functions and justified suppressions —
// that must stay silent.
package hotpathalloc

import (
	"fmt"
	"sort"
)

// cold is an unannotated module function a hot path must not call.
func cold() {}

// hot exercises the allocation sources the analyzer flags.
//
//sharon:hotpath
func hot(xs []int, m map[int]int, f func()) []int {
	buf := make([]int, 8)     // want `make allocates on the hot path`
	xs = append(xs, len(buf)) // want `append may grow its backing array on the hot path`
	m[1] = 2                  // want `map write may grow the table on the hot path`
	f()                       // want `dynamic call on the hot path`
	cold()                    // want `call to .*cold, which is not //sharon:hotpath`
	fmt.Println()             // want `call into fmt on the hot path`
	return xs
}

// hotLiterals exercises literal and conversion allocation sources.
//
//sharon:hotpath
func hotLiterals(s string, v int) string {
	_ = []int{v}   // want `composite literal allocates on the hot path`
	_ = func() {}  // want `closure allocates on the hot path`
	return s + "!" // want `string concatenation allocates on the hot path`
}

// fine is the clean shape: scalar work, in-place std sorts, and
// annotated module callees only.
//
//sharon:hotpath
func fine(xs []int) int {
	sort.Ints(xs)
	total := 0
	for _, x := range xs {
		total += x
	}
	return scale(total)
}

// scale is an annotated callee, so fine's call to it is clean.
//
//sharon:hotpath
func scale(v int) int { return v * 2 }

// suppressed shows an amortized growth site justified in place.
//
//sharon:hotpath
func suppressed(xs []int) []int {
	return append(xs, 1) //sharon:allow hotpathalloc (golden fixture: amortized growth site)
}
