// Package deterministicemit is the golden fixture for the
// deterministicemit analyzer: nondeterminism sources flagged from an
// annotated root — directly, through an unannotated same-package
// helper, and across a module package boundary — plus the
// stage-then-sort shape that must stay silent.
package deterministicemit

import (
	"math/rand"
	"sort"
	"time"

	"github.com/sharon-project/sharon/internal/event"
)

// emit is a deterministic root with direct violations.
//
//sharon:deterministic
func emit(m map[int]int) {
	for k := range m { // want `range over map has randomized order`
		_ = k
	}
	_ = time.Now() // want `time.Now on a deterministic emit path`
	_ = rand.Int() // want `math/rand on a deterministic emit path`
	helper()
	_ = event.NewRegistry() // want `call to .* leaves the //sharon:deterministic path`
}

// helper is unannotated but reached from the root in-package, so its
// body is checked too; the diagnostic names the root.
func helper() {
	_ = time.Since(time.Time{}) // want `time.Since on a deterministic emit path`
}

// sortedEmit stages map contents and sorts — the blessed shape, with
// the staging range justified in place.
//
//sharon:deterministic
func sortedEmit(m map[int]int) []int {
	var keys []int
	//sharon:allow deterministicemit (golden fixture: collected then sorted below)
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
