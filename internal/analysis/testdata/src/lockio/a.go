// Package lockio is the golden fixture for the lockio analyzer:
// blocking operations under a held mutex — I/O syscalls, sleeps,
// channel ops, dynamic and unvetted cross-package calls, including
// through a same-package callee — plus the unlock-first and
// //sharon:locksafe shapes that must stay silent.
package lockio

import (
	"os"
	"sync"
	"time"

	"github.com/sharon-project/sharon/internal/chash"
)

type reg struct {
	mu   sync.Mutex
	ch   chan int
	ring *chash.Ring
}

// badIO performs blocking operations with r.mu held to the end.
func (r *reg) badIO(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	_ = os.Remove(name)          // want `call into os performs I/O while holding r.mu`
	time.Sleep(time.Millisecond) // want `time.Sleep while holding r.mu`
	r.ch <- 1                    // want `channel send may block while holding r.mu`
	<-r.ch                       // want `channel receive may block while holding r.mu`
}

// badDynamic calls through a function value under the lock.
func (r *reg) badDynamic(f func()) {
	r.mu.Lock()
	f() // want `dynamic call while holding r.mu`
	r.mu.Unlock()
}

// badCross calls an unvetted module function under the lock.
func (r *reg) badCross() {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, _ = chash.New(nil, 1) // want `call to .*chash.New while holding r.mu \(not //sharon:locksafe\)`
}

// badCallee blocks inside a same-package callee that runs under the
// caller's lock.
func (r *reg) badCallee() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flush()
}

func (r *reg) flush() {
	r.ch <- 1 // want `channel send may block while holding r.mu \(callee runs under the caller's lock\)`
}

// fine snapshots under the lock through a //sharon:locksafe method,
// unlocks, and only then does I/O.
func (r *reg) fine(name string) {
	r.mu.Lock()
	members := r.ring.Members()
	r.mu.Unlock()
	_ = os.Remove(name)
	_ = members
}

// allowPoll documents a send known not to block.
func (r *reg) allowPoll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	//sharon:allow lockio (golden fixture: buffered channel sized for the worst case)
	r.ch <- 1
}
