// Package mustclose is the golden fixture for the mustclose analyzer:
// handles leaked through an early return or the fall-through exit
// (flagged), and the deferred-release, per-path-release, and
// ownership-transfer shapes that must stay silent.
package mustclose

import (
	"os"

	"github.com/sharon-project/sharon/internal/persist"
)

// leakFile leaks f on the success return: the error-guard return is
// exempt (no handle exists when the constructor failed).
func leakFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	_ = f.Name()
	return nil // want `return may leak f opened at line \d+ without Close`
}

// closedFile defers the release right after the error check.
func closedFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// leakWAL leaks w through the fall-through exit.
func leakWAL(dir string) {
	w, err := persist.OpenWAL(dir, persist.WALOptions{}) // want `w is never released in leakWAL`
	if err != nil {
		return
	}
	_ = w.Sync()
}

// pathClosed releases on every path without defer: a Close between
// the constructor and each return satisfies the positional check.
func pathClosed(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	err = f.Sync()
	f.Close()
	return err
}

// transfer hands f to the caller: returning the handle moves
// ownership, so nothing is flagged here.
func transfer(path string) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}
