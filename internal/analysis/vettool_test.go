package analysis_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildVettool compiles cmd/sharonvet into dir and returns the binary
// path.
func buildVettool(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "sharonvet")
	cmd := exec.Command("go", "build", "-o", bin, "../../cmd/sharonvet")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build sharonvet: %v\n%s", err, out)
	}
	return bin
}

// writeTempModule lays out a self-contained std-only module so `go
// vet` exercises the full unit-checker protocol (cfg files, export
// data, .vetx facts) without touching the real repo.
func writeTempModule(t *testing.T, dir, mainSrc string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tempvet\n\ngo 1.24\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(mainSrc), 0o666); err != nil {
		t.Fatal(err)
	}
}

// runVet invokes `go vet -vettool=bin ./...` inside dir.
func runVet(t *testing.T, bin, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestVettoolProtocol drives the real `go vet -vettool=` pipeline end
// to end: a module seeded with a hot-path allocation must fail vet
// with the hotpathalloc diagnostic, and the repaired module must pass.
// This is the same invocation CI uses as its gate, so a protocol
// regression (version handshake, .cfg parsing, vetx facts, exit
// status) fails here before it fails there.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool and shells out to go vet")
	}
	bin := buildVettool(t, t.TempDir())

	t.Run("seeded violation fails", func(t *testing.T) {
		dir := t.TempDir()
		writeTempModule(t, dir, `package main

// hot is a seeded violation: an allocation inside a //sharon:hotpath
// function.
//
//sharon:hotpath
func hot(n int) []int {
	return make([]int, n)
}

func main() { _ = hot(3) }
`)
		out, err := runVet(t, bin, dir)
		if err == nil {
			t.Fatalf("go vet passed on a seeded hot-path allocation\n%s", out)
		}
		if !strings.Contains(out, "make allocates on the hot path") {
			t.Fatalf("missing hotpathalloc diagnostic in vet output:\n%s", out)
		}
	})

	t.Run("clean module passes", func(t *testing.T) {
		dir := t.TempDir()
		writeTempModule(t, dir, `package main

// hot stays allocation-free.
//
//sharon:hotpath
func hot(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

func main() { _ = hot([]int{1, 2, 3}) }
`)
		out, err := runVet(t, bin, dir)
		if err != nil {
			t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
		}
	})
}
