package analysis_test

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"github.com/sharon-project/sharon/internal/analysis"
)

// moduleLoader loads the whole module once and shares it across the
// tests in this package: `go list -export -deps -test` dominates the
// wall clock, and every test needs the same export index.
var moduleLoader = sync.OnceValues(func() (*analysis.Loader, error) {
	// The extra std patterns are packages the golden fixtures import
	// that the module itself may not, so their export data lands in
	// the index.
	return analysis.LoadModule("../..", "math/rand", "sort", "time", "os", "sync")
})

// loadModule returns the shared loader, failing the test on error.
func loadModule(t *testing.T) *analysis.Loader {
	t.Helper()
	ld, err := moduleLoader()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	return ld
}

// analyzerByName finds one analyzer of the suite.
func analyzerByName(t *testing.T, name string) *analysis.Analyzer {
	t.Helper()
	for _, a := range analysis.Analyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// A wantSet holds the `// want` expectations of one fixture package,
// keyed by file:line.
type wantSet struct {
	wants map[string][]*want
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

var backquoted = regexp.MustCompile("`([^`]*)`")

// collectWants parses the analysistest-style `// want \x60regex\x60`
// comments out of the fixture files. A want expects a diagnostic on
// its own line whose message matches the backquoted pattern.
func collectWants(t *testing.T, ld *analysis.Loader, files []*ast.File) *wantSet {
	t.Helper()
	ws := &wantSet{wants: make(map[string][]*want)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := ld.Fset.Position(c.Pos())
				pats := backquoted.FindAllStringSubmatch(body, -1)
				if len(pats) == 0 {
					t.Fatalf("%s:%d: want comment without a backquoted pattern", pos.Filename, pos.Line)
				}
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range pats {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					ws.wants[key] = append(ws.wants[key], &want{re: re})
				}
			}
		}
	}
	return ws
}

// match consumes the first unmatched want at key matching msg.
func (ws *wantSet) match(key, msg string) bool {
	for _, w := range ws.wants[key] {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// unmatched returns every want no diagnostic satisfied.
func (ws *wantSet) unmatched() []string {
	var out []string
	for key, list := range ws.wants {
		for _, w := range list {
			if !w.matched {
				out = append(out, fmt.Sprintf("%s: no diagnostic matched `%s`", key, w.re))
			}
		}
	}
	return out
}

// TestGolden runs each analyzer over its golden fixture package under
// testdata/src and checks the diagnostics against the fixture's
// `// want` comments: every diagnostic must be expected on its exact
// line, and every expectation must fire.
func TestGolden(t *testing.T) {
	ld := loadModule(t)
	for _, name := range []string{
		"hotpathalloc",
		"slablifecycle",
		"deterministicemit",
		"walbeforeapply",
		"lockio",
		"mustclose",
	} {
		t.Run(name, func(t *testing.T) {
			a := analyzerByName(t, name)
			dir := filepath.Join("testdata", "src", name)
			importPath := ld.Module + "/internal/analysis/testdata/src/" + name
			pkg, err := ld.LoadFixture(dir, importPath)
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			// The fixture's own annotations join the module-wide table so
			// cross-function marker checks see them.
			notes := ld.CollectAnnotations()
			analysis.ScanAnnotations(pkg.ImportPath, pkg.Files, notes)
			pass := ld.NewPass(a, pkg, notes, ld.Module)
			diags, err := analysis.RunAnalyzers(pass, []*analysis.Analyzer{a})
			if err != nil {
				t.Fatalf("run %s: %v", name, err)
			}
			ws := collectWants(t, ld, pkg.Files)
			for _, d := range diags {
				pos := ld.Fset.Position(d.Pos)
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				if !ws.match(key, d.Message) {
					t.Errorf("unexpected diagnostic at %s: %s (%s)", key, d.Message, d.Analyzer)
				}
			}
			for _, miss := range ws.unmatched() {
				t.Error(miss)
			}
		})
	}
}
