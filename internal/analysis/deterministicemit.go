package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// DeterministicEmit enforces the engine's ordering contract: merged
// and emitted results are ordered by (window end, query, group), and
// the parallel/cluster merge layers depend on byte-identical streams
// across runs. Anything order-sensitive reachable from a
// //sharon:deterministic function must therefore avoid Go's
// deliberately randomized map iteration and wall-clock or random
// inputs.
//
// From each annotated root the analyzer walks the in-package static
// call graph and flags: `range` over a map, iterator helpers over maps
// (maps.Keys/Values/All), time.Now/time.Since, and any use of
// math/rand. Calls that leave the package but stay in the module must
// target functions that are themselves annotated, so the guarantee
// propagates across package boundaries.
var DeterministicEmit = &Analyzer{
	Name: "deterministicemit",
	Doc:  "flag nondeterminism (map ranges, time.Now, math/rand) reachable from //sharon:deterministic emit/merge paths",
	Run:  runDeterministicEmit,
}

// MarkerDeterministic is the annotation DeterministicEmit enforces.
const MarkerDeterministic = "deterministic"

func runDeterministicEmit(pass *Pass) error {
	funcs := PackageFuncs(pass)
	reported := make(map[token.Pos]bool)
	visited := make(map[string]bool)
	for _, key := range sortedFuncKeys(funcs) {
		if pass.Notes.Has(key, MarkerDeterministic) {
			emitWalk(pass, funcs, key, key, visited, reported)
		}
	}
	return nil
}

// sortedFuncKeys fixes the root iteration order so diagnostics are
// stable run to run — the analyzers hold themselves to the invariant
// they enforce.
func sortedFuncKeys(funcs map[string]*ast.FuncDecl) []string {
	keys := make([]string, 0, len(funcs))
	for k := range funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// reportOnce deduplicates findings reached from multiple roots.
func reportOnce(pass *Pass, reported map[token.Pos]bool, pos token.Pos, format string, args ...any) {
	if reported[pos] {
		return
	}
	reported[pos] = true
	pass.Reportf(pos, format, args...)
}

// emitWalk checks one function and recurses into same-package callees.
func emitWalk(pass *Pass, funcs map[string]*ast.FuncDecl, key, root string, visited map[string]bool, reported map[token.Pos]bool) {
	if visited[key] {
		return
	}
	visited[key] = true
	fd := funcs[key]
	if fd == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			if t := pass.Info.Types[x.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					reportOnce(pass, reported, x.Pos(),
						"range over map has randomized order (reachable from //sharon:deterministic %s)", root)
				}
			}
		case *ast.CallExpr:
			checkEmitCall(pass, funcs, x, root, visited, reported)
		}
		return true
	})
}

// checkEmitCall classifies one call on a deterministic path.
func checkEmitCall(pass *Pass, funcs map[string]*ast.FuncDecl, call *ast.CallExpr, root string, visited map[string]bool, reported map[token.Pos]bool) {
	fn := StaticCallee(pass.Info, call)
	if fn == nil {
		return // dynamic/interface/builtin/conversion: sinks are bound per run, and implementations carry their own annotations
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	switch {
	case pkg == "time" && (fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until"):
		reportOnce(pass, reported, call.Pos(),
			"time.%s on a deterministic emit path (reachable from //sharon:deterministic %s)", fn.Name(), root)
	case pkg == "math/rand" || pkg == "math/rand/v2":
		reportOnce(pass, reported, call.Pos(),
			"math/rand on a deterministic emit path (reachable from //sharon:deterministic %s)", root)
	case pkg == "maps" && (fn.Name() == "Keys" || fn.Name() == "Values" || fn.Name() == "All"):
		reportOnce(pass, reported, call.Pos(),
			"maps.%s iterates a map in randomized order (reachable from //sharon:deterministic %s)", fn.Name(), root)
	case pkg == pass.Pkg.Path():
		emitWalk(pass, funcs, FuncObjKey(fn), root, visited, reported)
	case pass.InModule(pkg):
		if !pass.Notes.Has(FuncObjKey(fn), MarkerDeterministic) {
			reportOnce(pass, reported, call.Pos(),
				"call to %s leaves the //sharon:deterministic path (reachable from %s): annotate it //sharon:deterministic or suppress with a justification",
				FuncObjKey(fn), root)
		}
	}
}
