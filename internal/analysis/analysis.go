// Package analysis is sharonvet's analyzer kit: a dependency-free
// reimplementation of the golang.org/x/tools/go/analysis essentials
// (Analyzer, Pass, diagnostics, golden-file tests, the `go vet
// -vettool` unit-checker protocol) plus the project-specific analyzers
// that machine-enforce the engine's invariants — the zero-allocation
// hot path, the StartRec slab lifecycle, deterministic emission order,
// WAL-before-apply in the durable pump, no I/O under merge locks, and
// Close discipline on engine/WAL handles.
//
// The toolchain ships no third-party modules in this environment, so
// the kit is built only on go/ast, go/types, and export data produced
// by `go list -export` — the same data the real vettool protocol hands
// us. The analyzer surface mirrors x/tools closely enough that porting
// to the upstream framework is a mechanical change.
//
// # Annotations
//
// Invariants are declared in doc comments and enforced by the
// analyzers:
//
//	//sharon:hotpath        function is on the zero-allocation hot
//	                        path; hotpathalloc forbids allocation in
//	                        it and requires every module callee to be
//	                        annotated too.
//	//sharon:deterministic  function is on a result-emission/merge
//	                        path; deterministicemit forbids map
//	                        iteration, time.Now, and math/rand
//	                        anywhere reachable from it in-package.
//	//sharon:pump           function is a durable pump step;
//	                        walbeforeapply requires engine mutations
//	                        in it to be dominated by a WAL append.
//	//sharon:logs           function performs the durable logging of a
//	                        pump step (counts as the WAL append).
//	//sharon:applies        function applies a pump step to engine
//	                        state (must be dominated by logging).
//	//sharon:locksafe       function is safe to call while holding a
//	                        merge/hub mutex (no I/O, no blocking).
//
// # Suppressions
//
// A finding at a legitimate site is silenced with a justification:
//
//	//sharon:allow <analyzer> (why this site is sound)
//
// placed on the flagged line or alone on the line above it. The
// justification is mandatory; a bare //sharon:allow is itself a
// finding, so no suppression can land without a reason in the diff.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one sharonvet analysis.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions.
	Name string
	// Doc is a one-paragraph description of what it enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// A Pass holds one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// ModuleRoot is the import-path prefix of the code under analysis;
	// packages outside it (the standard library) are never expected to
	// carry annotations.
	ModuleRoot string
	// Notes is the cross-package annotation table ("facts"): which
	// functions — in this package and its dependencies — carry which
	// //sharon: markers.
	Notes *Annotations

	report func(Diagnostic)
}

// Reportf records one finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// InModule reports whether path belongs to the analyzed module.
func (p *Pass) InModule(path string) bool {
	return path == p.ModuleRoot || strings.HasPrefix(path, p.ModuleRoot+"/")
}

// Analyzers returns the full sharonvet suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		HotPathAlloc,
		SlabLifecycle,
		DeterministicEmit,
		WALBeforeApply,
		LockIO,
		MustClose,
	}
}

// --- annotations (cross-package facts) ---

// Annotations maps function keys (see FuncKey) to the set of //sharon:
// markers on their doc comments. It is the facts store: the standalone
// driver fills it from every module package's source up front, and the
// vettool protocol serializes per-package slices through .vetx files.
type Annotations struct {
	m map[string]map[string]bool
}

// NewAnnotations returns an empty table.
func NewAnnotations() *Annotations {
	return &Annotations{m: make(map[string]map[string]bool)}
}

// Add records marker on key.
func (a *Annotations) Add(key, marker string) {
	set, ok := a.m[key]
	if !ok {
		set = make(map[string]bool)
		a.m[key] = set
	}
	set[marker] = true
}

// Has reports whether key carries marker.
func (a *Annotations) Has(key, marker string) bool { return a.m[key][marker] }

// Keys returns every annotated key, sorted (for serialization).
func (a *Annotations) Keys() []string {
	out := make([]string, 0, len(a.m))
	for k := range a.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Markers returns key's markers, sorted.
func (a *Annotations) Markers(key string) []string {
	out := make([]string, 0, len(a.m[key]))
	for m := range a.m[key] {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// annotationPrefix starts every marker and suppression comment.
const annotationPrefix = "//sharon:"

// AllowMarker names the suppression marker.
const AllowMarker = "allow"

// ScanAnnotations reads the //sharon: markers off every function's doc
// comment in files (package path pkgPath) into table. Only marker
// lines are recorded; //sharon:allow is a suppression, not a marker,
// and is handled by the suppression collector.
func ScanAnnotations(pkgPath string, files []*ast.File, table *Annotations) {
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			key := FuncDeclKey(pkgPath, fd)
			for _, c := range fd.Doc.List {
				marker, _, ok := parseMarker(c.Text)
				if ok && marker != AllowMarker {
					table.Add(key, marker)
				}
			}
		}
	}
}

// parseMarker splits a "//sharon:<marker> rest" comment line.
func parseMarker(text string) (marker, rest string, ok bool) {
	if !strings.HasPrefix(text, annotationPrefix) {
		return "", "", false
	}
	s := strings.TrimPrefix(text, annotationPrefix)
	marker, rest, _ = strings.Cut(s, " ")
	if marker == "" {
		return "", "", false
	}
	return marker, strings.TrimSpace(rest), true
}

// --- function keys ---

// FuncKey builds the annotation key for a function: "path.Name" for
// package functions, "path.(Recv).Name" for methods (pointer receivers
// are keyed like value receivers).
func FuncKey(pkgPath, recv, name string) string {
	if recv != "" {
		return pkgPath + ".(" + recv + ")." + name
	}
	return pkgPath + "." + name
}

// FuncDeclKey keys a declaration without needing type information.
func FuncDeclKey(pkgPath string, fd *ast.FuncDecl) string {
	return FuncKey(pkgPath, recvTypeName(fd), fd.Name.Name)
}

// recvTypeName extracts the receiver's base type name from a FuncDecl.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// FuncObjKey keys a resolved function object the same way FuncDeclKey
// keys its declaration.
func FuncObjKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name() // builtins like error.Error
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv = namedTypeName(sig.Recv().Type())
	}
	return FuncKey(fn.Pkg().Path(), recv, fn.Name())
}

// namedTypeName returns the base named-type name of t ("" if unnamed).
func namedTypeName(t types.Type) string {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x.Obj().Name()
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return ""
		}
	}
}

// --- call resolution ---

// StaticCallee resolves call to the function or method object it
// statically invokes; nil for builtins, conversions, and dynamic calls
// (function values, interface methods).
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified
		}
	}
	fn, _ := obj.(*types.Func)
	if fn == nil {
		return nil
	}
	// An interface method is a dynamic call even though it resolves.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return nil
		}
	}
	return fn
}

// BuiltinName returns the builtin a call invokes ("" if none).
func BuiltinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// IsConversion reports whether call is a type conversion.
func IsConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// NamedTypePath returns "pkgpath.Name" for t's base named type,
// stripping pointers ("" for unnamed or universe types).
func NamedTypePath(t types.Type) string {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			obj := x.Obj()
			if obj.Pkg() == nil {
				return obj.Name()
			}
			return obj.Pkg().Path() + "." + obj.Name()
		default:
			return ""
		}
	}
}

// PackageFuncs indexes the package's function declarations by their
// annotation key — the analyzers' basis for in-package call-graph
// traversal.
func PackageFuncs(pass *Pass) map[string]*ast.FuncDecl {
	out := make(map[string]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out[FuncDeclKey(pass.Pkg.Path(), fd)] = fd
			}
		}
	}
	return out
}

// --- suppressions ---

// Suppressions maps (file, line) to the analyzers allowed there.
type Suppressions struct {
	byLine map[string]map[int]map[string]bool
	// Malformed holds //sharon:allow comments without a justification —
	// reported as findings so suppressions cannot land silently.
	Malformed []Diagnostic
}

// CollectSuppressions gathers every //sharon:allow comment in files. A
// suppression covers the line it sits on and, for a comment alone on
// its line, the following line.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{byLine: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				marker, rest, ok := parseMarker(c.Text)
				if !ok || marker != AllowMarker {
					continue
				}
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				pos := fset.Position(c.Pos())
				if name == "" || !strings.HasPrefix(reason, "(") || !strings.HasSuffix(reason, ")") || len(reason) < 4 {
					s.Malformed = append(s.Malformed, Diagnostic{
						Pos:      c.Pos(),
						Message:  "malformed suppression: want //sharon:allow <analyzer> (justification)",
						Analyzer: "suppression",
					})
					continue
				}
				s.add(pos.Filename, pos.Line, name)
				s.add(pos.Filename, pos.Line+1, name)
			}
		}
	}
	return s
}

func (s *Suppressions) add(file string, line int, analyzer string) {
	lines, ok := s.byLine[file]
	if !ok {
		lines = make(map[int]map[string]bool)
		s.byLine[file] = lines
	}
	set, ok := lines[line]
	if !ok {
		set = make(map[string]bool)
		lines[line] = set
	}
	set[analyzer] = true
}

// Allows reports whether d is suppressed.
func (s *Suppressions) Allows(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	return s.byLine[pos.Filename][pos.Line][d.Analyzer]
}

// RunAnalyzers applies analyzers to one loaded package and returns the
// unsuppressed findings (including malformed suppressions), sorted by
// position.
func RunAnalyzers(pass *Pass, analyzers []*Analyzer) ([]Diagnostic, error) {
	sup := CollectSuppressions(pass.Fset, pass.Files)
	var out []Diagnostic
	out = append(out, sup.Malformed...)
	for _, a := range analyzers {
		p := *pass
		p.Analyzer = a
		p.report = func(d Diagnostic) {
			if !sup.Allows(pass.Fset, d) {
				out = append(out, d)
			}
		}
		if err := a.Run(&p); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pass.Pkg.Path(), err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := pass.Fset.Position(out[i].Pos), pass.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
