package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the `go vet -vettool` unit-checker protocol:
// cmd/go invokes the tool once per package with a JSON .cfg file
// naming the sources, the export data of every import, and the facts
// (.vetx) files of every dependency; the tool must write its own facts
// file and report diagnostics on stderr with exit status 2. Mirroring
// x/tools' unitchecker here keeps the CI gate the standard
//
//	go vet -vettool=$(command -v sharonvet) ./...
//
// invocation, with cmd/go caching per-package runs by content hash.

// vetConfig is the .cfg payload cmd/go hands the tool (field set as of
// go1.24; unknown fields are ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetxFacts is the annotation table serialized between packages.
type vetxFacts struct {
	Sharonvet   int                 `json:"sharonvet"`
	Annotations map[string][]string `json:"annotations,omitempty"`
}

// RunVettool executes one unit-checker invocation; the returned code
// is the process exit status (0 clean, 1 tool error, 2 findings).
func RunVettool(cfgPath string, analyzers []*Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "sharonvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "sharonvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Fast path: standard-library dependencies carry no //sharon:
	// annotations, so their facts are empty without parsing a file.
	// The path shape alone can't distinguish std from a dotless module
	// path, so require the missing ModulePath a std .cfg has.
	if cfg.ModulePath == "" && isStdImportPath(cfg.ImportPath) {
		if err := writeVetx(cfg.VetxOutput, NewAnnotations()); err != nil {
			fmt.Fprintf(stderr, "sharonvet: %v\n", err)
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx(cfg.VetxOutput, NewAnnotations())
				return 0
			}
			fmt.Fprintf(stderr, "sharonvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	typePath := cfg.ImportPath
	if i := strings.Index(typePath, " ["); i >= 0 {
		typePath = typePath[:i] // test variant checks under the plain path
	}
	own := NewAnnotations()
	ScanAnnotations(typePath, files, own)
	if err := writeVetx(cfg.VetxOutput, own); err != nil {
		fmt.Fprintf(stderr, "sharonvet: %v\n", err)
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}

	notes := NewAnnotations()
	for dep, vetx := range cfg.PackageVetx {
		if err := readVetx(vetx, notes); err != nil {
			fmt.Fprintf(stderr, "sharonvet: facts for %s: %v\n", dep, err)
			return 1
		}
	}
	for _, key := range own.Keys() {
		for _, m := range own.Markers(key) {
			notes.Add(key, m)
		}
	}

	lookup := func(p string) (io.ReadCloser, error) {
		if m, ok := cfg.ImportMap[p]; ok {
			p = m
		}
		exp, ok := cfg.PackageFile[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(exp)
	}
	conf := typesConfig(importer.ForCompiler(fset, "gc", lookup))
	info := newTypesInfo()
	tpkg, err := conf.Check(typePath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "sharonvet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pass := &Pass{
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
		ModuleRoot: cfg.ModulePath,
		Notes:      notes,
	}
	diags, err := RunAnalyzers(pass, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "sharonvet: %v\n", err)
		return 1
	}
	diags = filterTestVariant(fset, cfg.ImportPath, diags)
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// filterTestVariant keeps only _test.go diagnostics for "pkg
// [pkg.test]" variants: their non-test files are re-analyzed copies of
// the plain package and would double-report.
func filterTestVariant(fset *token.FileSet, importPath string, diags []Diagnostic) []Diagnostic {
	if !strings.Contains(importPath, " [") {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		if strings.HasSuffix(fset.Position(d.Pos).Filename, "_test.go") {
			out = append(out, d)
		}
	}
	return out
}

// isStdImportPath distinguishes standard-library packages: their first
// path element has no dot, while module paths start with a domain.
func isStdImportPath(path string) bool {
	first, _, _ := strings.Cut(path, "/")
	return !strings.Contains(first, ".") && path != "command-line-arguments"
}

// writeVetx serializes the package's annotation facts.
func writeVetx(path string, notes *Annotations) error {
	if path == "" {
		return nil
	}
	facts := vetxFacts{Sharonvet: 1, Annotations: make(map[string][]string)}
	for _, key := range notes.Keys() {
		facts.Annotations[key] = notes.Markers(key)
	}
	data, err := json.Marshal(&facts)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}

// readVetx merges one dependency's facts into notes.
func readVetx(path string, notes *Annotations) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return nil // dependency produced no facts
	}
	var facts vetxFacts
	if err := json.Unmarshal(data, &facts); err != nil {
		return err
	}
	for key, markers := range facts.Annotations {
		for _, m := range markers {
			notes.Add(key, m)
		}
	}
	return nil
}
