package analysis

import (
	"go/ast"
	"go/types"
)

// SlabLifecycle enforces the StartRec slab contract from internal/agg:
// a *StartRec (and the prefix state it carries) is pool memory, valid
// only while an open window contains the record; Advance recycles it
// in place. Any store of such a pointer that could outlive the window
// — into a struct field, a package-level variable, a container
// element, an append, or a channel — is flagged, module-wide, test
// files included. The aggregator's own slab bookkeeping is the
// whitelisted set of recycle points; each carries a //sharon:allow
// slablifecycle (reason) stating why its retention is bounded by the
// window lifecycle.
//
// Owner structs (Aggregator, Engine) transitively contain slab
// pointers by design, so the analyzer tracks only direct carriers: a
// *StartRec or *State itself, and slices, arrays, maps, and channels
// of them. Hiding a pointer one struct deep defeats it; the code
// review bar for new carrier structs is the suppression comment this
// analyzer forces at the store.
var SlabLifecycle = &Analyzer{
	Name: "slablifecycle",
	Doc:  "forbid retaining *agg.StartRec slab pointers in fields, globals, containers, or channels",
	Run:  runSlabLifecycle,
}

func runSlabLifecycle(pass *Pass) error {
	slabPaths := map[string]bool{
		pass.ModuleRoot + "/internal/agg.StartRec": true,
		pass.ModuleRoot + "/internal/agg.State":    true,
	}
	holds := func(t types.Type) bool { return holdsSlabPtr(t, slabPaths) }
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				checkSlabAssign(pass, x, holds)
			case *ast.SendStmt:
				if t := pass.Info.Types[x.Value].Type; t != nil && holds(t) {
					pass.Reportf(x.Pos(), "slab pointer sent on a channel escapes its window lifecycle")
				}
			case *ast.CallExpr:
				if BuiltinName(pass.Info, x) == "append" && !x.Ellipsis.IsValid() {
					for _, arg := range x.Args[1:] {
						if t := pass.Info.Types[arg].Type; t != nil && holds(t) {
							pass.Reportf(arg.Pos(), "slab pointer retained by append outlives its window lifecycle")
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkSlabAssign flags stores of slab pointers into locations that
// outlive the current window.
func checkSlabAssign(pass *Pass, as *ast.AssignStmt, holds func(types.Type) bool) {
	if len(as.Lhs) != len(as.Rhs) {
		return // multi-value call results land in fresh locals
	}
	for i, rhs := range as.Rhs {
		t := pass.Info.Types[rhs].Type
		if t == nil || !holds(t) {
			continue
		}
		switch lhs := ast.Unparen(as.Lhs[i]).(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.Info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
				pass.Reportf(as.Pos(), "slab pointer stored into field %s outlives its window lifecycle", lhs.Sel.Name)
			} else if v, ok := pass.Info.Uses[lhs.Sel].(*types.Var); ok && isPackageLevel(v) {
				pass.Reportf(as.Pos(), "slab pointer stored into package-level variable %s", lhs.Sel.Name)
			}
		case *ast.IndexExpr:
			pass.Reportf(as.Pos(), "slab pointer stored into a container element outlives its window lifecycle")
		case *ast.StarExpr:
			pass.Reportf(as.Pos(), "slab pointer stored through a pointer may outlive its window lifecycle")
		case *ast.Ident:
			if v, ok := objectOf(pass, lhs).(*types.Var); ok && isPackageLevel(v) {
				pass.Reportf(as.Pos(), "slab pointer stored into package-level variable %s", lhs.Name)
			}
		}
	}
}

// objectOf resolves an identifier in either Defs or Uses.
func objectOf(pass *Pass, id *ast.Ident) types.Object {
	if o := pass.Info.Defs[id]; o != nil {
		return o
	}
	return pass.Info.Uses[id]
}

// isPackageLevel reports whether v is declared at package scope.
func isPackageLevel(v *types.Var) bool {
	return v.Parent() != nil && v.Parent().Parent() == types.Universe
}

// holdsSlabPtr reports whether t is a slab pointer or a container
// (slice, array, map, channel) of slab pointers.
func holdsSlabPtr(t types.Type, slabPaths map[string]bool) bool {
	switch x := t.(type) {
	case *types.Alias:
		return holdsSlabPtr(types.Unalias(x), slabPaths)
	case *types.Named:
		return holdsSlabPtr(x.Underlying(), slabPaths)
	case *types.Pointer:
		return slabPaths[NamedTypePath(x.Elem())]
	case *types.Slice:
		return holdsSlabPtr(x.Elem(), slabPaths)
	case *types.Array:
		return holdsSlabPtr(x.Elem(), slabPaths)
	case *types.Chan:
		return holdsSlabPtr(x.Elem(), slabPaths)
	case *types.Map:
		return holdsSlabPtr(x.Key(), slabPaths) || holdsSlabPtr(x.Elem(), slabPaths)
	}
	return false
}
