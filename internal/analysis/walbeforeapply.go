package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WALBeforeApply enforces durability invariant #1 from
// internal/server: every pump step is logged before it touches engine
// state, so kill -9 can lose queued work but never applied work.
//
// Functions annotated //sharon:pump are checked with a structured
// dominance walk: a call that applies a step (a //sharon:applies
// helper, or a mutating engine method like FeedBatch or
// AdvanceWatermark) must be preceded on every path by the
// corresponding WAL append (a persist.WAL Append call, or a
// //sharon:logs helper). Branches guarded by a `wal != nil` check get
// vacuous credit on the disabled side — with durability off there is
// nothing to log — which keeps the canonical shape
//
//	if s.wal != nil {
//	    seq, err := s.wal.Append(...)
//	    if err != nil { s.fail(err); return }
//	    s.appliedSeq = seq
//	}
//	s.applyBatch(events, wm)
//
// clean while still flagging an apply hoisted above the append.
var WALBeforeApply = &Analyzer{
	Name: "walbeforeapply",
	Doc:  "engine mutations in //sharon:pump functions must be dominated by the WAL append on every path",
	Run:  runWALBeforeApply,
}

// Markers recognized by WALBeforeApply.
const (
	MarkerPump    = "pump"
	MarkerLogs    = "logs"
	MarkerApplies = "applies"
)

// walTypeSuffix identifies the write-ahead log handle type.
const walTypeSuffix = "/internal/persist.WAL"

// mutatingMethods are engine methods that change replayable state; a
// pump calling one directly (bypassing an annotated apply helper) is
// still caught.
var mutatingMethods = map[string]bool{
	"FeedBatch":        true,
	"AdvanceWatermark": true,
	"Restore":          true,
	"AbsorbGroups":     true,
	"RemoveGroups":     true,
}

func runWALBeforeApply(pass *Pass) error {
	funcs := PackageFuncs(pass)
	for _, key := range sortedFuncKeys(funcs) {
		if pass.Notes.Has(key, MarkerPump) {
			w := &walWalker{pass: pass, pump: key}
			w.stmts(funcs[key].Body.List, false)
		}
	}
	return nil
}

// walWalker tracks the "step has been logged" state through one pump
// function's control flow.
type walWalker struct {
	pass *Pass
	pump string
}

// stmts walks a statement list. logged is the incoming domination
// state; it returns the state at the fall-through exit and whether the
// list always terminates (returns/branches) instead of falling
// through.
func (w *walWalker) stmts(list []ast.Stmt, logged bool) (out, terminates bool) {
	for _, s := range list {
		logged, terminates = w.stmt(s, logged)
		if terminates {
			return logged, true
		}
	}
	return logged, false
}

func (w *walWalker) stmt(s ast.Stmt, logged bool) (out, terminates bool) {
	switch x := s.(type) {
	case *ast.ReturnStmt:
		w.scanCalls(x, &logged)
		return logged, true
	case *ast.BranchStmt:
		return logged, true // break/continue/goto end this path conservatively
	case *ast.BlockStmt:
		return w.stmts(x.List, logged)
	case *ast.IfStmt:
		if x.Init != nil {
			logged, _ = w.stmt(x.Init, logged)
		}
		w.scanCalls(x.Cond, &logged)
		guard := w.walGuard(x.Cond)
		thenIn, elseIn := logged, logged
		if guard == -1 {
			thenIn = true // wal == nil: durability off, nothing to log
		}
		thenOut, thenTerm := w.stmts(x.Body.List, thenIn)
		elseOut, elseTerm := elseIn, false
		if guard == +1 {
			elseOut = true // wal == nil side
		}
		if x.Else != nil {
			elseOut, elseTerm = w.stmt(x.Else, elseOut)
		}
		switch {
		case thenTerm && elseTerm:
			return true, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return thenOut && elseOut, false
		}
	case *ast.ForStmt:
		if x.Init != nil {
			logged, _ = w.stmt(x.Init, logged)
		}
		w.stmts(x.Body.List, logged)
		return logged, false // body may run zero times
	case *ast.RangeStmt:
		w.scanCalls(x.X, &logged)
		w.stmts(x.Body.List, logged)
		return logged, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.branches(x, logged)
	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, logged)
	case *ast.DeferStmt, *ast.GoStmt:
		return logged, false // runs outside the step's apply order
	case nil:
		return logged, false
	default:
		w.scanCalls(s, &logged)
		return logged, false
	}
}

// branches merges a switch/select: the state after is the conjunction
// over non-terminating cases, including the implicit empty default.
func (w *walWalker) branches(s ast.Stmt, logged bool) (out, terminates bool) {
	var body *ast.BlockStmt
	hasDefault := false
	switch x := s.(type) {
	case *ast.SwitchStmt:
		if x.Init != nil {
			logged, _ = w.stmt(x.Init, logged)
		}
		w.scanCalls(x.Tag, &logged)
		body = x.Body
	case *ast.TypeSwitchStmt:
		body = x.Body
	case *ast.SelectStmt:
		body = x.Body
	}
	out = true
	allTerm := true
	for _, c := range body.List {
		var list []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			list = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
			list = cc.Body
		}
		o, t := w.stmts(list, logged)
		if !t {
			out = out && o
			allTerm = false
		}
	}
	if !hasDefault {
		out = out && logged // the no-case-taken path
		allTerm = false
	}
	if allTerm {
		return true, true
	}
	return out, false
}

// scanCalls processes the calls under n in source order, updating and
// checking the logged state.
func (w *walWalker) scanCalls(n ast.Node, logged *bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false // not executed inline
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := StaticCallee(w.pass.Info, call)
		if fn == nil {
			return true
		}
		key := FuncObjKey(fn)
		switch {
		case w.isLog(fn, key):
			*logged = true
		case w.isApply(fn, key):
			if !*logged {
				w.pass.Reportf(call.Pos(),
					"engine mutation %s is not dominated by a WAL append in //sharon:pump %s", key, w.pump)
			}
		}
		return true
	})
}

// isLog recognizes the durable-logging half of a step.
func (w *walWalker) isLog(fn *types.Func, key string) bool {
	if w.pass.Notes.Has(key, MarkerLogs) {
		return true
	}
	if fn.Name() != "Append" {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Recv() != nil && NamedTypePath(sig.Recv().Type()) == w.pass.ModuleRoot+walTypeSuffix
}

// isApply recognizes the state-mutating half of a step.
func (w *walWalker) isApply(fn *types.Func, key string) bool {
	if w.pass.Notes.Has(key, MarkerApplies) {
		return true
	}
	if !mutatingMethods[fn.Name()] {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return false
	}
	path := NamedTypePath(sig.Recv().Type())
	return w.pass.InModule(pkgOfTypePath(path))
}

// pkgOfTypePath strips the ".Name" suffix off a NamedTypePath.
func pkgOfTypePath(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '.' {
			return path[:i]
		}
	}
	return path
}

// walGuard classifies cond: +1 for `wal != nil` (then-side enabled),
// -1 for `wal == nil` (then-side disabled), 0 otherwise.
func (w *walWalker) walGuard(cond ast.Expr) int {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return 0
	}
	walSide := be.X
	if w.pass.Info.Types[be.X].IsNil() {
		walSide = be.Y
	} else if !w.pass.Info.Types[be.Y].IsNil() {
		return 0
	}
	if NamedTypePath(w.pass.Info.Types[walSide].Type) != w.pass.ModuleRoot+walTypeSuffix {
		return 0
	}
	if be.Op == token.NEQ {
		return +1
	}
	return -1
}
