package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc enforces the zero-allocation budget of the per-event
// path (BENCH_hotpath.json pins it at 0.00 allocs/event with a 0.05
// budget). Every function on that path carries //sharon:hotpath, and
// inside an annotated function the analyzer flags each construct that
// can allocate:
//
//   - make/new, slice and map composite literals, &T{...}
//   - append (may grow its backing array)
//   - map writes (may grow the table)
//   - closures (func literals capture by reference and escape)
//   - string concatenation
//   - go and defer statements
//   - explicit or implicit conversions to interface types (boxing)
//   - dynamic calls through function values or interfaces
//   - calls into standard-library packages that are not on the small
//     allocation-free allow list
//
// The annotation propagates: a call from a hot-path function to
// another module function is only clean if the callee is annotated
// too, so the whole call graph under the benchmark stays inside the
// analyzer's view. Amortized allocation sites (slab refills, ring
// growth) are real and intentional; they stay visible in the source
// as //sharon:allow hotpathalloc (reason) suppressions.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocation, boxing, and unannotated calls inside //sharon:hotpath functions",
	Run:  runHotPathAlloc,
}

// MarkerHotPath is the annotation HotPathAlloc enforces.
const MarkerHotPath = "hotpath"

// hotStdlibOK lists std packages whose exported call surface used by
// the engine performs no heap allocation (in-place sorts, scalar math,
// atomics, mutexes). encoding/binary qualifies for the surface the
// wire codecs use: the fixed-width and varint getters are pure reads,
// and the Append variants grow only the caller's amortized pooled
// buffer — the same cost profile as a suppressed append.
var hotStdlibOK = map[string]bool{
	"slices":          true,
	"sort":            true,
	"cmp":             true,
	"math":            true,
	"math/bits":       true,
	"sync":            true,
	"sync/atomic":     true,
	"encoding/binary": true,
}

func runHotPathAlloc(pass *Pass) error {
	funcs := PackageFuncs(pass)
	for _, key := range sortedFuncKeys(funcs) {
		if pass.Notes.Has(key, MarkerHotPath) {
			hotWalk(pass, funcs[key])
		}
	}
	return nil
}

// hotWalk flags allocation sources in one annotated function body.
func hotWalk(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "closure allocates on the hot path")
			return false // the literal runs elsewhere; the capture is the cost here
		case *ast.GoStmt:
			pass.Reportf(x.Pos(), "go statement allocates a goroutine on the hot path")
		case *ast.DeferStmt:
			pass.Reportf(x.Pos(), "defer on the hot path (may allocate; adds per-event overhead)")
		case *ast.CompositeLit:
			switch pass.Info.Types[x].Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(x.Pos(), "composite literal allocates on the hot path")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					pass.Reportf(x.Pos(), "&composite literal allocates on the hot path")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringExpr(pass, x) && !isConstExpr(pass, x) {
				pass.Reportf(x.Pos(), "string concatenation allocates on the hot path")
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if t := pass.Info.Types[idx.X].Type; t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							pass.Reportf(idx.Pos(), "map write may grow the table on the hot path")
						}
					}
				}
			}
		case *ast.CallExpr:
			hotCall(pass, x)
		}
		return true
	})
}

// hotCall classifies one call inside a hot-path function.
func hotCall(pass *Pass, call *ast.CallExpr) {
	switch BuiltinName(pass.Info, call) {
	case "make":
		pass.Reportf(call.Pos(), "make allocates on the hot path")
		return
	case "new":
		pass.Reportf(call.Pos(), "new allocates on the hot path")
		return
	case "append":
		pass.Reportf(call.Pos(), "append may grow its backing array on the hot path")
		return
	case "":
		// not a builtin; fall through
	default:
		return // len/cap/copy/delete/min/max and friends are allocation-free
	}
	if IsConversion(pass.Info, call) {
		to := pass.Info.Types[call.Fun].Type
		from := pass.Info.Types[call.Args[0]].Type
		if types.IsInterface(to.Underlying()) && from != nil && !types.IsInterface(from.Underlying()) {
			pass.Reportf(call.Pos(), "conversion to interface boxes its operand on the hot path")
		}
		return
	}
	hotBoxedArgs(pass, call)
	fn := StaticCallee(pass.Info, call)
	if fn == nil {
		pass.Reportf(call.Pos(), "dynamic call on the hot path (target unverifiable; may allocate)")
		return
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	switch {
	case pass.InModule(pkg):
		if !pass.Notes.Has(FuncObjKey(fn), MarkerHotPath) {
			pass.Reportf(call.Pos(), "call to %s, which is not //sharon:hotpath (annotate it or suppress a cold path)", FuncObjKey(fn))
		}
	case pkg == "":
		// method on an instantiated type parameter etc.; treat as dynamic
		pass.Reportf(call.Pos(), "dynamic call on the hot path (target unverifiable; may allocate)")
	case !hotStdlibOK[pkg]:
		pass.Reportf(call.Pos(), "call into %s on the hot path (not on the allocation-free allow list)", pkg)
	}
}

// hotBoxedArgs flags arguments implicitly converted to interface
// parameters — the boxing hidden inside calls like fmt.Errorf.
func hotBoxedArgs(pass *Pass, call *ast.CallExpr) {
	sig, ok := pass.Info.Types[call.Fun].Type.(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice: no per-element boxing
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		at := pass.Info.Types[arg]
		if at.Type == nil || at.IsNil() || at.Value != nil {
			continue // nils carry no box; constants may be materialized in static data
		}
		if types.IsInterface(param.Underlying()) && !types.IsInterface(at.Type.Underlying()) {
			pass.Reportf(arg.Pos(), "argument boxed into interface parameter on the hot path")
		}
	}
}

// isStringExpr reports whether e has string type.
func isStringExpr(pass *Pass, e ast.Expr) bool {
	t := pass.Info.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstExpr reports whether e is a compile-time constant.
func isConstExpr(pass *Pass, e ast.Expr) bool {
	return pass.Info.Types[e].Value != nil
}
