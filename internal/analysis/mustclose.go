package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"strings"
)

// MustClose tracks the engine's closeable handles — the root-package
// System/DynamicSystem/PartitionedSystem, exec.Parallel (which owns
// worker goroutines), persist.WAL (an open segment file), and os.File
// — from their constructor call to the function exits. A handle that stays local to
// the function must be closed on every path: a deferred Close, or a
// Close preceding each return. Handles that escape (returned, stored,
// passed to another function, captured by a closure) transfer
// ownership and are the caller's problem.
//
// The per-return check is positional (a Close anywhere between the
// constructor and the return satisfies it), which is exactly the
// granularity of the classic bug it exists for: an early error return
// added between Open and Close. Returns inside the constructor's own
// `if err != nil` guard are exempt — there is no handle to close when
// the constructor failed.
var MustClose = &Analyzer{
	Name: "mustclose",
	Doc:  "System/Parallel/WAL/File handles must be closed on every path or escape ownership",
	Run:  runMustClose,
}

// closeableTypes lists the handle types (as path suffixes under the
// module root) and the methods that release them. System.Close is
// idempotent and safe after Flush, so a deferred Close is always
// correct; Parallel is torn down by Flush (deliver) or Stop (discard).
var closeableTypes = []struct {
	suffix  string
	release []string
}{
	{".System", []string{"Close"}},
	{".DynamicSystem", []string{"Close"}},
	{".PartitionedSystem", []string{"Close"}},
	{"/internal/exec.Parallel", []string{"Stop", "Flush"}},
	{"/internal/persist.WAL", []string{"Close"}},
}

func runMustClose(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkMustClose(pass, fd)
			}
		}
	}
	return nil
}

// releaseMethods returns the methods that release a tracked handle of
// type t, or nil if t is not tracked.
func releaseMethods(pass *Pass, t types.Type) []string {
	path := NamedTypePath(t)
	if path == "os.File" {
		return []string{"Close"}
	}
	for _, ct := range closeableTypes {
		if path == pass.ModuleRoot+ct.suffix {
			return ct.release
		}
	}
	return nil
}

// handle is one tracked constructor result within a function.
type handle struct {
	obj     types.Object // the handle variable
	errObj  types.Object // the err result of the same :=, if any
	release []string     // methods that release it
	declPos token.Pos

	escapes  bool
	deferred bool
	closes   []token.Pos
}

// checkMustClose analyzes one function for leaked handles.
func checkMustClose(pass *Pass, fd *ast.FuncDecl) {
	var handles []*handle
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || IsConversion(pass.Info, call) {
			return true
		}
		var h *handle
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			// The handle itself must be a fresh definition; the err
			// result may rebind an existing variable (tmp, err := ...),
			// so resolve it through Defs or Uses.
			if obj := pass.Info.Defs[id]; obj != nil {
				if rel := releaseMethods(pass, obj.Type()); rel != nil {
					h = &handle{obj: obj, release: rel, declPos: as.Pos()}
					continue
				}
			}
			if obj := objectOf(pass, id); obj != nil && h != nil && isErrorType(obj.Type()) {
				h.errObj = obj
			}
		}
		if h != nil {
			handles = append(handles, h)
		}
		return true
	})
	if len(handles) == 0 {
		return
	}
	for _, h := range handles {
		classifyHandleUses(pass, fd, h)
	}
	checkHandleExits(pass, fd, handles)
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// walkStack is ast.Inspect with an ancestor stack (innermost last).
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// classifyHandleUses walks every use of h.obj, recording closes and
// ownership escapes.
func classifyHandleUses(pass *Pass, fd *ast.FuncDecl, h *handle) {
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || pass.Info.Uses[id] != h.obj {
			return
		}
		for _, a := range stack {
			if _, ok := a.(*ast.FuncLit); ok {
				h.escapes = true // captured; the closure owns a reference
				return
			}
		}
		if len(stack) == 0 {
			return
		}
		switch p := stack[len(stack)-1].(type) {
		case *ast.SelectorExpr:
			if p.X != id {
				return // x used as a qualifier elsewhere; not this object
			}
			// x.Close() as a call is a close; x.Method(...) is neutral;
			// a method value (x.Close passed around) escapes.
			if len(stack) >= 2 {
				if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == p {
					if !slices.Contains(h.release, p.Sel.Name) {
						return
					}
					if len(stack) >= 3 {
						if _, ok := stack[len(stack)-3].(*ast.DeferStmt); ok {
							h.deferred = true
							return
						}
					}
					h.closes = append(h.closes, call.Pos())
					return
				}
			}
			h.escapes = true
		case *ast.BinaryExpr, *ast.IfStmt, *ast.SwitchStmt, *ast.ForStmt:
			// comparisons and conditions don't move ownership
		case *ast.AssignStmt:
			h.escapes = true // stored somewhere, or rebound
		default:
			// call argument, return value, composite literal, channel
			// send, &x, index — all transfer ownership; unknown contexts
			// are treated the same to stay quiet rather than wrong.
			h.escapes = true
		}
	})
}

// checkHandleExits flags returns (and the fall-through exit) that a
// local, never-deferred handle can leak through.
func checkHandleExits(pass *Pass, fd *ast.FuncDecl, handles []*handle) {
	live := handles[:0]
	for _, h := range handles {
		if !h.escapes && !h.deferred {
			live = append(live, h)
		}
	}
	if len(live) == 0 {
		return
	}
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		for _, a := range stack {
			if _, ok := a.(*ast.FuncLit); ok {
				return
			}
		}
		for _, h := range live {
			if ret.Pos() < h.declPos || errGuarded(pass, stack, h) {
				continue
			}
			closed := false
			for _, c := range h.closes {
				if c > h.declPos && c < ret.Pos() {
					closed = true
				}
			}
			if !closed {
				pass.Reportf(ret.Pos(), "return may leak %s opened at line %d without %s (defer the release or release on this path)",
					h.obj.Name(), pass.Fset.Position(h.declPos).Line, releaseList(h))
			}
		}
	})
	// Fall-through exit of a function whose body does not end in a
	// terminating statement.
	if len(fd.Body.List) > 0 {
		switch fd.Body.List[len(fd.Body.List)-1].(type) {
		case *ast.ReturnStmt:
			return
		}
	}
	for _, h := range live {
		if len(h.closes) == 0 {
			pass.Reportf(h.declPos, "%s is never released in %s (defer %s.%s() after the error check)",
				h.obj.Name(), fd.Name.Name, h.obj.Name(), h.release[0])
		}
	}
}

// releaseList renders a handle's release-method set for diagnostics.
func releaseList(h *handle) string {
	return strings.Join(h.release, "/")
}

// errGuarded reports whether the return sits inside an `if err != nil`
// guard testing the error from h's own constructor call — the one path
// where there is no handle to close.
func errGuarded(pass *Pass, stack []ast.Node, h *handle) bool {
	if h.errObj == nil {
		return false
	}
	for _, a := range stack {
		ifs, ok := a.(*ast.IfStmt)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == h.errObj {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
