package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockIO keeps critical sections fast: while a sync.Mutex or RWMutex
// is held, nothing on the path may touch the network or disk, sleep,
// or block on a channel. The router's merge lock and the hub's
// subscriber lock sit on the result path of every event, so one
// blocking syscall under them stalls ingestion fleet-wide.
//
// The analyzer tracks Lock/RLock...Unlock regions linearly through
// each function (defer Unlock extends the region to the function
// end), follows same-package calls made under the lock, and flags:
//
//   - calls into net, net/http, os, io, bufio, syscall, os/exec
//   - time.Sleep
//   - channel sends/receives and selects without a default case
//   - dynamic calls through function values (unverifiable)
//   - cross-package module calls not annotated //sharon:locksafe
//
// Branch bodies are walked with a copy of the held set, so an
// early-unlock-and-return branch does not end the region for the
// fall-through path.
var LockIO = &Analyzer{
	Name: "lockio",
	Doc:  "no network/disk I/O, sleeps, or blocking channel ops while holding a mutex",
	Run:  runLockIO,
}

// MarkerLockSafe marks a function audited as safe to call under a
// mutex (no I/O, no blocking).
const MarkerLockSafe = "locksafe"

// lockedDenyPkgs are std packages whose calls can block on the
// network, the disk, or the scheduler.
var lockedDenyPkgs = []string{"net", "os", "io", "bufio", "syscall"}

func runLockIO(pass *Pass) error {
	funcs := PackageFuncs(pass)
	w := &lockWalker{
		pass:     pass,
		funcs:    funcs,
		reported: make(map[token.Pos]bool),
	}
	for _, key := range sortedFuncKeys(funcs) {
		w.stmts(funcs[key].Body.List, map[string]bool{})
	}
	return nil
}

type lockWalker struct {
	pass     *Pass
	funcs    map[string]*ast.FuncDecl
	reported map[token.Pos]bool
}

// heldDesc renders the held set for diagnostics.
func heldDesc(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for n := range held {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// stmts walks a statement list, threading the held-mutex set through
// linear flow; branch bodies see a copy.
func (w *lockWalker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]bool) {
	switch x := s.(type) {
	case nil:
		return
	case *ast.BlockStmt:
		w.stmts(x.List, held)
	case *ast.IfStmt:
		w.stmt(x.Init, held)
		w.exprs(x.Cond, held)
		w.stmts(x.Body.List, copyHeld(held))
		if x.Else != nil {
			w.stmt(x.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		w.stmt(x.Init, held)
		w.exprs(x.Cond, held)
		inner := copyHeld(held)
		w.stmt(x.Post, inner)
		w.stmts(x.Body.List, inner)
	case *ast.RangeStmt:
		w.exprs(x.X, held)
		w.stmts(x.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		w.stmt(x.Init, held)
		w.exprs(x.Tag, held)
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		w.selectStmt(x, held)
	case *ast.LabeledStmt:
		w.stmt(x.Stmt, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the region open to the function end;
		// any other deferred call runs after the step, outside it.
		return
	case *ast.GoStmt:
		return // new goroutine does not hold our locks
	case *ast.SendStmt:
		if len(held) > 0 {
			w.reportf(x.Pos(), "channel send may block while holding %s", heldDesc(held))
		}
		w.exprs(x.Value, held)
	case *ast.ExprStmt:
		if w.lockEvent(x.X, held) {
			return
		}
		w.exprs(x.X, held)
	default:
		for _, e := range stmtExprs(s) {
			w.exprs(e, held)
		}
	}
}

// selectStmt flags a lock-held select without default (blocking); a
// select with default polls, so only its clause bodies are walked.
func (w *lockWalker) selectStmt(x *ast.SelectStmt, held map[string]bool) {
	hasDefault := false
	for _, c := range x.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault && len(held) > 0 {
		w.reportf(x.Pos(), "select without default blocks while holding %s", heldDesc(held))
	}
	for _, c := range x.Body.List {
		if cc, ok := c.(*ast.CommClause); ok {
			w.stmts(cc.Body, copyHeld(held))
		}
	}
}

// stmtExprs pulls the expressions out of simple statements.
func stmtExprs(s ast.Stmt) []ast.Expr {
	switch x := s.(type) {
	case *ast.AssignStmt:
		return append(append([]ast.Expr{}, x.Rhs...), x.Lhs...)
	case *ast.ReturnStmt:
		return x.Results
	case *ast.IncDecStmt:
		return []ast.Expr{x.X}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			var out []ast.Expr
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					out = append(out, vs.Values...)
				}
			}
			return out
		}
	}
	return nil
}

// lockEvent updates held for a mutex Lock/Unlock expression statement;
// it reports true when the statement was consumed as a lock event.
func (w *lockWalker) lockEvent(e ast.Expr, held map[string]bool) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn := StaticCallee(w.pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	switch NamedTypePath(recv.Type()) {
	case "sync.Mutex", "sync.RWMutex":
	default:
		return false
	}
	name := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		held[name] = true
		return true
	case "Unlock", "RUnlock":
		delete(held, name)
		return true
	}
	return false
}

// exprs scans an expression tree; when locks are held, each call is
// vetted.
func (w *lockWalker) exprs(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // runs later, not necessarily under the lock
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && len(held) > 0 {
				w.reportf(x.Pos(), "channel receive may block while holding %s", heldDesc(held))
			}
		case *ast.CallExpr:
			if len(held) > 0 {
				w.lockedCall(x, heldDesc(held), make(map[string]bool))
			}
		}
		return true
	})
}

// lockedCall vets one call made while holding locks, following
// same-package callees.
func (w *lockWalker) lockedCall(call *ast.CallExpr, locks string, visited map[string]bool) {
	if BuiltinName(w.pass.Info, call) != "" || IsConversion(w.pass.Info, call) {
		return
	}
	fn := StaticCallee(w.pass.Info, call)
	if fn == nil {
		w.reportf(call.Pos(), "dynamic call while holding %s (target unverifiable for I/O)", locks)
		return
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	switch {
	case pkg == "time" && fn.Name() == "Sleep":
		w.reportf(call.Pos(), "time.Sleep while holding %s", locks)
	case isLockedDenyPkg(pkg):
		w.reportf(call.Pos(), "call into %s performs I/O while holding %s", pkg, locks)
	case pkg == w.pass.Pkg.Path():
		key := FuncObjKey(fn)
		if visited[key] {
			return
		}
		visited[key] = true
		if fd := w.funcs[key]; fd != nil {
			w.lockedBody(fd, locks, visited)
		}
	case w.pass.InModule(pkg):
		if !w.pass.Notes.Has(FuncObjKey(fn), MarkerLockSafe) {
			w.reportf(call.Pos(), "call to %s while holding %s (not //sharon:locksafe)", FuncObjKey(fn), locks)
		}
	}
}

// lockedBody vets an entire same-package callee that runs under the
// caller's lock.
func (w *lockWalker) lockedBody(fd *ast.FuncDecl, locks string, visited map[string]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			if !inSelectWithDefault(fd.Body, x.Pos()) {
				w.reportf(x.Pos(), "channel send may block while holding %s (callee runs under the caller's lock)", locks)
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !inSelectWithDefault(fd.Body, x.Pos()) {
				w.reportf(x.Pos(), "channel receive may block while holding %s (callee runs under the caller's lock)", locks)
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					return true // polling select
				}
			}
			w.reportf(x.Pos(), "select without default blocks while holding %s (callee runs under the caller's lock)", locks)
		case *ast.CallExpr:
			w.lockedCall(x, locks, visited)
			return true
		}
		return true
	})
}

// inSelectWithDefault reports whether pos is a comm clause of a
// select that has a default clause — a non-blocking poll, not a
// blocking channel op.
func inSelectWithDefault(body *ast.BlockStmt, pos token.Pos) bool {
	result := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil && pos >= cc.Comm.Pos() && pos < cc.Comm.End() {
				result = true
			}
		}
		return true
	})
	return result
}

// isLockedDenyPkg reports whether pkg (or its parent tree) is on the
// blocking-I/O deny list.
func isLockedDenyPkg(pkg string) bool {
	for _, d := range lockedDenyPkgs {
		if pkg == d || strings.HasPrefix(pkg, d+"/") {
			return true
		}
	}
	return false
}

// copyHeld clones the held set for a branch body.
func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

func (w *lockWalker) reportf(pos token.Pos, format string, args ...any) {
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	w.pass.Reportf(pos, format, args...)
}
