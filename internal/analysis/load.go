package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader type-checks the module without golang.org/x/tools: it
// shells out to `go list -export -deps -test -json`, which compiles as
// needed and reports a build-cache export-data file per package, then
// feeds those files to the compiler's importer. This is the same
// information the `go vet -vettool` protocol supplies through .cfg
// files, so the analyzers see identical type information in both the
// standalone and vettool drivers.

// A Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// ForTest marks a test variant ("pkg [pkg.test]"): the package
	// rebuilt with its _test.go files. Drivers analyze variants but
	// keep only diagnostics in test files, since the rest duplicates
	// the plain package.
	ForTest string
}

// A Loader owns the shared FileSet and the export-data index for one
// module tree.
type Loader struct {
	Fset   *token.FileSet
	Module string
	Dir    string

	exports map[string]string // import path (incl. test-variant suffix) -> export file
	pkgs    []*Package        // module packages in go list (dependency) order
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	ForTest    string
	GoFiles    []string
	CgoFiles   []string
	ImportMap  map[string]string
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// LoadModule lists, compiles, and type-checks every package of the
// module rooted at dir (plus extra patterns, e.g. std packages that
// test fixtures import but the module does not).
func LoadModule(dir string, extra ...string) (*Loader, error) {
	ld := &Loader{Fset: token.NewFileSet(), Dir: dir, exports: make(map[string]string)}
	args := append([]string{"list", "-export", "-deps", "-test", "-json"}, "./...")
	args = append(args, extra...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var listed []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		listed = append(listed, lp)
	}
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			ld.exports[lp.ImportPath] = lp.Export
		}
		if ld.Module == "" && lp.Module != nil {
			ld.Module = lp.Module.Path
		}
	}
	for _, lp := range listed {
		if lp.Standard || lp.Module == nil || lp.Module.Path != ld.Module {
			continue
		}
		if strings.HasSuffix(lp.ImportPath, ".test") {
			continue // synthesized test main
		}
		pkg, err := ld.check(lp)
		if err != nil {
			return nil, err
		}
		ld.pkgs = append(ld.pkgs, pkg)
	}
	return ld, nil
}

// Packages returns the module's packages, test variants included.
func (ld *Loader) Packages() []*Package { return ld.pkgs }

// check parses and type-checks one listed package against export data.
func (ld *Loader) check(lp *listPackage) (*Package, error) {
	if len(lp.CgoFiles) > 0 {
		return nil, fmt.Errorf("%s: cgo packages are not supported", lp.ImportPath)
	}
	files, err := ld.parseFiles(lp.Dir, lp.GoFiles)
	if err != nil {
		return nil, err
	}
	tpkg, info, err := ld.typeCheck(lp.ImportPath, strings.TrimSuffix(lp.ImportPath, " ["+lp.ForTest+".test]"), files, lp.ImportMap)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Name:       lp.Name,
		Dir:        lp.Dir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		ForTest:    lp.ForTest,
	}, nil
}

// parseFiles parses names (relative to dir) with comments retained.
func (ld *Loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(ld.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// typeCheck runs go/types over files using export data for every
// import. importMap carries go list's per-package import rewrites
// (test variants); path is the display path, typePath the path
// recorded in the resulting types.Package.
func (ld *Loader) typeCheck(path, typePath string, files []*ast.File, importMap map[string]string) (*types.Package, *types.Info, error) {
	lookup := func(p string) (io.ReadCloser, error) {
		if m, ok := importMap[p]; ok {
			p = m
		}
		exp, ok := ld.exports[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (imported by %s)", p, path)
		}
		return os.Open(exp)
	}
	conf := typesConfig(importer.ForCompiler(ld.Fset, "gc", lookup))
	info := newTypesInfo()
	tpkg, err := conf.Check(typePath, ld.Fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return tpkg, info, err
}

// typesConfig builds the shared type-checker configuration over an
// export-data importer.
func typesConfig(imp types.Importer) types.Config {
	return types.Config{Importer: imp, Sizes: types.SizesFor("gc", build.Default.GOARCH)}
}

// newTypesInfo allocates the full Info map set the analyzers consult.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// LoadFixture parses and type-checks a directory of test fixture
// sources (an analysistest golden package) under the fake import path.
// Fixtures may import the module's real packages and the standard
// library; both resolve through the export index built by LoadModule.
func (ld *Loader) LoadFixture(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	files, err := ld.parseFiles(dir, names)
	if err != nil {
		return nil, err
	}
	tpkg, info, err := ld.typeCheck(importPath, importPath, files, nil)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: importPath,
		Name:       files[0].Name.Name,
		Dir:        dir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// NewPass assembles a Pass for one analyzer over one package. notes is
// the cross-package annotation table (see CollectAnnotations).
func (ld *Loader) NewPass(a *Analyzer, pkg *Package, notes *Annotations, moduleRoot string) *Pass {
	return &Pass{
		Analyzer:   a,
		Fset:       ld.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		Info:       pkg.Info,
		ModuleRoot: moduleRoot,
		Notes:      notes,
	}
}

// CollectAnnotations scans every loaded module package's //sharon:
// markers into one table. Test variants re-scan the plain files; the
// duplicate adds are idempotent.
func (ld *Loader) CollectAnnotations() *Annotations {
	notes := NewAnnotations()
	for _, pkg := range ld.pkgs {
		ScanAnnotations(pkg.Types.Path(), pkg.Files, notes)
	}
	return notes
}
