package analysis

import (
	"fmt"
	"io"
	"strings"
)

// RunStandalone loads the module rooted at dir, runs the full analyzer
// suite over every package (test variants included), and prints the
// findings to out. It returns the number of findings. This is the
// `sharonvet ./...` developer loop; CI goes through the vettool
// protocol instead, but both paths share RunAnalyzers, so they agree.
func RunStandalone(dir string, analyzers []*Analyzer, out io.Writer) (int, error) {
	ld, err := LoadModule(dir)
	if err != nil {
		return 0, err
	}
	notes := ld.CollectAnnotations()
	total := 0
	for _, pkg := range ld.Packages() {
		pass := ld.NewPass(nil, pkg, notes, ld.Module)
		diags, err := RunAnalyzers(pass, analyzers)
		if err != nil {
			return total, err
		}
		if pkg.ForTest != "" {
			diags = filterTestVariant(ld.Fset, pkg.ImportPath, diags)
		}
		for _, d := range diags {
			fmt.Fprintf(out, "%s: %s (%s)\n", relPosition(ld, d), d.Message, d.Analyzer)
		}
		total += len(diags)
	}
	return total, nil
}

// relPosition renders a diagnostic position relative to the module
// root for stable, readable output.
func relPosition(ld *Loader, d Diagnostic) string {
	pos := ld.Fset.Position(d.Pos)
	if rel, ok := strings.CutPrefix(pos.Filename, ld.Dir+"/"); ok {
		pos.Filename = rel
	}
	return pos.String()
}
