package analysis_test

import (
	"go/ast"
	"sort"
	"strings"
	"testing"

	"github.com/sharon-project/sharon/internal/analysis"
)

// TestHotPathAnnotationsCovered walks the static call graphs the
// per-event benchmarks measure — everything reachable inside the
// module from internal/exec.(Engine).Process and from the binary wire
// codec's per-event loops — and asserts each function on them carries
// //sharon:hotpath, so new hot-path code cannot dodge the hotpathalloc
// analyzer. Call sites suppressed with
// //sharon:allow hotpathalloc are documented cold paths and are not
// traversed; dynamic calls are hotpathalloc findings in their own
// right, so the analyzer (not this test) polices them.
func TestHotPathAnnotationsCovered(t *testing.T) {
	ld := loadModule(t)
	notes := ld.CollectAnnotations()

	type declSite struct {
		pkg *analysis.Package
		fd  *ast.FuncDecl
	}
	decls := make(map[string]declSite)
	sups := make(map[string]*analysis.Suppressions)
	for _, pkg := range ld.Packages() {
		if pkg.ForTest != "" {
			continue // test variants re-declare the plain package
		}
		sups[pkg.ImportPath] = analysis.CollectSuppressions(ld.Fset, pkg.Files)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					decls[analysis.FuncDeclKey(pkg.Types.Path(), fd)] = declSite{pkg, fd}
				}
			}
		}
	}

	// Roots: the engine's per-event entry point plus the binary wire
	// codec's per-event loops — the ingest edge (decode) and the cluster
	// forward / load generator edge (encode), which BenchWire measures
	// with the same ~0 allocs/event expectation.
	roots := []string{
		ld.Module + "/internal/exec.(Engine).Process",
		ld.Module + "/internal/server.decodeWireEvents",
		ld.Module + "/internal/server.appendWireEvents",
	}
	for _, root := range roots {
		if _, ok := decls[root]; !ok {
			t.Fatalf("hot-path root %s not found", root)
		}
	}

	inModule := func(path string) bool {
		return path == ld.Module || strings.HasPrefix(path, ld.Module+"/")
	}

	visited := make(map[string]bool)
	queue := append([]string(nil), roots...)
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		if visited[key] {
			continue
		}
		visited[key] = true
		site, ok := decls[key]
		if !ok {
			// Resolved to a module function whose body the loader did not
			// see (should not happen: every module package is loaded).
			t.Errorf("hot-path callee %s has no loaded declaration", key)
			continue
		}
		if !notes.Has(key, "hotpath") {
			pos := ld.Fset.Position(site.fd.Pos())
			t.Errorf("%s: %s is on BenchmarkHotPathProcess's call graph but not //sharon:hotpath", pos, key)
		}
		sup := sups[site.pkg.ImportPath]
		ast.Inspect(site.fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sup.Allows(ld.Fset, analysis.Diagnostic{Pos: call.Pos(), Analyzer: "hotpathalloc"}) {
				return true // documented cold path: not part of the hot graph
			}
			fn := analysis.StaticCallee(site.pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || !inModule(fn.Pkg().Path()) {
				return true
			}
			queue = append(queue, analysis.FuncObjKey(fn))
			return true
		})
	}

	// The graph must at minimum span the engine dispatch, the window
	// arithmetic, and the aggregator core — if these drop out, the walk
	// itself has regressed and the test is vacuous.
	for _, want := range []string{
		ld.Module + "/internal/exec.(Engine).closeUpTo",
		ld.Module + "/internal/exec.accepts",
		ld.Module + "/internal/query.(Window).FirstContaining",
		ld.Module + "/internal/query.(Window).LastContaining",
		ld.Module + "/internal/agg.(Aggregator).Process",
		ld.Module + "/internal/persist.(Decoder).Uvarint",
		ld.Module + "/internal/persist.(Decoder).Float",
		ld.Module + "/internal/persist.(Decoder).Varint",
	} {
		if !visited[want] {
			t.Errorf("expected %s on the hot-path call graph; the walk no longer reaches it", want)
		}
	}

	if testing.Verbose() {
		keys := make([]string, 0, len(visited))
		for k := range visited {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		t.Logf("hot-path call graph (%d functions):", len(keys))
		for _, k := range keys {
			t.Logf("  %s", k)
		}
	}
}
