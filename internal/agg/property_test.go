package agg

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// aggCase is a randomly generated aggregation scenario.
type aggCase struct {
	pattern query.Pattern
	target  event.Type
	window  query.Window
	events  []event.Event
}

func genAggCase(rng *rand.Rand) aggCase {
	types := []event.Type{1, 2, 3, 4}
	plen := 1 + rng.Intn(3)
	pat := make(query.Pattern, plen)
	for i := range pat {
		pat[i] = types[rng.Intn(len(types))] // duplicates allowed (§7.3)
	}
	target := event.NoType
	if rng.Intn(2) == 0 {
		target = pat[rng.Intn(plen)]
	}
	length := int64(4 + rng.Intn(20))
	win := query.Window{Length: length, Slide: 1 + int64(rng.Intn(int(length)))}
	n := 5 + rng.Intn(40)
	evs := make([]event.Event, n)
	t := int64(rng.Intn(4))
	for i := range evs {
		t += 1 + int64(rng.Intn(3))
		evs[i] = event.Event{Time: t, Type: types[rng.Intn(len(types))], Val: float64(rng.Intn(9) - 4)}
	}
	return aggCase{pattern: pat, target: target, window: win, events: evs}
}

// bruteWindow computes the aggregate of all matches of pat fully inside
// [lo, hi) by explicit enumeration.
func bruteWindow(evs []event.Event, pat query.Pattern, target event.Type, lo, hi int64) State {
	var in []event.Event
	for _, e := range evs {
		if e.Time >= lo && e.Time < hi {
			in = append(in, e)
		}
	}
	total := Zero()
	var dfs func(pos int, minTime int64, st State)
	dfs = func(pos int, minTime int64, st State) {
		if pos == len(pat) {
			total.AddInPlace(st)
			return
		}
		for _, e := range in {
			if e.Time <= minTime || e.Type != pat[pos] {
				continue
			}
			dfs(pos+1, e.Time, Extend(st, e, e.Type == target))
		}
	}
	dfs(0, -1, UnitEmpty())
	return total
}

// TestAggregatorMatchesBruteForce is the engine's core property: for
// random patterns (including duplicate types), windows, and streams, the
// online aggregator's per-window totals equal brute-force enumeration.
func TestAggregatorMatchesBruteForce(t *testing.T) {
	cfgCount := 400
	if testing.Short() {
		cfgCount = 80
	}
	cfg := &quick.Config{
		MaxCount: cfgCount,
		Rand:     rand.New(rand.NewSource(123)),
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(genAggCase(rng))
		},
	}
	property := func(tc aggCase) bool {
		closes := make(map[int64]State)
		a := NewAggregator(Config{
			Pattern:   tc.pattern,
			Window:    tc.window,
			Target:    tc.target,
			OnClose:   func(win int64, total State) { closes[win] = total },
			EmitEmpty: true,
		})
		for _, e := range tc.events {
			if err := a.Process(e); err != nil {
				t.Logf("process: %v", err)
				return false
			}
		}
		a.Flush()
		first := tc.window.FirstContaining(tc.events[0].Time)
		last := tc.window.LastContaining(tc.events[len(tc.events)-1].Time)
		for k := first; k <= last; k++ {
			want := bruteWindow(tc.events, tc.pattern, tc.target, tc.window.Start(k), tc.window.End(k))
			got, ok := closes[k]
			if !ok {
				got = Zero()
			}
			if !ApproxEqual(want, got) {
				t.Logf("window %d: want %+v got %+v (pattern=%v win=%+v)", k, want, got, tc.pattern, tc.window)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestAggregatorCurrentTotalMonotone: CurrentTotal(k) for an open window
// only ever grows (counts are monotone under stream progress).
func TestAggregatorCurrentTotalMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for it := 0; it < 50; it++ {
		tc := genAggCase(rng)
		a := NewAggregator(Config{Pattern: tc.pattern, Window: tc.window, Target: tc.target})
		prev := make(map[int64]float64)
		for _, e := range tc.events {
			if err := a.Process(e); err != nil {
				t.Fatal(err)
			}
			first, lastWin := tc.window.Indices(e.Time)
			for k := first; k <= lastWin; k++ {
				cur := a.CurrentTotal(k).Count
				if cur < prev[k] {
					t.Fatalf("window %d count shrank: %v -> %v", k, prev[k], cur)
				}
				prev[k] = cur
			}
		}
	}
}
