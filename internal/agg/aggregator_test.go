package agg

import (
	"testing"

	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// fixture interns A..E and provides pattern/event helpers.
type fixture struct {
	reg *event.Registry
	ids map[byte]event.Type
}

func newFixture() *fixture {
	f := &fixture{reg: event.NewRegistry(), ids: make(map[byte]event.Type)}
	for _, c := range []byte("ABCDE") {
		f.ids[c] = f.reg.Intern(string(c))
	}
	return f
}

func (f *fixture) pat(s string) query.Pattern {
	p := make(query.Pattern, len(s))
	for i := range s {
		p[i] = f.ids[s[i]]
	}
	return p
}

func (f *fixture) ev(c byte, t int64) event.Event {
	return event.Event{Time: t, Type: f.ids[c], Val: float64(t)}
}

// collectCloses wires OnClose into a map for assertions.
func collectCloses(cfg *Config) map[int64]State {
	out := make(map[int64]State)
	cfg.OnClose = func(win int64, total State) { out[win] = total }
	return out
}

// TestFigure6aOnlineAggregation reproduces Example 1 / Fig. 6(a): events
// a1, b2, a3, b4 in one window; count(A,B) becomes 3 after b4.
func TestFigure6aOnlineAggregation(t *testing.T) {
	f := newFixture()
	cfg := Config{Pattern: f.pat("AB"), Window: query.Window{Length: 100, Slide: 100}}
	closes := collectCloses(&cfg)
	a := NewAggregator(cfg)
	for _, e := range []event.Event{f.ev('A', 1), f.ev('B', 2), f.ev('A', 3), f.ev('B', 4)} {
		if err := a.Process(e); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.CurrentTotal(0).Count; got != 3 {
		t.Errorf("count(A,B) after b4 = %v, want 3 (a1b2, a1b4, a3b4)", got)
	}
	a.Flush()
	if got := closes[0].Count; got != 3 {
		t.Errorf("window 0 close = %v, want 3", got)
	}
}

// TestFigure6bExpiration reproduces Example 2 / Fig. 6(b): window length 4
// sliding by 1; when b5 arrives, a1 has expired for the open windows.
func TestFigure6bExpiration(t *testing.T) {
	f := newFixture()
	cfg := Config{Pattern: f.pat("AB"), Window: query.Window{Length: 4, Slide: 1}}
	closes := collectCloses(&cfg)
	a := NewAggregator(cfg)
	for _, e := range []event.Event{f.ev('A', 1), f.ev('B', 2), f.ev('A', 3), f.ev('B', 5)} {
		if err := a.Process(e); err != nil {
			t.Fatal(err)
		}
	}
	a.Flush()
	// Window contents: w0=[0,4): (a1,b2). w1=[1,5): (a1,b2).
	// w2=[2,6): (a3,b5). w3=[3,7): (a3,b5). w4,w5: no complete match.
	want := map[int64]float64{0: 1, 1: 1, 2: 1, 3: 1}
	for k, c := range want {
		if got := closes[k].Count; got != c {
			t.Errorf("window %d count = %v, want %v", k, got, c)
		}
	}
	for k, s := range closes {
		if _, ok := want[k]; !ok && s.Count != 0 {
			t.Errorf("unexpected non-zero window %d: %+v", k, s)
		}
	}
}

// TestExpirationDropsStartRecords verifies START records are released once
// every window containing them has closed (the paper's §3.2 expiration).
func TestExpirationDropsStartRecords(t *testing.T) {
	f := newFixture()
	a := NewAggregator(Config{Pattern: f.pat("AB"), Window: query.Window{Length: 4, Slide: 2}})
	for i := int64(0); i < 50; i++ {
		if err := a.Process(f.ev('A', 1+i*2)); err != nil {
			t.Fatal(err)
		}
	}
	if live := a.LiveStarts(); live > 4 {
		t.Errorf("%d live starts, want <= 4 (only starts within the window horizon)", live)
	}
}

func TestSlidingWindowMultiWindowCredit(t *testing.T) {
	f := newFixture()
	cfg := Config{Pattern: f.pat("AB"), Window: query.Window{Length: 10, Slide: 2}}
	closes := collectCloses(&cfg)
	a := NewAggregator(cfg)
	// a@5, b@7: pair lies in windows [0,10),[2,12),[4,14): k=0,1,2.
	must(t, a.Process(f.ev('A', 5)))
	must(t, a.Process(f.ev('B', 7)))
	a.Flush()
	for _, k := range []int64{0, 1, 2} {
		if got := closes[k].Count; got != 1 {
			t.Errorf("window %d = %v, want 1", k, got)
		}
	}
	if got := closes[3].Count; got != 0 {
		t.Errorf("window 3 = %v, want 0 (starts at t=6 > a@5)", got)
	}
}

func TestLongerPatternCounts(t *testing.T) {
	f := newFixture()
	cfg := Config{Pattern: f.pat("ABC"), Window: query.Window{Length: 100, Slide: 100}}
	closes := collectCloses(&cfg)
	a := NewAggregator(cfg)
	// a1 a2 b3 b4 c5: sequences = {a1,a2} x {b3,b4} x {c5} = 4.
	for i, c := range []byte("AABBC") {
		must(t, a.Process(f.ev(c, int64(i+1))))
	}
	a.Flush()
	if got := closes[0].Count; got != 4 {
		t.Errorf("count(A,B,C) = %v, want 4", got)
	}
}

func TestSumMinMaxTargets(t *testing.T) {
	f := newFixture()
	cfg := Config{Pattern: f.pat("AB"), Window: query.Window{Length: 100, Slide: 100}, Target: f.ids['B']}
	closes := collectCloses(&cfg)
	a := NewAggregator(cfg)
	// a@1, b@2 (val 2), b@4 (val 4): sequences (a1,b2), (a1,b4).
	must(t, a.Process(f.ev('A', 1)))
	must(t, a.Process(f.ev('B', 2)))
	must(t, a.Process(f.ev('B', 4)))
	a.Flush()
	s := closes[0]
	if s.Count != 2 || s.CountE != 2 || s.Sum != 6 || s.Min != 2 || s.Max != 4 {
		t.Errorf("state = %+v, want count=2 countE=2 sum=6 min=2 max=4", s)
	}
}

// TestDuplicateTypePattern exercises the §7.3 extension: type A occurs
// twice in (A,B,A); one event must not occupy two positions of the same
// sequence.
func TestDuplicateTypePattern(t *testing.T) {
	f := newFixture()
	cfg := Config{Pattern: f.pat("ABA"), Window: query.Window{Length: 100, Slide: 100}}
	closes := collectCloses(&cfg)
	a := NewAggregator(cfg)
	// a1 b2 a3: exactly one match (a1,b2,a3); a3 must not self-pair.
	for i, c := range []byte("ABA") {
		must(t, a.Process(f.ev(c, int64(i+1))))
	}
	a.Flush()
	if got := closes[0].Count; got != 1 {
		t.Errorf("count(A,B,A) = %v, want 1", got)
	}
}

func TestSingleTypePattern(t *testing.T) {
	f := newFixture()
	var started, completed int
	cfg := Config{
		Pattern: f.pat("A"),
		Window:  query.Window{Length: 10, Slide: 10},
		OnStart: func(*StartRec, event.Event) { started++ },
	}
	cfg.OnComplete = func(_ *StartRec, _ event.Event, delta State, _, _ int64) {
		completed++
		if delta.Count != 1 {
			t.Errorf("single-event delta = %+v", delta)
		}
	}
	closes := collectCloses(&cfg)
	a := NewAggregator(cfg)
	must(t, a.Process(f.ev('A', 1)))
	must(t, a.Process(f.ev('A', 3)))
	a.Flush()
	if started != 2 || completed != 2 {
		t.Errorf("started=%d completed=%d, want 2,2", started, completed)
	}
	if got := closes[0].Count; got != 2 {
		t.Errorf("count(A) = %v, want 2", got)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	f := newFixture()
	a := NewAggregator(Config{Pattern: f.pat("AB"), Window: query.Window{Length: 10, Slide: 5}})
	must(t, a.Process(f.ev('A', 5)))
	if err := a.Process(f.ev('B', 5)); err == nil {
		t.Error("equal timestamp accepted")
	}
	if err := a.Process(f.ev('B', 3)); err == nil {
		t.Error("decreasing timestamp accepted")
	}
	// State unchanged: a later valid event still works.
	must(t, a.Process(f.ev('B', 6)))
	if got := a.CurrentTotal(1).Count; got != 1 {
		t.Errorf("count = %v, want 1", got)
	}
}

func TestNonMatchingTypesIgnored(t *testing.T) {
	f := newFixture()
	a := NewAggregator(Config{Pattern: f.pat("AB"), Window: query.Window{Length: 10, Slide: 5}})
	must(t, a.Process(f.ev('A', 1)))
	must(t, a.Process(f.ev('C', 2)))
	must(t, a.Process(f.ev('B', 3)))
	if got := a.CurrentTotal(0).Count; got != 1 {
		t.Errorf("count = %v, want 1", got)
	}
}

func TestOnCompleteWindows(t *testing.T) {
	f := newFixture()
	var first, last int64 = -1, -1
	cfg := Config{Pattern: f.pat("AB"), Window: query.Window{Length: 4, Slide: 1}}
	cfg.OnComplete = func(_ *StartRec, _ event.Event, _ State, fw, lw int64) { first, last = fw, lw }
	a := NewAggregator(cfg)
	must(t, a.Process(f.ev('A', 3)))
	must(t, a.Process(f.ev('B', 5)))
	// Windows containing both 3 and 5: [2,6) and [3,7).
	if first != 2 || last != 3 {
		t.Errorf("completion windows = [%d,%d], want [2,3]", first, last)
	}
}

func TestOnStartBeforeCompleteForLength1(t *testing.T) {
	f := newFixture()
	order := []string{}
	cfg := Config{Pattern: f.pat("A"), Window: query.Window{Length: 10, Slide: 10}}
	cfg.OnStart = func(*StartRec, event.Event) { order = append(order, "start") }
	cfg.OnComplete = func(*StartRec, event.Event, State, int64, int64) { order = append(order, "complete") }
	a := NewAggregator(cfg)
	must(t, a.Process(f.ev('A', 1)))
	if len(order) != 2 || order[0] != "start" || order[1] != "complete" {
		t.Errorf("callback order = %v, want [start complete]", order)
	}
}

func TestEmitEmptyWindows(t *testing.T) {
	f := newFixture()
	cfg := Config{Pattern: f.pat("AB"), Window: query.Window{Length: 4, Slide: 2}, EmitEmpty: true}
	closes := collectCloses(&cfg)
	a := NewAggregator(cfg)
	must(t, a.Process(f.ev('A', 1)))
	must(t, a.Process(f.ev('A', 11))) // long gap: empty windows in between
	a.Flush()
	if len(closes) < 4 {
		t.Errorf("closed %d windows, want >= 4 including empties: %v", len(closes), closes)
	}
}

func TestLiveStatesAccounting(t *testing.T) {
	f := newFixture()
	a := NewAggregator(Config{Pattern: f.pat("AB"), Window: query.Window{Length: 10, Slide: 5}})
	if a.LiveStates() != 0 {
		t.Fatalf("initial live states = %d", a.LiveStates())
	}
	must(t, a.Process(f.ev('A', 1)))
	if a.LiveStates() != 2 { // one start record with 2 prefix states
		t.Errorf("after start: %d, want 2", a.LiveStates())
	}
	must(t, a.Process(f.ev('B', 2)))
	if a.LiveStates() != 3 { // + one window total
		t.Errorf("after complete: %d, want 3", a.LiveStates())
	}
}

func TestNewAggregatorPanicsOnBadConfig(t *testing.T) {
	f := newFixture()
	assertPanics(t, func() { NewAggregator(Config{Window: query.Window{Length: 1, Slide: 1}}) })
	assertPanics(t, func() { NewAggregator(Config{Pattern: f.pat("AB")}) })
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestEmptyWindowEmissionSparseStream is the regression test for the
// window-ring's zero-slot semantics: under a sparse stream whose gaps span
// many multiples of the ring capacity, every window overlapping the stream
// must close exactly once, in ascending order, as exactly Zero() when it
// holds no match — a recycled ring slot must never leak a previous
// window's total (the map-based predecessor conflated "no entry" with
// "present but zero" in its EmitEmpty accounting; the ring makes slot
// Count == 0 the single, explicit "no matches" state).
func TestEmptyWindowEmissionSparseStream(t *testing.T) {
	f := newFixture()
	win := query.Window{Length: 4, Slide: 2}
	// Matches: (a1,b2) and, after a gap of ~50 ring lengths, (a400,b401).
	stream := []event.Event{f.ev('A', 1), f.ev('B', 2), f.ev('A', 400), f.ev('B', 401)}

	t.Run("EmitEmpty", func(t *testing.T) {
		var order []int64
		totals := make(map[int64]State)
		a := NewAggregator(Config{
			Pattern: f.pat("AB"), Window: win, EmitEmpty: true,
			OnClose: func(w int64, total State) {
				order = append(order, w)
				totals[w] = total
			},
		})
		for _, e := range stream {
			must(t, a.Process(e))
		}
		a.Flush()
		first := win.FirstContaining(1) // 0
		last := win.LastContaining(401) // 200
		if want := last - first + 1; int64(len(order)) != want {
			t.Fatalf("closed %d windows, want %d", len(order), want)
		}
		for i, w := range order {
			if w != first+int64(i) {
				t.Fatalf("close %d was window %d, want %d (ascending, exactly once)", i, w, first+int64(i))
			}
		}
		for w, total := range totals {
			matched := w == 0 || w == 199 || w == 200 // windows containing both endpoints of a match
			if matched && total.Count != 1 {
				t.Errorf("window %d total = %+v, want count 1", w, total)
			}
			if !matched && total != Zero() {
				t.Errorf("window %d total = %+v, want exactly Zero()", w, total)
			}
		}
	})

	t.Run("NoEmitEmpty", func(t *testing.T) {
		totals := make(map[int64]State)
		a := NewAggregator(Config{
			Pattern: f.pat("AB"), Window: win,
			OnClose: func(w int64, total State) { totals[w] = total },
		})
		for _, e := range stream {
			must(t, a.Process(e))
		}
		a.Flush()
		if len(totals) != 3 {
			t.Fatalf("closed %d matched windows, want 3 (0, 199, 200): %v", len(totals), totals)
		}
		for _, w := range []int64{0, 199, 200} {
			if totals[w].Count != 1 {
				t.Errorf("window %d = %+v, want count 1", w, totals[w])
			}
		}
	})
}

// TestStartRecPoolingReusesRecords pins the pooling lifecycle: once
// expiration has fed the freelist, new START events must reuse records
// (fresh IDs, no growth of the backing slabs) and an expired-then-reused
// record must not corrupt later windows' totals.
func TestStartRecPoolingReusesRecords(t *testing.T) {
	f := newFixture()
	win := query.Window{Length: 4, Slide: 4}
	closes := make(map[int64]State)
	// IDs must be captured during the callback: retaining the *StartRec
	// past its window is exactly what the pooling contract forbids.
	var recs []*StartRec
	var seenIDs []int64
	a := NewAggregator(Config{
		Pattern: f.pat("AB"), Window: win,
		OnStart: func(rec *StartRec, e event.Event) {
			//sharon:allow slablifecycle (the test retains pointers by design to assert pooling reuses them by identity; never dereferenced after recycle)
			recs = append(recs, rec)
			seenIDs = append(seenIDs, rec.ID)
		},
		OnClose: func(w int64, total State) { closes[w] = total },
	})
	// One (A,B) match per tumbling window, far enough apart that each
	// window's START record expires before the next one arrives.
	for i := int64(0); i < 50; i++ {
		must(t, a.Process(f.ev('A', i*8)))
		must(t, a.Process(f.ev('B', i*8+1)))
	}
	a.Flush()
	if len(recs) != 50 {
		t.Fatalf("got %d START records, want 50", len(recs))
	}
	distinct := make(map[*StartRec]bool)
	ids := make(map[int64]bool)
	for _, r := range recs {
		distinct[r] = true
	}
	for _, id := range seenIDs {
		ids[id] = true
	}
	if len(ids) != 50 {
		t.Errorf("reissued records must get fresh IDs: %d distinct of 50", len(ids))
	}
	if len(distinct) >= 50 {
		t.Errorf("expected pooled reuse, got %d distinct record pointers", len(distinct))
	}
	for i := int64(0); i < 50; i++ {
		w := i * 2 // window index of the i-th match (Slide 4, events at 8i)
		if closes[w].Count != 1 {
			t.Errorf("window %d = %+v, want count 1", w, closes[w])
		}
	}
	if a.LiveStarts() != 0 || a.LiveStates() != 0 {
		t.Errorf("after flush: LiveStarts=%d LiveStates=%d, want 0/0", a.LiveStarts(), a.LiveStates())
	}
}
