package agg

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/sharon-project/sharon/internal/event"
)

// genState builds a random *reachable* State: one obtained from unit
// events via Add and Concat. Algebra laws only hold on reachable states
// (e.g. Count==0 implies neutral Min/Max), so quick tests must generate
// within that space.
func genState(rng *rand.Rand, depth int) State {
	switch {
	case depth <= 0 || rng.Intn(3) == 0:
		if rng.Intn(4) == 0 {
			return Zero()
		}
		if rng.Intn(4) == 0 {
			return UnitEmpty()
		}
		e := event.Event{Val: math.Round(rng.Float64()*20) - 10}
		return UnitEvent(e, rng.Intn(2) == 0)
	case rng.Intn(2) == 0:
		return Add(genState(rng, depth-1), genState(rng, depth-1))
	default:
		return Concat(genState(rng, depth-1), genState(rng, depth-1))
	}
}

// quickStates property-checks f over triples of random reachable states
// using testing/quick with a custom value generator.
func quickStates(t *testing.T, n int, f func(a, b, c State) bool) {
	t.Helper()
	cfg := &quick.Config{
		MaxCount: n,
		Rand:     rand.New(rand.NewSource(42)),
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(genState(rng, 4))
			}
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAddCommutativeAssociative(t *testing.T) {
	quickStates(t, 3000, func(a, b, c State) bool {
		if !ApproxEqual(Add(a, b), Add(b, a)) {
			return false
		}
		return ApproxEqual(Add(Add(a, b), c), Add(a, Add(b, c)))
	})
}

func TestAddZeroIdentity(t *testing.T) {
	quickStates(t, 2000, func(a, _, _ State) bool {
		return ApproxEqual(Add(a, Zero()), a) && ApproxEqual(Add(Zero(), a), a)
	})
}

func TestConcatAssociative(t *testing.T) {
	quickStates(t, 3000, func(a, b, c State) bool {
		return ApproxEqual(Concat(Concat(a, b), c), Concat(a, Concat(b, c)))
	})
}

func TestConcatUnitIdentity(t *testing.T) {
	quickStates(t, 2000, func(a, _, _ State) bool {
		return ApproxEqual(Concat(a, UnitEmpty()), a) && ApproxEqual(Concat(UnitEmpty(), a), a)
	})
}

func TestConcatZeroAnnihilates(t *testing.T) {
	quickStates(t, 2000, func(a, _, _ State) bool {
		return Concat(a, Zero()).IsZero() && Concat(Zero(), a).IsZero()
	})
}

func TestConcatDistributesOverAdd(t *testing.T) {
	quickStates(t, 3000, func(a, b, c State) bool {
		left := Concat(a, Add(b, c))
		right := Add(Concat(a, b), Concat(a, c))
		return ApproxEqual(left, right)
	})
}

func TestExtendMatchesConcatUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 3000; i++ {
		a := genState(rng, 4)
		e := event.Event{Val: rng.Float64()*40 - 20}
		isTarget := rng.Intn(2) == 0
		if !ApproxEqual(Extend(a, e, isTarget), Concat(a, UnitEvent(e, isTarget))) {
			t.Fatalf("Extend != Concat∘UnitEvent for a=%+v e=%v target=%v", a, e, isTarget)
		}
	}
}

func TestUnitEventFields(t *testing.T) {
	e := event.Event{Val: 7}
	s := UnitEvent(e, true)
	if s.Count != 1 || s.CountE != 1 || s.Sum != 7 || s.Min != 7 || s.Max != 7 {
		t.Errorf("target unit = %+v", s)
	}
	s = UnitEvent(e, false)
	if s.Count != 1 || s.CountE != 0 || s.Sum != 0 || !math.IsInf(s.Min, 1) || !math.IsInf(s.Max, -1) {
		t.Errorf("non-target unit = %+v", s)
	}
}

func TestValueExtraction(t *testing.T) {
	// Two sequences over target events with values 3 and 5, 4 target
	// events total (one sequence has 3 targets, the other 1).
	a := Concat(UnitEvent(event.Event{Val: 3}, true), Concat(UnitEvent(event.Event{Val: 5}, true), UnitEvent(event.Event{Val: 4}, true)))
	b := UnitEvent(event.Event{Val: 6}, true)
	s := Add(a, b)
	if got := s.Value(ValueCountStar); got != 2 {
		t.Errorf("COUNT(*) = %v", got)
	}
	if got := s.Value(ValueCountE); got != 4 {
		t.Errorf("COUNT(E) = %v", got)
	}
	if got := s.Value(ValueSum); got != 18 {
		t.Errorf("SUM = %v", got)
	}
	if got := s.Value(ValueMin); got != 3 {
		t.Errorf("MIN = %v", got)
	}
	if got := s.Value(ValueMax); got != 6 {
		t.Errorf("MAX = %v", got)
	}
	if got := s.Value(ValueAvg); got != 4.5 {
		t.Errorf("AVG = %v", got)
	}
}

func TestValueOfEmpty(t *testing.T) {
	z := Zero()
	if got := z.Value(ValueCountStar); got != 0 {
		t.Errorf("COUNT(*) of empty = %v", got)
	}
	for _, k := range []AggValueKind{ValueMin, ValueMax, ValueAvg} {
		if got := z.Value(k); !math.IsNaN(got) {
			t.Errorf("kind %d of empty = %v, want NaN", k, got)
		}
	}
}

func TestAddInPlaceMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		a, b := genState(rng, 4), genState(rng, 4)
		want := Add(a, b)
		got := a
		got.AddInPlace(b)
		if !ApproxEqual(got, want) {
			t.Fatalf("AddInPlace mismatch: %+v vs %+v", got, want)
		}
	}
}
