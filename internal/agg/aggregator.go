package agg

import (
	"fmt"

	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// StartRec is the per-START-event state of the non-shared method (paper
// §3.2, Fig. 6): one aggregate per pattern prefix, all anchored at a single
// matched START event. START events expire before any other event of their
// sequences, so dropping whole records implements window expiration.
//
// Lifecycle: records are pooled. A *StartRec passed to OnStart/OnComplete
// stays valid — identity and contents — exactly as long as the record is
// live, i.e. while at least one open window contains its START event. When
// Advance expires it, the record returns to the aggregator's freelist and
// may be reissued (with a new ID) for a later START event. Subscribers must
// therefore drop their references no later than the close of the last
// window containing the record's Time; the shared executor does (its
// per-window snapshots are released when the window closes, which the
// lockstep watermark orders before the record's expiration).
type StartRec struct {
	// Time is the START event's timestamp.
	Time int64
	// ID is a per-aggregator sequence number; side tables in the shared
	// executor key their snapshots by it. Reissued records get fresh IDs.
	ID int64
	// prefix[j-1] aggregates all matched prefixes of length j that start
	// at this event and whose last event has already arrived.
	prefix []State
}

// Prefix returns the aggregate of matched prefixes of length j (1-based).
//
//sharon:hotpath
//sharon:deterministic
func (s *StartRec) Prefix(j int) State { return s.prefix[j-1] }

// Config configures an Aggregator.
type Config struct {
	// Pattern is the (sub-)pattern this aggregator matches online.
	Pattern query.Pattern
	// Window is the sliding window; all aggregators of a workload share it
	// under the paper's core assumptions (§2.1).
	Window query.Window
	// Target is the aggregation target type (event.NoType for COUNT(*)).
	Target event.Type

	// OnStart, if set, fires when a new START record is created, before
	// any completion caused by the same event (only possible for
	// single-type patterns). The shared executor snapshots upstream
	// per-window aggregates here (paper §3.3 step 2).
	OnStart func(rec *StartRec, e event.Event)
	// OnComplete, if set, fires when the pattern completes: delta is the
	// aggregate of the sequences completed by this event from START
	// record rec, and [firstWin, lastWin] are the windows fully
	// containing them.
	OnComplete func(rec *StartRec, e event.Event, delta State, firstWin, lastWin int64)
	// OnClose, if set, fires when a window's interval has fully passed
	// the watermark, with the aggregate of all matches inside it.
	OnClose func(win int64, total State)
	// EmitEmpty makes OnClose fire for windows with no matches too.
	EmitEmpty bool

	// RetainStart, if set, decides right after OnStart (and after the
	// immediate completion of single-type patterns) whether the new
	// record is worth keeping. Returning false recycles the record to
	// the freelist immediately — it is never extended, never expires,
	// and its identity may be reissued by the very next START — so the
	// subscriber must only decline records it holds no reference to and
	// whose future contributions it can prove unobservable (the shared
	// executor's SHARP-style dead-suffix check: no listener snapshotted
	// the record and nobody reads this aggregator's window totals).
	RetainStart func(rec *StartRec, e event.Event) bool
}

// Slab chunk sizing: START records (and their prefix blocks) are carved
// from backing allocations that start small — a low-rate aggregator in a
// many-group workload must not pre-pay for records it never creates — and
// double per chunk up to the cap, so a high-rate aggregator's warm-up ramp
// still costs O(log n) allocations. Steady-state processing is served from
// the freelist and allocates nothing.
const (
	minRecSlab = 8
	maxRecSlab = 1024
)

// Aggregator computes the aggregate of all matches of one pattern online,
// without constructing sequences (A-Seq / paper §3.2). It must see events
// in strictly increasing time order.
//
// Invariant: every retained START record lies in at least one open window,
// so any event extending it is within Window.Length of the START; the
// per-window totals therefore only ever count sequences fully inside their
// window (completions are credited to exactly the windows containing both
// endpoints, and intermediate events necessarily lie between them).
//
// Hot-path data layout: the open windows are always the contiguous index
// range [nextClose, maxWin], whose width is bounded by the window overlap
// Length/Slide. Per-window totals therefore live in a power-of-two ring
// buffer indexed by window index (winRing), not a map; START records and
// their prefix arrays come from slab allocations recycled through a
// freelist fed by window expiration. Steady-state processing allocates
// nothing.
type Aggregator struct {
	cfg Config
	// positions[t] lists the 1-based pattern positions of type t in
	// descending order, so one event never extends its own contribution
	// (multi-occurrence extension, paper §7.3). It is a dense table
	// indexed by the interned event.Type; types beyond the pattern's
	// maximum are absent by bounds check.
	positions [][]int
	plen      int

	starts []*StartRec // time-ordered live START records
	head   int         // index of first live record in starts

	// free holds expired records for reuse; recSlab/prefixSlab serve
	// first-time allocations in geometrically growing chunks (they are
	// allocated and consumed in lockstep: one record = plen states).
	free       []*StartRec
	recSlab    []StartRec
	prefixSlab []State
	nextSlab   int

	// winRing[k&winMask] is the aggregate of complete matches fully
	// inside open window k. Zero-slot semantics are explicit: a slot
	// whose Count is zero means "no matches in this window" — identical
	// to the window never having been touched. Slots outside the live
	// range [nextClose, maxWin] are always Zero (restored as each window
	// closes), so slot reuse across ring wraparound is sound.
	winRing   []State
	winMask   int64
	nextClose int64 // smallest window index not yet closed
	maxWin    int64 // largest window index containing any event seen
	started   bool  // true once the first event arrived
	lastTime  int64 // time of the last processed event
	nextID    int64

	// liveStates tracks the number of State values held (for the peak
	// memory metric, paper §8.1): prefix states of live START records
	// plus non-zero window slots.
	liveStates int64
	// pruned counts records RetainStart declined (recycled at birth).
	pruned int64
}

// NewAggregator builds an aggregator for cfg. It panics if the pattern is
// empty or the window invalid — configuration errors, not runtime ones.
func NewAggregator(cfg Config) *Aggregator {
	if len(cfg.Pattern) == 0 {
		panic("agg: empty pattern")
	}
	if err := cfg.Window.Validate(); err != nil {
		panic("agg: " + err.Error())
	}
	maxType := event.Type(0)
	for _, t := range cfg.Pattern {
		if t > maxType {
			maxType = t
		}
	}
	pos := make([][]int, maxType+1)
	for i := len(cfg.Pattern) - 1; i >= 0; i-- {
		t := cfg.Pattern[i]
		pos[t] = append(pos[t], i+1)
	}
	// The ring starts small and grows geometrically with the observed
	// live span, up to NextPow2(MaxConcurrent+2): a high-overlap window
	// (large Length/Slide) does not pre-pay its worst case at
	// construction, which matters when an engine builds one aggregator
	// per (group, node).
	ringLen := query.NextPow2(cfg.Window.MaxConcurrent() + 2)
	if ringLen > initialRingLen {
		ringLen = initialRingLen
	}
	ring := make([]State, ringLen)
	for i := range ring {
		ring[i] = Zero()
	}
	return &Aggregator{
		cfg:       cfg,
		positions: pos,
		plen:      len(cfg.Pattern),
		winRing:   ring,
		winMask:   ringLen - 1,
		nextClose: -1,
	}
}

// initialRingLen is the window ring's starting capacity (power of two);
// rings whose MaxConcurrent bound is smaller start at that bound instead.
const initialRingLen = 16

// ensureRing grows the window ring to cover the live span [nextClose,
// maxWin]. All non-zero slots correspond to windows within the ring's old
// coverage [nextClose, nextClose+len-1] (writes are preceded by ensureRing
// in Process), so copying exactly that range is a bijection — no two live
// windows can alias one old slot.
//
//sharon:hotpath
func (a *Aggregator) ensureRing() {
	span := a.maxWin - a.nextClose + 1
	oldLen := int64(len(a.winRing))
	if span <= oldLen {
		return
	}
	n := query.NextPow2(span)
	ring := make([]State, n) //sharon:allow hotpathalloc (geometric ring growth: O(log overlap) allocations over the aggregator lifetime, none at steady state)
	for i := range ring {
		ring[i] = Zero()
	}
	for k := a.nextClose; k < a.nextClose+oldLen; k++ {
		ring[k&(n-1)] = a.winRing[k&a.winMask]
	}
	a.winRing, a.winMask = ring, n-1
}

// Pattern returns the pattern being aggregated.
func (a *Aggregator) Pattern() query.Pattern { return a.cfg.Pattern }

// Matches reports whether t occurs in the pattern.
//
//sharon:hotpath
func (a *Aggregator) Matches(t event.Type) bool {
	return int(t) < len(a.positions) && len(a.positions[t]) > 0
}

// MinOpenWindow returns the smallest window index that is still open, or
// -1 before the first event.
func (a *Aggregator) MinOpenWindow() int64 { return a.nextClose }

// CurrentTotal returns the aggregate of complete matches observed so far
// that lie entirely inside window win. It is the snapshot source for the
// shared method's combination step. Windows outside the live range have
// the Zero aggregate by definition.
//
//sharon:hotpath
//sharon:deterministic
func (a *Aggregator) CurrentTotal(win int64) State {
	if !a.started || win < a.nextClose || win > a.maxWin {
		return Zero()
	}
	return a.winRing[win&a.winMask]
}

// Advance moves the watermark to t, closing every window whose interval
// ends at or before t and expiring START records no open window contains.
// Expired records are recycled through the freelist (see StartRec).
//
//sharon:hotpath
func (a *Aggregator) Advance(t int64) {
	if !a.started {
		return
	}
	w := a.cfg.Window
	for a.cfg.Window.End(a.nextClose) <= t {
		win := a.nextClose
		slot := &a.winRing[win&a.winMask]
		total := *slot
		matched := total.Count != 0
		if matched {
			*slot = Zero()
			a.liveStates--
		}
		// Every window closed here overlaps the stream span: nextClose
		// starts at the first event's first window.
		if a.cfg.OnClose != nil && (matched || a.cfg.EmitEmpty) {
			a.cfg.OnClose(win, total) //sharon:allow hotpathalloc (subscriber callback; the executors install closed-over emit hooks that are themselves analyzed)
		}
		a.nextClose++
	}
	// Expire START records older than the oldest open window's start.
	minStart := w.Start(a.nextClose)
	for a.head < len(a.starts) && a.starts[a.head].Time < minStart {
		a.liveStates -= int64(a.plen)
		//sharon:allow slablifecycle (the free list IS the recycle point: expired records return here for getRec to reissue)
		a.free = append(a.free, a.starts[a.head]) //sharon:allow hotpathalloc (amortized: freelist capacity plateaus at the live-record high-water mark)
		a.starts[a.head] = nil
		a.head++
	}
	if a.head > 64 && a.head*2 >= len(a.starts) {
		n := copy(a.starts, a.starts[a.head:])
		for i := n; i < len(a.starts); i++ {
			a.starts[i] = nil
		}
		//sharon:allow slablifecycle (compaction of the owning live-starts deque, not a new retention)
		a.starts = a.starts[:n]
		a.head = 0
	}
}

// Process feeds the next event. Events must arrive in strictly increasing
// time order; violations return an error and leave state unchanged.
//
//sharon:hotpath
func (a *Aggregator) Process(e event.Event) error {
	if a.started && e.Time <= a.lastTime {
		return fmt.Errorf("agg: out-of-order event at t=%d (last t=%d)", e.Time, a.lastTime) //sharon:allow hotpathalloc (cold error path: the caller stops the stream on the first out-of-order event)
	}
	if !a.started {
		a.started = true
		a.nextClose = a.cfg.Window.FirstContaining(e.Time)
	}
	a.lastTime = e.Time
	a.Advance(e.Time)
	if last := a.cfg.Window.LastContaining(e.Time); last > a.maxWin {
		a.maxWin = last
		a.ensureRing()
	}

	if int(e.Type) >= len(a.positions) {
		return nil
	}
	positions := a.positions[e.Type]
	if len(positions) == 0 {
		return nil
	}
	isTarget := e.Type == a.cfg.Target
	for _, j := range positions { // descending
		if j == 1 {
			a.newStart(e, isTarget)
			continue
		}
		a.extend(e, j, isTarget)
	}
	return nil
}

// getRec returns a START record with a zeroed prefix array of length plen:
// from the freelist when expiration has fed it, from the slabs otherwise.
//
//sharon:hotpath
func (a *Aggregator) getRec() *StartRec {
	var rec *StartRec
	if n := len(a.free); n > 0 {
		rec = a.free[n-1]
		a.free[n-1] = nil
		//sharon:allow slablifecycle (popping the free list hands the record back out; the pool shrink is not a retention)
		a.free = a.free[:n-1]
	} else {
		if len(a.recSlab) == 0 {
			n := a.nextSlab
			if n < minRecSlab {
				n = minRecSlab
			}
			a.recSlab = make([]StartRec, n)        //sharon:allow hotpathalloc (slab refill: geometric chunks, O(log n) allocations during warm-up, none at steady state)
			a.prefixSlab = make([]State, n*a.plen) //sharon:allow hotpathalloc (slab refill: allocated in lockstep with recSlab, same amortization)
			if n < maxRecSlab {
				a.nextSlab = n * 2
			}
		}
		rec = &a.recSlab[0]
		a.recSlab = a.recSlab[1:]
		rec.prefix = a.prefixSlab[:a.plen:a.plen]
		a.prefixSlab = a.prefixSlab[a.plen:]
	}
	for i := range rec.prefix {
		rec.prefix[i] = Zero()
	}
	return rec
}

// newStart creates a START record for e and, for single-type patterns,
// immediately records the completion. If the subscriber's RetainStart
// check declines the record (dead-suffix prune: it can no longer
// contribute to any observable result), the record is recycled on the
// spot instead of joining the live deque — it then costs nothing in the
// extend loop and nothing in live state.
//
//sharon:hotpath
func (a *Aggregator) newStart(e event.Event, isTarget bool) {
	rec := a.getRec()
	rec.Time, rec.ID = e.Time, a.nextID
	a.nextID++
	rec.prefix[0] = UnitEvent(e, isTarget)
	if a.cfg.OnStart != nil {
		a.cfg.OnStart(rec, e) //sharon:allow hotpathalloc (subscriber callback; the executors install closed-over snapshot hooks that are themselves analyzed)
	}
	if a.plen == 1 {
		a.complete(rec, e, rec.prefix[0])
	}
	if a.cfg.RetainStart != nil && !a.cfg.RetainStart(rec, e) { //sharon:allow hotpathalloc (subscriber callback; the executors install closed-over retain checks that are themselves analyzed)
		a.pruned++
		//sharon:allow slablifecycle (dead-suffix prune: the declined record returns straight to the freelist; the subscriber holds no reference per the RetainStart contract)
		a.free = append(a.free, rec) //sharon:allow hotpathalloc (amortized: freelist capacity plateaus at the live-record high-water mark)
		return
	}
	//sharon:allow slablifecycle (the live-starts deque is the record's owner for its window lifetime; expiry recycles it above)
	a.starts = append(a.starts, rec) //sharon:allow hotpathalloc (amortized: deque growth is geometric and compaction reuses the backing array)
	a.liveStates += int64(a.plen)
}

// extend folds e into prefix position j (2-based and up) of every live
// START record, completing matches when j is the pattern length.
//
//sharon:hotpath
func (a *Aggregator) extend(e event.Event, j int, isTarget bool) {
	last := j == a.plen
	for i := a.head; i < len(a.starts); i++ {
		rec := a.starts[i]
		prev := rec.prefix[j-2]
		if prev.Count == 0 {
			continue
		}
		delta := Extend(prev, e, isTarget)
		rec.prefix[j-1].AddInPlace(delta)
		if last {
			a.complete(rec, e, delta)
		}
	}
}

// complete credits delta (sequences from rec completed by e) to every
// window containing both endpoints, and notifies subscribers.
//
//sharon:hotpath
func (a *Aggregator) complete(rec *StartRec, e event.Event, delta State) {
	first, lastWin, ok := a.cfg.Window.PairIndices(rec.Time, e.Time)
	if !ok {
		return
	}
	if first < a.nextClose {
		first = a.nextClose // closed windows cannot receive results
	}
	for k := first; k <= lastWin; k++ {
		slot := &a.winRing[k&a.winMask]
		if slot.Count == 0 {
			a.liveStates++
		}
		slot.AddInPlace(delta)
	}
	if a.cfg.OnComplete != nil {
		a.cfg.OnComplete(rec, e, delta, first, lastWin) //sharon:allow hotpathalloc (subscriber callback; the executors install closed-over emit hooks that are themselves analyzed)
	}
}

// Flush closes every window containing events seen so far. Call once at
// end of stream.
//
//sharon:hotpath
func (a *Aggregator) Flush() {
	if !a.started {
		return
	}
	a.Advance(a.cfg.Window.End(a.maxWin))
}

// LiveStates reports the number of aggregate State values currently held:
// the paper's peak-memory unit for online approaches.
//
//sharon:hotpath
func (a *Aggregator) LiveStates() int64 { return a.liveStates }

// LiveStarts reports the number of live START records.
func (a *Aggregator) LiveStarts() int { return len(a.starts) - a.head }

// PrunedStarts reports how many START records the RetainStart check
// declined (recycled at birth, SHARP-style state reduction).
func (a *Aggregator) PrunedStarts() int64 { return a.pruned }
