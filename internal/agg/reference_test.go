package agg

// refAggregator is the retained map-based reference implementation of the
// online aggregator: the pre-ring design (winTotals keyed by window index,
// one heap-allocated StartRec per START event, map-based type dispatch),
// kept test-only as the oracle for the ring-buffer/pooled production
// Aggregator. Totals, close order, and the live-state metrics must match
// the production engine EXACTLY (same float operations in the same order),
// not just approximately.

import (
	"math/rand"
	"testing"

	"github.com/sharon-project/sharon/internal/event"
)

type refStartRec struct {
	time   int64
	prefix []State
}

type refAggregator struct {
	cfg       Config
	positions map[event.Type][]int
	plen      int

	starts []*refStartRec
	head   int

	winTotals map[int64]State
	nextClose int64
	maxWin    int64
	started   bool
	lastTime  int64

	liveStates int64
}

func newRefAggregator(cfg Config) *refAggregator {
	pos := make(map[event.Type][]int)
	for i := len(cfg.Pattern) - 1; i >= 0; i-- {
		t := cfg.Pattern[i]
		pos[t] = append(pos[t], i+1)
	}
	return &refAggregator{
		cfg:       cfg,
		positions: pos,
		plen:      len(cfg.Pattern),
		winTotals: make(map[int64]State),
		nextClose: -1,
	}
}

func (a *refAggregator) advance(t int64) {
	if !a.started {
		return
	}
	w := a.cfg.Window
	for a.cfg.Window.End(a.nextClose) <= t {
		win := a.nextClose
		total, ok := a.winTotals[win]
		if ok {
			delete(a.winTotals, win)
			a.liveStates--
		} else {
			total = Zero()
		}
		if a.cfg.OnClose != nil && (ok || a.cfg.EmitEmpty) {
			a.cfg.OnClose(win, total)
		}
		a.nextClose++
	}
	minStart := w.Start(a.nextClose)
	for a.head < len(a.starts) && a.starts[a.head].time < minStart {
		a.liveStates -= int64(a.plen)
		a.starts[a.head] = nil
		a.head++
	}
}

func (a *refAggregator) process(e event.Event) error {
	if !a.started {
		a.started = true
		a.nextClose = a.cfg.Window.FirstContaining(e.Time)
	}
	a.lastTime = e.Time
	a.advance(e.Time)
	if last := a.cfg.Window.LastContaining(e.Time); last > a.maxWin {
		a.maxWin = last
	}
	positions := a.positions[e.Type]
	isTarget := e.Type == a.cfg.Target
	for _, j := range positions {
		if j == 1 {
			rec := &refStartRec{time: e.Time, prefix: make([]State, a.plen)}
			for i := range rec.prefix {
				rec.prefix[i] = Zero()
			}
			rec.prefix[0] = UnitEvent(e, isTarget)
			a.starts = append(a.starts, rec)
			a.liveStates += int64(a.plen)
			if a.plen == 1 {
				a.complete(rec, e, rec.prefix[0])
			}
			continue
		}
		last := j == a.plen
		for i := a.head; i < len(a.starts); i++ {
			rec := a.starts[i]
			prev := rec.prefix[j-2]
			if prev.Count == 0 {
				continue
			}
			delta := Extend(prev, e, isTarget)
			rec.prefix[j-1].AddInPlace(delta)
			if last {
				a.complete(rec, e, delta)
			}
		}
	}
	return nil
}

func (a *refAggregator) complete(rec *refStartRec, e event.Event, delta State) {
	first, lastWin, ok := a.cfg.Window.PairIndices(rec.time, e.Time)
	if !ok {
		return
	}
	if first < a.nextClose {
		first = a.nextClose
	}
	for k := first; k <= lastWin; k++ {
		cur, ok := a.winTotals[k]
		if !ok {
			cur = Zero()
			a.liveStates++
		}
		cur.AddInPlace(delta)
		a.winTotals[k] = cur
	}
}

func (a *refAggregator) flush() {
	if !a.started {
		return
	}
	a.advance(a.cfg.Window.End(a.maxWin))
}

func (a *refAggregator) liveStarts() int { return len(a.starts) - a.head }

// closeEvent records one OnClose callback for exact comparison.
type closeEvent struct {
	win   int64
	total State
}

// TestRingAggregatorMatchesMapReference runs the production ring-buffer /
// pooled aggregator and the map-based reference side by side on randomized
// streams (the property_test generator, duplicate types and all): the
// OnClose sequence (order, windows, bit-exact totals), every intermediate
// CurrentTotal, and the live-state / live-start metrics must agree exactly
// at every step, with EmitEmpty both off and on.
func TestRingAggregatorMatchesMapReference(t *testing.T) {
	iters := 600
	if testing.Short() {
		iters = 100
	}
	rng := rand.New(rand.NewSource(99))
	for it := 0; it < iters; it++ {
		tc := genAggCase(rng)
		for _, emitEmpty := range []bool{false, true} {
			var gotCloses, wantCloses []closeEvent
			a := NewAggregator(Config{
				Pattern: tc.pattern, Window: tc.window, Target: tc.target,
				EmitEmpty: emitEmpty,
				OnClose: func(win int64, total State) {
					gotCloses = append(gotCloses, closeEvent{win, total})
				},
			})
			ref := newRefAggregator(Config{
				Pattern: tc.pattern, Window: tc.window, Target: tc.target,
				EmitEmpty: emitEmpty,
				OnClose: func(win int64, total State) {
					wantCloses = append(wantCloses, closeEvent{win, total})
				},
			})
			for i, e := range tc.events {
				if err := a.Process(e); err != nil {
					t.Fatal(err)
				}
				if err := ref.process(e); err != nil {
					t.Fatal(err)
				}
				if a.LiveStates() != ref.liveStates {
					t.Fatalf("it=%d emitEmpty=%v event %d: LiveStates=%d ref=%d",
						it, emitEmpty, i, a.LiveStates(), ref.liveStates)
				}
				if a.LiveStarts() != ref.liveStarts() {
					t.Fatalf("it=%d emitEmpty=%v event %d: LiveStarts=%d ref=%d",
						it, emitEmpty, i, a.LiveStarts(), ref.liveStarts())
				}
				// Every open (and a few closed/future) windows agree.
				first, last := tc.window.Indices(e.Time)
				for k := first - 2; k <= last+2; k++ {
					got := a.CurrentTotal(k)
					want, ok := ref.winTotals[k]
					if !ok {
						want = Zero()
					}
					if got != want {
						t.Fatalf("it=%d emitEmpty=%v event %d win %d: CurrentTotal=%+v ref=%+v",
							it, emitEmpty, i, k, got, want)
					}
				}
			}
			a.Flush()
			ref.flush()
			if len(gotCloses) != len(wantCloses) {
				t.Fatalf("it=%d emitEmpty=%v: %d closes, ref %d", it, emitEmpty, len(gotCloses), len(wantCloses))
			}
			for i := range gotCloses {
				if gotCloses[i] != wantCloses[i] {
					t.Fatalf("it=%d emitEmpty=%v close %d: got %+v ref %+v",
						it, emitEmpty, i, gotCloses[i], wantCloses[i])
				}
			}
		}
	}
}
