package agg

import "fmt"

// Snapshot is the serializable state of one Aggregator: everything needed
// to resume processing at the captured watermark with byte-identical
// results. The hot-path layouts (window ring, START slabs, freelist) are
// deliberately NOT part of the format — a snapshot captures the logical
// state (live windows, live START records) and Restore re-materializes it
// into fresh rings and slabs, so the on-disk format survives layout
// refactors of the in-memory engine.
//
// A snapshot is only meaningful on a quiesced aggregator (no Process in
// flight); the engine checkpoints run off the hot path on the owning
// goroutine, so this holds by construction.
type Snapshot struct {
	Started   bool
	LastTime  int64
	NextClose int64
	MaxWin    int64
	NextID    int64
	// Windows holds the per-window totals of the live range [NextClose,
	// NextClose+len(Windows)-1] == [NextClose, MaxWin]; empty when the
	// aggregator never started.
	Windows []State
	// Starts are the live START records in time order.
	Starts []StartSnapshot
}

// StartSnapshot is the serializable form of one live StartRec.
type StartSnapshot struct {
	Time   int64
	ID     int64
	Prefix []State
}

// Snapshot captures the aggregator's logical state.
func (a *Aggregator) Snapshot() Snapshot {
	s := Snapshot{
		Started:   a.started,
		LastTime:  a.lastTime,
		NextClose: a.nextClose,
		MaxWin:    a.maxWin,
		NextID:    a.nextID,
	}
	if !a.started {
		return s
	}
	if a.maxWin >= a.nextClose {
		s.Windows = make([]State, a.maxWin-a.nextClose+1)
		for k := a.nextClose; k <= a.maxWin; k++ {
			s.Windows[k-a.nextClose] = a.winRing[k&a.winMask]
		}
	}
	s.Starts = make([]StartSnapshot, 0, len(a.starts)-a.head)
	for i := a.head; i < len(a.starts); i++ {
		rec := a.starts[i]
		prefix := make([]State, len(rec.prefix))
		copy(prefix, rec.prefix)
		s.Starts = append(s.Starts, StartSnapshot{Time: rec.Time, ID: rec.ID, Prefix: prefix})
	}
	return s
}

// Restore loads a snapshot into a freshly constructed aggregator (same
// Config as the one that produced it) and returns the live START records
// keyed by their IDs, so subscribers holding snapshot references by ID
// (the shared executor's stage rings) can rewire their pointers. OnStart
// does not fire for restored records — the subscriber restores its own
// side state explicitly.
func (a *Aggregator) Restore(s Snapshot) (map[int64]*StartRec, error) {
	if a.started {
		return nil, fmt.Errorf("agg: Restore on a started aggregator")
	}
	a.started = s.Started
	a.lastTime = s.LastTime
	a.nextClose = s.NextClose
	a.maxWin = s.MaxWin
	a.nextID = s.NextID
	if !s.Started {
		return map[int64]*StartRec{}, nil
	}
	if want := a.maxWin - a.nextClose + 1; want > 0 && int64(len(s.Windows)) != want {
		return nil, fmt.Errorf("agg: snapshot has %d window slots for live span %d", len(s.Windows), want)
	}
	a.ensureRing()
	for i, st := range s.Windows {
		k := a.nextClose + int64(i)
		a.winRing[k&a.winMask] = st
		if st.Count != 0 {
			a.liveStates++
		}
	}
	byID := make(map[int64]*StartRec, len(s.Starts))
	prevTime := int64(-1)
	for _, ss := range s.Starts {
		if len(ss.Prefix) != a.plen {
			return nil, fmt.Errorf("agg: snapshot START record has %d prefix states, pattern length is %d", len(ss.Prefix), a.plen)
		}
		if ss.Time <= prevTime {
			return nil, fmt.Errorf("agg: snapshot START records out of order at t=%d", ss.Time)
		}
		prevTime = ss.Time
		rec := a.getRec()
		rec.Time, rec.ID = ss.Time, ss.ID
		copy(rec.prefix, ss.Prefix)
		//sharon:allow slablifecycle (restore re-interns snapshot records into the owning live-starts deque)
		a.starts = append(a.starts, rec)
		a.liveStates += int64(a.plen)
		if _, dup := byID[rec.ID]; dup {
			return nil, fmt.Errorf("agg: duplicate START record id %d in snapshot", rec.ID)
		}
		//sharon:allow slablifecycle (transient restore index, dropped when Restore returns to the caller)
		byID[rec.ID] = rec
	}
	return byID, nil
}
