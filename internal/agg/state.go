// Package agg implements Sharon's online event sequence aggregation engine
// (paper §3.2–3.3): incremental per-START-event prefix aggregation with
// sliding-window expiration, generalized from COUNT(*) to the full set of
// distributive and algebraic functions of Definition 2.
//
// The central abstraction is State: the aggregate of a *set of event
// sequences*. State forms a semiring-like algebra — Add unions disjoint
// sequence sets, Concat concatenates every sequence of one set with every
// sequence of another — so the same engine computes COUNT(*), COUNT(E),
// SUM, MIN, MAX, and AVG, and the shared executor's count-combination step
// (paper Fig. 7) is exactly Concat.
package agg

import (
	"math"

	"github.com/sharon-project/sharon/internal/event"
)

// State is the aggregate of a finite multiset of event sequences.
//
// Count is the number of sequences. CountE, Sum, Min, and Max range over
// the events of the aggregation target type across all sequences, counted
// with multiplicity (an event participating in three sequences contributes
// three times, per Definition 2).
type State struct {
	Count  float64
	CountE float64
	Sum    float64
	Min    float64
	Max    float64
}

// Zero returns the aggregate of the empty set of sequences: the identity
// of Add and the annihilator of Concat.
//
//sharon:hotpath
//sharon:deterministic
func Zero() State {
	return State{Min: math.Inf(1), Max: math.Inf(-1)}
}

// UnitEmpty returns the aggregate of the set containing one empty
// sequence: the identity of Concat. It models an absent prefix or suffix
// in the shared method (paper §3.3).
//
//sharon:hotpath
//sharon:deterministic
func UnitEmpty() State {
	return State{Count: 1, Min: math.Inf(1), Max: math.Inf(-1)}
}

// UnitEvent returns the aggregate of the set containing the one-event
// sequence (e). isTarget tells whether e is of the aggregation target type.
//
//sharon:hotpath
func UnitEvent(e event.Event, isTarget bool) State {
	s := State{Count: 1, Min: math.Inf(1), Max: math.Inf(-1)}
	if isTarget {
		s.CountE = 1
		s.Sum = e.Val
		s.Min = e.Val
		s.Max = e.Val
	}
	return s
}

// IsZero reports whether s aggregates no sequences.
func (s State) IsZero() bool { return s.Count == 0 }

// Add returns the aggregate of the disjoint union of the two sequence sets.
//
//sharon:hotpath
//sharon:deterministic
func Add(a, b State) State {
	return State{
		Count:  a.Count + b.Count,
		CountE: a.CountE + b.CountE,
		Sum:    a.Sum + b.Sum,
		Min:    math.Min(a.Min, b.Min),
		Max:    math.Max(a.Max, b.Max),
	}
}

// AddInPlace folds b into *a, avoiding a copy on the hot path.
//
//sharon:hotpath
//sharon:deterministic
func (s *State) AddInPlace(b State) {
	s.Count += b.Count
	s.CountE += b.CountE
	s.Sum += b.Sum
	if b.Min < s.Min {
		s.Min = b.Min
	}
	if b.Max > s.Max {
		s.Max = b.Max
	}
}

// Concat returns the aggregate of the set of all concatenations s1 ++ s2
// with s1 from a and s2 from b. This is the count-combination operator of
// the shared method (paper §3.3, Fig. 7): counts multiply, event-level
// aggregates distribute with the opposite set's cardinality.
//
//sharon:hotpath
//sharon:deterministic
func Concat(a, b State) State {
	if a.Count == 0 || b.Count == 0 {
		return Zero()
	}
	return State{
		Count:  a.Count * b.Count,
		CountE: a.CountE*b.Count + b.CountE*a.Count,
		Sum:    a.Sum*b.Count + b.Sum*a.Count,
		Min:    math.Min(a.Min, b.Min),
		Max:    math.Max(a.Max, b.Max),
	}
}

// Extend returns the aggregate of every sequence of a extended by the
// single event e; it equals Concat(a, UnitEvent(e, isTarget)) but avoids
// the intermediate State.
//
//sharon:hotpath
func Extend(a State, e event.Event, isTarget bool) State {
	if a.Count == 0 {
		return Zero()
	}
	out := a
	if isTarget {
		out.CountE += a.Count
		out.Sum += a.Count * e.Val
		if e.Val < out.Min {
			out.Min = e.Val
		}
		if e.Val > out.Max {
			out.Max = e.Val
		}
	}
	return out
}

// ProjectCount keeps only the sequence count of s, resetting the
// event-level aggregates to their identities. The shared executor applies
// it when a shared aggregator tracks another query's target type: the
// sequence count of a shared segment is target-independent, but its
// CountE/Sum/Min/Max are not.
//
//sharon:hotpath
//sharon:deterministic
func ProjectCount(s State) State {
	return State{Count: s.Count, Min: math.Inf(1), Max: math.Inf(-1)}
}

// Value extracts the final aggregation result for the given function.
// MIN/MAX/AVG of an empty set are NaN.
func (s State) Value(kind AggValueKind) float64 {
	switch kind {
	case ValueCountStar:
		return s.Count
	case ValueCountE:
		return s.CountE
	case ValueSum:
		return s.Sum
	case ValueMin:
		if s.CountE == 0 {
			return math.NaN()
		}
		return s.Min
	case ValueMax:
		if s.CountE == 0 {
			return math.NaN()
		}
		return s.Max
	case ValueAvg:
		if s.CountE == 0 {
			return math.NaN()
		}
		return s.Sum / s.CountE
	}
	return math.NaN()
}

// AggValueKind selects which component of a State is the query's answer.
type AggValueKind int

// Result extraction kinds, mirroring query.AggKind.
const (
	ValueCountStar AggValueKind = iota
	ValueCountE
	ValueSum
	ValueMin
	ValueMax
	ValueAvg
)

// ApproxEqual reports whether two states agree within a small relative
// tolerance; used by tests comparing executors built from differently
// ordered floating-point folds.
func ApproxEqual(a, b State) bool {
	return feq(a.Count, b.Count) && feq(a.CountE, b.CountE) && feq(a.Sum, b.Sum) &&
		minmaxEq(a.Min, b.Min) && minmaxEq(a.Max, b.Max)
}

func feq(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-6*math.Max(scale, 1)
}

func minmaxEq(a, b float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) || math.IsInf(a, -1) && math.IsInf(b, -1) {
		return true
	}
	return feq(a, b)
}
