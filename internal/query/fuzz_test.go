package query

import (
	"testing"

	"github.com/sharon-project/sharon/internal/event"
)

// FuzzParse hardens the query parser: it must never panic, and anything it
// accepts must render (Format) back into something it accepts again with
// the same structure.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"RETURN COUNT(*) PATTERN SEQ(OakSt, MainSt) WHERE [vehicle] WITHIN 10m SLIDE 1m",
		"RETURN SUM(B.val) PATTERN SEQ(A, B) WHERE A.val > 3.5 WITHIN 30s SLIDE 10s",
		"RETURN AVG(C.val) PATTERN SEQ(A, C) WITHIN 2m SLIDE 30s",
		"RETURN COUNT(Laptop) PATTERN SEQ(Laptop, Case) WITHIN 20m SLIDE 1m",
		"RETURN MIN(X.val) PATTERN SEQ(X, Y) WHERE *.val <= 100 AND [key] WITHIN 5s SLIDE 5s",
		"", "RETURN", "RETURN COUNT(*)", "PATTERN SEQ(A)", "((((", "WITHIN -1s SLIDE 0s",
		"RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 9223372036854775807s SLIDE 1s",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		reg := event.NewRegistry()
		q, err := Parse(text, reg)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rendered := q.Format(reg)
		q2, err := Parse(rendered, reg)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", text, rendered, err)
		}
		if !q.Pattern.Equal(q2.Pattern) || q.Agg != q2.Agg || q.Window != q2.Window || q.GroupBy != q2.GroupBy {
			t.Fatalf("render round-trip changed query: %q -> %q", text, rendered)
		}
	})
}

// FuzzWindowMath checks the window index identities on arbitrary inputs.
func FuzzWindowMath(f *testing.F) {
	f.Add(int64(10), int64(3), int64(25))
	f.Add(int64(1), int64(1), int64(0))
	f.Add(int64(1000), int64(999), int64(123456))
	f.Fuzz(func(t *testing.T, length, slide, tm int64) {
		if length <= 0 || slide <= 0 || slide > length || tm < 0 || tm > 1<<40 {
			return
		}
		w := Window{Length: length, Slide: slide}
		first, last := w.Indices(tm)
		if first > last {
			t.Fatalf("empty index range for t=%d w=%+v", tm, w)
		}
		if !w.Contains(first, tm) || !w.Contains(last, tm) {
			t.Fatalf("range endpoints do not contain t=%d w=%+v", tm, w)
		}
		if first > 0 && w.Contains(first-1, tm) {
			t.Fatalf("window before first contains t=%d w=%+v", tm, w)
		}
		if w.Contains(last+1, tm) {
			t.Fatalf("window after last contains t=%d w=%+v", tm, w)
		}
	})
}
