package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"github.com/sharon-project/sharon/internal/event"
)

// Parse reads a query in the SASE-style surface language used throughout
// the paper's examples, interning event types into reg. The grammar is
//
//	query := RETURN agg PATTERN SEQ '(' name {',' name} ')'
//	         [WHERE pred {AND pred}] WITHIN dur SLIDE dur
//	agg   := COUNT '(' '*' ')' | COUNT '(' name ')'
//	       | (SUM|MIN|MAX|AVG) '(' name '.' 'val' ')'
//	pred  := '[' 'key' ']' | (name|'*') '.' 'val' op number
//	op    := '<' | '<=' | '>' | '>=' | '=' | '!='
//	dur   := integer ('ms'|'s'|'m'|'h')
//
// Example:
//
//	RETURN COUNT(*) PATTERN SEQ(OakSt, MainSt)
//	WHERE [key] WITHIN 10m SLIDE 1m
func Parse(text string, reg *event.Registry) (*Query, error) {
	p := &parser{lex: newLexer(text), reg: reg}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("parse query: %w", err)
	}
	return q, nil
}

// MustParse is Parse that panics on error; intended for tests and examples
// with literal query text.
func MustParse(text string, reg *event.Registry) *Query {
	q, err := Parse(text, reg)
	if err != nil {
		panic(err)
	}
	return q
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct // single punctuation: ( ) , . [ ] *
	tokOp    // < <= > >= = !=
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
	i    int
}

func newLexer(src string) *lexer {
	l := &lexer{src: src}
	l.scan()
	return l
}

func (l *lexer) scan() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case unicode.IsSpace(rune(c)):
			l.pos++
		case c == '(' || c == ')' || c == ',' || c == '.' || c == '[' || c == ']' || c == '*':
			l.toks = append(l.toks, token{tokPunct, string(c), l.pos})
			l.pos++
		case c == '<' || c == '>' || c == '=' || c == '!':
			start := l.pos
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				l.pos++
			}
			l.toks = append(l.toks, token{tokOp, l.src[start:l.pos], start})
		case c >= '0' && c <= '9' || c == '-':
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
				// stop before a duration suffix; handled as ident after
				l.pos++
			}
			l.toks = append(l.toks, token{tokNumber, l.src[start:l.pos], start})
		case isIdentRune(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentRune(rune(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
		default:
			// Unknown byte: emit as punct so the parser reports it.
			l.toks = append(l.toks, token{tokPunct, string(c), l.pos})
			l.pos++
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", l.pos})
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) peek() token { return l.toks[l.i] }

func (l *lexer) next() token {
	t := l.toks[l.i]
	if t.kind != tokEOF {
		l.i++
	}
	return t
}

type parser struct {
	lex *lexer
	reg *event.Registry
}

func (p *parser) expectKeyword(kw string) error {
	t := p.lex.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("expected %s at offset %d, got %q", kw, t.pos, t.text)
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	t := p.lex.next()
	if t.kind != tokPunct || t.text != s {
		return fmt.Errorf("expected %q at offset %d, got %q", s, t.pos, t.text)
	}
	return nil
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.lex.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if err := p.expectKeyword("RETURN"); err != nil {
		return nil, err
	}
	agg, err := p.parseAgg()
	if err != nil {
		return nil, err
	}
	q.Agg = agg
	if err := p.expectKeyword("PATTERN"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SEQ"); err != nil {
		return nil, err
	}
	pat, err := p.parsePattern()
	if err != nil {
		return nil, err
	}
	q.Pattern = pat
	if p.peekKeyword("WHERE") {
		p.lex.next()
		if err := p.parsePredicates(q); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("WITHIN"); err != nil {
		return nil, err
	}
	length, err := p.parseDuration()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SLIDE"); err != nil {
		return nil, err
	}
	slide, err := p.parseDuration()
	if err != nil {
		return nil, err
	}
	q.Window = Window{Length: length, Slide: slide}
	if t := p.lex.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("unexpected trailing input %q at offset %d", t.text, t.pos)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) parseAgg() (AggSpec, error) {
	t := p.lex.next()
	if t.kind != tokIdent {
		return AggSpec{}, fmt.Errorf("expected aggregation function at offset %d, got %q", t.pos, t.text)
	}
	var kind AggKind
	switch strings.ToUpper(t.text) {
	case "COUNT":
		kind = CountStar // refined below
	case "SUM":
		kind = Sum
	case "MIN":
		kind = Min
	case "MAX":
		kind = Max
	case "AVG":
		kind = Avg
	default:
		return AggSpec{}, fmt.Errorf("unknown aggregation function %q at offset %d", t.text, t.pos)
	}
	if err := p.expectPunct("("); err != nil {
		return AggSpec{}, err
	}
	if kind == CountStar {
		// COUNT(*) or COUNT(Type)
		if tk := p.lex.peek(); tk.kind == tokPunct && tk.text == "*" {
			p.lex.next()
			if err := p.expectPunct(")"); err != nil {
				return AggSpec{}, err
			}
			return AggSpec{Kind: CountStar}, nil
		}
		name := p.lex.next()
		if name.kind != tokIdent {
			return AggSpec{}, fmt.Errorf("expected event type in COUNT at offset %d", name.pos)
		}
		if err := p.expectPunct(")"); err != nil {
			return AggSpec{}, err
		}
		return AggSpec{Kind: CountE, Target: p.reg.Intern(name.text)}, nil
	}
	name := p.lex.next()
	if name.kind != tokIdent {
		return AggSpec{}, fmt.Errorf("expected event type at offset %d", name.pos)
	}
	// Optional ".val" attribute selector.
	if tk := p.lex.peek(); tk.kind == tokPunct && tk.text == "." {
		p.lex.next()
		attr := p.lex.next()
		if attr.kind != tokIdent || !strings.EqualFold(attr.text, "val") {
			return AggSpec{}, fmt.Errorf("only the 'val' attribute is supported, got %q at offset %d", attr.text, attr.pos)
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return AggSpec{}, err
	}
	return AggSpec{Kind: kind, Target: p.reg.Intern(name.text)}, nil
}

func (p *parser) parsePattern() (Pattern, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var pat Pattern
	for {
		t := p.lex.next()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("expected event type at offset %d, got %q", t.pos, t.text)
		}
		pat = append(pat, p.reg.Intern(t.text))
		nxt := p.lex.next()
		if nxt.kind == tokPunct && nxt.text == "," {
			continue
		}
		if nxt.kind == tokPunct && nxt.text == ")" {
			return pat, nil
		}
		return nil, fmt.Errorf("expected ',' or ')' at offset %d, got %q", nxt.pos, nxt.text)
	}
}

func (p *parser) parsePredicates(q *Query) error {
	for {
		t := p.lex.peek()
		switch {
		case t.kind == tokPunct && t.text == "[":
			// [key] — group by the event key, the paper's same-attribute
			// predicate (e.g. [vehicle]).
			p.lex.next()
			name := p.lex.next()
			if name.kind != tokIdent {
				return fmt.Errorf("expected attribute name in [...] at offset %d", name.pos)
			}
			if err := p.expectPunct("]"); err != nil {
				return err
			}
			q.GroupBy = true
		case t.kind == tokIdent || (t.kind == tokPunct && t.text == "*"):
			pred, err := p.parseComparison()
			if err != nil {
				return err
			}
			q.Where = append(q.Where, pred)
		default:
			return fmt.Errorf("expected predicate at offset %d, got %q", t.pos, t.text)
		}
		if p.peekKeyword("AND") {
			p.lex.next()
			continue
		}
		return nil
	}
}

func (p *parser) parseComparison() (Predicate, error) {
	var pred Predicate
	t := p.lex.next()
	if t.kind == tokPunct && t.text == "*" {
		pred.Type = event.NoType
	} else if t.kind == tokIdent {
		pred.Type = p.reg.Intern(t.text)
	} else {
		return pred, fmt.Errorf("expected event type or '*' at offset %d", t.pos)
	}
	if err := p.expectPunct("."); err != nil {
		return pred, err
	}
	attr := p.lex.next()
	if attr.kind != tokIdent || !strings.EqualFold(attr.text, "val") {
		return pred, fmt.Errorf("only the 'val' attribute is supported in predicates, got %q", attr.text)
	}
	op := p.lex.next()
	if op.kind != tokOp {
		return pred, fmt.Errorf("expected comparison operator at offset %d, got %q", op.pos, op.text)
	}
	switch op.text {
	case "<":
		pred.Op = Lt
	case "<=":
		pred.Op = Le
	case ">":
		pred.Op = Gt
	case ">=":
		pred.Op = Ge
	case "=":
		pred.Op = Eq
	case "!=":
		pred.Op = Ne
	default:
		return pred, fmt.Errorf("unknown operator %q at offset %d", op.text, op.pos)
	}
	num := p.lex.next()
	if num.kind != tokNumber {
		return pred, fmt.Errorf("expected number at offset %d, got %q", num.pos, num.text)
	}
	v, err := strconv.ParseFloat(num.text, 64)
	if err != nil {
		return pred, fmt.Errorf("bad number %q: %w", num.text, err)
	}
	pred.Value = v
	return pred, nil
}

// parseDuration parses "<int><unit>" where unit is ms, s, m, or h; a bare
// integer is interpreted as seconds.
func (p *parser) parseDuration() (int64, error) {
	num := p.lex.next()
	if num.kind != tokNumber {
		return 0, fmt.Errorf("expected duration at offset %d, got %q", num.pos, num.text)
	}
	n, err := strconv.ParseInt(num.text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q: %w", num.text, err)
	}
	unit := int64(event.TicksPerSecond) // default seconds
	if t := p.lex.peek(); t.kind == tokIdent {
		switch strings.ToLower(t.text) {
		case "ms":
			unit = event.TicksPerSecond / 1000
			if unit == 0 {
				unit = 1
			}
			p.lex.next()
		case "s":
			unit = event.TicksPerSecond
			p.lex.next()
		case "m":
			unit = 60 * event.TicksPerSecond
			p.lex.next()
		case "h":
			unit = 3600 * event.TicksPerSecond
			p.lex.next()
		}
	}
	return n * unit, nil
}
