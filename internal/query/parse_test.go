package query

import (
	"strings"
	"testing"

	"github.com/sharon-project/sharon/internal/event"
)

func TestParsePaperQuery(t *testing.T) {
	reg := event.NewRegistry()
	q, err := Parse("RETURN COUNT(*) PATTERN SEQ(OakSt, MainSt) WHERE [vehicle] WITHIN 10m SLIDE 1m", reg)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Agg.Kind != CountStar {
		t.Errorf("Agg = %v", q.Agg.Kind)
	}
	if q.Pattern.Length() != 2 || reg.Name(q.Pattern[0]) != "OakSt" || reg.Name(q.Pattern[1]) != "MainSt" {
		t.Errorf("Pattern = %v", q.Pattern.Format(reg))
	}
	if !q.GroupBy {
		t.Error("GroupBy not set by [vehicle]")
	}
	if q.Window.Length != 600*event.TicksPerSecond || q.Window.Slide != 60*event.TicksPerSecond {
		t.Errorf("Window = %+v", q.Window)
	}
}

func TestParseAggregationFunctions(t *testing.T) {
	tests := []struct {
		text   string
		kind   AggKind
		target string
	}{
		{"COUNT(*)", CountStar, ""},
		{"COUNT(Laptop)", CountE, "Laptop"},
		{"SUM(Trip.val)", Sum, "Trip"},
		{"MIN(Speed.val)", Min, "Speed"},
		{"MAX(Speed.val)", Max, "Speed"},
		{"AVG(Price.val)", Avg, "Price"},
		{"sum(Trip.val)", Sum, "Trip"}, // keywords are case-insensitive
	}
	for _, tt := range tests {
		reg := event.NewRegistry()
		target := "X"
		if tt.target != "" {
			target = tt.target
		}
		text := "RETURN " + tt.text + " PATTERN SEQ(" + target + ", Y) WITHIN 10s SLIDE 5s"
		q, err := Parse(text, reg)
		if err != nil {
			t.Errorf("%s: %v", tt.text, err)
			continue
		}
		if q.Agg.Kind != tt.kind {
			t.Errorf("%s: kind = %v, want %v", tt.text, q.Agg.Kind, tt.kind)
		}
		if tt.target != "" && reg.Name(q.Agg.Target) != tt.target {
			t.Errorf("%s: target = %q", tt.text, reg.Name(q.Agg.Target))
		}
	}
}

func TestParsePredicates(t *testing.T) {
	reg := event.NewRegistry()
	q, err := Parse("RETURN COUNT(*) PATTERN SEQ(A, B) WHERE A.val > 3.5 AND *.val <= 100 AND [key] WITHIN 60s SLIDE 10s", reg)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Where) != 2 {
		t.Fatalf("Where = %v, want 2 predicates", q.Where)
	}
	if q.Where[0].Op != Gt || q.Where[0].Value != 3.5 || reg.Name(q.Where[0].Type) != "A" {
		t.Errorf("pred 0 = %+v", q.Where[0])
	}
	if q.Where[1].Op != Le || q.Where[1].Value != 100 || q.Where[1].Type != event.NoType {
		t.Errorf("pred 1 = %+v", q.Where[1])
	}
	if !q.GroupBy {
		t.Error("GroupBy not set")
	}
}

func TestParseDurations(t *testing.T) {
	tests := []struct {
		dur  string
		want int64
	}{
		{"500ms", 500 * event.TicksPerSecond / 1000},
		{"20s", 20 * event.TicksPerSecond},
		{"2m", 120 * event.TicksPerSecond},
		{"1h", 3600 * event.TicksPerSecond},
		{"30", 30 * event.TicksPerSecond}, // bare integer = seconds
	}
	for _, tt := range tests {
		reg := event.NewRegistry()
		q, err := Parse("RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN "+tt.dur+" SLIDE "+tt.dur, reg)
		if err != nil {
			t.Errorf("%s: %v", tt.dur, err)
			continue
		}
		if q.Window.Length != tt.want {
			t.Errorf("%s: length = %d, want %d", tt.dur, q.Window.Length, tt.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"PATTERN SEQ(A, B) WITHIN 10s SLIDE 1s", // missing RETURN
		"RETURN COUNT(*) PATTERN SEQ() WITHIN 10s SLIDE 1s",     // empty pattern
		"RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10s",          // missing SLIDE
		"RETURN BOGUS(*) PATTERN SEQ(A, B) WITHIN 10s SLIDE 1s", // unknown agg
		"RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 1s SLIDE 10s", // slide > window
		"RETURN COUNT(*) PATTERN SEQ(A, B) WHERE A.val >< 3 WITHIN 10s SLIDE 1s",
		"RETURN SUM(C.val) PATTERN SEQ(A, B) WITHIN 10s SLIDE 1s", // target not in pattern
		"RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10s SLIDE 1s trailing",
		"RETURN COUNT(*) PATTERN SEQ(A; B) WITHIN 10s SLIDE 1s",     // stray punctuation
		"RETURN SUM(A.price) PATTERN SEQ(A, B) WITHIN 10s SLIDE 1s", // unsupported attribute
	}
	for _, text := range bad {
		reg := event.NewRegistry()
		if _, err := Parse(text, reg); err == nil {
			t.Errorf("accepted invalid query %q", text)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	texts := []string{
		"RETURN COUNT(*) PATTERN SEQ(OakSt, MainSt) WHERE [key] WITHIN 10m SLIDE 1m",
		"RETURN SUM(B.val) PATTERN SEQ(A, B, C) WHERE A.val > 5 WITHIN 30s SLIDE 10s",
		"RETURN AVG(C.val) PATTERN SEQ(A, C) WITHIN 2m SLIDE 30s",
	}
	for _, text := range texts {
		reg := event.NewRegistry()
		q1, err := Parse(text, reg)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		rendered := q1.Format(reg)
		q2, err := Parse(rendered, reg)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", rendered, err)
		}
		if !q1.Pattern.Equal(q2.Pattern) || q1.Agg != q2.Agg || q1.Window != q2.Window || q1.GroupBy != q2.GroupBy {
			t.Errorf("round trip changed query: %q -> %q", text, rendered)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad input")
		}
	}()
	MustParse("garbage", event.NewRegistry())
}

func TestParseErrorMentionsOffset(t *testing.T) {
	reg := event.NewRegistry()
	_, err := Parse("RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10s SLIDE", reg)
	if err == nil || !strings.Contains(err.Error(), "duration") {
		t.Errorf("err = %v, want duration complaint", err)
	}
}
