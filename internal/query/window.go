package query

import "fmt"

// Window is a sliding window specified by the WITHIN and SLIDE clauses
// (paper Definition 2). Window k covers the half-open tick interval
// [k*Slide, k*Slide+Length).
type Window struct {
	Length int64 // WITHIN, in ticks
	Slide  int64 // SLIDE, in ticks
}

// Validate reports whether the window parameters are usable.
func (w Window) Validate() error {
	if w.Length <= 0 {
		return fmt.Errorf("window: WITHIN must be positive, got %d", w.Length)
	}
	if w.Slide <= 0 {
		return fmt.Errorf("window: SLIDE must be positive, got %d", w.Slide)
	}
	if w.Slide > w.Length {
		return fmt.Errorf("window: SLIDE %d exceeds WITHIN %d (events would be dropped)", w.Slide, w.Length)
	}
	return nil
}

// Start returns the first tick of window k.
//
//sharon:hotpath
//sharon:deterministic
func (w Window) Start(k int64) int64 { return k * w.Slide }

// End returns the first tick after window k.
//
//sharon:hotpath
//sharon:deterministic
func (w Window) End(k int64) int64 { return k*w.Slide + w.Length }

// FirstContaining returns the smallest window index whose interval contains
// tick t: the least k with k*Slide > t-Length, clamped at 0.
//
//sharon:hotpath
//sharon:deterministic
func (w Window) FirstContaining(t int64) int64 {
	// k*Slide + Length > t  <=>  k > (t-Length)/Slide
	k := (t-w.Length)/w.Slide + 1
	if (t-w.Length)%w.Slide < 0 {
		// integer division truncates toward zero for negatives; floor it.
		k--
	}
	if k < 0 {
		k = 0
	}
	return k
}

// LastContaining returns the largest window index whose interval contains
// tick t, i.e. floor(t/Slide). t must be non-negative.
//
//sharon:hotpath
//sharon:deterministic
func (w Window) LastContaining(t int64) int64 { return t / w.Slide }

// Contains reports whether window k contains tick t.
//
//sharon:hotpath
//sharon:deterministic
func (w Window) Contains(k, t int64) bool {
	return w.Start(k) <= t && t < w.End(k)
}

// Indices returns the inclusive range of window indices containing t.
//
//sharon:hotpath
//sharon:deterministic
func (w Window) Indices(t int64) (first, last int64) {
	return w.FirstContaining(t), w.LastContaining(t)
}

// MaxConcurrent bounds the width of the live window-index range: at any
// watermark t, the open windows are the contiguous indices [nextClose,
// LastContaining(t)] with nextClose = smallest k whose End exceeds t, so at
// most ceil(Length/Slide)+1 indices are open at once. Ring-buffer window
// state in the executors grows (geometrically, via NextPow2) up to this
// bound and no further.
//
//sharon:hotpath
//sharon:deterministic
func (w Window) MaxConcurrent() int64 {
	return (w.Length+w.Slide-1)/w.Slide + 1
}

// NextPow2 returns the smallest power of two at or above v (at least 1).
// The executors size their window rings with it so that wrapping a window
// index into a slot is a single mask instead of a modulo.
//
//sharon:hotpath
//sharon:deterministic
func NextPow2(v int64) int64 {
	n := int64(1)
	for n < v {
		n <<= 1
	}
	return n
}

// PairIndices returns the inclusive range of window indices containing the
// whole interval [start, end] (a sequence's START and END event times).
// It returns ok=false if no window contains both.
//
//sharon:hotpath
//sharon:deterministic
func (w Window) PairIndices(start, end int64) (first, last int64, ok bool) {
	first = w.FirstContaining(end) // window must extend past end
	last = w.LastContaining(start) // window must begin at or before start
	return first, last, first <= last
}
