package query

import (
	"math/rand"
	"testing"
)

func TestWindowValidate(t *testing.T) {
	tests := []struct {
		name    string
		w       Window
		wantErr bool
	}{
		{"ok", Window{Length: 10, Slide: 2}, false},
		{"tumbling", Window{Length: 10, Slide: 10}, false},
		{"zero length", Window{Length: 0, Slide: 1}, true},
		{"zero slide", Window{Length: 10, Slide: 0}, true},
		{"slide exceeds length", Window{Length: 5, Slide: 6}, true},
		{"negative", Window{Length: -1, Slide: 1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.w.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestWindowIntervals(t *testing.T) {
	w := Window{Length: 4, Slide: 1}
	if got := w.Start(3); got != 3 {
		t.Errorf("Start(3) = %d, want 3", got)
	}
	if got := w.End(3); got != 7 {
		t.Errorf("End(3) = %d, want 7", got)
	}
	// t=5 is contained in windows [2,6),[3,7),[4,8),[5,9).
	first, last := w.Indices(5)
	if first != 2 || last != 5 {
		t.Errorf("Indices(5) = [%d,%d], want [2,5]", first, last)
	}
	// Clamping at window 0: t=1 with length 4 gives first=0.
	first, last = w.Indices(1)
	if first != 0 || last != 1 {
		t.Errorf("Indices(1) = [%d,%d], want [0,1]", first, last)
	}
}

func TestWindowContains(t *testing.T) {
	w := Window{Length: 10, Slide: 3}
	if !w.Contains(2, 6) { // window 2 = [6,16)
		t.Error("window 2 should contain t=6")
	}
	if w.Contains(2, 5) {
		t.Error("window 2 should not contain t=5")
	}
	if w.Contains(2, 16) {
		t.Error("window 2 should not contain t=16 (half-open)")
	}
}

func TestWindowPairIndices(t *testing.T) {
	w := Window{Length: 4, Slide: 1}
	first, last, ok := w.PairIndices(3, 5)
	// Windows containing both 3 and 5: [2,6),[3,7).
	if !ok || first != 2 || last != 3 {
		t.Errorf("PairIndices(3,5) = [%d,%d] ok=%v, want [2,3] true", first, last, ok)
	}
	// Span longer than the window: no window contains both.
	if _, _, ok := w.PairIndices(0, 4); ok {
		t.Error("PairIndices(0,4) should not fit a length-4 window")
	}
}

// TestWindowIndicesProperty cross-checks the closed-form index ranges
// against the Contains predicate on random windows and times.
func TestWindowIndicesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		w := Window{Length: int64(1 + rng.Intn(50)), Slide: 0}
		w.Slide = int64(1 + rng.Intn(int(w.Length)))
		tm := int64(rng.Intn(500))
		first, last := w.Indices(tm)
		if first > last {
			t.Fatalf("w=%+v t=%d: empty index range [%d,%d]", w, tm, first, last)
		}
		for k := first - 2; k <= last+2; k++ {
			if k < 0 {
				continue
			}
			in := k >= first && k <= last
			if got := w.Contains(k, tm); got != in {
				t.Fatalf("w=%+v t=%d k=%d: Contains=%v, index range says %v", w, tm, k, got, in)
			}
		}
		// PairIndices agrees with Contains on both endpoints.
		t2 := tm + int64(rng.Intn(60))
		pf, pl, ok := w.PairIndices(tm, t2)
		for k := int64(0); k <= t2/w.Slide+1; k++ {
			in := w.Contains(k, tm) && w.Contains(k, t2)
			inRange := ok && k >= pf && k <= pl
			if in != inRange {
				t.Fatalf("w=%+v pair(%d,%d) k=%d: contains=%v range=%v", w, tm, t2, k, in, inRange)
			}
		}
	}
}
