// Package query defines Sharon's query model (paper §2.1): event sequence
// patterns, aggregation specifications, predicates, grouping, and sliding
// windows, together with a SASE-style textual query language.
package query

import (
	"fmt"
	"strings"

	"github.com/sharon-project/sharon/internal/event"
)

// Pattern is an event sequence pattern (E1 ... El), paper Definition 1.
// A match is a sequence of events of these types with strictly increasing
// timestamps.
type Pattern []event.Type

// Length returns the number of event types in the pattern.
func (p Pattern) Length() int { return len(p) }

// Equal reports whether p and q are the same pattern.
func (p Pattern) Equal(q Pattern) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of p.
func (p Pattern) Clone() Pattern {
	out := make(Pattern, len(p))
	copy(out, p)
	return out
}

// Key returns a compact map key uniquely identifying the pattern.
func (p Pattern) Key() string {
	var b strings.Builder
	for i, t := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", t)
	}
	return b.String()
}

// Format renders the pattern with type names from reg.
func (p Pattern) Format(reg *event.Registry) string {
	parts := make([]string, len(p))
	for i, t := range p {
		parts[i] = reg.Name(t)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// IndexOf returns the position of the first occurrence of sub in p, or -1.
func (p Pattern) IndexOf(sub Pattern) int {
	if len(sub) == 0 || len(sub) > len(p) {
		return -1
	}
outer:
	for i := 0; i+len(sub) <= len(p); i++ {
		for j := range sub {
			if p[i+j] != sub[j] {
				continue outer
			}
		}
		return i
	}
	return -1
}

// Occurrences returns all start positions of sub within p. Under the
// paper's core assumption (3) a type occurs at most once per pattern, so
// there is at most one occurrence; the multi-occurrence extension (§7.3)
// uses the full list.
func (p Pattern) Occurrences(sub Pattern) []int {
	var out []int
	if len(sub) == 0 || len(sub) > len(p) {
		return out
	}
outer:
	for i := 0; i+len(sub) <= len(p); i++ {
		for j := range sub {
			if p[i+j] != sub[j] {
				continue outer
			}
		}
		out = append(out, i)
	}
	return out
}

// Contains reports whether sub occurs contiguously within p.
func (p Pattern) Contains(sub Pattern) bool { return p.IndexOf(sub) >= 0 }

// Sub returns the sub-pattern p[i:j].
func (p Pattern) Sub(i, j int) Pattern { return p[i:j:j] }

// HasDuplicateTypes reports whether some event type occurs more than once
// in p (relevant for the §7.3 extension).
func (p Pattern) HasDuplicateTypes() bool {
	seen := make(map[event.Type]bool, len(p))
	for _, t := range p {
		if seen[t] {
			return true
		}
		seen[t] = true
	}
	return false
}

// AggKind enumerates the aggregation functions of Definition 2. All are
// distributive or algebraic, hence incrementally computable.
type AggKind int

const (
	// CountStar is COUNT(*): the number of matched sequences.
	CountStar AggKind = iota
	// CountE is COUNT(E): the number of events of type Target across all
	// matched sequences.
	CountE
	// Sum is SUM(E.attr) over events of type Target in all sequences.
	Sum
	// Min is MIN(E.attr).
	Min
	// Max is MAX(E.attr).
	Max
	// Avg is AVG(E.attr) = SUM/COUNT(E); algebraic.
	Avg
)

// String returns the SASE-style name of the aggregation function.
func (k AggKind) String() string {
	switch k {
	case CountStar:
		return "COUNT(*)"
	case CountE:
		return "COUNT"
	case Sum:
		return "SUM"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Avg:
		return "AVG"
	}
	return fmt.Sprintf("AggKind(%d)", int(k))
}

// AggSpec is the RETURN clause: an aggregation function and, for functions
// other than COUNT(*), the event type whose attribute is aggregated.
type AggSpec struct {
	Kind   AggKind
	Target event.Type // used by CountE, Sum, Min, Max, Avg
}

// Format renders the spec with type names from reg.
func (a AggSpec) Format(reg *event.Registry) string {
	switch a.Kind {
	case CountStar:
		return "COUNT(*)"
	case CountE:
		return fmt.Sprintf("COUNT(%s)", reg.Name(a.Target))
	default:
		return fmt.Sprintf("%s(%s.val)", a.Kind, reg.Name(a.Target))
	}
}

// CmpOp is a comparison operator in a WHERE predicate.
type CmpOp int

// Comparison operators.
const (
	Lt CmpOp = iota
	Le
	Gt
	Ge
	Eq
	Ne
)

// String returns the surface syntax of the operator.
func (op CmpOp) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Eq:
		return "="
	case Ne:
		return "!="
	}
	return "?"
}

// Predicate is a per-event filter of the form Type.val <op> Value.
// Type == event.NoType applies the filter to every event.
type Predicate struct {
	Type  event.Type
	Op    CmpOp
	Value float64
}

// Eval reports whether ev satisfies the predicate. Events of other types
// pass vacuously.
//
//sharon:hotpath
func (p Predicate) Eval(ev event.Event) bool {
	if p.Type != event.NoType && ev.Type != p.Type {
		return true
	}
	switch p.Op {
	case Lt:
		return ev.Val < p.Value
	case Le:
		return ev.Val <= p.Value
	case Gt:
		return ev.Val > p.Value
	case Ge:
		return ev.Val >= p.Value
	case Eq:
		return ev.Val == p.Value
	case Ne:
		return ev.Val != p.Value
	}
	return false
}

// Query is an event sequence aggregation query (paper Definition 2).
type Query struct {
	// ID is the query's position in the workload; the Sharon graph relies
	// on IDs being dense and unique (paper §4, data structures).
	ID int
	// Name is an optional human-readable label ("q1").
	Name string
	// Pattern is the PATTERN clause.
	Pattern Pattern
	// Agg is the RETURN clause.
	Agg AggSpec
	// Window is the WITHIN/SLIDE clause.
	Window Window
	// GroupBy partitions the stream by event.Event.Key when true
	// (the paper's [vehicle]/[customer] equivalence predicate).
	GroupBy bool
	// Where holds optional per-event predicates.
	Where []Predicate
}

// Validate reports the first structural problem with the query.
func (q *Query) Validate() error {
	if len(q.Pattern) == 0 {
		return fmt.Errorf("query %s: empty pattern", q.Label())
	}
	for i, t := range q.Pattern {
		if t == event.NoType {
			return fmt.Errorf("query %s: pattern position %d has no type", q.Label(), i)
		}
	}
	if err := q.Window.Validate(); err != nil {
		return fmt.Errorf("query %s: %w", q.Label(), err)
	}
	if q.Agg.Kind != CountStar {
		if q.Agg.Target == event.NoType {
			return fmt.Errorf("query %s: %v requires a target event type", q.Label(), q.Agg.Kind)
		}
		found := false
		for _, t := range q.Pattern {
			if t == q.Agg.Target {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("query %s: aggregation target not in pattern", q.Label())
		}
	}
	return nil
}

// Label returns Name if set, else "q<ID>".
func (q *Query) Label() string {
	if q.Name != "" {
		return q.Name
	}
	return fmt.Sprintf("q%d", q.ID)
}

// Accepts reports whether the query's WHERE predicates admit ev.
func (q *Query) Accepts(ev event.Event) bool {
	for _, p := range q.Where {
		if !p.Eval(ev) {
			return false
		}
	}
	return true
}

// Format renders the query in the textual language understood by Parse.
func (q *Query) Format(reg *event.Registry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "RETURN %s PATTERN SEQ%s", q.Agg.Format(reg), q.Pattern.Format(reg))
	var preds []string
	if q.GroupBy {
		preds = append(preds, "[key]")
	}
	for _, p := range q.Where {
		name := "*"
		if p.Type != event.NoType {
			name = reg.Name(p.Type)
		}
		preds = append(preds, fmt.Sprintf("%s.val %s %g", name, p.Op, p.Value))
	}
	if len(preds) > 0 {
		fmt.Fprintf(&b, " WHERE %s", strings.Join(preds, " AND "))
	}
	fmt.Fprintf(&b, " WITHIN %s SLIDE %s", formatDur(q.Window.Length), formatDur(q.Window.Slide))
	return b.String()
}

func formatDur(ticks int64) string {
	switch {
	case ticks%(60*event.TicksPerSecond) == 0:
		return fmt.Sprintf("%dm", ticks/(60*event.TicksPerSecond))
	case ticks%event.TicksPerSecond == 0:
		return fmt.Sprintf("%ds", ticks/event.TicksPerSecond)
	default:
		return fmt.Sprintf("%dms", ticks*1000/event.TicksPerSecond)
	}
}

// Workload is an ordered set of queries evaluated against one stream.
type Workload []*Query

// Validate checks every query and the uniqueness of IDs.
func (w Workload) Validate() error {
	seen := make(map[int]bool, len(w))
	for _, q := range w {
		if err := q.Validate(); err != nil {
			return err
		}
		if seen[q.ID] {
			return fmt.Errorf("duplicate query id %d", q.ID)
		}
		seen[q.ID] = true
	}
	return nil
}

// Renumber assigns dense IDs 0..n-1 in workload order and default names.
func (w Workload) Renumber() {
	for i, q := range w {
		q.ID = i
		if q.Name == "" {
			q.Name = fmt.Sprintf("q%d", i+1)
		}
	}
}

// Types returns the set of event types referenced by any pattern.
func (w Workload) Types() map[event.Type]bool {
	out := make(map[event.Type]bool)
	for _, q := range w {
		for _, t := range q.Pattern {
			out[t] = true
		}
	}
	return out
}
