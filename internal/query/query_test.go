package query

import (
	"strings"
	"testing"

	"github.com/sharon-project/sharon/internal/event"
)

func testReg(t *testing.T, names ...string) (*event.Registry, map[string]event.Type) {
	t.Helper()
	reg := event.NewRegistry()
	m := make(map[string]event.Type)
	for _, n := range names {
		m[n] = reg.Intern(n)
	}
	return reg, m
}

func patOf(m map[string]event.Type, names ...string) Pattern {
	p := make(Pattern, len(names))
	for i, n := range names {
		p[i] = m[n]
	}
	return p
}

func TestPatternBasics(t *testing.T) {
	_, m := testReg(t, "A", "B", "C", "D")
	p := patOf(m, "A", "B", "C")
	if p.Length() != 3 {
		t.Fatalf("Length = %d", p.Length())
	}
	if !p.Equal(patOf(m, "A", "B", "C")) {
		t.Error("Equal failed on identical patterns")
	}
	if p.Equal(patOf(m, "A", "B")) || p.Equal(patOf(m, "A", "B", "D")) {
		t.Error("Equal true for different patterns")
	}
	clone := p.Clone()
	clone[0] = m["D"]
	if p[0] != m["A"] {
		t.Error("Clone aliases the original")
	}
}

func TestPatternIndexOfContains(t *testing.T) {
	_, m := testReg(t, "A", "B", "C", "D", "E")
	p := patOf(m, "A", "B", "C", "D")
	tests := []struct {
		sub  Pattern
		want int
	}{
		{patOf(m, "A", "B"), 0},
		{patOf(m, "B", "C"), 1},
		{patOf(m, "C", "D"), 2},
		{patOf(m, "A", "B", "C", "D"), 0},
		{patOf(m, "B", "D"), -1},
		{patOf(m, "E"), -1},
		{Pattern{}, -1},
		{patOf(m, "A", "B", "C", "D", "E"), -1},
	}
	for _, tt := range tests {
		if got := p.IndexOf(tt.sub); got != tt.want {
			t.Errorf("IndexOf(%v) = %d, want %d", tt.sub, got, tt.want)
		}
		if got := p.Contains(tt.sub); got != (tt.want >= 0) {
			t.Errorf("Contains(%v) = %v", tt.sub, got)
		}
	}
}

func TestPatternOccurrencesWithDuplicates(t *testing.T) {
	_, m := testReg(t, "A", "B")
	p := patOf(m, "A", "B", "A", "B")
	occ := p.Occurrences(patOf(m, "A", "B"))
	if len(occ) != 2 || occ[0] != 0 || occ[1] != 2 {
		t.Fatalf("Occurrences = %v, want [0 2]", occ)
	}
	if !p.HasDuplicateTypes() {
		t.Error("HasDuplicateTypes should be true")
	}
	if patOf(m, "A", "B").HasDuplicateTypes() {
		t.Error("HasDuplicateTypes false positive")
	}
}

func TestPatternKeyUnique(t *testing.T) {
	_, m := testReg(t, "A", "B", "AB")
	// (A,B) and (AB) must not collide even though names concatenate.
	p1 := patOf(m, "A", "B")
	p2 := patOf(m, "AB")
	if p1.Key() == p2.Key() {
		t.Errorf("key collision: %q", p1.Key())
	}
}

func TestPredicateEval(t *testing.T) {
	_, m := testReg(t, "A", "B")
	ev := event.Event{Type: m["A"], Val: 10}
	tests := []struct {
		p    Predicate
		want bool
	}{
		{Predicate{Type: m["A"], Op: Gt, Value: 5}, true},
		{Predicate{Type: m["A"], Op: Lt, Value: 5}, false},
		{Predicate{Type: m["A"], Op: Ge, Value: 10}, true},
		{Predicate{Type: m["A"], Op: Le, Value: 10}, true},
		{Predicate{Type: m["A"], Op: Eq, Value: 10}, true},
		{Predicate{Type: m["A"], Op: Ne, Value: 10}, false},
		{Predicate{Type: m["B"], Op: Lt, Value: 0}, true}, // other type passes vacuously
		{Predicate{Type: event.NoType, Op: Gt, Value: 5}, true},
		{Predicate{Type: event.NoType, Op: Gt, Value: 50}, false},
	}
	for i, tt := range tests {
		if got := tt.p.Eval(ev); got != tt.want {
			t.Errorf("case %d: Eval = %v, want %v", i, got, tt.want)
		}
	}
}

func TestQueryValidate(t *testing.T) {
	_, m := testReg(t, "A", "B")
	win := Window{Length: 10, Slide: 2}
	ok := &Query{ID: 1, Pattern: patOf(m, "A", "B"), Agg: AggSpec{Kind: CountStar}, Window: win}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	bad := []*Query{
		{ID: 1, Pattern: Pattern{}, Window: win},
		{ID: 1, Pattern: Pattern{event.NoType}, Window: win},
		{ID: 1, Pattern: patOf(m, "A"), Window: Window{}},
		{ID: 1, Pattern: patOf(m, "A"), Agg: AggSpec{Kind: Sum}, Window: win},                 // missing target
		{ID: 1, Pattern: patOf(m, "A"), Agg: AggSpec{Kind: Sum, Target: m["B"]}, Window: win}, // target not in pattern
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}

func TestWorkloadValidateAndRenumber(t *testing.T) {
	_, m := testReg(t, "A", "B")
	win := Window{Length: 10, Slide: 2}
	w := Workload{
		{Pattern: patOf(m, "A", "B"), Window: win},
		{Pattern: patOf(m, "B", "A"), Window: win},
	}
	w.Renumber()
	if w[0].ID != 0 || w[1].ID != 1 {
		t.Fatalf("Renumber ids = %d,%d", w[0].ID, w[1].ID)
	}
	if w[0].Name != "q1" || w[1].Name != "q2" {
		t.Fatalf("Renumber names = %s,%s", w[0].Name, w[1].Name)
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	w[1].ID = 0
	if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate ids accepted: %v", err)
	}
}

func TestWorkloadTypes(t *testing.T) {
	_, m := testReg(t, "A", "B", "C")
	win := Window{Length: 10, Slide: 2}
	w := Workload{
		{ID: 0, Pattern: patOf(m, "A", "B"), Window: win},
		{ID: 1, Pattern: patOf(m, "B", "C"), Window: win},
	}
	types := w.Types()
	if len(types) != 3 {
		t.Fatalf("Types() = %v, want 3 entries", types)
	}
}

func TestQueryLabel(t *testing.T) {
	q := &Query{ID: 4}
	if q.Label() != "q4" {
		t.Errorf("Label = %q", q.Label())
	}
	q.Name = "custom"
	if q.Label() != "custom" {
		t.Errorf("Label = %q", q.Label())
	}
}

func TestAggKindStrings(t *testing.T) {
	for k, want := range map[AggKind]string{
		CountStar: "COUNT(*)", CountE: "COUNT", Sum: "SUM",
		Min: "MIN", Max: "MAX", Avg: "AVG", AggKind(42): "AggKind(42)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestCmpOpStrings(t *testing.T) {
	for op, want := range map[CmpOp]string{
		Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Eq: "=", Ne: "!=", CmpOp(9): "?",
	} {
		if got := op.String(); got != want {
			t.Errorf("op %d = %q, want %q", int(op), got, want)
		}
	}
}

func TestAggSpecFormat(t *testing.T) {
	reg, m := testReg(t, "A")
	if got := (AggSpec{Kind: CountStar}).Format(reg); got != "COUNT(*)" {
		t.Errorf("Format = %q", got)
	}
	if got := (AggSpec{Kind: CountE, Target: m["A"]}).Format(reg); got != "COUNT(A)" {
		t.Errorf("Format = %q", got)
	}
	if got := (AggSpec{Kind: Max, Target: m["A"]}).Format(reg); got != "MAX(A.val)" {
		t.Errorf("Format = %q", got)
	}
}

func TestPatternSub(t *testing.T) {
	_, m := testReg(t, "A", "B", "C")
	p := patOf(m, "A", "B", "C")
	sub := p.Sub(1, 3)
	if sub.Length() != 2 || sub[0] != m["B"] {
		t.Errorf("Sub = %v", sub)
	}
	// Sub uses a capped slice: appending must not clobber the original.
	sub = append(sub, m["A"])
	if p[2] != m["C"] {
		t.Error("Sub aliases parent backing array")
	}
}
