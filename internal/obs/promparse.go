package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromSample is one parsed exposition sample.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseProm parses the Prometheus text exposition format (the subset
// PromWriter emits plus optional timestamps). It is what sharon-load's
// -watch ticker and the CI smoke assertions read scrapes with.
func ParseProm(data []byte) ([]PromSample, error) {
	var out []PromSample
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("prometheus parse: line %d: %w", ln+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

func parsePromLine(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		rest = rest[1:]
		for !strings.HasPrefix(rest, "}") {
			eq := strings.Index(rest, "=")
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return s, fmt.Errorf("malformed label in %q", line)
			}
			key := rest[:eq]
			rest = rest[eq+2:]
			var val strings.Builder
			for {
				if rest == "" {
					return s, fmt.Errorf("unterminated label value in %q", line)
				}
				c := rest[0]
				if c == '"' {
					rest = rest[1:]
					break
				}
				if c == '\\' && len(rest) >= 2 {
					switch rest[1] {
					case 'n':
						val.WriteByte('\n')
					default:
						val.WriteByte(rest[1])
					}
					rest = rest[2:]
					continue
				}
				val.WriteByte(c)
				rest = rest[1:]
			}
			s.Labels[key] = val.String()
			rest = strings.TrimPrefix(rest, ",")
		}
		rest = rest[1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return s, fmt.Errorf("no value in %q", line)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

func parsePromValue(f string) (float64, error) {
	switch f {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(f, 64)
}

// matches reports whether the sample carries every label in want.
func (s PromSample) matches(want map[string]string) bool {
	for k, v := range want {
		if s.Labels[k] != v {
			return false
		}
	}
	return true
}

// FindSample returns the value of the first sample with the given name
// carrying every label in want (want may be nil).
func FindSample(samples []PromSample, name string, want map[string]string) (float64, bool) {
	for _, s := range samples {
		if s.Name == name && s.matches(want) {
			return s.Value, true
		}
	}
	return 0, false
}

// HistogramQuantile estimates quantile q of an exposed histogram from
// its cumulative <name>_bucket samples matching want (le excluded).
// The result is in the exposed unit (seconds for latency families).
func HistogramQuantile(samples []PromSample, name string, q float64, want map[string]string) (float64, bool) {
	type edge struct {
		le  float64
		cum float64
	}
	var edges []edge
	for _, s := range samples {
		if s.Name != name+"_bucket" || !s.matches(want) {
			continue
		}
		le, err := parsePromValue(s.Labels["le"])
		if err != nil {
			continue
		}
		edges = append(edges, edge{le, s.Value})
	}
	if len(edges) == 0 {
		return 0, false
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].le < edges[j].le })
	total := edges[len(edges)-1].cum
	if total == 0 {
		return 0, true
	}
	rank := math.Ceil(q * total)
	if rank < 1 {
		rank = 1
	}
	for _, e := range edges {
		if e.cum >= rank {
			return e.le, true
		}
	}
	return edges[len(edges)-1].le, true
}
