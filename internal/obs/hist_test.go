package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestBucketBoundaries(t *testing.T) {
	// Small values are exact.
	for v := int64(0); v < 2*histSub; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Errorf("bucketIndex(%d) = %d, want exact", v, got)
		}
		if got := BucketUpper(int(v)); got != v {
			t.Errorf("BucketUpper(%d) = %d, want %d", v, got, v)
		}
	}
	// Every bucket's upper bound maps back to the bucket, uppers are
	// strictly increasing, and the value just above one bucket's upper
	// lands in the next.
	prev := int64(-1)
	for i := 0; i < NumBuckets; i++ {
		up := BucketUpper(i)
		if up <= prev {
			t.Fatalf("BucketUpper(%d) = %d not > BucketUpper(%d) = %d", i, up, i-1, prev)
		}
		if got := bucketIndex(up); got != i {
			t.Fatalf("bucketIndex(BucketUpper(%d)=%d) = %d", i, up, got)
		}
		if up < math.MaxInt64 {
			if got := bucketIndex(up + 1); got != i+1 {
				t.Fatalf("bucketIndex(%d) = %d, want %d", up+1, got, i+1)
			}
		}
		prev = up
	}
	if bucketIndex(math.MaxInt64) != NumBuckets-1 {
		t.Fatalf("MaxInt64 lands in bucket %d, want %d", bucketIndex(math.MaxInt64), NumBuckets-1)
	}
	// Negative values clamp to bucket 0 via Record.
	var h Histogram
	h.Record(-5)
	if s := h.Snapshot(); s.Count != 1 || len(s.Buckets) != 1 || s.Buckets[0].Upper != 0 {
		t.Fatalf("negative record snapshot = %+v", h.Snapshot())
	}
}

func TestQuantileErrorBound(t *testing.T) {
	var h Histogram
	const n = 100000
	for v := int64(1); v <= n; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != n || s.Max != n {
		t.Fatalf("count=%d max=%d", s.Count, s.Max)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := q * n
		got := float64(s.Quantile(q))
		// Bucketed estimate must sit within one bucket width above the
		// true quantile: relative error <= 1/histSub = 12.5%.
		if got < exact || got > exact*(1+1.0/histSub)+1 {
			t.Errorf("Quantile(%g) = %g, exact %g: outside error bound", q, got, exact)
		}
	}
	if got := s.Quantile(1); got != n {
		t.Errorf("Quantile(1) = %d, want max %d", got, n)
	}
}

func TestConcurrentRecordAndMerge(t *testing.T) {
	// Hammer two histograms from concurrent goroutines (race-clean by
	// construction; the CI race job runs this under -race), then merge
	// and check nothing was lost.
	var a, b Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				v := rng.Int63n(1 << 40)
				if seed%2 == 0 {
					a.Record(v)
				} else {
					b.Record(v)
				}
			}
		}(int64(w))
	}
	wg.Wait()

	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.Count+sb.Count != workers*per {
		t.Fatalf("lost records: %d + %d != %d", sa.Count, sb.Count, workers*per)
	}
	a.Merge(&b)
	m := a.Snapshot()
	if m.Count != workers*per {
		t.Fatalf("merged count = %d, want %d", m.Count, workers*per)
	}
	if m.Sum != sa.Sum+sb.Sum {
		t.Fatalf("merged sum = %d, want %d", m.Sum, sa.Sum+sb.Sum)
	}
	if want := max(sa.Max, sb.Max); m.Max != want {
		t.Fatalf("merged max = %d, want %d", m.Max, want)
	}
	var total int64
	for _, bk := range m.Buckets {
		total += bk.Count
	}
	if total != m.Count {
		t.Fatalf("bucket total %d != count %d", total, m.Count)
	}
}

func TestSummaryScaling(t *testing.T) {
	var h Histogram
	h.Record(2_000_000) // 2ms in ns
	s := h.Snapshot().Summary(1e-6)
	if s.Count != 1 || s.Max != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50 < 2 || s.P50 > 2*(1+1.0/histSub) {
		t.Fatalf("p50 = %g out of bound", s.P50)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}
