package obs

import (
	"flag"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func buildExposition() *PromWriter {
	var h Histogram
	for _, v := range []int64{900, 1500, 1500, 40_000, 2_000_000} {
		h.Record(v)
	}
	w := &PromWriter{}
	w.Gauge("sharon_uptime_seconds", "Seconds since the server started.", nil, 12.5)
	w.Counter("sharon_events_ingested_total", "Events admitted to the pipeline.", nil, 123456)
	w.Counter("sharon_events_dropped_total", "Events dropped before apply.", []string{"reason", "late"}, 3)
	w.Counter("sharon_events_dropped_total", "Events dropped before apply.", []string{"reason", "unknown_type"}, 1)
	w.Histogram("sharon_stage_latency_seconds", "Per-stage pipeline latency.", []string{"stage", "apply"}, h.Snapshot(), 1e-9)
	w.SummaryQuantiles("sharon_cluster_worker_stage_latency_seconds", "Worker-scraped stage digest.", []string{"worker", "w1", "stage", "emit"}, Summary{Count: 7, Sum: 14, P50: 1, P90: 2, P99: 3, P999: 4, Max: 5}, 1e-3)
	w.Gauge("sharon_escapes", `tricky "help" with \ and`+"\nnewline", []string{"path", `C:\x "q"` + "\n"}, 1)
	return w
}

func TestPromGolden(t *testing.T) {
	got := buildExposition().Bytes()
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("exposition differs from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPromValid checks the v0.0.4 invariants on the writer's output:
// every sample parses, every family has exactly one HELP/TYPE header
// before its first sample, histogram buckets are cumulative and
// monotone with a closing +Inf equal to _count, and _sum is present.
func TestPromValid(t *testing.T) {
	out := string(buildExposition().Bytes())
	samples, err := ParseProm([]byte(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples parsed")
	}

	headers := map[string]int{}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			headers[strings.Fields(line)[2]]++
		}
	}
	for fam, n := range headers {
		if n != 1 {
			t.Errorf("family %s has %d TYPE headers", fam, n)
		}
	}
	for _, s := range samples {
		fam := s.Name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(fam, suf); base != fam && headers[base] > 0 {
				fam = base
				break
			}
		}
		if headers[fam] == 0 {
			t.Errorf("sample %s has no TYPE header", s.Name)
		}
	}

	// Histogram invariants for the one emitted histogram family.
	var prev float64 = -1
	var cum []float64
	var les []float64
	for _, s := range samples {
		if s.Name != "sharon_stage_latency_seconds_bucket" {
			continue
		}
		le, err := parsePromValue(s.Labels["le"])
		if err != nil {
			t.Fatalf("bad le: %v", err)
		}
		if le <= prev {
			t.Errorf("le %g not increasing after %g", le, prev)
		}
		prev = le
		les = append(les, le)
		cum = append(cum, s.Value)
	}
	if len(cum) == 0 {
		t.Fatal("no histogram buckets")
	}
	if !math.IsInf(les[len(les)-1], 1) {
		t.Error("histogram does not close with le=+Inf")
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Errorf("bucket counts not cumulative: %v", cum)
		}
	}
	count, ok := FindSample(samples, "sharon_stage_latency_seconds_count", map[string]string{"stage": "apply"})
	if !ok || count != cum[len(cum)-1] {
		t.Errorf("_count %g != +Inf bucket %g", count, cum[len(cum)-1])
	}
	if _, ok := FindSample(samples, "sharon_stage_latency_seconds_sum", map[string]string{"stage": "apply"}); !ok {
		t.Error("_sum missing")
	}

	// Label escaping survives a round-trip.
	if v, ok := FindSample(samples, "sharon_escapes", map[string]string{"path": `C:\x "q"` + "\n"}); !ok || v != 1 {
		t.Errorf("escaped label did not round-trip (ok=%v v=%g)", ok, v)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Record(v * 1000) // 1..1000 microseconds in ns
	}
	w := &PromWriter{}
	w.Histogram("lat", "h", nil, h.Snapshot(), 1e-9)
	samples, err := ParseProm(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	p99, ok := HistogramQuantile(samples, "lat", 0.99, nil)
	if !ok {
		t.Fatal("no buckets found")
	}
	if exact := 990e-6; p99 < exact || p99 > exact*1.2 {
		t.Errorf("p99 = %g, want ~%g", p99, exact)
	}
	if _, ok := HistogramQuantile(samples, "nope", 0.5, nil); ok {
		t.Error("quantile of missing family should report !ok")
	}
}

func TestMetricsFormat(t *testing.T) {
	cases := []struct {
		url, accept, want string
	}{
		{"/metrics", "", "json"},
		{"/metrics", "*/*", "json"},
		{"/metrics", "application/json", "json"},
		{"/metrics", "text/plain;version=0.0.4", "prometheus"},
		{"/metrics", "application/openmetrics-text", "prometheus"},
		{"/metrics?format=prometheus", "application/json", "prometheus"},
		{"/metrics?format=json", "text/plain", "json"},
	}
	for _, c := range cases {
		r := httptest.NewRequest("GET", c.url, nil)
		if c.accept != "" {
			r.Header.Set("Accept", c.accept)
		}
		if got := MetricsFormat(r); got != c.want {
			t.Errorf("MetricsFormat(%q, Accept=%q) = %q, want %q", c.url, c.accept, got, c.want)
		}
	}
}
