// Package obs is the module's dependency-free observability layer:
// lock-free log-bucketed histograms cheap enough for //sharon:hotpath
// code, a hand-rolled Prometheus text-exposition encoder (and the
// minimal parser the tooling uses to read it back), a ring-buffered
// span tracer, and a log/slog bridge onto the printf-style Logf sinks
// the servers already take. Everything here is stdlib-only.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

const (
	// histSubBits fixes the histogram resolution: each power-of-two
	// octave is split into 2^histSubBits linear sub-buckets, bounding
	// the relative quantile error at 1/2^histSubBits = 12.5%.
	histSubBits = 3
	histSub     = 1 << histSubBits

	// NumBuckets covers all non-negative int64 values: buckets 0..15
	// are exact, then 8 sub-buckets per octave up to 2^63-1 (whose
	// 63-bit length makes bucket 487 the last reachable one).
	NumBuckets = (63-histSubBits-1)*histSub + 2*histSub
)

// Histogram is a fixed-size log-bucketed histogram with atomic
// counters. The zero value is ready to use; Record never allocates and
// never blocks, so it is safe from hot-path code, under locks, and
// inside //sharon:deterministic emit paths. Values are unitless int64s
// (callers record nanoseconds for latency series, counts for size
// series); negative values clamp to 0.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// Record adds one observation.
//
//sharon:hotpath
//sharon:locksafe
//sharon:deterministic
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// bucketIndex maps a non-negative value to its bucket: values < 16 map
// exactly, larger values to (octave, sub-bucket) pairs.
//
//sharon:hotpath
//sharon:locksafe
//sharon:deterministic
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < 2*histSub {
		return int(u)
	}
	shift := uint(bits.Len64(u)) - histSubBits - 1
	return int(uint64(shift)<<histSubBits + u>>shift)
}

// BucketUpper returns the inclusive upper bound of bucket i's value
// range (the Prometheus `le` boundary before unit scaling).
func BucketUpper(i int) int64 {
	if i < 2*histSub {
		return int64(i)
	}
	shift := uint(i>>histSubBits) - 1
	upper := (uint64(histSub+i&(histSub-1))+1)<<shift - 1
	if upper > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(upper)
}

// Bucket is one non-empty histogram bucket in a Snapshot.
type Bucket struct {
	// Upper is the inclusive upper bound of the bucket's value range.
	Upper int64 `json:"upper"`
	// Count is the number of observations in the bucket.
	Count int64 `json:"count"`
}

// Snapshot is a point-in-time copy of a histogram. Counters are read
// individually, so a snapshot taken during concurrent recording may be
// off by in-flight observations; it is internally usable regardless.
type Snapshot struct {
	Count int64
	Sum   int64
	Max   int64
	// Buckets holds the non-empty buckets in ascending Upper order.
	Buckets []Bucket
}

// Snapshot copies the histogram's current counters. Pure atomic loads
// with no I/O; safe to call with caller locks held.
//
//sharon:locksafe
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c > 0 {
			s.Buckets = append(s.Buckets, Bucket{Upper: BucketUpper(i), Count: c})
		}
	}
	return s
}

// Merge adds other's counters into h. It is safe against concurrent
// recording on either side.
func (h *Histogram) Merge(other *Histogram) {
	for i := range other.buckets {
		if c := other.buckets[i].Load(); c > 0 {
			h.buckets[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	om := other.max.Load()
	for {
		old := h.max.Load()
		if om <= old || h.max.CompareAndSwap(old, om) {
			break
		}
	}
}

// Quantile estimates the q-th quantile (0 < q <= 1) as the upper bound
// of the bucket holding that rank, capped at the observed maximum.
// Relative error is bounded by the bucket width: at most 12.5%.
func (s Snapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			if b.Upper > s.Max {
				return s.Max
			}
			return b.Upper
		}
	}
	return s.Max
}

// Summary is the compact quantile digest of a histogram exposed on the
// JSON /metrics form. Values carry whatever unit the caller scaled to
// (the servers expose latency stages in milliseconds).
type Summary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
}

// Summary digests the snapshot, multiplying every value by scale
// (1e-6 turns recorded nanoseconds into milliseconds; 1 keeps counts).
// Pure math; safe to call with caller locks held.
//
//sharon:locksafe
func (s Snapshot) Summary(scale float64) Summary {
	return Summary{
		Count: s.Count,
		Sum:   float64(s.Sum) * scale,
		P50:   float64(s.Quantile(0.50)) * scale,
		P90:   float64(s.Quantile(0.90)) * scale,
		P99:   float64(s.Quantile(0.99)) * scale,
		P999:  float64(s.Quantile(0.999)) * scale,
		Max:   float64(s.Max) * scale,
	}
}
