package obs

import (
	"sync"
)

// Span is one recorded pipeline event: a batch's trip through the pump,
// a window close reaching emit, a rebalance. Spans are intentionally
// flat — a fixed struct, no payload allocation — so recording them
// always costs the same.
type Span struct {
	// ID is a monotonically increasing sequence number.
	ID int64 `json:"id"`
	// Kind tags the span ("batch", "window", "rebalance", ...).
	Kind string `json:"kind"`
	// Start is the span's start time in Unix nanoseconds.
	Start int64 `json:"start_unix_nano"`
	// DurNs is the span's duration in nanoseconds.
	DurNs int64 `json:"dur_ns"`
	// Conn identifies the ingest connection, when one applies.
	Conn int64 `json:"conn,omitempty"`
	// Batch is the server's batch ordinal, when one applies.
	Batch int64 `json:"batch,omitempty"`
	// Events is the number of events the span covered.
	Events int64 `json:"events,omitempty"`
	// Watermark is the watermark the span ran under or closed at.
	Watermark int64 `json:"watermark,omitempty"`
	// Seq is the emitted result sequence number, for emit spans.
	Seq int64 `json:"seq,omitempty"`
	// Note carries free-form context (worker id, error text, ...).
	Note string `json:"note,omitempty"`
}

// Tracer is a fixed-capacity ring of recent spans, always on: recording
// overwrites the oldest entry and never allocates after construction.
// Dumped via GET /debug/traces.
type Tracer struct {
	mu   sync.Mutex
	ring []Span
	next int
	full bool
	id   int64
}

// NewTracer returns a tracer retaining the last capacity spans.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// Record stores the span (assigning its ID) and returns the ID.
//
//sharon:locksafe
func (t *Tracer) Record(s Span) int64 {
	t.mu.Lock()
	t.id++
	s.ID = t.id
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	if t.next == 0 {
		t.full = true
	}
	t.mu.Unlock()
	return s.ID
}

// Spans returns up to n of the most recent spans in recording order.
func (t *Tracer) Spans(n int) []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	size := t.next
	if t.full {
		size = len(t.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Span, 0, n)
	start := t.next - n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}
