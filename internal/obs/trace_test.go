package obs

import "testing"

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	if got := tr.Spans(0); len(got) != 0 {
		t.Fatalf("empty tracer returned %d spans", len(got))
	}
	for i := int64(1); i <= 10; i++ {
		id := tr.Record(Span{Kind: "batch", Start: i})
		if id != i {
			t.Fatalf("Record assigned id %d, want %d", id, i)
		}
	}
	got := tr.Spans(0)
	if len(got) != 4 {
		t.Fatalf("got %d spans, want ring capacity 4", len(got))
	}
	for i, s := range got {
		if want := int64(7 + i); s.ID != want || s.Start != want {
			t.Fatalf("span[%d] = %+v, want id/start %d", i, s, want)
		}
	}
	if got := tr.Spans(2); len(got) != 2 || got[0].ID != 9 || got[1].ID != 10 {
		t.Fatalf("Spans(2) = %+v", got)
	}
}
