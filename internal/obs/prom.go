package obs

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// MetricsFormat picks the /metrics response format for a request:
// an explicit ?format= wins, then an Accept header asking for plain
// text (what Prometheus scrapers send) selects the exposition format,
// and everything else keeps the original JSON form.
func MetricsFormat(r *http.Request) string {
	switch r.URL.Query().Get("format") {
	case "prometheus", "prom", "text":
		return "prometheus"
	case "json":
		return "json"
	}
	accept := r.Header.Get("Accept")
	if strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics") {
		return "prometheus"
	}
	return "json"
}

// PromWriter renders metric families in the Prometheus text exposition
// format v0.0.4. Samples of one family must be written consecutively;
// the HELP/TYPE header is emitted once per family.
type PromWriter struct {
	buf     bytes.Buffer
	lastFam string
}

func (w *PromWriter) header(name, typ, help string) {
	if w.lastFam == name {
		return
	}
	w.lastFam = name
	fmt.Fprintf(&w.buf, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Counter writes one counter sample. labels alternates key, value.
func (w *PromWriter) Counter(name, help string, labels []string, v float64) {
	w.header(name, "counter", help)
	w.sample(name, "", labels, v)
}

// Gauge writes one gauge sample.
func (w *PromWriter) Gauge(name, help string, labels []string, v float64) {
	w.header(name, "gauge", help)
	w.sample(name, "", labels, v)
}

// Histogram writes a snapshot as a full histogram family: cumulative
// _bucket series (with a closing le="+Inf"), _sum, and _count. scale
// converts recorded values to the exposed unit (1e-9 for ns → s).
func (w *PromWriter) Histogram(name, help string, labels []string, s Snapshot, scale float64) {
	w.header(name, "histogram", help)
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		le := strconv.FormatFloat(float64(b.Upper)*scale, 'g', 10, 64)
		w.sample(name+"_bucket", "", append(append([]string(nil), labels...), "le", le), float64(cum))
	}
	w.sample(name+"_bucket", "", append(append([]string(nil), labels...), "le", "+Inf"), float64(s.Count))
	w.sample(name+"_sum", "", labels, float64(s.Sum)*scale)
	w.sample(name+"_count", "", labels, float64(s.Count))
}

// SummaryQuantiles writes an already-digested Summary as a summary
// family with quantile labels — used for figures scraped from workers,
// where only the digest (not the buckets) crossed the wire. scale
// converts the digest's unit to the exposed one (1e-3 for ms → s).
func (w *PromWriter) SummaryQuantiles(name, help string, labels []string, s Summary, scale float64) {
	w.header(name, "summary", help)
	for _, q := range [...]struct {
		label string
		v     float64
	}{{"0.5", s.P50}, {"0.9", s.P90}, {"0.99", s.P99}, {"0.999", s.P999}} {
		w.sample(name, "", append(append([]string(nil), labels...), "quantile", q.label), q.v*scale)
	}
	w.sample(name+"_sum", "", labels, s.Sum*scale)
	w.sample(name+"_count", "", labels, float64(s.Count))
}

func (w *PromWriter) sample(name, suffix string, labels []string, v float64) {
	w.buf.WriteString(name + suffix)
	if len(labels) > 0 {
		w.buf.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				w.buf.WriteByte(',')
			}
			fmt.Fprintf(&w.buf, `%s="%s"`, labels[i], escapeLabel(labels[i+1]))
		}
		w.buf.WriteByte('}')
	}
	w.buf.WriteByte(' ')
	w.buf.WriteString(formatFloat(v))
	w.buf.WriteByte('\n')
}

// Bytes returns the rendered exposition.
func (w *PromWriter) Bytes() []byte { return w.buf.Bytes() }

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
