package obs

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
)

// NewLogfLogger bridges structured slog records onto a printf-style
// sink: each record renders as "msg key=value ...". It keeps the
// servers' configurable Logf seam (tests capture lines, -v wires
// log.Printf) while the code logs structured fields; nil logf yields a
// discard logger.
func NewLogfLogger(logf func(format string, args ...any)) *slog.Logger {
	if logf == nil {
		return slog.New(logfHandler{logf: func(string, ...any) {}})
	}
	return slog.New(logfHandler{logf: logf})
}

type logfHandler struct {
	logf   func(format string, args ...any)
	prefix string // rendered WithAttrs/WithGroup context
	group  string
}

func (h logfHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	if r.Level != slog.LevelInfo {
		b.WriteString(r.Level.String())
		b.WriteByte(' ')
	}
	b.WriteString(r.Message)
	b.WriteString(h.prefix)
	r.Attrs(func(a slog.Attr) bool {
		appendAttr(&b, h.group, a)
		return true
	})
	h.logf("%s", b.String())
	return nil
}

func (h logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	var b strings.Builder
	b.WriteString(h.prefix)
	for _, a := range attrs {
		appendAttr(&b, h.group, a)
	}
	h.prefix = b.String()
	return h
}

func (h logfHandler) WithGroup(name string) slog.Handler {
	if name != "" {
		h.group = h.group + name + "."
	}
	return h
}

func appendAttr(b *strings.Builder, group string, a slog.Attr) {
	if a.Value.Kind() == slog.KindGroup {
		if a.Key != "" {
			group = group + a.Key + "."
		}
		for _, ga := range a.Value.Group() {
			appendAttr(b, group, ga)
		}
		return
	}
	if a.Key == "" {
		return
	}
	fmt.Fprintf(b, " %s%s=%v", group, a.Key, a.Value)
}
