package chash

import (
	"testing"

	"github.com/sharon-project/sharon/internal/event"
)

const testKeys = 20000

func owners(t *testing.T, r *Ring) map[event.GroupKey]string {
	t.Helper()
	m := make(map[event.GroupKey]string, testKeys)
	for k := 0; k < testKeys; k++ {
		m[event.GroupKey(k)] = r.Owner(event.GroupKey(k))
	}
	return m
}

func mustRing(t *testing.T, ids []string) *Ring {
	t.Helper()
	r, err := New(ids, 0)
	if err != nil {
		t.Fatalf("New(%v): %v", ids, err)
	}
	return r
}

func TestRingDeterministicAndOrderIndependent(t *testing.T) {
	a := mustRing(t, []string{"w1", "w2", "w3"})
	b := mustRing(t, []string{"w3", "w1", "w2"})
	for k := 0; k < testKeys; k++ {
		key := event.GroupKey(k)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("owner of key %d depends on member insertion order: %q vs %q", k, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := mustRing(t, []string{"w1", "w2", "w3", "w4"})
	counts := map[string]int{}
	for _, id := range owners(t, r) {
		counts[id]++
	}
	ideal := testKeys / 4
	for id, n := range counts {
		if n < ideal/2 || n > ideal*2 {
			t.Errorf("worker %s owns %d of %d keys (ideal %d): distribution too skewed", id, n, testKeys, ideal)
		}
	}
}

// Table-driven stability: across every add/remove transition, keys that
// stay on an unchanged worker must not move between unchanged workers —
// the only allowed movements involve the changed worker.
func TestRingStabilityUnderMembershipChange(t *testing.T) {
	cases := []struct {
		name    string
		before  []string
		after   []string
		changed string // the worker added or removed
	}{
		{"add-2nd", []string{"w1"}, []string{"w1", "w2"}, "w2"},
		{"add-4th", []string{"w1", "w2", "w3"}, []string{"w1", "w2", "w3", "w4"}, "w4"},
		{"add-9th", []string{"w1", "w2", "w3", "w4", "w5", "w6", "w7", "w8"}, []string{"w1", "w2", "w3", "w4", "w5", "w6", "w7", "w8", "w9"}, "w9"},
		{"remove-of-3", []string{"w1", "w2", "w3"}, []string{"w1", "w3"}, "w2"},
		{"remove-of-5", []string{"w1", "w2", "w3", "w4", "w5"}, []string{"w1", "w2", "w4", "w5"}, "w3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := owners(t, mustRing(t, tc.before))
			after := owners(t, mustRing(t, tc.after))
			for k, ob := range before {
				oa := after[k]
				if ob == oa {
					continue
				}
				if ob != tc.changed && oa != tc.changed {
					t.Fatalf("key %d moved %q -> %q, but only %q changed membership", k, ob, oa, tc.changed)
				}
			}
		})
	}
}

// Bounded movement: adding the Nth worker moves about K/N keys; with 64
// vnodes the distribution is tight enough to assert a 2x slack bound.
// Removing a worker moves exactly the keys it owned (asserted by the
// stability test above) — here we bound how many that is.
func TestRingBoundedMovement(t *testing.T) {
	cases := []struct {
		name   string
		before []string
		after  []string
	}{
		{"add-2nd", []string{"w1"}, []string{"w1", "w2"}},
		{"add-3rd", []string{"w1", "w2"}, []string{"w1", "w2", "w3"}},
		{"add-5th", []string{"w1", "w2", "w3", "w4"}, []string{"w1", "w2", "w3", "w4", "w5"}},
		{"remove-of-3", []string{"w1", "w2", "w3"}, []string{"w1", "w2"}},
		{"remove-of-5", []string{"w1", "w2", "w3", "w4", "w5"}, []string{"w1", "w2", "w3", "w4"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := owners(t, mustRing(t, tc.before))
			after := owners(t, mustRing(t, tc.after))
			moved := 0
			for k, ob := range before {
				if after[k] != ob {
					moved++
				}
			}
			// The changed worker's share is K/max(before,after); allow 2x
			// for vnode placement variance.
			n := len(tc.before)
			if len(tc.after) > n {
				n = len(tc.after)
			}
			bound := 2 * testKeys / n
			if moved > bound {
				t.Fatalf("%d of %d keys moved; bound %d (K/N with 2x slack, N=%d)", moved, testKeys, bound, n)
			}
			if moved == 0 {
				t.Fatalf("no keys moved on a membership change")
			}
		})
	}
}

func TestMovedPredicateMatchesRings(t *testing.T) {
	old := mustRing(t, []string{"w1", "w2", "w3"})
	new_, err := old.Remove("w2")
	if err != nil {
		t.Fatal(err)
	}
	for _, to := range []string{"w1", "w3"} {
		pred := Moved(old, new_, "w2", to)
		for k := 0; k < testKeys; k++ {
			key := event.GroupKey(k)
			want := old.Owner(key) == "w2" && new_.Owner(key) == to
			if pred(key) != want {
				t.Fatalf("Moved predicate disagrees with ring evaluation for key %d", k)
			}
		}
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := New([]string{"a", "a"}, 8); err == nil {
		t.Fatal("duplicate id accepted")
	}
	r := mustRing(t, []string{"a", "b"})
	if _, err := r.Add("a"); err == nil {
		t.Fatal("Add of existing member accepted")
	}
	if _, err := r.Remove("zzz"); err == nil {
		t.Fatal("Remove of non-member accepted")
	}
	if !r.Has("a") || r.Has("zzz") {
		t.Fatal("Has wrong")
	}
}
