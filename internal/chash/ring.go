// Package chash implements the consistent-hash ring the cluster router
// partitions group keys across sharond workers with. It is a leaf
// package — both the router (internal/cluster) and the worker-side
// extract handler (internal/server) evaluate the same ring, so the
// routing function lives below both.
//
// The ring places VNodes virtual points per worker on a 64-bit hash
// circle; a group key is owned by the worker of the first point at or
// clockwise-after the key's hash. Adding a worker captures only the
// arcs immediately counter-clockwise of its points (expected K/N of K
// keys for the Nth worker); removing a worker moves exactly the keys it
// owned and nothing else. Both rings being pure functions of the
// (worker IDs, VNodes) configuration, the router and a worker handed an
// (old, new) membership pair always agree on which keys moved — that
// agreement is what makes checkpoint-handoff rebalancing exact.
package chash

import (
	"fmt"
	"hash/fnv"
	"slices"
	"sort"

	"github.com/sharon-project/sharon/internal/event"
)

// DefaultVNodes is the default virtual-node count per worker: enough to
// keep per-worker load within a few percent of even and the movement
// bound close to K/N, cheap enough that ring rebuilds are free.
const DefaultVNodes = 64

// KeyHash maps a group key onto the hash circle. The function is part
// of the cluster wire protocol (extract requests name workers, not key
// lists, and both sides re-derive the moved set): changing it strands
// every group on the wrong worker across a rolling upgrade.
func KeyHash(k event.GroupKey) uint64 {
	h := uint64(k) * 0x9E3779B97F4A7C15
	h ^= h >> 32
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 32
	return h
}

// point is one virtual node: a position on the circle and its worker.
type point struct {
	h  uint64
	id string
}

// Ring is an immutable consistent-hash ring over a set of worker IDs.
type Ring struct {
	points []point // sorted by hash
	vnodes int
	ids    []string // sorted member IDs
}

// vnodeHash positions one virtual node of a worker on the circle.
func vnodeHash(id string, i int) uint64 {
	f := fnv.New64a()
	fmt.Fprintf(f, "%s#%d", id, i)
	h := f.Sum64()
	// fnv output is well distributed but mix once more so sequential
	// vnode indices of one worker scatter.
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 29
	return h
}

// New builds a ring over the given worker IDs with vnodes virtual nodes
// per worker (<=0 selects DefaultVNodes). IDs must be unique.
func New(ids []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := slices.Clone(ids)
	slices.Sort(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("chash: duplicate worker id %q", sorted[i])
		}
	}
	r := &Ring{vnodes: vnodes, ids: sorted}
	seen := make(map[uint64]bool, len(sorted)*vnodes)
	for _, id := range sorted {
		for i := 0; i < vnodes; i++ {
			h := vnodeHash(id, i)
			// A cross-worker vnode hash collision would make ownership
			// depend on insertion order; perturb deterministically.
			for seen[h] {
				h = h*0x9E3779B97F4A7C15 + 1
			}
			seen[h] = true
			r.points = append(r.points, point{h: h, id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].h < r.points[j].h })
	return r, nil
}

// Members returns the sorted worker IDs on the ring.
//
//sharon:locksafe
func (r *Ring) Members() []string { return slices.Clone(r.ids) }

// Size reports the number of workers.
func (r *Ring) Size() int { return len(r.ids) }

// Has reports whether id is a member.
//
//sharon:locksafe
func (r *Ring) Has(id string) bool {
	_, ok := slices.BinarySearch(r.ids, id)
	return ok
}

// OwnerHash returns the worker owning hash position h: the worker of
// the first virtual node at or clockwise-after h (wrapping).
//
//sharon:locksafe
func (r *Ring) OwnerHash(h uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].id
}

// Owner returns the worker owning group key k.
//
//sharon:locksafe
func (r *Ring) Owner(k event.GroupKey) string { return r.OwnerHash(KeyHash(k)) }

// Add returns a new ring with id added.
//
//sharon:locksafe
func (r *Ring) Add(id string) (*Ring, error) {
	if r.Has(id) {
		return nil, fmt.Errorf("chash: worker %q already on the ring", id)
	}
	return New(append(r.Members(), id), r.vnodes)
}

// Remove returns a new ring with id removed.
//
//sharon:locksafe
func (r *Ring) Remove(id string) (*Ring, error) {
	if !r.Has(id) {
		return nil, fmt.Errorf("chash: worker %q not on the ring", id)
	}
	ids := r.Members()
	ids = slices.Delete(ids, slices.Index(ids, id), slices.Index(ids, id)+1)
	return New(ids, r.vnodes)
}

// VNodes reports the per-worker virtual node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Moved returns the predicate selecting keys whose ownership moved from
// `from` on the old ring to `to` on the new ring — the unit of a
// rebalance hand-off. Both sides of the cluster protocol derive the
// same predicate from the same (old members, new members, vnodes)
// triple.
func Moved(old, new *Ring, from, to string) func(event.GroupKey) bool {
	return func(k event.GroupKey) bool {
		h := KeyHash(k)
		return old.OwnerHash(h) == from && new.OwnerHash(h) == to
	}
}
