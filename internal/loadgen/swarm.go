package loadgen

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// The subscriber swarm: N extra unfiltered subscriptions (SSE or
// WebSocket) held open for the duration of a load run, each checking
// its own received sequence for gaps and duplicates and recording the
// server's explicit terminal frame. This is the client side of the
// broadcast fan-out tier — the swarm is how the CI smoke proves 10k
// concurrent subscribers see a gap-free stream while frames are encoded
// once, and how close reasons are observed instead of inferred from
// connection state.

// SwarmReport aggregates the swarm's outcome.
type SwarmReport struct {
	// Subscribers is the requested swarm size; Connected counts
	// subscriptions that completed the subscribe handshake.
	Subscribers int   `json:"subscribers"`
	Connected   int64 `json:"connected"`
	// Results counts result frames received across the swarm (expected
	// to be ~ results × Connected — the delivered side of the
	// encode-once invariant); SeqGaps/SeqDups count per-subscriber
	// contiguity violations, both zero on a healthy broadcast tier.
	Results int64 `json:"results"`
	SeqGaps int64 `json:"seq_gaps"`
	SeqDups int64 `json:"seq_dups"`
	// CleanEOF counts subscriptions ended by an `eof` terminal frame;
	// DroppedSlow/DroppedFiltered count explicit `dropped` terminals by
	// reason; Unexplained counts streams that ended with no terminal
	// while the run was still going (the failure the explicit terminal
	// frames exist to eliminate).
	CleanEOF        int64 `json:"clean_eof"`
	DroppedSlow     int64 `json:"dropped_slow"`
	DroppedFiltered int64 `json:"dropped_filtered"`
	Unexplained     int64 `json:"unexplained"`
}

// swarm is a running subscriber swarm.
type swarm struct {
	report SwarmReport
	ctx    context.Context
	wg     sync.WaitGroup

	connected atomic.Int64
	results   atomic.Int64
	gaps      atomic.Int64
	dups      atomic.Int64
	eofs      atomic.Int64
	dropSlow  atomic.Int64
	dropFilt  atomic.Int64
	unexpl    atomic.Int64
}

// dialLimit bounds concurrent connection attempts so a large swarm
// ramps without overrunning the listener's accept queue.
const dialLimit = 256

// startSwarm launches n subscribers against baseURL over the given
// transport ("sse" or "ws"). Subscribers run until ctx is canceled or
// the server terminates them.
func startSwarm(ctx context.Context, baseURL string, n int, transport string) *swarm {
	s := &swarm{ctx: ctx}
	s.report.Subscribers = n
	sem := make(chan struct{}, dialLimit)
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sem <- struct{}{}
			connected := false
			if transport == "ws" {
				connected = s.runWS(baseURL, sem)
			} else {
				connected = s.runSSE(baseURL, sem)
			}
			if connected {
				s.connected.Add(1)
			}
		}()
	}
	return s
}

// wait joins the swarm (ctx should be canceled first) and returns the
// aggregated report.
func (s *swarm) wait() SwarmReport {
	s.wg.Wait()
	r := s.report
	r.Connected = s.connected.Load()
	r.Results = s.results.Load()
	r.SeqGaps = s.gaps.Load()
	r.SeqDups = s.dups.Load()
	r.CleanEOF = s.eofs.Load()
	r.DroppedSlow = s.dropSlow.Load()
	r.DroppedFiltered = s.dropFilt.Load()
	r.Unexplained = s.unexpl.Load()
	return r
}

// seqCheck tracks one subscriber's contiguity.
type seqCheck struct {
	prev int64
	s    *swarm
}

func (c *seqCheck) observe(seq int64) {
	c.s.results.Add(1)
	switch {
	case c.prev < 0 || seq == c.prev+1:
		c.prev = seq
	case seq > c.prev+1:
		c.s.gaps.Add(1)
		c.prev = seq
	default:
		c.s.dups.Add(1)
	}
}

// terminal records one subscriber's explicit close frame.
func (s *swarm) terminal(event, reason string) {
	switch {
	case event == "eof":
		s.eofs.Add(1)
	case reason == "slow-consumer":
		s.dropSlow.Add(1)
	case reason == "filtered-resume":
		s.dropFilt.Add(1)
	}
}

// runSSE holds one SSE swarm subscription open; the sem slot is
// released once the subscription is established (or failed).
func (s *swarm) runSSE(baseURL string, sem chan struct{}) (connected bool) {
	released := false
	release := func() {
		if !released {
			released = true
			<-sem
		}
	}
	defer release()
	// after=-1 replays everything retained: a subscriber that ramps in
	// late still sees the full stream, so the swarm's delivered-frame
	// count is exactly results × connected.
	req, err := http.NewRequestWithContext(s.ctx, "GET", baseURL+"/subscribe?after=-1", nil)
	if err != nil {
		return false
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	check := seqCheck{prev: -1, s: s}
	evtype := ""
	sawTerminal := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == ": subscribed":
			connected = true
			release()
		case line == "":
			evtype = ""
		case strings.HasPrefix(line, "event: "):
			evtype = line[len("event: "):]
		case strings.HasPrefix(line, "id: "):
			if seq, err := strconv.ParseInt(line[len("id: "):], 10, 64); err == nil {
				check.observe(seq)
			}
		case strings.HasPrefix(line, "data: "):
			switch evtype {
			case "eof":
				s.terminal("eof", "")
				sawTerminal = true
			case "dropped":
				var d struct {
					Reason string `json:"reason"`
				}
				_ = json.Unmarshal([]byte(line[len("data: "):]), &d)
				s.terminal("dropped", d.Reason)
				sawTerminal = true
			}
		}
	}
	if connected && !sawTerminal && s.ctx.Err() == nil {
		s.unexpl.Add(1)
	}
	return connected
}

// runWS holds one WebSocket swarm subscription open.
func (s *swarm) runWS(baseURL string, sem chan struct{}) (connected bool) {
	released := false
	release := func() {
		if !released {
			released = true
			<-sem
		}
	}
	defer release()
	conn, _, err := DialWS(baseURL+"/subscribe/ws?after=-1", nil)
	if err != nil {
		return false
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-s.ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()
	check := seqCheck{prev: -1, s: s}
	sawTerminal := false
	for {
		payload, err := conn.ReadMessage()
		if err != nil {
			break
		}
		var msg struct {
			Event  string `json:"event"`
			Reason string `json:"reason"`
			Seq    *int64 `json:"seq"`
		}
		if json.Unmarshal(payload, &msg) != nil {
			continue
		}
		switch msg.Event {
		case "subscribed":
			connected = true
			release()
		case "eof", "dropped":
			s.terminal(msg.Event, msg.Reason)
			sawTerminal = true
		case "":
			if msg.Seq != nil {
				check.observe(*msg.Seq)
			}
		}
	}
	if connected && !sawTerminal && s.ctx.Err() == nil {
		s.unexpl.Add(1)
	}
	return connected
}
