package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/sharon-project/sharon/internal/metrics"
	"github.com/sharon-project/sharon/internal/server"
)

func subscriberGauge(t *testing.T, baseURL string) int {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st metrics.ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.Subscribers
}

func swarmTestServer(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	srv, err := server.New(server.Config{
		Queries:        server.DefaultQueries,
		HeartbeatEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	})
	return srv, ts
}

// TestSwarmRun drives a full loopback run with a subscriber swarm on
// each transport: every subscriber connects, sees the complete
// gap-free result stream (results × subscribers — the delivered side
// of encode-once), and no stream ends unexplained.
func TestSwarmRun(t *testing.T) {
	for _, transport := range []string{"sse", "ws"} {
		t.Run(transport, func(t *testing.T) {
			_, ts := swarmTestServer(t)
			rep, err := Run(Config{
				BaseURL:      ts.URL,
				Events:       10000,
				Subscribers:  50,
				SubTransport: transport,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Results == 0 {
				t.Fatal("no results")
			}
			sw := rep.Swarm
			if sw == nil {
				t.Fatal("no swarm report")
			}
			if sw.Connected != 50 {
				t.Fatalf("connected %d/50 swarm subscribers", sw.Connected)
			}
			if sw.SeqGaps != 0 || sw.SeqDups != 0 {
				t.Fatalf("swarm contiguity violated: gaps=%d dups=%d", sw.SeqGaps, sw.SeqDups)
			}
			if want := rep.Results * 50; sw.Results != want {
				t.Fatalf("swarm received %d frames, want %d (results × subscribers)", sw.Results, want)
			}
			if sw.Unexplained != 0 {
				t.Fatalf("%d swarm streams ended without a terminal frame", sw.Unexplained)
			}
		})
	}
}

// TestSwarmDrainTerminals pins the explicit close-reason contract from
// the client side: when the server drains under a connected swarm,
// every subscriber observes an `eof` terminal frame on its transport —
// nothing is inferred from the connection closing.
func TestSwarmDrainTerminals(t *testing.T) {
	for _, transport := range []string{"sse", "ws"} {
		t.Run(transport, func(t *testing.T) {
			srv, ts := swarmTestServer(t)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			sw := startSwarm(ctx, ts.URL, 10, transport)
			// The swarm's own connected counter settles at wait();
			// watch the server's live-subscription gauge instead.
			deadline := time.Now().Add(15 * time.Second)
			for subscriberGauge(t, ts.URL) < 10 {
				if time.Now().After(deadline) {
					t.Fatalf("swarm never connected: server gauge %d/10", subscriberGauge(t, ts.URL))
				}
				time.Sleep(5 * time.Millisecond)
			}
			drainCtx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer dcancel()
			if err := srv.Drain(drainCtx); err != nil {
				t.Fatal(err)
			}
			rep := sw.wait()
			if rep.CleanEOF != 10 {
				t.Fatalf("eof terminals = %d/10 (dropped_slow=%d dropped_filtered=%d unexplained=%d)",
					rep.CleanEOF, rep.DroppedSlow, rep.DroppedFiltered, rep.Unexplained)
			}
			if rep.Unexplained != 0 {
				t.Fatalf("%d streams ended without a terminal", rep.Unexplained)
			}
		})
	}
}
