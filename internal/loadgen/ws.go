package loadgen

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// Client side of the server's hand-rolled RFC 6455 endpoint
// (internal/server/ws.go): enough of the protocol to subscribe, read
// text messages, and answer pings. Client frames are masked as the RFC
// requires; server frames arrive unmasked.

const wsClientMagic = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// WSConn is one client WebSocket connection.
type WSConn struct {
	conn net.Conn
	br   *bufio.Reader

	wmu sync.Mutex // serializes writes (pongs race user writes)
}

// DialWS upgrades a GET of rawurl (http:// or https:// form; the path
// and query ride along) to a WebSocket. Non-101 responses are returned
// as an error carrying the status code.
func DialWS(rawurl string, hdr http.Header) (*WSConn, *http.Response, error) {
	u, err := url.Parse(rawurl)
	if err != nil {
		return nil, nil, err
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	conn, err := net.DialTimeout("tcp", host, 10*time.Second)
	if err != nil {
		return nil, nil, err
	}
	keyRaw := make([]byte, 16)
	if _, err := rand.Read(keyRaw); err != nil {
		conn.Close()
		return nil, nil, err
	}
	key := base64.StdEncoding.EncodeToString(keyRaw)

	var req strings.Builder
	target := u.RequestURI()
	fmt.Fprintf(&req, "GET %s HTTP/1.1\r\n", target)
	fmt.Fprintf(&req, "Host: %s\r\n", u.Host)
	req.WriteString("Upgrade: websocket\r\nConnection: Upgrade\r\n")
	fmt.Fprintf(&req, "Sec-WebSocket-Key: %s\r\nSec-WebSocket-Version: 13\r\n", key)
	for k, vs := range hdr {
		for _, v := range vs {
			fmt.Fprintf(&req, "%s: %s\r\n", k, v)
		}
	}
	req.WriteString("\r\n")
	if _, err := conn.Write([]byte(req.String())); err != nil {
		conn.Close()
		return nil, nil, err
	}

	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, &http.Request{Method: "GET"})
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		// Refusals (400/404/410/503) are plain HTTP responses with a
		// readable body; hand them back for status/header inspection.
		defer conn.Close()
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		return nil, resp, fmt.Errorf("ws dial: status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	sum := sha1.Sum([]byte(key + wsClientMagic))
	if resp.Header.Get("Sec-Websocket-Accept") != base64.StdEncoding.EncodeToString(sum[:]) {
		conn.Close()
		return nil, resp, fmt.Errorf("ws dial: bad Sec-WebSocket-Accept")
	}
	return &WSConn{conn: conn, br: br}, resp, nil
}

// ReadMessage returns the next data message's payload, transparently
// answering pings. A close frame is echoed and reported as io.EOF.
func (c *WSConn) ReadMessage() ([]byte, error) {
	for {
		op, payload, err := c.readFrame()
		if err != nil {
			return nil, err
		}
		switch op {
		case 0x1, 0x2: // text, binary
			return payload, nil
		case 0x9: // ping -> pong
			if err := c.writeFrame(0xA, payload); err != nil {
				return nil, err
			}
		case 0xA: // pong (unsolicited): ignore
		case 0x8: // close: echo and end
			_ = c.writeFrame(0x8, payload)
			return nil, io.EOF
		default:
			return nil, fmt.Errorf("ws: unexpected opcode %#x", op)
		}
	}
}

// Close sends a close frame (status 1000) and closes the socket.
func (c *WSConn) Close() error {
	_ = c.writeFrame(0x8, []byte{0x03, 0xE8})
	return c.conn.Close()
}

func (c *WSConn) readFrame() (op byte, payload []byte, err error) {
	var h [2]byte
	if _, err = io.ReadFull(c.br, h[:]); err != nil {
		return 0, nil, err
	}
	op = h[0] & 0x0F
	masked := h[1]&0x80 != 0
	n := uint64(h[1] & 0x7F)
	switch n {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return 0, nil, err
		}
		n = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return 0, nil, err
		}
		n = binary.BigEndian.Uint64(ext[:])
	}
	if n > 1<<20 {
		return 0, nil, fmt.Errorf("ws: frame of %d bytes exceeds limit", n)
	}
	var mask [4]byte
	if masked { // servers must not mask; tolerate it anyway
		if _, err = io.ReadFull(c.br, mask[:]); err != nil {
			return 0, nil, err
		}
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(c.br, payload); err != nil {
		return 0, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i&3]
		}
	}
	return op, payload, nil
}

// writeFrame sends one masked client frame.
func (c *WSConn) writeFrame(op byte, payload []byte) error {
	var mask [4]byte
	if _, err := rand.Read(mask[:]); err != nil {
		return err
	}
	n := len(payload)
	buf := make([]byte, 0, n+14)
	buf = append(buf, 0x80|op)
	switch {
	case n < 126:
		buf = append(buf, 0x80|byte(n))
	case n < 1<<16:
		buf = append(buf, 0x80|126, byte(n>>8), byte(n))
	default:
		buf = append(buf, 0x80|127)
		var ext [8]byte
		binary.BigEndian.PutUint64(ext[:], uint64(n))
		buf = append(buf, ext[:]...)
	}
	buf = append(buf, mask[:]...)
	start := len(buf)
	buf = append(buf, payload...)
	for i := range payload {
		buf[start+i] ^= mask[i&3]
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	//sharon:allow lockio (c.wmu exists to serialize socket writes; deadline set first bounds the hold)
	_ = c.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	//sharon:allow lockio (c.wmu exists to serialize socket writes; the write deadline above bounds the hold)
	_, err := c.conn.Write(buf)
	return err
}
