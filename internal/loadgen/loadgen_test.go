package loadgen_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/sharon-project/sharon/internal/loadgen"
	"github.com/sharon-project/sharon/internal/metrics"
	"github.com/sharon-project/sharon/internal/obs"
	"github.com/sharon-project/sharon/internal/server"
)

func startServer(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	srv, err := server.New(server.Config{
		Queries:        server.DefaultQueries,
		HeartbeatEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	})
	return srv, ts
}

// TestLoopbackObservability drives a real loopback run and cross-checks
// the three latency views against each other: the loadgen's client-side
// report (exact percentiles + histogram buckets), the server's JSON
// stage digests, and the Prometheus exposition. All three must agree
// with the run's counters.
func TestLoopbackObservability(t *testing.T) {
	_, ts := startServer(t)
	rep, err := loadgen.Run(loadgen.Config{BaseURL: ts.URL, Events: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results == 0 || rep.Windows == 0 {
		t.Fatalf("no results/windows: %+v", rep)
	}

	// Client-side report: monotone percentiles, buckets covering every
	// window sample.
	if rep.LatencyP50Ms > rep.LatencyP90Ms || rep.LatencyP90Ms > rep.LatencyP99Ms ||
		rep.LatencyP99Ms > rep.LatencyP999Ms || rep.LatencyP999Ms > rep.LatencyMaxMs {
		t.Fatalf("client percentiles not monotone: %+v", rep)
	}
	if len(rep.LatencyBuckets) == 0 {
		t.Fatal("no client latency buckets")
	}
	var bucketTotal int64
	for i, b := range rep.LatencyBuckets {
		bucketTotal += b.Count
		if i > 0 && b.UpperMs <= rep.LatencyBuckets[i-1].UpperMs {
			t.Fatalf("bucket uppers not increasing at %d: %+v", i, rep.LatencyBuckets)
		}
	}
	if bucketTotal != rep.Windows {
		t.Fatalf("bucket total %d != windows %d", bucketTotal, rep.Windows)
	}

	// Server JSON view: counters match the client's ground truth, stage
	// sample counts tie to the pipeline invariants.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var st metrics.ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.EventsIngested != rep.Events {
		t.Fatalf("server ingested %d, loadgen sent %d", st.EventsIngested, rep.Events)
	}
	if st.Batches != rep.Batches {
		t.Fatalf("server batches %d, loadgen posted %d", st.Batches, rep.Batches)
	}
	if st.Stages == nil {
		t.Fatal("JSON metrics carry no stages")
	}
	if got := st.Stages["apply"].Count; got != st.Batches {
		t.Fatalf("apply stage count = %d, want batches = %d", got, st.Batches)
	}
	if got := st.Stages["emit"].Count; got != st.ResultsEmitted {
		t.Fatalf("emit stage count = %d, want results_emitted = %d", got, st.ResultsEmitted)
	}
	if got := st.Stages["decode_ndjson"].Count; got < st.Batches {
		t.Fatalf("decode_ndjson count = %d, want >= %d", got, st.Batches)
	}
	// Cross-check client vs server: the server-side ingest-to-emit p50
	// cannot exceed the client's worst observed window latency (the
	// client adds network and subscription time on top).
	if emit := st.Stages["emit"]; emit.P50 > rep.LatencyMaxMs {
		t.Fatalf("server emit p50 %.3fms exceeds client max %.3fms", emit.P50, rep.LatencyMaxMs)
	}

	// Prometheus view: same counters, valid exposition.
	resp, err = http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("prometheus Content-Type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseProm(data)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if v, ok := obs.FindSample(samples, "sharon_events_ingested_total", nil); !ok || int64(v) != rep.Events {
		t.Fatalf("sharon_events_ingested_total = %v (ok=%v), want %d", v, ok, rep.Events)
	}
	if v, ok := obs.FindSample(samples, "sharon_stage_latency_seconds_count", map[string]string{"stage": "apply"}); !ok || int64(v) != st.Batches {
		t.Fatalf("apply exposition count = %v (ok=%v), want %d", v, ok, st.Batches)
	}
	p99, ok := obs.HistogramQuantile(samples, "sharon_stage_latency_seconds", 0.99, map[string]string{"stage": "emit"})
	if !ok || p99 <= 0 {
		t.Fatalf("emit p99 from exposition = %v (ok=%v)", p99, ok)
	}
	if p99*1e3 > rep.LatencyMaxMs*1.2 {
		t.Fatalf("exposition emit p99 %.3fms exceeds client max %.3fms", p99*1e3, rep.LatencyMaxMs)
	}
}

// TestWatchTicker exercises the -watch scrape loop in both wire
// formats against a server with traffic on it.
func TestWatchTicker(t *testing.T) {
	_, ts := startServer(t)
	if _, err := loadgen.Run(loadgen.Config{BaseURL: ts.URL, Events: 5000}); err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"json", "prometheus"} {
		var buf bytes.Buffer
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err := loadgen.Watch(ctx, loadgen.WatchConfig{
			BaseURL: ts.URL,
			Format:  format,
			Every:   100 * time.Millisecond,
			Out:     &buf,
		})
		cancel()
		if err != context.DeadlineExceeded {
			t.Fatalf("%s: Watch returned %v", format, err)
		}
		out := buf.String()
		if !strings.Contains(out, "ev/s") || !strings.Contains(out, "queue") || !strings.Contains(out, "p99") {
			t.Fatalf("%s ticker output missing fields:\n%s", format, out)
		}
		if strings.Contains(out, "watch:") {
			t.Fatalf("%s ticker reported scrape errors:\n%s", format, out)
		}
	}
}
