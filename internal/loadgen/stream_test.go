package loadgen

import "testing"

// TestStreamTickSteady pins the steady mapping: event i carries tick
// i+1, exactly what resumed crash-drill runs regenerate.
func TestStreamTickSteady(t *testing.T) {
	c := &Config{}
	c.fill()
	for _, i := range []int{-1, 0, 1, 7, 511, 100000} {
		if got, want := c.streamTick(i), int64(i)+1; got != want {
			t.Fatalf("streamTick(%d) = %d, want %d", i, got, want)
		}
	}
}

// TestStreamTickSquareWave checks the bursty mapping's invariants: ticks
// strictly increase (the ingest path requires time order), valley-half
// events sit BurstRatio ticks apart, burst-half events one apart, and
// periods abut without gaps — so the stream-time arrival rate really is
// a BurstRatio:1 square wave.
func TestStreamTickSquareWave(t *testing.T) {
	c := &Config{BurstRatio: 8, BurstPeriod: 100}
	c.fill()
	if got := c.streamTick(-1); got != 0 {
		t.Fatalf("streamTick(-1) = %d, want 0 (tick before the first event)", got)
	}
	half := c.BurstPeriod / 2
	prev := int64(0)
	for i := 0; i < 5*c.BurstPeriod; i++ {
		tick := c.streamTick(i)
		gap := tick - prev
		want := int64(1)
		if i%c.BurstPeriod < half {
			want = int64(c.BurstRatio)
		}
		if gap != want {
			t.Fatalf("event %d: tick gap %d, want %d", i, gap, want)
		}
		prev = tick
	}
}
