// Package loadgen drives a sharond server over loopback (or any
// network) and measures end-to-end serving performance: sustained
// ingest throughput and the ingest-to-emit latency between posting the
// batch that closes a window and receiving that window's first result
// on a subscription. cmd/sharon-load and the sharon-bench "server"
// experiment share this driver.
//
// The driver is also the crash-recovery verifier: it can resume a
// previous run's event stream from an index (-start-index), resume the
// subscription from a sequence cursor (/subscribe?after=N), tolerate a
// server death mid-run (reporting exactly how far the stream got), and
// it always checks the received sequence numbers for gaps and
// duplicates — across a kill -9 + restart, the concatenation of the two
// runs' frames must be one contiguous, duplicate-free result stream.
package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	sharon "github.com/sharon-project/sharon"
	"github.com/sharon-project/sharon/internal/obs"
	"github.com/sharon-project/sharon/internal/persist"
	"github.com/sharon-project/sharon/internal/server"
)

// Config parameterizes one load run. The generated stream is a pure
// function of the event index: event i carries tick streamTick(i)
// (i+1 unless BurstRatio reshapes the tick spacing), type
// Types[i%len(Types)], a hash-mixed group key, and val i%7+1 — so a
// resumed run (StartIndex > 0) regenerates exactly the events the
// interrupted run would have sent next.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Events is the number of events to send.
	Events int
	// StartIndex offsets the generated stream: the run sends events
	// [StartIndex, StartIndex+Events). Use a crashed run's NextIndex to
	// resume its stream.
	StartIndex int
	// Batch is the events-per-POST batch size (default 512).
	Batch int
	// RatePerSec throttles sending to about this many events per second
	// (0 = as fast as the server accepts). The crash drills use it to
	// keep the stream in flight long enough to kill the server mid-run.
	RatePerSec float64
	// BurstRatio, when > 1, modulates the generated stream's density in
	// STREAM time (ticks) as a square wave, so a burst-adaptive server
	// sees real arrival-rate swings: each BurstPeriod-event period opens
	// with a valley half whose events sit BurstRatio ticks apart,
	// followed by a burst half at one tick per event — the burst phase
	// arrives BurstRatio× denser. Every event still gets a distinct,
	// strictly increasing tick, and the mapping is a pure function of
	// the event index, so resumed runs regenerate the stream exactly.
	// Wall-clock throttling (RatePerSec) is independent. The bursty CI
	// smoke drives sharond -adaptive with this and asserts the
	// share/split transition counters move.
	BurstRatio int
	// BurstPeriod is the square wave's full period in events (default
	// 8192 when BurstRatio is set). Each half phase must span enough
	// ticks to cover the server's check interval (the window slide)
	// several times over, or the detector never confirms a transition.
	BurstPeriod int
	// Groups is the number of distinct group keys (default 16).
	Groups int
	// Types is the event type cycle (default A, B, C, D — matching
	// sharond's default workload).
	Types []string
	// Within and Slide are the served workload's window parameters in
	// ticks (default 4000/1000); the driver needs them to know which
	// batch closes which window for the latency measurement.
	Within, Slide int64
	// Resume subscribes with ?after=After, replaying retained results
	// after that sequence number before the live stream continues
	// (After = -1 replays everything retained).
	Resume bool
	After  int64
	// SkipWatermark leaves the stream open: no final watermark is
	// posted and the quiesce wait is skipped (crash-drill phase runs).
	SkipWatermark bool
	// TolerateAbort makes a mid-run server death a reported outcome
	// (Report.Aborted, NextIndex) instead of an error.
	TolerateAbort bool
	// FramesPath, when set, appends every received result payload as
	// one line to this file — the byte evidence the crash-recovery
	// verification diffs against an uninterrupted run.
	FramesPath string
	// ExtraEndpoints lists additional servers whose result streams are
	// subscribed alongside BaseURL's, each with its own seq-gap/dup
	// check. The cluster drills use it to watch a router's workers (each
	// worker emits its own contiguous local sequence) while driving the
	// router. An extra endpoint's stream ending early is reported
	// (EndpointReport.Closed), not an error — the cluster kill drill
	// shoots one worker on purpose.
	ExtraEndpoints []string
	// QuiesceTimeout bounds the wait for in-flight results after the
	// final watermark (default 30s).
	QuiesceTimeout time.Duration
	// QuiesceStill is how long the subscription must stay silent before
	// the run is considered complete (default 500ms). Cluster drills
	// raise it past the router's dead-worker detection + rebalance span
	// so a mid-drill stall is not mistaken for the end of the stream.
	QuiesceStill time.Duration
	// Subscribers sizes an extra swarm of unfiltered subscriptions held
	// open for the run (0 = none), each seq-checked independently — the
	// client side of the broadcast fan-out tier. SubTransport selects
	// their transport: "sse" (default) or "ws".
	Subscribers  int
	SubTransport string
	// Wire selects the ingest codec: "ndjson" (default) posts NDJSON
	// batches, "binary" posts the same batches in the binary batch
	// format (Content-Type application/x-sharon-batch), and "stream"
	// sends every batch as a CRC frame down one long-lived
	// /ingest/stream connection with per-batch acks.
	Wire string
	// Progress receives per-phase log lines; nil discards them.
	Progress func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Batch <= 0 {
		c.Batch = 512
	}
	if c.Groups <= 0 {
		c.Groups = 16
	}
	if len(c.Types) == 0 {
		c.Types = []string{"A", "B", "C", "D"}
	}
	if c.Within <= 0 {
		c.Within = 4000
	}
	if c.Slide <= 0 {
		c.Slide = 1000
	}
	if c.QuiesceTimeout <= 0 {
		c.QuiesceTimeout = 30 * time.Second
	}
	if c.QuiesceStill <= 0 {
		c.QuiesceStill = 500 * time.Millisecond
	}
	if c.Wire == "" {
		c.Wire = "ndjson"
	}
	if c.SubTransport == "" {
		c.SubTransport = "sse"
	}
	if c.BurstRatio > 1 && c.BurstPeriod < 2 {
		c.BurstPeriod = 8192
	}
	if c.Progress == nil {
		c.Progress = func(string, ...any) {}
	}
}

// streamTick maps event index i to its tick. The steady mapping is one
// tick per event (tick i+1); with BurstRatio set it becomes a square
// wave in stream time — each BurstPeriod-event period opens with a
// valley half whose events are BurstRatio ticks apart, then a burst
// half at one tick per event. Strictly increasing in i, and pure like
// the steady mapping, so resumed runs regenerate the stream exactly.
func (c *Config) streamTick(i int) int64 {
	if c.BurstRatio <= 1 {
		return int64(i) + 1
	}
	period := int64(c.BurstPeriod)
	half := period / 2
	ratio := int64(c.BurstRatio)
	ticksPerPeriod := half*ratio + (period - half)
	p, r := int64(i)/period, int64(i)%period
	t := p * ticksPerPeriod
	if r < half {
		return t + (r+1)*ratio
	}
	return t + half*ratio + (r - half) + 1
}

// Report is the outcome of one load run.
type Report struct {
	// Events/Batches are the accepted totals; Rejected429 counts
	// backpressure refusals (each retried until accepted).
	Events      int64 `json:"events"`
	Batches     int64 `json:"batches"`
	Rejected429 int64 `json:"rejected_429"`
	// ElapsedNs spans first POST to last accepted POST; EventsPerSec is
	// the sustained ingest throughput over it.
	ElapsedNs    int64   `json:"elapsed_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Results is the number of pushed results the subscription
	// received; Windows the number of distinct window ends among them.
	Results int64 `json:"results"`
	Windows int64 `json:"windows"`
	// LatencyP50Ms through LatencyMaxMs summarize ingest-to-emit
	// latency: from posting the batch (or watermark) that closes a
	// window to receiving that window's first result. Percentiles are
	// exact (computed from the full sorted sample set, one sample per
	// window); LatencyBuckets is the log-bucketed histogram of the same
	// samples for cross-checking against the server's stage histograms.
	LatencyP50Ms   float64         `json:"latency_p50_ms"`
	LatencyP90Ms   float64         `json:"latency_p90_ms"`
	LatencyP99Ms   float64         `json:"latency_p99_ms"`
	LatencyP999Ms  float64         `json:"latency_p999_ms"`
	LatencyMaxMs   float64         `json:"latency_max_ms"`
	LatencyBuckets []LatencyBucket `json:"latency_buckets,omitempty"`
	// FirstSeq/LastSeq bound the received emission sequence numbers
	// (-1 when nothing arrived); SeqGaps/SeqDups count violations of
	// strict seq contiguity on the subscription — both must be zero on
	// a healthy (or correctly resumed) stream.
	FirstSeq int64 `json:"first_seq"`
	LastSeq  int64 `json:"last_seq"`
	SeqGaps  int64 `json:"seq_gaps"`
	SeqDups  int64 `json:"seq_dups"`
	// Aborted reports a tolerated mid-run server death; NextIndex is
	// the index of the first event NOT known to be accepted — resume
	// the stream there (the server's late-event filter deduplicates the
	// overlap if the in-flight batch did land).
	Aborted   bool `json:"aborted"`
	NextIndex int  `json:"next_index"`
	// Terminal is the primary subscription's explicit close frame
	// ("eof", or "dropped: <reason>"); empty when the client closed
	// first (the normal end of a completed run).
	Terminal string `json:"terminal,omitempty"`
	// Endpoints reports the extra per-endpoint subscriptions
	// (Config.ExtraEndpoints), each seq-checked independently.
	Endpoints []EndpointReport `json:"endpoints,omitempty"`
	// Swarm reports the subscriber swarm (Config.Subscribers > 0).
	Swarm *SwarmReport `json:"swarm,omitempty"`
}

// LatencyBucket is one non-empty bucket of the client-side
// ingest-to-emit histogram: Count samples at or below UpperMs.
type LatencyBucket struct {
	UpperMs float64 `json:"upper_ms"`
	Count   int64   `json:"count"`
}

// EndpointReport is one extra endpoint's subscription outcome.
type EndpointReport struct {
	URL      string `json:"url"`
	Results  int64  `json:"results"`
	FirstSeq int64  `json:"first_seq"`
	LastSeq  int64  `json:"last_seq"`
	SeqGaps  int64  `json:"seq_gaps"`
	SeqDups  int64  `json:"seq_dups"`
	// Closed reports the stream ended (or never opened) before the run
	// finished — expected for a worker killed mid-drill. Terminal holds
	// the server's explicit close frame when one arrived ("eof" or
	// "dropped: <reason>"); a Closed stream with no Terminal broke
	// without the server ending it.
	Closed   bool   `json:"closed"`
	Terminal string `json:"terminal,omitempty"`
}

// wireResult is the slice of the result wire format the driver reads.
type wireResult struct {
	Seq int64 `json:"seq"`
	End int64 `json:"end"`
}

// extraSub is one extra endpoint's subscription state.
type extraSub struct {
	url  string
	done chan struct{}

	mu       sync.Mutex
	results  int64
	firstSeq int64
	lastSeq  int64
	prevSeq  int64
	gaps     int64
	dups     int64
	closed   bool
	terminal string
}

// watchEndpoint subscribes to one extra endpoint and seq-checks its
// stream until ctx ends or the stream closes.
func watchEndpoint(ctx context.Context, url string) *extraSub {
	ex := &extraSub{url: url, done: make(chan struct{}), firstSeq: -1, lastSeq: -1, prevSeq: -1}
	go func() {
		defer close(ex.done)
		req, err := http.NewRequestWithContext(ctx, "GET", url+"/subscribe", nil)
		if err != nil {
			ex.mu.Lock()
			ex.closed = true
			ex.mu.Unlock()
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil || resp.StatusCode != http.StatusOK {
			if resp != nil {
				resp.Body.Close()
			}
			ex.mu.Lock()
			ex.closed = true
			ex.mu.Unlock()
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		// Track the SSE event type: terminal frames (event: eof/error)
		// carry data lines too and must not be counted as results.
		evtype := ""
		for sc.Scan() {
			line := sc.Text()
			if line == "" {
				evtype = ""
				continue
			}
			if strings.HasPrefix(line, "event: ") {
				evtype = line[len("event: "):]
				continue
			}
			if evtype != "" {
				// Terminal frames carry the explicit close reason that
				// used to be inferred from connection state.
				if term := terminalFrame(evtype, line); term != "" {
					ex.mu.Lock()
					ex.terminal = term
					ex.mu.Unlock()
				}
				continue
			}
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var wr wireResult
			if json.Unmarshal([]byte(line[len("data: "):]), &wr) != nil {
				continue
			}
			ex.mu.Lock()
			ex.results++
			switch {
			case wr.Seq == ex.prevSeq+1:
				ex.prevSeq = wr.Seq
			case wr.Seq > ex.prevSeq+1:
				if ex.prevSeq >= 0 {
					ex.gaps++
				}
				ex.prevSeq = wr.Seq
			default:
				ex.dups++
			}
			if ex.firstSeq < 0 {
				ex.firstSeq = wr.Seq
			}
			if wr.Seq > ex.lastSeq {
				ex.lastSeq = wr.Seq
			}
			ex.mu.Unlock()
		}
		if ctx.Err() == nil {
			ex.mu.Lock()
			ex.closed = true // stream ended before the run did
			ex.mu.Unlock()
		}
	}()
	return ex
}

func (ex *extraSub) report() EndpointReport {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return EndpointReport{
		URL:      ex.url,
		Results:  ex.results,
		FirstSeq: ex.firstSeq,
		LastSeq:  ex.lastSeq,
		SeqGaps:  ex.gaps,
		SeqDups:  ex.dups,
		Closed:   ex.closed,
		Terminal: ex.terminal,
	}
}

// terminalFrame maps one SSE terminal frame (event type + data line) to
// its report form: "eof", or "dropped: <reason>". Other event types
// (wm, adopted punctuation) are not terminals and map to "".
func terminalFrame(evtype, line string) string {
	if !strings.HasPrefix(line, "data: ") {
		return ""
	}
	switch evtype {
	case "eof":
		return "eof"
	case "dropped":
		var d struct {
			Reason string `json:"reason"`
		}
		_ = json.Unmarshal([]byte(line[len("data: "):]), &d)
		return "dropped: " + d.Reason
	}
	return ""
}

// wireStream is one streaming-ingest connection: batch frames out,
// acks in, over a single long-lived full-duplex POST.
type wireStream struct {
	pw     *io.PipeWriter
	body   io.ReadCloser
	buf    []byte
	ackBuf []byte
}

// dialWireStream opens /ingest/stream and performs the handshake:
// wire header + type-table frame out, 200 headers back.
func dialWireStream(baseURL string, prefix []byte) (*wireStream, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", baseURL+"/ingest/stream", pr)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", server.BatchContentType)
	respc := make(chan *http.Response, 1)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errc <- err
			return
		}
		respc <- resp
	}()
	// The handshake write races Do on purpose: the server reads the
	// wire header from the request body before responding 200.
	if _, err := pw.Write(prefix); err != nil {
		return nil, fmt.Errorf("stream handshake: %w", err)
	}
	select {
	case resp := <-respc:
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			pw.Close()
			return nil, fmt.Errorf("stream: status %d: %s", resp.StatusCode, b)
		}
		return &wireStream{pw: pw, body: resp.Body}, nil
	case err := <-errc:
		return nil, fmt.Errorf("stream: %w", err)
	case <-time.After(10 * time.Second):
		pw.Close()
		return nil, fmt.Errorf("stream: no response headers")
	}
}

// send writes one batch frame and waits for its ack (the ping-pong
// that makes streaming backpressure explicit).
func (s *wireStream) send(events []sharon.Event, wm int64) (server.WireAck, error) {
	s.buf = server.AppendWireBatch(s.buf[:0], events, wm)
	if _, err := s.pw.Write(s.buf); err != nil {
		return server.WireAck{}, err
	}
	body, buf, err := persist.ReadFrame(s.body, 1<<20, s.ackBuf)
	s.ackBuf = buf
	if err != nil {
		return server.WireAck{}, err
	}
	return server.DecodeWireAck(body)
}

func (s *wireStream) Close() {
	s.pw.Close()
	s.body.Close()
}

// Run executes one load run against a serving sharond.
func Run(cfg Config) (Report, error) {
	cfg.fill()
	var rep Report
	rep.FirstSeq, rep.LastSeq = -1, -1
	rep.NextIndex = cfg.StartIndex
	switch cfg.Wire {
	case "ndjson", "binary", "stream":
	default:
		return rep, fmt.Errorf("unknown wire mode %q (want ndjson, binary, or stream)", cfg.Wire)
	}

	var framesFile *os.File
	var framesW *bufio.Writer
	if cfg.FramesPath != "" {
		f, err := os.OpenFile(cfg.FramesPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return rep, err
		}
		framesFile, framesW = f, bufio.NewWriter(f)
		defer framesFile.Close()
	}

	// Subscribe first: results for windows closed mid-run must be
	// observed, not replayed.
	subURL := cfg.BaseURL + "/subscribe"
	if cfg.Resume {
		subURL = fmt.Sprintf("%s?after=%d", subURL, cfg.After)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", subURL, nil)
	if err != nil {
		return rep, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return rep, fmt.Errorf("subscribe: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return rep, fmt.Errorf("subscribe: status %d", resp.StatusCode)
	}
	var mu sync.Mutex
	results := int64(0)
	terminal := ""
	prevSeq := int64(-1)
	if cfg.Resume {
		prevSeq = cfg.After
	}
	firstSeq, lastSeq := int64(-1), int64(-1)
	var gaps, dups int64
	recvAt := make(map[int64]time.Time) // window end -> first result arrival
	subReady := make(chan struct{})
	subDone := make(chan struct{})
	go func() {
		defer close(subDone)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		evtype := ""
		for sc.Scan() {
			line := sc.Text()
			if line == ": subscribed" {
				close(subReady)
				continue
			}
			if line == "" {
				evtype = ""
				continue
			}
			if strings.HasPrefix(line, "event: ") {
				evtype = line[len("event: "):]
				continue
			}
			// Only default-type frames are results; terminal frames
			// (event: eof/dropped) carry data lines that are not — they
			// name the close reason explicitly.
			if evtype != "" {
				if term := terminalFrame(evtype, line); term != "" {
					mu.Lock()
					terminal = term
					mu.Unlock()
				}
				continue
			}
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			payload := line[len("data: "):]
			var wr wireResult
			if json.Unmarshal([]byte(payload), &wr) != nil {
				continue
			}
			now := time.Now()
			mu.Lock()
			results++
			// Seq contiguity check: the server's emission sequence is
			// dense, so any deviation is a lost or duplicated result.
			switch {
			case wr.Seq == prevSeq+1:
				prevSeq = wr.Seq
			case wr.Seq > prevSeq+1:
				if prevSeq >= 0 || cfg.Resume {
					gaps++
				}
				prevSeq = wr.Seq
			default:
				dups++
			}
			if firstSeq < 0 {
				firstSeq = wr.Seq
			}
			if wr.Seq > lastSeq {
				lastSeq = wr.Seq
			}
			if framesW != nil {
				framesW.WriteString(payload)
				framesW.WriteByte('\n')
			}
			if _, ok := recvAt[wr.End]; !ok {
				recvAt[wr.End] = now
			}
			mu.Unlock()
		}
	}()
	select {
	case <-subReady:
	case <-time.After(10 * time.Second):
		return rep, fmt.Errorf("subscription never became ready")
	}

	// Extra endpoints: independent subscriptions, each seq-checked on
	// its own local sequence. Opened after the primary so the primary's
	// failure modes stay unchanged.
	extras := make([]*extraSub, 0, len(cfg.ExtraEndpoints))
	for _, url := range cfg.ExtraEndpoints {
		extras = append(extras, watchEndpoint(ctx, strings.TrimSuffix(url, "/")))
	}

	// Subscriber swarm: N extra broadcast-tier subscriptions ramping up
	// while the send loop runs.
	var sw *swarm
	if cfg.Subscribers > 0 {
		if cfg.SubTransport != "sse" && cfg.SubTransport != "ws" {
			return rep, fmt.Errorf("unknown subscriber transport %q (want sse or ws)", cfg.SubTransport)
		}
		cfg.Progress("starting %d %s swarm subscribers", cfg.Subscribers, cfg.SubTransport)
		sw = startSwarm(ctx, cfg.BaseURL, cfg.Subscribers, cfg.SubTransport)
	}

	// Send loop: stamp each window end when the batch closing it is
	// posted, then POST the batch (retrying 429s). abort marks a
	// tolerated server death.
	sentAt := make(map[int64]time.Time)
	startTick := cfg.streamTick(cfg.StartIndex - 1) // tick before the first event (StartIndex with the steady mapping)
	nextEnd := (startTick/cfg.Slide)*cfg.Slide + cfg.Within
	var buf bytes.Buffer
	// Binary modes accumulate events instead of NDJSON text; the type
	// table lists cfg.Types in order, so event i's local id is simply
	// its cycle position + 1. Both buffers recycle across batches.
	binary := cfg.Wire != "ndjson"
	var (
		events    []sharon.Event
		binPrefix []byte
		binBuf    []byte
		stream    *wireStream
	)
	if binary {
		binPrefix = server.AppendWireTypeTable(server.AppendWireHeader(nil), cfg.Types)
	}
	if cfg.Wire == "stream" {
		s, err := dialWireStream(cfg.BaseURL, binPrefix)
		if err != nil {
			return rep, err
		}
		defer s.Close()
		stream = s
	}
	started := time.Now()
	var lastAccept time.Time
	tick := startTick
	aborted := false
	batchStart := cfg.StartIndex
	// postStream sends the pending batch as one stream frame and waits
	// for the ack: busy acks re-send the frame (the streaming face of a
	// 429), draining and dead connections end a tolerant run.
	postStream := func() error {
		for {
			ack, err := stream.send(events, -1)
			if err != nil {
				if cfg.TolerateAbort {
					aborted = true
					return nil
				}
				return fmt.Errorf("stream: %w", err)
			}
			switch ack.Status {
			case server.WireAckOK:
				rep.Batches++
				lastAccept = time.Now()
				events = events[:0]
				return nil
			case server.WireAckBusy:
				rep.Rejected429++
				time.Sleep(20 * time.Millisecond)
			case server.WireAckDraining:
				if cfg.TolerateAbort {
					aborted = true
					return nil
				}
				return fmt.Errorf("stream: server draining")
			default:
				return fmt.Errorf("stream: ack status %d", ack.Status)
			}
		}
	}
	post := func(maxTime int64) error {
		for nextEnd <= maxTime {
			sentAt[nextEnd] = time.Now()
			nextEnd += cfg.Slide
		}
		if stream != nil {
			return postStream()
		}
		body, contentType := buf.Bytes(), "application/x-ndjson"
		if binary {
			binBuf = append(binBuf[:0], binPrefix...)
			binBuf = server.AppendWireBatch(binBuf, events, -1)
			body, contentType = binBuf, server.BatchContentType
		}
		for {
			r, err := http.Post(cfg.BaseURL+"/ingest", contentType, bytes.NewReader(body))
			if err != nil {
				if cfg.TolerateAbort {
					aborted = true
					return nil
				}
				return err
			}
			r.Body.Close()
			switch r.StatusCode {
			case http.StatusAccepted, http.StatusOK:
				rep.Batches++
				lastAccept = time.Now()
				buf.Reset()
				events = events[:0]
				return nil
			case http.StatusTooManyRequests:
				rep.Rejected429++
				time.Sleep(20 * time.Millisecond)
			case http.StatusServiceUnavailable:
				// Draining or recovering: with abort tolerance this is
				// the end of the run, not an error.
				if cfg.TolerateAbort {
					aborted = true
					return nil
				}
				return fmt.Errorf("ingest: status %d", r.StatusCode)
			default:
				return fmt.Errorf("ingest: status %d", r.StatusCode)
			}
		}
	}
	last := cfg.StartIndex + cfg.Events
	for i := cfg.StartIndex; i < last; i++ {
		tick = cfg.streamTick(i)
		// The key is hash-mixed so it never correlates with the type
		// cycle (a plain i%Groups with Groups divisible by len(Types)
		// would pin each group to one type and match nothing).
		key := (uint64(i) * 0x9E3779B97F4A7C15 >> 33) % uint64(cfg.Groups)
		if binary {
			events = append(events, sharon.Event{
				Time: tick,
				Type: sharon.Type(i%len(cfg.Types) + 1),
				Key:  sharon.GroupKey(key),
				Val:  float64(i%7 + 1),
			})
		} else {
			fmt.Fprintf(&buf, `{"type":%q,"time":%d,"key":%d,"val":%d}`+"\n",
				cfg.Types[i%len(cfg.Types)], tick, key, i%7+1)
		}
		if (i+1-cfg.StartIndex)%cfg.Batch == 0 || i == last-1 {
			if err := post(tick); err != nil {
				return rep, err
			}
			if aborted {
				break
			}
			batchStart = i + 1
			if cfg.RatePerSec > 0 {
				ahead := time.Duration(float64(i+1-cfg.StartIndex)/cfg.RatePerSec*float64(time.Second)) - time.Since(started)
				if ahead > 0 {
					time.Sleep(ahead)
				}
			}
		}
	}
	rep.Aborted = aborted
	rep.NextIndex = batchStart
	rep.Events = int64(batchStart - cfg.StartIndex)
	rep.ElapsedNs = lastAccept.Sub(started).Nanoseconds()
	if rep.ElapsedNs > 0 {
		rep.EventsPerSec = float64(rep.Events) / (float64(rep.ElapsedNs) / 1e9)
	}
	if aborted {
		cfg.Progress("server went away mid-run: %d events accepted in %d batches; resume at index %d",
			rep.Events, rep.Batches, rep.NextIndex)
	} else {
		cfg.Progress("sent %d events in %d batches (%.0f ev/s, %d backpressure retries)",
			rep.Events, rep.Batches, rep.EventsPerSec, rep.Rejected429)
	}

	if !cfg.SkipWatermark && !aborted {
		// Close the tail with a watermark and stamp the remaining ends.
		finalWM := (tick/cfg.Slide)*cfg.Slide + cfg.Within
		for nextEnd <= finalWM {
			sentAt[nextEnd] = time.Now()
			nextEnd += cfg.Slide
		}
		wm, err := http.Post(cfg.BaseURL+"/watermark", "application/json",
			strings.NewReader(fmt.Sprintf(`{"watermark":%d}`, finalWM)))
		if err != nil {
			return rep, err
		}
		wm.Body.Close()
		if wm.StatusCode != http.StatusAccepted {
			return rep, fmt.Errorf("watermark: status %d", wm.StatusCode)
		}
	}

	// Quiesce: wait until the subscription stops receiving. An aborted
	// run waits briefly for frames already in flight, then gives up.
	deadline := time.Now().Add(cfg.QuiesceTimeout)
	if aborted {
		deadline = time.Now().Add(2 * time.Second)
	}
	lastCount, lastChange := int64(-1), time.Now()
	for {
		mu.Lock()
		n := results
		mu.Unlock()
		if n != lastCount {
			lastCount, lastChange = n, time.Now()
		} else if n > 0 && time.Since(lastChange) > cfg.QuiesceStill {
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	<-subDone
	for _, ex := range extras {
		<-ex.done
		rep.Endpoints = append(rep.Endpoints, ex.report())
	}
	if sw != nil {
		r := sw.wait()
		rep.Swarm = &r
		cfg.Progress("swarm: %d/%d connected, %d frames, %d gaps, %d dups (eof %d, dropped slow %d / filtered %d, unexplained %d)",
			r.Connected, r.Subscribers, r.Results, r.SeqGaps, r.SeqDups, r.CleanEOF, r.DroppedSlow, r.DroppedFiltered, r.Unexplained)
	}

	// Every subscriber goroutine has been joined above, but take the
	// lock for the final reads anyway — and release it before the frame
	// flush and progress callback, which do I/O.
	mu.Lock()
	rep.Results = results
	rep.Terminal = terminal
	rep.FirstSeq, rep.LastSeq = firstSeq, lastSeq
	rep.SeqGaps, rep.SeqDups = gaps, dups
	var lat []float64
	for end, at := range recvAt {
		if sent, ok := sentAt[end]; ok {
			lat = append(lat, at.Sub(sent).Seconds()*1000)
		}
	}
	mu.Unlock()
	if framesW != nil {
		if err := framesW.Flush(); err != nil {
			return rep, err
		}
	}
	rep.Windows = int64(len(lat))
	if len(lat) > 0 {
		sort.Float64s(lat)
		pick := func(pm int) float64 { return lat[min(len(lat)-1, len(lat)*pm/1000)] }
		rep.LatencyP50Ms = pick(500)
		rep.LatencyP90Ms = pick(900)
		rep.LatencyP99Ms = pick(990)
		rep.LatencyP999Ms = pick(999)
		rep.LatencyMaxMs = lat[len(lat)-1]
		var h obs.Histogram
		for _, ms := range lat {
			h.Record(int64(ms * 1e6)) // ms -> ns, same unit the server stages use
		}
		for _, b := range h.Snapshot().Buckets {
			rep.LatencyBuckets = append(rep.LatencyBuckets, LatencyBucket{
				UpperMs: float64(b.Upper) / 1e6,
				Count:   b.Count,
			})
		}
	}
	cfg.Progress("received %d results over %d windows, seq [%d, %d], %d gaps, %d dups (p50 %.2fms, p99 %.2fms ingest-to-emit)",
		rep.Results, rep.Windows, rep.FirstSeq, rep.LastSeq, rep.SeqGaps, rep.SeqDups, rep.LatencyP50Ms, rep.LatencyP99Ms)
	return rep, nil
}
