// Package loadgen drives a sharond server over loopback (or any
// network) and measures end-to-end serving performance: sustained
// ingest throughput and the ingest-to-emit latency between posting the
// batch that closes a window and receiving that window's first result
// on a subscription. cmd/sharon-load and the sharon-bench "server"
// experiment share this driver.
package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Config parameterizes one load run. The generated stream cycles
// through Types with one tick between events and keys cycling over
// Groups (coprime cycles exercise every (group, type) pair).
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Events is the number of events to send.
	Events int
	// Batch is the events-per-POST batch size (default 512).
	Batch int
	// Groups is the number of distinct group keys (default 16).
	Groups int
	// Types is the event type cycle (default A, B, C, D — matching
	// sharond's default workload).
	Types []string
	// Within and Slide are the served workload's window parameters in
	// ticks (default 4000/1000); the driver needs them to know which
	// batch closes which window for the latency measurement.
	Within, Slide int64
	// QuiesceTimeout bounds the wait for in-flight results after the
	// final watermark (default 30s).
	QuiesceTimeout time.Duration
	// Progress receives per-phase log lines; nil discards them.
	Progress func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Batch <= 0 {
		c.Batch = 512
	}
	if c.Groups <= 0 {
		c.Groups = 16
	}
	if len(c.Types) == 0 {
		c.Types = []string{"A", "B", "C", "D"}
	}
	if c.Within <= 0 {
		c.Within = 4000
	}
	if c.Slide <= 0 {
		c.Slide = 1000
	}
	if c.QuiesceTimeout <= 0 {
		c.QuiesceTimeout = 30 * time.Second
	}
	if c.Progress == nil {
		c.Progress = func(string, ...any) {}
	}
}

// Report is the outcome of one load run.
type Report struct {
	// Events/Batches are the accepted totals; Rejected429 counts
	// backpressure refusals (each retried until accepted).
	Events      int64 `json:"events"`
	Batches     int64 `json:"batches"`
	Rejected429 int64 `json:"rejected_429"`
	// ElapsedNs spans first POST to last accepted POST; EventsPerSec is
	// the sustained ingest throughput over it.
	ElapsedNs    int64   `json:"elapsed_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Results is the number of pushed results the subscription
	// received; Windows the number of distinct window ends among them.
	Results int64 `json:"results"`
	Windows int64 `json:"windows"`
	// LatencyP50Ms/P99Ms summarize ingest-to-emit latency: from posting
	// the batch (or watermark) that closes a window to receiving that
	// window's first result.
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
}

// wireEnd is the slice of the result wire format the driver reads.
type wireEnd struct {
	End int64 `json:"end"`
}

// Run executes one load run against a serving sharond.
func Run(cfg Config) (Report, error) {
	cfg.fill()
	var rep Report

	// Subscribe first: results for windows closed mid-run must be
	// observed, not replayed.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", cfg.BaseURL+"/subscribe", nil)
	if err != nil {
		return rep, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return rep, fmt.Errorf("subscribe: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return rep, fmt.Errorf("subscribe: status %d", resp.StatusCode)
	}
	var mu sync.Mutex
	results := int64(0)
	recvAt := make(map[int64]time.Time) // window end -> first result arrival
	subReady := make(chan struct{})
	subDone := make(chan struct{})
	go func() {
		defer close(subDone)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if line == ": subscribed" {
				close(subReady)
				continue
			}
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var we wireEnd
			if json.Unmarshal([]byte(line[len("data: "):]), &we) != nil {
				continue
			}
			now := time.Now()
			mu.Lock()
			results++
			if _, ok := recvAt[we.End]; !ok {
				recvAt[we.End] = now
			}
			mu.Unlock()
		}
	}()
	select {
	case <-subReady:
	case <-time.After(10 * time.Second):
		return rep, fmt.Errorf("subscription never became ready")
	}

	// Send loop: stamp each window end when the batch closing it is
	// posted, then POST the batch (retrying 429s).
	sentAt := make(map[int64]time.Time)
	nextEnd := cfg.Within // first window's end
	var buf bytes.Buffer
	started := time.Now()
	var lastAccept time.Time
	tick := int64(0)
	post := func(maxTime int64) error {
		for nextEnd <= maxTime {
			sentAt[nextEnd] = time.Now()
			nextEnd += cfg.Slide
		}
		for {
			r, err := http.Post(cfg.BaseURL+"/ingest", "application/x-ndjson", bytes.NewReader(buf.Bytes()))
			if err != nil {
				return err
			}
			r.Body.Close()
			switch r.StatusCode {
			case http.StatusAccepted, http.StatusOK:
				rep.Batches++
				lastAccept = time.Now()
				buf.Reset()
				return nil
			case http.StatusTooManyRequests:
				rep.Rejected429++
				time.Sleep(20 * time.Millisecond)
			default:
				return fmt.Errorf("ingest: status %d", r.StatusCode)
			}
		}
	}
	for i := 0; i < cfg.Events; i++ {
		tick++
		// The key is hash-mixed so it never correlates with the type
		// cycle (a plain i%Groups with Groups divisible by len(Types)
		// would pin each group to one type and match nothing).
		key := (uint64(i) * 0x9E3779B97F4A7C15 >> 33) % uint64(cfg.Groups)
		fmt.Fprintf(&buf, `{"type":%q,"time":%d,"key":%d,"val":%d}`+"\n",
			cfg.Types[i%len(cfg.Types)], tick, key, i%7+1)
		if (i+1)%cfg.Batch == 0 || i == cfg.Events-1 {
			if err := post(tick); err != nil {
				return rep, err
			}
		}
	}
	rep.Events = int64(cfg.Events)
	rep.ElapsedNs = lastAccept.Sub(started).Nanoseconds()
	if rep.ElapsedNs > 0 {
		rep.EventsPerSec = float64(rep.Events) / (float64(rep.ElapsedNs) / 1e9)
	}
	cfg.Progress("sent %d events in %d batches (%.0f ev/s, %d backpressure retries)",
		rep.Events, rep.Batches, rep.EventsPerSec, rep.Rejected429)

	// Close the tail with a watermark and stamp the remaining ends.
	finalWM := (tick/cfg.Slide)*cfg.Slide + cfg.Within
	for nextEnd <= finalWM {
		sentAt[nextEnd] = time.Now()
		nextEnd += cfg.Slide
	}
	wm, err := http.Post(cfg.BaseURL+"/watermark", "application/json",
		strings.NewReader(fmt.Sprintf(`{"watermark":%d}`, finalWM)))
	if err != nil {
		return rep, err
	}
	wm.Body.Close()
	if wm.StatusCode != http.StatusAccepted {
		return rep, fmt.Errorf("watermark: status %d", wm.StatusCode)
	}

	// Quiesce: wait until the subscription stops receiving.
	deadline := time.Now().Add(cfg.QuiesceTimeout)
	lastCount, lastChange := int64(-1), time.Now()
	for {
		mu.Lock()
		n := results
		mu.Unlock()
		if n != lastCount {
			lastCount, lastChange = n, time.Now()
		} else if n > 0 && time.Since(lastChange) > 500*time.Millisecond {
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	<-subDone

	mu.Lock()
	defer mu.Unlock()
	rep.Results = results
	var lat []float64
	for end, at := range recvAt {
		if sent, ok := sentAt[end]; ok {
			lat = append(lat, at.Sub(sent).Seconds()*1000)
		}
	}
	rep.Windows = int64(len(lat))
	if len(lat) > 0 {
		sort.Float64s(lat)
		rep.LatencyP50Ms = lat[len(lat)/2]
		rep.LatencyP99Ms = lat[min(len(lat)-1, len(lat)*99/100)]
	}
	cfg.Progress("received %d results over %d windows (p50 %.2fms, p99 %.2fms ingest-to-emit)",
		rep.Results, rep.Windows, rep.LatencyP50Ms, rep.LatencyP99Ms)
	return rep, nil
}
