package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"github.com/sharon-project/sharon/internal/metrics"
	"github.com/sharon-project/sharon/internal/obs"
)

// WatchConfig parameterizes a live metrics ticker (Watch).
type WatchConfig struct {
	// BaseURL is the server or router to watch.
	BaseURL string
	// Format selects the scrape wire format: "json" (default) or
	// "prometheus" — both views must tell the same story, and watching
	// in each is how the loadgen cross-checks that.
	Format string
	// Every is the scrape interval (default 1s).
	Every time.Duration
	// Out receives the ticker lines (default os.Stderr).
	Out io.Writer
	// Client overrides the HTTP client (default: 2s timeout).
	Client *http.Client
}

// Watch scrapes BaseURL/metrics every interval until ctx ends,
// printing a one-line live ticker: ingest rate since the previous
// tick, queue occupancy, and the p99 ingest-to-emit latency (the
// emit stage server-side; the forward stage on a router, which has no
// emit stage of its own). Scrape errors print and keep ticking — a
// watch must survive the server restarting under it.
func Watch(ctx context.Context, cfg WatchConfig) error {
	if cfg.Every <= 0 {
		cfg.Every = time.Second
	}
	if cfg.Out == nil {
		cfg.Out = os.Stderr
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 2 * time.Second}
	}
	if cfg.Format == "" {
		cfg.Format = "json"
	}
	t := time.NewTicker(cfg.Every)
	defer t.Stop()
	var (
		prevIngested int64
		prevAt       time.Time
		first        = true
	)
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
		s, err := scrapeOnce(cfg)
		now := time.Now()
		if err != nil {
			fmt.Fprintf(cfg.Out, "watch: %v\n", err)
			first = true
			continue
		}
		if first {
			prevIngested, prevAt, first = s.ingested, now, false
			continue
		}
		rate := float64(s.ingested-prevIngested) / now.Sub(prevAt).Seconds()
		prevIngested, prevAt = s.ingested, now
		fmt.Fprintf(cfg.Out, "%s %9.0f ev/s  queue %d/%d  p99 %s %.2fms\n",
			now.Format("15:04:05"), rate, s.queueDepth, s.queueCap, s.p99Stage, s.p99Ms)
	}
}

// watchSample is one scrape, normalized across format and tier.
type watchSample struct {
	ingested   int64
	queueDepth int64
	queueCap   int64
	p99Stage   string
	p99Ms      float64
}

func scrapeOnce(cfg WatchConfig) (watchSample, error) {
	switch cfg.Format {
	case "json":
		return scrapeJSON(cfg)
	case "prometheus", "prom":
		return scrapeProm(cfg)
	default:
		return watchSample{}, fmt.Errorf("unknown watch format %q (json | prometheus)", cfg.Format)
	}
}

func scrapeJSON(cfg WatchConfig) (watchSample, error) {
	resp, err := cfg.Client.Get(cfg.BaseURL + "/metrics")
	if err != nil {
		return watchSample{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return watchSample{}, fmt.Errorf("metrics status %d", resp.StatusCode)
	}
	// ServerStats and RouterStats share the field names the ticker
	// needs, so one decode covers both tiers.
	var st metrics.ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return watchSample{}, err
	}
	s := watchSample{
		ingested:   st.EventsIngested,
		queueDepth: int64(st.IngestQueueDepth),
		queueCap:   int64(st.IngestQueueCap),
	}
	for _, stage := range []string{"emit", "forward"} {
		if sum, ok := st.Stages[stage]; ok && sum.Count > 0 {
			s.p99Stage, s.p99Ms = stage, sum.P99
			break
		}
	}
	if s.p99Stage == "" {
		s.p99Stage = "emit"
	}
	return s, nil
}

func scrapeProm(cfg WatchConfig) (watchSample, error) {
	resp, err := cfg.Client.Get(cfg.BaseURL + "/metrics?format=prometheus")
	if err != nil {
		return watchSample{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return watchSample{}, fmt.Errorf("metrics status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return watchSample{}, err
	}
	samples, err := obs.ParseProm(data)
	if err != nil {
		return watchSample{}, err
	}
	var s watchSample
	pick := func(names ...string) float64 {
		for _, n := range names {
			if v, ok := obs.FindSample(samples, n, nil); ok {
				return v
			}
		}
		return 0
	}
	s.ingested = int64(pick("sharon_events_ingested_total", "sharon_router_events_ingested_total"))
	s.queueDepth = int64(pick("sharon_ingest_queue_depth", "sharon_router_ingest_queue_depth"))
	s.queueCap = int64(pick("sharon_ingest_queue_cap", "sharon_router_ingest_queue_cap"))
	s.p99Stage = "emit"
	if v, ok := obs.HistogramQuantile(samples, "sharon_stage_latency_seconds", 0.99, map[string]string{"stage": "emit"}); ok {
		s.p99Ms = v * 1e3
	} else if v, ok := obs.HistogramQuantile(samples, "sharon_router_stage_latency_seconds", 0.99, map[string]string{"stage": "forward"}); ok {
		s.p99Stage, s.p99Ms = "forward", v*1e3
	}
	return s, nil
}
