package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	sharon "github.com/sharon-project/sharon"
	"github.com/sharon-project/sharon/internal/server"
)

// The cluster acceptance property: a router over N workers emits a
// result stream byte-identical to a single sharond over the same input
// — same payloads, same order, same sequence numbers — including
// across a worker kill + rebalance and across membership changes.

// testNode is one in-process sharond with its HTTP front.
type testNode struct {
	srv  *server.Server
	hs   *httptest.Server
	dir  string
	dead bool
}

func startNode(t *testing.T, parallelism int, dir string) *testNode {
	t.Helper()
	cfg := server.Config{
		Queries:         server.DefaultQueries,
		Parallelism:     parallelism,
		DataDir:         dir,
		CheckpointEvery: 500 * time.Millisecond,
		HeartbeatEvery:  time.Hour,
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	n := &testNode{srv: s, hs: httptest.NewServer(s.Handler()), dir: dir}
	t.Cleanup(func() {
		if !n.dead {
			n.kill(t)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	// Durable nodes report recovering until the (empty) WAL replays.
	waitFor(t, "node ready", func() bool {
		resp, err := http.Get(n.hs.URL + "/healthz")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
	return n
}

// kill severs the node's HTTP front abruptly — the in-process stand-in
// for kill -9: in-flight connections die, the WAL keeps its tail, no
// final checkpoint is written (the pump is simply never drained before
// the router reads the durable state).
func (n *testNode) kill(t *testing.T) {
	t.Helper()
	if n.dead {
		return
	}
	n.dead = true
	n.hs.CloseClientConnections()
	n.hs.Close()
}

func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// collector subscribes to a result stream and retains the payload lines.
type collector struct {
	mu     sync.Mutex
	lines  []string
	closed bool
	cancel context.CancelFunc
}

func subscribe(t *testing.T, baseURL string) *collector {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	c := &collector{cancel: cancel}
	req, err := http.NewRequestWithContext(ctx, "GET", baseURL+"/subscribe", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("subscribe %s: %v", baseURL, err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("subscribe %s: status %d", baseURL, resp.StatusCode)
	}
	ready := make(chan struct{})
	go func() {
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if line == ": subscribed" {
				close(ready)
				continue
			}
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			c.mu.Lock()
			c.lines = append(c.lines, line[len("data: "):])
			c.mu.Unlock()
		}
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
	}()
	select {
	case <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("subscription never ready")
	}
	t.Cleanup(cancel)
	return c
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.lines)
}

func (c *collector) all() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.lines...)
}

// genEvents renders the loadgen event stream (hash-mixed keys over the
// default A..D cycle) as NDJSON batches.
func genBatches(events, batch, groups int) [][]byte {
	var out [][]byte
	var buf bytes.Buffer
	types := []string{"A", "B", "C", "D"}
	for i := 0; i < events; i++ {
		key := (uint64(i) * 0x9E3779B97F4A7C15 >> 33) % uint64(groups)
		fmt.Fprintf(&buf, `{"type":%q,"time":%d,"key":%d,"val":%d}`+"\n", types[i%4], i+1, key, i%7+1)
		if (i+1)%batch == 0 || i == events-1 {
			out = append(out, append([]byte(nil), buf.Bytes()...))
			buf.Reset()
		}
	}
	return out
}

func post(t *testing.T, url string, body []byte) int {
	t.Helper()
	for {
		resp, err := http.Post(url+"/ingest", "application/x-ndjson", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("ingest %s: %v", url, err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusOK:
			return resp.StatusCode
		case http.StatusTooManyRequests:
			time.Sleep(10 * time.Millisecond)
		default:
			t.Fatalf("ingest %s: status %d", url, resp.StatusCode)
		}
	}
}

func postWatermark(t *testing.T, url string, wm int64) {
	t.Helper()
	resp, err := http.Post(url+"/watermark", "application/json",
		strings.NewReader(fmt.Sprintf(`{"watermark":%d}`, wm)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("watermark: status %d", resp.StatusCode)
	}
}

// quiesce waits until a collector stops growing.
func quiesce(t *testing.T, c *collector, atLeast int) {
	t.Helper()
	waitFor(t, "results", func() bool { return c.count() >= atLeast })
	last, lastChange := c.count(), time.Now()
	deadline := time.Now().Add(15 * time.Second)
	for {
		time.Sleep(50 * time.Millisecond)
		if n := c.count(); n != last {
			last, lastChange = n, time.Now()
		} else if time.Since(lastChange) > 400*time.Millisecond {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream never quiesced (at %d results)", c.count())
		}
	}
}

func startRouter(t *testing.T, nodes []*testNode) (*Router, *httptest.Server) {
	t.Helper()
	specs := make([]WorkerSpec, len(nodes))
	for i, n := range nodes {
		specs[i] = WorkerSpec{URL: n.hs.URL, DataDir: n.dir}
	}
	rt, err := New(Config{
		Workers:        specs,
		Queries:        server.DefaultQueries,
		HealthEvery:    100 * time.Millisecond,
		BarrierTimeout: 15 * time.Second,
		HeartbeatEvery: time.Hour,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	hs := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = rt.Drain(ctx)
	})
	return rt, hs
}

func compareStreams(t *testing.T, want, got []string, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: single node emitted %d results, cluster %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: stream diverges at result %d:\n  single:  %s\n  cluster: %s", label, i, want[i], got[i])
		}
	}
	if len(want) == 0 {
		t.Fatalf("%s: no results at all", label)
	}
}

// runEquivalence drives the same generated stream into a single node
// and a router over `workers` nodes, optionally killing one mid-stream,
// and requires byte-identical result streams.
func runEquivalence(t *testing.T, parallelism int, killMid bool) {
	const events, batch, groups = 30000, 512, 16

	ref := startNode(t, parallelism, t.TempDir())
	refSub := subscribe(t, ref.hs.URL)

	nodes := []*testNode{
		startNode(t, parallelism, t.TempDir()),
		startNode(t, parallelism, t.TempDir()),
		startNode(t, parallelism, t.TempDir()),
	}
	_, rthttp := startRouter(t, nodes)
	cluSub := subscribe(t, rthttp.URL)

	batches := genBatches(events, batch, groups)
	killAt := len(batches) / 3
	for i, b := range batches {
		post(t, ref.hs.URL, b)
		if killMid && i == killAt {
			nodes[1].kill(t)
		}
		post(t, rthttp.URL, b)
	}
	finalWM := int64(events) + 4000
	postWatermark(t, ref.hs.URL, finalWM)
	postWatermark(t, rthttp.URL, finalWM)

	quiesce(t, refSub, 1)
	want := refSub.all()
	quiesce(t, cluSub, len(want))
	compareStreams(t, want, cluSub.all(), fmt.Sprintf("parallelism=%d kill=%v", parallelism, killMid))

	if killMid {
		resp, err := http.Get(rthttp.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Rebalances int64 `json:"rebalances"`
			Workers    []struct {
				ID string `json:"id"`
			} `json:"workers"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Rebalances != 1 {
			t.Fatalf("rebalances = %d, want 1", st.Rebalances)
		}
		if len(st.Workers) != 2 {
			t.Fatalf("surviving workers = %d, want 2", len(st.Workers))
		}
	}
}

func TestClusterEquivalenceSequential(t *testing.T) {
	runEquivalence(t, 1, false)
}

func TestClusterEquivalenceParallel(t *testing.T) {
	runEquivalence(t, 2, false)
}

func TestClusterKillRebalanceSequential(t *testing.T) {
	runEquivalence(t, 1, true)
}

// muteLane makes the router lose every further frame from one worker —
// results, punctuation, markers — as if they died in the socket buffer,
// while the worker itself keeps applying, emitting, and checkpointing.
func muteLane(t *testing.T, rt *Router, id string) {
	t.Helper()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ln := rt.lanes[id]
	if ln == nil {
		t.Fatal("no lane to mute")
	}
	ln.mute.Store(true)
	t.Logf("muted lane %s at frontier %d", id, ln.frontier)
}

// TestClusterKillWithLostPunctuation kills a worker whose last frames
// never reached the router: several batches are applied and
// checkpointed at the worker after the router stops hearing from it, so
// the checkpoint sits AHEAD of the router's frontier W_p. Recovery must
// bridge (W_p, C] from the checkpoint's emission ring (the temp-engine
// replay can only regenerate past C) — the merged stream must still be
// byte-identical.
func TestClusterKillWithLostPunctuation(t *testing.T) {
	const events, batch, groups = 30000, 512, 16

	ref := startNode(t, 1, t.TempDir())
	refSub := subscribe(t, ref.hs.URL)

	nodes := []*testNode{
		startNode(t, 1, t.TempDir()),
		startNode(t, 1, t.TempDir()),
		startNode(t, 1, t.TempDir()),
	}
	rt, rthttp := startRouter(t, nodes)
	cluSub := subscribe(t, rthttp.URL)

	batches := genBatches(events, batch, groups)
	muteAt := len(batches) / 2
	ckptAt := muteAt + 4 // a mid-mute step must trigger the checkpoint:
	// the pump only cuts checkpoints while applying, so the timer has to
	// expire before a muted batch is applied for C to land past W_p
	killAt := muteAt + 6
	for i, b := range batches {
		post(t, ref.hs.URL, b)
		switch i {
		case muteAt:
			muteLane(t, rt, nodes[1].hs.URL)
		case ckptAt:
			time.Sleep(700 * time.Millisecond) // > CheckpointEvery (500ms)
		case killAt:
			nodes[1].kill(t)
		}
		post(t, rthttp.URL, b)
	}
	finalWM := int64(events) + 4000
	postWatermark(t, ref.hs.URL, finalWM)
	postWatermark(t, rthttp.URL, finalWM)

	quiesce(t, refSub, 1)
	want := refSub.all()
	quiesce(t, cluSub, len(want))
	compareStreams(t, want, cluSub.all(), "lost-punctuation kill")
}

func TestClusterKillRebalanceParallel(t *testing.T) {
	runEquivalence(t, 2, true)
}

// TestClusterJoinLeaveEquivalence exercises the live extract/adopt
// path: a worker joins mid-stream (ranges cut out of the incumbents),
// another leaves gracefully later, and the merged stream still matches
// the single node byte-for-byte.
func TestClusterJoinLeaveEquivalence(t *testing.T) {
	const events, batch, groups = 24000, 512, 16

	ref := startNode(t, 1, t.TempDir())
	refSub := subscribe(t, ref.hs.URL)

	nodes := []*testNode{
		startNode(t, 1, t.TempDir()),
		startNode(t, 1, t.TempDir()),
	}
	// Before the router: cleanups run LIFO, and the router must drain
	// before its workers start dying under it.
	joiner := startNode(t, 1, t.TempDir())
	_, rthttp := startRouter(t, nodes)
	cluSub := subscribe(t, rthttp.URL)

	batches := genBatches(events, batch, groups)
	joinAt, leaveAt := len(batches)/3, 2*len(batches)/3
	for i, b := range batches {
		post(t, ref.hs.URL, b)
		post(t, rthttp.URL, b)
		switch i {
		case joinAt:
			body, _ := json.Marshal(WorkerSpec{URL: joiner.hs.URL, DataDir: joiner.dir})
			resp, err := http.Post(rthttp.URL+"/cluster/workers", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			reply, _ := json.Marshal(resp.Header)
			if resp.StatusCode != http.StatusOK {
				var msg map[string]any
				json.NewDecoder(resp.Body).Decode(&msg)
				t.Fatalf("join: status %d (%v, %s)", resp.StatusCode, msg, reply)
			}
			resp.Body.Close()
		case leaveAt:
			req, _ := http.NewRequest("DELETE", rthttp.URL+"/cluster/workers?url="+nodes[0].hs.URL, nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				var msg map[string]any
				json.NewDecoder(resp.Body).Decode(&msg)
				t.Fatalf("leave: status %d (%v)", resp.StatusCode, msg)
			}
			resp.Body.Close()
		}
	}
	finalWM := int64(events) + 4000
	postWatermark(t, ref.hs.URL, finalWM)
	postWatermark(t, rthttp.URL, finalWM)

	quiesce(t, refSub, 1)
	want := refSub.all()
	quiesce(t, cluSub, len(want))
	compareStreams(t, want, cluSub.all(), "join+leave")
}

// genBinBatches renders the same generated stream as genBatches, but as
// one-shot binary ingest bodies (header + type table + one batch frame).
func genBinBatches(events, batch, groups int) [][]byte {
	names := []string{"A", "B", "C", "D"}
	var out [][]byte
	var evs []sharon.Event
	for i := 0; i < events; i++ {
		key := (uint64(i) * 0x9E3779B97F4A7C15 >> 33) % uint64(groups)
		evs = append(evs, sharon.Event{
			Time: int64(i) + 1,
			Type: sharon.Type(i%4 + 1),
			Key:  sharon.GroupKey(key),
			Val:  float64(i%7 + 1),
		})
		if (i+1)%batch == 0 || i == events-1 {
			body := server.AppendWireTypeTable(server.AppendWireHeader(nil), names)
			out = append(out, server.AppendWireBatch(body, evs, -1))
			evs = nil
		}
	}
	return out
}

func postBinary(t *testing.T, url string, body []byte) {
	t.Helper()
	for {
		resp, err := http.Post(url+"/ingest", server.BatchContentType, bytes.NewReader(body))
		if err != nil {
			t.Fatalf("ingest %s: %v", url, err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusOK:
			return
		case http.StatusTooManyRequests:
			time.Sleep(10 * time.Millisecond)
		default:
			t.Fatalf("ingest %s: status %d", url, resp.StatusCode)
		}
	}
}

// TestClusterBinaryIngestEquivalence drives the same generated stream
// into a single node as NDJSON and into a router as one-shot binary
// bodies (which the router also forwards to its workers in the binary
// codec), and requires byte-identical result streams — the cluster half
// of the codec-equivalence property.
func TestClusterBinaryIngestEquivalence(t *testing.T) {
	const events, batch, groups = 20000, 512, 16

	ref := startNode(t, 1, t.TempDir())
	refSub := subscribe(t, ref.hs.URL)

	nodes := []*testNode{
		startNode(t, 1, t.TempDir()),
		startNode(t, 1, t.TempDir()),
		startNode(t, 1, t.TempDir()),
	}
	_, rthttp := startRouter(t, nodes)
	cluSub := subscribe(t, rthttp.URL)

	for _, b := range genBatches(events, batch, groups) {
		post(t, ref.hs.URL, b)
	}
	for _, b := range genBinBatches(events, batch, groups) {
		postBinary(t, rthttp.URL, b)
	}
	finalWM := int64(events) + 4000
	postWatermark(t, ref.hs.URL, finalWM)
	postWatermark(t, rthttp.URL, finalWM)

	quiesce(t, refSub, 1)
	want := refSub.all()
	quiesce(t, cluSub, len(want))
	compareStreams(t, want, cluSub.all(), "binary ingest")
}
