package cluster

import (
	"net/http"
	"time"
)

// Elastic membership: the router watches the same per-worker occupancy
// gauge it already exposes on /metrics (groups_live, refreshed by the
// health loop) and drives the existing checkpoint-handoff join/leave
// machinery when occupancy crosses the configured band. No new
// rebalance path exists — an autoscale operation is byte-for-byte the
// ctl a POST/DELETE on /cluster/workers would have injected, so every
// invariant the manual path enforces (fresh-worker check, barrier,
// extract-then-install ordering) holds for the automatic one.
//
// Scale-out joins a worker from the standby pool: pre-provisioned,
// running, and empty — join refuses stateful workers, so the pool must
// hold fresh ones. Scale-in drains the least-occupied worker; the
// drained worker keeps its (now-empty-but-initialized) data dir and is
// NOT returned to the pool, since a rejoin would need a fresh dir.

// autoscaleLoop evaluates the occupancy band every AutoScaleEvery until
// the pump exits. Disabled unless a band edge is configured.
func (r *Router) autoscaleLoop() {
	if r.cfg.OccupancyHigh <= 0 && r.cfg.OccupancyLow <= 0 {
		return
	}
	t := time.NewTicker(r.cfg.AutoScaleEvery)
	defer t.Stop()
	for {
		select {
		case <-r.pumpDone:
			return
		case <-t.C:
		}
		r.autoscaleTick()
	}
}

func (r *Router) autoscaleTick() {
	if r.failed() != "" {
		return
	}
	if time.Since(time.Unix(0, r.lastAuto.Load())) < r.cfg.AutoScaleCooldown {
		return
	}

	r.mu.Lock()
	var maxG, minG int64 = -1, -1
	var minID string
	members := len(r.lanes)
	healthyAll := members > 0
	for id, ln := range r.lanes {
		if !ln.healthy.Load() {
			healthyAll = false
			continue
		}
		g := ln.groups.Load()
		if g > maxG {
			maxG = g
		}
		if minG < 0 || g < minG {
			minG, minID = g, id
		}
	}
	var spec *WorkerSpec
	if r.cfg.OccupancyHigh > 0 && maxG > r.cfg.OccupancyHigh && len(r.standby) > 0 {
		s := r.standby[0]
		r.standby = r.standby[1:]
		spec = &s
	}
	r.mu.Unlock()

	switch {
	case spec != nil:
		r.lastAuto.Store(time.Now().UnixNano())
		r.log.Info("autoscale: occupancy above band, joining standby worker",
			"max_groups", maxG, "band_high", r.cfg.OccupancyHigh, "worker", spec.URL)
		if r.runCtl(&routerCtl{join: spec}) {
			r.autoOut.Add(1)
		} else {
			r.autoScaleFail.Add(1)
			r.mu.Lock()
			r.standby = append(r.standby, *spec)
			r.mu.Unlock()
		}
	case r.cfg.OccupancyLow > 0 && healthyAll && members > 1 && maxG >= 0 && maxG < r.cfg.OccupancyLow:
		r.lastAuto.Store(time.Now().UnixNano())
		r.log.Info("autoscale: occupancy below band, draining least-occupied worker",
			"max_groups", maxG, "band_low", r.cfg.OccupancyLow, "worker", minID)
		if r.runCtl(&routerCtl{leave: minID}) {
			r.autoIn.Add(1)
		} else {
			r.autoScaleFail.Add(1)
		}
	}
}

// runCtl submits a membership change through the pump — the autoscale
// twin of sendCtl, with no HTTP client waiting on the outcome. The
// enqueue is non-blocking: a saturated ingest queue means the cluster
// is busy, and the band will still be crossed at the next tick.
func (r *Router) runCtl(ctl *routerCtl) bool {
	ctl.reply = make(chan ctlResult, 1)
	select {
	case r.ingest <- routerMsg{ctl: ctl}:
	default:
		return false
	}
	select {
	case res := <-ctl.reply:
		return res.status == http.StatusOK
	case <-r.pumpDone:
		return false
	case <-time.After(2 * time.Minute):
		return false
	}
}
