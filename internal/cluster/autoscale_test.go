package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/sharon-project/sharon/internal/metrics"
	"github.com/sharon-project/sharon/internal/server"
)

func routerMetrics(t *testing.T, baseURL string) metrics.RouterStats {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st metrics.RouterStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestAutoScaleBand drives the elastic-membership loop end to end with
// no manual /cluster/workers call anywhere: an idle two-worker cluster
// scales itself in (all occupancy gauges below the low edge), the
// surviving worker's occupancy then crosses the high edge under load
// and the router joins the pre-provisioned standby on its own — and
// the merged result stream stays byte-identical to a single node fed
// the same input through both automatic rebalances.
func TestAutoScaleBand(t *testing.T) {
	const events, batch, groups = 16000, 512, 16

	ref := startNode(t, 1, t.TempDir())
	refSub := subscribe(t, ref.hs.URL)

	nodes := []*testNode{
		startNode(t, 1, t.TempDir()),
		startNode(t, 1, t.TempDir()),
	}
	standby := startNode(t, 1, t.TempDir())
	specs := make([]WorkerSpec, len(nodes))
	for i, n := range nodes {
		specs[i] = WorkerSpec{URL: n.hs.URL, DataDir: n.dir}
	}
	rt, err := New(Config{
		Workers:           specs,
		Queries:           server.DefaultQueries,
		HealthEvery:       50 * time.Millisecond,
		BarrierTimeout:    15 * time.Second,
		HeartbeatEvery:    time.Hour,
		Standby:           []WorkerSpec{{URL: standby.hs.URL, DataDir: standby.dir}},
		OccupancyHigh:     4,
		OccupancyLow:      1,
		AutoScaleEvery:    50 * time.Millisecond,
		AutoScaleCooldown: 200 * time.Millisecond,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	hs := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = rt.Drain(ctx)
	})
	cluSub := subscribe(t, hs.URL)

	// Idle: every gauge sits at 0, below the low edge — the router must
	// drain one worker by itself (and stop there: scale-in never empties
	// the cluster below one member).
	waitFor(t, "idle scale-in", func() bool {
		st := routerMetrics(t, hs.URL)
		return st.AutoScaleIn >= 1 && len(st.Workers) == 1
	})

	// Load: ~16 live groups on the lone member crosses the high edge
	// (4); the router must join the standby with a full hash-range
	// hand-off, no POST /cluster/workers anywhere.
	for _, b := range genBatches(events, batch, groups) {
		post(t, hs.URL, b)
		post(t, ref.hs.URL, b)
	}
	waitFor(t, "loaded scale-out", func() bool {
		st := routerMetrics(t, hs.URL)
		return st.AutoScaleOut >= 1 && len(st.Workers) == 2 && st.StandbyWorkers == 0
	})
	st := routerMetrics(t, hs.URL)
	if st.Rebalances < 2 {
		t.Fatalf("rebalances = %d, want >= 2 (one per automatic membership change)", st.Rebalances)
	}
	if st.Error != "" {
		t.Fatalf("cluster error state: %s", st.Error)
	}

	// Equivalence across both automatic rebalances.
	finalWM := int64(events) + 4000
	postWatermark(t, hs.URL, finalWM)
	postWatermark(t, ref.hs.URL, finalWM)
	quiesce(t, refSub, 1)
	want := refSub.all()
	quiesce(t, cluSub, len(want))
	compareStreams(t, want, cluSub.all(), "autoscale")
}
