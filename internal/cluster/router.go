// Package cluster implements the sharond cluster tier: a router that
// consistent-hash-partitions a grouped event stream across N durable
// sharond workers and merges their result streams back into the exact
// deterministic (window end, query, group) order a single node emits —
// byte-identical output, horizontally sharded state.
//
// Data plane: each accepted ingest batch is late-filtered and split by
// group key over the consistent-hash ring (internal/chash); every
// worker receives its slice plus the batch's closing watermark, so all
// workers advance in lock-step and close the same windows a single node
// would. The router subscribes to each worker's punctuated SSE stream
// (?punctuate=1): workers mark "every result for windows ending <= W
// has been sent" after each applied step, the router's merge frontier
// is the minimum marker across workers, and buffered results at or
// below the frontier are emitted downstream in the canonical order with
// router-assigned sequence numbers.
//
// Failure plane: the router retains, per worker, the forwarded steps
// newer than that worker's frontier (the hand-off delta, pruned as
// punctuation advances). When a worker dies, the router drains the
// survivors to the current watermark, rebuilds the dead worker's groups
// from its checkpoint + WAL tail sliced per new owner, ships each slice
// plus the delta to the successors (/cluster/adopt), and the successors
// regenerate exactly the results the dead worker never delivered — no
// window lost, none duplicated. Worker joins and graceful leaves move
// ranges the same way via /cluster/extract. See the README "Clustering"
// section for the full protocol.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	sharon "github.com/sharon-project/sharon"
	"github.com/sharon-project/sharon/internal/chash"
	"github.com/sharon-project/sharon/internal/metrics"
	"github.com/sharon-project/sharon/internal/obs"
	"github.com/sharon-project/sharon/internal/persist"
	"github.com/sharon-project/sharon/internal/server"
)

// WorkerSpec names one worker: its base URL (also its ring member ID)
// and, for dead-worker recovery, the data directory its durable state
// lives in (reachable from the router's filesystem).
type WorkerSpec struct {
	URL     string `json:"url"`
	DataDir string `json:"data_dir,omitempty"`
}

// Config configures a cluster router.
type Config struct {
	// Workers is the initial membership. At least one worker.
	Workers []WorkerSpec
	// Queries is the served workload; every worker must be configured
	// with exactly the same queries (validated at startup). Empty
	// selects server.DefaultQueries. The workload must be uniform,
	// grouped, and non-dynamic.
	Queries []string
	// Rates mirrors the workers' optimizer rates configuration.
	Rates map[string]float64
	// VNodes is the consistent-hash virtual node count per worker
	// (default chash.DefaultVNodes).
	VNodes int

	// MaxBatchBytes / IngestQueue / SubscriberBuffer / ReplayBuffer /
	// HeartbeatEvery / WriteTimeout / FanoutWriters mirror server.Config
	// (SubscriberBuffer is deprecated and ignored — delivery is
	// cursor-based over the shared broadcast log).
	MaxBatchBytes    int64
	IngestQueue      int
	SubscriberBuffer int
	ReplayBuffer     int
	HeartbeatEvery   time.Duration
	WriteTimeout     time.Duration
	FanoutWriters    int

	// Standby names pre-provisioned fresh workers (running, empty
	// data-dir) the autoscaler may join into the ring when load calls
	// for it. Workers here are NOT initial members.
	Standby []WorkerSpec
	// OccupancyHigh arms elastic scale-out: when any member's live-group
	// gauge exceeds it, the router auto-joins one standby worker through
	// the existing checkpoint-handoff rebalance. 0 disables autoscaling.
	OccupancyHigh int64
	// OccupancyLow arms elastic scale-in: when every member's live-group
	// gauge is below it (and the cluster has spare capacity), the router
	// auto-leaves the least-occupied worker. 0 disables scale-in.
	OccupancyLow int64
	// AutoScaleEvery is the occupancy-evaluation interval (default
	// HealthEvery — the gauge refresh cadence).
	AutoScaleEvery time.Duration
	// AutoScaleCooldown is the minimum spacing between autoscale
	// operations (default 15s), damping flap while gauges catch up to a
	// rebalance.
	AutoScaleCooldown time.Duration

	// HealthEvery is the worker health-probe interval (default 2s).
	HealthEvery time.Duration
	// DeadAfter is how many consecutive failed probes (or forward
	// failures) declare a worker dead (default 3).
	DeadAfter int
	// BarrierTimeout bounds the rebalance barrier wait for survivors to
	// drain to the current watermark (default 30s).
	BarrierTimeout time.Duration
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
	// Logger, when non-nil, receives structured operational logs and
	// takes precedence over Logf (which remains as a plain-text seam for
	// tests and embedders). Nil bridges Logf into a structured handler.
	Logger *slog.Logger
	// TraceSpans bounds the in-memory span ring served at /debug/traces
	// (default 1024).
	TraceSpans int
}

func (c *Config) fill() {
	if len(c.Queries) == 0 {
		c.Queries = server.DefaultQueries
	}
	if c.VNodes <= 0 {
		c.VNodes = chash.DefaultVNodes
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 8 << 20
	}
	if c.IngestQueue <= 0 {
		c.IngestQueue = 256
	}
	if c.SubscriberBuffer <= 0 {
		c.SubscriberBuffer = 4096
	}
	if c.ReplayBuffer <= 0 {
		c.ReplayBuffer = 16384
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 15 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.FanoutWriters <= 0 {
		c.FanoutWriters = 4
	}
	if c.HealthEvery <= 0 {
		c.HealthEvery = 2 * time.Second
	}
	if c.AutoScaleEvery <= 0 {
		c.AutoScaleEvery = c.HealthEvery
	}
	if c.AutoScaleCooldown <= 0 {
		c.AutoScaleCooldown = 15 * time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3
	}
	if c.BarrierTimeout <= 0 {
		c.BarrierTimeout = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Logger == nil {
		c.Logger = obs.NewLogfLogger(c.Logf)
	}
	if c.TraceSpans <= 0 {
		c.TraceSpans = 1024
	}
}

// routerMsg is one unit of router pump work. recycle, when non-nil, is
// the pooled batch backing batch.Events; the pump returns it after the
// step (safe: retainDelta copies every worker's slice into fresh
// backing arrays before forwardAll sends anything). admitNano stamps
// the moment the message entered the queue, feeding the queue-stage
// histogram and the batch trace span.
type routerMsg struct {
	batch     server.Batch
	ctl       *routerCtl
	recycle   *server.Batch
	admitNano int64
}

// routerCtl is a membership change or a death check, serialized through
// the pump like the data plane.
type routerCtl struct {
	join      *WorkerSpec
	leave     string
	deadcheck string
	reply     chan ctlResult
}

type ctlResult struct {
	status int
	body   any
}

// Router is a running cluster router: one pump goroutine owning the
// forwarding plane and the membership, per-worker SSE reader goroutines
// feeding the merge, and a hub fanning the merged stream out.
type Router struct {
	cfg      Config
	reg      *sharon.Registry
	queries  map[int]*sharon.Query
	workload sharon.Workload
	plan     sharon.Plan
	lookup   map[string]sharon.Type
	typeName []string
	// binPrefix is the binary wire header + type-table frame every
	// forward body starts with. The table lists the registry's names in
	// order, so an event's local id is numerically its sharon.Type and
	// forwards need no per-event name lookup.
	binPrefix []byte
	// fwdBufs recycles forward bodies across steps (one buffer per
	// in-flight worker forward).
	fwdBufs  sync.Pool
	grouped  bool
	maxAdv   int64
	hub      *server.Hub
	ring     *server.ReplayRing
	mux      *http.ServeMux
	client   *http.Client
	probeCli *http.Client
	start    time.Time
	log      *slog.Logger
	tracer   *obs.Tracer
	stages   routerStages

	ingest   chan routerMsg
	gate     sync.RWMutex
	draining bool
	drainReq chan struct{}
	pumpDone chan struct{}

	// wmState is the router's stream position; pump-owned, mirrored in
	// the wm atomic for handlers.
	wmState int64
	wm      atomic.Int64

	// mu guards the merge state: membership ring, lanes, buffered
	// results, the frontier, and the output sequence.
	mu       sync.Mutex
	chring   *chash.Ring
	lanes    map[string]*lane
	seq      int64
	mergedWM int64
	// orphan holds buffered results of removed lanes not yet past the
	// frontier (normally empty: the rebalance barrier merges a dead
	// lane's completed windows before the lane is dropped).
	orphan map[int64][]server.WireResult

	opSeq atomic.Int64

	// standby is the autoscaler's pool of joinable fresh workers; r.mu.
	standby []WorkerSpec
	// lastAuto stamps the newest autoscale operation (cooldown base).
	lastAuto      atomic.Int64
	autoOut       atomic.Int64
	autoIn        atomic.Int64
	autoScaleFail atomic.Int64

	ingested       atomic.Int64
	droppedLate    atomic.Int64
	droppedUnknown atomic.Int64
	batches        atomic.Int64
	rej429         atomic.Int64
	rej413         atomic.Int64
	emitted        atomic.Int64
	rebalances     atomic.Int64
	rebalanceFail  atomic.Int64
	lastRebalance  atomic.Int64 // nanoseconds
	failure        atomic.Value // string: fatal cluster condition
}

// New validates the workload and the workers, subscribes to every
// worker's punctuated stream, and starts the pump. The workers must be
// running, recovered, and all serving exactly Config.Queries.
func New(cfg Config) (*Router, error) {
	cfg.fill()
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: at least one worker required")
	}
	r := &Router{
		cfg:      cfg,
		reg:      sharon.NewRegistry(),
		ring:     server.NewReplayRing(cfg.ReplayBuffer),
		client:   &http.Client{},
		probeCli: &http.Client{Timeout: 2 * time.Second},
		start:    time.Now(),
		ingest:   make(chan routerMsg, cfg.IngestQueue),
		drainReq: make(chan struct{}),
		pumpDone: make(chan struct{}),
		wmState:  -1,
		lanes:    make(map[string]*lane),
		mergedWM: -1,
		orphan:   make(map[int64][]server.WireResult),
	}
	r.log = cfg.Logger
	r.tracer = obs.NewTracer(cfg.TraceSpans)
	r.hub = server.NewHub(server.HubOptions{
		Writers:        cfg.FanoutWriters,
		Retain:         cfg.ReplayBuffer,
		HeartbeatEvery: cfg.HeartbeatEvery,
		WriteTimeout:   cfg.WriteTimeout,
		FanoutNs:       &r.stages.fanout,
	})
	r.standby = append([]WorkerSpec(nil), cfg.Standby...)
	r.wm.Store(-1)

	// Compile the workload exactly like a worker does: same queries,
	// same rates, same (deterministic) optimizer — the plan is part of
	// the hand-off protocol (adopt refuses a mismatch).
	r.queries = make(map[int]*sharon.Query, len(cfg.Queries))
	for i, text := range cfg.Queries {
		q, err := sharon.ParseQuery(text, r.reg)
		if err != nil {
			return nil, fmt.Errorf("cluster: query %d: %w", i, err)
		}
		q.ID = i
		r.queries[i] = q
		r.workload = append(r.workload, q)
	}
	if err := r.workload.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	first := r.workload[0]
	if !first.GroupBy {
		return nil, fmt.Errorf("cluster: the workload is ungrouped; a single aggregate over all keys cannot be hash-partitioned across workers")
	}
	for _, q := range r.workload[1:] {
		if q.Window != first.Window || q.GroupBy != first.GroupBy {
			return nil, fmt.Errorf("cluster: non-uniform workload; the cluster tier requires one uniform segment (same window, grouping, predicates)")
		}
	}
	rates := sharon.Rates{}
	for t := range r.workload.Types() {
		rates[t] = 1
	}
	for name, v := range cfg.Rates {
		if t := r.reg.Lookup(name); t != sharon.NoType {
			rates[t] = v
		}
	}
	plan, _, err := sharon.Optimize(r.workload, rates)
	if err != nil {
		return nil, fmt.Errorf("cluster: optimize: %w", err)
	}
	r.plan = plan
	r.lookup = make(map[string]sharon.Type)
	r.typeName = make([]string, r.reg.Count()+1)
	for _, name := range r.reg.Names() {
		t := r.reg.Lookup(name)
		r.lookup[name] = t
		r.typeName[t] = name
	}
	r.binPrefix = server.AppendWireTypeTable(server.AppendWireHeader(nil), r.reg.Names())
	r.fwdBufs.New = func() any { return new([]byte) }
	var m int64
	for _, q := range r.workload {
		if v := q.Window.Length + q.Window.Slide; v > m {
			m = v
		}
	}
	r.maxAdv = 16 * m

	ids := make([]string, len(cfg.Workers))
	for i, w := range cfg.Workers {
		ids[i] = w.URL
	}
	ring, err := chash.New(ids, cfg.VNodes)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	r.chring = ring
	// Any validation failure must tear down the lanes already
	// subscribed, or their reader goroutines and SSE streams leak into
	// the embedding process.
	abort := func(err error) (*Router, error) {
		for _, l := range r.lanes {
			l.gone.Store(true)
			l.cancel()
		}
		return nil, err
	}
	for _, spec := range cfg.Workers {
		if err := r.checkWorkerWorkload(spec.URL); err != nil {
			return abort(err)
		}
		ln, err := r.newLane(spec)
		if err != nil {
			return abort(err)
		}
		r.lanes[ln.id] = ln
	}
	r.routes()
	go r.pump()
	go r.healthLoop()
	go r.autoscaleLoop()
	return r, nil
}

// checkWorkerWorkload verifies a worker serves exactly the router's
// queries (a mismatched worker would compute different results and
// poison the merged stream).
func (r *Router) checkWorkerWorkload(url string) error {
	resp, err := r.client.Get(url + "/queries")
	if err != nil {
		return fmt.Errorf("cluster: worker %s unreachable: %w", url, err)
	}
	defer resp.Body.Close()
	var body struct {
		Queries []struct {
			ID    int    `json:"id"`
			Query string `json:"query"`
		} `json:"queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("cluster: worker %s /queries: %w", url, err)
	}
	if len(body.Queries) != len(r.cfg.Queries) {
		return fmt.Errorf("cluster: worker %s serves %d queries, router configured with %d", url, len(body.Queries), len(r.cfg.Queries))
	}
	for i, q := range body.Queries {
		if q.ID != i || q.Query != r.cfg.Queries[i] {
			return fmt.Errorf("cluster: worker %s query %d is %q, router expects %q (all workers must run the router's exact workload)", url, q.ID, q.Query, r.cfg.Queries[i])
		}
	}
	return nil
}

// fail records a fatal cluster condition; /healthz turns red and the
// pump refuses further work (operators must intervene — the router
// never guesses once the merged stream's completeness is in doubt).
func (r *Router) fail(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	//sharon:allow lockio (some callers hold r.mu; the handler ultimately writes to a log sink, and a fatal-path log line is worth the stall risk)
	r.log.Error("cluster FAILED", "err", msg)
	r.failure.CompareAndSwap(nil, msg)
}

func (r *Router) failed() string {
	if v := r.failure.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// --- pump ---

func (r *Router) pump() {
	defer close(r.pumpDone)
	for {
		select {
		case msg := <-r.ingest:
			r.step(msg)
			server.PutBatch(msg.recycle)
		case <-r.drainReq:
			for {
				select {
				case msg := <-r.ingest:
					r.step(msg)
					server.PutBatch(msg.recycle)
				default:
					r.finish()
					return
				}
			}
		}
	}
}

// step handles one pump message: a control request or an ingest batch
// (late-filter, clamp, split by ring, retain hand-off deltas, forward).
//
//sharon:pump
func (r *Router) step(msg routerMsg) {
	stepStart := time.Now()
	if msg.admitNano > 0 {
		r.stages.queue.Record(stepStart.UnixNano() - msg.admitNano)
	}
	if msg.ctl != nil {
		r.applyCtl(msg.ctl)
		return
	}
	if r.failed() != "" {
		return // accepted before failure; nowhere safe to route now
	}
	b := msg.batch
	events := b.Events
	for len(events) > 0 && events[0].Time <= r.wmState {
		events = events[1:]
		r.droppedLate.Add(1)
	}
	base := r.wmState
	if len(events) > 0 {
		base = events[len(events)-1].Time
	}
	wm := int64(-1)
	if v := r.clampWatermarkFrom(base, b.Watermark); v > base {
		wm = v
	}
	if len(events) == 0 && wm < 0 {
		return
	}
	batchWM := base
	if wm > batchWM {
		batchWM = wm
	}
	r.wmState = batchWM
	r.wm.Store(batchWM)
	if len(events) > 0 {
		r.ingested.Add(int64(len(events)))
		r.batches.Add(1)
	}

	members, sub := r.retainDelta(events, batchWM)
	fwdStart := time.Now()
	r.forwardAll(members, sub, batchWM)
	if len(events) > 0 {
		// One forward-stage sample and one batch span per event-carrying
		// step, so the stage count equals the batches counter (a CI
		// consistency check); watermark-only steps skip both.
		r.stages.forward.Record(time.Since(fwdStart).Nanoseconds())
		start := msg.admitNano
		if start <= 0 {
			start = stepStart.UnixNano()
		}
		r.tracer.Record(obs.Span{
			Kind:      "batch",
			Start:     start,
			DurNs:     time.Now().UnixNano() - start,
			Batch:     r.batches.Load(),
			Events:    int64(len(events)),
			Watermark: batchWM,
		})
	}
}

// retainDelta splits a step by the current ring and retains every
// worker's slice in its hand-off delta before anything is sent: a
// forward that fails mid-flight is already covered by the delta the
// successor replays. This is the router's durable-logging half — the
// cluster analogue of the server's WAL append — so walbeforeapply
// requires it to dominate forwardAll in the pump.
//
//sharon:logs
func (r *Router) retainDelta(events []sharon.Event, batchWM int64) (members []string, sub map[string][]sharon.Event) {
	now := time.Now().UnixNano()
	r.mu.Lock()
	members = r.chring.Members()
	sub = make(map[string][]sharon.Event, len(members))
	for _, e := range events {
		id := r.chring.Owner(e.Key)
		sub[id] = append(sub[id], e)
	}
	for _, id := range members {
		if ln := r.lanes[id]; ln != nil {
			ln.delta = append(ln.delta, persist.BatchRecord{Events: sub[id], Watermark: batchWM})
			// Stamp the watermark we are about to forward so the lane can
			// measure punctuation lag when its frontier passes it. Bounded:
			// telemetry is droppable, the delta is the correctness buffer.
			if len(ln.punctQ) < maxPunctStamps {
				ln.punctQ = append(ln.punctQ, punctStamp{wm: batchWM, at: now})
			}
		}
	}
	r.mu.Unlock()
	return members, sub
}

// forwardAll posts every worker its slice (watermark-only when empty)
// in parallel, retrying backpressure, and rebalances on a dead worker —
// re-forwarding nothing: the failed slice rides the hand-off delta.
//
//sharon:applies
func (r *Router) forwardAll(members []string, sub map[string][]sharon.Event, batchWM int64) {
	type outcome struct {
		id  string
		err error
	}
	results := make(chan outcome, len(members))
	for _, id := range members {
		go func(id string) {
			results <- outcome{id: id, err: r.forward(id, sub[id], batchWM)}
		}(id)
	}
	var dead []string
	for range members {
		o := <-results
		if o.err != nil {
			r.log.Error("forward failed", "worker", o.id, "err", o.err)
			dead = append(dead, o.id)
		}
	}
	sort.Strings(dead)
	for _, id := range dead {
		if r.failed() != "" {
			return
		}
		r.rebalanceDead(id)
	}
}

// forward posts one worker's slice of a step. 429 retries forever (the
// worker is alive and draining its queue); connection errors consult
// /healthz and strike the worker out after DeadAfter consecutive
// failed probes — a kill -9's connection-refused is detected in a few
// hundred milliseconds instead of stalling the stream for the whole
// probe-interval budget.
func (r *Router) forward(id string, events []sharon.Event, batchWM int64) error {
	ln := r.lane(id)
	if ln == nil {
		return fmt.Errorf("no lane for %s", id)
	}
	// Forward bodies are binary batch frames — no per-event JSON
	// marshalling on the hop, and the pooled buffer amortizes to zero
	// allocations per step. Workers negotiate the codec off the
	// Content-Type exactly like external clients.
	bufp := r.fwdBufs.Get().(*[]byte)
	defer r.fwdBufs.Put(bufp)
	*bufp = append((*bufp)[:0], r.binPrefix...)
	*bufp = server.AppendWireBatch(*bufp, events, batchWM)
	body := *bufp
	t0 := time.Now()
	deadline := t0.Add(time.Duration(r.cfg.DeadAfter) * r.cfg.HealthEvery)
	strikes := 0
	for {
		resp, err := r.client.Post(id+"/ingest", server.BatchContentType, bytes.NewReader(body))
		if err != nil {
			if healthy, _ := r.probe(id); !healthy {
				strikes++
				if strikes >= r.cfg.DeadAfter {
					return err
				}
			} else {
				strikes = 0
			}
			if time.Now().After(deadline) {
				return err
			}
			time.Sleep(100 * time.Millisecond)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusOK:
			ln.forwardedEvents.Add(int64(len(events)))
			ln.forwardedBatches.Add(1)
			// Whole round trip including 429/503 retries: what the slowest
			// worker costs the step, not just the final successful POST.
			ln.forwardNs.Record(time.Since(t0).Nanoseconds())
			return nil
		case http.StatusTooManyRequests:
			ln.retries429.Add(1)
			time.Sleep(20 * time.Millisecond)
		case http.StatusServiceUnavailable:
			// Recovering or draining; give it the probe budget.
			if time.Now().After(deadline) {
				return fmt.Errorf("worker %s: 503 past deadline", id)
			}
			time.Sleep(100 * time.Millisecond)
		default:
			return fmt.Errorf("worker %s: ingest status %d", id, resp.StatusCode)
		}
	}
}

// clampWatermarkFrom mirrors the single-node watermark clamp (see
// server.publishMaxAdvance): the router applies it once so its stream
// position tracks exactly what every worker will compute.
func (r *Router) clampWatermarkFrom(base, wm int64) int64 {
	if wm < 0 {
		return wm
	}
	if base < 0 {
		base = 0
	}
	if limit := base + r.maxAdv; wm > limit {
		r.log.Warn("watermark clamped", "watermark", wm, "limit", limit)
		return limit
	}
	return wm
}

func (r *Router) lane(id string) *lane {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lanes[id]
}

// finish ends the merged stream: subscribers get eof. Workers are left
// running — the router owns the stream, not the fleet.
func (r *Router) finish() {
	r.mu.Lock()
	for _, ln := range r.lanes {
		//sharon:allow lockio (context.CancelFunc never blocks: it closes the done channel)
		ln.cancel()
	}
	r.mu.Unlock()
	r.hub.Shutdown()
	r.log.Info("router drained", "events_forwarded", r.ingested.Load(), "results_merged", r.emitted.Load())
}

// Drain stops ingestion and ends the merged stream. Idempotent.
func (r *Router) Drain(ctx context.Context) error {
	r.gate.Lock()
	already := r.draining
	r.draining = true
	r.gate.Unlock()
	if !already {
		close(r.drainReq)
	}
	select {
	case <-r.pumpDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// healthLoop probes the workers and injects death checks for broken
// ones; it also refreshes the per-worker occupancy gauges.
func (r *Router) healthLoop() {
	t := time.NewTicker(r.cfg.HealthEvery)
	defer t.Stop()
	for {
		select {
		case <-r.pumpDone:
			return
		case <-t.C:
		}
		r.mu.Lock()
		lanes := make([]*lane, 0, len(r.lanes))
		for _, ln := range r.lanes {
			lanes = append(lanes, ln)
		}
		r.mu.Unlock()
		for _, ln := range lanes {
			healthy, groups := r.probe(ln.id)
			ln.healthy.Store(healthy)
			if groups >= 0 {
				ln.groups.Store(groups)
			}
			if healthy {
				ln.misses.Store(0)
				continue
			}
			if n := ln.misses.Add(1); n >= int64(r.cfg.DeadAfter) {
				r.suspectDead(ln.id)
			}
		}
	}
}

// probe checks one worker's /healthz and reads its live-group gauge.
// It uses a short-timeout client so a black-holed worker cannot hang
// the caller (the pump's forward path strikes workers out with it).
func (r *Router) probe(id string) (healthy bool, groups int64) {
	groups = -1
	resp, err := r.probeCli.Get(id + "/healthz")
	if err != nil {
		return false, groups
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, groups
	}
	if m, err := r.probeCli.Get(id + "/metrics"); err == nil {
		var st struct {
			GroupsLive int64 `json:"groups_live"`
		}
		if json.NewDecoder(m.Body).Decode(&st) == nil {
			groups = st.GroupsLive
		}
		io.Copy(io.Discard, m.Body)
		m.Body.Close()
	}
	return true, groups
}

// suspectDead asks the pump to re-probe and, if confirmed, rebalance.
// Non-blocking: if the queue is full the next health tick retries.
func (r *Router) suspectDead(id string) {
	select {
	case r.ingest <- routerMsg{ctl: &routerCtl{deadcheck: id}}:
	default:
	}
}

// --- HTTP ---

// Handler returns the router's HTTP handler.
func (r *Router) Handler() http.Handler { return r.mux }

// ListenAndServe serves the handler on addr, draining after ctx ends.
func (r *Router) ListenAndServe(ctx context.Context, addr string) error {
	hs := &http.Server{
		Addr:              addr,
		Handler:           r.mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	r.log.Info("draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Drain(drainCtx); err != nil {
		r.log.Warn("drain", "err", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	return hs.Shutdown(shutCtx)
}

func (r *Router) routes() {
	r.mux = http.NewServeMux()
	r.mux.HandleFunc("GET /{$}", r.handleIndex)
	r.mux.HandleFunc("POST /ingest", r.handleIngest)
	r.mux.HandleFunc("POST /watermark", r.handleWatermark)
	r.mux.HandleFunc("GET /subscribe", r.handleSubscribe)
	r.mux.HandleFunc("GET /subscribe/ws", r.handleSubscribeWS)
	r.mux.HandleFunc("GET /metrics", r.handleMetrics)
	r.mux.HandleFunc("GET /debug/traces", r.handleTraces)
	r.mux.HandleFunc("GET /healthz", r.handleHealthz)
	r.mux.HandleFunc("GET /queries", r.handleQueries)
	r.mux.HandleFunc("GET /cluster/workers", r.handleWorkersGet)
	r.mux.HandleFunc("POST /cluster/workers", r.handleWorkersPost)
	r.mux.HandleFunc("DELETE /cluster/workers", r.handleWorkersDelete)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (r *Router) handleIndex(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `sharon-router — clustered shared event sequence aggregation

POST   /ingest                  NDJSON events; consistent-hash routed across workers
POST   /watermark               {"watermark":T} — fanned out to every worker
GET    /subscribe               merged SSE result stream, single-node byte-identical
                                (?query=ID filters, ?after=N resumes, ?punctuate=1 marks)
GET    /queries                 the cluster workload
GET    /metrics                 router + per-worker shard counters
                                (JSON; ?format=prometheus for text exposition
                                including a scraped cluster-wide worker view)
GET    /debug/traces            recent pipeline spans (?n=100)
GET    /healthz                 ok | rebalancing | error | draining
GET    /cluster/workers         membership + rebalance state
POST   /cluster/workers         {"url":..., "data_dir":...} — join a worker (live rebalance)
DELETE /cluster/workers?url=U   graceful leave (ranges handed to survivors)
`)
}

// enqueue mirrors sharond's bounded-queue backpressure. As in sharond,
// the gate covers only the admission decision and the non-blocking
// send; the refusal response (network I/O) goes out after the release
// so a slow client cannot stall Drain's write-side acquire.
func (r *Router) enqueue(w http.ResponseWriter, msg routerMsg) bool {
	r.gate.RLock()
	draining, accepted, failure := r.draining, false, ""
	if !draining && msg.ctl == nil {
		failure = r.failed()
	}
	if !draining && failure == "" {
		select {
		case r.ingest <- msg:
			accepted = true
		default:
		}
	}
	r.gate.RUnlock()
	switch {
	case accepted:
		return true
	case draining:
		writeErr(w, http.StatusServiceUnavailable, "draining")
	case failure != "":
		writeErr(w, http.StatusServiceUnavailable, "cluster failed: %s", failure)
	default:
		r.rej429.Add(1)
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "ingest queue full (%d batches); retry", cap(r.ingest))
	}
	return false
}

func (r *Router) handleIngest(w http.ResponseWriter, req *http.Request) {
	body := http.MaxBytesReader(w, req.Body, r.cfg.MaxBatchBytes)
	batch := server.GetBatch()
	var err error
	decodeStart := time.Now()
	binary := server.IsBatchContentType(req.Header.Get("Content-Type"))
	if binary {
		var data []byte
		if data, err = io.ReadAll(body); err == nil {
			err = server.DecodeWireBatch(data, r.lookup, batch)
		}
	} else {
		err = batch.ReadNDJSON(body, r.lookup)
	}
	if err == nil {
		d := time.Since(decodeStart).Nanoseconds()
		if binary {
			r.stages.decodeBinary.Record(d)
		} else {
			r.stages.decodeNDJSON.Record(d)
		}
	}
	if err != nil {
		server.PutBatch(batch)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			r.rej413.Add(1)
			writeErr(w, http.StatusRequestEntityTooLarge, "batch exceeds %d bytes", r.cfg.MaxBatchBytes)
			return
		}
		writeErr(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	// Read before enqueue: the pump may recycle the batch concurrently
	// once it holds the message.
	accepted, unknown := len(batch.Events), batch.Unknown
	r.droppedUnknown.Add(unknown)
	if accepted == 0 && batch.Watermark < 0 {
		server.PutBatch(batch)
		writeJSON(w, http.StatusOK, map[string]any{"accepted": 0, "dropped_unknown_type": unknown})
		return
	}
	if !r.enqueue(w, routerMsg{batch: *batch, recycle: batch, admitNano: time.Now().UnixNano()}) {
		server.PutBatch(batch)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"accepted":             accepted,
		"dropped_unknown_type": unknown,
		"queue_depth":          len(r.ingest),
	})
}

func (r *Router) handleWatermark(w http.ResponseWriter, req *http.Request) {
	var line server.IngestLine
	body := http.MaxBytesReader(w, req.Body, 4096)
	if err := json.NewDecoder(body).Decode(&line); err != nil || line.Watermark == nil {
		writeErr(w, http.StatusBadRequest, `want {"watermark":<ticks>}`)
		return
	}
	if !r.enqueue(w, routerMsg{batch: server.Batch{Watermark: *line.Watermark}, admitNano: time.Now().UnixNano()}) {
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"watermark": *line.Watermark})
}

func (r *Router) streamOptions() server.StreamOptions {
	return server.StreamOptions{
		Hub: r.hub,
		QueryKnown: func(id int) bool {
			_, ok := r.queries[id]
			return ok
		},
		Watermark: func() int64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return r.mergedWM
		},
	}
}

func (r *Router) handleSubscribe(w http.ResponseWriter, req *http.Request) {
	server.ServeStream(w, req, r.streamOptions())
}

func (r *Router) handleSubscribeWS(w http.ResponseWriter, req *http.Request) {
	server.ServeStreamWS(w, req, r.streamOptions())
}

func (r *Router) handleQueries(w http.ResponseWriter, req *http.Request) {
	out := make([]map[string]any, len(r.cfg.Queries))
	for i, text := range r.cfg.Queries {
		out[i] = map[string]any{"id": i, "label": r.queries[i].Label(), "query": text}
	}
	writeJSON(w, http.StatusOK, map[string]any{"queries": out})
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if f := r.failed(); f != "" {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"status": "error", "error": f})
		return
	}
	r.gate.RLock()
	draining := r.draining
	r.gate.RUnlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	r.gate.RLock()
	draining := r.draining
	r.gate.RUnlock()
	st := metrics.RouterStats{
		UptimeSec:                time.Since(r.start).Seconds(),
		Queries:                  len(r.cfg.Queries),
		Watermark:                r.wm.Load(),
		EventsIngested:           r.ingested.Load(),
		EventsDroppedLate:        r.droppedLate.Load(),
		EventsDroppedUnknownType: r.droppedUnknown.Load(),
		Batches:                  r.batches.Load(),
		RejectedBackpressure:     r.rej429.Load(),
		RejectedOversize:         r.rej413.Load(),
		IngestQueueDepth:         len(r.ingest),
		IngestQueueCap:           cap(r.ingest),
		ResultsEmitted:           r.emitted.Load(),
		ResultsDelivered:         r.hub.DeliveredResults(),
		Subscribers:              r.hub.Count(),
		SlowConsumerDisconnects:  r.hub.SlowDrops(),
		FanoutFramesEncoded:      r.hub.Encoded(),
		FanoutFramesDelivered:    r.hub.Delivered(),
		FanoutDroppedSlow:        r.hub.SlowDrops(),
		FanoutDroppedFiltered:    r.hub.FilteredDrops(),
		AutoScaleOut:             r.autoOut.Load(),
		AutoScaleIn:              r.autoIn.Load(),
		AutoScaleFailed:          r.autoScaleFail.Load(),
		Rebalances:               r.rebalances.Load(),
		RebalancesFailed:         r.rebalanceFail.Load(),
		LastRebalanceMs:          float64(r.lastRebalance.Load()) / 1e6,
		Draining:                 draining,
		Error:                    r.failed(),
		Stages:                   r.stages.summaries(),
	}
	r.mu.Lock()
	st.MergedWatermark = r.mergedWM
	st.StandbyWorkers = len(r.standby)
	ids := make([]string, 0, len(r.lanes))
	for id := range r.lanes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ln := r.lanes[id]
		pending := 0
		for _, rs := range ln.pending {
			pending += len(rs)
		}
		st.Workers = append(st.Workers, metrics.RouterWorkerStats{
			ID:               id,
			Healthy:          ln.healthy.Load(),
			Frontier:         ln.frontier,
			EventsForwarded:  ln.forwardedEvents.Load(),
			BatchesForwarded: ln.forwardedBatches.Load(),
			Retries429:       ln.retries429.Load(),
			PendingResults:   pending,
			DeltaBatches:     len(ln.delta),
			GroupsLive:       ln.groups.Load(),
			Forward:          laneSummary(&ln.forwardNs),
			MergeHold:        laneSummary(&ln.holdNs),
			PunctLag:         laneSummary(&ln.punctNs),
		})
	}
	r.mu.Unlock()
	if obs.MetricsFormat(req) == "prometheus" {
		r.writeProm(w, st)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (r *Router) handleWorkersGet(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	members := r.chring.Members()
	specs := make([]map[string]any, 0, len(members))
	for _, id := range members {
		ln := r.lanes[id]
		m := map[string]any{"url": id}
		if ln != nil {
			m["data_dir"] = ln.spec.DataDir
			m["healthy"] = ln.healthy.Load()
			m["frontier"] = ln.frontier
		}
		specs = append(specs, m)
	}
	r.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"workers":    specs,
		"vnodes":     r.cfg.VNodes,
		"rebalances": r.rebalances.Load(),
	})
}

// sendCtl submits a membership change through the pump and waits.
func (r *Router) sendCtl(w http.ResponseWriter, ctl *routerCtl) {
	ctl.reply = make(chan ctlResult, 1)
	if !r.enqueue(w, routerMsg{ctl: ctl}) {
		return
	}
	select {
	case res := <-ctl.reply:
		writeJSON(w, res.status, res.body)
	case <-time.After(2 * time.Minute):
		writeErr(w, http.StatusGatewayTimeout, "membership change timed out")
	}
}

func (r *Router) handleWorkersPost(w http.ResponseWriter, req *http.Request) {
	var spec WorkerSpec
	lim := http.MaxBytesReader(w, req.Body, 1<<20)
	if err := json.NewDecoder(lim).Decode(&spec); err != nil || spec.URL == "" {
		writeErr(w, http.StatusBadRequest, `want {"url":"http://...", "data_dir":"..."}`)
		return
	}
	spec.URL = strings.TrimSuffix(spec.URL, "/")
	r.sendCtl(w, &routerCtl{join: &spec})
}

// handleWorkersDelete removes a worker gracefully. The worker URL is a
// query parameter (URLs do not survive path cleaning as path segments):
// DELETE /cluster/workers?url=http://127.0.0.1:9001
func (r *Router) handleWorkersDelete(w http.ResponseWriter, req *http.Request) {
	id := strings.TrimSuffix(req.URL.Query().Get("url"), "/")
	if id == "" {
		writeErr(w, http.StatusBadRequest, "worker url required: DELETE /cluster/workers?url=...")
		return
	}
	r.sendCtl(w, &routerCtl{leave: id})
}
