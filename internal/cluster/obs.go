package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"

	"github.com/sharon-project/sharon/internal/metrics"
	"github.com/sharon-project/sharon/internal/obs"
)

// routerStages aggregates the router's own per-stage pipeline latency,
// the cluster analogue of the server's serverStages. Stage boundaries
// (all recorded in nanoseconds):
//
//	decode_*  request read + parse, per wire path (ndjson | binary)
//	queue     ingest-queue admit → pump dequeue
//	forward   ring split forwarded → every worker acked (the step's
//	          slowest worker round trip, including retries)
//	fanout    merged result published → subscriber socket write
//
// Per-worker latencies (forward round trip, merge-hold, punctuation
// lag) live on each lane, labelled by worker in the exposition.
type routerStages struct {
	decodeNDJSON obs.Histogram
	decodeBinary obs.Histogram
	queue        obs.Histogram
	forward      obs.Histogram
	fanout       obs.Histogram
}

// summaries digests the stage histograms for the JSON /metrics form
// (milliseconds).
func (st *routerStages) summaries() map[string]obs.Summary {
	return map[string]obs.Summary{
		"decode_ndjson": st.decodeNDJSON.Snapshot().Summary(1e-6),
		"decode_binary": st.decodeBinary.Snapshot().Summary(1e-6),
		"queue":         st.queue.Snapshot().Summary(1e-6),
		"forward":       st.forward.Snapshot().Summary(1e-6),
		"fanout":        st.fanout.Snapshot().Summary(1e-6),
	}
}

// promStages lists the latency stages in stable exposition order.
func (st *routerStages) promStages() []struct {
	name string
	h    *obs.Histogram
} {
	return []struct {
		name string
		h    *obs.Histogram
	}{
		{"decode_ndjson", &st.decodeNDJSON},
		{"decode_binary", &st.decodeBinary},
		{"queue", &st.queue},
		{"forward", &st.forward},
		{"fanout", &st.fanout},
	}
}

// laneSummary digests one lane histogram into milliseconds, nil until
// the first sample so idle lanes stay out of the JSON.
func laneSummary(h *obs.Histogram) *obs.Summary {
	snap := h.Snapshot()
	if snap.Count == 0 {
		return nil
	}
	s := snap.Summary(1e-6)
	return &s
}

// workerStageOrder fixes the exposition order of the scraped worker
// stage digests (the keys of metrics.ServerStats.Stages).
var workerStageOrder = []string{
	"decode_ndjson", "decode_binary", "decode_stream",
	"queue", "apply", "emit", "fanout",
}

// scrapeWorkers fetches every worker's JSON /metrics concurrently
// (short probe timeout — a black-holed worker costs one up=0 sample,
// not a hung scrape) for the merged cluster-wide exposition.
func (r *Router) scrapeWorkers(ids []string) map[string]*metrics.ServerStats {
	out := make(map[string]*metrics.ServerStats, len(ids))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			resp, err := r.probeCli.Get(id + "/metrics")
			if err != nil {
				return
			}
			defer func() {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}()
			var st metrics.ServerStats
			if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&st) != nil {
				return
			}
			mu.Lock()
			out[id] = &st
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	return out
}

// writeProm renders the RouterStats snapshot in the Prometheus text
// exposition format v0.0.4: the router's own counters and stage
// histograms, the per-worker lane digests, and a cluster-wide view
// scraped live from each worker's /metrics.
func (r *Router) writeProm(w http.ResponseWriter, st metrics.RouterStats) {
	pw := &obs.PromWriter{}
	pw.Gauge("sharon_router_uptime_seconds", "Seconds since the router started.", nil, st.UptimeSec)
	pw.Gauge("sharon_router_queries", "Queries the cluster serves.", nil, float64(st.Queries))
	pw.Gauge("sharon_router_watermark", "Router ingest stream position in ticks (-1 before the first).", nil, float64(st.Watermark))
	pw.Gauge("sharon_router_merged_watermark", "Merge frontier: results at or below it have been emitted.", nil, float64(st.MergedWatermark))
	pw.Counter("sharon_router_events_ingested_total", "Events accepted and forwarded.", nil, float64(st.EventsIngested))
	pw.Counter("sharon_router_events_dropped_total", "Events discarded at the router, by reason.", []string{"reason", "late"}, float64(st.EventsDroppedLate))
	pw.Counter("sharon_router_events_dropped_total", "Events discarded at the router, by reason.", []string{"reason", "unknown_type"}, float64(st.EventsDroppedUnknownType))
	pw.Counter("sharon_router_batches_total", "Accepted ingest batches.", nil, float64(st.Batches))
	pw.Counter("sharon_router_rejected_total", "Refused ingest requests, by reason.", []string{"reason", "backpressure"}, float64(st.RejectedBackpressure))
	pw.Counter("sharon_router_rejected_total", "Refused ingest requests, by reason.", []string{"reason", "oversize"}, float64(st.RejectedOversize))
	pw.Gauge("sharon_router_ingest_queue_depth", "Parsed batches queued ahead of the pump.", nil, float64(st.IngestQueueDepth))
	pw.Gauge("sharon_router_ingest_queue_cap", "Ingest queue capacity.", nil, float64(st.IngestQueueCap))
	pw.Counter("sharon_router_results_emitted_total", "Merged results pushed downstream.", nil, float64(st.ResultsEmitted))
	pw.Counter("sharon_router_results_delivered_total", "Result frames fanned out to subscribers.", nil, float64(st.ResultsDelivered))
	pw.Gauge("sharon_router_subscribers", "Live downstream subscriptions.", nil, float64(st.Subscribers))
	pw.Counter("sharon_router_slow_consumer_disconnects_total", "Subscribers dropped on delivery-buffer overflow.", nil, float64(st.SlowConsumerDisconnects))
	pw.Gauge("sharon_fanout_subscribers", "Live subscriptions on the broadcast fan-out tier.", nil, float64(st.Subscribers))
	pw.Counter("sharon_fanout_frames_encoded_total", "Shared frames rendered (once per merged result or ctl event).", nil, float64(st.FanoutFramesEncoded))
	pw.Counter("sharon_fanout_frames_delivered_total", "Frames written into subscriber streams.", nil, float64(st.FanoutFramesDelivered))
	pw.Counter("sharon_fanout_dropped_total", "Subscribers ended with an explicit dropped frame, by reason.", []string{"reason", "slow-consumer"}, float64(st.FanoutDroppedSlow))
	pw.Counter("sharon_fanout_dropped_total", "Subscribers ended with an explicit dropped frame, by reason.", []string{"reason", "filtered-resume"}, float64(st.FanoutDroppedFiltered))
	pw.Counter("sharon_router_autoscale_total", "Occupancy-triggered membership changes, by direction.", []string{"direction", "out"}, float64(st.AutoScaleOut))
	pw.Counter("sharon_router_autoscale_total", "Occupancy-triggered membership changes, by direction.", []string{"direction", "in"}, float64(st.AutoScaleIn))
	pw.Counter("sharon_router_autoscale_failed_total", "Autoscale attempts that aborted.", nil, float64(st.AutoScaleFailed))
	pw.Gauge("sharon_router_standby_workers", "Fresh workers remaining in the autoscale standby pool.", nil, float64(st.StandbyWorkers))
	pw.Counter("sharon_router_rebalances_total", "Completed hash-range hand-offs.", nil, float64(st.Rebalances))
	pw.Counter("sharon_router_rebalances_failed_total", "Aborted rebalances (cluster error state).", nil, float64(st.RebalancesFailed))
	pw.Gauge("sharon_router_last_rebalance_seconds", "Duration of the most recent rebalance.", nil, st.LastRebalanceMs/1e3)
	pw.Gauge("sharon_router_draining", "1 while the router is shutting down.", nil, boolGauge(st.Draining))

	const stageHelp = "Router per-stage pipeline latency (see README Observability for stage boundaries)."
	for _, sg := range r.stages.promStages() {
		pw.Histogram("sharon_router_stage_latency_seconds", stageHelp, []string{"stage", sg.name}, sg.h.Snapshot(), 1e-9)
	}

	// Per-worker lane view: occupancy counters plus the lane latency
	// digests. st.Workers is sorted by id, so each family's samples come
	// out in a stable order.
	for _, ws := range st.Workers {
		pw.Gauge("sharon_router_worker_healthy", "Last health-probe outcome per worker.", []string{"worker", ws.ID}, boolGauge(ws.Healthy))
	}
	for _, ws := range st.Workers {
		pw.Gauge("sharon_router_worker_frontier", "Per-worker punctuated merge frontier in ticks.", []string{"worker", ws.ID}, float64(ws.Frontier))
	}
	for _, ws := range st.Workers {
		pw.Counter("sharon_router_worker_events_forwarded_total", "Ingest slices routed to the worker, in events.", []string{"worker", ws.ID}, float64(ws.EventsForwarded))
	}
	for _, ws := range st.Workers {
		pw.Counter("sharon_router_worker_batches_forwarded_total", "Ingest slices routed to the worker, in batches.", []string{"worker", ws.ID}, float64(ws.BatchesForwarded))
	}
	for _, ws := range st.Workers {
		pw.Counter("sharon_router_worker_retries_429_total", "Backpressure retries against the worker.", []string{"worker", ws.ID}, float64(ws.Retries429))
	}
	for _, ws := range st.Workers {
		pw.Gauge("sharon_router_worker_pending_results", "Results buffered in the merge awaiting the frontier.", []string{"worker", ws.ID}, float64(ws.PendingResults))
	}
	for _, ws := range st.Workers {
		pw.Gauge("sharon_router_worker_delta_batches", "Retained hand-off delta depth in batches.", []string{"worker", ws.ID}, float64(ws.DeltaBatches))
	}
	for _, ws := range st.Workers {
		pw.Gauge("sharon_router_worker_groups_live", "Live group count reported by the worker.", []string{"worker", ws.ID}, float64(ws.GroupsLive))
	}
	laneDigests := []struct {
		name, help string
		pick       func(metrics.RouterWorkerStats) *obs.Summary
	}{
		{"sharon_router_worker_forward_seconds", "Forward round-trip latency per worker (including retries).",
			func(ws metrics.RouterWorkerStats) *obs.Summary { return ws.Forward }},
		{"sharon_router_worker_merge_hold_seconds", "Result hold time in the merge buffer per worker.",
			func(ws metrics.RouterWorkerStats) *obs.Summary { return ws.MergeHold }},
		{"sharon_router_worker_punct_lag_seconds", "Watermark-forwarded to punctuation-received lag per worker.",
			func(ws metrics.RouterWorkerStats) *obs.Summary { return ws.PunctLag }},
	}
	for _, d := range laneDigests {
		for _, ws := range st.Workers {
			if s := d.pick(ws); s != nil {
				pw.SummaryQuantiles(d.name, d.help, []string{"worker", ws.ID}, *s, 1e-3)
			}
		}
	}

	// Cluster-wide view: scrape every worker's JSON /metrics and merge.
	// A failed scrape shows as up=0 with its series absent; the router's
	// own counters above stay authoritative for the stream totals.
	ids := make([]string, 0, len(st.Workers))
	for _, ws := range st.Workers {
		ids = append(ids, ws.ID)
	}
	scraped := r.scrapeWorkers(ids)
	var clusterIngested, clusterGroups int64
	healthy := 0
	for _, ws := range st.Workers {
		if ws.Healthy {
			healthy++
		}
	}
	pw.Gauge("sharon_cluster_workers", "Cluster membership size.", nil, float64(len(st.Workers)))
	pw.Gauge("sharon_cluster_workers_healthy", "Workers passing health probes.", nil, float64(healthy))
	for _, id := range ids {
		pw.Gauge("sharon_cluster_worker_up", "1 when the worker's /metrics answered this scrape.", []string{"worker", id}, boolGauge(scraped[id] != nil))
	}
	for _, id := range ids {
		if s := scraped[id]; s != nil {
			pw.Counter("sharon_cluster_worker_events_ingested_total", "Events the worker applied.", []string{"worker", id}, float64(s.EventsIngested))
			clusterIngested += s.EventsIngested
		}
	}
	for _, id := range ids {
		if s := scraped[id]; s != nil {
			pw.Counter("sharon_cluster_worker_results_emitted_total", "Results the worker emitted.", []string{"worker", id}, float64(s.ResultsEmitted))
		}
	}
	for _, id := range ids {
		if s := scraped[id]; s != nil {
			pw.Gauge("sharon_cluster_worker_groups_live", "Live groups owned by the worker.", []string{"worker", id}, float64(s.GroupsLive))
			clusterGroups += s.GroupsLive
		}
	}
	for _, stage := range workerStageOrder {
		for _, id := range ids {
			s := scraped[id]
			if s == nil {
				continue
			}
			if sum, ok := s.Stages[stage]; ok && sum.Count > 0 {
				pw.SummaryQuantiles("sharon_cluster_worker_stage_latency_seconds",
					"Worker-local per-stage latency digest, scraped from each worker.",
					[]string{"worker", id, "stage", stage}, sum, 1e-3)
			}
		}
	}
	pw.Counter("sharon_cluster_events_ingested_total", "Events applied across all reachable workers.", nil, float64(clusterIngested))
	pw.Gauge("sharon_cluster_groups_live", "Live groups across all reachable workers.", nil, float64(clusterGroups))

	w.Header().Set("Content-Type", obs.PromContentType)
	_, _ = w.Write(pw.Bytes())
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// handleTraces dumps the most recent pipeline spans (?n= bounds the
// count, default all retained) as JSON.
func (r *Router) handleTraces(w http.ResponseWriter, req *http.Request) {
	n, _ := strconv.Atoi(req.URL.Query().Get("n"))
	writeJSON(w, http.StatusOK, map[string]any{"spans": r.tracer.Spans(n)})
}
