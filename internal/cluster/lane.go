package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"slices"
	"strings"
	"sync/atomic"
	"time"

	"github.com/sharon-project/sharon/internal/obs"
	"github.com/sharon-project/sharon/internal/persist"
	"github.com/sharon-project/sharon/internal/server"
)

// punctStamp records when a forwarded step's watermark left the router,
// so the lane can measure punctuation lag — forward to frontier-pass.
type punctStamp struct {
	wm int64
	at int64 // Unix nanoseconds at forward time
}

// maxPunctStamps bounds the telemetry queue on a stalled worker (the
// delta is the correctness-bearing buffer; stamps are droppable).
const maxPunctStamps = 8192

// lane is the router's view of one worker: the punctuated SSE
// subscription feeding the merge, the buffered results awaiting the
// global frontier, and the retained hand-off delta. pending, frontier,
// and delta are guarded by Router.mu; the reader goroutine owns the
// connection.
type lane struct {
	id     string
	spec   WorkerSpec
	cancel context.CancelFunc
	done   chan struct{}

	// frontier is the worker's last punctuation: it owes no further
	// results for windows ending at or before it. Router.mu.
	frontier int64
	// pending buffers received results by window end until the global
	// frontier passes them. Router.mu.
	pending map[int64][]server.WireResult
	// delta retains the forwarded steps newer than frontier — what a
	// successor must replay if this worker dies. Router.mu.
	delta []persist.BatchRecord
	// lastSeq is the highest worker-local result seq received; SSE
	// reconnects resume from it so no result is lost in the gap.
	// Reader goroutine only.
	lastSeq int64
	// adopted receives the op IDs of `adopted` markers (rebalance
	// completion barriers).
	adopted chan int64
	// gone marks a lane removed from membership: its reader exits
	// quietly instead of raising a death check. Atomic.
	gone atomic.Bool
	// mute makes the reader drop every frame unseen — the tests' stand-in
	// for frames dying in a socket buffer at a kill. Atomic.
	mute atomic.Bool

	healthy          atomic.Bool
	misses           atomic.Int64
	groups           atomic.Int64
	forwardedEvents  atomic.Int64
	forwardedBatches atomic.Int64
	retries429       atomic.Int64

	// Per-lane stage histograms (atomic; snapshotted lock-free).
	// forwardNs is the POST /ingest round trip including 429 retries;
	// holdNs is merge-hold (first result arrival for a window end →
	// merged emit); punctNs is punctuation lag (step forwarded → lane
	// frontier passes its watermark).
	forwardNs obs.Histogram
	holdNs    obs.Histogram
	punctNs   obs.Histogram
	// arrival stamps the first received result per window end
	// (merge-hold start). Router.mu.
	arrival map[int64]int64
	// punctQ holds forwarded-step watermark stamps awaiting
	// punctuation, oldest first. Router.mu.
	punctQ []punctStamp
}

// newLane subscribes to a worker's punctuated result stream and starts
// its reader. Called from New and the join path (pump goroutine).
func (r *Router) newLane(spec WorkerSpec) (*lane, error) {
	spec.URL = strings.TrimSuffix(spec.URL, "/")
	ctx, cancel := context.WithCancel(context.Background())
	ln := &lane{
		id:       spec.URL,
		spec:     spec,
		cancel:   cancel,
		done:     make(chan struct{}),
		frontier: -1,
		pending:  make(map[int64][]server.WireResult),
		arrival:  make(map[int64]int64),
		lastSeq:  -1,
		adopted:  make(chan int64, 4),
	}
	ln.healthy.Store(true)
	resp, err := r.subscribeLane(ctx, ln, false)
	if err != nil {
		cancel()
		return nil, fmt.Errorf("cluster: subscribe %s: %w", ln.id, err)
	}
	go r.runLane(ctx, ln, resp)
	return ln, nil
}

// subscribeLane opens the SSE stream; resume re-reads from the last
// received seq via the worker's replay ring, so a dropped connection
// to a live worker loses nothing.
func (r *Router) subscribeLane(ctx context.Context, ln *lane, resume bool) (*http.Response, error) {
	url := ln.id + "/subscribe?punctuate=1"
	if resume {
		url = fmt.Sprintf("%s&after=%d", url, ln.lastSeq)
	}
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("subscribe status %d", resp.StatusCode)
	}
	return resp, nil
}

// runLane reads one worker's SSE stream: results into the merge
// buffers, punctuation into the frontier, adopt markers to the
// rebalancer. On a broken connection it resumes if the worker is still
// healthy, and raises a death check otherwise.
func (r *Router) runLane(ctx context.Context, ln *lane, resp *http.Response) {
	defer close(ln.done)
	for {
		r.readLane(ln, resp)
		resp.Body.Close()
		if ctx.Err() != nil || ln.gone.Load() {
			return
		}
		// Broken stream, lane still a member: probe, then resume from
		// the last received seq (the worker's replay ring backfills the
		// gap). A dead worker goes through the pump's rebalance.
		if healthy, _ := r.probe(ln.id); !healthy {
			r.suspectDead(ln.id)
			return
		}
		var err error
		resp, err = r.subscribeLane(ctx, ln, true)
		if err != nil {
			r.log.Warn("lane resume failed", "lane", ln.id, "err", err)
			r.suspectDead(ln.id)
			return
		}
		r.log.Info("lane resumed", "lane", ln.id, "seq", ln.lastSeq)
	}
}

// readLane consumes frames until the stream breaks or ends.
func (r *Router) readLane(ln *lane, resp *http.Response) {
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	evtype := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			evtype = ""
		case strings.HasPrefix(line, "event: "):
			evtype = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			if ln.mute.Load() {
				continue // dropped as if it never left the worker
			}
			payload := line[len("data: "):]
			switch evtype {
			case "":
				var wr server.WireResult
				if err := json.Unmarshal([]byte(payload), &wr); err != nil {
					r.fail("lane %s: malformed result %q: %v", ln.id, payload, err)
					return
				}
				if wr.Seq <= ln.lastSeq {
					continue // resume overlap
				}
				ln.lastSeq = wr.Seq
				r.mu.Lock()
				// A lane declared dead (or removed) mid-read must stop
				// touching the merge state: the rebalancer froze its
				// frontier and pruned its buffers under this same lock,
				// and a straggling frame — the connection may still be
				// draining when death is declared by failed probes —
				// would double what the successors regenerate.
				if ln.gone.Load() {
					r.mu.Unlock()
					return
				}
				ln.pending[wr.End] = append(ln.pending[wr.End], wr)
				if _, ok := ln.arrival[wr.End]; !ok {
					ln.arrival[wr.End] = time.Now().UnixNano()
				}
				r.mu.Unlock()
			case "wm":
				var p struct {
					Watermark int64 `json:"watermark"`
				}
				if json.Unmarshal([]byte(payload), &p) != nil {
					continue
				}
				now := time.Now().UnixNano()
				r.mu.Lock()
				if ln.gone.Load() {
					r.mu.Unlock()
					return
				}
				r.advanceLane(ln, p.Watermark, now)
				r.mu.Unlock()
			case "adopted":
				var p struct {
					Op        int64 `json:"op"`
					Watermark int64 `json:"watermark"`
				}
				if json.Unmarshal([]byte(payload), &p) != nil {
					continue
				}
				now := time.Now().UnixNano()
				r.mu.Lock()
				if ln.gone.Load() {
					r.mu.Unlock()
					return
				}
				r.advanceLane(ln, p.Watermark, now)
				r.mu.Unlock()
				select {
				case ln.adopted <- p.Op:
				default:
				}
			case "eof", "error", "dropped":
				return
			}
		}
	}
}

// advanceLane moves one lane's frontier, prunes its hand-off delta, and
// advances the merge. Caller holds Router.mu. A lane mid-rebalance (its
// worker died) never reaches here again, so the dead lane's frontier
// stays frozen and the merge cannot outrun the recovery. nowNano is the
// caller's wall-clock stamp (0 skips telemetry): a parameter, not a
// clock read, so this path stays deterministic.
//
//sharon:deterministic
func (r *Router) advanceLane(ln *lane, wm int64, nowNano int64) {
	if wm <= ln.frontier {
		return
	}
	ln.frontier = wm
	// Punctuation lag: every forwarded step the frontier just passed
	// was acknowledged end to end (forward → apply → punctuate → merge
	// frontier) in now − stamp.
	for len(ln.punctQ) > 0 && ln.punctQ[0].wm <= wm {
		if nowNano > 0 {
			ln.punctNs.Record(nowNano - ln.punctQ[0].at)
		}
		ln.punctQ = ln.punctQ[1:]
	}
	// A step whose watermark the worker has punctuated is fully applied
	// and durably logged there (WAL-before-apply); it will never need
	// replaying onto a successor.
	keep := ln.delta[:0]
	for _, b := range ln.delta {
		if b.Watermark > wm {
			keep = append(keep, b)
		}
	}
	clear(ln.delta[len(keep):])
	ln.delta = keep
	r.advanceMergeLocked(nowNano)
}

// advanceMergeLocked emits every buffered window at or below the global
// frontier (the minimum lane punctuation) in the canonical (window end,
// query, window, group) order, assigning the router's global sequence
// numbers — the same order and the same wire bytes a single sharond
// emits over the same input. Caller holds Router.mu. nowNano is the
// caller's wall-clock stamp for merge-hold telemetry and the published
// frames' fan-out stamps (0 skips both).
//
//sharon:deterministic
func (r *Router) advanceMergeLocked(nowNano int64) {
	if len(r.lanes) == 0 {
		return
	}
	frontier := int64(1<<63 - 1)
	//sharon:allow deterministicemit (min-reduction over lane frontiers is iteration-order independent)
	for _, ln := range r.lanes {
		if ln.frontier < frontier {
			frontier = ln.frontier
		}
	}
	if frontier <= r.mergedWM {
		return
	}
	var ends []int64
	//sharon:allow deterministicemit (the ranges only collect window ends; Sort+Compact below fixes the order)
	for _, ln := range r.lanes {
		//sharon:allow deterministicemit (same: collected ends are sorted and deduplicated below)
		for end := range ln.pending {
			if end <= frontier {
				ends = append(ends, end)
			}
		}
	}
	//sharon:allow deterministicemit (orphan ends join the same sorted, deduplicated list)
	for end := range r.orphan {
		if end <= frontier {
			ends = append(ends, end)
		}
	}
	slices.Sort(ends)
	ends = slices.Compact(ends)
	for _, end := range ends {
		var bucket []server.WireResult
		//sharon:allow deterministicemit (lanes hold disjoint group sets, and the bucket is totally ordered by the (query, window, group) sort below)
		for _, ln := range r.lanes {
			if rs, ok := ln.pending[end]; ok {
				bucket = append(bucket, rs...)
				delete(ln.pending, end)
			}
			if at, ok := ln.arrival[end]; ok {
				delete(ln.arrival, end)
				if nowNano > 0 {
					ln.holdNs.Record(nowNano - at)
				}
			}
		}
		if rs, ok := r.orphan[end]; ok {
			bucket = append(bucket, rs...)
			delete(r.orphan, end)
		}
		slices.SortFunc(bucket, func(a, b server.WireResult) int {
			switch {
			case a.Query != b.Query:
				return int(a.Query) - int(b.Query)
			case a.Win != b.Win:
				return cmp64(a.Win, b.Win)
			default:
				return cmp64(a.Group, b.Group)
			}
		})
		for i := range bucket {
			bucket[i].Seq = r.seq
			payload, err := json.Marshal(bucket[i])
			if err != nil {
				r.fail("marshal merged result: %v", err)
				return
			}
			r.ring.Append(r.seq, payload)
			r.hub.Publish(bucket[i].Query, bucket[i].Group, r.seq, payload, nowNano)
			r.seq++
			r.emitted.Add(1)
		}
	}
	r.mergedWM = frontier
	r.hub.PublishCtl("wm", fmt.Appendf(nil, `{"watermark":%d}`, frontier))
}

func cmp64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
