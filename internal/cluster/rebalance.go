package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	sharon "github.com/sharon-project/sharon"
	"github.com/sharon-project/sharon/internal/chash"
	"github.com/sharon-project/sharon/internal/exec"
	"github.com/sharon-project/sharon/internal/persist"
	"github.com/sharon-project/sharon/internal/server"
)

// Rebalancing moves consistent-hash ranges between workers at a window
// boundary, reusing the durability layer as the state-transfer
// primitive. All three flows run on the pump goroutine (ingestion is
// paused — the bounded queue backpressures clients with 429s):
//
// Worker death:
//  1. Freeze the dead lane at its last punctuation W_p (its buffered
//     results at or below W_p are complete; later ones are discarded as
//     possibly partial). The merge frontier cannot pass W_p.
//  2. Barrier: wait until every survivor has punctuated the router's
//     stream position P — all live state is now aligned at P.
//  3. Rebuild the dead worker's range from its durable state: the
//     newest checkpoint slice (persist.SliceSnapshotGroups) plus the
//     WAL-tail batch records, plus the router's retained delta (steps
//     newer than W_p). Per surviving owner of the moved range, ship an
//     AdoptRecord {slice, delta, EmitFrom: W_p, TargetWM: P}.
//  4. Each successor replays the hand-off in a temporary engine,
//     re-emitting exactly the results in (W_p, P] the dead worker never
//     delivered, absorbs the groups, and pushes an `adopted` marker.
//  5. Drop the dead lane, recompute the frontier (= P), and flush the
//     merge: buffered survivor results, the dead worker's (F, W_p]
//     leftovers, and the regenerated (W_p, P] slice interleave into the
//     canonical order. The merged stream is byte-identical to an
//     uninterrupted single-node run.
//
// Join and graceful leave use the same machinery with live sources:
// /cluster/extract cuts the moved range out of each source at the
// barrier (P = slice watermark, empty delta, nothing to regenerate).

// rebalanceDead recovers a dead worker's range onto the survivors.
func (r *Router) rebalanceDead(deadID string) {
	started := time.Now()
	r.log.Warn("worker presumed dead; rebalancing", "worker", deadID)

	r.mu.Lock()
	ln := r.lanes[deadID]
	if ln == nil || !r.chring.Has(deadID) {
		r.mu.Unlock()
		return
	}
	ln.gone.Store(true)
	//sharon:allow lockio (context.CancelFunc never blocks: it closes the done channel)
	ln.cancel()
	wp := ln.frontier
	// Results beyond the last punctuation may be a partial step; the
	// regeneration covers (W_p, P] completely, so drop them.
	for end := range ln.pending {
		if end > wp {
			delete(ln.pending, end)
		}
	}
	delta := append([]persist.BatchRecord(nil), ln.delta...)
	oldRing := r.chring
	newRing, err := r.chring.Remove(deadID)
	r.mu.Unlock()
	if err != nil {
		r.fail("rebalance %s: %v", deadID, err)
		return
	}
	if newRing.Size() == 0 {
		r.fail("last worker %s died; no survivors to rebalance onto", deadID)
		return
	}
	if ln.spec.DataDir == "" {
		r.fail("worker %s died without a data-dir; its open-window state is unrecoverable (run cluster workers with -data-dir)", deadID)
		return
	}
	target := r.wmState

	// Barrier: survivors must drain to P before state moves.
	if err := r.barrier(newRing.Members(), target); err != nil {
		r.fail("rebalance %s: %v", deadID, err)
		return
	}

	// Rebuild the dead worker's durable state: checkpoint slice + WAL
	// tail. The tail and the router delta overlap; the adoptee's replay
	// time-filters the overlap away.
	ck, tail, err := r.loadDeadState(ln.spec.DataDir)
	if err != nil {
		r.fail("rebalance %s: %v", deadID, err)
		return
	}
	delta = append(tail, delta...)

	// The checkpoint can be AHEAD of the last punctuation the router
	// received (the worker checkpointed at watermark C, then died while
	// the wm frames sat undelivered in the socket, so W_p < C). The
	// successors' temp-engine replay restores the slice with windows at
	// or below C already closed and can only regenerate (C, P] — the
	// results in (W_p, C] come from the checkpoint's own emission ring,
	// which the worker cut in the same consistent snapshot.
	if ck != nil {
		inject, err := ringResultsAfter(ck.Ring, wp)
		if err != nil {
			r.fail("rebalance %s: %v", deadID, err)
			return
		}
		if len(inject) > 0 {
			r.mu.Lock()
			for _, wr := range inject {
				r.orphan[wr.End] = append(r.orphan[wr.End], wr)
			}
			r.mu.Unlock()
			r.log.Info("recovered results from checkpoint emission ring", "worker", deadID, "results", len(inject), "from", wp, "to", ck.Watermark)
		}
	}

	for _, succ := range newRing.Members() {
		moved := chash.Moved(oldRing, newRing, deadID, succ)
		slice, err := r.sliceFor(ck, moved)
		if err != nil {
			r.fail("rebalance %s -> %s: %v", deadID, succ, err)
			return
		}
		part := filterDelta(delta, moved)
		// Skip successors the dead range contributes nothing to: an
		// event-free delta is watermark-only records (every batch
		// yields one), and a no-op adopt would still WAL-log a RecAdopt
		// the next dead-worker recovery refuses to flatten.
		if len(slice.Engine.Groups) == 0 && deltaEvents(part) == 0 {
			continue
		}
		if err := r.adopt(succ, persist.AdoptRecord{
			Op:       r.opSeq.Add(1),
			TargetWM: target,
			EmitFrom: wp,
			Plan:     r.plan,
			Slice:    slice,
			Delta:    part,
		}); err != nil {
			r.fail("rebalance %s -> %s: %v", deadID, succ, err)
			return
		}
	}

	// Membership flips, the dead lane leaves the frontier, and the
	// merge flushes everything at or below P in canonical order. The
	// dead lane's buckets at or below W_p normally drained while the
	// survivors crossed the barrier; whatever remains rides the orphan
	// buffer so no completed window can be dropped with the lane.
	now := time.Now().UnixNano()
	r.mu.Lock()
	r.chring = newRing
	for end, rs := range ln.pending {
		r.orphan[end] = append(r.orphan[end], rs...)
	}
	delete(r.lanes, deadID)
	r.advanceMergeLocked(now)
	r.mu.Unlock()
	r.rebalances.Add(1)
	r.lastRebalance.Store(time.Since(started).Nanoseconds())
	r.log.Info("rebalanced dead worker", "worker", deadID, "survivors", newRing.Size(), "took", time.Since(started).Round(time.Millisecond), "watermark", target)
}

// barrier waits until every listed lane has punctuated wm — its queue
// is drained and its results for windows ending at or before wm are in
// the merge buffers.
func (r *Router) barrier(ids []string, wm int64) error {
	deadline := time.Now().Add(r.cfg.BarrierTimeout)
	for {
		behind := ""
		r.mu.Lock()
		for _, id := range ids {
			ln := r.lanes[id]
			if ln == nil {
				r.mu.Unlock()
				return fmt.Errorf("barrier: no lane %s", id)
			}
			if ln.frontier < wm {
				behind = fmt.Sprintf("%s at %d of %d", id, ln.frontier, wm)
				break
			}
		}
		r.mu.Unlock()
		if behind == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("barrier timed out: %s", behind)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// loadDeadState reads a dead worker's durable directory: the newest
// checkpoint (nil if none) and the WAL-tail batch records past it. A
// tail holding a cluster adopt of its own (a rebalance within the last
// checkpoint interval) is refused — the nested hand-off state cannot be
// flattened safely — and the operator intervenes.
func (r *Router) loadDeadState(dir string) (*persist.Checkpoint, []persist.BatchRecord, error) {
	ck, err := persist.LoadLatestCheckpoint(dir, r.cfg.Logf)
	if err != nil {
		return nil, nil, fmt.Errorf("load checkpoint: %w", err)
	}
	after := int64(-1)
	if ck != nil {
		after = ck.WALSeq
		if len(ck.Queries) != len(r.cfg.Queries) {
			return nil, nil, fmt.Errorf("dead worker checkpoint has %d queries, cluster runs %d", len(ck.Queries), len(r.cfg.Queries))
		}
		for i, q := range ck.Queries {
			if q.Text != r.cfg.Queries[i] {
				return nil, nil, fmt.Errorf("dead worker checkpoint query %d is %q, cluster runs %q", i, q.Text, r.cfg.Queries[i])
			}
		}
	}
	wal, err := persist.OpenWAL(dir, persist.WALOptions{Logf: r.cfg.Logf})
	if err != nil {
		return nil, nil, fmt.Errorf("open wal: %w", err)
	}
	defer wal.Close()
	var tail []persist.BatchRecord
	err = wal.Replay(after, func(rec persist.Record) error {
		switch rec.Type {
		case persist.RecBatch:
			b, err := persist.DecodeBatchRecord(rec.Payload)
			if err != nil {
				return err
			}
			tail = append(tail, b)
		case persist.RecExtract:
			// Groups extracted away are no longer in the dead worker's
			// arcs on the current ring; the moved-key predicate already
			// excludes them.
			return nil
		case persist.RecCtl:
			return fmt.Errorf("wal tail holds a live workload change; cluster workers must not take live registrations")
		case persist.RecAdopt:
			return fmt.Errorf("wal tail holds an un-checkpointed adopt (the worker died mid-rebalance-interval); recover it manually by restarting the worker on its data-dir")
		default:
			return fmt.Errorf("unknown wal record type %d", rec.Type)
		}
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("wal tail: %w", err)
	}
	return ck, tail, nil
}

// ringResultsAfter extracts the emissions with window end past wp from
// a checkpoint's retained ring. It refuses when the ring may have
// trimmed entries the merge still needs: completeness holds when the
// ring reaches back to the stream head (first Seq 0) or to a result
// already covered by the punctuation (cluster worker emission ends are
// nondecreasing except adopt regenerations, which stay at or below
// their own barrier and therefore below wp).
func ringResultsAfter(ring []persist.RingEntry, wp int64) ([]server.WireResult, error) {
	if len(ring) == 0 {
		return nil, nil
	}
	parsed := make([]server.WireResult, len(ring))
	for i, e := range ring {
		if err := json.Unmarshal(e.Payload, &parsed[i]); err != nil {
			return nil, fmt.Errorf("checkpoint ring entry seq %d: %w", e.Seq, err)
		}
	}
	if ring[0].Seq > 0 && parsed[0].End > wp {
		return nil, fmt.Errorf("checkpoint emission ring starts past the last received punctuation %d (oldest retained end %d); the dead worker's -replay-buffer was too small to bridge the hand-off", wp, parsed[0].End)
	}
	var out []server.WireResult
	for _, wr := range parsed {
		if wr.End > wp {
			out = append(out, wr)
		}
	}
	return out, nil
}

// sliceFor cuts the moved groups out of a checkpoint's engine state
// (an empty engine slice when no checkpoint exists yet).
func (r *Router) sliceFor(ck *persist.Checkpoint, keep func(sharon.GroupKey) bool) (*exec.SystemSnapshot, error) {
	if ck == nil || ck.State == nil {
		return &exec.SystemSnapshot{Kind: exec.KindEngine, Engine: &exec.EngineSnapshot{}}, nil
	}
	return persist.SliceSnapshotGroups(ck.State, keep)
}

// deltaEvents counts the events across a filtered delta.
func deltaEvents(delta []persist.BatchRecord) int {
	n := 0
	for _, b := range delta {
		n += len(b.Events)
	}
	return n
}

// filterDelta projects the hand-off delta onto one successor's keys,
// keeping every step's watermark (the successor's temporary engine must
// close the same windows the dead worker would have).
func filterDelta(delta []persist.BatchRecord, keep func(sharon.GroupKey) bool) []persist.BatchRecord {
	out := make([]persist.BatchRecord, 0, len(delta))
	for _, b := range delta {
		var events []sharon.Event
		for _, e := range b.Events {
			if keep(e.Key) {
				events = append(events, e)
			}
		}
		out = append(out, persist.BatchRecord{Events: events, Watermark: b.Watermark})
	}
	return out
}

// adopt ships one AdoptRecord and waits for both the HTTP reply and the
// `adopted` SSE marker — the marker is ordered after the regenerated
// results on the lane, so once it arrives the merge buffers are
// complete for the grafted range.
func (r *Router) adopt(succ string, rec persist.AdoptRecord) error {
	ln := r.lane(succ)
	if ln == nil {
		return fmt.Errorf("no lane for successor %s", succ)
	}
	return r.adoptLane(ln, rec)
}

// adoptLane is adopt against an explicit lane (the join path grafts
// into a staged lane not yet in the membership map).
func (r *Router) adoptLane(ln *lane, rec persist.AdoptRecord) error {
	succ := ln.id
	body, err := persist.EncodeAdoptRecord(rec)
	if err != nil {
		return err
	}
	resp, err := r.client.Post(succ+"/cluster/adopt", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("adopt post: %w", err)
	}
	reply, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("adopt status %d: %s", resp.StatusCode, bytes.TrimSpace(reply))
	}
	deadline := time.NewTimer(r.cfg.BarrierTimeout)
	defer deadline.Stop()
	for {
		select {
		case op := <-ln.adopted:
			if op == rec.Op {
				return nil
			}
		case <-deadline.C:
			return fmt.Errorf("adopted marker %d from %s timed out", rec.Op, succ)
		}
	}
}

// applyCtl executes a membership change (or a death check) on the pump.
func (r *Router) applyCtl(ctl *routerCtl) {
	reply := func(status int, body any) {
		if ctl.reply != nil {
			ctl.reply <- ctlResult{status: status, body: body}
		}
	}
	switch {
	case ctl.deadcheck != "":
		if r.lane(ctl.deadcheck) == nil {
			return // already rebalanced
		}
		if healthy, _ := r.probe(ctl.deadcheck); healthy {
			return // transient; the lane reader resumes on its own
		}
		if r.failed() == "" {
			r.rebalanceDead(ctl.deadcheck)
		}
	case ctl.join != nil:
		status, body := r.join(*ctl.join)
		reply(status, body)
	case ctl.leave != "":
		status, body := r.leave(ctl.leave)
		reply(status, body)
	}
}

// join adds a fresh worker: extract its ring share from each current
// owner at the barrier and graft the combined slice into it.
func (r *Router) join(spec WorkerSpec) (int, any) {
	started := time.Now()
	id := spec.URL
	r.mu.Lock()
	already := r.chring.Has(id)
	oldRing := r.chring
	r.mu.Unlock()
	if already {
		return http.StatusConflict, map[string]string{"error": fmt.Sprintf("worker %s already a member", id)}
	}
	if err := r.checkWorkerWorkload(id); err != nil {
		return http.StatusBadRequest, map[string]string{"error": err.Error()}
	}
	if err := r.checkWorkerFresh(id); err != nil {
		return http.StatusConflict, map[string]string{"error": err.Error()}
	}
	newRing, err := oldRing.Add(id)
	if err != nil {
		return http.StatusBadRequest, map[string]string{"error": err.Error()}
	}
	ln, err := r.newLane(spec)
	if err != nil {
		return http.StatusBadGateway, map[string]string{"error": err.Error()}
	}
	abort := func(status int, err error) (int, any) {
		ln.gone.Store(true)
		ln.cancel()
		r.rebalanceFail.Add(1)
		return status, map[string]string{"error": err.Error()}
	}
	target := r.wmState
	if err := r.barrier(oldRing.Members(), target); err != nil {
		return abort(http.StatusGatewayTimeout, err)
	}
	// From the first extract on, failures are fatal: an extract is
	// destructive at its source (the groups are WAL-logged out and
	// removed before the slice is returned), so a partial round leaves
	// the moved range ownerless — the router must stop serving rather
	// than let the sources rebuild those groups from empty state.
	merged := &exec.EngineSnapshot{}
	for _, src := range oldRing.Members() {
		x, err := r.extract(src, oldRing, newRing, id)
		if err != nil {
			r.fail("join %s: %v", id, err)
			return abort(http.StatusBadGateway, err)
		}
		if x.Watermark != target {
			err := fmt.Errorf("extract from %s at watermark %d, expected %d", src, x.Watermark, target)
			r.fail("join %s: %v", id, err)
			return abort(http.StatusBadGateway, err)
		}
		if err := mergeSlices(merged, x.Slice.Engine); err != nil {
			r.fail("join %s: %v", id, err)
			return abort(http.StatusBadGateway, err)
		}
	}
	if err := r.adoptLane(ln, persist.AdoptRecord{
		Op:       r.opSeq.Add(1),
		TargetWM: target,
		EmitFrom: target,
		Plan:     r.plan,
		Slice:    &exec.SystemSnapshot{Kind: exec.KindEngine, Engine: merged},
	}); err != nil {
		// The sources already gave their groups up; without the graft
		// the range is ownerless. Fatal.
		r.fail("join %s: %v", id, err)
		return http.StatusBadGateway, map[string]string{"error": err.Error()}
	}
	now := time.Now().UnixNano()
	r.mu.Lock()
	r.chring = newRing
	r.lanes[id] = ln
	r.advanceMergeLocked(now)
	r.mu.Unlock()
	r.rebalances.Add(1)
	r.lastRebalance.Store(time.Since(started).Nanoseconds())
	r.log.Info("worker joined", "worker", id, "groups", len(merged.Groups), "watermark", target, "took", time.Since(started).Round(time.Millisecond))
	return http.StatusOK, map[string]any{
		"joined":    id,
		"groups":    len(merged.Groups),
		"watermark": target,
		"workers":   newRing.Members(),
	}
}

// leave removes a member gracefully, handing each of its ranges to the
// surviving owner.
func (r *Router) leave(id string) (int, any) {
	started := time.Now()
	r.mu.Lock()
	ln := r.lanes[id]
	oldRing := r.chring
	r.mu.Unlock()
	if ln == nil || !oldRing.Has(id) {
		return http.StatusNotFound, map[string]string{"error": fmt.Sprintf("worker %s not a member", id)}
	}
	newRing, err := oldRing.Remove(id)
	if err != nil {
		return http.StatusBadRequest, map[string]string{"error": err.Error()}
	}
	if newRing.Size() == 0 {
		return http.StatusConflict, map[string]string{"error": "cannot remove the last worker"}
	}
	target := r.wmState
	if err := r.barrier(oldRing.Members(), target); err != nil {
		r.rebalanceFail.Add(1)
		return http.StatusGatewayTimeout, map[string]string{"error": err.Error()}
	}
	moved := 0
	for _, succ := range newRing.Members() {
		x, err := r.extract(id, oldRing, newRing, succ)
		if err != nil {
			r.fail("leave %s: %v", id, err)
			return http.StatusBadGateway, map[string]string{"error": err.Error()}
		}
		if len(x.Slice.Engine.Groups) == 0 {
			continue
		}
		moved += len(x.Slice.Engine.Groups)
		if err := r.adopt(succ, persist.AdoptRecord{
			Op:       r.opSeq.Add(1),
			TargetWM: target,
			EmitFrom: target,
			Plan:     r.plan,
			Slice:    x.Slice,
		}); err != nil {
			r.fail("leave %s -> %s: %v", id, succ, err)
			return http.StatusBadGateway, map[string]string{"error": err.Error()}
		}
	}
	now := time.Now().UnixNano()
	r.mu.Lock()
	ln.gone.Store(true)
	//sharon:allow lockio (context.CancelFunc never blocks: it closes the done channel)
	ln.cancel()
	r.chring = newRing
	for end, rs := range ln.pending {
		r.orphan[end] = append(r.orphan[end], rs...)
	}
	delete(r.lanes, id)
	r.advanceMergeLocked(now)
	r.mu.Unlock()
	r.rebalances.Add(1)
	r.lastRebalance.Store(time.Since(started).Nanoseconds())
	r.log.Info("worker left", "worker", id, "groups", moved, "survivors", newRing.Size(), "took", time.Since(started).Round(time.Millisecond))
	return http.StatusOK, map[string]any{
		"left":    id,
		"groups":  moved,
		"workers": newRing.Members(),
	}
}

// extract asks src to cut the keys moving from `from` to `to` between
// the two memberships.
func (r *Router) extract(src string, oldRing, newRing *chash.Ring, to string) (persist.ExtractResponse, error) {
	reqBody, _ := json.MarshalIndent(server.ExtractRequest{
		Op:     r.opSeq.Add(1),
		VNodes: r.cfg.VNodes,
		Old:    oldRing.Members(),
		New:    newRing.Members(),
		Source: src,
		Target: to,
	}, "", "")
	resp, err := r.client.Post(src+"/cluster/extract", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		return persist.ExtractResponse{}, fmt.Errorf("extract from %s: %w", src, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
	if err != nil {
		return persist.ExtractResponse{}, fmt.Errorf("extract from %s: %w", src, err)
	}
	if resp.StatusCode != http.StatusOK {
		return persist.ExtractResponse{}, fmt.Errorf("extract from %s: status %d: %s", src, resp.StatusCode, bytes.TrimSpace(body))
	}
	x, err := persist.DecodeExtractResponse(body)
	if err != nil {
		return persist.ExtractResponse{}, fmt.Errorf("extract from %s: %w", src, err)
	}
	if x.Slice == nil || x.Slice.Engine == nil {
		x.Slice = &exec.SystemSnapshot{Kind: exec.KindEngine, Engine: &exec.EngineSnapshot{}}
	}
	return x, nil
}

// checkWorkerFresh refuses joining a worker that already holds state:
// its groups would collide with the live owners'.
func (r *Router) checkWorkerFresh(id string) error {
	resp, err := r.client.Get(id + "/metrics")
	if err != nil {
		return fmt.Errorf("worker %s unreachable: %w", id, err)
	}
	defer resp.Body.Close()
	var st struct {
		Watermark      int64 `json:"watermark"`
		EventsIngested int64 `json:"events_ingested"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("worker %s /metrics: %w", id, err)
	}
	if st.Watermark >= 0 || st.EventsIngested > 0 {
		return fmt.Errorf("worker %s already holds stream state (watermark %d, %d events); join a fresh worker (empty data-dir)", id, st.Watermark, st.EventsIngested)
	}
	return nil
}

// mergeSlices concatenates group slices extracted at the same barrier.
func mergeSlices(dst, src *exec.EngineSnapshot) error {
	if !src.Started && len(src.Groups) == 0 {
		return nil
	}
	if !dst.Started {
		dst.Started = true
		dst.LastTime, dst.NextClose, dst.MaxWin = src.LastTime, src.NextClose, src.MaxWin
	} else if dst.LastTime != src.LastTime || dst.NextClose != src.NextClose || dst.MaxWin != src.MaxWin {
		return fmt.Errorf("extract slices disagree on stream position (t=%d vs t=%d)", dst.LastTime, src.LastTime)
	}
	dst.Groups = append(dst.Groups, src.Groups...)
	return nil
}
