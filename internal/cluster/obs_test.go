package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"github.com/sharon-project/sharon/internal/metrics"
	"github.com/sharon-project/sharon/internal/obs"
)

// TestRouterObservability drives a small cluster and checks the
// router's observability surface end to end: the JSON /metrics stage
// digests, the Prometheus exposition (router series, per-worker lane
// series, and the scraped cluster-wide worker view), and the span ring
// at /debug/traces — all telling the same story as the counters.
func TestRouterObservability(t *testing.T) {
	nodes := []*testNode{
		startNode(t, 1, t.TempDir()),
		startNode(t, 1, t.TempDir()),
	}
	rt, rthttp := startRouter(t, nodes)
	sub := subscribe(t, rthttp.URL)

	const events, batch, groups = 20000, 512, 16
	batches := genBatches(events, batch, groups)
	for _, b := range batches {
		post(t, rthttp.URL, b)
	}
	postWatermark(t, rthttp.URL, int64(events)+4000)
	quiesce(t, sub, 1)

	// JSON view: stage digests present and consistent with the counters.
	resp, err := http.Get(rthttp.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var st metrics.RouterStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.EventsIngested != events {
		t.Fatalf("events_ingested = %d, want %d", st.EventsIngested, events)
	}
	if st.Stages == nil {
		t.Fatal("JSON metrics carry no stages")
	}
	for _, stage := range []string{"decode_ndjson", "queue", "forward", "fanout"} {
		if st.Stages[stage].Count == 0 {
			t.Fatalf("stage %q has no samples: %+v", stage, st.Stages[stage])
		}
	}
	// One forward-stage sample per event-carrying batch; the watermark
	// step records none.
	if got := st.Stages["forward"].Count; got != st.Batches {
		t.Fatalf("forward stage count = %d, want batches = %d", got, st.Batches)
	}
	if len(st.Workers) != 2 {
		t.Fatalf("workers = %d, want 2", len(st.Workers))
	}
	for _, ws := range st.Workers {
		if ws.Forward == nil || ws.Forward.Count == 0 {
			t.Fatalf("worker %s has no forward latency digest", ws.ID)
		}
		if ws.PunctLag == nil || ws.PunctLag.Count == 0 {
			t.Fatalf("worker %s has no punctuation-lag digest", ws.ID)
		}
		if ws.MergeHold == nil || ws.MergeHold.Count == 0 {
			t.Fatalf("worker %s has no merge-hold digest", ws.ID)
		}
	}

	// Prometheus view: parses, and the core series match the JSON view.
	resp, err = http.Get(rthttp.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("prometheus Content-Type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseProm(data)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, data)
	}
	if v, ok := obs.FindSample(samples, "sharon_router_events_ingested_total", nil); !ok || int64(v) != st.EventsIngested {
		t.Fatalf("sharon_router_events_ingested_total = %v (ok=%v), want %d", v, ok, st.EventsIngested)
	}
	if v, ok := obs.FindSample(samples, "sharon_router_stage_latency_seconds_count", map[string]string{"stage": "forward"}); !ok || int64(v) != st.Batches {
		t.Fatalf("forward stage exposition count = %v (ok=%v), want %d", v, ok, st.Batches)
	}
	var workerIngested int64
	for _, ws := range st.Workers {
		if v, ok := obs.FindSample(samples, "sharon_cluster_worker_up", map[string]string{"worker": ws.ID}); !ok || v != 1 {
			t.Fatalf("sharon_cluster_worker_up{worker=%q} = %v (ok=%v), want 1", ws.ID, v, ok)
		}
		v, ok := obs.FindSample(samples, "sharon_cluster_worker_events_ingested_total", map[string]string{"worker": ws.ID})
		if !ok {
			t.Fatalf("no scraped ingest counter for worker %s", ws.ID)
		}
		workerIngested += int64(v)
		if _, ok := obs.FindSample(samples, "sharon_cluster_worker_stage_latency_seconds", map[string]string{"worker": ws.ID, "stage": "apply", "quantile": "0.99"}); !ok {
			t.Fatalf("no scraped apply-stage digest for worker %s", ws.ID)
		}
	}
	// Every accepted event was forwarded to exactly one worker.
	if workerIngested != events {
		t.Fatalf("workers ingested %d events between them, want %d", workerIngested, events)
	}

	// Span ring: batch spans recorded, newest-first bounded dump.
	resp, err = http.Get(rthttp.URL + "/debug/traces?n=10")
	if err != nil {
		t.Fatal(err)
	}
	var traces struct {
		Spans []obs.Span `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(traces.Spans) == 0 || len(traces.Spans) > 10 {
		t.Fatalf("got %d spans, want 1..10", len(traces.Spans))
	}
	sawBatch := false
	for _, s := range traces.Spans {
		if s.Kind == "batch" && s.Events > 0 && s.DurNs >= 0 {
			sawBatch = true
		}
	}
	if !sawBatch {
		t.Fatalf("no batch span in %+v", traces.Spans)
	}
	_ = rt
}
