package metrics

import "github.com/sharon-project/sharon/internal/obs"

// RouterStats is the /metrics snapshot of a cluster router: ingestion
// and merge progress plus the per-worker shard-occupancy and rebalance
// counters.
type RouterStats struct {
	// UptimeSec is the wall-clock seconds since the router started.
	UptimeSec float64 `json:"uptime_sec"`
	// Queries is the number of queries the cluster serves.
	Queries int `json:"queries"`
	// Watermark is the router's ingest stream position (max event time
	// or explicit watermark; -1 before the first).
	Watermark int64 `json:"watermark"`
	// MergedWatermark is the merge frontier: every result for windows
	// ending at or before it has been emitted downstream.
	MergedWatermark int64 `json:"merged_watermark"`

	// EventsIngested counts events accepted and forwarded.
	EventsIngested int64 `json:"events_ingested"`
	// EventsDroppedLate / EventsDroppedUnknownType mirror sharond's
	// ingest filters, applied once at the router.
	EventsDroppedLate        int64 `json:"events_dropped_late"`
	EventsDroppedUnknownType int64 `json:"events_dropped_unknown_type"`
	// Batches counts accepted ingest batches.
	Batches int64 `json:"batches"`
	// RejectedBackpressure / RejectedOversize count 429/413 refusals.
	RejectedBackpressure int64 `json:"rejected_backpressure"`
	RejectedOversize     int64 `json:"rejected_oversize"`
	// IngestQueueDepth/Cap describe the router's bounded ingest queue.
	IngestQueueDepth int `json:"ingest_queue_depth"`
	IngestQueueCap   int `json:"ingest_queue_cap"`

	// ResultsEmitted counts merged results pushed downstream (the
	// cluster's global emission sequence height).
	ResultsEmitted int64 `json:"results_emitted"`
	// ResultsDelivered counts frames fanned out to subscribers.
	ResultsDelivered int64 `json:"results_delivered"`
	// Subscribers is the number of live downstream subscriptions.
	Subscribers int `json:"subscribers"`
	// SlowConsumerDisconnects counts subscribers dropped for lagging.
	SlowConsumerDisconnects int64 `json:"slow_consumer_disconnects"`

	// FanoutFramesEncoded counts shared frames rendered once per merged
	// result or control event (never multiplied by subscriber count);
	// FanoutFramesDelivered counts frames written into subscriber
	// streams. FanoutDroppedSlow/Filtered count subscribers ended with
	// an explicit `dropped` terminal frame.
	FanoutFramesEncoded   int64 `json:"fanout_frames_encoded"`
	FanoutFramesDelivered int64 `json:"fanout_frames_delivered"`
	FanoutDroppedSlow     int64 `json:"fanout_dropped_slow"`
	FanoutDroppedFiltered int64 `json:"fanout_dropped_filtered"`

	// AutoScaleOut/AutoScaleIn count occupancy-triggered join/leave
	// rebalances the router launched on its own; AutoScaleFailed counts
	// attempts that aborted. StandbyWorkers is the remaining pool of
	// joinable fresh workers.
	AutoScaleOut    int64 `json:"autoscale_out"`
	AutoScaleIn     int64 `json:"autoscale_in"`
	AutoScaleFailed int64 `json:"autoscale_failed"`
	StandbyWorkers  int   `json:"standby_workers"`

	// Rebalances counts completed hash-range hand-offs (worker death,
	// join, leave); RebalancesFailed counts aborted ones (the cluster
	// enters the error state).
	Rebalances       int64 `json:"rebalances"`
	RebalancesFailed int64 `json:"rebalances_failed"`
	// LastRebalanceMs is the duration of the most recent rebalance.
	LastRebalanceMs float64 `json:"last_rebalance_ms"`

	// Draining reports shutdown; Error a fatal cluster condition.
	Draining bool   `json:"draining"`
	Error    string `json:"error,omitempty"`

	// Stages holds the router's per-stage latency digests, keyed
	// decode_ndjson, decode_binary, queue, forward, fanout. Values are
	// milliseconds. Empty stages are omitted.
	Stages map[string]obs.Summary `json:"stages,omitempty"`

	// Workers is the per-worker view: membership, merge frontier, and
	// shard occupancy.
	Workers []RouterWorkerStats `json:"workers"`
}

// RouterWorkerStats is one worker's slice of the router's view.
type RouterWorkerStats struct {
	// ID is the ring member id (the worker URL).
	ID string `json:"id"`
	// Healthy is the last health-probe outcome.
	Healthy bool `json:"healthy"`
	// Frontier is the worker's last punctuated watermark: every result
	// it owes for windows ending at or before it has been received.
	Frontier int64 `json:"frontier"`
	// EventsForwarded / BatchesForwarded count the ingest slices routed
	// to this worker; Retries429 its backpressure retries.
	EventsForwarded  int64 `json:"events_forwarded"`
	BatchesForwarded int64 `json:"batches_forwarded"`
	Retries429       int64 `json:"retries_429"`
	// PendingResults is the number of results buffered in the merge
	// awaiting the global frontier.
	PendingResults int `json:"pending_results"`
	// DeltaBatches is the retained hand-off delta (steps newer than the
	// worker's frontier, replayed onto a successor if this worker dies).
	DeltaBatches int `json:"delta_batches"`
	// GroupsLive is the worker's live group count (from its /metrics) —
	// the cluster's shard-occupancy signal.
	GroupsLive int64 `json:"groups_live"`

	// Forward digests the round-trip latency of ingest POSTs to this
	// worker (including backpressure retries); MergeHold the time a
	// result waited in the merge buffer between first arrival and the
	// frontier passing its window; PunctLag the lag between forwarding a
	// watermark and this worker's punctuation covering it. Milliseconds;
	// nil until the lane records a sample.
	Forward   *obs.Summary `json:"forward_ms,omitempty"`
	MergeHold *obs.Summary `json:"merge_hold_ms,omitempty"`
	PunctLag  *obs.Summary `json:"punct_lag_ms,omitempty"`
}
