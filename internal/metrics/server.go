package metrics

import "github.com/sharon-project/sharon/internal/obs"

// ServerStats is the point-in-time counter snapshot sharond serves on
// /metrics: the network-facing complement of RunStats/ParallelStats for
// an open-ended run — ingestion, backpressure, subscription, and
// watermark progress counters instead of a finite stream's totals.
type ServerStats struct {
	// UptimeSec is the wall-clock seconds since the server started.
	UptimeSec float64 `json:"uptime_sec"`
	// Queries is the number of registered queries.
	Queries int `json:"queries"`
	// Parallelism is the configured shard worker count (1 = sequential).
	Parallelism int `json:"parallelism"`

	// EventsIngested counts events accepted into the engine.
	EventsIngested int64 `json:"events_ingested"`
	// EventsDroppedLate counts events discarded for arriving at or
	// behind the stream watermark.
	EventsDroppedLate int64 `json:"events_dropped_late"`
	// EventsDroppedUnknownType counts events whose type matches no
	// registered query's pattern alphabet.
	EventsDroppedUnknownType int64 `json:"events_dropped_unknown_type"`
	// Batches counts accepted ingest batches.
	Batches int64 `json:"batches"`
	// RejectedBackpressure counts ingest batches refused with 429
	// because the bounded ingest queue was full.
	RejectedBackpressure int64 `json:"rejected_backpressure"`
	// RejectedOversize counts ingest requests refused with 413 for
	// exceeding the request body limit.
	RejectedOversize int64 `json:"rejected_oversize"`
	// IngestQueueDepth/IngestQueueCap describe the bounded ingest queue.
	IngestQueueDepth int `json:"ingest_queue_depth"`
	IngestQueueCap   int `json:"ingest_queue_cap"`
	// Watermark is the stream watermark in ticks (max event time or
	// explicit watermark seen; -1 before the first).
	Watermark int64 `json:"watermark"`

	// ResultsEmitted counts results the engine pushed to the server's
	// sink; ResultsDelivered counts result messages fanned out to
	// subscribers (one per result per matching subscriber).
	ResultsEmitted   int64 `json:"results_emitted"`
	ResultsDelivered int64 `json:"results_delivered"`
	// Subscribers is the number of live result subscriptions.
	Subscribers int `json:"subscribers"`
	// SlowConsumerDisconnects counts subscribers dropped because the
	// broadcast log's retention overran their cursor.
	SlowConsumerDisconnects int64 `json:"slow_consumer_disconnects"`

	// FanoutFramesEncoded counts shared frames rendered by the broadcast
	// tier — one per published result or control event, never multiplied
	// by subscriber count (the encode-once invariant).
	// FanoutFramesDelivered counts frames written into subscriber
	// streams (one per frame per matching subscriber).
	FanoutFramesEncoded   int64 `json:"fanout_frames_encoded"`
	FanoutFramesDelivered int64 `json:"fanout_frames_delivered"`
	// FanoutDroppedSlow/FanoutDroppedFiltered count subscribers ended
	// with an explicit `dropped` terminal frame on log overrun
	// (slow-consumer = unfiltered, filtered-resume = filtered stream
	// that cannot verify its own loss).
	FanoutDroppedSlow     int64 `json:"fanout_dropped_slow"`
	FanoutDroppedFiltered int64 `json:"fanout_dropped_filtered"`

	// Migrations counts live workload changes (queries added/removed)
	// that installed a new plan.
	Migrations int64 `json:"migrations"`
	// BurstState is the adaptive runtime's debounced detector state
	// ("valley" | "burst"); empty when the server is not adaptive.
	BurstState string `json:"burst_state,omitempty"`
	// ShareTransitions/SplitTransitions count the adaptive runtime's
	// confirmed burst→shared and valley→split plan installs.
	ShareTransitions int64 `json:"share_transitions"`
	SplitTransitions int64 `json:"split_transitions"`
	// PrunedStarts counts START records the state reduction recycled at
	// birth (no open window could still observe them).
	PrunedStarts int64 `json:"pruned_starts"`
	// PeakLiveStates is the engine's peak live aggregate-state count
	// (sequential engines report live; parallel engines report 0 until
	// drained — worker goroutines own the shard state while running).
	PeakLiveStates int64 `json:"peak_live_states"`
	// GroupsLive is a gauge of the live per-group runtimes the engine
	// owns — in a cluster, each worker's share of the key space.
	GroupsLive int64 `json:"groups_live"`
	// Draining reports whether the server is shutting down.
	Draining bool `json:"draining"`

	// Stages digests the per-stage pipeline latency histograms (values
	// in milliseconds; "wire_batch_events" is a size distribution in
	// events). Keys: decode_ndjson, decode_binary, decode_stream,
	// queue, apply, emit, fanout — see README "Observability" for the
	// stage boundaries. A superset field: absent before the first
	// sample only if the map is empty.
	Stages map[string]obs.Summary `json:"stages,omitempty"`

	// Parallel carries the shard-occupancy counters when the engine
	// runs the parallel executor.
	Parallel *ParallelStatsJSON `json:"parallel,omitempty"`

	// Durability carries the WAL/checkpoint counters when the server
	// runs with a data directory.
	Durability *DurabilityStatsJSON `json:"durability,omitempty"`
}

// DurabilityStatsJSON is the /metrics view of the persistence layer:
// WAL size/position, checkpoint recency, and recovery progress.
type DurabilityStatsJSON struct {
	// FsyncPolicy is the configured WAL sync policy.
	FsyncPolicy string `json:"fsync_policy"`
	// WalBytes/WalSegments describe the live log; WalNextSeq is the next
	// record sequence number; WalAppended/WalSyncs count operations since
	// boot.
	WalBytes    int64 `json:"wal_bytes"`
	WalSegments int   `json:"wal_segments"`
	WalNextSeq  int64 `json:"wal_next_seq"`
	WalAppended int64 `json:"wal_appended"`
	WalSyncs    int64 `json:"wal_syncs"`
	// Checkpoints counts checkpoints written since boot;
	// LastCheckpointAgeSec is the age of the newest one (-1 before the
	// first), LastCheckpointBytes its encoded size.
	Checkpoints          int64   `json:"checkpoints"`
	LastCheckpointAgeSec float64 `json:"last_checkpoint_age_sec"`
	LastCheckpointBytes  int64   `json:"last_checkpoint_bytes"`
	// ReplayedBatches/ReplayedEvents count the WAL tail re-applied at
	// boot; Recovering reports whether replay is still running.
	ReplayedBatches int64 `json:"replayed_batches"`
	ReplayedEvents  int64 `json:"replayed_events"`
	Recovering      bool  `json:"recovering"`
}

// ParallelStatsJSON is the wire form of ParallelStats (the in-memory
// struct predates JSON exposure and carries no tags).
type ParallelStatsJSON struct {
	Workers       int     `json:"workers"`
	BatchSize     int     `json:"batch_size"`
	EventsFed     int64   `json:"events_fed"`
	Rounds        int64   `json:"rounds"`
	ResultsMerged int64   `json:"results_merged"`
	Imbalance     float64 `json:"imbalance"`
}

// WireParallelStats converts a ParallelStats snapshot to its wire form,
// or nil for the zero value (sequential run).
func WireParallelStats(p ParallelStats) *ParallelStatsJSON {
	if p.Workers == 0 {
		return nil
	}
	return &ParallelStatsJSON{
		Workers:       p.Workers,
		BatchSize:     p.BatchSize,
		EventsFed:     p.EventsFed,
		Rounds:        p.Rounds,
		ResultsMerged: p.ResultsMerged,
		Imbalance:     p.Imbalance(),
	}
}
