package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestShardCountersSnapshot(t *testing.T) {
	var c ShardCounters
	c.Events.Add(10)
	c.Batches.Add(2)
	c.Results.Add(3)
	s := c.Snapshot(5)
	if s.Shard != 5 || s.Events != 10 || s.Batches != 2 || s.Results != 3 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestParallelStatsOccupancy(t *testing.T) {
	p := ParallelStats{
		Workers:   2,
		BatchSize: 256,
		EventsFed: 100,
		Elapsed:   time.Second,
		Shards: []ShardStats{
			{Shard: 0, Events: 75},
			{Shard: 1, Events: 25},
		},
	}
	if got := p.TotalShardEvents(); got != 100 {
		t.Errorf("TotalShardEvents = %d, want 100", got)
	}
	occ := p.Occupancy()
	if occ[0] != 0.75 || occ[1] != 0.25 {
		t.Errorf("Occupancy = %v, want [0.75 0.25]", occ)
	}
	// Hottest shard saw 75 of a 50-event fair share: imbalance 1.5.
	if got := p.Imbalance(); got != 1.5 {
		t.Errorf("Imbalance = %v, want 1.5", got)
	}
	if got := p.Throughput(); got != 100 {
		t.Errorf("Throughput = %v, want 100", got)
	}
	s := p.String()
	for _, want := range []string{"workers=2", "imbalance=1.50", "occupancy=[0.75 0.25]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestParallelStatsEmpty(t *testing.T) {
	var p ParallelStats
	if got := p.Imbalance(); got != 1 {
		t.Errorf("empty Imbalance = %v, want 1", got)
	}
	if got := p.Throughput(); got != 0 {
		t.Errorf("unflushed Throughput = %v, want 0", got)
	}
	if occ := p.Occupancy(); len(occ) != 0 {
		t.Errorf("empty Occupancy = %v", occ)
	}
}
