package metrics

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// ShardCounters are the race-safe counters one parallel-executor worker
// maintains while it runs. Workers update them from their own goroutine;
// any goroutine may Snapshot them at any time.
type ShardCounters struct {
	// Events is the number of events the shard processed.
	Events atomic.Int64
	// Batches is the number of batch messages the shard consumed
	// (including watermark-only and flush messages).
	Batches atomic.Int64
	// Results is the number of results the shard's executor emitted.
	Results atomic.Int64
	// Groups is a gauge of the live per-group runtimes the shard owns
	// (refreshed by the worker after each message) — the cluster tier's
	// per-worker shard-occupancy signal.
	Groups atomic.Int64
}

// Snapshot copies the counters into a plain ShardStats value.
func (c *ShardCounters) Snapshot(shard int) ShardStats {
	return ShardStats{
		Shard:   shard,
		Events:  c.Events.Load(),
		Batches: c.Batches.Load(),
		Results: c.Results.Load(),
		Groups:  c.Groups.Load(),
	}
}

// ShardStats is a point-in-time copy of one shard's counters.
type ShardStats struct {
	Shard   int
	Events  int64
	Batches int64
	Results int64
	Groups  int64
}

// ParallelStats summarizes a parallel sharded run: feeder-level
// throughput counters plus the per-shard occupancy profile.
type ParallelStats struct {
	// Workers is the number of shard workers.
	Workers int
	// BatchSize is the per-shard event batch size in effect.
	BatchSize int
	// EventsFed is the number of events accepted by the feeder.
	EventsFed int64
	// Rounds is the number of dispatch rounds (each round sends one
	// message, possibly empty, to every shard and advances the shared
	// watermark).
	Rounds int64
	// ResultsMerged is the number of results emitted by the merge stage.
	ResultsMerged int64
	// Elapsed is the wall-clock span of the run, set once the executor
	// is flushed.
	Elapsed time.Duration
	// Shards holds one snapshot per shard worker.
	Shards []ShardStats
}

// TotalShardEvents sums the events processed across shards. Under
// group-hash routing it equals EventsFed; under broadcast (segment)
// routing it is EventsFed times the worker count.
func (p ParallelStats) TotalShardEvents() int64 {
	var n int64
	for _, s := range p.Shards {
		n += s.Events
	}
	return n
}

// Occupancy returns each shard's fraction of all shard-processed events:
// the shard-occupancy profile of the run. A perfectly balanced hash
// assignment yields 1/Workers everywhere.
func (p ParallelStats) Occupancy() []float64 {
	total := p.TotalShardEvents()
	out := make([]float64, len(p.Shards))
	if total == 0 {
		return out
	}
	for i, s := range p.Shards {
		out[i] = float64(s.Events) / float64(total)
	}
	return out
}

// Imbalance reports the hottest shard's load relative to the mean
// (1 = perfectly balanced, 2 = the hottest shard saw twice its fair
// share). Zero-event runs report 1.
func (p ParallelStats) Imbalance() float64 {
	if len(p.Shards) == 0 {
		return 1
	}
	total := p.TotalShardEvents()
	if total == 0 {
		return 1
	}
	var max int64
	for _, s := range p.Shards {
		if s.Events > max {
			max = s.Events
		}
	}
	mean := float64(total) / float64(len(p.Shards))
	return float64(max) / mean
}

// Throughput returns feeder events per second of wall-clock time, or 0
// before the run is flushed.
func (p ParallelStats) Throughput() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.EventsFed) / p.Elapsed.Seconds()
}

// String renders the stats for logs: totals plus per-shard occupancy.
func (p ParallelStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "parallel workers=%d batch=%d events=%d rounds=%d results=%d",
		p.Workers, p.BatchSize, p.EventsFed, p.Rounds, p.ResultsMerged)
	if p.Elapsed > 0 {
		fmt.Fprintf(&b, " elapsed=%v throughput=%.0fev/s", p.Elapsed.Round(time.Millisecond), p.Throughput())
	}
	fmt.Fprintf(&b, " imbalance=%.2f occupancy=[", p.Imbalance())
	for i, f := range p.Occupancy() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.2f", f)
	}
	b.WriteByte(']')
	return b.String()
}
