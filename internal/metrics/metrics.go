// Package metrics defines the measurement units of the paper's evaluation
// (§8.1): latency, throughput, and peak memory.
package metrics

import (
	"fmt"
	"time"
)

// StateBytes is the in-memory size of one aggregate state (five float64
// fields); peak-memory numbers are LiveStates * StateBytes, matching the
// paper's "maximal memory for storing aggregates".
const StateBytes = 40

// RunStats summarizes one executor run over a finite stream.
type RunStats struct {
	// Executor names the strategy.
	Executor string
	// Events is the number of events processed.
	Events int64
	// Results is the number of (query, window, group) aggregates emitted.
	Results int64
	// Windows is the number of distinct windows closed.
	Windows int64
	// Elapsed is the wall-clock processing time.
	Elapsed time.Duration
	// PeakLiveStates is the executor's peak number of live aggregate /
	// sequence states.
	PeakLiveStates int64
	// Allocs is the number of heap allocations performed during the run
	// (runtime.MemStats.Mallocs delta, all goroutines), when the harness
	// captured it; 0 when not measured.
	Allocs int64
	// AllocBytes is the heap bytes allocated during the run
	// (runtime.MemStats.TotalAlloc delta), when captured.
	AllocBytes int64
	// DNF marks a run aborted by the sequence-construction cap — the
	// paper's "does not terminate".
	DNF bool
}

// Throughput returns events per second of wall-clock time (Fig. 13b/14e-g).
func (s RunStats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Events) / s.Elapsed.Seconds()
}

// LatencyMs returns the run's wall-clock time divided by the number of
// closed windows: the average processing COST per window. It is a cost
// proxy for comparing executors on the same replay, not the per-window
// latency distribution of Fig. 13a — an in-process replay feeds events
// as fast as the executor drains them, so no per-window arrival-to-
// emission delay exists to measure here. Where the harness can observe
// individual window emissions (the server-loopback bench, driven by
// loadgen over real HTTP), the honest distribution is reported instead:
// loadgen stamps every received result against its batch send time and
// reports p50/p90/p99/p999/max plus the full histogram buckets, and the
// server's emit-stage histogram gives the same view server-side.
func (s RunStats) LatencyMs() float64 {
	if s.Windows <= 0 {
		return float64(s.Elapsed.Milliseconds())
	}
	return float64(s.Elapsed.Microseconds()) / 1000.0 / float64(s.Windows)
}

// MemoryBytes returns the peak memory estimate in bytes.
func (s RunStats) MemoryBytes() int64 { return s.PeakLiveStates * StateBytes }

// NsPerEvent returns the average wall-clock nanoseconds spent per event.
func (s RunStats) NsPerEvent() float64 {
	if s.Events <= 0 {
		return 0
	}
	return float64(s.Elapsed.Nanoseconds()) / float64(s.Events)
}

// AllocsPerEvent returns the average heap allocations per event (0 when
// allocation capture was off).
func (s RunStats) AllocsPerEvent() float64 {
	if s.Events <= 0 {
		return 0
	}
	return float64(s.Allocs) / float64(s.Events)
}

// AllocBytesPerEvent returns the average heap bytes allocated per event.
func (s RunStats) AllocBytesPerEvent() float64 {
	if s.Events <= 0 {
		return 0
	}
	return float64(s.AllocBytes) / float64(s.Events)
}

// String renders the stats for logs and tables.
func (s RunStats) String() string {
	if s.DNF {
		return fmt.Sprintf("%-8s DNF (cap exceeded after %v)", s.Executor, s.Elapsed.Round(time.Millisecond))
	}
	return fmt.Sprintf("%-8s events=%d results=%d windows=%d elapsed=%v latency=%.3fms/win throughput=%.0fev/s mem=%s",
		s.Executor, s.Events, s.Results, s.Windows, s.Elapsed.Round(time.Millisecond),
		s.LatencyMs(), s.Throughput(), FormatBytes(s.MemoryBytes()))
}

// FormatBytes renders a byte count with a binary unit suffix.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
