package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestThroughputAndLatency(t *testing.T) {
	s := RunStats{Executor: "X", Events: 1000, Windows: 10, Elapsed: 2 * time.Second}
	if got := s.Throughput(); got != 500 {
		t.Errorf("Throughput = %v, want 500", got)
	}
	if got := s.LatencyMs(); got != 200 {
		t.Errorf("LatencyMs = %v, want 200", got)
	}
}

func TestLatencyWithoutWindows(t *testing.T) {
	s := RunStats{Elapsed: 1500 * time.Millisecond}
	if got := s.LatencyMs(); got != 1500 {
		t.Errorf("LatencyMs fallback = %v, want 1500", got)
	}
}

func TestZeroElapsed(t *testing.T) {
	var s RunStats
	if got := s.Throughput(); got != 0 {
		t.Errorf("Throughput of zero run = %v", got)
	}
}

func TestMemoryBytes(t *testing.T) {
	s := RunStats{PeakLiveStates: 100}
	if got := s.MemoryBytes(); got != 100*StateBytes {
		t.Errorf("MemoryBytes = %d", got)
	}
}

func TestStringFormats(t *testing.T) {
	s := RunStats{Executor: "Sharon", Events: 10, Windows: 1, Elapsed: time.Millisecond}
	if out := s.String(); !strings.Contains(out, "Sharon") || !strings.Contains(out, "throughput") {
		t.Errorf("String() = %q", out)
	}
	d := RunStats{Executor: "Flink", DNF: true, Elapsed: time.Second}
	if out := d.String(); !strings.Contains(out, "DNF") {
		t.Errorf("DNF String() = %q", out)
	}
}

func TestFormatBytes(t *testing.T) {
	tests := []struct {
		n    int64
		want string
	}{
		{512, "512B"},
		{2048, "2.00KiB"},
		{3 << 20, "3.00MiB"},
		{5 << 30, "5.00GiB"},
	}
	for _, tt := range tests {
		if got := FormatBytes(tt.n); got != tt.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}
