package core

import (
	"math"
	"testing"
	"time"

	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// paperFixture rebuilds the traffic workload of Figure 1 / Table 1 and the
// Sharon graph of Figure 4 with the paper's vertex weights.
type paperFixture struct {
	reg      *event.Registry
	w        query.Workload
	patterns []query.Pattern // p1..p7
	weights  []float64
	byID     map[int]*query.Query
}

func newPaperFixture() *paperFixture {
	reg := event.NewRegistry()
	mk := func(streets ...string) query.Pattern {
		p := make(query.Pattern, len(streets))
		for i, s := range streets {
			p[i] = reg.Intern(s)
		}
		return p
	}
	win := query.Window{Length: 600000, Slide: 60000}
	f := &paperFixture{
		reg: reg,
		patterns: []query.Pattern{
			mk("OakSt", "MainSt"),            // p1
			mk("ParkAve", "OakSt"),           // p2
			mk("ParkAve", "OakSt", "MainSt"), // p3
			mk("MainSt", "WestSt"),           // p4
			mk("OakSt", "MainSt", "WestSt"),  // p5
			mk("MainSt", "StateSt"),          // p6
			mk("ElmSt", "ParkAve"),           // p7
		},
		weights: []float64{25, 9, 12, 15, 20, 8, 18},
	}
	qpats := []query.Pattern{
		mk("OakSt", "MainSt", "StateSt"),           // q1
		mk("OakSt", "MainSt", "WestSt"),            // q2
		mk("ParkAve", "OakSt", "MainSt"),           // q3
		mk("ParkAve", "OakSt", "MainSt", "WestSt"), // q4
		mk("MainSt", "StateSt"),                    // q5
		mk("ElmSt", "ParkAve"),                     // q6
		mk("ElmSt", "ParkAve"),                     // q7
	}
	f.byID = make(map[int]*query.Query)
	for i, p := range qpats {
		q := &query.Query{ID: i, Pattern: p, Agg: query.AggSpec{Kind: query.CountStar}, Window: win, GroupBy: true}
		f.w = append(f.w, q)
		f.byID[i] = q
	}
	return f
}

// table1Queries are the paper's Table 1 query sets, 0-based.
var table1Queries = [][]int{
	{0, 1, 2, 3}, // p1: q1,q2,q3,q4
	{2, 3},       // p2
	{2, 3},       // p3
	{1, 3},       // p4
	{1, 3},       // p5
	{0, 4},       // p6
	{5, 6},       // p7
}

func (f *paperFixture) candidates() []Candidate {
	out := make([]Candidate, len(f.patterns))
	for i, p := range f.patterns {
		out[i] = NewCandidate(p, table1Queries[i])
	}
	return out
}

func (f *paperFixture) graph() *Graph {
	return BuildGraphWithWeights(f.w, f.candidates(), f.weights)
}

// TestTable1SharableDetection checks the modified CCSpan output against
// Table 1 exactly.
func TestTable1SharableDetection(t *testing.T) {
	f := newPaperFixture()
	got := SharablePatterns(f.w)
	if len(got) != 7 {
		var names []string
		for _, sp := range got {
			names = append(names, sp.Pattern.Format(f.reg))
		}
		t.Fatalf("found %d sharable patterns, want 7: %v", len(got), names)
	}
	want := make(map[string][]int)
	for i, p := range f.patterns {
		want[p.Key()] = table1Queries[i]
	}
	for _, sp := range got {
		exp, ok := want[sp.Pattern.Key()]
		if !ok {
			t.Errorf("unexpected sharable pattern %s", sp.Pattern.Format(f.reg))
			continue
		}
		if len(sp.Queries) != len(exp) {
			t.Errorf("pattern %s queries = %v, want %v", sp.Pattern.Format(f.reg), sp.Queries, exp)
			continue
		}
		for i := range exp {
			if sp.Queries[i] != exp[i] {
				t.Errorf("pattern %s queries = %v, want %v", sp.Pattern.Format(f.reg), sp.Queries, exp)
				break
			}
		}
	}
}

// TestFigure4Conflicts verifies the conflict structure of Figure 4: the
// degrees implied by the guaranteed-weight computation of Example 7.
func TestFigure4Conflicts(t *testing.T) {
	f := newPaperFixture()
	g := f.graph()
	if g.NumVertices() != 7 {
		t.Fatalf("vertices = %d, want 7", g.NumVertices())
	}
	wantDegrees := []int{5, 3, 4, 3, 4, 1, 0}
	for i, want := range wantDegrees {
		if got := g.Degree(i); got != want {
			t.Errorf("degree(p%d) = %d, want %d", i+1, got, want)
		}
	}
	// Specific pairs called out in the paper.
	if !g.HasEdge(0, 1) { // p1-p2 overlap OakSt in q3,q4 (Example 4)
		t.Error("p1 and p2 should conflict")
	}
	if g.HasEdge(1, 3) { // p2 and p4 do not overlap (Example 5)
		t.Error("p2 and p4 must not conflict")
	}
	// Cause of p1-p2 conflict: q3 and q4.
	causes := g.EdgeCauses(0, 1)
	if len(causes) != 2 || causes[0] != 2 || causes[1] != 3 {
		t.Errorf("p1-p2 causes = %v, want [2 3]", causes)
	}
}

// TestExample7GuaranteedWeight: 25/6+9/4+12/5+15/4+20/5+8/2+18/1 ≈ 38.57.
func TestExample7GuaranteedWeight(t *testing.T) {
	f := newPaperFixture()
	g := f.graph()
	want := 25.0/6 + 9.0/4 + 12.0/5 + 15.0/4 + 20.0/5 + 8.0/2 + 18.0/1
	if got := g.GuaranteedWeight(); math.Abs(got-want) > 1e-9 {
		t.Errorf("guaranteed weight = %v, want %v", got, want)
	}
	if math.Abs(want-38.5733) > 0.01 {
		t.Fatalf("fixture broken: want ≈ 38.57, computed %v", want)
	}
	// Scoremax(p3) = BValue(p3)+BValue(p6)+BValue(p7) = 38 < 38.57.
	if got := g.ScoreMax(2); got != 38 {
		t.Errorf("Scoremax(p3) = %v, want 38", got)
	}
}

// TestExample7And8Reduction: p3 is conflict-ridden (pruned), p7 is
// conflict-free (fast-pathed into the plan).
func TestExample7And8Reduction(t *testing.T) {
	f := newPaperFixture()
	res := Reduce(f.graph())
	if res.PrunedConflictRidden < 1 {
		t.Errorf("pruned %d conflict-ridden, want >= 1 (p3)", res.PrunedConflictRidden)
	}
	if len(res.ConflictFree) != 1 || !res.ConflictFree[0].Pattern.Equal(f.patterns[6]) {
		t.Fatalf("conflict-free = %+v, want [p7]", res.ConflictFree)
	}
	// Reduced graph holds p1, p2, p4, p5, p6.
	if got := res.Reduced.NumVertices(); got != 5 {
		t.Errorf("reduced vertices = %d, want 5", got)
	}
	for _, v := range res.Reduced.Vertices {
		if v.Pattern.Equal(f.patterns[2]) {
			t.Error("p3 still present after reduction")
		}
		if v.Pattern.Equal(f.patterns[6]) {
			t.Error("p7 still present after reduction")
		}
	}
}

// TestExample10And12OptimalPlan: the finder returns
// {p2, p4, p6, p7} with score 50 after considering exactly 10 valid plans
// on the reduced graph.
func TestExample10And12OptimalPlan(t *testing.T) {
	f := newPaperFixture()
	res := Reduce(f.graph())
	plan, score, stats := FindOptimalPlan(res.Reduced, res.ConflictFree, time.Time{})
	if score != 50 {
		t.Errorf("optimal score = %v, want 50", score)
	}
	if stats.PlansConsidered != 10 {
		t.Errorf("plans considered = %d, want 10 (Example 10)", stats.PlansConsidered)
	}
	wantPatterns := map[string]bool{
		f.patterns[1].Key(): true, // p2
		f.patterns[3].Key(): true, // p4
		f.patterns[5].Key(): true, // p6
		f.patterns[6].Key(): true, // p7
	}
	if len(plan) != 4 {
		t.Fatalf("plan size = %d, want 4: %v", len(plan), plan)
	}
	for _, c := range plan {
		if !wantPatterns[c.Pattern.Key()] {
			t.Errorf("unexpected plan member %s", c.Pattern.Format(f.reg))
		}
	}
	if err := plan.Validate(f.w); err != nil {
		t.Errorf("optimal plan invalid: %v", err)
	}
}

// TestExample12Greedy: GWMIN picks {p7, p1} with score 43 — 16% below the
// optimal 50.
func TestExample12Greedy(t *testing.T) {
	f := newPaperFixture()
	g := f.graph()
	set := GWMIN(g)
	if len(set) != 2 {
		t.Fatalf("GWMIN set = %v, want 2 vertices", set)
	}
	if got := g.SetWeight(set); got != 43 {
		t.Errorf("greedy score = %v, want 43", got)
	}
	if !g.IsIndependentSet(set) {
		t.Error("GWMIN returned a dependent set")
	}
	plan := g.PlanOf(set)
	seen := map[string]bool{}
	for _, c := range plan {
		seen[c.Pattern.Key()] = true
	}
	if !seen[f.patterns[0].Key()] || !seen[f.patterns[6].Key()] {
		t.Errorf("greedy plan = %v, want {p1, p7}", plan)
	}
}

// TestExample5PlanScores verifies the scores quoted in Example 5.
func TestExample5PlanScores(t *testing.T) {
	f := newPaperFixture()
	g := f.graph()
	// {p2, p4} is valid with score 24; {p1} scores 25.
	var p2i, p4i, p1i = -1, -1, -1
	for i, v := range g.Vertices {
		switch {
		case v.Pattern.Equal(f.patterns[1]):
			p2i = i
		case v.Pattern.Equal(f.patterns[3]):
			p4i = i
		case v.Pattern.Equal(f.patterns[0]):
			p1i = i
		}
	}
	if g.HasEdge(p2i, p4i) {
		t.Fatal("p2/p4 conflict; Example 5 plan invalid")
	}
	if got := g.SetWeight([]int{p2i, p4i}); got != 24 {
		t.Errorf("Score({p2,p4}) = %v, want 24", got)
	}
	if got := g.SetWeight([]int{p1i}); got != 25 {
		t.Errorf("Score({p1}) = %v, want 25", got)
	}
}

// TestExhaustiveMatchesPlanFinder: the exhaustive optimizer agrees with
// the plan finder on the paper graph.
func TestExhaustiveMatchesPlanFinder(t *testing.T) {
	f := newPaperFixture()
	g := f.graph()
	_, exScore, considered := ExhaustivePlanSearch(g)
	if exScore != 50 {
		t.Errorf("exhaustive score = %v, want 50", exScore)
	}
	if considered != 128 { // 2^7 subsets
		t.Errorf("considered = %d, want 128", considered)
	}
}

// TestFigure8SearchSpaceReduction: pruning p3 and fast-pathing p7 shrinks
// the lattice from 2^7 to 2^5 plans — a 75% reduction (Example 9).
func TestFigure8SearchSpaceReduction(t *testing.T) {
	f := newPaperFixture()
	res := Reduce(f.graph())
	before := int64(1) << 7
	after := int64(1) << uint(res.Reduced.NumVertices())
	if after != 32 {
		t.Fatalf("reduced space = %d plans, want 32", after)
	}
	reduction := float64(before-after) / float64(before)
	if reduction < 0.74 || reduction > 0.76 {
		t.Errorf("reduction = %.4f, want ≈ 0.7559", reduction)
	}
}

// TestExample13Expansion: option (p1, {q1, q3}) resolves the conflicts
// with (p4, {q2, q4}) and (p5, {q2, q4}).
func TestExample13Expansion(t *testing.T) {
	f := newPaperFixture()
	g := f.graph()
	opts := ExpandOptions(g, 0, f.byID, ExpandConfig{})
	var found *Candidate
	for i := range opts {
		if len(opts[i].Queries) == 2 && opts[i].Queries[0] == 0 && opts[i].Queries[1] == 2 {
			found = &opts[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("option (p1,{q1,q3}) not generated; options=%v", opts)
	}
	p4c := NewCandidate(f.patterns[3], table1Queries[3])
	p5c := NewCandidate(f.patterns[4], table1Queries[4])
	if c, _ := InConflict(f.byID, *found, p4c); c {
		t.Error("(p1,{q1,q3}) still conflicts with (p4,{q2,q4})")
	}
	if c, _ := InConflict(f.byID, *found, p5c); c {
		t.Error("(p1,{q1,q3}) still conflicts with (p5,{q2,q4})")
	}
}

// TestExample14OptionTree: dropping {q3,q4} from p1 resolves the conflicts
// with p2 and p3, producing option (p1, {q1, q2}).
func TestExample14OptionTree(t *testing.T) {
	f := newPaperFixture()
	g := f.graph()
	opts := ExpandOptions(g, 0, f.byID, ExpandConfig{})
	if len(opts) < 2 {
		t.Fatalf("expected several options, got %d", len(opts))
	}
	if !opts[0].Pattern.Equal(f.patterns[0]) || len(opts[0].Queries) != 4 {
		t.Errorf("option 0 should be the original candidate, got %v", opts[0])
	}
	want := map[string]bool{"0,1": false, "0,2": false} // {q1,q2}, {q1,q3}
	for _, o := range opts {
		if len(o.Queries) == 2 {
			key := ""
			for i, q := range o.Queries {
				if i > 0 {
					key += ","
				}
				key += string(rune('0' + q))
			}
			if _, ok := want[key]; ok {
				want[key] = true
			}
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("option (p1,{%s}) not generated", k)
		}
	}
}

// TestExpandGraphKeepsOriginals: expansion retains the original candidates
// and only adds options (weighted by the supplied function).
func TestExpandGraphKeepsOriginals(t *testing.T) {
	f := newPaperFixture()
	g := f.graph()
	weightOf := make(map[string]float64)
	for i, p := range f.patterns {
		weightOf[p.Key()] = f.weights[i]
	}
	weigh := func(c Candidate) float64 {
		// Weight options proportionally to their query count.
		base := weightOf[c.Pattern.Key()]
		full := NewCandidate(c.Pattern, table1Queries[indexOfPattern(f, c.Pattern)])
		return base * float64(len(c.Queries)) / float64(len(full.Queries))
	}
	eg := ExpandGraph(g, f.byID, weigh, ExpandConfig{})
	if eg.NumVertices() <= g.NumVertices() {
		t.Errorf("expanded graph has %d vertices, want > %d", eg.NumVertices(), g.NumVertices())
	}
	// All originals present.
	for i := range f.patterns {
		orig := NewCandidate(f.patterns[i], table1Queries[i])
		found := false
		for _, v := range eg.Vertices {
			if v.Key() == orig.Key() {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("original candidate p%d missing from expanded graph", i+1)
		}
	}
	// An optimal plan over the expanded graph is at least as good as over
	// the original.
	_, s1, _ := ExhaustivePlanSearch(g)
	red := Reduce(eg)
	_, s2, _ := FindOptimalPlan(red.Reduced, red.ConflictFree, time.Time{})
	if s2 < s1 {
		t.Errorf("expanded optimum %v below original %v", s2, s1)
	}
}

func indexOfPattern(f *paperFixture, p query.Pattern) int {
	for i := range f.patterns {
		if f.patterns[i].Equal(p) {
			return i
		}
	}
	return -1
}
