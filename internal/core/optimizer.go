package core

import (
	"fmt"
	"time"

	"github.com/sharon-project/sharon/internal/query"
)

// Strategy selects one of the optimizer front-ends compared in §8.3.
type Strategy int

const (
	// StrategySharon is the full Sharon optimizer: graph construction,
	// conflict-resolution expansion, GWMIN-bound reduction, and the
	// optimal plan finder.
	StrategySharon Strategy = iota
	// StrategyGreedy is the greedy optimizer: graph construction followed
	// by GWMIN (no expansion, no reduction).
	StrategyGreedy
	// StrategyExhaustive is the exhaustive optimizer: graph construction,
	// expansion, and a full subset enumeration.
	StrategyExhaustive
	// StrategyNone disables sharing: the empty plan (the A-Seq default).
	StrategyNone
)

// String names the strategy as in the paper's Figure 15 ("SO"/"GO"/"EO").
func (s Strategy) String() string {
	switch s {
	case StrategySharon:
		return "Sharon"
	case StrategyGreedy:
		return "Greedy"
	case StrategyExhaustive:
		return "Exhaustive"
	case StrategyNone:
		return "NoShare"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Phase records one optimizer phase for the Figure 15 breakdown.
type Phase struct {
	Name string
	// Elapsed is the wall-clock duration of the phase.
	Elapsed time.Duration
	// LiveStates estimates the entries held at the end of the phase.
	LiveStates int64
}

// OptimizerOptions configures Optimize.
type OptimizerOptions struct {
	Strategy Strategy
	// Expand enables the §7.1 conflict-resolution expansion for the
	// Sharon and exhaustive strategies (the paper's §8 configuration).
	Expand bool
	// ExpandConfig bounds the expansion.
	ExpandConfig ExpandConfig
	// Budget optionally bounds the plan finder; on expiry the optimizer
	// returns the better of the partial search and GWMIN (§6, case 1).
	Budget time.Duration
}

// OptimizerResult is the outcome of a full optimizer run.
type OptimizerResult struct {
	Strategy Strategy
	// Plan is the chosen sharing plan.
	Plan Plan
	// Score is the plan's total benefit (Definition 8).
	Score float64
	// Phases is the per-phase latency/memory breakdown.
	Phases []Phase
	// Candidates is the number of sharable patterns detected.
	Candidates int
	// GraphVertices/GraphEdges describe the initial Sharon graph.
	GraphVertices, GraphEdges int
	// ExpandedVertices/ExpandedEdges describe the expanded graph (0 if
	// expansion disabled).
	ExpandedVertices, ExpandedEdges int
	// ReducedVertices counts vertices left after reduction.
	ReducedVertices int
	// PrunedConflictRidden counts §5 conflict-ridden removals.
	PrunedConflictRidden int
	// ConflictFree counts §5 conflict-free fast-path additions.
	ConflictFree int
	// FinderStats describes the plan-finder traversal.
	FinderStats PlanFinderStats
	// PeakLiveStates is the optimizer memory metric: the maximum entries
	// held across phases.
	PeakLiveStates int64
	// TotalElapsed is the end-to-end optimization latency.
	TotalElapsed time.Duration
}

// Optimize runs the selected optimization strategy over the workload,
// producing a sharing plan for the runtime executor (paper Fig. 5).
func Optimize(w query.Workload, rates Rates, opts OptimizerOptions) (*OptimizerResult, error) {
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("optimize: %w", err)
	}
	res := &OptimizerResult{Strategy: opts.Strategy}
	start := time.Now()
	defer func() { res.TotalElapsed = time.Since(start) }()

	if opts.Strategy == StrategyNone {
		return res, nil
	}

	model := NewCostModel(w, rates)

	// Phase 1: sharable pattern detection + Sharon graph construction
	// (Algorithm 7 + Algorithm 1).
	t0 := time.Now()
	cands := FindCandidates(w)
	g := BuildGraph(model, cands)
	res.Candidates = len(cands)
	res.GraphVertices = g.NumVertices()
	res.GraphEdges = g.NumEdges()
	res.addPhase("graph", time.Since(t0), g.LiveStates())

	switch opts.Strategy {
	case StrategyGreedy:
		// Phase 2: GWMIN plan finder.
		t1 := time.Now()
		set := GWMIN(g)
		res.Plan = g.PlanOf(set)
		res.Score = g.SetWeight(set)
		res.addPhase("gwmin", time.Since(t1), int64(len(set)))
		return res, nil

	case StrategyExhaustive:
		if opts.Expand {
			t1 := time.Now()
			g = ExpandGraph(g, model.byID, model.BValue, opts.ExpandConfig)
			res.ExpandedVertices = g.NumVertices()
			res.ExpandedEdges = g.NumEdges()
			res.addPhase("expand", time.Since(t1), g.LiveStates())
		}
		t2 := time.Now()
		plan, score, considered := ExhaustivePlanSearch(g)
		res.Plan = plan
		res.Score = score
		res.FinderStats.PlansConsidered = considered
		res.addPhase("exhaustive", time.Since(t2), considered)
		return res, nil

	case StrategySharon:
		if opts.Expand {
			t1 := time.Now()
			g = ExpandGraph(g, model.byID, model.BValue, opts.ExpandConfig)
			res.ExpandedVertices = g.NumVertices()
			res.ExpandedEdges = g.NumEdges()
			res.addPhase("expand", time.Since(t1), g.LiveStates())
		}
		// Phase 3: reduction (Algorithm 2).
		t2 := time.Now()
		red := Reduce(g)
		res.ReducedVertices = red.Reduced.NumVertices()
		res.PrunedConflictRidden = red.PrunedConflictRidden
		res.ConflictFree = len(red.ConflictFree)
		res.addPhase("reduce", time.Since(t2), red.Reduced.LiveStates())

		// Phase 4: plan finder (Algorithms 3–4).
		t3 := time.Now()
		var deadline time.Time
		if opts.Budget > 0 {
			deadline = start.Add(opts.Budget)
		}
		plan, score, stats := FindOptimalPlan(red.Reduced, red.ConflictFree, deadline)
		res.FinderStats = stats
		if stats.TimedOut {
			// §6 fallback: run GWMIN on both the expanded and the
			// original graph and keep the best plan seen. A truncated
			// search must never return less than the greedy optimizer.
			for _, fg := range []*Graph{g, BuildGraph(model, cands)} {
				set := GWMIN(fg)
				if gw := fg.SetWeight(set); gw > score {
					plan, score = fg.PlanOf(set), gw
				}
			}
		}
		res.Plan = plan
		res.Score = score
		res.addPhase("find", time.Since(t3), stats.PeakLevelPlans)
		return res, nil
	}
	return nil, fmt.Errorf("optimize: unknown strategy %v", opts.Strategy)
}

func (r *OptimizerResult) addPhase(name string, d time.Duration, live int64) {
	r.Phases = append(r.Phases, Phase{Name: name, Elapsed: d, LiveStates: live})
	if live > r.PeakLiveStates {
		r.PeakLiveStates = live
	}
}

// PhaseDuration returns the elapsed time of the named phase (0 if absent).
func (r *OptimizerResult) PhaseDuration(name string) time.Duration {
	for _, p := range r.Phases {
		if p.Name == name {
			return p.Elapsed
		}
	}
	return 0
}
